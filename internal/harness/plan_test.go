package harness

import (
	"reflect"
	"testing"

	"fp8quant/internal/evalx"
	"fp8quant/internal/models"
	"fp8quant/internal/quant"
)

// TestWithPlanPreservesResults runs the same sweep cell with and
// without a pooled plan installed: results must be deeply equal (the
// plan contract is byte-identical math, so even float fields match
// exactly). The pooled plan is exercised twice to cover arena reuse
// across cells.
func TestWithPlanPreservesResults(t *testing.T) {
	const name = "cifar_resnet20"
	recipe := quant.StandardFP8(quant.E4M3)

	netU, err := models.Build(name)
	if err != nil {
		t.Fatal(err)
	}
	want := evalx.EvaluateWithRef(netU, recipe, true, modelRef(name, netU))

	for cell := 0; cell < 2; cell++ {
		net, err := models.Build(name)
		if err != nil {
			t.Fatal(err)
		}
		release := withPlan(name, net)
		got := evalx.EvaluateWithRef(net, recipe, true, modelRef(name, net))
		release()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cell %d: planned result differs:\n got %+v\nwant %+v", cell, got, want)
		}
	}
}

// TestWithPlanNonPlannable checks token-driven models are left alone.
func TestWithPlanNonPlannable(t *testing.T) {
	net, err := models.Build("bert_base_mrpc")
	if err != nil {
		t.Fatal(err)
	}
	if net.Plannable() {
		t.Fatal("bert_base_mrpc unexpectedly plannable")
	}
	release := withPlan("bert_base_mrpc", net)
	release() // must be a harmless no-op
}
