package tensor

// Arena is a bump allocator for forward-pass intermediates. A compiled
// execution plan owns one (or two, ping-ponged) per worker: the first
// forward over a given input shape records how much memory each cycle
// needs, Reset grows the backing slabs to the high-water mark, and
// every later cycle carves the same tensors out of the same storage —
// zero heap allocations on the steady path.
//
// A nil *Arena is valid and falls back to ordinary heap allocation
// (tensor.New semantics), so arena-aware forward paths need no
// branching at call sites and stay byte-identical whether or not a
// plan is installed: Arena.New zeroes every carved region, exactly
// like make, and hands out the same shapes to the same kernels.
//
// Arenas are not safe for concurrent use; a plan (and its arenas)
// belongs to one worker at a time. Tensors carved from an arena are
// valid until the arena's next Reset — callers that retain an output
// past the next forward must Clone it first.
type Arena struct {
	slab []float32 // float storage, carved front to back
	off  int
	hdrs []Tensor // Tensor headers, so &Tensor{...} does not escape
	hoff int
	ints []int // shape storage
	ioff int

	// High-water demand of the current cycle; Reset sizes the slabs
	// from these, so the first (recording) cycle allocates through the
	// heap fallback and every following cycle hits the slab.
	needF, needH, needI int
}

// Reset ends the current cycle: it grows the backing slabs to the
// cycle's high-water demand and rewinds the bump offsets. Every tensor
// carved since the previous Reset becomes invalid. Safe on nil.
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	a.ResetFloats()
	if a.needH > len(a.hdrs) {
		a.hdrs = make([]Tensor, a.needH)
	}
	if a.needI > len(a.ints) {
		a.ints = make([]int, a.needI)
	}
	a.hoff, a.ioff = 0, 0
	a.needH, a.needI = 0, 0
}

// ResetFloats rewinds only the float slab, leaving headers and shape
// storage live. A plan ping-ponging two arenas across a module chain
// resets the floats of the side about to be overwritten each step, but
// headers only once per forward (a view module's header can carve from
// one side while its data aliases the other, so headers must outlive
// the per-step float recycling). Safe on nil.
func (a *Arena) ResetFloats() {
	if a == nil {
		return
	}
	if a.needF > len(a.slab) {
		a.slab = make([]float32, a.needF)
	}
	a.off = 0
	a.needF = 0
}

// New carves a zeroed tensor of the given shape. On a nil arena it is
// exactly tensor.New.
func (a *Arena) New(shape ...int) *Tensor {
	if a == nil {
		return New(shape...)
	}
	t := a.header()
	t.Shape = a.shapeOf(shape)
	t.Data = a.floats(NumElements(shape))
	return t
}

// View wraps data (not copied) in a carved header, the arena analogue
// of FromSlice; reshaping views stay allocation-free under a plan.
func (a *Arena) View(data []float32, shape ...int) *Tensor {
	if a == nil {
		return FromSlice(data, shape...)
	}
	if len(data) != NumElements(shape) {
		// The copy keeps shape itself from escaping: formatting the
		// variadic slice here would heap-allocate it on every call.
		panicShapeMismatch(len(data), append([]int(nil), shape...))
	}
	t := a.header()
	t.Shape = a.shapeOf(shape)
	t.Data = data
	return t
}

// Alloc carves a zeroed raw float slice (im2col patches, packed weight
// panels). On a nil arena it is make([]float32, n).
func (a *Arena) Alloc(n int) []float32 {
	if a == nil {
		return make([]float32, n)
	}
	return a.floats(n)
}

// Floats returns the float32 capacity of the backing slab — the
// high-water footprint after at least one recorded cycle.
func (a *Arena) Floats() int {
	if a == nil {
		return 0
	}
	return len(a.slab)
}

// Owns reports whether data's first element lives inside the arena's
// current slab. Used by aliasing tests and the plan's ping-pong logic.
func (a *Arena) Owns(data []float32) bool {
	if a == nil || len(data) == 0 || len(a.slab) == 0 {
		return false
	}
	return &data[0] == &a.slab[0] || (len(a.slab) > 1 && sliceWithin(data, a.slab))
}

func sliceWithin(inner, outer []float32) bool {
	for i := range outer {
		if &outer[i] == &inner[0] {
			return true
		}
	}
	return false
}

// floats carves n zeroed floats, falling back to the heap when the
// slab is exhausted (the recording cycle, or a shape larger than any
// seen before). Zeroing keeps carved memory byte-identical to make:
// some forward paths accumulate into their output.
func (a *Arena) floats(n int) []float32 {
	a.needF += n
	if a.off+n <= len(a.slab) {
		s := a.slab[a.off : a.off+n : a.off+n]
		a.off += n
		clear(s)
		return s
	}
	return make([]float32, n)
}

func (a *Arena) header() *Tensor {
	a.needH++
	if a.hoff < len(a.hdrs) {
		t := &a.hdrs[a.hoff]
		a.hoff++
		return t
	}
	return new(Tensor)
}

func (a *Arena) shapeOf(shape []int) []int {
	a.needI += len(shape)
	if a.ioff+len(shape) <= len(a.ints) {
		s := a.ints[a.ioff : a.ioff+len(shape) : a.ioff+len(shape)]
		a.ioff += len(shape)
		copy(s, shape)
		return s
	}
	return append([]int(nil), shape...)
}
