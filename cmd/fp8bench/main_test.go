package main

import (
	"os"

	"fp8quant/internal/evalx"
	"fp8quant/internal/resultstore"
	"strings"
	"testing"

	"fp8quant/internal/harness"
)

// TestParseShard covers the -shard flag syntax: 1-based "i/n" mapped
// to the harness's 0-based plan, with malformed and out-of-range specs
// rejected.
func TestParseShard(t *testing.T) {
	cases := []struct {
		in      string
		want    harness.Shard
		wantErr bool
	}{
		{in: "", want: harness.Shard{}},
		{in: "  ", want: harness.Shard{}},
		{in: "1/1", want: harness.Shard{Index: 0, Count: 1}},
		{in: "1/3", want: harness.Shard{Index: 0, Count: 3}},
		{in: "3/3", want: harness.Shard{Index: 2, Count: 3}},
		{in: " 2 / 3 ", want: harness.Shard{Index: 1, Count: 3}},
		{in: "0/3", wantErr: true}, // 1-based
		{in: "4/3", wantErr: true}, // out of range
		{in: "-1/3", wantErr: true},
		{in: "1/0", wantErr: true},
		{in: "1/-2", wantErr: true},
		{in: "1", wantErr: true},
		{in: "1/2/3", wantErr: true},
		{in: "a/b", wantErr: true},
		{in: "1/n", wantErr: true},
	}
	for _, tc := range cases {
		got, err := parseShard(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("parseShard(%q) = %+v, want error", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseShard(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("parseShard(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
		if err := got.Validate(); err != nil {
			t.Errorf("parseShard(%q) produced invalid plan: %v", tc.in, err)
		}
	}
}

// TestValidateFilterAxes pins the unknown-axis hard error: an axis no
// requested experiment declares fails fast with the per-experiment
// axis lists, while an axis valid for at least one experiment passes
// (the batch loop skips the others).
func TestValidateFilterAxes(t *testing.T) {
	if err := validateFilterAxes([]string{"table2"}, nil); err != nil {
		t.Errorf("nil filter: %v", err)
	}
	if err := validateFilterAxes([]string{"table2"}, harness.Filter{"model": {"resnet50"}}); err != nil {
		t.Errorf("declared axis: %v", err)
	}
	// fig6 has no "model" axis, but table2 does — valid for the batch.
	if err := validateFilterAxes([]string{"table2", "fig6"}, harness.Filter{"model": {"resnet50"}}); err != nil {
		t.Errorf("axis valid for one of two experiments: %v", err)
	}
	err := validateFilterAxes([]string{"table2"}, harness.Filter{"modle": {"resnet50"}})
	if err == nil {
		t.Fatal("typo'd axis must be a hard error, not an empty sub-grid")
	}
	for _, want := range []string{"modle", "table2", "model"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q should mention %q", err, want)
		}
	}
	// Scalar experiments are called out rather than listed as empty.
	err = validateFilterAxes([]string{"fig1"}, harness.Filter{"model": {"x"}})
	if err == nil || !strings.Contains(err.Error(), "no axes") {
		t.Errorf("scalar-only error = %v, want a no-axes note", err)
	}
}

// TestResolveIDs covers the -exp argument expansion.
func TestResolveIDs(t *testing.T) {
	ids, err := resolveIDs("table2, table3")
	if err != nil || len(ids) != 2 || ids[0] != "table2" || ids[1] != "table3" {
		t.Errorf("resolveIDs = %v, %v", ids, err)
	}
	if all, err := resolveIDs("all"); err != nil || len(all) != len(harness.IDs()) {
		t.Errorf("resolveIDs(all) = %d ids, %v", len(all), err)
	}
	for _, bad := range []string{"", ",", "nope", "table2,nope"} {
		if _, err := resolveIDs(bad); err == nil {
			t.Errorf("resolveIDs(%q) should error", bad)
		}
	}
}

// TestPrintCoverageCountsIncompleteGrids pins the -coverage exit
// contract's source of truth: the incomplete-grid count that main
// turns into a nonzero exit. An empty store reports the grid
// incomplete; a store holding every scheduled cell reports zero; a nil
// store is a hard error.
func TestPrintCoverageCountsIncompleteGrids(t *testing.T) {
	// The smallest registered grid keeps the fill loop cheap.
	var id string
	smallest := 1 << 30
	for _, eid := range harness.IDs() {
		if e, ok := harness.Get(eid); ok {
			if n := e.Spec().NumCells(); n > 0 && n < smallest {
				smallest, id = n, eid
			}
		}
	}
	if id == "" {
		t.Fatal("no grid experiments registered")
	}
	e, _ := harness.Get(id)
	spec := e.Spec()

	// printCoverage writes its table to stdout; swallow it.
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() { os.Stdout = old; devnull.Close() }()

	s, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	incomplete, err := printCoverage(s, []string{id})
	if err != nil || incomplete != 1 {
		t.Fatalf("empty store: incomplete = %d, %v; want 1 (drives the nonzero exit)", incomplete, err)
	}

	// Fill every scheduled cell (coverage checks presence and validity,
	// not values) and the grid reads complete.
	for i := 0; i < spec.NumCells(); i++ {
		cell := spec.CellAt(i)
		if err := s.SaveCell(spec.CellKey(cell), evalx.Result{QAcc: 1, BaseAcc: 1}); err != nil {
			t.Fatal(err)
		}
	}
	incomplete, err = printCoverage(s, []string{id})
	if err != nil || incomplete != 0 {
		t.Fatalf("full store: incomplete = %d, %v; want 0", incomplete, err)
	}

	if _, err := printCoverage(nil, []string{id}); err == nil {
		t.Fatal("nil store must be a hard -coverage error")
	}
}
