// Package nn is a from-scratch, forward-only (inference) neural network
// framework: the substrate the quantization study runs on. It provides
// the operator set the paper quantizes — Convolution, Linear, MatMul,
// BatchMatMul, Embedding, EmbeddingBag, BatchNorm, LayerNorm, Add, Mul —
// plus the attention and residual blocks needed to assemble the model
// zoo in internal/models.
//
// Quantization is attached through hooks rather than graph rewriting:
// every quantizable leaf module embeds a QState whose function fields
// are installed by internal/quant. During calibration the Observe hook
// records activation statistics; after preparation the Input hook
// fake-quantizes activations on the fly and weights are fake-quantized
// in place (with FP32 masters retained for restore). This mirrors how
// the paper's emulation framework interposes on FP32 compute.
package nn

import (
	"fp8quant/internal/tensor"
	"fp8quant/internal/tensor/kernels"
)

// QuantFunc fake-quantizes src into dst (which may alias src). A nil
// QuantFunc means "keep FP32".
type QuantFunc func(dst, src []float32)

// RowQuantFactory builds a chunkable fake-quant function for one
// concrete tensor: it is called once per forward with the tensor's full
// backing slice, binds any whole-tensor statistics there (a dynamic
// recipe's absmax scale), and returns an elementwise-pure QuantFunc the
// GEMM kernels may apply to arbitrary sub-slices during panel packing
// (see kernels.PackTQuantInto). The returned func applied chunk by
// chunk must produce exactly the bytes of the module's Input hook
// applied to the whole slice — that equivalence is what lets the fused
// path skip the quantized intermediate copy without perturbing results.
type RowQuantFactory func(src []float32) QuantFunc

// ObserveFunc records activation values during calibration runs.
type ObserveFunc func(values []float32)

// QState holds the quantization hooks of a quantizable leaf module.
// The zero value is a plain FP32 module.
type QState struct {
	// Input fake-quantizes the input activation before compute.
	Input QuantFunc
	// InputFused, when set alongside Input, is the fused-packing form
	// of the same quantization: matmul operands that feed straight into
	// a packed GEMM quantize during panel packing instead of
	// materializing a quantized copy. It must be bit-equivalent to
	// Input (see RowQuantFactory); position-dependent transforms (e.g.
	// SmoothQuant's per-column divisors) cannot be expressed here and
	// leave it nil.
	InputFused RowQuantFactory
	// Output fake-quantizes the module output (used by the extended
	// scheme for memory-bound ops like LayerNorm whose value is the
	// output tensor itself).
	Output QuantFunc
	// Observe records input activations during calibration.
	Observe ObserveFunc
	// ObserveOutput records output activations during calibration.
	ObserveOutput ObserveFunc
}

// applyIn runs the calibration and input-quantization hooks on x,
// returning either x itself (FP32 path) or a quantized copy carved
// from a (heap when a is nil).
func (q *QState) applyIn(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	if q.Observe != nil {
		q.Observe(x.Data)
	}
	if q.Input == nil {
		return x
	}
	out := a.New(x.Shape...)
	q.Input(out.Data, x.Data)
	return out
}

// fusedQuant runs the calibration hook on x and returns the chunkable
// quantizer for fusing x's fake-quant into GEMM panel packing, or nil
// when the operand must go through applyIn instead (no quantization,
// or no fused form of it). The non-nil return has already bound any
// whole-tensor statistics over x, so callers apply it only to x's data.
func (q *QState) fusedQuant(x *tensor.Tensor) kernels.QuantFunc {
	if q.Input == nil || q.InputFused == nil {
		return nil
	}
	if q.Observe != nil {
		q.Observe(x.Data)
	}
	return kernels.QuantFunc(q.InputFused(x.Data))
}

// applyOut runs the output-side hooks in place on y and returns it.
func (q *QState) applyOut(y *tensor.Tensor) *tensor.Tensor {
	if q.ObserveOutput != nil {
		q.ObserveOutput(y.Data)
	}
	if q.Output != nil {
		q.Output(y.Data, y.Data)
	}
	return y
}

// Reset clears all hooks, returning the module to pure FP32 behaviour.
func (q *QState) Reset() { *q = QState{} }

// Module is a unary computation node.
type Module interface {
	// Kind identifies the operator type ("Linear", "Conv2d",
	// "LayerNorm", ...) used by quantization schemes to select a
	// per-operator policy.
	Kind() string
	// Forward computes the module output for input x.
	Forward(x *tensor.Tensor) *tensor.Tensor
}

// ArenaForwarder is implemented by modules whose forward path can
// carve every intermediate from a preallocated tensor.Arena instead of
// the heap. The contract is strict bit-identity: ForwardArena(a, x)
// must run exactly the same kernels in exactly the same accumulation
// order as Forward(x) — the arena only replaces make — so planned and
// unplanned outputs compare byte-equal. ForwardArena(nil, x) must
// equal Forward(x) exactly (every implementation here defines Forward
// as that call).
type ArenaForwarder interface {
	Module
	ForwardArena(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor
}

// ForwardWith runs m on x, carving intermediates from a when m
// supports it. Modules without an arena path fall back to their heap
// Forward — still correct, just allocating — so a plan can execute any
// module tree.
func ForwardWith(a *tensor.Arena, m Module, x *tensor.Tensor) *tensor.Tensor {
	if af, ok := m.(ArenaForwarder); ok {
		return af.ForwardArena(a, x)
	}
	return m.Forward(x)
}

// Visitor is called for every module in a tree with its slash-separated
// path (e.g. "encoder/layer3/ffn/fc1").
type Visitor func(path string, m Module)

// Container is implemented by composite modules that own children.
type Container interface {
	// Visit calls v for each descendant leaf (and composite) module,
	// prefixing paths with the given path.
	Visit(path string, v Visitor)
}

// Walk traverses m (and its children, if it is a Container), invoking v
// for every module including m itself.
func Walk(m Module, v Visitor) {
	walk("", m, v)
}

// WalkChild visits m at the given path and recurses into it when it is
// a Container. Custom Container implementations outside this package
// call it from their Visit methods.
func WalkChild(path string, m Module, v Visitor) {
	walk(path, m, v)
}

func walk(path string, m Module, v Visitor) {
	v(path, m)
	if c, ok := m.(Container); ok {
		c.Visit(path, v)
	}
}

// Quantizable is implemented by leaf modules that carry quantization
// hooks. Q returns the module's QState for the quantizer to populate.
type Quantizable interface {
	Module
	Q() *QState
}

// Parametric is implemented by modules that own weight tensors eligible
// for weight quantization (bias vectors intentionally stay FP32, as in
// the paper's scheme).
type Parametric interface {
	Module
	// WeightTensor returns the module's weight.
	WeightTensor() *tensor.Tensor
	// OutChannelDim returns the weight dimension indexed by output
	// channel, over which per-channel scales are computed.
	OutChannelDim() int
}

// flatten2D views x as a matrix [rows, cols] where cols is the size of
// the last dimension. It panics if x has rank 0.
func flatten2D(x *tensor.Tensor) (rows, cols int) {
	cols = x.Shape[x.Rank()-1]
	rows = x.Len() / cols
	return rows, cols
}

// newLike carves a zeroed tensor shaped like x with the final dimension
// replaced by out (the Linear/matmul output shape). The fixed-size
// shape buffer stays on the stack, keeping planned forwards
// allocation-free.
func newLike(a *tensor.Arena, x *tensor.Tensor, out int) *tensor.Tensor {
	var buf [8]int
	r := x.Rank()
	if r > len(buf) {
		shape := append([]int(nil), x.Shape...)
		shape[r-1] = out
		return a.New(shape...)
	}
	copy(buf[:r], x.Shape)
	buf[r-1] = out
	return a.New(buf[:r]...)
}

// cloneInto is Clone with the copy carved from a: New + copy, the exact
// operation sequence of tensor.Clone, so element-wise modules built on
// it stay bit-identical under a plan.
func cloneInto(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	y := a.New(x.Shape...)
	copy(y.Data, x.Data)
	return y
}
