//go:build amd64

package kernels

// The amd64 inner kernels broadcast one x value per row and run
// MULPS+ADDPS over the 8 packed columns (two SSE lanes of 4). SSE1
// mul-then-add per lane is exactly the scalar float32 `acc += v*b`
// operation sequence — no FMA, no reassociation — so every lane stays
// bit-identical to the Go loop while 32 accumulator chains run
// concurrently.

// gemm4x8SSE accumulates acc[r*8+j] += Σ_k xr[k]·p[k*8+j] for four
// rows (x0..x3, each n floats) against one packed panel p (n×8).
//
//go:noescape
func gemm4x8SSE(x0, x1, x2, x3, p *float32, n int, acc *[mr * nr]float32)

// gemm1x8SSE is the single-row variant used for the rows%4 remainder.
//
//go:noescape
func gemm1x8SSE(x, p *float32, n int, acc *[nr]float32)

// inner4x8 runs the 4-row × 8-column microkernel over one packed
// panel. x holds the four rows back to back at stride in.
func inner4x8(x, p []float32, in int, acc *[mr * nr]float32) {
	gemm4x8SSE(&x[0], &x[in], &x[2*in], &x[3*in], &p[0], in, acc)
}

// inner1x8 runs the 1-row remainder microkernel over one packed panel.
func inner1x8(x, p []float32, in int, acc *[nr]float32) {
	gemm1x8SSE(&x[0], &p[0], in, acc)
}
