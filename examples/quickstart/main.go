// Quickstart: quantize a model from the zoo to FP8 and measure the
// accuracy retained against the FP32 reference.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fp8quant/internal/evalx"
	"fp8quant/internal/models"
	"fp8quant/internal/quant"
)

func main() {
	// 1. Build a model (ResNet-50 analogue from the 75-model zoo).
	net, err := models.Build("resnet50")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %s (%s, %s, %.0f MB)\n",
		net.Meta.Name, net.Meta.Domain, net.Meta.Task, net.Meta.SizeMB)

	// 2. Pick a recipe. StandardFP8 is the paper's standard scheme:
	//    per-channel weight scaling, per-tensor activation max scaling,
	//    static quantization, first/last conv kept in FP32.
	recipe := quant.StandardFP8(quant.E4M3)

	// 3. Quantize: calibrates on the model's dataset, rounds weights,
	//    installs activation fake-quant hooks.
	handle := quant.Quantize(net, net.Data, recipe)
	fmt.Printf("quantized ops: %v\n", handle.Report.QuantizedOps)
	fmt.Printf("kept in FP32:  first=%s last=%s\n",
		handle.Report.FirstOp, handle.Report.LastOp)

	// 4. Evaluate agreement with the FP32 reference, then restore.
	handle.Release()
	res := evalx.Evaluate(net, recipe, true)
	fmt.Printf("accuracy vs FP32: %.4f (relative loss %.2f%%, pass=%v)\n",
		res.QAcc, res.RelLoss*100, res.Pass)

	// 5. Compare all formats in one call.
	fmt.Println("\nformat comparison:")
	for _, r := range []quant.Recipe{
		quant.StandardFP8(quant.E5M2),
		quant.StandardFP8(quant.E4M3),
		quant.StandardFP8(quant.E3M4),
		quant.StandardINT8(false),
	} {
		res := evalx.Evaluate(net, r, true)
		fmt.Printf("  %-12s acc=%.4f loss=%5.2f%% pass=%v\n",
			r.Name(), res.QAcc, res.RelLoss*100, res.Pass)
	}
}
