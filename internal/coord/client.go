// Worker side of the sweep protocol. A worker is a plain loop: lease a
// cell, compute it through the exact harness path a local run uses
// (memo → store → RunCell, panic-isolated), push the store payload
// back, repeat until the coordinator says done. All HTTP calls go
// through a bounded retry with exponential backoff and jitter —
// connection refused and 5xx are transient (a restarting coordinator),
// 4xx are protocol errors and fail hard — and a cancelled context
// finishes gracefully: the in-flight cell is still computed and pushed
// before the worker exits, so SIGINT never wastes completed work.

package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"fp8quant/internal/faultline"
	"fp8quant/internal/harness"
	"fp8quant/internal/resultstore"
	"fp8quant/internal/tensor/kernels"
)

// workerSeq disambiguates default worker names within one process: the
// PR-9 postmortem found that two library-constructed workers with
// equal (or empty) names share a backoff-RNG seed and retry in
// lockstep, so the default name must be unique per Worker, not just
// per process.
var workerSeq atomic.Int64

// Worker pulls cell leases from a coordinator and pushes results back.
type Worker struct {
	// URL is the coordinator base URL (e.g. "http://127.0.0.1:8123").
	URL string
	// Name identifies the worker in coordinator bookkeeping and logs.
	// It also seeds the backoff-jitter RNG, so two workers sharing a
	// Name retry in lockstep (and confuse lease bookkeeping). Empty
	// defaults to "<host>-<pid>-<n>" with a per-process monotonic
	// counter, so library-constructed workers are collision-free with
	// no cmd wiring — give explicit names the same uniqueness.
	Name string
	// HTTP is the client used for all calls. Default: a client with a
	// 2-minute timeout (long-polls are not used by workers).
	HTTP *http.Client
	// Resolve maps an experiment id to its experiment. Default
	// harness.Get; tests inject synthetic experiments.
	Resolve func(id string) (harness.Experiment, bool)
	// MaxRetries bounds consecutive transient failures per call before
	// the worker gives up (the retry budget). Default 6.
	MaxRetries int
	// BaseDelay/MaxDelay shape the exponential backoff. Defaults
	// 200ms / 10s.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Log receives progress lines; nil discards them.
	Log io.Writer

	rng *rand.Rand
}

// WorkerStats summarizes one worker run.
type WorkerStats struct {
	// Computed counts cells this worker evaluated fresh.
	Computed int
	// Cached counts cells served from this worker's local cache layers.
	Cached int
	// Failed counts cells whose evaluation errored (pushed as Err).
	Failed int
}

func (w *Worker) defaults() {
	if w.Name == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "worker"
		}
		w.Name = fmt.Sprintf("%s-%d-%d", host, os.Getpid(), workerSeq.Add(1))
	}
	if w.HTTP == nil {
		w.HTTP = &http.Client{Timeout: 2 * time.Minute}
	}
	if w.Resolve == nil {
		w.Resolve = harness.Get
	}
	if w.MaxRetries <= 0 {
		w.MaxRetries = 6
	}
	if w.BaseDelay <= 0 {
		w.BaseDelay = 200 * time.Millisecond
	}
	if w.MaxDelay <= 0 {
		w.MaxDelay = 10 * time.Second
	}
	if w.rng == nil {
		// Jitter decorrelates workers' retry storms; seeding from the
		// worker name keeps the worker itself reproducible. Scheduling
		// jitter never reaches cell computation, so determinism of
		// results is untouched.
		var seed int64 = 1
		for _, r := range w.Name {
			seed = seed*131 + int64(r)
		}
		w.rng = rand.New(rand.NewSource(seed))
	}
}

func (w *Worker) logf(format string, args ...interface{}) {
	if w.Log != nil {
		fmt.Fprintf(w.Log, "worker %s: "+format+"\n", append([]interface{}{w.Name}, args...)...)
	}
}

// Run pulls and computes cells until the coordinator reports done (or
// draining), the context is cancelled, or the retry budget is
// exhausted. A context cancellation arriving mid-cell is graceful: the
// cell is finished and pushed first.
func (w *Worker) Run(ctx context.Context) (WorkerStats, error) {
	w.defaults()
	stopBeat := w.startHeartbeat(ctx)
	defer stopBeat()
	var stats WorkerStats
	for {
		if ctx.Err() != nil {
			w.logf("context cancelled, exiting")
			return stats, nil
		}
		var lr LeaseResponse
		if err := w.call(ctx, "/v1/lease", LeaseRequest{Worker: w.Name}, &lr); err != nil {
			return stats, fmt.Errorf("lease: %w", err)
		}
		switch lr.Status {
		case StatusDone:
			w.logf("schedule complete, exiting")
			return stats, nil
		case StatusDraining:
			w.logf("coordinator draining, exiting")
			return stats, nil
		case StatusWait:
			delay := time.Duration(lr.RetryMs) * time.Millisecond
			if delay <= 0 {
				delay = time.Second
			}
			if !w.sleep(ctx, w.jitter(delay)) {
				return stats, nil
			}
			continue
		case StatusLease:
			if lr.Lease == nil {
				return stats, fmt.Errorf("lease: coordinator sent status %q without a lease", lr.Status)
			}
		default:
			return stats, fmt.Errorf("lease: unknown status %q", lr.Status)
		}
		push := w.computeLease(*lr.Lease, &stats)
		// Push over a context detached from cancellation: if SIGINT
		// landed while computing, the finished cell must still reach the
		// coordinator — dropping it would waste the work and cost a
		// lease timeout.
		var pr PushResponse
		if err := w.call(context.Background(), "/v1/push", push, &pr); err != nil {
			return stats, fmt.Errorf("push %s: %w", push.Fingerprint, err)
		}
		w.logf("cell %s: %s", lr.Lease.Key, pr.Status)
	}
}

// startHeartbeat registers with the coordinator and re-hellos on the
// acked interval until the returned stop function is called. Hellos
// are best-effort single requests, never retried: registering opts the
// worker into stale detection (faster lease recovery when it dies),
// and a coordinator predating /v1/workers just answers 404 — the
// worker then runs exactly as before, with plain lease TTLs.
func (w *Worker) startHeartbeat(ctx context.Context) func() {
	interval := 15 * time.Second
	if ack, err := w.hello(ctx); err == nil && ack.HeartbeatMs > 0 {
		interval = time.Duration(ack.HeartbeatMs) * time.Millisecond
	}
	hbCtx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				_, _ = w.hello(hbCtx)
			}
		}
	}()
	return func() { cancel(); <-done }
}

// hello posts one WorkerHello (no retries — heartbeats are cheap and
// periodic, a missed one just arrives next tick).
func (w *Worker) hello(ctx context.Context) (WorkerAck, error) {
	var ack WorkerAck
	if err := faultline.Hit("coord.client.workers"); err != nil {
		return ack, err
	}
	host, _ := os.Hostname()
	body, err := json.Marshal(WorkerHello{
		Worker: w.Name, Host: host, Pid: os.Getpid(),
		KernelVariant: string(kernels.Active()),
	})
	if err != nil {
		return ack, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(w.URL, "/")+"/v1/workers", bytes.NewReader(body))
	if err != nil {
		return ack, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.HTTP.Do(req)
	if err != nil {
		return ack, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return ack, err
	}
	if resp.StatusCode != http.StatusOK {
		return ack, fmt.Errorf("hello: HTTP %d", resp.StatusCode)
	}
	return ack, json.Unmarshal(b, &ack)
}

// computeLease evaluates one leased cell and builds its push.
func (w *Worker) computeLease(l Lease, stats *WorkerStats) PushRequest {
	push := PushRequest{Worker: w.Name, LeaseID: l.ID, Fingerprint: l.Fingerprint}
	e, ok := w.Resolve(l.Exp)
	if !ok {
		stats.Failed++
		push.Err = fmt.Sprintf("worker %s does not know experiment %q (version skew?)", w.Name, l.Exp)
		return push
	}
	spec := e.Spec()
	if l.Index < 0 || l.Index >= spec.NumCells() {
		stats.Failed++
		push.Err = fmt.Sprintf("cell index %d out of range for %s's %d cells (schedule skew?)", l.Index, l.Exp, spec.NumCells())
		return push
	}
	// Recompute the content address from this worker's own spec: a
	// worker built from a different schedule must fail loudly rather
	// than push bytes under the coordinator's address.
	if fp := spec.CellKey(spec.CellAt(l.Index)).Fingerprint(); fp != l.Fingerprint {
		stats.Failed++
		push.Err = fmt.Sprintf("fingerprint mismatch on %s cell %d: coordinator says %s, worker derives %s (schedule skew)", l.Exp, l.Index, l.Fingerprint, fp)
		return push
	}
	start := time.Now()
	key, res, computed := harness.ComputeCell(e, l.Index)
	elapsed := time.Since(start)
	if res.Err != "" {
		// Cell failures are deterministic (runCellSafe converts panics);
		// report them so the coordinator stops rescheduling the cell.
		stats.Failed++
		push.Err = res.Err
		return push
	}
	payload, err := resultstore.EncodeCell(key, res)
	if err != nil {
		stats.Failed++
		push.Err = fmt.Sprintf("encoding cell payload: %v", err)
		return push
	}
	push.Payload = payload
	push.DurationMs = float64(elapsed) / float64(time.Millisecond)
	push.Computed = computed
	if computed {
		// Provenance travels with fresh work only, matching the local
		// executor: a cache hit says nothing about which tier produced
		// the stored bytes.
		push.KernelVariant = string(kernels.Active())
		stats.Computed++
	} else {
		stats.Cached++
	}
	return push
}

// call POSTs req as JSON and decodes the response into out, retrying
// transient failures (network errors, 5xx) with exponential backoff and
// jitter up to the retry budget. Non-5xx protocol errors fail
// immediately with the server's error message.
func (w *Worker) call(ctx context.Context, path string, req, out interface{}) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	url := strings.TrimRight(w.URL, "/") + path
	var lastErr error
	for attempt := 0; attempt <= w.MaxRetries; attempt++ {
		if attempt > 0 {
			if !w.sleep(ctx, w.backoff(attempt)) {
				return fmt.Errorf("cancelled while retrying %s: %w", path, lastErr)
			}
			w.logf("retrying %s (attempt %d/%d): %v", path, attempt, w.MaxRetries, lastErr)
		}
		// Client-transport failpoint ("coord.client.lease"/"…push"):
		// an injected error consumes an attempt like any network fault;
		// crash rules terminate the process here — mid-protocol, the
		// worst possible moment, which is the point.
		if err := faultline.Hit("coord.client." + strings.TrimPrefix(path, "/v1/")); err != nil {
			lastErr = err
			continue
		}
		httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return err
		}
		httpReq.Header.Set("Content-Type", "application/json")
		resp, err := w.HTTP.Do(httpReq)
		if err != nil {
			lastErr = err // connection refused, reset, timeout: transient
			continue
		}
		respBody, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode >= 500 {
			lastErr = fmt.Errorf("%s: HTTP %d: %s", path, resp.StatusCode, strings.TrimSpace(string(respBody)))
			continue
		}
		if resp.StatusCode != http.StatusOK {
			// 4xx is a protocol disagreement (bad push, conflict, unknown
			// cell) — retrying the identical request cannot help.
			var er errorResponse
			if json.Unmarshal(respBody, &er) == nil && er.Error != "" {
				return fmt.Errorf("%s: HTTP %d: %s", path, resp.StatusCode, er.Error)
			}
			return fmt.Errorf("%s: HTTP %d: %s", path, resp.StatusCode, strings.TrimSpace(string(respBody)))
		}
		return json.Unmarshal(respBody, out)
	}
	return fmt.Errorf("%s: retry budget exhausted after %d attempts: %w", path, w.MaxRetries+1, lastErr)
}

// backoff returns the delay before the given retry attempt (1-based):
// exponential from BaseDelay, capped at MaxDelay, with jitter.
func (w *Worker) backoff(attempt int) time.Duration {
	d := w.BaseDelay << uint(attempt-1)
	if d > w.MaxDelay || d <= 0 {
		d = w.MaxDelay
	}
	return w.jitter(d)
}

// jitter spreads a delay uniformly over [d, 3d/2), treating d as a
// floor: a StatusWait RetryMs is the coordinator's own estimate of when
// new work can exist, so sleeping less than it (the old [d/2, d)
// spread) just hammered the lease endpoint early for nothing. Jitter
// added on top still decorrelates workers retrying in lockstep.
func (w *Worker) jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	return d + time.Duration(w.rng.Int63n(int64(d/2)))
}

// sleep waits for d or until the context cancels; false on cancel.
func (w *Worker) sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
