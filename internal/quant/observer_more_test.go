package quant

import (
	"math"
	"testing"

	"fp8quant/internal/fp8"
	"fp8quant/internal/nn"
	"fp8quant/internal/tensor"
)

func TestHistogramObserverWaitsForNonZero(t *testing.T) {
	o := NewHistogramObserver(64)
	o.Observe([]float32{0, 0, 0})
	if o.AbsMax() != 0 {
		t.Errorf("absmax of zeros = %v", o.AbsMax())
	}
	// Thresholds degrade gracefully with no histogram.
	if th := o.KLThreshold(func(t float64) Quantizer { return fp8.NewInt8Symmetric(t) }); th != 0 {
		t.Errorf("KL threshold with no data = %v", th)
	}
	o.Observe([]float32{1, -2})
	if o.AbsMax() != 2 {
		t.Errorf("absmax = %v", o.AbsMax())
	}
}

func TestHistogramPinsWidthOnFirstData(t *testing.T) {
	o := NewHistogramObserver(64)
	o.Observe([]float32{1})
	// Later larger values clamp into the top bin but min/max tracking
	// still sees them.
	o.Observe([]float32{100})
	if o.AbsMax() != 100 {
		t.Errorf("absmax = %v", o.AbsMax())
	}
}

func TestPercentileObserverReservoirBounded(t *testing.T) {
	o := NewPercentileObserver(99)
	big := make([]float32, 100000)
	for i := range big {
		big[i] = float32(i)
	}
	o.Observe(big)
	if len(o.reservoir) > reservoirCap {
		t.Errorf("reservoir grew to %d", len(o.reservoir))
	}
}

func TestCalibratedThresholdFallsBackToAbsMax(t *testing.T) {
	// KL method with a MinMax observer (not histogram) falls back.
	o := NewMinMaxObserver()
	o.Observe([]float32{3, -4})
	th := CalibratedThreshold(o, CalibKL, func(t float64) Quantizer {
		return fp8.NewInt8Symmetric(t)
	})
	if th != 4 {
		t.Errorf("fallback threshold = %v, want 4", th)
	}
}

func TestNewScaledFP8DegenerateThreshold(t *testing.T) {
	q := NewScaledFP8(fp8.E4M3, 0)
	if got := q.Quantize(0.5); math.IsNaN(got) || math.IsInf(got, 0) {
		t.Errorf("degenerate scaled quantizer returned %v", got)
	}
}

func TestActQuantFuncVariants(t *testing.T) {
	if fn := ActQuantFunc(Recipe{Act: FP32}, 1, -1, 1); fn != nil {
		t.Error("FP32 recipe must return nil hook")
	}
	// Direct.
	fn := ActQuantFunc(Recipe{Act: E5M2, Approach: Direct}, 0, 0, 0)
	dst := make([]float32, 1)
	fn(dst, []float32{3.3})
	if float64(dst[0]) != fp8.E5M2.Quantize(3.3) {
		t.Errorf("direct variant wrong: %v", dst[0])
	}
	// INT8 dynamic on zeros.
	fn = ActQuantFunc(Recipe{Act: INT8, Approach: Dynamic}, 0, 0, 0)
	fn(dst, []float32{0})
	if dst[0] != 0 {
		t.Errorf("dynamic int8 of zero = %v", dst[0])
	}
	// Static FP8.
	fn = ActQuantFunc(Recipe{Act: E3M4, Approach: Static}, 2, -2, 2)
	fn(dst, []float32{1})
	scale := float32(fp8.E3M4.MaxValue() / 2)
	want := float32(fp8.E3M4.Quantize(float64(float32(1)*scale))) / scale
	if dst[0] != want {
		t.Errorf("static variant = %v, want %v", dst[0], want)
	}
}

func TestStaticFP8FuncDegenerate(t *testing.T) {
	fn := StaticFP8Func(fp8.E4M3, 0)
	dst := make([]float32, 2)
	fn(dst, []float32{1.5, -2.5})
	if dst[0] != 1.5 || dst[1] != -2.5 {
		t.Error("zero-threshold func must be identity")
	}
}

func TestQuantizeWeightPerChannelZeroChannel(t *testing.T) {
	w := tensor.FromSlice([]float32{0, 0, 1, 2}, 2, 2)
	QuantizeWeightPerChannel(w, 0, E4M3)
	if w.Data[0] != 0 || w.Data[1] != 0 {
		t.Error("all-zero channel must stay zero")
	}
}

func TestQuantizeFP32RecipeIsNoop(t *testing.T) {
	m := newTestMLP(99)
	ds := &vecDataset{n: 2, d: 8, batches: 1, seed: 1}
	before := m.Run(ds.Batch(0)).Clone()
	h := Quantize(m, ds, Recipe{})
	after := m.Run(ds.Batch(0))
	for i := range after.Data {
		if after.Data[i] != before.Data[i] {
			t.Fatal("FP32 recipe must not modify the model")
		}
	}
	h.Release()
}

// TestWeightOnlyRecipe quantizes weights while keeping activations in
// FP32 (Act: FP32, Wgt: E3M4): the weights round, no hooks install.
func TestWeightOnlyRecipe(t *testing.T) {
	m := newTestMLP(98)
	ds := &vecDataset{n: 2, d: 8, batches: 2, seed: 2}
	l1 := m.seq.Modules[0].(*nn.Linear)
	orig := append([]float32(nil), l1.W.Data...)
	r := Recipe{Act: FP32, Wgt: E3M4, Approach: Static, CalibBatches: 1}
	h := Quantize(m, ds, r)
	if l1.QS.Input != nil {
		t.Error("weight-only recipe must not install activation hooks")
	}
	changed := false
	for i := range orig {
		if l1.W.Data[i] != orig[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("weights were not rounded")
	}
	h.Release()
	for i := range orig {
		if l1.W.Data[i] != orig[i] {
			t.Fatal("weights not restored")
		}
	}
}
