// Package data provides deterministic synthetic dataset generators,
// calibration-time augmentation transforms, and the evaluation metrics
// used across the paper's 200+ tasks (accuracy, F1, Matthews
// correlation, Pearson, FID, …).
//
// Real datasets (ImageNet, GLUE, LibriSpeech, Criteo, …) are not
// available in this offline reproduction; per DESIGN.md the evaluation
// is teacher-is-truth: inputs come from these generators, and labels
// are defined by the FP32 model's own outputs, so the quantized model's
// "accuracy" is its agreement with the FP32 reference — the quantity
// the paper's pass-rate actually probes.
package data

import (
	"fp8quant/internal/tensor"
)

// Sample is one evaluation batch. Exactly one input field is set per
// modality; DLRM-style models use both X (dense features) and Bags
// (sparse categorical features).
type Sample struct {
	// X is a dense input: [N,C,H,W] for vision, [N,T,D] for audio
	// frames, [N,D] for tabular.
	X *tensor.Tensor
	// Tokens holds token-id sequences for NLP models.
	Tokens [][]int
	// Bags holds categorical id bags for EmbeddingBag models.
	Bags [][]int
}

// BatchSize returns the number of examples in the sample.
func (s Sample) BatchSize() int {
	if s.Tokens != nil {
		return len(s.Tokens)
	}
	if s.X != nil {
		return s.X.Shape[0]
	}
	return len(s.Bags)
}

// Dataset deterministically generates batches by index.
type Dataset interface {
	// Batch returns the i-th batch; the same index always returns the
	// same data.
	Batch(i int) Sample
	// Batches returns how many batches the dataset provides.
	Batches() int
}

// ImageDataset generates structured synthetic images: a mixture of
// Gaussian blobs, oriented gradients, and pixel noise, giving conv
// networks spatially-correlated inputs with realistic activation
// statistics (precision-bound, Figure 3 centre panel).
type ImageDataset struct {
	N, C, H, W int
	NumBatches int
	Seed       uint64
	// Transform optionally augments each batch (see Augment*).
	Transform Transform
}

// Batches implements Dataset.
func (d *ImageDataset) Batches() int { return d.NumBatches }

// Batch implements Dataset.
func (d *ImageDataset) Batch(i int) Sample {
	r := tensor.NewRNG(d.Seed + uint64(i)*0x9E37)
	x := tensor.New(d.N, d.C, d.H, d.W)
	for n := 0; n < d.N; n++ {
		// 2-3 blobs per image.
		nBlobs := 2 + r.Intn(2)
		type blob struct{ cy, cx, sig, amp float64 }
		blobs := make([]blob, nBlobs)
		for b := range blobs {
			blobs[b] = blob{
				cy:  r.Uniform(0, float64(d.H)),
				cx:  r.Uniform(0, float64(d.W)),
				sig: r.Uniform(1, float64(d.H)/3),
				amp: r.Uniform(0.5, 2),
			}
		}
		gradAngle := r.Uniform(-1, 1)
		for c := 0; c < d.C; c++ {
			chScale := 0.5 + 0.5*r.Float64()
			for y := 0; y < d.H; y++ {
				for xx := 0; xx < d.W; xx++ {
					v := gradAngle * (float64(y) - float64(xx)) / float64(d.H)
					for _, b := range blobs {
						dy, dx := float64(y)-b.cy, float64(xx)-b.cx
						v += b.amp * gauss2(dy, dx, b.sig)
					}
					v = v*chScale + 0.1*r.Norm()
					x.Set(float32(v), n, c, y, xx)
				}
			}
		}
	}
	if d.Transform != nil {
		x = d.Transform(x, r)
	}
	return Sample{X: x}
}

func gauss2(dy, dx, sig float64) float64 {
	d2 := (dy*dy + dx*dx) / (2 * sig * sig)
	if d2 > 8 {
		return 0
	}
	return expApprox(-d2)
}

// expApprox is a fast exp for the blob kernel (accuracy is irrelevant
// for data generation, determinism is not).
func expApprox(x float64) float64 {
	// 5th-order minimax-ish via repeated squaring of (1+x/32)^32.
	v := 1 + x/32
	if v < 0 {
		return 0
	}
	v *= v
	v *= v
	v *= v
	v *= v
	v *= v
	return v
}

// TokenDataset generates token-id sequences with Zipfian frequencies
// and local repetition structure, approximating natural-language token
// statistics for embedding/attention paths.
type TokenDataset struct {
	N, T       int // batch size, sequence length
	Vocab      int
	NumBatches int
	Seed       uint64
}

// Batches implements Dataset.
func (d *TokenDataset) Batches() int { return d.NumBatches }

// Batch implements Dataset.
func (d *TokenDataset) Batch(i int) Sample {
	r := tensor.NewRNG(d.Seed + uint64(i)*0x5851)
	toks := make([][]int, d.N)
	for n := range toks {
		seq := make([]int, d.T)
		prev := r.Intn(d.Vocab)
		for t := range seq {
			if r.Float64() < 0.2 && t > 0 {
				seq[t] = prev // local repetition
				continue
			}
			seq[t] = zipf(r, d.Vocab)
			prev = seq[t]
		}
		toks[n] = seq
	}
	return Sample{Tokens: toks}
}

// zipf samples an id in [0, n) with p(k) ∝ 1/(k+2), cheap inverse-CDF.
func zipf(r *tensor.RNG, n int) int {
	// Rejection-free: walk harmonic CDF with a random threshold.
	u := r.Float64()
	h := 0.0
	total := 0.0
	for k := 0; k < n; k++ {
		total += 1 / float64(k+2)
	}
	target := u * total
	for k := 0; k < n; k++ {
		h += 1 / float64(k+2)
		if h >= target {
			return k
		}
	}
	return n - 1
}

// TabularDataset generates dense feature vectors plus categorical bags
// for recommendation models (DLRM).
type TabularDataset struct {
	N, DenseDim int
	Vocab       int
	BagSize     int
	NumBatches  int
	Seed        uint64
}

// Batches implements Dataset.
func (d *TabularDataset) Batches() int { return d.NumBatches }

// Batch implements Dataset.
func (d *TabularDataset) Batch(i int) Sample {
	r := tensor.NewRNG(d.Seed + uint64(i)*0xABCD)
	x := tensor.New(d.N, d.DenseDim)
	x.FillNormal(r, 0, 1)
	// Log-normal-ish heavy tail on a few dense features (counters).
	for n := 0; n < d.N; n++ {
		for j := 0; j < d.DenseDim/4; j++ {
			v := x.At(n, j)
			x.Set(v*v*sign(v), n, j)
		}
	}
	bags := make([][]int, d.N)
	for n := range bags {
		bag := make([]int, d.BagSize)
		for k := range bag {
			bag[k] = zipf(r, d.Vocab)
		}
		bags[n] = bag
	}
	return Sample{X: x, Bags: bags}
}

func sign(v float32) float32 {
	if v < 0 {
		return -1
	}
	return 1
}

// AudioDataset generates waveform-like [N, 1, T] tensors: sums of
// sinusoid bursts plus noise, for the conv feature extractors of
// wav2vec2/HuBERT.
type AudioDataset struct {
	N, T       int
	NumBatches int
	Seed       uint64
}

// Batches implements Dataset.
func (d *AudioDataset) Batches() int { return d.NumBatches }

// Batch implements Dataset.
func (d *AudioDataset) Batch(i int) Sample {
	r := tensor.NewRNG(d.Seed + uint64(i)*0x7777)
	x := tensor.New(d.N, 1, d.T)
	for n := 0; n < d.N; n++ {
		nTones := 2 + r.Intn(3)
		freqs := make([]float64, nTones)
		amps := make([]float64, nTones)
		for k := range freqs {
			freqs[k] = r.Uniform(0.01, 0.4)
			amps[k] = r.Uniform(0.2, 1)
		}
		for t := 0; t < d.T; t++ {
			v := 0.05 * r.Norm()
			for k := range freqs {
				v += amps[k] * sin(freqs[k]*float64(t))
			}
			x.Set(float32(v), n, 0, t)
		}
	}
	return Sample{X: x}
}

// sin is a Bhaskara-approximation sine on the wrapped phase; exactness
// is irrelevant for synthetic audio.
func sin(x float64) float64 {
	const twoPi = 6.283185307179586
	x -= float64(int(x/twoPi)) * twoPi
	if x < 0 {
		x += twoPi
	}
	neg := false
	if x > 3.141592653589793 {
		x -= 3.141592653589793
		neg = true
	}
	v := 16 * x * (3.141592653589793 - x) /
		(49.348022005446793 - 4*x*(3.141592653589793-x))
	if neg {
		return -v
	}
	return v
}
