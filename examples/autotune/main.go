// autotune: the accuracy-driven tuning loop of Figure 2 — walk a
// recipe ladder, then greedily fall individual operators back to FP32
// until the accuracy goal is met.
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"log"

	"fp8quant/internal/evalx"
	"fp8quant/internal/models"
	"fp8quant/internal/quant"
)

func main() {
	net, err := models.Build("mobilenet_v3") // a hard model for FP8/INT8
	if err != nil {
		log.Fatal(err)
	}
	ref := evalx.ComputeReference(net)
	eval := func() float64 { return evalx.AccuracyAgainst(net, ref) }

	res := quant.AutoTune(net, net.Data, eval, 1.0,
		quant.DefaultCandidates(net.IsCNN()), 0.01, 24)

	fmt.Printf("tuning %s: %d trials\n\n", net.Meta.Name, len(res.Trials))
	for i, t := range res.Trials {
		fb := ""
		if len(t.Recipe.Fallback) > 0 {
			fb = fmt.Sprintf(" (+%d FP32 fallbacks)", len(t.Recipe.Fallback))
		}
		fmt.Printf("  trial %2d: %-14s%-24s acc=%.4f loss=%5.2f%% pass=%v\n",
			i+1, t.Recipe.Name(), fb, t.Accuracy, t.RelLoss*100, t.Passed)
	}
	if res.Passed {
		fmt.Printf("\nselected: %s with %d fallback ops, accuracy %.4f\n",
			res.Best.Name(), len(res.Best.Fallback), res.Accuracy)
	} else {
		fmt.Printf("\nno configuration met the goal; best %s at %.4f\n",
			res.Best.Name(), res.Accuracy)
	}
}
