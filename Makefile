GO ?= go

.PHONY: all build vet fmt fmt-check test bench smoke ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

# Fails if any file needs reformatting.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# Warm-cache smoke: run table3 twice against a fresh store; the second
# run must report 0 misses and print a byte-identical report (the
# timing/cache footer lines, which start with "(", are excluded).
smoke:
	@set -e; d=$$(mktemp -d); trap 'rm -rf "$$d"' EXIT; \
	$(GO) run ./cmd/fp8bench -exp table3 -cache-dir "$$d/store" > "$$d/run1.txt"; \
	$(GO) run ./cmd/fp8bench -exp table3 -cache-dir "$$d/store" > "$$d/run2.txt"; \
	grep -q ", 0 misses," "$$d/run2.txt" || { \
		echo "smoke: warm run had misses:"; grep "result store" "$$d/run2.txt"; exit 1; }; \
	grep -v "^(" "$$d/run1.txt" > "$$d/r1"; grep -v "^(" "$$d/run2.txt" > "$$d/r2"; \
	cmp "$$d/r1" "$$d/r2" || { echo "smoke: warm report differs from cold"; exit 1; }; \
	echo "smoke: warm run identical, 0 misses"

ci: build vet fmt-check test
