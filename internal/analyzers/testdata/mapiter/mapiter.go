// Fixture for the mapiter check. Lines carrying a want-marker comment
// must produce a finding whose message contains the quoted substring;
// every other line must stay silent.
package mapiterfix

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Positive: printing inside a map range leaks iteration order.
func printLeak(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want mapiter "fmt.Printf"
	}
}

// Positive: stream-writer methods emit in call order.
func builderLeak(m map[string]int, b *strings.Builder) {
	for k := range m {
		b.WriteString(k) // want mapiter "Builder.WriteString"
	}
}

// Positive: JSON-encoding per entry.
func jsonLeak(m map[string]int, out []byte) []byte {
	for k := range m {
		bs, _ := json.Marshal(k) // want mapiter "encoding/json.Marshal"
		out = append(out, bs...)
	}
	return out
}

// Positive: keys collected but never sorted afterwards.
func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want mapiter "never sorted"
	}
	return keys
}

// Positive: writing slice elements in key order records the order.
func orderedWrite(m map[int]string, out []string) {
	i := 0
	for _, v := range m {
		out[i] = v // want mapiter "ordered write"
		i++
	}
}

// Negative: the collect-then-sort idiom.
func sortedCollect(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Negative: a local helper whose name says it sorts counts too.
func sortedByHelper(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sortStrings(keys)
	return keys
}

func sortStrings(s []string) { sort.Strings(s) }

// Negative: map-to-map transfer, membership tests and counting are
// order-insensitive.
func transfer(dst, src map[string]int) int {
	n := 0
	for k, v := range src {
		dst[k] = v
		if _, ok := dst[k]; ok {
			n++
		}
	}
	return n
}

// Ignored: a documented exemption suppresses the finding.
func ignoredLeak(m map[string]int) {
	for k := range m {
		//fp8vet:ignore mapiter fixture exemption: demo output whose order is irrelevant
		fmt.Println(k)
	}
}
