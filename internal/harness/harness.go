// Package harness regenerates every table and figure of the paper's
// evaluation section. Every experiment is a declarative grid: it
// states its schedule (Spec — ordered named axes whose product is the
// cell set), a pure per-cell computation (RunCell), and a presentation
// step (Render) that turns the completed grid into a human-readable
// report plus structured values the test-suite asserts shape
// properties on. A single executor (executor.go) owns worker-pool
// fan-out, in-process memoization and per-cell persistence for all of
// them.
//
// Experiment ids match DESIGN.md's per-experiment index: fig1, fig3,
// table2, fig4, table3, fig5, fig6, table4, fig7, fig8, table5,
// table6, fig9, fig10, firstlast.
package harness

import (
	"fmt"
	"sort"
	"strings"

	"fp8quant/internal/evalx"
)

// Experiment is a reproduction unit declared as a cell grid. Run one
// with harness.Run (or RunGrid for filtered sub-grids).
type Experiment interface {
	// ID is the table/figure identifier (e.g. "table2").
	ID() string
	// Title describes the paper artifact.
	Title() string
	// Spec declares the grid schedule. A spec with no axes has no
	// cells; the experiment computes everything in Render.
	Spec() GridSpec
	// RunCell evaluates one cell. It must be pure: build (or
	// deterministically rebuild) everything it mutates, confine writes
	// to cell-local state, and return the same result for the same
	// cell regardless of scheduling. Never called for axis-less specs.
	RunCell(Cell) evalx.Result
	// Render turns the completed grid into the experiment's report.
	Render(*Grid) *Report
}

// Report carries the formatted output and the structured numbers.
type Report struct {
	// Text is the printable reproduction of the table/figure.
	Text string
	// Values holds named scalar results for programmatic checks.
	Values map[string]float64
}

// gridExp is the declarative Experiment implementation every exp_*.go
// file registers.
type gridExp struct {
	id, title string
	spec      func() GridSpec
	cell      func(Cell) evalx.Result
	render    func(*Grid) *Report
}

func (g gridExp) ID() string    { return g.id }
func (g gridExp) Title() string { return g.title }
func (g gridExp) Spec() GridSpec {
	if g.spec == nil {
		return GridSpec{ID: g.id}
	}
	return g.spec()
}
func (g gridExp) RunCell(c Cell) evalx.Result { return g.cell(c) }
func (g gridExp) Render(gr *Grid) *Report     { return g.render(gr) }

// registry of experiments, populated by init() in exp_*.go files.
var experiments = map[string]Experiment{}

func registerExp(e Experiment) {
	if _, dup := experiments[e.ID()]; dup {
		panic("harness: duplicate experiment " + e.ID())
	}
	experiments[e.ID()] = e
}

// registerGrid registers a declarative grid experiment.
func registerGrid(id, title string, spec func() GridSpec, cell func(Cell) evalx.Result, render func(*Grid) *Report) {
	registerExp(gridExp{id: id, title: title, spec: spec, cell: cell, render: render})
}

// registerScalar registers a cell-less experiment: a cheap computation
// with no grid to schedule, run entirely inside Render.
func registerScalar(id, title string, run func() *Report) {
	registerExp(gridExp{id: id, title: title, render: func(*Grid) *Report { return run() }})
}

// IDs returns the registered experiment ids, sorted.
func IDs() []string {
	out := make([]string, 0, len(experiments))
	for id := range experiments {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Get returns the experiment with the given id.
func Get(id string) (Experiment, bool) {
	e, ok := experiments[id]
	return e, ok
}

// table is a tiny fixed-width text table builder.
type table struct {
	header []string
	rows   [][]string
}

func newTable(cols ...string) *table { return &table{header: cols} }

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

// addf formats one row and splits it into cells on "|". A literal pipe
// inside a cell is written as `\|` (Table 2's "INT8 Static CV \|
// Dynamic NLP" label); a bare backslash is any backslash not escaping
// a pipe.
func (t *table) addf(format string, args ...interface{}) {
	s := fmt.Sprintf(format, args...)
	var cells []string
	var cur strings.Builder
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '\\' && i+1 < len(s) && s[i+1] == '|':
			cur.WriteByte('|')
			i++
		case s[i] == '|':
			cells = append(cells, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(s[i])
		}
	}
	cells = append(cells, cur.String())
	t.add(cells...)
}

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func pct(x float64) string { return fmt.Sprintf("%.2f%%", x) }
