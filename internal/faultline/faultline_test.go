package faultline

import (
	"errors"
	"strings"
	"syscall"
	"testing"
	"time"
)

// arm installs a plan and disarms on cleanup so tests never leak an
// armed plan into each other (the registry is process-global).
func arm(t *testing.T, p Plan) {
	t.Helper()
	if err := Arm(p); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	t.Cleanup(Disarm)
}

func TestDisarmedIsNoop(t *testing.T) {
	Disarm()
	if err := Hit("any.point"); err != nil {
		t.Fatalf("disarmed Hit returned %v", err)
	}
	b, err := WriteBytes("any.point", []byte("payload"))
	if err != nil || string(b) != "payload" {
		t.Fatalf("disarmed WriteBytes = %q, %v", b, err)
	}
	if Enabled() {
		t.Fatal("Enabled() true while disarmed")
	}
	if got := Report(); got != "" {
		t.Fatalf("disarmed Report = %q", got)
	}
}

func TestDisarmedZeroAlloc(t *testing.T) {
	Disarm()
	payload := []byte("x")
	allocs := testing.AllocsPerRun(1000, func() {
		if err := Hit("hot.path"); err != nil {
			t.Fatal(err)
		}
		if _, err := WriteBytes("hot.path", payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("disarmed failpoints allocate: %g allocs/op", allocs)
	}
}

func TestErrKindAndSentinels(t *testing.T) {
	arm(t, Plan{Rules: []Rule{
		{Pattern: "a.err", Kind: KindErr},
		{Pattern: "a.enospc", Kind: KindENOSPC},
		{Pattern: "a.h500", Kind: KindHTTP500},
		{Pattern: "a.drop", Kind: KindDrop},
	}})
	if err := Hit("a.err"); !Injected(err) {
		t.Fatalf("err kind: %v", err)
	}
	err := Hit("a.enospc")
	if !Injected(err) || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("enospc kind: %v", err)
	}
	if err := Hit("a.h500"); !errors.Is(err, ErrHTTP500) || !Injected(err) {
		t.Fatalf("http500 kind: %v", err)
	}
	if err := Hit("a.drop"); !errors.Is(err, ErrDrop) || !Injected(err) {
		t.Fatalf("drop kind: %v", err)
	}
	// Unmatched names stay clean.
	if err := Hit("b.other"); err != nil {
		t.Fatalf("unmatched point injected: %v", err)
	}
}

func TestFromAndMaxTriggers(t *testing.T) {
	arm(t, Plan{Rules: []Rule{{Pattern: "p", Kind: KindErr, From: 3, Max: 2}}})
	var got []bool
	for i := 0; i < 6; i++ {
		got = append(got, Hit("p") != nil)
	}
	want := []bool{false, false, true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d: injected=%v, want %v (all: %v)", i+1, got[i], want[i], got)
		}
	}
	st := Stats()
	if len(st) != 1 || st[0].Hits != 6 || st[0].Injected != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSeededProbabilityReplays(t *testing.T) {
	run := func() []bool {
		arm(t, Plan{Seed: 42, Rules: []Rule{{Pattern: "p", Kind: KindErr, Prob: 0.5}}})
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, Hit("p") != nil)
		}
		Disarm()
		return out
	}
	a, b := run(), run()
	injected := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at hit %d", i+1)
		}
		if a[i] {
			injected++
		}
	}
	if injected == 0 || injected == len(a) {
		t.Fatalf("prob 0.5 injected %d/%d — PRNG not engaged", injected, len(a))
	}
	// A different seed must make different decisions.
	arm(t, Plan{Seed: 43, Rules: []Rule{{Pattern: "p", Kind: KindErr, Prob: 0.5}}})
	var c []bool
	for i := 0; i < 64; i++ {
		c = append(c, Hit("p") != nil)
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed 42 and 43 made identical decision sequences")
	}
}

func TestPrefixPatternAndFirstMatchWins(t *testing.T) {
	arm(t, Plan{Rules: []Rule{
		{Pattern: "store.save.rename", Kind: KindENOSPC, Max: 1},
		{Pattern: "store.*", Kind: KindErr},
	}})
	// Specific rule wins first, then its budget is spent and the
	// prefix rule takes over.
	if err := Hit("store.save.rename"); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("first hit: %v", err)
	}
	if err := Hit("store.save.rename"); err == nil || errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("second hit should fall through to prefix rule: %v", err)
	}
	if err := Hit("store.load.read"); !Injected(err) {
		t.Fatalf("prefix rule: %v", err)
	}
	if err := Hit("coord.lease"); err != nil {
		t.Fatalf("outside prefix: %v", err)
	}
}

func TestTornAndCorruptWrites(t *testing.T) {
	arm(t, Plan{Rules: []Rule{
		{Pattern: "w.torn", Kind: KindTorn, Frac: 0.5},
		{Pattern: "w.corrupt", Kind: KindCorrupt, Frac: 0.99},
	}})
	payload := []byte("0123456789")
	b, err := WriteBytes("w.torn", payload)
	if !errors.Is(err, ErrTorn) || !Injected(err) {
		t.Fatalf("torn err = %v", err)
	}
	if len(b) != 5 || string(b) != "01234" {
		t.Fatalf("torn kept %q", b)
	}
	b, err = WriteBytes("w.corrupt", payload)
	if err != nil {
		t.Fatalf("corrupt must report success, got %v", err)
	}
	if len(b) >= len(payload) || len(b) == 0 {
		t.Fatalf("corrupt kept %q (must be strict non-empty prefix)", b)
	}
	// Torn at a plain Hit point degrades to a generic error.
	if err := Hit("w.torn"); !Injected(err) || errors.Is(err, ErrTorn) {
		t.Fatalf("Hit on torn rule = %v", err)
	}
}

func TestTruncateAlwaysTears(t *testing.T) {
	for _, n := range []int{0, 1, 2, 10} {
		b := make([]byte, n)
		got := truncate(b, 0.999)
		if n > 0 && len(got) >= n {
			t.Fatalf("truncate(%d bytes) kept %d", n, len(got))
		}
	}
}

func TestDelayKind(t *testing.T) {
	arm(t, Plan{Rules: []Rule{{Pattern: "d", Kind: KindDelay, Delay: 20 * time.Millisecond}}})
	start := time.Now()
	if err := Hit("d"); err != nil {
		t.Fatalf("delay returned error: %v", err)
	}
	if el := time.Since(start); el < 15*time.Millisecond {
		t.Fatalf("delay slept only %v", el)
	}
}

func TestCrashKindUsesHook(t *testing.T) {
	old := CrashFn
	t.Cleanup(func() { CrashFn = old })
	var crashed string
	CrashFn = func(name string) { crashed = name }
	arm(t, Plan{Rules: []Rule{{Pattern: "c", Kind: KindCrash, From: 2}}})
	if err := Hit("c"); err != nil || crashed != "" {
		t.Fatalf("crash fired early: %v %q", err, crashed)
	}
	if err := Hit("c"); err != nil {
		t.Fatalf("crash hook path returned error: %v", err)
	}
	if crashed != "c" {
		t.Fatalf("crash hook not invoked: %q", crashed)
	}
}

func TestParsePlanGrammar(t *testing.T) {
	p, err := ParsePlan("seed=7;resultstore.save.temp=corrupt:0.5@5x2;coord.server.push=http500@3x4;coord.client.push=err%0.3;w=delay:50ms;c=crash@2")
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	if p.Seed != 7 || len(p.Rules) != 5 {
		t.Fatalf("plan = %+v", p)
	}
	r := p.Rules[0]
	if r.Pattern != "resultstore.save.temp" || r.Kind != KindCorrupt || r.Frac != 0.5 || r.From != 5 || r.Max != 2 {
		t.Fatalf("rule 0 = %+v", r)
	}
	r = p.Rules[1]
	if r.Kind != KindHTTP500 || r.From != 3 || r.Max != 4 {
		t.Fatalf("rule 1 = %+v", r)
	}
	r = p.Rules[2]
	if r.Kind != KindErr || r.Prob != 0.3 {
		t.Fatalf("rule 2 = %+v", r)
	}
	if p.Rules[3].Delay != 50*time.Millisecond {
		t.Fatalf("rule 3 = %+v", p.Rules[3])
	}
	if p.Rules[4].Kind != KindCrash || p.Rules[4].From != 2 {
		t.Fatalf("rule 4 = %+v", p.Rules[4])
	}
	// Round-trip through String.
	p2, err := ParsePlan(p.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", p.String(), err)
	}
	if p2.String() != p.String() {
		t.Fatalf("round trip: %q != %q", p2.String(), p.String())
	}
}

func TestParsePlanRejects(t *testing.T) {
	for _, spec := range []string{
		"",                    // no rules
		"seed=7",              // seed only
		"p=bogus",             // unknown kind
		"p=err;seed=7",        // seed after rule
		"seed=1;seed=2;p=err", // duplicate seed
		"p=delay",             // delay without duration
		"p=delay:xyz",         // bad duration
		"p=torn",              // torn without fraction
		"p=torn:1.5",          // fraction out of range
		"p=corrupt:0",         // fraction out of range
		"p=err:5",             // param on paramless kind
		"p=err@0",             // from < 1
		"p=err%1.5",           // prob > 1
		"p=errx0",             // max < 1
		"just-a-name",         // no '='
		"=err",                // empty pattern
		"seed=notanint;p=err", // bad seed
	} {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) accepted", spec)
		}
	}
}

func TestArmFromEnv(t *testing.T) {
	t.Setenv(EnvVar, "")
	if armed, err := ArmFromEnv(); err != nil || armed {
		t.Fatalf("empty env: %v %v", armed, err)
	}
	t.Setenv(EnvVar, "p=err")
	armed, err := ArmFromEnv()
	if err != nil || !armed {
		t.Fatalf("ArmFromEnv: %v %v", armed, err)
	}
	t.Cleanup(Disarm)
	if err := Hit("p"); !Injected(err) {
		t.Fatalf("env-armed plan inert: %v", err)
	}
	t.Setenv(EnvVar, "p=bogus")
	if _, err := ArmFromEnv(); err == nil {
		t.Fatal("malformed env plan accepted")
	}
}

func TestReportFormat(t *testing.T) {
	arm(t, Plan{Rules: []Rule{{Pattern: "b.point", Kind: KindErr, Max: 1}}})
	Hit("b.point")
	Hit("b.point")
	Hit("a.point")
	rep := Report()
	if !strings.Contains(rep, "a.point: 1 hits, 0 injected") ||
		!strings.Contains(rep, "b.point: 2 hits, 1 injected") {
		t.Fatalf("report = %q", rep)
	}
	// Sorted: a before b.
	if strings.Index(rep, "a.point") > strings.Index(rep, "b.point") {
		t.Fatalf("report unsorted: %q", rep)
	}
}
