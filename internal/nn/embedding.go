package nn

import (
	"fmt"

	"fp8quant/internal/tensor"
)

// Embedding is a token-id → vector lookup table. Under the extended
// scheme the weight table itself is quantized (memory-bound op).
type Embedding struct {
	Vocab, Dim int
	// W has shape [Vocab, Dim].
	W *tensor.Tensor
	// QS.Output quantizes the gathered rows.
	QS QState
}

// NewEmbedding allocates a zero embedding table.
func NewEmbedding(vocab, dim int) *Embedding {
	return &Embedding{Vocab: vocab, Dim: dim, W: tensor.New(vocab, dim)}
}

// Kind implements Module.
func (e *Embedding) Kind() string { return "Embedding" }

// Q implements Quantizable.
func (e *Embedding) Q() *QState { return &e.QS }

// WeightTensor implements Parametric.
func (e *Embedding) WeightTensor() *tensor.Tensor { return e.W }

// OutChannelDim implements Parametric: rows index vocabulary entries.
func (e *Embedding) OutChannelDim() int { return 0 }

// Forward is unsupported; embeddings consume token IDs. Use Lookup.
func (e *Embedding) Forward(x *tensor.Tensor) *tensor.Tensor {
	panic("nn: Embedding consumes token IDs; call Lookup(ids)")
}

// Lookup gathers rows for a batch of token sequences, returning
// [B, T, Dim].
func (e *Embedding) Lookup(ids [][]int) *tensor.Tensor {
	if len(ids) == 0 {
		panic("nn: Embedding.Lookup with empty batch")
	}
	b, t := len(ids), len(ids[0])
	y := tensor.New(b, t, e.Dim)
	for bi, seq := range ids {
		if len(seq) != t {
			panic("nn: ragged token batch")
		}
		for ti, id := range seq {
			if id < 0 || id >= e.Vocab {
				panic(fmt.Sprintf("nn: token id %d out of vocab %d", id, e.Vocab))
			}
			copy(y.Data[(bi*t+ti)*e.Dim:], e.W.Data[id*e.Dim:(id+1)*e.Dim])
		}
	}
	return e.QS.applyOut(y)
}

// EmbeddingBag sums (or averages) embedding rows per bag — the DLRM
// sparse-feature op (EmbBag in Figure 9).
type EmbeddingBag struct {
	Vocab, Dim int
	W          *tensor.Tensor
	// Mean averages instead of summing.
	Mean bool
	QS   QState
}

// NewEmbeddingBag allocates a zero bag-embedding table.
func NewEmbeddingBag(vocab, dim int) *EmbeddingBag {
	return &EmbeddingBag{Vocab: vocab, Dim: dim, W: tensor.New(vocab, dim)}
}

// Kind implements Module.
func (e *EmbeddingBag) Kind() string { return "EmbeddingBag" }

// Q implements Quantizable.
func (e *EmbeddingBag) Q() *QState { return &e.QS }

// WeightTensor implements Parametric.
func (e *EmbeddingBag) WeightTensor() *tensor.Tensor { return e.W }

// OutChannelDim implements Parametric.
func (e *EmbeddingBag) OutChannelDim() int { return 0 }

// Forward is unsupported; use LookupBags.
func (e *EmbeddingBag) Forward(x *tensor.Tensor) *tensor.Tensor {
	panic("nn: EmbeddingBag consumes token bags; call LookupBags(bags)")
}

// LookupBags reduces each bag of ids to a single vector, returning
// [B, Dim].
func (e *EmbeddingBag) LookupBags(bags [][]int) *tensor.Tensor {
	y := tensor.New(len(bags), e.Dim)
	for bi, bag := range bags {
		dst := y.Data[bi*e.Dim : (bi+1)*e.Dim]
		for _, id := range bag {
			if id < 0 || id >= e.Vocab {
				panic(fmt.Sprintf("nn: token id %d out of vocab %d", id, e.Vocab))
			}
			row := e.W.Data[id*e.Dim : (id+1)*e.Dim]
			for i, v := range row {
				dst[i] += v
			}
		}
		if e.Mean && len(bag) > 0 {
			inv := 1 / float32(len(bag))
			for i := range dst {
				dst[i] *= inv
			}
		}
	}
	return e.QS.applyOut(y)
}

// PositionalEmbedding adds a learned position table to [B,T,D] input.
type PositionalEmbedding struct {
	MaxLen, Dim int
	W           *tensor.Tensor // [MaxLen, Dim]
}

// NewPositionalEmbedding allocates a zero position table.
func NewPositionalEmbedding(maxLen, dim int) *PositionalEmbedding {
	return &PositionalEmbedding{MaxLen: maxLen, Dim: dim, W: tensor.New(maxLen, dim)}
}

// Kind implements Module.
func (p *PositionalEmbedding) Kind() string { return "PositionalEmbedding" }

// Forward adds position rows to x [B,T,D]. Positions beyond MaxLen
// clamp to the final table row, so autoregressive generation can run
// past the training context (the graceful long-context behaviour of
// ALiBi-style models).
func (p *PositionalEmbedding) Forward(x *tensor.Tensor) *tensor.Tensor {
	return p.ForwardArena(nil, x)
}

// ForwardArena implements ArenaForwarder.
func (p *PositionalEmbedding) ForwardArena(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 3 || x.Shape[2] != p.Dim {
		panic(fmt.Sprintf("nn: PositionalEmbedding expects [B,T,%d], got %v", p.Dim, x.Shape))
	}
	b, t := x.Shape[0], x.Shape[1]
	y := cloneInto(a, x)
	for bi := 0; bi < b; bi++ {
		for ti := 0; ti < t; ti++ {
			pos := ti
			if pos >= p.MaxLen {
				pos = p.MaxLen - 1
			}
			dst := y.Data[(bi*t+ti)*p.Dim : (bi*t+ti+1)*p.Dim]
			row := p.W.Data[pos*p.Dim : (pos+1)*p.Dim]
			for i, v := range row {
				dst[i] += v
			}
		}
	}
	return y
}
