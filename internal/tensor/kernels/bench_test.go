package kernels

import (
	"fmt"
	"testing"

	"fp8quant/internal/tensor"
)

// matmulTNaive is a verbatim copy of the pre-kernel nn.matmulT loop
// (pre-sliced rows, single accumulator) — the honest baseline the
// speedup targets are measured against, not the slower plain-indexing
// oracle used by the correctness tests.
func matmulTNaive(y, x, w []float32, rows, in, out int) {
	for r := 0; r < rows; r++ {
		xr := x[r*in : (r+1)*in]
		yr := y[r*out : (r+1)*out]
		for o := 0; o < out; o++ {
			wo := w[o*in : (o+1)*in]
			var acc float32
			for k := range xr {
				acc += xr[k] * wo[k]
			}
			yr[o] = acc
		}
	}
}

// benchGemm measures one GEMM shape, reporting the streamed bytes
// (x + w read, y written) so MB/s lands in the bench-json trajectory.
func benchGemm(b *testing.B, rows, in, out int, naive bool) {
	// Normal-range data only: fillMixed's subnormal-scale values would
	// measure the CPU's denormal microcode penalty, not the kernel.
	rng := tensor.NewRNG(0xBEB)
	x := make([]float32, rows*in)
	w := make([]float32, out*in)
	y := make([]float32, rows*out)
	for i := range x {
		x[i] = float32(rng.Norm())
	}
	for i := range w {
		w[i] = float32(rng.Norm() * 0.1)
	}
	b.SetBytes(int64((rows*in + out*in + rows*out) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if naive {
			matmulTNaive(y, x, w, rows, in, out)
		} else {
			GemmT(y, x, w, rows, in, out, Opt{})
		}
	}
}

// BenchmarkMatmulT is the blocked kernel over the shapes that dominate
// the model zoo (Linear layers and attention projections).
func BenchmarkMatmulT(b *testing.B) {
	for _, s := range []struct{ rows, in, out int }{
		{16, 256, 256},
		{64, 256, 256},
		{128, 512, 512},
	} {
		b.Run(fmt.Sprintf("%dx%dx%d", s.rows, s.in, s.out), func(b *testing.B) {
			benchGemm(b, s.rows, s.in, s.out, false)
		})
	}
}

// benchMatmulVariant runs the BenchmarkMatmulT shape set with the
// dispatcher pinned to one variant, so a single session records
// directly comparable AVX2-vs-SSE rows in BENCH_kernels.json.
func benchMatmulVariant(b *testing.B, v Variant) {
	prev := Active()
	if err := ForceVariant(v); err != nil {
		b.Skip(err)
	}
	defer func() { _ = ForceVariant(prev) }()
	for _, s := range []struct{ rows, in, out int }{
		{16, 256, 256},
		{64, 256, 256},
		{128, 512, 512},
	} {
		b.Run(fmt.Sprintf("%dx%dx%d", s.rows, s.in, s.out), func(b *testing.B) {
			benchGemm(b, s.rows, s.in, s.out, false)
		})
	}
}

// BenchmarkMatmulTSSE pins the sse tier (amd64 fallback).
func BenchmarkMatmulTSSE(b *testing.B) { benchMatmulVariant(b, VariantSSE) }

// BenchmarkMatmulTAVX2 pins the avx2 tier; skipped on hosts without
// AVX2+FMA.
func BenchmarkMatmulTAVX2(b *testing.B) { benchMatmulVariant(b, VariantAVX2) }

// BenchmarkMatmulTNaive is the pre-kernel scalar loop over the same
// shapes — the baseline the ≥3x acceptance target is measured against.
func BenchmarkMatmulTNaive(b *testing.B) {
	for _, s := range []struct{ rows, in, out int }{
		{16, 256, 256},
		{64, 256, 256},
		{128, 512, 512},
	} {
		b.Run(fmt.Sprintf("%dx%dx%d", s.rows, s.in, s.out), func(b *testing.B) {
			benchGemm(b, s.rows, s.in, s.out, true)
		})
	}
}
