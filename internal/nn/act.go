package nn

import (
	"math"

	"fp8quant/internal/tensor"
)

// ReLU applies max(0, x) element-wise.
type ReLU struct{}

// Kind implements Module.
func (ReLU) Kind() string { return "ReLU" }

// Forward applies the activation.
func (r ReLU) Forward(x *tensor.Tensor) *tensor.Tensor { return r.ForwardArena(nil, x) }

// ForwardArena implements ArenaForwarder.
func (ReLU) ForwardArena(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	y := cloneInto(a, x)
	for i, v := range y.Data {
		if v < 0 {
			y.Data[i] = 0
		}
	}
	return y
}

// GELU applies the Gaussian error linear unit (tanh approximation, as
// used by BERT/GPT implementations).
type GELU struct{}

// Kind implements Module.
func (GELU) Kind() string { return "GELU" }

// Forward applies the activation.
func (g GELU) Forward(x *tensor.Tensor) *tensor.Tensor { return g.ForwardArena(nil, x) }

// ForwardArena implements ArenaForwarder.
func (GELU) ForwardArena(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	y := cloneInto(a, x)
	const c = 0.7978845608028654 // sqrt(2/pi)
	for i, v := range y.Data {
		f := float64(v)
		y.Data[i] = float32(0.5 * f * (1 + math.Tanh(c*(f+0.044715*f*f*f))))
	}
	return y
}

// SiLU applies x*sigmoid(x) (a.k.a. swish; used by EfficientNet and
// LLaMA's SwiGLU gate).
type SiLU struct{}

// Kind implements Module.
func (SiLU) Kind() string { return "SiLU" }

// Forward applies the activation.
func (s SiLU) Forward(x *tensor.Tensor) *tensor.Tensor { return s.ForwardArena(nil, x) }

// ForwardArena implements ArenaForwarder.
func (SiLU) ForwardArena(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	y := cloneInto(a, x)
	for i, v := range y.Data {
		f := float64(v)
		y.Data[i] = float32(f / (1 + math.Exp(-f)))
	}
	return y
}

// Sigmoid applies the logistic function.
type Sigmoid struct{}

// Kind implements Module.
func (Sigmoid) Kind() string { return "Sigmoid" }

// Forward applies the activation.
func (s Sigmoid) Forward(x *tensor.Tensor) *tensor.Tensor { return s.ForwardArena(nil, x) }

// ForwardArena implements ArenaForwarder.
func (Sigmoid) ForwardArena(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	y := cloneInto(a, x)
	for i, v := range y.Data {
		y.Data[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	return y
}

// Tanh applies the hyperbolic tangent.
type Tanh struct{}

// Kind implements Module.
func (Tanh) Kind() string { return "Tanh" }

// Forward applies the activation.
func (t Tanh) Forward(x *tensor.Tensor) *tensor.Tensor { return t.ForwardArena(nil, x) }

// ForwardArena implements ArenaForwarder.
func (Tanh) ForwardArena(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	y := cloneInto(a, x)
	for i, v := range y.Data {
		y.Data[i] = float32(math.Tanh(float64(v)))
	}
	return y
}

// HardSwish applies x*relu6(x+3)/6 (MobileNetV3).
type HardSwish struct{}

// Kind implements Module.
func (HardSwish) Kind() string { return "HardSwish" }

// Forward applies the activation.
func (h HardSwish) Forward(x *tensor.Tensor) *tensor.Tensor { return h.ForwardArena(nil, x) }

// ForwardArena implements ArenaForwarder.
func (HardSwish) ForwardArena(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	y := cloneInto(a, x)
	for i, v := range y.Data {
		r := v + 3
		if r < 0 {
			r = 0
		} else if r > 6 {
			r = 6
		}
		y.Data[i] = v * r / 6
	}
	return y
}

// Softmax normalizes the last dimension into a probability simplex.
type Softmax struct{}

// Kind implements Module.
func (Softmax) Kind() string { return "Softmax" }

// Forward applies a numerically-stable softmax over the last dim.
func (s Softmax) Forward(x *tensor.Tensor) *tensor.Tensor { return s.ForwardArena(nil, x) }

// ForwardArena implements ArenaForwarder.
func (Softmax) ForwardArena(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	y := a.New(x.Shape...)
	SoftmaxInto(y.Data, x.Data, x.Shape[x.Rank()-1])
	return y
}

// SoftmaxInto writes row-wise softmax of src into dst, with rows of
// length cols.
func SoftmaxInto(dst, src []float32, cols int) {
	rows := len(src) / cols
	for r := 0; r < rows; r++ {
		s := src[r*cols : (r+1)*cols]
		d := dst[r*cols : (r+1)*cols]
		maxV := s[0]
		for _, v := range s {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for i, v := range s {
			e := math.Exp(float64(v - maxV))
			d[i] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for i := range d {
			d[i] *= inv
		}
	}
}

// AddOp is the element-wise addition leaf quantized by the extended
// scheme (residual connections).
type AddOp struct {
	QA, QB QState
}

// Kind implements Module.
func (a *AddOp) Kind() string { return "Add" }

// Q returns the first operand's QState.
func (a *AddOp) Q() *QState { return &a.QA }

// Forward is unsupported: AddOp is binary. Use Apply.
func (a *AddOp) Forward(x *tensor.Tensor) *tensor.Tensor {
	panic("nn: AddOp is binary; call Apply(a, b)")
}

// Apply returns x + y element-wise.
func (a *AddOp) Apply(x, y *tensor.Tensor) *tensor.Tensor {
	return a.ApplyArena(nil, x, y)
}

// ApplyArena is Apply with the output carved from ar.
func (a *AddOp) ApplyArena(ar *tensor.Arena, x, y *tensor.Tensor) *tensor.Tensor {
	if x.Len() != y.Len() {
		panic("nn: AddOp size mismatch")
	}
	x = a.QA.applyIn(ar, x)
	y = a.QB.applyIn(ar, y)
	out := ar.New(x.Shape...)
	for i := range out.Data {
		out.Data[i] = x.Data[i] + y.Data[i]
	}
	return out
}

// MulOp is the element-wise multiplication leaf (gating, SE scaling).
type MulOp struct {
	QA, QB QState
}

// Kind implements Module.
func (m *MulOp) Kind() string { return "Mul" }

// Q returns the first operand's QState.
func (m *MulOp) Q() *QState { return &m.QA }

// Forward is unsupported: MulOp is binary. Use Apply.
func (m *MulOp) Forward(x *tensor.Tensor) *tensor.Tensor {
	panic("nn: MulOp is binary; call Apply(a, b)")
}

// Apply returns x * y element-wise. If y has exactly one value per
// leading row of x (e.g. per-channel SE scale [N,C] against [N,C,H,W]),
// it broadcasts.
func (m *MulOp) Apply(x, y *tensor.Tensor) *tensor.Tensor {
	return m.ApplyArena(nil, x, y)
}

// ApplyArena is Apply with the output carved from ar.
func (m *MulOp) ApplyArena(ar *tensor.Arena, x, y *tensor.Tensor) *tensor.Tensor {
	x = m.QA.applyIn(ar, x)
	y = m.QB.applyIn(ar, y)
	out := ar.New(x.Shape...)
	switch {
	case x.Len() == y.Len():
		for i := range out.Data {
			out.Data[i] = x.Data[i] * y.Data[i]
		}
	case x.Len()%y.Len() == 0:
		// Broadcast y over trailing block of x: x viewed as
		// [len(y), block].
		block := x.Len() / y.Len()
		for j := 0; j < y.Len(); j++ {
			s := y.Data[j]
			seg := x.Data[j*block : (j+1)*block]
			dst := out.Data[j*block : (j+1)*block]
			for i, v := range seg {
				dst[i] = v * s
			}
		}
	default:
		panic("nn: MulOp incompatible shapes")
	}
	return out
}
