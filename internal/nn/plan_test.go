package nn

import (
	"math"
	"runtime"
	"testing"

	"fp8quant/internal/tensor"
)

// planTestNet builds a module chain exercising every arena mechanism:
// conv (im2col + packed panels), BatchNorm, pooling, a Flatten view
// (arena header aliasing another side's data under ping-pong), packed
// linear layers and elementwise activations.
func planTestNet() *Sequential {
	r := tensor.NewRNG(0x9E3779B97F4A7C15)
	conv := NewConv2d(3, 8, 3, 1, 1, 1)
	conv.W.FillNormal(r, 0, 0.2)
	for i := range conv.B {
		conv.B[i] = float32(0.01 * r.Norm())
	}
	bn := NewBatchNorm2d(8)
	for i := 0; i < bn.C; i++ {
		bn.Gamma[i] = float32(1 + 0.1*r.Norm())
		bn.Beta[i] = float32(0.05 * r.Norm())
		bn.Mean[i] = float32(0.1 * r.Norm())
		bn.Var[i] = float32(0.5 + 0.5*r.Float64())
	}
	fc1 := NewLinear(8*6*6, 16)
	fc1.W.FillNormal(r, 0, 0.1)
	fc2 := NewLinear(16, 4)
	fc2.W.FillNormal(r, 0, 0.2)
	return NewSequential(conv, bn, ReLU{}, &MaxPool2d{K: 2, Stride: 2},
		Flatten{}, fc1, GELU{}, fc2)
}

func planTestInput(batch int, seed uint64) *tensor.Tensor {
	r := tensor.NewRNG(seed)
	x := tensor.New(batch, 3, 12, 12)
	x.FillNormal(r, 0, 1)
	return x
}

func bitsEqual(t *testing.T, got, want *tensor.Tensor, what string) {
	t.Helper()
	if len(got.Data) != len(want.Data) {
		t.Fatalf("%s: length %d vs %d", what, len(got.Data), len(want.Data))
	}
	for i := range got.Data {
		if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
			t.Fatalf("%s: bit mismatch at %d: %x vs %x", what, i,
				math.Float32bits(got.Data[i]), math.Float32bits(want.Data[i]))
		}
	}
}

// TestPlanBitIdenticalAcrossGOMAXPROCS pins the determinism contract:
// the unplanned path parallelizes across row chunks while the planned
// path runs serial per-worker kernels, and both must agree bit-for-bit
// at every parallelism level (the PR-5 blocked-GEMM guarantee).
func TestPlanBitIdenticalAcrossGOMAXPROCS(t *testing.T) {
	m := planTestNet()
	x := planTestInput(4, 7)
	want := m.Forward(x).Clone()
	for _, procs := range []int{1, 2, 8} {
		prev := runtime.GOMAXPROCS(procs)
		unplanned := m.Forward(x)
		bitsEqual(t, unplanned, want, "unplanned forward")
		p := Compile(m, x.Shape...)
		for i := 0; i < 3; i++ {
			bitsEqual(t, p.Forward(x), want, "planned forward")
		}
		runtime.GOMAXPROCS(prev)
	}
}

// TestPlanBatchedRowsMatchSingle checks the batched-forward contract:
// stacking N inputs and running one planned forward yields, row for
// row, the bits of N independent single-sample forwards (the batch
// dimension folds into the GEMM M dimension without changing any
// per-row accumulation order).
func TestPlanBatchedRowsMatchSingle(t *testing.T) {
	m := planTestNet()
	singles := make([]*tensor.Tensor, 5)
	outs := make([]*tensor.Tensor, 5)
	for i := range singles {
		singles[i] = planTestInput(1, uint64(100+i))
		outs[i] = m.Forward(singles[i]).Clone()
	}
	batch := tensor.StackBatch(singles)
	p := Compile(m, batch.Shape...)
	got := p.Forward(batch)
	for i := range singles {
		bitsEqual(t, got.Slice0(i, i+1), outs[i], "batched row")
	}
}

// TestPlanOutputAliasing verifies the memory-safety contract: planned
// outputs live in the plan's arenas, Clone moves them to the heap, and
// a later Forward does not disturb the clone.
func TestPlanOutputAliasing(t *testing.T) {
	m := planTestNet()
	x1 := planTestInput(2, 11)
	x2 := planTestInput(2, 13)
	p := Compile(m, x1.Shape...)
	out1 := p.Forward(x1)
	if !p.front.Owns(out1.Data) && !p.back.Owns(out1.Data) {
		t.Fatal("steady-state planned output does not live in an arena")
	}
	kept := out1.Clone()
	if p.front.Owns(kept.Data) || p.back.Owns(kept.Data) {
		t.Fatal("Clone of a planned output still aliases arena memory")
	}
	out2 := p.Forward(x2)
	// The clone must still hold x1's result, not x2's.
	want1 := m.Forward(x1)
	bitsEqual(t, kept, want1, "clone survives next Forward")
	want2 := m.Forward(x2)
	bitsEqual(t, out2, want2, "second planned forward")
}

// TestPlanShapeChangeRerecords runs one plan across alternating input
// shapes; each shape re-records (slabs grow monotonically) and results
// stay bit-identical to the unplanned path.
func TestPlanShapeChangeRerecords(t *testing.T) {
	m := planTestNet()
	xs := []*tensor.Tensor{
		planTestInput(1, 21), planTestInput(4, 22), planTestInput(2, 23),
	}
	p := NewPlan(m)
	for round := 0; round < 2; round++ {
		for i, x := range xs {
			got := p.Forward(x).Clone()
			want := m.Forward(x)
			bitsEqual(t, got, want, "shape-change forward")
			_ = i
		}
	}
}

// TestArenaHeapFallback checks that a nil arena behaves exactly like
// the heap constructors.
func TestArenaHeapFallback(t *testing.T) {
	var a *tensor.Arena
	x := a.New(2, 3)
	if x.Len() != 6 || x.Rank() != 2 {
		t.Fatalf("nil-arena New wrong tensor: %v", x.Shape)
	}
	s := a.Alloc(5)
	if len(s) != 5 {
		t.Fatalf("nil-arena Alloc length %d", len(s))
	}
	v := a.View(s, 5)
	if &v.Data[0] != &s[0] {
		t.Fatal("nil-arena View copied data")
	}
	a.Reset() // must not panic
	if a.Owns(s) {
		t.Fatal("nil arena claims ownership")
	}
}

// TestArenaZeroesCarvedMemory: carved regions must read as zero even
// after a previous cycle dirtied the slab (forward paths accumulate
// into freshly-"allocated" outputs).
func TestArenaZeroesCarvedMemory(t *testing.T) {
	var a tensor.Arena
	for cycle := 0; cycle < 3; cycle++ {
		a.Reset()
		x := a.New(4, 4)
		for i := range x.Data {
			if x.Data[i] != 0 {
				t.Fatalf("cycle %d: carved memory not zeroed at %d", cycle, i)
			}
			x.Data[i] = float32(i + 1)
		}
	}
}
