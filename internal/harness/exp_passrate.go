package harness

import (
	"errors"
	"fmt"

	"fp8quant/internal/data"
	"fp8quant/internal/evalx"
	"fp8quant/internal/models"
	"fp8quant/internal/quant"
)

func init() {
	registerGrid("table2", "Table 2: workload pass rate", sweepSpec, runSweepCell, renderTable2)
	registerGrid("fig4", "Figure 4: accuracy-loss variability CV vs NLP", sweepSpec, runSweepCell, renderFig4)
	registerGrid("table3", "Table 3: representative model accuracy", table3Spec, runTable3Cell, renderTable3)
	registerGrid("fig5", "Figure 5: accuracy loss by model size", sweepSpec, runSweepCell, renderFig5)
	registerGrid("fig7", "Figure 7: BatchNorm calibration sample size and transform", fig7Spec, runFig7Cell, renderFig7)
	registerGrid("table5", "Table 5: single vs mixed FP8 formats", table5Spec, runTable5Cell, renderTable5)
	registerGrid("table6", "Table 6: static vs dynamic quantization", table6Spec, runTable6Cell, renderTable6)
	registerGrid("fig9", "Figure 9: extended quantization recipes", fig9Spec, runFig9Cell, renderFig9)
	registerGrid("firstlast", "Section 4.3.1: quantizing first and last operators", firstLastSpec, runFirstLastCell, renderFirstLast)
}

// ---- the shared Table-2 sweep grid (table2, fig4, fig5) ----

// sweepRecipes pairs each Table 2 column label with its recipe
// constructor in one slice — the label becomes part of the persisted
// cell identity, so label and recipe must be impossible to reorder
// independently. The INT8 column follows the paper: static on CV,
// dynamic on NLP-like workloads.
var sweepRecipes = []struct {
	label  string
	recipe func(net *models.Network) quant.Recipe
}{
	{"E5M2 Direct", func(*models.Network) quant.Recipe { return quant.StandardFP8(quant.E5M2) }},
	{"E4M3 Static", func(*models.Network) quant.Recipe { return quant.StandardFP8(quant.E4M3) }},
	{"E4M3 Dynamic", func(*models.Network) quant.Recipe { return quant.DynamicFP8(quant.E4M3) }},
	{"E3M4 Static", func(*models.Network) quant.Recipe { return quant.StandardFP8(quant.E3M4) }},
	{"E3M4 Dynamic", func(*models.Network) quant.Recipe { return quant.DynamicFP8(quant.E3M4) }},
	{"INT8 Static CV | Dynamic NLP", func(net *models.Network) quant.Recipe {
		return quant.StandardINT8(net.Meta.Domain != models.CV)
	}},
}

var table2Labels = recipeLabels(sweepRecipes)

// recipeLabels projects the label column of a label+constructor slice.
func recipeLabels(rs []struct {
	label  string
	recipe func(net *models.Network) quant.Recipe
}) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.label
	}
	return out
}

// sweepSpecFor declares the Table-2-recipe sweep over the named
// models. Model weights derive from per-name seeds, so the
// experiment-level seed is constant.
func sweepSpecFor(names []string) GridSpec {
	return GridSpec{
		ID: "table2-sweep",
		Axes: []Axis{
			{Name: "model", Values: names},
			{Name: "recipe", Values: table2Labels},
		},
	}
}

// sweepSpec is the all-model sweep grid that table2, fig4 and fig5 all
// declare: because the grid id and axes are identical, the three
// experiments share memoized and persisted cells.
func sweepSpec() GridSpec { return sweepSpecFor(models.Names()) }

// runSweepCell evaluates one (model, recipe) cell of the sweep.
func runSweepCell(c Cell) evalx.Result {
	name, ri := c.Values[0], c.Coords[1]
	net, err := models.Build(name)
	if err != nil {
		return evalx.Failed(name, c.Values[1], err)
	}
	defer withPlan(name, net)()
	return evalx.EvaluateWithRef(net, sweepRecipes[ri].recipe(net), true, modelRef(name, net))
}

// gridColumn returns the evaluable results of one recipe column,
// skipping cells whose model failed to build.
func gridColumn(g *Grid, ri int) []evalx.Result {
	nm := len(g.Spec.Axes[0].Values)
	col := make([]evalx.Result, 0, nm)
	for mi := 0; mi < nm; mi++ {
		if r := g.At(mi, ri); r.Err == "" {
			col = append(col, r)
		}
	}
	return col
}

func renderTable2(g *Grid) *Report {
	tb := newTable("Data Type / Approach", "Pass Rate (CV)", "Pass Rate (NLP)", "Pass Rate (All)")
	vals := map[string]float64{}
	for ri, label := range table2Labels {
		pr := evalx.AggregatePassRates(gridColumn(g, ri))
		tb.add(label, pct(pr.CV), pct(pr.NLP), pct(pr.All))
		vals["cv_"+label] = pr.CV
		vals["nlp_"+label] = pr.NLP
		vals["all_"+label] = pr.All
	}
	return &Report{
		Text:   "Table 2 reproduction: workload pass rate (<=1% relative loss vs FP32).\n\n" + tb.String(),
		Values: vals,
	}
}

func renderFig4(g *Grid) *Report {
	// Figure 4 plots loss variability per format for CV and NLP:
	// E5M2, E4M3 (static), E3M4 (static), INT8.
	idx := map[string]int{"E5M2": 0, "E4M3": 1, "E3M4": 3, "INT8": 5}
	tb := newTable("format", "domain", "mean loss", "std", "median", "q1", "q3", "max")
	vals := map[string]float64{}
	for _, fmtName := range []string{"E5M2", "E4M3", "E3M4", "INT8"} {
		for _, dom := range []models.Domain{models.CV, models.NLP} {
			var losses []float64
			for _, r := range gridColumn(g, idx[fmtName]) {
				if r.Domain == dom {
					losses = append(losses, r.RelLoss*100)
				}
			}
			s := evalx.ComputeLossStats(losses)
			tb.add(fmtName, dom.String(),
				fmt.Sprintf("%.2f%%", s.Mean), fmt.Sprintf("%.2f", s.Std),
				fmt.Sprintf("%.2f%%", s.Median), fmt.Sprintf("%.2f%%", s.Q1),
				fmt.Sprintf("%.2f%%", s.Q3), fmt.Sprintf("%.2f%%", s.Max))
			vals[fmt.Sprintf("std_%s_%s", fmtName, dom)] = s.Std
			vals[fmt.Sprintf("mean_%s_%s", fmtName, dom)] = s.Mean
		}
	}
	return &Report{
		Text: "Figure 4 reproduction: distribution of accuracy loss per format and domain\n" +
			"(box-plot statistics; paper shows INT8 with the largest CV variability).\n\n" + tb.String(),
		Values: vals,
	}
}

func renderFig5(g *Grid) *Report {
	idx := map[string]int{"E5M2": 0, "E4M3": 1, "E3M4": 3, "INT8": 5}
	classes := []string{"tiny", "small", "medium", "large"}
	tb := newTable("domain", "size class", "format", "mean loss", "max loss", "n")
	vals := map[string]float64{}
	for _, dom := range []models.Domain{models.CV, models.NLP} {
		for _, sc := range classes {
			for _, f := range []string{"E5M2", "E4M3", "E3M4", "INT8"} {
				var losses []float64
				for _, r := range gridColumn(g, idx[f]) {
					info, _ := models.InfoFor(r.Model)
					if r.Domain == dom && info.SizeClass() == sc {
						losses = append(losses, r.RelLoss*100)
					}
				}
				if len(losses) == 0 {
					continue
				}
				s := evalx.ComputeLossStats(losses)
				tb.add(dom.String(), sc, f, fmt.Sprintf("%.2f%%", s.Mean),
					fmt.Sprintf("%.2f%%", s.Max), fmt.Sprintf("%d", s.N))
				vals[fmt.Sprintf("%s_%s_%s", dom, sc, f)] = s.Mean
			}
		}
	}
	return &Report{
		Text:   "Figure 5 reproduction: accuracy loss bucketed by model size class.\n\n" + tb.String(),
		Values: vals,
	}
}

// ---- table3 ----

// table3Models mirrors the representative sample of Table 3.
var table3Models = []string{
	"resnet50", "densenet121", "wav2vec2_librispeech", "dlrm_criteo",
	"bert_base_stsb", "bert_large_cola", "distilbert_mrpc",
	"bloom_7b1", "bloom_176b", "llama_65b",
}

// table3Recipes pairs column labels with recipe constructors (see
// sweepRecipes on why they live in one slice).
var table3Recipes = []struct {
	label  string
	recipe func(net *models.Network) quant.Recipe
}{
	{"E5M2", func(*models.Network) quant.Recipe { return quant.StandardFP8(quant.E5M2) }},
	{"E4M3", func(*models.Network) quant.Recipe { return quant.StandardFP8(quant.E4M3) }},
	{"E3M4", func(*models.Network) quant.Recipe { return quant.StandardFP8(quant.E3M4) }},
	{"INT8", func(net *models.Network) quant.Recipe {
		return quant.StandardINT8(net.Meta.Domain != models.CV)
	}},
}

func table3Spec() GridSpec {
	return GridSpec{
		ID: "table3",
		Axes: []Axis{
			{Name: "model", Values: table3Models},
			{Name: "recipe", Values: recipeLabels(table3Recipes)},
		},
	}
}

func runTable3Cell(c Cell) evalx.Result {
	name, ri := c.Values[0], c.Coords[1]
	net, err := models.Build(name)
	if err != nil {
		return evalx.Failed(name, c.Values[1], err)
	}
	defer withPlan(name, net)()
	return evalx.EvaluateWithRef(net, table3Recipes[ri].recipe(net), true, modelRef(name, net))
}

func renderTable3(g *Grid) *Report {
	tb := newTable("Model", "Task", "FP32", "E5M2", "E4M3", "E3M4", "INT8")
	vals := map[string]float64{}
	for mi, name := range table3Models {
		res := make([]evalx.Result, len(table3Recipes))
		ok := true
		for ri := range table3Recipes {
			res[ri] = g.At(mi, ri)
			if res[ri].Err != "" {
				ok = false
			}
		}
		if !ok {
			continue
		}
		info, _ := models.InfoFor(name)
		tb.add(name, info.Task, "1.0000",
			fmt.Sprintf("%.4f", res[0].QAcc), fmt.Sprintf("%.4f", res[1].QAcc),
			fmt.Sprintf("%.4f", res[2].QAcc), fmt.Sprintf("%.4f", res[3].QAcc))
		vals[name+"_E4M3"] = res[1].QAcc
		vals[name+"_E3M4"] = res[2].QAcc
		vals[name+"_INT8"] = res[3].QAcc
		vals[name+"_E5M2"] = res[0].QAcc
	}
	return &Report{
		Text: "Table 3 reproduction: teacher-is-truth accuracy of representative models\n" +
			"(FP32 reference accuracy is 1.0 by construction; paper reports task metrics).\n\n" + tb.String(),
		Values: vals,
	}
}

// ---- fig7 ----

// fig7Models are BatchNorm CV models from the Figure 7 list (the
// cheaper half — the full list is available in the zoo but the single
// pass-rate protocol already covers it; see DESIGN.md on runtime).
var fig7Models = []string{
	"resnet18", "peleenet", "mobilenet_v2", "googlenet",
	"shufflenet_v2", "densenet121", "efficientnet_b0", "squeezenet",
}

// fig7Cfgs is the sample-size x transform calibration grid: {300, 3K,
// 10K} paper sample counts scaled down ~3x to match the zoo's
// scaled-down models (see DESIGN.md §5), plus 3K with the inference
// transform.
var fig7Cfgs = []struct {
	label     string
	samples   int
	transform data.Transform
}{
	{"100 Samples + Training", 100, data.AugmentTraining},
	{"3.2K Samples + Training", 3200, data.AugmentTraining},
	{"1K Samples + Inference", 1000, data.AugmentInference},
	{"1K Samples + Training", 1000, data.AugmentTraining},
}

var errNoBatchNorm = errors.New("model has no BatchNorm")

func fig7Spec() GridSpec {
	labels := make([]string, len(fig7Cfgs))
	for i, c := range fig7Cfgs {
		labels[i] = c.label
	}
	return GridSpec{
		ID:   "fig7",
		Seed: 0xF167,
		Axes: []Axis{
			{Name: "model", Values: fig7Models},
			{Name: "calib", Values: labels},
		},
	}
}

func runFig7Cell(c Cell) evalx.Result {
	name, ci := c.Values[0], c.Coords[1]
	cfg := fig7Cfgs[ci]
	net, err := models.Build(name)
	if err != nil {
		return evalx.Failed(name, cfg.label, err)
	}
	if !net.Meta.HasBN {
		return evalx.Failed(name, cfg.label, errNoBatchNorm)
	}
	defer withPlan(name, net)()
	ref := modelRef(name, net)
	// Batches of 16 images -> sample count / 16 BN batches.
	bnBatches := cfg.samples / 16
	if bnBatches < 1 {
		bnBatches = 1
	}
	ds := &data.ImageDataset{N: 16, C: 3, H: 12, W: 12,
		NumBatches: bnBatches, Seed: 0xF167, Transform: cfg.transform}
	r := quant.StandardFP8(quant.E4M3)
	r.CalibBatches = evalx.CalibBatches
	r = r.WithBNCalib(bnBatches)
	loss := evaluateBNConfig(net, ds, r, ref)
	return evalx.Result{
		Model: name, Domain: net.Meta.Domain, Recipe: cfg.label,
		BaseAcc: 1, QAcc: 1 - loss, RelLoss: loss, Pass: data.Passes(1.0, 1-loss),
	}
}

func renderFig7(g *Grid) *Report {
	tb := newTable("model", fig7Cfgs[0].label, fig7Cfgs[1].label, fig7Cfgs[2].label, fig7Cfgs[3].label)
	vals := map[string]float64{}
	for mi, name := range fig7Models {
		row := []string{name}
		ok := true
		for ci := range fig7Cfgs {
			r := g.At(mi, ci)
			if r.Err != "" {
				ok = false
				break
			}
			row = append(row, fmt.Sprintf("%.2f%%", r.RelLoss*100))
		}
		// Values are written only for fully evaluated rows, so a model
		// dropped from the table never leaks a partial subset.
		if !ok {
			continue
		}
		tb.add(row...)
		for ci, cfg := range fig7Cfgs {
			vals[name+"_"+cfg.label] = g.At(mi, ci).RelLoss * 100
		}
	}
	return &Report{
		Text: "Figure 7 reproduction: accuracy loss after E4M3 quantization with BatchNorm\n" +
			"calibration at different sample sizes and transforms (lower is better).\n\n" + tb.String(),
		Values: vals,
	}
}

// evaluateBNConfig quantizes with the given dataset (which carries the
// augmentation transform) and returns the relative accuracy loss.
func evaluateBNConfig(net *models.Network, ds data.Dataset, r quant.Recipe, ref evalx.Reference) float64 {
	h := quant.Quantize(net, ds, r)
	acc := evalx.AccuracyAgainst(net, ref)
	h.Release()
	return data.RelativeLoss(1.0, acc)
}

// ---- table5 ----

// table5Models are the mixed-format study models of Table 5.
var table5Models = []string{"bert_base_mrpc", "bert_large_rte", "funnel_mrpc", "longformer_mrpc"}

// table5Recipes pairs column labels with recipe constructors (see
// sweepRecipes on why they live in one slice).
var table5Recipes = []struct {
	label  string
	recipe func(net *models.Network) quant.Recipe
}{
	{"E5M2", func(*models.Network) quant.Recipe { return quant.StandardFP8(quant.E5M2) }},
	{"E4M3", func(*models.Network) quant.Recipe { return quant.StandardFP8(quant.E4M3) }},
	{"E3M4", func(*models.Network) quant.Recipe { return quant.StandardFP8(quant.E3M4) }},
	{"Mixed", func(*models.Network) quant.Recipe { return quant.MixedFP8() }},
}

func table5Spec() GridSpec {
	return GridSpec{
		ID: "table5",
		Axes: []Axis{
			{Name: "model", Values: table5Models},
			{Name: "recipe", Values: recipeLabels(table5Recipes)},
		},
	}
}

func runTable5Cell(c Cell) evalx.Result {
	name, ri := c.Values[0], c.Coords[1]
	net, err := models.Build(name)
	if err != nil {
		return evalx.Failed(name, c.Values[1], err)
	}
	defer withPlan(name, net)()
	return evalx.EvaluateWithRef(net, table5Recipes[ri].recipe(net), true, modelRef(name, net))
}

func renderTable5(g *Grid) *Report {
	tb := newTable("Model", "Task", "FP32", "E5M2", "E4M3", "E3M4", "Mixed")
	vals := map[string]float64{}
	for mi, name := range table5Models {
		res := make([]evalx.Result, len(table5Recipes))
		ok := true
		for ri := range table5Recipes {
			res[ri] = g.At(mi, ri)
			if res[ri].Err != "" {
				ok = false
			}
		}
		if !ok {
			continue
		}
		info, _ := models.InfoFor(name)
		tb.add(name, info.Task, "1.0000",
			fmt.Sprintf("%.4f", res[0].QAcc), fmt.Sprintf("%.4f", res[1].QAcc),
			fmt.Sprintf("%.4f", res[2].QAcc), fmt.Sprintf("%.4f", res[3].QAcc))
		vals[name+"_E5M2"] = res[0].QAcc
		vals[name+"_E4M3"] = res[1].QAcc
		vals[name+"_E3M4"] = res[2].QAcc
		vals[name+"_Mixed"] = res[3].QAcc
	}
	return &Report{
		Text: "Table 5 reproduction: single vs mixed FP8 formats (E4M3 activations +\n" +
			"E3M4 weights) on the paper's mixed-format study models.\n\n" + tb.String(),
		Values: vals,
	}
}

// ---- table6 ----

// table6Cases are the static-vs-dynamic comparisons of Table 6.
var table6Cases = []struct {
	model  string
	format quant.DType
}{
	{"bert_base_mrpc", quant.E4M3},
	{"bert_base_cola", quant.E4M3},
	{"bert_large_rte", quant.E4M3},
	{"xlm_roberta_mrpc", quant.E3M4},
}

func table6Spec() GridSpec {
	ms := make([]string, len(table6Cases))
	for i, c := range table6Cases {
		ms[i] = c.model
	}
	return GridSpec{
		ID: "table6",
		Axes: []Axis{
			{Name: "model", Values: ms},
			{Name: "approach", Values: []string{"Dynamic", "Static"}},
		},
	}
}

func runTable6Cell(c Cell) evalx.Result {
	cs := table6Cases[c.Coords[0]]
	net, err := models.Build(cs.model)
	if err != nil {
		return evalx.Failed(cs.model, c.Values[1], err)
	}
	defer withPlan(cs.model, net)()
	var r quant.Recipe
	if c.Coords[1] == 0 {
		r = quant.DynamicFP8(cs.format)
	} else {
		r = quant.StandardFP8(cs.format)
	}
	return evalx.EvaluateWithRef(net, r, true, modelRef(cs.model, net))
}

func renderTable6(g *Grid) *Report {
	tb := newTable("Model", "FP8 Format", "Dynamic", "Static", "Improvement")
	vals := map[string]float64{}
	for mi, cs := range table6Cases {
		rd, rs := g.At(mi, 0), g.At(mi, 1)
		if rd.Err != "" || rs.Err != "" {
			continue
		}
		dyn, st := rd.QAcc, rs.QAcc
		tb.add(cs.model, cs.format.String(),
			fmt.Sprintf("%.4f", dyn), fmt.Sprintf("%.4f", st),
			fmt.Sprintf("%+.2f%%", (dyn-st)*100))
		vals[cs.model+"_dynamic"] = dyn
		vals[cs.model+"_static"] = st
	}
	return &Report{
		Text: "Table 6 reproduction: static vs dynamic quantization on NLP workloads\n" +
			"(paper reports dynamic improving E4M3/E3M4 accuracy on selected models).\n\n" + tb.String(),
		Values: vals,
	}
}

// ---- fig9 ----

// fig9Group is one Figure 9 table row: a (domain, format, coverage)
// triple averaged over its 12 models.
type fig9Group struct {
	domain  string
	format  quant.DType
	altOps  bool // CV: +first/last; NLP: extended coverage
	names   []string
	label   string
	valsKey string
}

const fig9GroupSize = 12

func fig9Groups() []fig9Group {
	cvNames := models.NamesByDomain(models.CV)[:fig9GroupSize]
	nlpNames := models.NamesByDomain(models.NLP)[:fig9GroupSize]
	var groups []fig9Group
	for _, f := range []quant.DType{quant.E5M2, quant.E4M3, quant.E3M4} {
		for _, alt := range []bool{false, true} {
			label := "Conv,Linear"
			if alt {
				label = "Conv,Linear -1st&LastOps"
			}
			groups = append(groups, fig9Group{"CV", f, alt, cvNames, label,
				fmt.Sprintf("cv_%s_firstlast_%v", f, alt)})
		}
	}
	for _, f := range []quant.DType{quant.E5M2, quant.E4M3, quant.E3M4} {
		for _, alt := range []bool{false, true} {
			label := "Linear"
			if alt {
				label = "Linear +BMM,MM,Emb,LayerNorm"
			}
			groups = append(groups, fig9Group{"NLP", f, alt, nlpNames, label,
				fmt.Sprintf("nlp_%s_extended_%v", f, alt)})
		}
	}
	return groups
}

// fig9Spec flattens the (group, model) schedule into one axis whose
// values carry the full cell identity (domain/format/coverage/model),
// since the model list differs per group and the grid must stay
// self-describing for the result store.
func fig9Spec() GridSpec {
	groups := fig9Groups()
	vals := make([]string, 0, len(groups)*fig9GroupSize)
	for _, g := range groups {
		cov := "base"
		if g.altOps {
			cov = "alt"
		}
		for _, name := range g.names {
			vals = append(vals, fmt.Sprintf("%s/%s/%s/%s", g.domain, g.format, cov, name))
		}
	}
	return GridSpec{ID: "fig9", Axes: []Axis{{Name: "config", Values: vals}}}
}

func runFig9Cell(c Cell) evalx.Result {
	groups := fig9Groups()
	g := groups[c.Index/fig9GroupSize]
	name := g.names[c.Index%fig9GroupSize]
	net, err := models.Build(name)
	if err != nil {
		return evalx.Failed(name, g.label, err)
	}
	defer withPlan(name, net)()
	r := quant.StandardFP8(g.format)
	if g.altOps {
		if g.domain == "CV" {
			r = r.WithFirstLast()
		} else {
			r = r.WithExtendedOps()
		}
	}
	return evalx.EvaluateWithRef(net, r, true, modelRef(name, net))
}

func renderFig9(g *Grid) *Report {
	vals := map[string]float64{}
	tb := newTable("domain", "recipe", "format", "mean loss", "std", "max")
	for gi, grp := range fig9Groups() {
		var losses []float64
		for mi := 0; mi < fig9GroupSize; mi++ {
			if r := g.Results[gi*fig9GroupSize+mi]; r.Err == "" {
				losses = append(losses, r.RelLoss*100)
			}
		}
		s := evalx.ComputeLossStats(losses)
		tb.add(grp.domain, grp.label, grp.format.String(), fmt.Sprintf("%.2f%%", s.Mean),
			fmt.Sprintf("%.2f", s.Std), fmt.Sprintf("%.2f%%", s.Max))
		vals[grp.valsKey] = s.Mean
	}
	return &Report{
		Text: "Figure 9 reproduction: accuracy impact of extended quantization recipes\n" +
			"(CV: quantizing first/last ops; NLP: expanded operator coverage).\n\n" + tb.String(),
		Values: vals,
	}
}

// ---- firstlast ----

var firstLastFormats = []quant.DType{quant.E5M2, quant.E4M3, quant.E3M4}

// firstLastCNNs returns the CNN subset of the CV zoo (Section 4.3.1's
// study population).
func firstLastCNNs() []string {
	var cnns []string
	for _, name := range models.NamesByDomain(models.CV) {
		if info, _ := models.InfoFor(name); info.IsCNN {
			cnns = append(cnns, name)
		}
	}
	return cnns
}

func firstLastSpec() GridSpec {
	fms := make([]string, len(firstLastFormats))
	for i, f := range firstLastFormats {
		fms[i] = f.String()
	}
	return GridSpec{
		ID: "firstlast",
		Axes: []Axis{
			{Name: "format", Values: fms},
			{Name: "variant", Values: []string{"std", "first/last"}},
			{Name: "model", Values: firstLastCNNs()},
		},
	}
}

func runFirstLastCell(c Cell) evalx.Result {
	name := c.Values[2]
	net, err := models.Build(name)
	if err != nil {
		return evalx.Failed(name, c.Values[0]+" "+c.Values[1], err)
	}
	defer withPlan(name, net)()
	r := quant.StandardFP8(firstLastFormats[c.Coords[0]])
	if c.Coords[1] == 1 {
		r = r.WithFirstLast()
	}
	return evalx.EvaluateWithRef(net, r, true, modelRef(name, net))
}

func renderFirstLast(g *Grid) *Report {
	tb := newTable("format", "pass rate (std)", "pass rate (+first/last)", "drop")
	vals := map[string]float64{}
	nModels := len(g.Spec.Axes[2].Values)
	for fi, f := range firstLastFormats {
		var std, fl, total int
		for mi := 0; mi < nModels; mi++ {
			rs, rf := g.At(fi, 0, mi), g.At(fi, 1, mi)
			if rs.Err != "" || rf.Err != "" {
				continue
			}
			total++
			if rs.Pass {
				std++
			}
			if rf.Pass {
				fl++
			}
		}
		if total == 0 {
			// Every cell of this format errored; a 0/0 division would
			// put NaN into Values and break JSON encoding downstream.
			tb.add(f.String(), "-", "-", "no evaluable models")
			continue
		}
		sp := float64(std) / float64(total) * 100
		fp := float64(fl) / float64(total) * 100
		tb.add(f.String(), pct(sp), pct(fp), fmt.Sprintf("%.1f pts", sp-fp))
		vals["std_"+f.String()] = sp
		vals["firstlast_"+f.String()] = fp
	}
	return &Report{
		Text: "Section 4.3.1 reproduction: quantizing the first convolution and last\n" +
			"linear layer reduces the CNN pass rate, most for the low-mantissa formats.\n\n" + tb.String(),
		Values: vals,
	}
}
