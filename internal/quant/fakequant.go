package quant

import (
	"math"

	"fp8quant/internal/fp8"
	"fp8quant/internal/nn"
	"fp8quant/internal/tensor"
)

// StaticFP8Func returns a QuantFunc that scales by fmax/threshold,
// rounds to the FP8 grid, and rescales back (Equation 2's
// s = float_max / max_T scaling).
func StaticFP8Func(f fp8.Format, threshold float64) nn.QuantFunc {
	if threshold <= 0 {
		// Degenerate all-zero tensor: identity.
		return func(dst, src []float32) { copy(dst, src) }
	}
	c := f.Codec()
	scale := float32(f.MaxValue() / threshold)
	inv := 1 / scale
	return func(dst, src []float32) {
		c.QuantizeScaledSlice(dst, src, scale, inv)
	}
}

// DirectFP8Func returns a QuantFunc that encodes values with no
// scaling — the E5M2 "Direct" approach, viable because its dynamic
// range covers typical activations outright.
func DirectFP8Func(f fp8.Format) nn.QuantFunc {
	c := f.Codec()
	return func(dst, src []float32) {
		c.QuantizeSlice(dst, src)
	}
}

// sliceAbsMax is the absmax reduction every dynamic quantizer scales
// by. The fused factories (ActQuantFused) bind their whole-tensor
// scale through this same function so fused and unfused paths derive
// bit-identical scales (max is order-independent; NaN compares false
// and is skipped in both).
func sliceAbsMax(src []float32) float64 {
	am := 0.0
	for _, v := range src {
		a := math.Abs(float64(v))
		if a > am {
			am = a
		}
	}
	return am
}

// DynamicFP8Func returns a QuantFunc that recomputes the absmax scale
// on every call (dynamic quantization).
func DynamicFP8Func(f fp8.Format) nn.QuantFunc {
	c := f.Codec()
	return func(dst, src []float32) {
		am := sliceAbsMax(src)
		if am == 0 {
			copy(dst, src)
			return
		}
		scale := float32(f.MaxValue() / am)
		inv := 1 / scale
		c.QuantizeScaledSlice(dst, src, scale, inv)
	}
}

// StaticInt8Func returns an affine INT8 QuantFunc over the calibrated
// [min, max] activation range.
func StaticInt8Func(min, max float64) nn.QuantFunc {
	q := fp8.NewInt8Asymmetric(min, max)
	return func(dst, src []float32) {
		for i, v := range src {
			dst[i] = float32(q.Quantize(float64(v)))
		}
	}
}

// DynamicInt8Func returns a symmetric INT8 QuantFunc with a per-call
// absmax scale.
func DynamicInt8Func() nn.QuantFunc {
	return func(dst, src []float32) {
		q := fp8.NewInt8Symmetric(sliceAbsMax(src))
		for i, v := range src {
			dst[i] = float32(q.Quantize(float64(v)))
		}
	}
}

// ActQuantFunc builds the activation QuantFunc for a recipe given the
// calibrated range. For Static it uses the threshold/minmax; Dynamic
// and Direct ignore them.
func ActQuantFunc(r Recipe, threshold, min, max float64) nn.QuantFunc {
	switch {
	case r.Act == FP32:
		return nil
	case r.Act == INT8:
		if r.Approach == Dynamic {
			return DynamicInt8Func()
		}
		return StaticInt8Func(min, max)
	case r.Approach == Direct:
		return DirectFP8Func(r.Act.Format())
	case r.Approach == Dynamic:
		return DynamicFP8Func(r.Act.Format())
	default:
		return StaticFP8Func(r.Act.Format(), threshold)
	}
}

// ActQuantFused builds the fused-packing form of ActQuantFunc: a
// factory the nn layer calls once per forward with the operand's full
// data, returning a chunkable elementwise quantizer the GEMM kernels
// apply during panel packing. Static and direct recipes are already
// elementwise, so the factory ignores src and returns the constant
// function; dynamic recipes bind the whole-tensor absmax scale in the
// factory (through the same sliceAbsMax reduction and codec kernels as
// the unfused funcs), after which the remaining per-element map is
// chunkable. Every returned func applied chunk by chunk writes exactly
// the bytes ActQuantFunc's func writes over the whole slice — the
// fp8.Codec slice kernels are strictly elementwise, and their
// length-dependent fast paths (rescaleMin, quantBatch4 lanes) are
// pinned bit-identical to the per-element reference.
func ActQuantFused(r Recipe, threshold, min, max float64) nn.RowQuantFactory {
	switch {
	case r.Act == FP32:
		return nil
	case r.Act == INT8:
		if r.Approach == Dynamic {
			return func(src []float32) nn.QuantFunc {
				q := fp8.NewInt8Symmetric(sliceAbsMax(src))
				return func(dst, src []float32) {
					for i, v := range src {
						dst[i] = float32(q.Quantize(float64(v)))
					}
				}
			}
		}
		fn := StaticInt8Func(min, max)
		return func([]float32) nn.QuantFunc { return fn }
	case r.Approach == Direct:
		fn := DirectFP8Func(r.Act.Format())
		return func([]float32) nn.QuantFunc { return fn }
	case r.Approach == Dynamic:
		f := r.Act.Format()
		c := f.Codec()
		return func(src []float32) nn.QuantFunc {
			am := sliceAbsMax(src)
			if am == 0 {
				return func(dst, src []float32) { copy(dst, src) }
			}
			scale := float32(f.MaxValue() / am)
			inv := 1 / scale
			return func(dst, src []float32) {
				c.QuantizeScaledSlice(dst, src, scale, inv)
			}
		}
	default:
		fn := StaticFP8Func(r.Act.Format(), threshold)
		return func([]float32) nn.QuantFunc { return fn }
	}
}

// QuantizeWeightPerChannel fake-quantizes a weight tensor in place with
// an independent max-derived scale per output channel (the standard
// scheme's weight granularity) and returns a restore copy of the
// original data.
func QuantizeWeightPerChannel(w *tensor.Tensor, dim int, d DType) []float32 {
	master := append([]float32(nil), w.Data...)
	if d == FP32 {
		return master
	}
	absmax := ChannelAbsMax(w, dim)
	out := w.Shape[0]
	per := w.Len() / out
	var codec *fp8.Codec
	var fmax float64
	if d != INT8 {
		codec = d.Format().Codec()
		fmax = d.Format().MaxValue()
	}
	for c := 0; c < out; c++ {
		seg := w.Data[c*per : (c+1)*per]
		am := absmax[c]
		if am == 0 {
			continue
		}
		if d == INT8 {
			q := fp8.NewInt8Symmetric(am)
			for i, v := range seg {
				seg[i] = float32(q.Quantize(float64(v)))
			}
			continue
		}
		scale := float32(fmax / am)
		inv := 1 / scale
		codec.QuantizeScaledSlice(seg, seg, scale, inv)
	}
	return master
}

// QuantizeWeightPerTensor fake-quantizes a weight tensor in place with
// a single max-derived scale, returning the restore copy. Used by the
// ablation comparing per-tensor to per-channel weight scaling.
func QuantizeWeightPerTensor(w *tensor.Tensor, d DType) []float32 {
	master := append([]float32(nil), w.Data...)
	if d == FP32 {
		return master
	}
	am := w.AbsMax()
	if am == 0 {
		return master
	}
	switch d {
	case INT8:
		q := fp8.NewInt8Symmetric(am)
		q.QuantizeSlice(w.Data, w.Data)
	default:
		c := d.Format().Codec()
		scale := float32(c.Format().MaxValue() / am)
		inv := 1 / scale
		c.QuantizeScaledSlice(w.Data, w.Data, scale, inv)
	}
	return master
}
