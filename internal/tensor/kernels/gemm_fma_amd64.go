//go:build amd64

package kernels

// The AVX2+FMA inner kernels (the "avx2" variant, dispatch-gated in
// dispatch_amd64.go): an 8-row × 8-column tile of YMM accumulators
// updated with VFMADD231PS — one rounding per multiply-add, which is
// why this tier pins to the fused scalar oracle (fmaRef in fma.go)
// instead of the two-rounding naive loops. Per output element the
// sequence is still one accumulator and ascending-k updates, so the
// 8×8 block kernel and the 1×8 remainder kernel agree bit for bit on
// every row.

// gemm8x8FMA accumulates acc[r*8+j] = fma(x_r[k], p[k*8+j], acc[r*8+j])
// for k ascending, over eight rows starting at x with the given float32
// stride, against one packed panel p (n×8).
//
//go:noescape
func gemm8x8FMA(x *float32, stride int, p *float32, n int, acc *[8 * nr]float32)

// gemm1x8FMA is the single-row variant used for the rows%8 remainder.
//
//go:noescape
func gemm1x8FMA(x, p *float32, n int, acc *[nr]float32)

// fma8x8 runs the 8-row × 8-column AVX2+FMA microkernel over one
// packed panel. x holds the eight rows back to back at stride in.
func fma8x8(x, p []float32, in int, acc []float32) {
	gemm8x8FMA(&x[0], in, &p[0], in, (*[8 * nr]float32)(acc[:8*nr]))
}

// fma1x8 runs the 1-row remainder AVX2+FMA microkernel over one packed
// panel.
func fma1x8(x, p []float32, in int, acc []float32) {
	gemm1x8FMA(&x[0], &p[0], in, (*[nr]float32)(acc[:nr]))
}

// blockRowsFMA computes rb (≤ 8) consecutive output rows against every
// packed panel with the AVX2+FMA tier. Direct calls into the
// //go:noescape assembly wrappers keep the accumulator tile on the
// stack (see blockRowsGeneric).
func blockRowsFMA(y, x, panel []float32, r, rb, in, out int, opt Opt) {
	npan := (out + nr - 1) / nr
	for pj := 0; pj < npan; pj++ {
		o0 := pj * nr
		cols := out - o0
		if cols > nr {
			cols = nr
		}
		p := panel[pj*in*nr : (pj+1)*in*nr]
		if rb == 8 {
			var acc [8 * nr]float32
			initAcc(acc[:], o0, cols, opt)
			fma8x8(x[r*in:], p, in, acc[:])
			storeAcc(y, acc[:], r, 8, o0, cols, out, opt)
		} else {
			for i := 0; i < rb; i++ {
				var acc [nr]float32
				initAcc(acc[:nr], o0, cols, opt)
				fma1x8(x[(r+i)*in:], p, in, acc[:nr])
				storeAcc(y, acc[:nr], r+i, 1, o0, cols, out, opt)
			}
		}
	}
}
