// atomicwrite: result-store files are written only via the temp+rename
// helper.
//
// The store's whole crash-safety story is that readers only ever see
// complete entries: writeAtomic stages bytes in a temp file and
// renames it into place. A direct os.WriteFile/os.Create against a
// store path reintroduces torn reads — a concurrent shard would read
// half a cell and treat it as a corrupt miss at best, and Merge's
// byte-equality conflict detection at worst compares against garbage.
// The check flags any direct file-creation call (a) anywhere inside a
// resultstore package except the writeAtomic helper itself, and (b) in
// any package when the path argument is derived from a store
// (CellPath/ManifestPath/Dir on a Store value).

package analyzers

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

func atomicwriteAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "atomicwrite",
		Doc:  "store-directory writes must go through the temp+rename helper, not os.WriteFile/os.Create",
		Run:  runAtomicwrite,
	}
}

// directWriteCalls are the os entry points that create or truncate a
// file in place.
var directWriteCalls = map[string]bool{
	"os.WriteFile": true,
	"os.Create":    true,
	"os.OpenFile":  true,
}

// storePathMethods are the methods whose result names a file or
// directory inside a store.
var storePathMethods = map[string]bool{
	"CellPath":     true,
	"ManifestPath": true,
	"Dir":          true,
}

func runAtomicwrite(pkgs []*Package) []Finding {
	var out []Finding
	eachFuncDecl(pkgs, func(p *Package, d *ast.FuncDecl) {
		inStore := storePackage(p)
		if inStore && d.Name.Name == "writeAtomic" {
			return // the one sanctioned call site
		}
		ast.Inspect(d.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := calleeFunc(p.Info, call)
			if f == nil || f.Pkg() == nil {
				return true
			}
			q := f.Pkg().Path() + "." + f.Name()
			if !directWriteCalls[q] {
				return true
			}
			switch {
			case inStore:
				out = append(out, Finding{Check: "atomicwrite", Pos: position(p, call),
					Message: fmt.Sprintf("%s inside the result-store package bypasses writeAtomic (temp+rename)", q)})
			case len(call.Args) > 0 && storeDerivedPath(p, call.Args[0]):
				out = append(out, Finding{Check: "atomicwrite", Pos: position(p, call),
					Message: fmt.Sprintf("%s targets a result-store path; use the store's atomic write path instead", q)})
			}
			return true
		})
	})
	return out
}

// storePackage reports whether the package is a result store (matched
// by path segment so fixtures named "resultstore" participate).
func storePackage(p *Package) bool {
	for _, seg := range strings.Split(p.Path, "/") {
		if seg == "resultstore" {
			return true
		}
	}
	return false
}

// storeDerivedPath reports whether the expression's value is derived
// from a store location: it contains a call to CellPath/ManifestPath/
// Dir on a value whose named type is Store.
func storeDerivedPath(p *Package, e ast.Expr) bool {
	derived := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeFunc(p.Info, call)
		if f == nil || !storePathMethods[f.Name()] {
			return true
		}
		sig, ok := f.Type().(*types.Signature)
		if ok && sig.Recv() != nil && recvTypeName(sig.Recv().Type()) == "Store" {
			derived = true
			return false
		}
		return true
	})
	return derived
}
