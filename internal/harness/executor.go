// Generic grid executor: the single place that owns cell fan-out,
// in-process memoization and persistence for every experiment. An
// experiment only declares its schedule (Spec), its pure per-cell
// computation (RunCell) and its presentation (Render); the executor
// fans the selected cells out over the bounded sweep worker pool,
// consults the memo and the result store per cell, and persists fresh
// results — so an interrupted sweep resumes from its completed cells
// on the next invocation, for every grid experiment by construction.

package harness

import (
	"fmt"
	"os"
	"reflect"
	"sort"
	"sync/atomic"

	"fp8quant/internal/evalx"
	"fp8quant/internal/resultstore"
	"fp8quant/internal/tensor/kernels"
)

// ErrNotSelected marks the cells of a filtered run that were excluded
// by the filter; renderers skip them like any other errored cell.
const ErrNotSelected = "cell not selected by the filter"

// ErrNotInShard marks the cells a sharded run neither computed (they
// belong to another shard) nor found in the store; renderers skip
// them. Once the sibling shards' stores are merged, a warm run fills
// every cell and the sentinel disappears.
const ErrNotInShard = "cell assigned to another shard and absent from the store"

// Run executes the experiment end to end: every grid cell through the
// cache layers on the sweep worker pool, then Render.
func Run(e Experiment) *Report {
	g, _, err := RunGrid(e, nil, Shard{})
	if err != nil {
		// Unreachable with a nil filter; keep the report well-formed.
		return &Report{Text: "error: " + err.Error(), Values: map[string]float64{}}
	}
	return e.Render(g)
}

// RunGrid evaluates the cells of e selected by the filter (nil or
// empty = all) and returns the grid plus the selected row-major
// indices. Unselected cells stay zero-valued in the grid. A non-empty
// filter that matches no cell, or one naming an axis the grid does not
// declare, is an error.
//
// A non-trivial shard plan restricts computation to this shard's slice
// of the selection: other shards' cells are filled from the memo or
// the store when present and marked ErrNotInShard when not, so the
// render shows whatever is known locally without recomputing sibling
// work. The returned selection still covers the whole filtered
// sub-grid — sharding changes who computes, not what the grid means.
func RunGrid(e Experiment, f Filter, sh Shard) (*Grid, []int, error) {
	spec := e.Spec()
	n := spec.NumCells()
	if err := sh.Validate(); err != nil {
		return nil, nil, err
	}
	if err := spec.ValidateFilter(f); err != nil {
		return nil, nil, err
	}
	sel := spec.Select(f)
	if len(f) > 0 && len(sel) == 0 {
		// Covers axis-less (scalar) experiments too: a filter can never
		// apply to them, and succeeding silently would hide typos.
		return nil, nil, fmt.Errorf("filter %q matches none of %s's %d cells", f.String(), e.ID(), n)
	}
	g := &Grid{Spec: spec, Results: make([]evalx.Result, n)}
	if len(sel) < n {
		// Unselected cells must not masquerade as successfully
		// evaluated zero results: a renderer handed a partial grid
		// would fold them into its aggregates. The Err sentinel makes
		// every renderer skip them by the existing convention.
		for i := range g.Results {
			g.Results[i] = evalx.Result{Err: ErrNotSelected}
		}
	}
	if len(sel) == 0 {
		return g, sel, nil
	}
	mine := sel
	if sh.Enabled() {
		// Round-robin over the *positions* of the selected cells, not
		// their absolute grid indices: a filter can select indices that
		// all share a residue class (one recipe column of a [model,
		// recipe] grid selects every 6th index), which would starve all
		// but one shard. Position-based slicing always balances within
		// one cell, and for an unfiltered run (sel = identity) it
		// coincides with GridSpec.Shard.
		mine = make([]int, 0, len(sel)/sh.Count+1)
		for k, idx := range sel {
			if sh.Owns(k) {
				mine = append(mine, idx)
			} else if r, ok := lookupCell(spec.CellKey(spec.CellAt(idx))); ok {
				g.Results[idx] = r
			} else {
				g.Results[idx] = evalx.Result{Err: ErrNotInShard}
			}
		}
	}
	var done, fresh atomic.Int64
	reportProgress(e.ID(), 0, len(mine))
	forEachCell(len(mine), func(k int) {
		c := spec.CellAt(mine[k])
		r, computed := cachedCellFresh(spec.CellKey(c), func() evalx.Result {
			return runCellSafe(e, spec, c)
		})
		g.Results[mine[k]] = r
		if computed {
			fresh.Add(1)
		}
		reportProgress(e.ID(), int(done.Add(1)), len(mine))
	})
	// A full-schedule run (sharded or not) knows the complete cell set;
	// record it so coverage tooling and store merges can reason about
	// the sweep without re-deriving the spec.
	if s := Store(); s != nil && len(sel) == n {
		saveManifest(s, spec, sh, fresh.Load() > 0)
	}
	return g, sel, nil
}

// ComputeCell evaluates the idx-th row-major cell of e's grid through
// the cache layers (memo, then store, then compute + persist) and
// returns the cell's key, its result, and whether it was computed
// fresh rather than served from a cache. It is the lease-driven entry
// point used by coordinator workers: the coordinator hands out cell
// indices, the worker computes exactly that cell — panic-isolated like
// any pool cell — and pushes the payload back. The fresh/cached flag
// lets workers report honest durations to the coordinator's cost model
// (a cache hit says nothing about how expensive the cell is).
func ComputeCell(e Experiment, idx int) (resultstore.CellKey, evalx.Result, bool) {
	spec := e.Spec()
	if idx < 0 || idx >= spec.NumCells() {
		panic(fmt.Sprintf("harness: ComputeCell index %d out of range for %s's %d cells", idx, e.ID(), spec.NumCells()))
	}
	c := spec.CellAt(idx)
	k := spec.CellKey(c)
	if r, ok := lookupCell(k); ok {
		return k, r, false
	}
	// A concurrent computation of the same cell between the lookup and
	// here just means cachedCell returns the (identical) memoized
	// result; reporting it as fresh is harmless — the duration is real.
	r, _ := cachedCellFresh(k, func() evalx.Result {
		return runCellSafe(e, spec, c)
	})
	return k, r, true
}

// runCellSafe converts a RunCell panic into an Err-marked result.
// Cells run on pool worker goroutines, where an escaped panic would
// kill the whole process — a caller's deferred recover only covers its
// own goroutine — so this is what makes "one failing cell/experiment
// cannot abort the batch" hold at any worker count. Err results are
// never persisted, so a code fix recomputes the cell.
func runCellSafe(e Experiment, spec GridSpec, c Cell) (r evalx.Result) {
	defer func() {
		if p := recover(); p != nil {
			r = evalx.Result{Err: fmt.Sprintf("panic in cell %s: %v", spec.KeyString(c), p)}
		}
	}()
	return e.RunCell(c)
}

// SubGridReport renders the generic report for a filtered run: one row
// per selected cell, with whatever the cell carries (accuracy quartet
// and/or named metrics).
func SubGridReport(e Experiment, g *Grid, sel []int) *Report {
	tb := newTable("cell", "qacc", "rel loss", "pass", "metrics")
	vals := map[string]float64{}
	for _, i := range sel {
		c := g.Spec.CellAt(i)
		r := g.Results[i]
		key := g.Spec.KeyString(c)
		if r.Err != "" {
			tb.add(key, "-", "-", "-", "error: "+r.Err)
			continue
		}
		tb.add(key, fmt.Sprintf("%.4f", r.QAcc), fmt.Sprintf("%.2f%%", r.RelLoss*100),
			fmt.Sprintf("%v", r.Pass), formatMetrics(r.Metrics))
		vals["qacc_"+key] = r.QAcc
		vals["relloss_"+key] = r.RelLoss
		for name, v := range r.Metrics {
			vals[name+"_"+key] = v
		}
	}
	text := fmt.Sprintf("%s — %s\nsub-grid: %d of %d cells\n\n%s",
		e.ID(), e.Title(), len(sel), g.Spec.NumCells(), tb.String())
	return &Report{Text: text, Values: vals}
}

// formatMetrics renders a metrics map as "k=v k=v" in sorted key order.
func formatMetrics(m map[string]float64) string {
	if len(m) == 0 {
		return ""
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b []byte
	for i, k := range keys {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, fmt.Sprintf("%s=%.4g", k, m[k])...)
	}
	return string(b)
}

// saveManifest records the grid's full schedule, rewriting a stored
// manifest that no longer matches the spec — the grid's axes can
// legitimately change without a schema bump (a model added to the
// zoo), and a stale manifest would misreport store coverage forever.
// A sharded run stamps its shard record into the manifest's provenance
// (preserving records already there), so a store can tell which slices
// of a distributed sweep have run against it; a run that computed at
// least one fresh cell stamps the active kernel variant the same way
// (a fully warm run contributes no new bits, so its variant is not
// provenance — in particular it leaves a pre-variant store's manifest
// byte-identical). The load-union-save is
// not atomic across processes: two shards finishing simultaneously
// against the *same* store can each miss the other's record (the
// intended deployment is one store per shard, merged afterwards, where
// Merge performs the union race-free). Only the provenance column of
// -coverage is affected — cells are content-addressed and unharmed.
func saveManifest(s *resultstore.Store, spec GridSpec, sh Shard, computedFresh bool) {
	m := ManifestFor(spec)
	old, ok := s.LoadManifest(spec.ID, spec.Seed)
	if ok && old.SameSchedule(m) {
		m.Shards = old.Shards
		m.KernelVariants = old.KernelVariants
	}
	if sh.Enabled() {
		rec := resultstore.ShardRecord{Index: sh.Index, Count: sh.Count}
		m.Shards = resultstore.UnionShards(m.Shards, []resultstore.ShardRecord{rec})
	}
	if computedFresh {
		m.KernelVariants = resultstore.UnionVariants(m.KernelVariants, []string{string(kernels.Active())})
	}
	if ok && reflect.DeepEqual(old, m) {
		return
	}
	if err := s.SaveManifest(m); err != nil {
		fmt.Fprintf(os.Stderr, "warning: manifest write failed: %v\n", err)
	}
}

// ManifestFor derives a grid's full schedule manifest from its spec —
// the same manifest a completed run records. Coverage tooling uses it
// when a store predates manifests or the sweep never started.
func ManifestFor(spec GridSpec) resultstore.Manifest {
	m := resultstore.Manifest{Grid: spec.ID, Seed: spec.Seed, Schema: resultstore.SchemaVersion}
	for _, a := range spec.Axes {
		m.Axes = append(m.Axes, resultstore.ManifestAxis{Name: a.Name, Values: a.Values})
	}
	n := spec.NumCells()
	m.Cells = make([]string, n)
	for i := 0; i < n; i++ {
		m.Cells[i] = spec.CellKey(spec.CellAt(i)).Fingerprint()
	}
	return m
}

// progressFn receives (experiment id, cells done, cells selected)
// updates while a grid executes; installed by fp8bench for its
// progress line. Called from worker goroutines — must be safe for
// concurrent use.
var progressFn atomic.Pointer[func(id string, done, total int)]

// SetProgress installs (or, with nil, removes) the cell-progress
// callback.
func SetProgress(fn func(id string, done, total int)) {
	if fn == nil {
		progressFn.Store(nil)
		return
	}
	progressFn.Store(&fn)
}

func reportProgress(id string, done, total int) {
	if p := progressFn.Load(); p != nil {
		(*p)(id, done, total)
	}
}
