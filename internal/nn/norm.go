package nn

import (
	"fmt"
	"math"

	"fp8quant/internal/tensor"
)

// BatchNorm2d normalizes NCHW activations per channel using running
// statistics (inference mode). It supports a calibration mode that
// re-estimates the running mean/variance from data flowing through the
// (possibly quantized) network — the "BatchNorm Calibration" step of
// the paper's workflow (Figure 2, Figure 7).
type BatchNorm2d struct {
	C           int
	Gamma, Beta []float32
	Mean, Var   []float32
	Eps         float32
	// QS quantizes the output when the extended scheme covers
	// BatchNorm (memory-bound op: the tensor of interest is the
	// normalized output).
	QS QState

	// calibrating enables statistic accumulation during Forward.
	calibrating bool
	sum, sumSq  []float64
	count       int
}

// NewBatchNorm2d allocates a BatchNorm with identity affine parameters
// and unit variance.
func NewBatchNorm2d(c int) *BatchNorm2d {
	bn := &BatchNorm2d{
		C: c, Gamma: make([]float32, c), Beta: make([]float32, c),
		Mean: make([]float32, c), Var: make([]float32, c), Eps: 1e-5,
	}
	for i := 0; i < c; i++ {
		bn.Gamma[i] = 1
		bn.Var[i] = 1
	}
	return bn
}

// Kind implements Module.
func (bn *BatchNorm2d) Kind() string { return "BatchNorm" }

// Q implements Quantizable.
func (bn *BatchNorm2d) Q() *QState { return &bn.QS }

// StartCalibration begins accumulating batch statistics on every
// Forward call until FinishCalibration.
func (bn *BatchNorm2d) StartCalibration() {
	bn.calibrating = true
	bn.sum = make([]float64, bn.C)
	bn.sumSq = make([]float64, bn.C)
	bn.count = 0
}

// FinishCalibration replaces the running mean and variance with the
// statistics accumulated since StartCalibration.
func (bn *BatchNorm2d) FinishCalibration() {
	bn.calibrating = false
	if bn.count == 0 {
		return
	}
	n := float64(bn.count)
	for c := 0; c < bn.C; c++ {
		mu := bn.sum[c] / n
		v := bn.sumSq[c]/n - mu*mu
		if v < 0 {
			v = 0
		}
		bn.Mean[c] = float32(mu)
		bn.Var[c] = float32(v)
	}
	bn.sum, bn.sumSq = nil, nil
}

// Calibrating reports whether statistics accumulation is active.
func (bn *BatchNorm2d) Calibrating() bool { return bn.calibrating }

// Forward normalizes x [N,C,H,W] with the running statistics.
func (bn *BatchNorm2d) Forward(x *tensor.Tensor) *tensor.Tensor { return bn.ForwardArena(nil, x) }

// ForwardArena implements ArenaForwarder.
func (bn *BatchNorm2d) ForwardArena(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 4 || x.Shape[1] != bn.C {
		panic(fmt.Sprintf("nn: BatchNorm2d expects [N,%d,H,W], got %v", bn.C, x.Shape))
	}
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	hw := h * w
	if bn.calibrating {
		for ni := 0; ni < n; ni++ {
			for c := 0; c < bn.C; c++ {
				plane := x.Data[(ni*bn.C+c)*hw : (ni*bn.C+c+1)*hw]
				for _, v := range plane {
					bn.sum[c] += float64(v)
					bn.sumSq[c] += float64(v) * float64(v)
				}
			}
		}
		bn.count += n * hw
	}
	y := a.New(x.Shape...)
	for ni := 0; ni < n; ni++ {
		for c := 0; c < bn.C; c++ {
			inv := bn.Gamma[c] / float32(math.Sqrt(float64(bn.Var[c])+float64(bn.Eps)))
			shift := bn.Beta[c] - bn.Mean[c]*inv
			src := x.Data[(ni*bn.C+c)*hw : (ni*bn.C+c+1)*hw]
			dst := y.Data[(ni*bn.C+c)*hw : (ni*bn.C+c+1)*hw]
			for i, v := range src {
				dst[i] = v*inv + shift
			}
		}
	}
	return bn.QS.applyOut(y)
}

// LayerNorm normalizes over the last dimension — the op whose presence
// amplifies activation outliers in transformer models (Wei et al.,
// 2022), making it the key coverage test for FP8 vs INT8.
type LayerNorm struct {
	Dim         int
	Gamma, Beta []float32
	Eps         float32
	// QS quantizes the output under the extended scheme.
	QS QState
}

// NewLayerNorm allocates an identity LayerNorm over dim features.
func NewLayerNorm(dim int) *LayerNorm {
	ln := &LayerNorm{Dim: dim, Gamma: make([]float32, dim), Beta: make([]float32, dim), Eps: 1e-5}
	for i := range ln.Gamma {
		ln.Gamma[i] = 1
	}
	return ln
}

// Kind implements Module.
func (ln *LayerNorm) Kind() string { return "LayerNorm" }

// Q implements Quantizable.
func (ln *LayerNorm) Q() *QState { return &ln.QS }

// Forward normalizes each trailing-dim vector of x.
func (ln *LayerNorm) Forward(x *tensor.Tensor) *tensor.Tensor { return ln.ForwardArena(nil, x) }

// ForwardArena implements ArenaForwarder.
func (ln *LayerNorm) ForwardArena(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	rows, cols := flatten2D(x)
	if cols != ln.Dim {
		panic(fmt.Sprintf("nn: LayerNorm expects last dim %d, got %v", ln.Dim, x.Shape))
	}
	y := a.New(x.Shape...)
	for r := 0; r < rows; r++ {
		src := x.Data[r*cols : (r+1)*cols]
		dst := y.Data[r*cols : (r+1)*cols]
		var mu float64
		for _, v := range src {
			mu += float64(v)
		}
		mu /= float64(cols)
		var va float64
		for _, v := range src {
			d := float64(v) - mu
			va += d * d
		}
		va /= float64(cols)
		inv := float32(1 / math.Sqrt(va+float64(ln.Eps)))
		for i, v := range src {
			dst[i] = (v-float32(mu))*inv*ln.Gamma[i] + ln.Beta[i]
		}
	}
	return ln.QS.applyOut(y)
}

// RMSNorm is the root-mean-square norm used by LLaMA-style models.
type RMSNorm struct {
	Dim   int
	Gamma []float32
	Eps   float32
	QS    QState
}

// NewRMSNorm allocates an identity RMSNorm.
func NewRMSNorm(dim int) *RMSNorm {
	rn := &RMSNorm{Dim: dim, Gamma: make([]float32, dim), Eps: 1e-6}
	for i := range rn.Gamma {
		rn.Gamma[i] = 1
	}
	return rn
}

// Kind implements Module.
func (rn *RMSNorm) Kind() string { return "RMSNorm" }

// Q implements Quantizable.
func (rn *RMSNorm) Q() *QState { return &rn.QS }

// Forward normalizes each trailing-dim vector by its RMS.
func (rn *RMSNorm) Forward(x *tensor.Tensor) *tensor.Tensor { return rn.ForwardArena(nil, x) }

// ForwardArena implements ArenaForwarder.
func (rn *RMSNorm) ForwardArena(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	rows, cols := flatten2D(x)
	if cols != rn.Dim {
		panic(fmt.Sprintf("nn: RMSNorm expects last dim %d, got %v", rn.Dim, x.Shape))
	}
	y := a.New(x.Shape...)
	for r := 0; r < rows; r++ {
		src := x.Data[r*cols : (r+1)*cols]
		dst := y.Data[r*cols : (r+1)*cols]
		var ss float64
		for _, v := range src {
			ss += float64(v) * float64(v)
		}
		inv := float32(1 / math.Sqrt(ss/float64(cols)+float64(rn.Eps)))
		for i, v := range src {
			dst[i] = v * inv * rn.Gamma[i]
		}
	}
	return rn.QS.applyOut(y)
}

// GroupNorm normalizes NCHW activations over channel groups (used by
// the diffusion U-Net).
type GroupNorm struct {
	C, Groups   int
	Gamma, Beta []float32
	Eps         float32
	QS          QState
}

// NewGroupNorm allocates an identity GroupNorm.
func NewGroupNorm(c, groups int) *GroupNorm {
	if c%groups != 0 {
		panic(fmt.Sprintf("nn: GroupNorm channels %d not divisible by groups %d", c, groups))
	}
	gn := &GroupNorm{C: c, Groups: groups, Gamma: make([]float32, c), Beta: make([]float32, c), Eps: 1e-5}
	for i := range gn.Gamma {
		gn.Gamma[i] = 1
	}
	return gn
}

// Kind implements Module.
func (gn *GroupNorm) Kind() string { return "GroupNorm" }

// Q implements Quantizable.
func (gn *GroupNorm) Q() *QState { return &gn.QS }

// Forward normalizes each channel group of x [N,C,H,W].
func (gn *GroupNorm) Forward(x *tensor.Tensor) *tensor.Tensor { return gn.ForwardArena(nil, x) }

// ForwardArena implements ArenaForwarder.
func (gn *GroupNorm) ForwardArena(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 4 || x.Shape[1] != gn.C {
		panic(fmt.Sprintf("nn: GroupNorm expects [N,%d,H,W], got %v", gn.C, x.Shape))
	}
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	hw := h * w
	cg := gn.C / gn.Groups
	y := a.New(x.Shape...)
	for ni := 0; ni < n; ni++ {
		for g := 0; g < gn.Groups; g++ {
			start := (ni*gn.C + g*cg) * hw
			end := start + cg*hw
			seg := x.Data[start:end]
			var mu float64
			for _, v := range seg {
				mu += float64(v)
			}
			mu /= float64(len(seg))
			var va float64
			for _, v := range seg {
				d := float64(v) - mu
				va += d * d
			}
			va /= float64(len(seg))
			inv := float32(1 / math.Sqrt(va+float64(gn.Eps)))
			for c := 0; c < cg; c++ {
				ch := g*cg + c
				src := x.Data[(ni*gn.C+ch)*hw : (ni*gn.C+ch+1)*hw]
				dst := y.Data[(ni*gn.C+ch)*hw : (ni*gn.C+ch+1)*hw]
				for i, v := range src {
					dst[i] = (v-float32(mu))*inv*gn.Gamma[ch] + gn.Beta[ch]
				}
			}
		}
	}
	return gn.QS.applyOut(y)
}
