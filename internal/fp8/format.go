// Package fp8 implements bit-accurate software emulation of 8-bit
// floating-point formats (E5M2, E4M3, E3M4) and 8-bit integer quantization.
//
// The three FP8 formats follow Table 1 of "Efficient Post-training
// Quantization with FP8 Formats" (Shen et al., MLSys 2024):
//
//	         E5M2      E4M3     E3M4
//	bias     15        7        3
//	max      57344.0   448.0    30.0
//	min>0    1.5e-5    1.9e-3   1.5e-2   (smallest subnormal)
//	NaN      all       single   single
//	Inf      yes       no       no
//
// E5M2 uses IEEE-754-like encoding rules (exponent all-ones encodes
// Inf/NaN). E4M3 and E3M4 use the extended encoding of Micikevicius et
// al. (2022): the all-ones exponent is reclaimed for normal values and a
// single bit pattern (all ones, i.e. S.1111.111 for E4M3) represents NaN;
// there is no Infinity and out-of-range values saturate to ±max.
//
// Round-to-nearest-even is used for all conversions, matching the FP8
// Emulation Toolkit the paper relies on.
package fp8

import (
	"fmt"
	"math"
)

// Format describes an 8-bit floating-point binary format with a sign bit,
// ExpBits exponent bits and ManBits mantissa bits (ExpBits+ManBits == 7).
type Format struct {
	// Name is the conventional EeMm name, e.g. "E4M3".
	Name string
	// ExpBits is the number of exponent bits.
	ExpBits uint
	// ManBits is the number of mantissa (fraction) bits.
	ManBits uint
	// Bias is the exponent bias.
	Bias int
	// IEEE selects IEEE-like special-value encoding: the all-ones
	// exponent field encodes Inf (mantissa 0) and NaN (mantissa != 0).
	// When false, the extended encoding is used: all-ones exponent
	// encodes ordinary values except the single all-ones bit pattern,
	// which is NaN; there is no Inf and conversion saturates.
	IEEE bool
}

// The three formats studied in the paper. E5M2 follows IEEE encoding
// rules; E4M3 and E3M4 use the extended encoding (no Inf, single NaN).
var (
	E5M2 = Format{Name: "E5M2", ExpBits: 5, ManBits: 2, Bias: 15, IEEE: true}
	E4M3 = Format{Name: "E4M3", ExpBits: 4, ManBits: 3, Bias: 7, IEEE: false}
	E3M4 = Format{Name: "E3M4", ExpBits: 3, ManBits: 4, Bias: 3, IEEE: false}
)

// Formats lists the three paper formats in the order used throughout the
// evaluation tables.
var Formats = []Format{E5M2, E4M3, E3M4}

// ByName returns the format with the given EeMm name.
func ByName(name string) (Format, error) {
	switch name {
	case "E5M2", "e5m2":
		return E5M2, nil
	case "E4M3", "e4m3":
		return E4M3, nil
	case "E3M4", "e3m4":
		return E3M4, nil
	}
	return Format{}, fmt.Errorf("fp8: unknown format %q", name)
}

// String returns the format name.
func (f Format) String() string { return f.Name }

// expField returns the maximum raw exponent field value (all ones).
func (f Format) expField() int { return (1 << f.ExpBits) - 1 }

// maxRawExp returns the largest exponent field value that encodes a
// normal number.
func (f Format) maxRawExp() int {
	if f.IEEE {
		return f.expField() - 1 // all-ones reserved for Inf/NaN
	}
	return f.expField()
}

// MaxValue returns the largest finite representable magnitude.
//
// For IEEE encoding this is (2 - 2^-m) * 2^(emax) with emax =
// maxRawExp-bias. For the extended encoding the all-ones
// exponent/mantissa combination is NaN, so the largest magnitude drops
// one mantissa step: (2 - 2^-(m-1)) * 2^(emax).
func (f Format) MaxValue() float64 {
	emax := f.maxRawExp() - f.Bias
	m := float64(int64(1) << f.ManBits)
	frac := (m - 1) / m // all mantissa bits set
	if !f.IEEE {
		frac = (m - 2) / m // all-ones bit pattern is NaN
	}
	return (1 + frac) * math.Ldexp(1, emax)
}

// MinNormal returns the smallest positive normal value, 2^(1-bias).
func (f Format) MinNormal() float64 {
	return math.Ldexp(1, 1-f.Bias)
}

// MinSubnormal returns the smallest positive subnormal value,
// 2^(1-bias-m).
func (f Format) MinSubnormal() float64 {
	return math.Ldexp(1, 1-f.Bias-int(f.ManBits))
}

// HasInf reports whether the format can represent infinities.
func (f Format) HasInf() bool { return f.IEEE }

// NaN returns a canonical NaN bit pattern for the format.
func (f Format) NaN() uint8 {
	if f.IEEE {
		// Exponent all ones, mantissa non-zero (quiet bit set).
		return uint8(f.expField())<<f.ManBits | 1<<(f.ManBits-1)
	}
	return 0x7F // all ones (positive sign)
}

// Inf returns the bit pattern of +Inf or -Inf for IEEE formats. For
// extended formats (no Inf) it returns the saturated ±max encoding.
func (f Format) Inf(sign int) uint8 {
	var s uint8
	if sign < 0 {
		s = 0x80
	}
	if f.IEEE {
		return s | uint8(f.expField())<<f.ManBits
	}
	return s | f.maxCode()
}

// maxCode returns the magnitude bits of the largest finite value.
func (f Format) maxCode() uint8 {
	if f.IEEE {
		return uint8(f.maxRawExp())<<f.ManBits | uint8((1<<f.ManBits)-1)
	}
	return 0x7F - 1 // one below NaN
}

// IsNaN reports whether the given bit pattern encodes NaN.
func (f Format) IsNaN(b uint8) bool {
	if f.IEEE {
		exp := int(b>>f.ManBits) & f.expField()
		man := b & uint8((1<<f.ManBits)-1)
		return exp == f.expField() && man != 0
	}
	return b&0x7F == 0x7F
}

// IsInf reports whether the bit pattern encodes ±Inf (always false for
// extended formats).
func (f Format) IsInf(b uint8) bool {
	if !f.IEEE {
		return false
	}
	exp := int(b>>f.ManBits) & f.expField()
	man := b & uint8((1<<f.ManBits)-1)
	return exp == f.expField() && man == 0
}

// Decode converts an 8-bit code to its float64 value.
func (f Format) Decode(b uint8) float64 {
	sign := 1.0
	if b&0x80 != 0 {
		sign = -1
	}
	exp := int(b>>f.ManBits) & f.expField()
	man := int(b) & ((1 << f.ManBits) - 1)
	if f.IsNaN(b) {
		return math.NaN()
	}
	if f.IsInf(b) {
		return math.Inf(int(sign))
	}
	if exp == 0 {
		// Subnormal: value = mantissa * 2^(1-bias-m).
		return sign * float64(man) * math.Ldexp(1, 1-f.Bias-int(f.ManBits))
	}
	return sign * (1 + float64(man)/float64(int64(1)<<f.ManBits)) * math.Ldexp(1, exp-f.Bias)
}

// Encode converts a float64 to the nearest representable 8-bit code
// using round-to-nearest-even. Values beyond MaxValue saturate for
// extended formats and overflow to Inf for IEEE formats (matching the
// behaviour of hardware converters with saturation disabled for E5M2).
func (f Format) Encode(x float64) uint8 {
	var sign uint8
	if math.Signbit(x) {
		sign = 0x80
		x = -x
	}
	switch {
	case math.IsNaN(x):
		return f.NaN()
	case math.IsInf(x, 0):
		return f.Inf(int(1 - 2*int(sign>>7)))
	case x == 0:
		return sign // ±0
	}

	max := f.MaxValue()
	if x > max {
		// Overflow policy: IEEE formats round to Inf once past the
		// midpoint between max and the next (unrepresentable) grid
		// step; extended formats always saturate to ±max.
		ulp := math.Ldexp(1, f.maxRawExp()-f.Bias-int(f.ManBits))
		if f.IEEE && x >= max+ulp/2 {
			return sign | uint8(f.expField())<<f.ManBits
		}
		return sign | f.maxCode()
	}

	// Scale into fixed-point mantissa units and round to nearest even.
	minNormal := f.MinNormal()
	if x < minNormal {
		// Subnormal range: unit = 2^(1-bias-m).
		unit := f.MinSubnormal()
		q := roundHalfEven(x / unit)
		if q >= 1<<f.ManBits {
			// Rounded up into the normal range.
			return sign | 1<<f.ManBits
		}
		return sign | uint8(q)
	}

	exp := math.Floor(math.Log2(x))
	e := int(exp)
	// Guard against log2 edge cases at power-of-two boundaries.
	if math.Ldexp(1, e) > x {
		e--
	} else if math.Ldexp(1, e+1) <= x {
		e++
	}
	frac := x/math.Ldexp(1, e) - 1 // in [0,1)
	q := roundHalfEven(frac * float64(int64(1)<<f.ManBits))
	if q == 1<<f.ManBits {
		// Mantissa overflowed; bump exponent.
		q = 0
		e++
	}
	rawExp := e + f.Bias
	if rawExp > f.maxRawExp() {
		if f.IEEE {
			return sign | uint8(f.expField())<<f.ManBits
		}
		return sign | f.maxCode()
	}
	code := sign | uint8(rawExp)<<f.ManBits | uint8(q)
	if !f.IEEE && code&0x7F == 0x7F {
		// Rounded exactly onto the NaN pattern: saturate instead.
		return sign | f.maxCode()
	}
	return code
}

// Quantize rounds x to the nearest representable value of the format
// (quantize-dequantize in one step).
func (f Format) Quantize(x float64) float64 {
	return f.Decode(f.Encode(x))
}

// QuantizeSlice applies Quantize element-wise to a float32 slice,
// writing results into dst (which may alias src). It returns dst. The
// work runs through the format's fast codec (see fast.go), which is
// bit-identical to QuantizeSliceRef.
func (f Format) QuantizeSlice(dst, src []float32) []float32 {
	return f.Codec().QuantizeSlice(dst, src)
}

// QuantizeSliceParallel is QuantizeSlice fanned out over the shared
// worker pool; large tensors quantize on all cores, small slices run
// inline. Results are bit-identical to QuantizeSlice.
func (f Format) QuantizeSliceParallel(dst, src []float32) []float32 {
	return f.Codec().QuantizeSliceParallel(dst, src)
}

// QuantizeSliceRef is the scalar float64 reference path, kept as the
// bit-exactness oracle for the fast codec (and for benchmarks
// quantifying the codec speedup).
func (f Format) QuantizeSliceRef(dst, src []float32) []float32 {
	for i, v := range src {
		dst[i] = float32(f.Quantize(float64(v)))
	}
	return dst
}

// GridPoints returns all non-negative finite representable values in
// ascending order. Useful for plotting the quantization grid (Figure 1).
func (f Format) GridPoints() []float64 {
	var pts []float64
	for b := 0; b < 128; b++ {
		c := uint8(b)
		if f.IsNaN(c) || f.IsInf(c) {
			continue
		}
		pts = append(pts, f.Decode(c))
	}
	return pts
}

// roundHalfEven rounds to the nearest integer, ties to even.
func roundHalfEven(x float64) int {
	fl := math.Floor(x)
	diff := x - fl
	n := int(fl)
	switch {
	case diff > 0.5:
		return n + 1
	case diff < 0.5:
		return n
	default:
		if n%2 != 0 {
			return n + 1
		}
		return n
	}
}
