package quant

import (
	"encoding/json"
	"fmt"
)

// recipeJSON is the serialized form of a Recipe, with symbolic names
// instead of iota values so saved recipes stay valid across versions.
type recipeJSON struct {
	Act            string          `json:"act"`
	Wgt            string          `json:"wgt"`
	Approach       string          `json:"approach"`
	Calib          string          `json:"calib"`
	CalibBatches   int             `json:"calib_batches,omitempty"`
	QuantFirstLast bool            `json:"quant_first_last,omitempty"`
	ExtendedOps    bool            `json:"extended_ops,omitempty"`
	SmoothQuant    bool            `json:"smooth_quant,omitempty"`
	SmoothAlpha    float64         `json:"smooth_alpha,omitempty"`
	BNCalib        bool            `json:"bn_calib,omitempty"`
	BNCalibBatches int             `json:"bn_calib_batches,omitempty"`
	Fallback       map[string]bool `json:"fallback,omitempty"`
}

// MarshalJSON implements json.Marshaler so tuned recipes can be saved
// and replayed (the "contribute our recipes" workflow of Section 5).
func (r Recipe) MarshalJSON() ([]byte, error) {
	return json.Marshal(recipeJSON{
		Act:            r.Act.String(),
		Wgt:            r.Wgt.String(),
		Approach:       r.Approach.String(),
		Calib:          r.Calib.String(),
		CalibBatches:   r.CalibBatches,
		QuantFirstLast: r.QuantFirstLast,
		ExtendedOps:    r.ExtendedOps,
		SmoothQuant:    r.SmoothQuant,
		SmoothAlpha:    r.SmoothAlpha,
		BNCalib:        r.BNCalib,
		BNCalibBatches: r.BNCalibBatches,
		Fallback:       r.Fallback,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (r *Recipe) UnmarshalJSON(data []byte) error {
	var j recipeJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	act, err := parseDType(j.Act)
	if err != nil {
		return err
	}
	wgt, err := parseDType(j.Wgt)
	if err != nil {
		return err
	}
	app, err := parseApproach(j.Approach)
	if err != nil {
		return err
	}
	cal, err := parseCalib(j.Calib)
	if err != nil {
		return err
	}
	*r = Recipe{
		Act: act, Wgt: wgt, Approach: app, Calib: cal,
		CalibBatches:   j.CalibBatches,
		QuantFirstLast: j.QuantFirstLast,
		ExtendedOps:    j.ExtendedOps,
		SmoothQuant:    j.SmoothQuant,
		SmoothAlpha:    j.SmoothAlpha,
		BNCalib:        j.BNCalib,
		BNCalibBatches: j.BNCalibBatches,
		Fallback:       j.Fallback,
	}
	return nil
}

func parseDType(s string) (DType, error) {
	switch s {
	case "FP32", "":
		return FP32, nil
	case "E5M2":
		return E5M2, nil
	case "E4M3":
		return E4M3, nil
	case "E3M4":
		return E3M4, nil
	case "INT8":
		return INT8, nil
	}
	return FP32, fmt.Errorf("quant: unknown dtype %q", s)
}

func parseApproach(s string) (Approach, error) {
	switch s {
	case "Static", "":
		return Static, nil
	case "Dynamic":
		return Dynamic, nil
	case "Direct":
		return Direct, nil
	}
	return Static, fmt.Errorf("quant: unknown approach %q", s)
}

func parseCalib(s string) (CalibMethod, error) {
	switch s {
	case "max", "":
		return CalibMax, nil
	case "kl":
		return CalibKL, nil
	case "mse":
		return CalibMSE, nil
	case "percentile":
		return CalibPercentile, nil
	}
	return CalibMax, fmt.Errorf("quant: unknown calibration method %q", s)
}
