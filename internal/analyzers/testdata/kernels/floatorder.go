// Fixture for the floatorder check. The directory is named "kernels"
// so the package falls under the bit-identity contract scope.
package kernels

import "math"

// Positive: a fused multiply-add rounds once.
func useFMA(a, b, c float64) float64 {
	return math.FMA(a, b, c) // want floatorder "math.FMA"
}

// Positive: contraction-eligible expression.
func contractExpr(a, v, b float32) float32 {
	return a + v*b // want floatorder "contraction"
}

// Positive: contraction-eligible compound assignment.
func contractAssign(acc, v, b float32) float32 {
	acc += v * b // want floatorder "contraction"
	return acc
}

// Negative: the sanctioned fix — explicit rounding blocks contraction.
func roundedOK(acc, v, b float32) float32 {
	acc += float32(v * b)
	return acc
}

// Positive: float equality between computed values.
func eqComputed(x, y float64) bool {
	return x*2 == y // want floatorder "comparison"
}

// Negative: comparisons against numeric literals are the codec idiom.
func eqLiteral(x float64) bool {
	return x == 0
}

// Positive: split accumulators combined after the loop reassociate the
// reduction.
func splitAcc(xs []float32) float32 {
	var s0, s1 float32
	for i := 0; i+1 < len(xs); i += 2 {
		s0 += xs[i]
		s1 += xs[i+1]
	}
	return s0 + s1 // want floatorder "reassociates"
}

// Negative: independent accumulators for independent outputs are never
// combined (the 4×8 register-tile shape).
func independentAcc(xs, ys []float32) (float32, float32) {
	var a0, a1 float32
	for i := range xs {
		a0 += xs[i]
		a1 += ys[i]
	}
	return a0, a1
}

// Ignored: a documented exemption suppresses the finding.
func ignoredEq(x, y float64) bool {
	//fp8vet:ignore floatorder fixture exemption: operands are exact copies, no arithmetic on either side
	return x+1 == y+1
}
