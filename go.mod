module fp8quant

go 1.21
