package nn

import (
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	seq := NewSequential(NewLinear(4, 8), ReLU{}, NewLinear(8, 2))
	s := Summarize(seq)
	if s.Params != 4*8+8*2 {
		t.Errorf("params = %d, want %d", s.Params, 4*8+8*2)
	}
	if s.OpCounts["Linear"] != 2 || s.OpCounts["ReLU"] != 1 {
		t.Errorf("op counts = %v", s.OpCounts)
	}
	if s.QuantizableOps != 2 {
		t.Errorf("quantizable = %d, want 2", s.QuantizableOps)
	}
	str := s.String()
	if !strings.Contains(str, "Linear×2") || !strings.Contains(str, "params=48") {
		t.Errorf("summary string = %q", str)
	}
}

func TestSummarizeTransformer(t *testing.T) {
	l := NewTransformerEncoderLayer(8, 2, 16)
	s := Summarize(l)
	// 4 attention projections + 2 FFN linears.
	if s.OpCounts["Linear"] != 6 {
		t.Errorf("linear count = %d, want 6", s.OpCounts["Linear"])
	}
	if s.OpCounts["LayerNorm"] != 2 {
		t.Errorf("layernorm count = %d", s.OpCounts["LayerNorm"])
	}
	if s.OpCounts["BatchMatMul"] != 2 {
		t.Errorf("bmm count = %d", s.OpCounts["BatchMatMul"])
	}
}
