package nn

import (
	"testing"

	"fp8quant/internal/tensor"
)

// convBenchCases span the shapes that dominate the CNN zoo: a padded
// 3x3 over a mid-size feature map, a strided downsampler, and a
// depthwise 3x3 (the MobileNet-style op).
var convBenchCases = []struct {
	name                              string
	inC, outC, k, stride, pad, groups int
	n, h, w                           int
}{
	{"3x3pad1_16c16x16", 16, 16, 3, 1, 1, 1, 4, 16, 16},
	{"3x3s2_32c32x32", 32, 32, 3, 2, 1, 1, 1, 32, 32},
	{"dw3x3_64c16x16", 64, 64, 3, 1, 1, 64, 1, 16, 16},
}

func benchConv(b *testing.B, idx int, direct bool) {
	tc := convBenchCases[idx]
	c := NewConv2d(tc.inC, tc.outC, tc.k, tc.stride, tc.pad, tc.groups)
	rng := tensor.NewRNG(0xC0B)
	c.W.FillNormal(rng, 0, 0.1)
	x := tensor.New(tc.n, tc.inC, tc.h, tc.w)
	x.FillNormal(rng, 0, 1)
	oh, ow := c.OutSize(tc.h), c.OutSize(tc.w)
	b.SetBytes(int64((x.Len() + c.W.Len() + tc.n*tc.outC*oh*ow) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if direct {
			y := tensor.New(tc.n, tc.outC, oh, ow)
			c.forwardDirect(y, x, tc.n, tc.h, tc.w, oh, ow)
		} else {
			_ = c.Forward(x)
		}
	}
}

// BenchmarkConv2dIm2col measures the im2col+GEMM forward path.
func BenchmarkConv2dIm2col(b *testing.B) {
	for i := range convBenchCases {
		b.Run(convBenchCases[i].name, func(b *testing.B) { benchConv(b, i, false) })
	}
}

// BenchmarkConv2dDirect is the pre-kernel 7-deep direct loop over the
// same shapes — the baseline for the im2col speedup.
func BenchmarkConv2dDirect(b *testing.B) {
	for i := range convBenchCases {
		b.Run(convBenchCases[i].name, func(b *testing.B) { benchConv(b, i, true) })
	}
}

// BenchmarkBatchMatMul measures the attention-shaped batched matmuls
// (QKᵀ and PV) through the blocked kernels.
func BenchmarkBatchMatMul(b *testing.B) {
	for _, tc := range []struct {
		name        string
		b1, m, k, n int
		transB      bool
	}{
		{"qkT_16x32x16x32", 16, 32, 16, 32, true},
		{"pv_16x32x32x16", 16, 32, 32, 16, false},
	} {
		b.Run(tc.name, func(b *testing.B) {
			rng := tensor.NewRNG(0xBA7)
			a := tensor.New(tc.b1, tc.m, tc.k)
			var bm *tensor.Tensor
			if tc.transB {
				bm = tensor.New(tc.b1, tc.n, tc.k)
			} else {
				bm = tensor.New(tc.b1, tc.k, tc.n)
			}
			a.FillNormal(rng, 0, 1)
			bm.FillNormal(rng, 0, 1)
			b.SetBytes(int64((a.Len() + bm.Len() + tc.b1*tc.m*tc.n) * 4))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = BatchMatMul(a, bm, tc.transB)
			}
		})
	}
}
