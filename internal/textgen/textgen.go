// Package textgen implements beam-search text generation and the
// degeneration metrics used to reproduce Table 4 / Appendix A.3: the
// paper's qualitative finding is that INT8 Bloom output collapses into
// n-gram repetition ("She saw many strange ...") while E3M4 stays close
// to the FP32 continuation; here that is quantified as first-divergence
// position, repeated-n-gram rate, distinct-n, and next-token KL against
// the FP32 reference on the same beam-search code path.
package textgen

import (
	"math"

	"fp8quant/internal/tensor"
)

// LM is the next-token interface generation needs: token sequences in,
// next-token logits (final position) out.
type LM interface {
	// NextLogits returns [B, V] logits for the next token of each
	// sequence in the batch.
	NextLogits(tokens [][]int) *tensor.Tensor
	// Vocab returns the vocabulary size.
	Vocab() int
}

// beam is one beam-search hypothesis.
type beam struct {
	toks  []int
	score float64
}

// sortBeams orders hypotheses by (score desc, tokens asc) in place.
func sortBeams(b []beam) {
	// Insertion sort — beams are few.
	for i := 1; i < len(b); i++ {
		for j := i; j > 0 && betterBeam(b[j], b[j-1]); j-- {
			b[j], b[j-1] = b[j-1], b[j]
		}
	}
}

func betterBeam(a, b beam) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	for k := range a.toks {
		if k >= len(b.toks) {
			return false
		}
		if a.toks[k] != b.toks[k] {
			return a.toks[k] < b.toks[k]
		}
	}
	return false
}

// BeamSearch generates maxNew tokens continuing prompt with the given
// beam width, returning the best-scoring sequence (prompt excluded).
// Scores are sum of log-probabilities. Deterministic: ties break toward
// the lower token id.
func BeamSearch(m LM, prompt []int, beamWidth, maxNew int) []int {
	beams := []beam{{toks: append([]int(nil), prompt...), score: 0}}
	for step := 0; step < maxNew; step++ {
		// Batch all beams through the model at once.
		batch := make([][]int, len(beams))
		for i, b := range beams {
			batch[i] = b.toks
		}
		logits := m.NextLogits(batch)
		v := m.Vocab()
		var cands []beam
		for i, b := range beams {
			row := logits.Data[i*v : (i+1)*v]
			logp := logSoftmax(row)
			// Expand only the top beamWidth tokens of each beam.
			for _, tok := range topK(logp, beamWidth) {
				toks := append(append([]int(nil), b.toks...), tok)
				cands = append(cands, beam{toks: toks, score: b.score + logp[tok]})
			}
		}
		// Keep the best beamWidth candidates.
		sortBeams(cands)
		if len(cands) > beamWidth {
			cands = cands[:beamWidth]
		}
		beams = cands
	}
	best := beams[0]
	return best.toks[len(prompt):]
}

// Greedy generates maxNew tokens with greedy decoding.
func Greedy(m LM, prompt []int, maxNew int) []int {
	toks := append([]int(nil), prompt...)
	for step := 0; step < maxNew; step++ {
		logits := m.NextLogits([][]int{toks})
		best := 0
		for i, v := range logits.Data {
			if v > logits.Data[best] {
				best = i
			}
		}
		toks = append(toks, best)
	}
	return toks[len(prompt):]
}

// logSoftmax returns log-probabilities of a logit row.
func logSoftmax(row []float32) []float64 {
	maxV := row[0]
	for _, v := range row {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for _, v := range row {
		sum += math.Exp(float64(v - maxV))
	}
	lse := math.Log(sum) + float64(maxV)
	out := make([]float64, len(row))
	for i, v := range row {
		out[i] = float64(v) - lse
	}
	return out
}

// topK returns the indices of the k largest values, descending.
func topK(v []float64, k int) []int {
	if k > len(v) {
		k = len(v)
	}
	idx := make([]int, 0, k)
	used := make(map[int]bool, k)
	for n := 0; n < k; n++ {
		best := -1
		for i, x := range v {
			if used[i] {
				continue
			}
			if best < 0 || x > v[best] {
				best = i
			}
		}
		idx = append(idx, best)
		used[best] = true
	}
	return idx
}

// Metrics quantify generation quality against an FP32 reference.
type Metrics struct {
	// FirstDivergence is the index of the first token differing from
	// the reference (len if identical).
	FirstDivergence int
	// MatchRate is the fraction of positions agreeing with the
	// reference.
	MatchRate float64
	// RepetitionRate is the fraction of 3-grams that repeat an
	// earlier 3-gram in the same sequence (Table 4's "saw many
	// strange" degeneracy).
	RepetitionRate float64
	// DistinctN is the ratio of unique 2-grams to total 2-grams.
	DistinctN float64
}

// Compare computes generation metrics of a sequence against the FP32
// reference sequence.
func Compare(ref, gen []int) Metrics {
	m := Metrics{FirstDivergence: len(gen)}
	match := 0
	for i := range gen {
		if i < len(ref) && gen[i] == ref[i] {
			match++
		} else if m.FirstDivergence == len(gen) {
			m.FirstDivergence = i
		}
	}
	if len(gen) > 0 {
		m.MatchRate = float64(match) / float64(len(gen))
	}
	m.RepetitionRate = RepetitionRate(gen, 3)
	m.DistinctN = DistinctN(gen, 2)
	return m
}

// RepetitionRate returns the fraction of n-grams that already occurred
// earlier in the sequence.
func RepetitionRate(seq []int, n int) float64 {
	if len(seq) < n+1 {
		return 0
	}
	seen := make(map[string]bool)
	repeats, total := 0, 0
	for i := 0; i+n <= len(seq); i++ {
		key := gramKey(seq[i : i+n])
		if seen[key] {
			repeats++
		}
		seen[key] = true
		total++
	}
	return float64(repeats) / float64(total)
}

// DistinctN returns unique-n-gram ratio (higher = more diverse).
func DistinctN(seq []int, n int) float64 {
	if len(seq) < n {
		return 0
	}
	seen := make(map[string]bool)
	total := 0
	for i := 0; i+n <= len(seq); i++ {
		seen[gramKey(seq[i:i+n])] = true
		total++
	}
	return float64(len(seen)) / float64(total)
}

func gramKey(g []int) string {
	b := make([]byte, 0, len(g)*3)
	for _, t := range g {
		b = append(b, byte(t), byte(t>>8), '|')
	}
	return string(b)
}

// NextTokenKL returns the mean KL divergence between reference and
// quantized next-token distributions over a set of prompts.
func NextTokenKL(ref, quant LM, prompts [][]int) float64 {
	lr := ref.NextLogits(prompts)
	lq := quant.NextLogits(prompts)
	v := ref.Vocab()
	total := 0.0
	for i := range prompts {
		p := probs(lr.Data[i*v : (i+1)*v])
		q := probs(lq.Data[i*v : (i+1)*v])
		total += tensor.KLDivergence(p, q)
	}
	return total / float64(len(prompts))
}

func probs(row []float32) []float64 {
	lp := logSoftmax(row)
	out := make([]float64, len(lp))
	for i, v := range lp {
		out[i] = math.Exp(v)
	}
	return out
}
