package harness

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachCellCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7} {
		SetWorkers(workers)
		const n = 1000
		var hits [n]int32
		forEachCell(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: cell %d ran %d times", workers, i, h)
			}
		}
	}
	SetWorkers(0)
}

func TestCollectCellsDeterministicOrder(t *testing.T) {
	want := make([]int, 500)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 3, 16} {
		SetWorkers(workers)
		got := collectCells(len(want), func(i int) int { return i * i })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
	SetWorkers(0)
}

func TestSetWorkersBounds(t *testing.T) {
	SetWorkers(3)
	if Workers() != 3 {
		t.Errorf("Workers() = %d after SetWorkers(3)", Workers())
	}
	// The pool must never run more cells concurrently than configured.
	var cur, peak int32
	forEachCell(64, func(i int) {
		c := atomic.AddInt32(&cur, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if c <= p || atomic.CompareAndSwapInt32(&peak, p, c) {
				break
			}
		}
		for j := 0; j < 10000; j++ {
			_ = j * j
		}
		atomic.AddInt32(&cur, -1)
	})
	if peak > 3 {
		t.Errorf("observed %d concurrent cells with 3 workers", peak)
	}
	SetWorkers(0)
	if Workers() != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers() = %d, want GOMAXPROCS default", Workers())
	}
	SetWorkers(-5)
	if Workers() != runtime.GOMAXPROCS(0) {
		t.Errorf("negative SetWorkers should mean default, got %d", Workers())
	}
}

func TestForEachCellEmpty(t *testing.T) {
	ran := false
	forEachCell(0, func(i int) { ran = true })
	if ran {
		t.Error("forEachCell(0) must not invoke the cell")
	}
}
