package nn

import (
	"fmt"

	"fp8quant/internal/tensor"
)

// Sequential chains modules, feeding each output to the next.
type Sequential struct {
	Names   []string
	Modules []Module
}

// NewSequential builds a chain; names default to "<index>:<kind>".
func NewSequential(mods ...Module) *Sequential {
	s := &Sequential{}
	for _, m := range mods {
		s.Add("", m)
	}
	return s
}

// Add appends a named module and returns s for chaining.
func (s *Sequential) Add(name string, m Module) *Sequential {
	if name == "" {
		name = fmt.Sprintf("%d:%s", len(s.Modules), m.Kind())
	}
	s.Names = append(s.Names, name)
	s.Modules = append(s.Modules, m)
	return s
}

// Kind implements Module.
func (s *Sequential) Kind() string { return "Sequential" }

// Visit implements Container.
func (s *Sequential) Visit(path string, v Visitor) {
	for i, m := range s.Modules {
		walk(path+"/"+s.Names[i], m, v)
	}
}

// Forward runs the chain.
func (s *Sequential) Forward(x *tensor.Tensor) *tensor.Tensor {
	for _, m := range s.Modules {
		x = m.Forward(x)
	}
	return x
}

// ForwardArena implements ArenaForwarder: every child runs against the
// same arena. (Plan.Forward additionally ping-pongs two arenas across
// the top-level chain so dead intermediates are reclaimed; inside a
// single child the one-arena chain is used.)
func (s *Sequential) ForwardArena(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	for _, m := range s.Modules {
		x = ForwardWith(a, m, x)
	}
	return x
}

// ResidualBlock is the ResNet basic block: two 3×3 convs with
// BatchNorm and an additive skip (1×1 projection when shapes change).
type ResidualBlock struct {
	Conv1, Conv2 *Conv2d
	BN1, BN2     *BatchNorm2d
	Proj         *Conv2d // nil for identity skip
	ProjBN       *BatchNorm2d
	Skip         AddOp
}

// NewResidualBlock builds a basic block; stride > 1 or channel change
// adds a projection shortcut.
func NewResidualBlock(inC, outC, stride int) *ResidualBlock {
	b := &ResidualBlock{
		Conv1: NewConv2d(inC, outC, 3, stride, 1, 1),
		Conv2: NewConv2d(outC, outC, 3, 1, 1, 1),
		BN1:   NewBatchNorm2d(outC),
		BN2:   NewBatchNorm2d(outC),
	}
	if stride != 1 || inC != outC {
		b.Proj = NewConv2d(inC, outC, 1, stride, 0, 1)
		b.ProjBN = NewBatchNorm2d(outC)
	}
	return b
}

// Kind implements Module.
func (b *ResidualBlock) Kind() string { return "ResidualBlock" }

// Visit implements Container.
func (b *ResidualBlock) Visit(path string, v Visitor) {
	walk(path+"/conv1", b.Conv1, v)
	walk(path+"/bn1", b.BN1, v)
	walk(path+"/conv2", b.Conv2, v)
	walk(path+"/bn2", b.BN2, v)
	if b.Proj != nil {
		walk(path+"/proj", b.Proj, v)
		walk(path+"/projbn", b.ProjBN, v)
	}
	walk(path+"/skip", &b.Skip, v)
}

// Forward runs the block with ReLU activations.
func (b *ResidualBlock) Forward(x *tensor.Tensor) *tensor.Tensor { return b.ForwardArena(nil, x) }

// ForwardArena implements ArenaForwarder.
func (b *ResidualBlock) ForwardArena(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	var relu ReLU
	h := relu.ForwardArena(a, b.BN1.ForwardArena(a, b.Conv1.ForwardArena(a, x)))
	h = b.BN2.ForwardArena(a, b.Conv2.ForwardArena(a, h))
	skip := x
	if b.Proj != nil {
		skip = b.ProjBN.ForwardArena(a, b.Proj.ForwardArena(a, x))
	}
	return relu.ForwardArena(a, b.Skip.ApplyArena(a, h, skip))
}

// SEBlock is a squeeze-and-excitation channel-attention block
// (SE-ResNeXt, EfficientNet). Its Sigmoid-gated Mul is one of the
// element-wise ops the extended scheme covers.
type SEBlock struct {
	C       int
	FC1     *Linear
	FC2     *Linear
	Gate    MulOp
	Squeeze GlobalAvgPool
}

// NewSEBlock builds an SE block with the given reduction ratio.
func NewSEBlock(c, reduction int) *SEBlock {
	mid := c / reduction
	if mid < 1 {
		mid = 1
	}
	return &SEBlock{C: c, FC1: NewLinear(c, mid), FC2: NewLinear(mid, c)}
}

// Kind implements Module.
func (s *SEBlock) Kind() string { return "SEBlock" }

// Visit implements Container.
func (s *SEBlock) Visit(path string, v Visitor) {
	walk(path+"/fc1", s.FC1, v)
	walk(path+"/fc2", s.FC2, v)
	walk(path+"/gate", &s.Gate, v)
}

// Forward scales channels of x [N,C,H,W] by learned gates.
func (s *SEBlock) Forward(x *tensor.Tensor) *tensor.Tensor { return s.ForwardArena(nil, x) }

// ForwardArena implements ArenaForwarder.
func (s *SEBlock) ForwardArena(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	var relu ReLU
	var sig Sigmoid
	z := s.Squeeze.ForwardArena(a, x) // [N,C]
	z = sig.ForwardArena(a, s.FC2.ForwardArena(a, relu.ForwardArena(a, s.FC1.ForwardArena(a, z))))
	return s.Gate.ApplyArena(a, x, z)
}

// FFN is the transformer feed-forward block: fc1 → activation → fc2.
type FFN struct {
	FC1, FC2 *Linear
	Act      Module
}

// NewFFN builds a GELU feed-forward block.
func NewFFN(dim, hidden int) *FFN {
	return &FFN{FC1: NewLinear(dim, hidden), FC2: NewLinear(hidden, dim), Act: GELU{}}
}

// Kind implements Module.
func (f *FFN) Kind() string { return "FFN" }

// Visit implements Container.
func (f *FFN) Visit(path string, v Visitor) {
	walk(path+"/fc1", f.FC1, v)
	walk(path+"/fc2", f.FC2, v)
}

// Forward runs the block.
func (f *FFN) Forward(x *tensor.Tensor) *tensor.Tensor { return f.ForwardArena(nil, x) }

// ForwardArena implements ArenaForwarder.
func (f *FFN) ForwardArena(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	return f.FC2.ForwardArena(a, ForwardWith(a, f.Act, f.FC1.ForwardArena(a, x)))
}

// SwiGLU is the gated feed-forward used by LLaMA: (SiLU(xW1) * xW3)W2.
type SwiGLU struct {
	W1, W2, W3 *Linear
	Gate       MulOp
}

// NewSwiGLU builds a gated FFN.
func NewSwiGLU(dim, hidden int) *SwiGLU {
	return &SwiGLU{
		W1: NewLinear(dim, hidden), W2: NewLinear(hidden, dim), W3: NewLinear(dim, hidden),
	}
}

// Kind implements Module.
func (s *SwiGLU) Kind() string { return "SwiGLU" }

// Visit implements Container.
func (s *SwiGLU) Visit(path string, v Visitor) {
	walk(path+"/w1", s.W1, v)
	walk(path+"/w2", s.W2, v)
	walk(path+"/w3", s.W3, v)
	walk(path+"/gate", &s.Gate, v)
}

// Forward runs the gated block.
func (s *SwiGLU) Forward(x *tensor.Tensor) *tensor.Tensor { return s.ForwardArena(nil, x) }

// ForwardArena implements ArenaForwarder.
func (s *SwiGLU) ForwardArena(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	var silu SiLU
	return s.W2.ForwardArena(a,
		s.Gate.ApplyArena(a, silu.ForwardArena(a, s.W1.ForwardArena(a, x)), s.W3.ForwardArena(a, x)))
}

// TransformerEncoderLayer is a post-norm encoder block (BERT style):
// x = LN(x + Attn(x)); x = LN(x + FFN(x)).
type TransformerEncoderLayer struct {
	Attn       *MultiHeadAttention
	FF         *FFN
	LN1, LN2   *LayerNorm
	Res1, Res2 AddOp
}

// NewTransformerEncoderLayer builds a BERT-style encoder layer.
func NewTransformerEncoderLayer(dim, heads, ffHidden int) *TransformerEncoderLayer {
	return &TransformerEncoderLayer{
		Attn: NewMultiHeadAttention(dim, heads),
		FF:   NewFFN(dim, ffHidden),
		LN1:  NewLayerNorm(dim),
		LN2:  NewLayerNorm(dim),
	}
}

// Kind implements Module.
func (l *TransformerEncoderLayer) Kind() string { return "TransformerEncoderLayer" }

// Visit implements Container.
func (l *TransformerEncoderLayer) Visit(path string, v Visitor) {
	walk(path+"/attn", l.Attn, v)
	walk(path+"/ffn", l.FF, v)
	walk(path+"/ln1", l.LN1, v)
	walk(path+"/ln2", l.LN2, v)
	walk(path+"/res1", &l.Res1, v)
	walk(path+"/res2", &l.Res2, v)
}

// Forward runs the layer.
func (l *TransformerEncoderLayer) Forward(x *tensor.Tensor) *tensor.Tensor {
	return l.ForwardArena(nil, x)
}

// ForwardArena implements ArenaForwarder.
func (l *TransformerEncoderLayer) ForwardArena(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	x = l.LN1.ForwardArena(a, l.Res1.ApplyArena(a, x, l.Attn.ForwardArena(a, x)))
	return l.LN2.ForwardArena(a, l.Res2.ApplyArena(a, x, l.FF.ForwardArena(a, x)))
}

// TransformerDecoderLayer is a pre-norm causal decoder block (GPT
// style): x = x + Attn(LN(x)); x = x + FFN(LN(x)).
type TransformerDecoderLayer struct {
	Attn       *MultiHeadAttention
	FF         Module // *FFN or *SwiGLU
	LN1, LN2   Module // *LayerNorm or *RMSNorm
	Res1, Res2 AddOp
}

// NewTransformerDecoderLayer builds a GPT-style pre-norm decoder layer.
func NewTransformerDecoderLayer(dim, heads, ffHidden int) *TransformerDecoderLayer {
	attn := NewMultiHeadAttention(dim, heads)
	attn.Causal = true
	return &TransformerDecoderLayer{
		Attn: attn,
		FF:   NewFFN(dim, ffHidden),
		LN1:  NewLayerNorm(dim),
		LN2:  NewLayerNorm(dim),
	}
}

// NewLlamaDecoderLayer builds a LLaMA-style layer (RMSNorm + SwiGLU).
func NewLlamaDecoderLayer(dim, heads, ffHidden int) *TransformerDecoderLayer {
	attn := NewMultiHeadAttention(dim, heads)
	attn.Causal = true
	return &TransformerDecoderLayer{
		Attn: attn,
		FF:   NewSwiGLU(dim, ffHidden),
		LN1:  NewRMSNorm(dim),
		LN2:  NewRMSNorm(dim),
	}
}

// Kind implements Module.
func (l *TransformerDecoderLayer) Kind() string { return "TransformerDecoderLayer" }

// Visit implements Container.
func (l *TransformerDecoderLayer) Visit(path string, v Visitor) {
	walk(path+"/attn", l.Attn, v)
	walk(path+"/ffn", l.FF, v)
	walk(path+"/ln1", l.LN1, v)
	walk(path+"/ln2", l.LN2, v)
	walk(path+"/res1", &l.Res1, v)
	walk(path+"/res2", &l.Res2, v)
}

// Forward runs the layer.
func (l *TransformerDecoderLayer) Forward(x *tensor.Tensor) *tensor.Tensor {
	return l.ForwardArena(nil, x)
}

// ForwardArena implements ArenaForwarder.
func (l *TransformerDecoderLayer) ForwardArena(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	x = l.Res1.ApplyArena(a, x, ForwardWith(a, l.Attn, ForwardWith(a, l.LN1, x)))
	return l.Res2.ApplyArena(a, x, ForwardWith(a, l.FF, ForwardWith(a, l.LN2, x)))
}

// DepthwiseSeparable is the MobileNet building block: depthwise 3×3
// conv + pointwise 1×1 conv, each followed by BatchNorm.
type DepthwiseSeparable struct {
	DW, PW   *Conv2d
	BN1, BN2 *BatchNorm2d
	Act      Module
}

// NewDepthwiseSeparable builds the block with the given stride.
func NewDepthwiseSeparable(inC, outC, stride int) *DepthwiseSeparable {
	return &DepthwiseSeparable{
		DW:  NewConv2d(inC, inC, 3, stride, 1, inC),
		PW:  NewConv2d(inC, outC, 1, 1, 0, 1),
		BN1: NewBatchNorm2d(inC),
		BN2: NewBatchNorm2d(outC),
		Act: ReLU{},
	}
}

// Kind implements Module.
func (d *DepthwiseSeparable) Kind() string { return "DepthwiseSeparable" }

// Visit implements Container.
func (d *DepthwiseSeparable) Visit(path string, v Visitor) {
	walk(path+"/dw", d.DW, v)
	walk(path+"/bn1", d.BN1, v)
	walk(path+"/pw", d.PW, v)
	walk(path+"/bn2", d.BN2, v)
}

// Forward runs the block.
func (d *DepthwiseSeparable) Forward(x *tensor.Tensor) *tensor.Tensor {
	return d.ForwardArena(nil, x)
}

// ForwardArena implements ArenaForwarder.
func (d *DepthwiseSeparable) ForwardArena(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	x = ForwardWith(a, d.Act, d.BN1.ForwardArena(a, d.DW.ForwardArena(a, x)))
	return ForwardWith(a, d.Act, d.BN2.ForwardArena(a, d.PW.ForwardArena(a, x)))
}
