package tensor

import (
	"runtime"
	"sync"
)

// parallelJob is one contiguous chunk of a ParallelFor call. Jobs are
// recycled through a sync.Pool so steady-state quantization sweeps do
// not allocate per chunk.
type parallelJob struct {
	body   func(lo, hi int)
	lo, hi int
	wg     *sync.WaitGroup
}

var (
	poolOnce sync.Once
	poolJobs chan *parallelJob
	jobPool  = sync.Pool{New: func() interface{} { return new(parallelJob) }}
)

// startPool lazily spins up the shared worker pool, sized to
// GOMAXPROCS. The goroutines live for the process lifetime; they block
// on the job channel when idle and cost nothing.
func startPool() {
	n := runtime.GOMAXPROCS(0)
	poolJobs = make(chan *parallelJob, 2*n)
	for i := 0; i < n; i++ {
		go func() {
			for j := range poolJobs {
				runJob(j)
			}
		}()
	}
}

// runJob executes one queued chunk and recycles its descriptor.
func runJob(j *parallelJob) {
	j.body(j.lo, j.hi)
	wg := j.wg
	*j = parallelJob{}
	jobPool.Put(j)
	wg.Done()
}

// ParallelFor runs body over contiguous sub-ranges of [0, n) using a
// shared worker pool. minGrain bounds the smallest chunk handed to a
// worker: when n <= minGrain (or the pool brings no parallelism) the
// body runs inline on the calling goroutine. Chunks are disjoint, so
// bodies writing to per-index slots need no locking, and the result is
// independent of the execution order. Nested calls are deadlock-free:
// submission never blocks (overflow chunks run inline) and a waiting
// caller helps drain the queue, so pool workers blocked inside an
// inner ParallelFor still make progress.
func ParallelFor(n, minGrain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if minGrain < 1 {
		minGrain = 1
	}
	//fp8vet:ignore nondeterm parallelism degree only: chunks are disjoint and each output slot is written once, so any worker count yields identical bytes (proven by the cross-worker-count differential tests)
	workers := runtime.GOMAXPROCS(0)
	if n <= minGrain || workers <= 1 {
		body(0, n)
		return
	}
	poolOnce.Do(startPool)
	// Aim for a few chunks per worker for load balancing, but never
	// below the grain.
	chunk := (n + 4*workers - 1) / (4 * workers)
	if chunk < minGrain {
		chunk = minGrain
	}
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if hi == n {
			// Run the final chunk inline instead of idling.
			body(lo, hi)
			break
		}
		j := jobPool.Get().(*parallelJob)
		j.body, j.lo, j.hi, j.wg = body, lo, hi, &wg
		wg.Add(1)
		select {
		case poolJobs <- j:
		default:
			// Pool saturated: do the work here rather than block.
			*j = parallelJob{}
			jobPool.Put(j)
			body(lo, hi)
			wg.Done()
		}
	}
	// Help drain the queue while waiting. Without this, pool workers
	// whose bodies call ParallelFor themselves could all park in an
	// inner wait with the queued chunks left for nobody to run.
	for {
		select {
		case j := <-poolJobs:
			runJob(j)
		default:
			wg.Wait()
			return
		}
	}
}
