package resultstore

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// keyFor builds a distinct cell key per model name.
func keyFor(model string) CellKey {
	k := testKey()
	k.Cell[0].Value = model
	return k
}

// assertNoTmpFiles fails if any temp files leaked into dir.
func assertNoTmpFiles(t *testing.T, dir string) {
	t.Helper()
	tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	hidden, _ := filepath.Glob(filepath.Join(dir, ".*.tmp"))
	if all := append(tmps, hidden...); len(all) != 0 {
		t.Errorf("temp files leaked in %s: %v", dir, all)
	}
}

func TestMergeCopiesAndSkipsIdentical(t *testing.T) {
	dst, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	src, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// src: cells A, B. dst: B (same bytes, written identically), C.
	for _, m := range []string{"a", "b"} {
		if err := src.SaveCell(keyFor(m), testResult()); err != nil {
			t.Fatal(err)
		}
	}
	for _, m := range []string{"b", "c"} {
		if err := dst.SaveCell(keyFor(m), testResult()); err != nil {
			t.Fatal(err)
		}
	}
	st, err := dst.Merge(src)
	if err != nil {
		t.Fatal(err)
	}
	if st.CellsCopied != 1 || st.CellsIdentical != 1 {
		t.Errorf("merge stats = %+v, want 1 copied / 1 identical", st)
	}
	for _, m := range []string{"a", "b", "c"} {
		if _, ok := dst.LoadCell(keyFor(m)); !ok {
			t.Errorf("cell %q missing from merged store", m)
		}
	}
	// Merge traffic must not pollute the hit/miss/write counters
	// (the three LoadCell probes above account for the 3 hits).
	if got := dst.Stats(); got.Writes != 2 || got.Hits != 3 {
		t.Errorf("stats after merge = %+v, want only the original 2 writes and 3 probe hits", got)
	}
	assertNoTmpFiles(t, dst.Dir())
	assertNoTmpFiles(t, src.Dir())
}

func TestMergeConflictingValidCellsError(t *testing.T) {
	dst, _ := Open(t.TempDir())
	src, _ := Open(t.TempDir())
	k := testKey()
	if err := dst.SaveCell(k, testResult()); err != nil {
		t.Fatal(err)
	}
	other := testResult()
	other.QAcc = 0.5 // same key, different valid payload: nondeterminism
	if err := src.SaveCell(k, other); err != nil {
		t.Fatal(err)
	}
	_, err := dst.Merge(src)
	if err == nil {
		t.Fatal("conflicting valid payloads must refuse to merge")
	}
	if !strings.Contains(err.Error(), k.Fingerprint()) {
		t.Errorf("conflict error %q should name the cell fingerprint", err)
	}
	// The destination keeps its original payload.
	if got, ok := dst.LoadCell(k); !ok || got.QAcc != testResult().QAcc {
		t.Errorf("destination cell changed by failed merge: %+v", got)
	}
}

func TestMergeValidBeatsCorrupt(t *testing.T) {
	dst, _ := Open(t.TempDir())
	src, _ := Open(t.TempDir())
	k := testKey()

	// dst holds a torn write; src holds the valid cell → overwrite.
	if err := os.WriteFile(dst.CellPath(k), []byte(`{"schema":2,"torn`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := src.SaveCell(k, testResult()); err != nil {
		t.Fatal(err)
	}
	st, err := dst.Merge(src)
	if err != nil {
		t.Fatal(err)
	}
	if st.CellsCopied != 1 {
		t.Errorf("valid source should replace corrupt destination: %+v", st)
	}
	if _, ok := dst.LoadCell(k); !ok {
		t.Error("healed cell must load")
	}

	// The reverse: corrupt src must not clobber (or even join) a store.
	dst2, _ := Open(t.TempDir())
	src2, _ := Open(t.TempDir())
	if err := dst2.SaveCell(k, testResult()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(src2.CellPath(k), []byte(`{"schema":2,"torn`), 0o644); err != nil {
		t.Fatal(err)
	}
	k2 := keyFor("only-corrupt")
	if err := os.WriteFile(src2.CellPath(k2), []byte(`garbage`), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err = dst2.Merge(src2)
	if err != nil {
		t.Fatal(err)
	}
	if st.CellsCopied != 0 || st.Skipped != 2 {
		t.Errorf("corrupt source cells should be skipped: %+v", st)
	}
	if got, ok := dst2.LoadCell(k); !ok || got.QAcc != testResult().QAcc {
		t.Errorf("corrupt source clobbered a valid destination cell: %+v", got)
	}
	if _, err := os.Stat(dst2.CellPath(k2)); !os.IsNotExist(err) {
		t.Error("corrupt-only source cell must not be copied")
	}
}

func TestMergeSkipsForeignAndStaleFiles(t *testing.T) {
	dst, _ := Open(t.TempDir())
	srcDir := t.TempDir()
	src, _ := Open(srcDir)
	// A schema-1 legacy blob, a stale-schema cell, a stale-schema
	// manifest, a temp file, and a foreign file: none may cross into
	// the destination, and each must be counted as skipped.
	stale := map[string]string{
		"deadbeefdeadbeefdeadbeefdeadbeef.json": `{"schema":1}`,
		".cell-123.tmp":                         `partial`,
		"notes.json":                            `{"mine":true}`,
	}
	k := testKey()
	b, _ := json.Marshal(cellEnvelope{Schema: SchemaVersion - 1, Key: k, Result: testResult()})
	stale["c-"+k.Fingerprint()+".json"] = string(b)
	mb, _ := json.Marshal(manifestEnvelope{Schema: SchemaVersion - 1, Manifest: testManifest()})
	stale[filepath.Base(src.ManifestPath("table2-sweep", 0))] = string(mb)
	for name, content := range stale {
		if err := os.WriteFile(filepath.Join(srcDir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	st, err := dst.Merge(src)
	if err != nil {
		t.Fatal(err)
	}
	if st.CellsCopied != 0 || st.Manifests != 0 || st.Skipped != len(stale) {
		t.Errorf("merge stats = %+v, want everything skipped (%d files)", st, len(stale))
	}
	ents, _ := os.ReadDir(dst.Dir())
	if len(ents) != 0 {
		t.Errorf("destination should stay empty, has %v", ents)
	}
}

func TestMergeManifestUnionsShards(t *testing.T) {
	dst, _ := Open(t.TempDir())
	src, _ := Open(t.TempDir())
	m := testManifest()
	m.Shards = []ShardRecord{{Index: 0, Count: 3}}
	if err := dst.SaveManifest(m); err != nil {
		t.Fatal(err)
	}
	m2 := testManifest()
	m2.Shards = []ShardRecord{{Index: 2, Count: 3}, {Index: 0, Count: 3}}
	if err := src.SaveManifest(m2); err != nil {
		t.Fatal(err)
	}
	st, err := dst.Merge(src)
	if err != nil {
		t.Fatal(err)
	}
	if st.Manifests != 1 {
		t.Errorf("merge stats = %+v, want 1 manifest updated", st)
	}
	got, ok := dst.LoadManifest(m.Grid, m.Seed)
	if !ok {
		t.Fatal("merged manifest must load")
	}
	want := []ShardRecord{{Index: 0, Count: 3}, {Index: 2, Count: 3}}
	if len(got.Shards) != 2 || got.Shards[0] != want[0] || got.Shards[1] != want[1] {
		t.Errorf("merged shards = %+v, want %+v", got.Shards, want)
	}
	// A manifest absent from the destination is copied wholesale.
	dst2, _ := Open(t.TempDir())
	st, err = dst2.Merge(src)
	if err != nil {
		t.Fatal(err)
	}
	if st.Manifests != 1 {
		t.Errorf("fresh destination merge stats = %+v, want 1 manifest copied", st)
	}
	if _, ok := dst2.LoadManifest(m.Grid, m.Seed); !ok {
		t.Error("copied manifest must load")
	}
	// Re-merging the identical manifest is a no-op.
	st, err = dst2.Merge(src)
	if err != nil {
		t.Fatal(err)
	}
	if st.Manifests != 0 {
		t.Errorf("idempotent re-merge stats = %+v, want 0 manifests", st)
	}
}

// TestMergeManifestKernelVariantRules: same-variant (and legacy
// variant-less) manifests union cleanly; manifests recording different
// kernel variants refuse to merge, because their cells carry
// bit-incompatible rounding.
func TestMergeManifestKernelVariantRules(t *testing.T) {
	dst, _ := Open(t.TempDir())
	src, _ := Open(t.TempDir())
	m := testManifest() // legacy: no variant recorded
	if err := dst.SaveManifest(m); err != nil {
		t.Fatal(err)
	}
	mv := testManifest()
	mv.KernelVariants = []string{"sse"}
	if err := src.SaveManifest(mv); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Merge(src); err != nil {
		t.Fatalf("legacy ∪ sse must merge: %v", err)
	}
	got, _ := dst.LoadManifest(m.Grid, m.Seed)
	if len(got.KernelVariants) != 1 || got.KernelVariants[0] != "sse" {
		t.Fatalf("merged variants = %v, want [sse]", got.KernelVariants)
	}
	// Idempotent: same variant again writes nothing.
	if st, err := dst.Merge(src); err != nil || st.Manifests != 0 {
		t.Fatalf("same-variant re-merge = %+v, %v; want no writes", st, err)
	}
	// A store produced on a different tier must be rejected.
	src2, _ := Open(t.TempDir())
	mx := testManifest()
	mx.KernelVariants = []string{"avx2"}
	if err := src2.SaveManifest(mx); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Merge(src2); err == nil || !strings.Contains(err.Error(), "kernel variants") {
		t.Errorf("sse ∪ avx2 must refuse to merge, got %v", err)
	}
}

func TestMergeManifestScheduleConflictErrors(t *testing.T) {
	dst, _ := Open(t.TempDir())
	src, _ := Open(t.TempDir())
	if err := dst.SaveManifest(testManifest()); err != nil {
		t.Fatal(err)
	}
	other := testManifest()
	other.Cells = []string{"00000000000000000000000000000000"}
	if err := src.SaveManifest(other); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Merge(src); err == nil || !strings.Contains(err.Error(), "schedules differ") {
		t.Errorf("differing schedules must refuse to merge, got %v", err)
	}
}

func TestMergeSelfAndNil(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	if err := s.SaveCell(testKey(), testResult()); err != nil {
		t.Fatal(err)
	}
	same, _ := Open(dir)
	st, err := s.Merge(same)
	if err != nil || st != (MergeStats{}) {
		t.Errorf("self-merge = %+v, %v; want no-op", st, err)
	}
	if _, err := s.Merge(nil); err == nil {
		t.Error("nil source must error")
	}
	var nilStore *Store
	if _, err := nilStore.Merge(s); err == nil {
		t.Error("nil destination must error")
	}
}

// TestPruneKeepsManifestReferencedCells is the merge/prune
// interaction: an age-bounded prune after a merge must never drop
// cells a live manifest references (a merged store's files carry
// whatever mtime the copy gave them), while unreferenced cells still
// age out and manifests themselves are never age-pruned.
func TestPruneKeepsManifestReferencedCells(t *testing.T) {
	// Build a "shard" store with one referenced cell + manifest, and an
	// unreferenced cell, then merge it into a fresh store.
	src, _ := Open(t.TempDir())
	ref := testKey()
	if err := src.SaveCell(ref, testResult()); err != nil {
		t.Fatal(err)
	}
	if err := src.SaveManifest(testManifest()); err != nil { // references ref only
		t.Fatal(err)
	}
	loose := keyFor("unreferenced")
	if err := src.SaveCell(loose, testResult()); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	dst, _ := Open(dir)
	if _, err := dst.Merge(src); err != nil {
		t.Fatal(err)
	}
	assertNoTmpFiles(t, dir)

	// Age every merged file past the prune horizon.
	old := time.Now().Add(-3 * time.Hour)
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if err := os.Chtimes(filepath.Join(dir, e.Name()), old, old); err != nil {
			t.Fatal(err)
		}
	}
	n, err := dst.Prune(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("Prune removed %d files, want 1 (the unreferenced cell only)", n)
	}
	if _, ok := dst.LoadCell(ref); !ok {
		t.Error("manifest-referenced cell must survive an age-bounded prune")
	}
	if _, ok := dst.LoadCell(loose); ok {
		t.Error("unreferenced aged cell should be pruned")
	}
	if _, ok := dst.LoadManifest("table2-sweep", 0); !ok {
		t.Error("manifests must never age out")
	}
	assertNoTmpFiles(t, dir)
}

func TestCoverageCountsValidCells(t *testing.T) {
	s, _ := Open(t.TempDir())
	m := testManifest()
	// Empty store: everything missing.
	cov := s.Coverage(m)
	if cov.Done != 0 || len(cov.Missing) != 1 || cov.Complete() {
		t.Errorf("empty-store coverage = %+v", cov)
	}
	if err := s.SaveCell(testKey(), testResult()); err != nil {
		t.Fatal(err)
	}
	cov = s.Coverage(m)
	if !cov.Complete() || cov.Percent() != 100 {
		t.Errorf("full-store coverage = %+v, want complete", cov)
	}
	// A torn cell is as missing as no cell: a resume would recompute it.
	if err := os.WriteFile(s.CellPath(testKey()), []byte(`{"sch`), 0o644); err != nil {
		t.Fatal(err)
	}
	cov = s.Coverage(m)
	if cov.Done != 0 {
		t.Errorf("corrupt-cell coverage = %+v, want missing", cov)
	}
	// Empty manifest is trivially complete; nil store has nothing.
	if cov := s.Coverage(Manifest{}); !cov.Complete() || cov.Percent() != 100 {
		t.Errorf("empty-manifest coverage = %+v", cov)
	}
	var nilStore *Store
	if cov := nilStore.Coverage(m); cov.Done != 0 || len(cov.Missing) != 1 {
		t.Errorf("nil-store coverage = %+v, want all missing", cov)
	}
}

func TestUnionShards(t *testing.T) {
	a := []ShardRecord{{Index: 1, Count: 3}, {Index: 0, Count: 2}}
	b := []ShardRecord{{Index: 0, Count: 3}, {Index: 1, Count: 3}}
	got := UnionShards(a, b)
	want := []ShardRecord{{Index: 0, Count: 2}, {Index: 0, Count: 3}, {Index: 1, Count: 3}}
	if len(got) != len(want) {
		t.Fatalf("UnionShards = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("UnionShards = %+v, want %+v (sorted, deduped)", got, want)
		}
	}
	if UnionShards(nil, nil) != nil {
		t.Error("union of nothing should be nil")
	}
}
