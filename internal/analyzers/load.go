// Package loading for the fp8vet analyzers: packages are discovered
// with `go list -json` (so the set fp8vet sees is exactly the set the
// build sees), parsed with go/parser and type-checked with go/types
// using the source importer — stdlib only, no external analysis
// framework. Test files are excluded: the determinism contracts govern
// the code that computes and persists results, not the code that
// checks it. Build-tag-excluded files (the other configuration's
// kernels) are analyzed too, via variant packages — see
// loadIgnoredVariants.

package analyzers

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package under analysis.
type Package struct {
	// Path is the import path ("fp8quant/internal/harness"), or the
	// package name for fixture packages loaded from a bare directory.
	Path string
	// Dir is the directory the files came from.
	Dir string
	// Files are the parsed non-test files.
	Files []*ast.File
	// Fset positions every node in Files.
	Fset *token.FileSet
	// Types and Info carry the type-checker's results. Info is always
	// populated; Types may be partially filled if the check errored.
	Types *types.Package
	Info  *types.Info
	// Ignores maps file -> line -> directives parsed from
	// //fp8vet:ignore comments.
	Ignores map[string]map[int][]Directive
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath     string
	Dir            string
	Name           string
	GoFiles        []string
	IgnoredGoFiles []string
}

// Load discovers the packages matching patterns (relative to dir) via
// `go list -json` and returns them parsed and type-checked. Packages
// that fail to type-check are still returned (analysis is best-effort
// on partial type info); a completely unparsable package is an error.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	var listed []listedPackage
	dec := json.NewDecoder(&out)
	for dec.More() {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("go list -json decode: %v", err)
		}
		if len(p.GoFiles) > 0 {
			listed = append(listed, p)
		}
	}
	sort.Slice(listed, func(i, j int) bool { return listed[i].ImportPath < listed[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, lp := range listed {
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		pkg, err := loadFiles(fset, imp, lp.ImportPath, lp.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
		variants, err := loadIgnoredVariants(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, variants...)
	}
	return pkgs, nil
}

// loadIgnoredVariants analyzes the package's build-tag-excluded files
// (`go list`'s IgnoredGoFiles). The portable fallback a build tag
// hides on this host — gemm_generic.go's !amd64 kernels — is exactly
// the code most likely to break the bit-identity contract unnoticed,
// so each ignored file is type-checked as a variant of its package:
// the ignored file plus every regular file that declares none of the
// same top-level names (its build-tag counterpart collides and drops
// out, standing in for the other configuration). Findings duplicated
// by re-analyzing the shared files are deduplicated in RunAll.
func loadIgnoredVariants(fset *token.FileSet, imp types.Importer, lp listedPackage) ([]*Package, error) {
	var out []*Package
	for _, ig := range lp.IgnoredGoFiles {
		if !strings.HasSuffix(ig, ".go") || strings.HasSuffix(ig, "_test.go") {
			continue
		}
		igPath := filepath.Join(lp.Dir, ig)
		igFile, err := parser.ParseFile(token.NewFileSet(), igPath, nil, 0)
		if err != nil {
			continue // not parseable by this toolchain; nothing to check
		}
		names := declNames(igFile)
		files := []string{igPath}
		for _, f := range lp.GoFiles {
			fPath := filepath.Join(lp.Dir, f)
			base, err := parser.ParseFile(token.NewFileSet(), fPath, nil, 0)
			if err != nil || overlaps(names, declNames(base)) {
				continue
			}
			files = append(files, fPath)
		}
		sort.Strings(files)
		pkg, err := loadFiles(fset, imp, lp.ImportPath, lp.Dir, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// declNames returns a file's top-level declaration names; methods are
// qualified by receiver type so only true redeclarations collide.
func declNames(f *ast.File) map[string]bool {
	names := map[string]bool{}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			key := d.Name.Name
			if d.Recv != nil && len(d.Recv.List) > 0 {
				key = astRecvName(d.Recv.List[0].Type) + "." + key
			}
			names[key] = true
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.ValueSpec:
					for _, n := range s.Names {
						names[n.Name] = true
					}
				case *ast.TypeSpec:
					names[s.Name.Name] = true
				}
			}
		}
	}
	delete(names, "_")
	delete(names, "init")
	return names
}

// astRecvName extracts the receiver type name syntactically (no type
// info exists yet at collision-check time).
func astRecvName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return astRecvName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver
		return astRecvName(t.X)
	}
	return ""
}

func overlaps(a, b map[string]bool) bool {
	for k := range a {
		if b[k] {
			return true
		}
	}
	return false
}

// LoadDir loads the single package in dir (every non-test .go file) —
// the fixture-package entry point used by the golden tests. The
// importer resolves from source, so fixtures may import the stdlib but
// nothing else.
func LoadDir(dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analyzers: no .go files in %s", dir)
	}
	sort.Strings(files)
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	return loadFiles(fset, imp, filepath.Base(dir), dir, files)
}

// loadFiles parses and type-checks one package's files.
func loadFiles(fset *token.FileSet, imp types.Importer, path, dir string, files []string) (*Package, error) {
	pkg := &Package{
		Path: path,
		Dir:  dir,
		Fset: fset,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		},
		Ignores: map[string]map[int][]Directive{},
	}
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analyzers: parse %s: %v", f, err)
		}
		pkg.Files = append(pkg.Files, af)
		pkg.Ignores[f] = parseDirectives(fset, af)
	}
	conf := types.Config{
		Importer: imp,
		// Analysis is best-effort on partial type information: a
		// fixture (or a mid-refactor tree) with a type error should
		// still be analyzable for the constructs that do resolve.
		Error: func(error) {},
	}
	tpkg, _ := conf.Check(path, fset, pkg.Files, pkg.Info)
	pkg.Types = tpkg
	return pkg, nil
}
