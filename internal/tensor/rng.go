package tensor

import "math"

// RNG is a deterministic SplitMix64 pseudo-random generator. Every
// source of randomness in the repository flows through RNG with an
// explicit seed so that experiments are bit-reproducible.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits (SplitMix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal variate (Box-Muller).
func (r *RNG) Norm() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Uniform returns a uniform value in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Split derives an independent child generator; useful for giving each
// layer or dataset shard its own reproducible stream.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// FillNormal fills t with N(mean, std²) variates.
func (t *Tensor) FillNormal(r *RNG, mean, std float64) {
	for i := range t.Data {
		t.Data[i] = float32(mean + std*r.Norm())
	}
}

// FillUniform fills t with U[lo, hi) variates.
func (t *Tensor) FillUniform(r *RNG, lo, hi float64) {
	for i := range t.Data {
		t.Data[i] = float32(r.Uniform(lo, hi))
	}
}

// InjectOutliers replaces a fraction of elements with uniform values in
// [lo, hi), reproducing the outlier structure of NLP activations that
// Section 2 and Figure 1 analyze. Negative outliers mirror positives.
func (t *Tensor) InjectOutliers(r *RNG, fraction, lo, hi float64) {
	n := int(fraction * float64(t.Len()))
	for i := 0; i < n; i++ {
		idx := r.Intn(t.Len())
		v := r.Uniform(lo, hi)
		if r.Float64() < 0.5 {
			v = -v
		}
		t.Data[idx] = float32(v)
	}
}
