package fp8

import (
	"math"
	"testing"

	"fp8quant/internal/tensor"
)

// TestQuantBatch4LaneBoundaries pins the 4-lane batch kernel to the
// per-element Encode reference at every length around the unroll
// width, with special values (NaN, ±Inf, ±0, subnormals, overflow)
// planted in each lane position and in the scalar tail.
func TestQuantBatch4LaneBoundaries(t *testing.T) {
	specials := []float32{
		float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1)),
		0, float32(math.Copysign(0, -1)),
		float32(E4M3.MinSubnormal()), -float32(E4M3.MinSubnormal() / 2),
		1e30, -1e30, 1.5, -0.375,
	}
	c := E4M3.Codec()
	for n := 0; n <= 13; n++ {
		for rot := 0; rot < len(specials); rot++ {
			src := make([]float32, n)
			for i := range src {
				src[i] = specials[(i+rot)%len(specials)]
			}
			got := c.QuantizeSlice(make([]float32, n), src)
			for i, v := range src {
				want := c.dec[c.Encode(v)]
				if !sameFloat32(got[i], want) {
					t.Fatalf("n=%d rot=%d: batch[%d]=%v (in %v) != %v", n, rot, i, got[i], v, want)
				}
			}
		}
	}
}

// TestRNEShiftBranchless exhaustively pins the branch-free rneShift to
// the literal round-to-nearest-even definition for every shift and a
// dense significand sweep (full 25-bit coverage for small shifts).
func TestRNEShiftBranchless(t *testing.T) {
	ref := func(sig uint32, s uint) uint32 {
		q := sig >> s
		rem := sig & (1<<s - 1)
		half := uint32(1) << (s - 1)
		if rem > half || (rem == half && q&1 == 1) {
			q++
		}
		return q
	}
	for s := uint(1); s <= 31; s++ {
		step := uint32(1)
		if s > 12 {
			step = 97 // prime stride keeps all residues visited
		}
		for sig := uint32(0); sig < 1<<25; sig += step {
			if got, want := rneShift(sig, s), ref(sig, s); got != want {
				t.Fatalf("rneShift(%d, %d) = %d, want %d", sig, s, got, want)
			}
		}
	}
}

// batchBenchSrc is a 1M-element mixed-magnitude tensor for the batch
// encode benchmarks.
func batchBenchSrc() []float32 {
	src := make([]float32, 1<<20)
	r := tensor.NewRNG(0xBA7C)
	for i := range src {
		src[i] = float32(r.Norm() * 8)
	}
	return src
}

// BenchmarkBatchEncode measures the 4-lane batch fake-quant kernel
// (the QuantizeSlice hot path).
func BenchmarkBatchEncode(b *testing.B) {
	src := batchBenchSrc()
	dst := make([]float32, len(src))
	c := E4M3.Codec()
	b.SetBytes(int64(len(src) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.QuantizeSlice(dst, src)
	}
}

// BenchmarkBatchEncodeScalar is the pre-batch baseline: one
// (non-inlined) Encode call per element.
func BenchmarkBatchEncodeScalar(b *testing.B) {
	src := batchBenchSrc()
	dst := make([]float32, len(src))
	c := E4M3.Codec()
	b.SetBytes(int64(len(src) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, v := range src {
			dst[j] = c.dec[c.Encode(v)]
		}
	}
}
