// floatorder: kernel/codec float math must keep the bit-identity
// contract honest.
//
// The GEMM tier and the FP8 codec are proven byte-identical to their
// scalar oracles, and every future tier (AVX2/FMA, NEON) must pin to
// the same oracle. Three source patterns quietly break that:
//
//  1. math.FMA — a fused multiply-add rounds once where the oracle
//     rounds twice; its result is not reproducible by plain * and +.
//  2. x*y ± z written as one expression — the Go spec allows the
//     compiler to contract it into an FMA (and does, on arm64/ppc64),
//     so the "portable fallback" stops matching the amd64 SSE path.
//     An explicit conversion — acc += float32(x*y) — forces the
//     intermediate rounding and forbids contraction.
//  3. Multi-accumulator reductions — splitting one sum across several
//     accumulators combined after the loop reassociates the adds.
//     (Independent accumulators for independent outputs, as in the
//     4×8 register tile, are fine: they are never combined.)
//
// Float ==/!= comparisons between computed values are also reported:
// under reassociation or contraction the compared bits shift, so the
// branch is not portable. Comparisons against numeric literals
// (x == 0: exact-representability checks, a codec idiom) are allowed.

package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

func floatorderAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "floatorder",
		Doc:  "kernel/codec packages: no math.FMA, no contractible x*y±z, no float ==, no split accumulators",
		Run:  runFloatorder,
	}
}

func runFloatorder(pkgs []*Package) []Finding {
	var out []Finding
	for _, p := range pkgs {
		if !kernelOrCodecPackage(p) {
			continue
		}
		for _, f := range p.Files {
			fmaFile := fmaKernelFile(p.Fset.Position(f.Pos()).Filename)
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if fn := calleeFunc(p.Info, n); fn != nil && fn.Pkg() != nil &&
						fn.Pkg().Path() == "math" && fn.Name() == "FMA" && !fmaFile {
						out = append(out, Finding{Check: "floatorder", Pos: position(p, n),
							Message: "math.FMA rounds once where the scalar oracle rounds twice; not bit-reproducible by * and +"})
					}
				case *ast.BinaryExpr:
					out = append(out, checkFloatBinary(p, n)...)
				case *ast.AssignStmt:
					if n.Tok == token.ADD_ASSIGN || n.Tok == token.SUB_ASSIGN {
						for _, rhs := range n.Rhs {
							if mulOperand(p, rhs) {
								out = append(out, Finding{Check: "floatorder", Pos: position(p, n),
									Message: contractionMsg})
							}
						}
					}
				case *ast.FuncDecl:
					if n.Body != nil {
						out = append(out, checkSplitAccumulators(p, n)...)
					}
				}
				return true
			})
		}
	}
	return out
}

const contractionMsg = "x*y ± z in one expression invites FMA contraction (arm64/ppc64 fuse it); " +
	"round the product explicitly: float32(x*y)"

// fmaKernelFile reports whether the file declares itself part of an
// FMA kernel tier: a base name carrying an "fma" token (fma.go,
// gemm_fma_amd64.go). Such tiers pin to a fused oracle that rounds
// once per update, so math.FMA is exactly the sanctioned operation
// there — the contraction and split-accumulator checks still apply
// (reassociation breaks the fused oracle too). Everywhere else math.FMA
// stays a finding: a stray fused op in a two-rounding tier silently
// changes bits.
func fmaKernelFile(filename string) bool {
	base := strings.TrimSuffix(filepath.Base(filename), ".go")
	for _, tok := range strings.FieldsFunc(base, func(r rune) bool {
		return r == '_' || r == '.'
	}) {
		if tok == "fma" {
			return true
		}
	}
	return false
}

// checkFloatBinary reports contractible x*y ± z shapes and float
// equality comparisons.
func checkFloatBinary(p *Package, b *ast.BinaryExpr) []Finding {
	var out []Finding
	switch b.Op {
	case token.ADD, token.SUB:
		if isFloat(p.Info.TypeOf(b)) && (mulOperand(p, b.X) || mulOperand(p, b.Y)) {
			out = append(out, Finding{Check: "floatorder", Pos: position(p, b), Message: contractionMsg})
		}
	case token.EQL, token.NEQ:
		if isFloat(p.Info.TypeOf(b.X)) && isFloat(p.Info.TypeOf(b.Y)) &&
			!isNumericLiteral(p, b.X) && !isNumericLiteral(p, b.Y) {
			out = append(out, Finding{Check: "floatorder", Pos: position(p, b),
				Message: fmt.Sprintf("float %s comparison between computed values; compare bit patterns (math.Float32bits) or restructure", b.Op)})
		}
	}
	return out
}

// mulOperand reports whether e is a bare float multiplication — the
// shape eligible for contraction when it feeds + or - directly. An
// explicit conversion (float32(x*y)) breaks eligibility, which is
// exactly the sanctioned fix.
func mulOperand(p *Package, e ast.Expr) bool {
	mul, ok := unparen(e).(*ast.BinaryExpr)
	return ok && mul.Op == token.MUL && isFloat(p.Info.TypeOf(mul))
}

// isNumericLiteral reports whether the expression is a compile-time
// numeric constant (0, 1.5, a named const …).
func isNumericLiteral(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[unparen(e)]
	return ok && tv.Value != nil
}

// checkSplitAccumulators flags loops that accumulate one reduction
// into several float variables and then combine them after the loop —
// the 2/4-way unrolling that reassociates a sum.
func checkSplitAccumulators(p *Package, fn *ast.FuncDecl) []Finding {
	var out []Finding
	// Walk each block; for every for-loop statement in it, collect the
	// float accumulators (+= targets declared outside the loop) and
	// scan the *rest of the block* for an expression adding two of
	// them together.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, stmt := range block.List {
			loop, ok := stmt.(*ast.ForStmt)
			if !ok {
				continue
			}
			accs := loopFloatAccumulators(p, loop)
			if len(accs) < 2 {
				continue
			}
			for _, later := range block.List[i+1:] {
				if comb := findCombined(p, later, accs); comb != nil {
					out = append(out, Finding{Check: "floatorder", Pos: position(p, comb),
						Message: "combining loop accumulators reassociates the reduction; keep a single accumulator in ascending-k order"})
					break
				}
			}
		}
		return true
	})
	return out
}

// loopFloatAccumulators returns the objects of float variables
// declared outside the loop that receive += (or x = x + …) inside it.
func loopFloatAccumulators(p *Package, loop *ast.ForStmt) map[types.Object]bool {
	accs := map[types.Object]bool{}
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			obj := p.Info.ObjectOf(id)
			if obj == nil || !isFloat(obj.Type()) || obj.Pos() >= loop.Pos() {
				continue
			}
			switch {
			case as.Tok == token.ADD_ASSIGN:
				accs[obj] = true
			case as.Tok == token.ASSIGN && i < len(as.Rhs):
				if add, ok := unparen(as.Rhs[i]).(*ast.BinaryExpr); ok && add.Op == token.ADD {
					if exprUsesObj(p, add, obj) {
						accs[obj] = true
					}
				}
			}
		}
		return true
	})
	return accs
}

// findCombined returns the first +/- expression under stmt whose two
// operand trees each mention a distinct accumulator.
func findCombined(p *Package, stmt ast.Stmt, accs map[types.Object]bool) ast.Expr {
	var found ast.Expr
	ast.Inspect(stmt, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		b, ok := n.(*ast.BinaryExpr)
		if !ok || (b.Op != token.ADD && b.Op != token.SUB) {
			return true
		}
		lx := accumulatorsIn(p, b.X, accs)
		ly := accumulatorsIn(p, b.Y, accs)
		for o := range ly {
			if len(lx) > 0 && !lx[o] {
				found = b
				return false
			}
		}
		return true
	})
	return found
}

// accumulatorsIn returns which accumulators appear in the expression.
func accumulatorsIn(p *Package, e ast.Expr, accs map[types.Object]bool) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := p.Info.ObjectOf(id); obj != nil && accs[obj] {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// exprUsesObj reports whether the expression mentions the object.
func exprUsesObj(p *Package, e ast.Expr, obj types.Object) bool {
	used := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Info.ObjectOf(id) == obj {
			used = true
		}
		return !used
	})
	return used
}
