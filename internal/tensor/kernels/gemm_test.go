package kernels

import (
	"math"
	"runtime"
	"testing"

	"fp8quant/internal/tensor"
)

// maddFunc is one scalar multiply-accumulate step: the per-variant
// oracle differs only here.
type maddFunc func(acc, x, b float32) float32

// maddFor returns the scalar multiply-accumulate the variant is pinned
// to: two roundings (explicit product rounding, then the add) for the
// generic and sse tiers, the exactly-rounded fused multiply-add for
// the avx2 tier.
func maddFor(v Variant) maddFunc { return RefMadd(v) }

// gemmTRef is the scalar oracle for GemmT: the exact naive loop the
// kernels must match bit for bit (single accumulator, ascending k,
// the variant's multiply-accumulate).
func gemmTRef(y, x, w []float32, rows, in, out int, opt Opt, madd maddFunc) {
	for r := 0; r < rows; r++ {
		for o := 0; o < out; o++ {
			var acc float32
			if opt.Prologue && opt.Bias != nil {
				acc = opt.Bias[o]
			}
			for k := 0; k < in; k++ {
				acc = madd(acc, x[r*in+k], w[o*in+k])
			}
			if !opt.Prologue && opt.Bias != nil {
				acc += opt.Bias[o]
			}
			y[r*out+o] = acc
		}
	}
}

// gemmNRef is the scalar oracle for GemmN (b row-major [in, out]).
func gemmNRef(y, x, b []float32, rows, in, out int, opt Opt, madd maddFunc) {
	for r := 0; r < rows; r++ {
		for o := 0; o < out; o++ {
			var acc float32
			if opt.Prologue && opt.Bias != nil {
				acc = opt.Bias[o]
			}
			for k := 0; k < in; k++ {
				acc = madd(acc, x[r*in+k], b[k*out+o])
			}
			if !opt.Prologue && opt.Bias != nil {
				acc += opt.Bias[o]
			}
			y[r*out+o] = acc
		}
	}
}

// fillMixed populates dst with values spanning several binades plus
// the occasional denormal-scale value so reassociated sums would not
// survive the bit comparison.
func fillMixed(dst []float32, rng *tensor.RNG) {
	for i := range dst {
		v := float32(rng.Norm())
		switch i % 7 {
		case 0:
			v *= 1e4
		case 3:
			v *= 1e-6
		case 5:
			v *= 1e-38
		}
		dst[i] = v
	}
}

func bitsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

func firstDiff(t *testing.T, a, b []float32) {
	t.Helper()
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			t.Fatalf("first bit difference at %d: %x vs %x (%g vs %g)",
				i, math.Float32bits(a[i]), math.Float32bits(b[i]), a[i], b[i])
		}
	}
}

// gemmShapes exercises odd rows/cols, tile remainders in both
// dimensions (including every rows%8 remainder the avx2 tier blocks
// by), tiny and degenerate extents.
var gemmShapes = []struct{ rows, in, out int }{
	{1, 1, 1},
	{1, 7, 1},
	{3, 5, 2},
	{4, 16, 4},
	{5, 17, 9},
	{6, 10, 24},
	{7, 64, 31},
	{8, 33, 12},
	{13, 128, 65},
	{16, 256, 256},
	{2, 0, 3}, // empty reduction
	{31, 3, 130},
}

func TestGemmTMatchesOracleBitExact(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v Variant) {
		madd := maddFor(v)
		rng := tensor.NewRNG(0x6E77)
		for _, s := range gemmShapes {
			x := make([]float32, s.rows*s.in)
			w := make([]float32, s.out*s.in)
			bias := make([]float32, s.out)
			fillMixed(x, rng)
			fillMixed(w, rng)
			fillMixed(bias, rng)
			for _, opt := range []Opt{
				{},
				{Bias: bias},
				{Bias: bias, Prologue: true},
				{Serial: true, Bias: bias},
			} {
				got := make([]float32, s.rows*s.out)
				want := make([]float32, s.rows*s.out)
				GemmT(got, x, w, s.rows, s.in, s.out, opt)
				gemmTRef(want, x, w, s.rows, s.in, s.out, opt, madd)
				if !bitsEqual(got, want) {
					t.Errorf("GemmT %dx%dx%d opt=%+v diverges from oracle", s.rows, s.in, s.out, opt)
					firstDiff(t, got, want)
				}
			}
		}
	})
}

func TestGemmNMatchesOracleBitExact(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v Variant) {
		madd := maddFor(v)
		rng := tensor.NewRNG(0x6E78)
		for _, s := range gemmShapes {
			x := make([]float32, s.rows*s.in)
			b := make([]float32, s.in*s.out)
			bias := make([]float32, s.out)
			fillMixed(x, rng)
			fillMixed(b, rng)
			fillMixed(bias, rng)
			for _, opt := range []Opt{
				{},
				{Bias: bias},
				{Bias: bias, Prologue: true},
				{Serial: true},
			} {
				got := make([]float32, s.rows*s.out)
				want := make([]float32, s.rows*s.out)
				GemmN(got, x, b, s.rows, s.in, s.out, opt)
				gemmNRef(want, x, b, s.rows, s.in, s.out, opt, madd)
				if !bitsEqual(got, want) {
					t.Errorf("GemmN %dx%dx%d opt=%+v diverges from oracle", s.rows, s.in, s.out, opt)
					firstDiff(t, got, want)
				}
			}
		}
	})
}

// TestGemmSpecialValues pins the kernels to the oracle when the inputs
// contain Inf and NaN (quantized weights overflow to Inf in IEEE
// formats), including around the zero-padded panel tail.
func TestGemmSpecialValues(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v Variant) {
		rows, in, out := 9, 9, 6 // out%nr != 0 exercises the padded lanes
		rng := tensor.NewRNG(0x1F)
		x := make([]float32, rows*in)
		w := make([]float32, out*in)
		fillMixed(x, rng)
		fillMixed(w, rng)
		inf := float32(math.Inf(1))
		nan := float32(math.NaN())
		w[0], w[in+3] = inf, -inf
		w[(out-1)*in+2] = nan
		x[2*in+1] = inf
		x[4*in+8] = nan
		got := make([]float32, rows*out)
		want := make([]float32, rows*out)
		GemmT(got, x, w, rows, in, out, Opt{})
		gemmTRef(want, x, w, rows, in, out, Opt{}, maddFor(v))
		if !bitsEqual(got, want) {
			firstDiff(t, got, want)
		}
	})
}

// TestGemmDeterministicAcrossWorkers proves any worker count (and so
// any chunking of the row range) yields identical bytes, for every
// variant.
func TestGemmDeterministicAcrossWorkers(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v Variant) {
		rows, in, out := 37, 96, 53
		rng := tensor.NewRNG(0xD0)
		x := make([]float32, rows*in)
		w := make([]float32, out*in)
		fillMixed(x, rng)
		fillMixed(w, rng)

		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
		runtime.GOMAXPROCS(1)
		ref := make([]float32, rows*out)
		GemmT(ref, x, w, rows, in, out, Opt{})

		for _, procs := range []int{2, 8} {
			runtime.GOMAXPROCS(procs)
			got := make([]float32, rows*out)
			GemmT(got, x, w, rows, in, out, Opt{})
			if !bitsEqual(got, ref) {
				t.Errorf("GOMAXPROCS=%d diverges from serial result", procs)
				firstDiff(t, got, ref)
			}
		}
	})
}

// TestGemmPackedMatchesGemmT proves the pack-once path (PackT +
// GemmPacked, the convolution batch pattern) produces the same bytes
// as the self-packing GemmT call.
func TestGemmPackedMatchesGemmT(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v Variant) {
		rng := tensor.NewRNG(0x9AC)
		rows, in, out := 11, 45, 13
		x := make([]float32, rows*in)
		w := make([]float32, out*in)
		bias := make([]float32, out)
		fillMixed(x, rng)
		fillMixed(w, rng)
		fillMixed(bias, rng)
		opt := Opt{Bias: bias, Prologue: true}
		want := make([]float32, rows*out)
		GemmT(want, x, w, rows, in, out, opt)
		panel := PackT(w, in, out)
		defer PutScratch(panel)
		for i := 0; i < 2; i++ { // reuse the panel like a batch loop does
			got := make([]float32, rows*out)
			GemmPacked(got, x, *panel, rows, in, out, opt)
			if !bitsEqual(got, want) {
				t.Errorf("GemmPacked pass %d diverges from GemmT", i)
				firstDiff(t, got, want)
			}
		}
	})
}

// TestNoFusedPinsTwoRounding proves Opt.NoFused yields the two-rounding
// oracle's bytes under every variant — including a fused active tier,
// where it must fall back to the best non-fused tier. This is the
// contract convolution relies on to keep its interior-GEMM and direct
// border paths bit-identical regardless of dispatch.
func TestNoFusedPinsTwoRounding(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v Variant) {
		madd := RefMadd(VariantGeneric) // two roundings, always
		rng := tensor.NewRNG(0x2F0)
		for _, s := range gemmShapes {
			x := make([]float32, s.rows*s.in)
			w := make([]float32, s.out*s.in)
			bias := make([]float32, s.out)
			fillMixed(x, rng)
			fillMixed(w, rng)
			fillMixed(bias, rng)
			opt := Opt{Bias: bias, Prologue: true, NoFused: true}
			got := make([]float32, s.rows*s.out)
			want := make([]float32, s.rows*s.out)
			GemmT(got, x, w, s.rows, s.in, s.out, opt)
			gemmTRef(want, x, w, s.rows, s.in, s.out, opt, madd)
			if !bitsEqual(got, want) {
				t.Errorf("NoFused GemmT %dx%dx%d diverges from two-rounding oracle", s.rows, s.in, s.out)
				firstDiff(t, got, want)
			}
		}
	})
}

func TestScratchPoolReuse(t *testing.T) {
	p := GetScratch(128)
	if len(*p) != 128 {
		t.Fatalf("GetScratch(128) returned len %d", len(*p))
	}
	PutScratch(p)
	q := GetScratch(64)
	if len(*q) != 64 {
		t.Fatalf("GetScratch(64) returned len %d", len(*q))
	}
	PutScratch(q)
}
