GO ?= go

# Minimum combined statement coverage (%) for internal/harness +
# internal/resultstore + internal/tensor/kernels + internal/analyzers +
# internal/coord + internal/faultline. 71.2% was measured when the
# sharding subsystem landed (PR 4); the kernels package joined the
# floor in PR 5, the fp8vet analyzer suite in PR 6, the sweep
# coordinator in PR 8, the fault-injection layer in PR 10, none
# lowering it. cover-check fails CI if the combined figure regresses
# below this.
COVER_FLOOR ?= 71.0

.PHONY: all build vet vet-contracts lint fmt fmt-check test bench bench-json bench-gate bench-kernels bench-trend smoke shard-smoke serve-smoke coord-smoke chaos-smoke fuzz cover-check ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The determinism-contract analyzer suite (cmd/fp8vet): mapiter,
# nondeterm, floatorder, atomicwrite, cellpurity. A hard CI gate —
# any unsuppressed finding fails the build.
vet-contracts:
	$(GO) run ./cmd/fp8vet ./...

# Umbrella for every static check.
lint: vet fmt-check vet-contracts

fmt:
	gofmt -w .

# Fails if any file needs reformatting.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# The kernel-layer micro-benchmarks (blocked GEMM vs the naive loop,
# im2col conv vs the direct loop, 4-lane batch encode vs per-element
# calls, planned vs unplanned module forwards — the planned ones must
# hold 0 allocs/op under bench-gate). One fast iteration set; used as
# the CI smoke step.
KERNEL_BENCH = BenchmarkMatmulT|BenchmarkMatmulTNaive|BenchmarkConv2dIm2col|BenchmarkConv2dDirect|BenchmarkBatchMatMul|BenchmarkBatchEncode|BenchmarkForwardUnplanned|BenchmarkForwardPlanned
bench-kernels:
	$(GO) test -run xxx -bench '$(KERNEL_BENCH)' -benchtime 1x \
		./internal/tensor/kernels ./internal/nn ./internal/fp8

# Appends one dated entry (ns/op, MB/s, B/op, allocs/op per kernel
# micro-benchmark) to BENCH_kernels.json, so the perf trajectory is
# tracked across PRs as an in-repo diffable history. BENCHTIME trades
# precision for runtime (the checked-in entries use the default).
BENCHTIME ?= 300ms
bench-json:
	@set -e; out=$$(mktemp); trap 'rm -f "$$out"' EXIT; \
	$(GO) test -run xxx -bench '$(KERNEL_BENCH)' -benchtime $(BENCHTIME) -benchmem \
		./internal/tensor/kernels ./internal/nn ./internal/fp8 > "$$out" || \
		{ cat "$$out"; echo "bench-json: benchmark run failed"; exit 1; }; \
	$(GO) run ./cmd/benchgate -append -benchtime $(BENCHTIME) -json BENCH_kernels.json "$$out"

# CI gate on the deterministic benchmark counters: allocs/op and
# bytes/op against the latest recorded BENCH_kernels.json entry.
# Wall-clock is deliberately not gated — it flaps on shared VMs.
# 100x iterations amortize one-time pool warm-up allocations while
# staying fast enough for CI.
BENCH_GATE_TIME ?= 100x
bench-gate:
	@set -e; out=$$(mktemp); trap 'rm -f "$$out"' EXIT; \
	$(GO) test -run xxx -bench '$(KERNEL_BENCH)' -benchtime $(BENCH_GATE_TIME) -benchmem \
		./internal/tensor/kernels ./internal/nn ./internal/fp8 > "$$out" || \
		{ cat "$$out"; echo "bench-gate: benchmark run failed"; exit 1; }; \
	$(GO) run ./cmd/benchgate -gate -json BENCH_kernels.json "$$out"

# Markdown/ASCII trend report over the recorded BENCH_kernels.json
# entries: first vs latest ns/op per benchmark with a sparkline.
bench-trend:
	$(GO) run ./cmd/benchgate -trend -json BENCH_kernels.json

# Warm-cache smoke: run table3 twice against a fresh store; the second
# run must report 0 misses and print a byte-identical report (the
# timing/cache footer lines, which start with "(", are excluded).
smoke:
	@set -e; d=$$(mktemp -d); trap 'rm -rf "$$d"' EXIT; \
	$(GO) run ./cmd/fp8bench -exp table3 -cache-dir "$$d/store" > "$$d/run1.txt"; \
	$(GO) run ./cmd/fp8bench -exp table3 -cache-dir "$$d/store" > "$$d/run2.txt"; \
	grep -q ", 0 misses," "$$d/run2.txt" || { \
		echo "smoke: warm run had misses:"; grep "result store" "$$d/run2.txt"; exit 1; }; \
	grep -v "^(" "$$d/run1.txt" > "$$d/r1"; grep -v "^(" "$$d/run2.txt" > "$$d/r2"; \
	cmp "$$d/r1" "$$d/r2" || { echo "smoke: warm report differs from cold"; exit 1; }; \
	echo "smoke: warm run identical, 0 misses"

# Distributed-sweep smoke: compute table3 as 3 disjoint shards into 3
# separate stores, merge them, and check (a) -coverage reports the
# merged store complete, (b) a warm full run against it has 0 misses,
# and (c) its report is byte-identical to an unsharded workers=1 run
# (timing/cache footer lines, which start with "(", are excluded).
shard-smoke:
	@set -e; d=$$(mktemp -d); trap 'rm -rf "$$d"' EXIT; \
	$(GO) build -o "$$d/fp8bench" ./cmd/fp8bench; \
	for i in 1 2 3; do \
		"$$d/fp8bench" -exp table3 -shard $$i/3 -cache-dir "$$d/shard$$i" > /dev/null; \
	done; \
	"$$d/fp8bench" -merge "$$d/shard1,$$d/shard2,$$d/shard3" -cache-dir "$$d/merged"; \
	"$$d/fp8bench" -exp table3 -coverage -cache-dir "$$d/merged" | tee "$$d/cov.txt"; \
	grep -q "all experiment grids complete" "$$d/cov.txt" || { \
		echo "shard-smoke: merged store incomplete"; exit 1; }; \
	"$$d/fp8bench" -exp table3 -workers 1 -no-cache > "$$d/ref.txt"; \
	"$$d/fp8bench" -exp table3 -workers 1 -cache-dir "$$d/merged" > "$$d/warm.txt"; \
	grep -q ", 0 misses," "$$d/warm.txt" || { \
		echo "shard-smoke: warm run over merged store had misses:"; \
		grep "result store" "$$d/warm.txt"; exit 1; }; \
	grep -v "^(" "$$d/ref.txt" > "$$d/r1"; grep -v "^(" "$$d/warm.txt" > "$$d/r2"; \
	cmp "$$d/r1" "$$d/r2" || { \
		echo "shard-smoke: merged report differs from unsharded run"; exit 1; }; \
	echo "shard-smoke: 3 shards merged, coverage complete, report identical, 0 misses"

# Coordinated-sweep smoke: fp8coord + pull-based fp8bench workers
# complete table3 over HTTP into a fresh store. One worker is killed
# mid-sweep (SIGKILL, no drain) to prove a lost lease costs one
# -lease-ttl timeout, not the sweep. Afterwards -coverage must report
# the store complete, a warm run against it must have 0 misses, and
# its report must be byte-identical to an uncoordinated -workers 1 run
# (timing/cache footer lines, which start with "(", are excluded).
coord-smoke:
	@set -e; d=$$(mktemp -d); trap 'rm -rf "$$d"' EXIT; \
	$(GO) build -o "$$d/fp8bench" ./cmd/fp8bench; \
	$(GO) build -o "$$d/fp8coord" ./cmd/fp8coord; \
	"$$d/fp8coord" -exp table3 -cache-dir "$$d/store" -addr 127.0.0.1:0 \
		-addr-file "$$d/addr" -lease-ttl 10s -once -linger 5s 2> "$$d/coord.log" & \
	coord=$$!; \
	for i in $$(seq 50); do [ -s "$$d/addr" ] && break; sleep 0.1; done; \
	[ -s "$$d/addr" ] || { echo "coord-smoke: no address published"; cat "$$d/coord.log"; exit 1; }; \
	url=$$(cat "$$d/addr"); \
	"$$d/fp8bench" -worker "$$url" -worker-name doomed -no-cache 2> /dev/null & doomed=$$!; \
	sleep 1; kill -9 $$doomed 2> /dev/null || true; \
	"$$d/fp8bench" -worker "$$url" -worker-name w1 -no-cache 2> "$$d/w1.log" & w1=$$!; \
	"$$d/fp8bench" -worker "$$url" -worker-name w2 -no-cache 2> "$$d/w2.log" & w2=$$!; \
	wait $$w1 || { echo "coord-smoke: worker 1 failed"; cat "$$d/w1.log"; exit 1; }; \
	wait $$w2 || { echo "coord-smoke: worker 2 failed"; cat "$$d/w2.log"; exit 1; }; \
	wait $$coord || { echo "coord-smoke: coordinator failed"; cat "$$d/coord.log"; exit 1; }; \
	"$$d/fp8bench" -exp table3 -coverage -cache-dir "$$d/store" | tee "$$d/cov.txt"; \
	grep -q "all experiment grids complete" "$$d/cov.txt" || { \
		echo "coord-smoke: coordinated store incomplete"; cat "$$d/coord.log"; exit 1; }; \
	"$$d/fp8bench" -exp table3 -workers 1 -no-cache > "$$d/ref.txt"; \
	"$$d/fp8bench" -exp table3 -workers 1 -cache-dir "$$d/store" > "$$d/warm.txt"; \
	grep -q ", 0 misses," "$$d/warm.txt" || { \
		echo "coord-smoke: warm run over coordinated store had misses:"; \
		grep "result store" "$$d/warm.txt"; exit 1; }; \
	grep -v "^(" "$$d/ref.txt" > "$$d/r1"; grep -v "^(" "$$d/warm.txt" > "$$d/r2"; \
	cmp "$$d/r1" "$$d/r2" || { \
		echo "coord-smoke: coordinated report differs from local run"; exit 1; }; \
	echo "coord-smoke: sweep complete, killed worker survived, report identical, 0 misses"

# Chaos smoke: the fault-injection layer (internal/faultline) batters a
# coordinated table3 sweep with a seeded plan spanning four fault kinds
# across three layers — silent store corruption and a failed rename
# (store), HTTP 500 bursts and dropped responses (coordinator), crash
# and transport errors (workers) — then proves the recovery story:
#  1. the sweep still completes (exit-3 injected crash tolerated);
#  2. fp8fsck exits nonzero on the damaged store, 0 after -repair;
#  3. -coverage exits nonzero on the repaired (now-incomplete) store;
#  4. a clean second round recomputes exactly the quarantined cells;
#  5. the healed store's warm report is byte-identical to an
#     undisturbed -workers 1 run with 0 misses;
#  6. -warm-from fills a cold store from the coordinator's /v1/cell
#     endpoint to full coverage.
chaos-smoke:
	@set -e; d=$$(mktemp -d); trap 'rm -rf "$$d"' EXIT; \
	$(GO) build -o "$$d/fp8bench" ./cmd/fp8bench; \
	$(GO) build -o "$$d/fp8coord" ./cmd/fp8coord; \
	$(GO) build -o "$$d/fp8fsck" ./cmd/fp8fsck; \
	"$$d/fp8bench" -exp table3 -workers 1 -no-cache > "$$d/ref.txt"; \
	FP8_FAULTS="seed=7;resultstore.save.temp=corrupt:0.5@5x2;resultstore.save.rename=err@11x1;coord.server.push=http500@3x4;coord.server.lease=drop@4x3" \
	"$$d/fp8coord" -exp table3 -cache-dir "$$d/store" -addr 127.0.0.1:0 \
		-addr-file "$$d/addr" -lease-ttl 10s -once -linger 5s 2> "$$d/coord1.log" & coord=$$!; \
	for i in $$(seq 50); do [ -s "$$d/addr" ] && break; sleep 0.1; done; \
	[ -s "$$d/addr" ] || { echo "chaos-smoke: no address published"; cat "$$d/coord1.log"; exit 1; }; \
	url=$$(cat "$$d/addr"); \
	FP8_FAULTS="seed=13;coord.client.push=crash" \
		"$$d/fp8bench" -worker "$$url" -worker-name doomed -no-cache 2> "$$d/doomed.log" & doomed=$$!; \
	FP8_FAULTS="seed=11;coord.client.push=err%0.3x3" \
		"$$d/fp8bench" -worker "$$url" -worker-name w1 -no-cache 2> "$$d/w1.log" & w1=$$!; \
	set +e; wait $$doomed; dstatus=$$?; set -e; \
	[ $$dstatus -eq 3 ] || { echo "chaos-smoke: doomed worker exited $$dstatus, want injected-crash exit 3"; \
		cat "$$d/doomed.log"; exit 1; }; \
	wait $$w1 || { echo "chaos-smoke: surviving worker failed"; cat "$$d/w1.log"; exit 1; }; \
	wait $$coord || { echo "chaos-smoke: chaos-round coordinator failed"; cat "$$d/coord1.log"; exit 1; }; \
	if "$$d/fp8fsck" "$$d/store" > "$$d/fsck1.txt"; then \
		echo "chaos-smoke: fsck exit 0 on the battered store (no damage injected?)"; \
		cat "$$d/fsck1.txt"; exit 1; fi; \
	grep -q "DAMAGE" "$$d/fsck1.txt" || { echo "chaos-smoke: no DAMAGE findings"; cat "$$d/fsck1.txt"; exit 1; }; \
	"$$d/fp8fsck" -repair "$$d/store" > "$$d/fsck2.txt" || { \
		echo "chaos-smoke: fsck -repair failed"; cat "$$d/fsck2.txt"; exit 1; }; \
	if "$$d/fp8bench" -exp table3 -coverage -cache-dir "$$d/store" > "$$d/cov1.txt"; then \
		echo "chaos-smoke: -coverage exit 0 on the quarantine-gapped store"; cat "$$d/cov1.txt"; exit 1; fi; \
	"$$d/fp8coord" -exp table3 -cache-dir "$$d/store" -addr 127.0.0.1:0 \
		-addr-file "$$d/addr2" -lease-ttl 10s -once -linger 5s 2> "$$d/coord2.log" & coord2=$$!; \
	for i in $$(seq 50); do [ -s "$$d/addr2" ] && break; sleep 0.1; done; \
	url2=$$(cat "$$d/addr2"); \
	"$$d/fp8bench" -worker "$$url2" -worker-name healer -no-cache 2> "$$d/healer.log" || { \
		echo "chaos-smoke: heal worker failed"; cat "$$d/healer.log"; exit 1; }; \
	wait $$coord2 || { echo "chaos-smoke: heal-round coordinator failed"; cat "$$d/coord2.log"; exit 1; }; \
	"$$d/fp8fsck" "$$d/store" > /dev/null || { echo "chaos-smoke: healed store still unhealthy"; exit 1; }; \
	"$$d/fp8bench" -exp table3 -coverage -cache-dir "$$d/store" > "$$d/cov2.txt" || { \
		echo "chaos-smoke: healed store incomplete"; cat "$$d/cov2.txt"; exit 1; }; \
	"$$d/fp8bench" -exp table3 -workers 1 -cache-dir "$$d/store" > "$$d/warm.txt"; \
	grep -q ", 0 misses," "$$d/warm.txt" || { \
		echo "chaos-smoke: warm run over healed store had misses:"; \
		grep "result store" "$$d/warm.txt"; exit 1; }; \
	grep -v "^(" "$$d/ref.txt" > "$$d/r1"; grep -v "^(" "$$d/warm.txt" > "$$d/r2"; \
	cmp "$$d/r1" "$$d/r2" || { \
		echo "chaos-smoke: healed report differs from undisturbed run"; exit 1; }; \
	"$$d/fp8coord" -exp table3 -cache-dir "$$d/store" -addr 127.0.0.1:0 \
		-addr-file "$$d/addr3" -once -linger 15s 2> "$$d/coord3.log" & coord3=$$!; \
	for i in $$(seq 50); do [ -s "$$d/addr3" ] && break; sleep 0.1; done; \
	url3=$$(cat "$$d/addr3"); \
	"$$d/fp8bench" -warm-from "$$url3" -exp table3 -cache-dir "$$d/coldstore" > "$$d/warmfrom.txt" || { \
		echo "chaos-smoke: -warm-from failed"; cat "$$d/warmfrom.txt"; exit 1; }; \
	wait $$coord3 || { echo "chaos-smoke: warm-source coordinator failed"; cat "$$d/coord3.log"; exit 1; }; \
	"$$d/fp8bench" -exp table3 -coverage -cache-dir "$$d/coldstore" > /dev/null || { \
		echo "chaos-smoke: warm-from store incomplete"; exit 1; }; \
	echo "chaos-smoke: sweep survived 4 fault kinds, fsck repaired, report identical, warm-from complete"

# Serving smoke: fp8serve on a small quantized model at two worker
# counts. The -check audit bit-compares every served row (planned,
# batched) against an unplanned single-sample forward, and the command
# exits nonzero on any mismatch or zero throughput.
serve-smoke:
	$(GO) run ./cmd/fp8serve -model cifar_resnet20 -recipe e4m3 \
		-workers 1,2 -requests 64 -batch 4

# Short bounded pass over each native fuzz target (the codec oracle
# equivalence); run with a larger FUZZTIME locally to dig deeper.
FUZZTIME ?= 15s
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzEncodeRoundTrip -fuzztime=$(FUZZTIME) ./internal/fp8
	$(GO) test -run=NONE -fuzz=FuzzQuantizeScaledSlice -fuzztime=$(FUZZTIME) ./internal/fp8

# Full-suite coverage profile + combined floor check for the
# floor-governed packages (harness, resultstore, kernels, analyzers,
# coord).
cover-check:
	$(GO) test -coverprofile=coverage.out ./...
	@awk -v floor=$(COVER_FLOOR) -F'[ ]' ' \
		NR > 1 && $$1 ~ /^fp8quant\/internal\/(harness|resultstore|tensor\/kernels|analyzers|coord|faultline)\//{ \
			total += $$2; if ($$3 > 0) covered += $$2 } \
		END { \
			if (total == 0) { print "cover-check: no statements matched"; exit 1 } \
			pct = 100 * covered / total; \
			printf "harness+resultstore+kernels+analyzers+coord+faultline combined coverage: %.1f%% (floor %.1f%%)\n", pct, floor; \
			exit (pct < floor) }' coverage.out

ci: build lint test serve-smoke coord-smoke chaos-smoke
