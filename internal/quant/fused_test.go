package quant

import (
	"math"
	"testing"

	"fp8quant/internal/nn"
	"fp8quant/internal/tensor"
)

// fusedRecipes is the activation-quantization matrix the fused-packing
// path must reproduce bit for bit: every approach×dtype combination
// ActQuantFused supports (SmoothQuant is excluded by construction —
// convert() leaves InputFused nil there).
var fusedRecipes = []struct {
	name      string
	r         Recipe
	threshold float64
	min, max  float64
}{
	{"static-e4m3", Recipe{Act: E4M3, Approach: Static}, 2.5, -2.5, 2.5},
	{"static-e5m2", Recipe{Act: E5M2, Approach: Static}, 3.75, -3.75, 3.75},
	{"dynamic-e4m3", Recipe{Act: E4M3, Approach: Dynamic}, 0, 0, 0},
	{"direct-e5m2", Recipe{Act: E5M2, Approach: Direct}, 0, 0, 0},
	{"static-int8", Recipe{Act: INT8, Approach: Static}, 0, -3, 3},
	{"dynamic-int8", Recipe{Act: INT8, Approach: Dynamic}, 0, 0, 0},
}

// fillFused populates dst with multi-binade data (plus exact zeros) so
// a fused path that bound its dynamic scale over the wrong span, or
// reassociated anything, cannot survive the bit comparison.
func fillFused(dst []float32, rng *tensor.RNG) {
	for i := range dst {
		v := float32(rng.Norm())
		switch i % 5 {
		case 0:
			v *= 100
		case 3:
			v *= 1e-4
		case 4:
			v = 0
		}
		dst[i] = v
	}
}

func bitsEq(t *testing.T, tag string, got, want []float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", tag, len(got), len(want))
	}
	for i := range got {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s: first bit difference at %d: %x vs %x (%g vs %g)",
				tag, i, math.Float32bits(got[i]), math.Float32bits(want[i]), got[i], want[i])
		}
	}
}

// TestFusedQuantMatchesUnfused proves the quantize-during-pack route is
// invisible: a MatMulOp/BatchMatMulOp whose b-operand QState carries
// both Input and InputFused produces byte-identical outputs to one
// carrying only Input (the materialize-a-quantized-copy path), for
// every recipe, on both the heap and arena forward paths, including
// batched operands (where a dynamic scale must span the whole tensor,
// not one batch element).
func TestFusedQuantMatchesUnfused(t *testing.T) {
	for _, tc := range fusedRecipes {
		t.Run(tc.name, func(t *testing.T) {
			fn := ActQuantFunc(tc.r, tc.threshold, tc.min, tc.max)
			factory := ActQuantFused(tc.r, tc.threshold, tc.min, tc.max)
			if fn == nil || factory == nil {
				t.Fatal("recipe produced nil quant funcs")
			}

			rng := tensor.NewRNG(0xF5ED)
			batch, M, K, N := 3, 7, 33, 18
			a := tensor.New(batch, M, K)
			fillFused(a.Data, rng)

			for _, transB := range []bool{false, true} {
				b := tensor.New(batch, K, N)
				if transB {
					b = tensor.New(batch, N, K)
				}
				fillFused(b.Data, rng)

				unfused := &nn.BatchMatMulOp{TransposeB: transB}
				unfused.QB.Input = fn
				fused := &nn.BatchMatMulOp{TransposeB: transB}
				fused.QB.Input = fn
				fused.QB.InputFused = factory

				want := unfused.Apply(a, b)
				got := fused.Apply(a, b)
				bitsEq(t, tc.name+"/heap", got.Data, want.Data)

				ar := &tensor.Arena{}
				gotAr := fused.ApplyArena(ar, a, b)
				bitsEq(t, tc.name+"/arena", gotAr.Data, want.Data)
				ar.Reset()
			}

			// MatMulOp drives the same route; cover its entry point once
			// per recipe (natural layout).
			b := tensor.New(batch, K, N)
			fillFused(b.Data, rng)
			unfused := &nn.MatMulOp{}
			unfused.QB.Input = fn
			fusedOp := &nn.MatMulOp{}
			fusedOp.QB.Input = fn
			fusedOp.QB.InputFused = factory
			bitsEq(t, tc.name+"/matmul", fusedOp.Apply(a, b).Data, unfused.Apply(a, b).Data)
		})
	}
}

// TestQuantizeInstallsFusedHook runs the full Quantize flow over a tiny
// model with extended ops and checks the b-operand input sites got the
// fused factory — and that SmoothQuant leaves it nil (position-
// dependent divisors are not chunkable).
func TestQuantizeInstallsFusedHook(t *testing.T) {
	mm := &nn.MatMulOp{}
	// The hooks are installed by target conversion; drive it directly.
	r := Recipe{Act: E4M3, Wgt: FP32, Approach: Dynamic, ExtendedOps: true}
	tg := &target{path: "mm#b", kind: mm.Kind(), qs: &mm.QB}
	h := &Handle{Report: Report{QuantizedOps: map[string]int{}}}
	tg.convert(r, h)
	if mm.QB.Input == nil || mm.QB.InputFused == nil {
		t.Fatal("convert did not install both Input and InputFused on an input site")
	}
	mm.QB.Reset()
	if mm.QB.InputFused != nil {
		t.Fatal("Reset did not clear InputFused")
	}

	sm := &target{path: "l", kind: "Linear", qs: &mm.QB, smooth: []float64{1, 1}}
	sm.convert(r, h)
	if mm.QB.Input == nil {
		t.Fatal("smoothed site lost its Input hook")
	}
	if mm.QB.InputFused != nil {
		t.Fatal("smoothed site must not get a fused factory")
	}
}
