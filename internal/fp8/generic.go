package fp8

import "fmt"

// New constructs an arbitrary EeMm 8-bit floating-point format with the
// conventional bias 2^(e-1)-1. The paper's three formats are E5M2 (IEEE
// encoding) and E4M3/E3M4 (extended encoding); related work (Kuzmin et
// al. 2022; Noune et al. 2022) studies the wider family including E2M5
// and variable-bias variants, which this constructor covers for
// ablation studies.
func New(expBits, manBits uint, ieee bool) (Format, error) {
	if expBits+manBits != 7 {
		return Format{}, fmt.Errorf("fp8: exponent %d + mantissa %d bits must equal 7", expBits, manBits)
	}
	if expBits < 2 {
		return Format{}, fmt.Errorf("fp8: need at least 2 exponent bits, got %d", expBits)
	}
	return Format{
		Name:    fmt.Sprintf("E%dM%d", expBits, manBits),
		ExpBits: expBits,
		ManBits: manBits,
		Bias:    (1 << (expBits - 1)) - 1,
		IEEE:    ieee,
	}, nil
}

// WithBias returns a copy of the format with a shifted exponent bias —
// the "exponent bias shifting" trick of Sun et al. (2019) for moving an
// FP8 format's numeric range toward activations' actual range without a
// multiplier.
func (f Format) WithBias(bias int) Format {
	g := f
	g.Bias = bias
	g.Name = fmt.Sprintf("%s(b=%d)", f.Name, bias)
	return g
}
