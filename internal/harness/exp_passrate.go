package harness

import (
	"fmt"
	"math"

	"fp8quant/internal/data"
	"fp8quant/internal/evalx"
	"fp8quant/internal/models"
	"fp8quant/internal/quant"
	"fp8quant/internal/resultstore"
)

func init() {
	registerExp(Experiment{ID: "table2", Title: "Table 2: workload pass rate", Run: runTable2})
	registerExp(Experiment{ID: "fig4", Title: "Figure 4: accuracy-loss variability CV vs NLP", Run: runFig4})
	registerExp(Experiment{ID: "table3", Title: "Table 3: representative model accuracy", Run: runTable3})
	registerExp(Experiment{ID: "fig5", Title: "Figure 5: accuracy loss by model size", Run: runFig5})
	registerExp(Experiment{ID: "fig7", Title: "Figure 7: BatchNorm calibration sample size and transform", Run: runFig7})
	registerExp(Experiment{ID: "table5", Title: "Table 5: single vs mixed FP8 formats", Run: runTable5})
	registerExp(Experiment{ID: "table6", Title: "Table 6: static vs dynamic quantization", Run: runTable6})
	registerExp(Experiment{ID: "fig9", Title: "Figure 9: extended quantization recipes", Run: runFig9})
	registerExp(Experiment{ID: "firstlast", Title: "Section 4.3.1: quantizing first and last operators", Run: runFirstLast})
}

// table2Recipes builds the per-model Table 2 recipe set. The INT8 row
// follows the paper: static on CV, dynamic on NLP-like workloads.
func table2Recipes(net *models.Network) []quant.Recipe {
	return []quant.Recipe{
		quant.StandardFP8(quant.E5M2),
		quant.StandardFP8(quant.E4M3),
		quant.DynamicFP8(quant.E4M3),
		quant.StandardFP8(quant.E3M4),
		quant.DynamicFP8(quant.E3M4),
		quant.StandardINT8(net.Meta.Domain != models.CV),
	}
}

var table2Labels = []string{
	"E5M2 Direct", "E4M3 Static", "E4M3 Dynamic",
	"E3M4 Static", "E3M4 Dynamic", "INT8 Static CV | Dynamic NLP",
}

// sweepKey is the content address of a Table-2-recipe sweep over the
// named models. Model weights derive from per-name seeds, so the
// experiment-level seed is constant; Schema tracks evaluation-code
// changes that would invalidate stored grids.
func sweepKey(names []string) resultstore.Key {
	return resultstore.Key{
		Experiment: "table2-sweep",
		Models:     names,
		Recipes:    table2Labels,
		Seed:       0,
		Schema:     resultstore.SchemaVersion,
	}
}

// sweepAllModels returns the all-model Table 2 sweep that table2, fig4
// and fig5 all consume: memoized in-process and, when a result store is
// configured, persisted across fp8bench invocations.
func sweepAllModels() [][]evalx.Result {
	names := models.Names()
	return cachedGrid(sweepKey(names), func() [][]evalx.Result {
		return sweepAll(names)
	})
}

// sweepAll evaluates the Table 2 recipe set on the named models across
// the sweep worker pool, returning results indexed [model][recipe].
func sweepAll(names []string) [][]evalx.Result {
	return collectCells(len(names), func(i int) []evalx.Result {
		net, err := models.Build(names[i])
		if err != nil {
			return nil
		}
		return evalx.EvaluateRecipes(net, table2Recipes(net), true)
	})
}

func column(all [][]evalx.Result, ri int) []evalx.Result {
	col := make([]evalx.Result, 0, len(all))
	for _, row := range all {
		if ri < len(row) {
			col = append(col, row[ri])
		}
	}
	return col
}

func runTable2() *Report {
	all := sweepAllModels()
	tb := newTable("Data Type / Approach", "Pass Rate (CV)", "Pass Rate (NLP)", "Pass Rate (All)")
	vals := map[string]float64{}
	for ri, label := range table2Labels {
		pr := evalx.AggregatePassRates(column(all, ri))
		tb.add(label, pct(pr.CV), pct(pr.NLP), pct(pr.All))
		vals["cv_"+label] = pr.CV
		vals["nlp_"+label] = pr.NLP
		vals["all_"+label] = pr.All
	}
	return &Report{
		Text:   "Table 2 reproduction: workload pass rate (<=1% relative loss vs FP32).\n\n" + tb.String(),
		Values: vals,
	}
}

func runFig4() *Report {
	all := sweepAllModels()
	// Figure 4 plots loss variability per format for CV and NLP:
	// E5M2, E4M3 (static), E3M4 (static), INT8.
	idx := map[string]int{"E5M2": 0, "E4M3": 1, "E3M4": 3, "INT8": 5}
	tb := newTable("format", "domain", "mean loss", "std", "median", "q1", "q3", "max")
	vals := map[string]float64{}
	for _, fmtName := range []string{"E5M2", "E4M3", "E3M4", "INT8"} {
		for _, dom := range []models.Domain{models.CV, models.NLP} {
			var losses []float64
			for _, r := range column(all, idx[fmtName]) {
				if r.Domain == dom {
					losses = append(losses, r.RelLoss*100)
				}
			}
			s := evalx.ComputeLossStats(losses)
			tb.add(fmtName, dom.String(),
				fmt.Sprintf("%.2f%%", s.Mean), fmt.Sprintf("%.2f", s.Std),
				fmt.Sprintf("%.2f%%", s.Median), fmt.Sprintf("%.2f%%", s.Q1),
				fmt.Sprintf("%.2f%%", s.Q3), fmt.Sprintf("%.2f%%", s.Max))
			vals[fmt.Sprintf("std_%s_%s", fmtName, dom)] = s.Std
			vals[fmt.Sprintf("mean_%s_%s", fmtName, dom)] = s.Mean
		}
	}
	return &Report{
		Text: "Figure 4 reproduction: distribution of accuracy loss per format and domain\n" +
			"(box-plot statistics; paper shows INT8 with the largest CV variability).\n\n" + tb.String(),
		Values: vals,
	}
}

// table3Models mirrors the representative sample of Table 3.
var table3Models = []string{
	"resnet50", "densenet121", "wav2vec2_librispeech", "dlrm_criteo",
	"bert_base_stsb", "bert_large_cola", "distilbert_mrpc",
	"bloom_7b1", "bloom_176b", "llama_65b",
}

func runTable3() *Report {
	tb := newTable("Model", "Task", "FP32", "E5M2", "E4M3", "E3M4", "INT8")
	vals := map[string]float64{}
	type row struct {
		task string
		res  []evalx.Result
	}
	rows := collectCells(len(table3Models), func(i int) row {
		net, err := models.Build(table3Models[i])
		if err != nil {
			return row{}
		}
		recipes := []quant.Recipe{
			quant.StandardFP8(quant.E5M2),
			quant.StandardFP8(quant.E4M3),
			quant.StandardFP8(quant.E3M4),
			quant.StandardINT8(net.Meta.Domain != models.CV),
		}
		return row{net.Meta.Task, evalx.EvaluateRecipes(net, recipes, true)}
	})
	for i, name := range table3Models {
		res := rows[i].res
		if len(res) < 4 {
			continue
		}
		tb.add(name, rows[i].task, "1.0000",
			fmt.Sprintf("%.4f", res[0].QAcc), fmt.Sprintf("%.4f", res[1].QAcc),
			fmt.Sprintf("%.4f", res[2].QAcc), fmt.Sprintf("%.4f", res[3].QAcc))
		vals[name+"_E4M3"] = res[1].QAcc
		vals[name+"_E3M4"] = res[2].QAcc
		vals[name+"_INT8"] = res[3].QAcc
		vals[name+"_E5M2"] = res[0].QAcc
	}
	return &Report{
		Text: "Table 3 reproduction: teacher-is-truth accuracy of representative models\n" +
			"(FP32 reference accuracy is 1.0 by construction; paper reports task metrics).\n\n" + tb.String(),
		Values: vals,
	}
}

func runFig5() *Report {
	all := sweepAllModels()
	idx := map[string]int{"E5M2": 0, "E4M3": 1, "E3M4": 3, "INT8": 5}
	classes := []string{"tiny", "small", "medium", "large"}
	tb := newTable("domain", "size class", "format", "mean loss", "max loss", "n")
	vals := map[string]float64{}
	for _, dom := range []models.Domain{models.CV, models.NLP} {
		for _, sc := range classes {
			for _, f := range []string{"E5M2", "E4M3", "E3M4", "INT8"} {
				var losses []float64
				for _, r := range column(all, idx[f]) {
					info, _ := models.InfoFor(r.Model)
					if r.Domain == dom && info.SizeClass() == sc {
						losses = append(losses, r.RelLoss*100)
					}
				}
				if len(losses) == 0 {
					continue
				}
				s := evalx.ComputeLossStats(losses)
				tb.add(dom.String(), sc, f, fmt.Sprintf("%.2f%%", s.Mean),
					fmt.Sprintf("%.2f%%", s.Max), fmt.Sprintf("%d", s.N))
				vals[fmt.Sprintf("%s_%s_%s", dom, sc, f)] = s.Mean
			}
		}
	}
	return &Report{
		Text:   "Figure 5 reproduction: accuracy loss bucketed by model size class.\n\n" + tb.String(),
		Values: vals,
	}
}

// fig7Models are BatchNorm CV models from the Figure 7 list (the
// cheaper half — the full list is available in the zoo but the single
// pass-rate protocol already covers it; see DESIGN.md on runtime).
var fig7Models = []string{
	"resnet18", "peleenet", "mobilenet_v2", "googlenet",
	"shufflenet_v2", "densenet121", "efficientnet_b0", "squeezenet",
}

func runFig7() *Report {
	// Sample-size x transform grid: {300, 3k, 10k} samples with the
	// training transform, plus 3k with the inference transform.
	type cfg struct {
		label     string
		samples   int
		transform data.Transform
	}
	// Sample counts are the paper's {300, 3K, 10K} scaled down ~3x to
	// match the zoo's scaled-down models (see DESIGN.md §5).
	cfgs := []cfg{
		{"100 Samples + Training", 100, data.AugmentTraining},
		{"3.2K Samples + Training", 3200, data.AugmentTraining},
		{"1K Samples + Inference", 1000, data.AugmentInference},
		{"1K Samples + Training", 1000, data.AugmentTraining},
	}
	tb := newTable("model", cfgs[0].label, cfgs[1].label, cfgs[2].label, cfgs[3].label)
	vals := map[string]float64{}
	// One sweep cell per model; the four calibration configs reuse the
	// cell's model build and FP32 reference.
	losses := collectCells(len(fig7Models), func(i int) []float64 {
		net, err := models.Build(fig7Models[i])
		if err != nil || !net.Meta.HasBN {
			return nil
		}
		ref := evalx.ComputeReference(net)
		out := make([]float64, len(cfgs))
		for ci, c := range cfgs {
			// Batches of 16 images -> sample count / 16 BN batches.
			bnBatches := c.samples / 16
			if bnBatches < 1 {
				bnBatches = 1
			}
			ds := &data.ImageDataset{N: 16, C: 3, H: 12, W: 12,
				NumBatches: bnBatches, Seed: 0xF167, Transform: c.transform}
			r := quant.StandardFP8(quant.E4M3)
			r.CalibBatches = evalx.CalibBatches
			r = r.WithBNCalib(bnBatches)
			out[ci] = evaluateBNConfig(net, ds, r, ref)
		}
		return out
	})
	for i, name := range fig7Models {
		if losses[i] == nil {
			continue
		}
		row := []string{name}
		for ci, c := range cfgs {
			loss := losses[i][ci]
			row = append(row, fmt.Sprintf("%.2f%%", loss*100))
			vals[name+"_"+c.label] = loss * 100
		}
		tb.add(row...)
	}
	return &Report{
		Text: "Figure 7 reproduction: accuracy loss after E4M3 quantization with BatchNorm\n" +
			"calibration at different sample sizes and transforms (lower is better).\n\n" + tb.String(),
		Values: vals,
	}
}

// evaluateBNConfig quantizes with the given dataset (which carries the
// augmentation transform) and returns the relative accuracy loss.
func evaluateBNConfig(net *models.Network, ds data.Dataset, r quant.Recipe, ref evalx.Reference) float64 {
	h := quant.Quantize(net, ds, r)
	acc := evalx.AccuracyAgainst(net, ref)
	h.Release()
	return data.RelativeLoss(1.0, acc)
}

// table5Models are the mixed-format study models of Table 5.
var table5Models = []string{"bert_base_mrpc", "bert_large_rte", "funnel_mrpc", "longformer_mrpc"}

func runTable5() *Report {
	tb := newTable("Model", "Task", "FP32", "E5M2", "E4M3", "E3M4", "Mixed")
	vals := map[string]float64{}
	type row struct {
		task string
		res  []evalx.Result
	}
	rows := collectCells(len(table5Models), func(i int) row {
		net, err := models.Build(table5Models[i])
		if err != nil {
			return row{}
		}
		recipes := []quant.Recipe{
			quant.StandardFP8(quant.E5M2),
			quant.StandardFP8(quant.E4M3),
			quant.StandardFP8(quant.E3M4),
			quant.MixedFP8(),
		}
		return row{net.Meta.Task, evalx.EvaluateRecipes(net, recipes, true)}
	})
	for i, name := range table5Models {
		res := rows[i].res
		if len(res) < 4 {
			continue
		}
		tb.add(name, rows[i].task, "1.0000",
			fmt.Sprintf("%.4f", res[0].QAcc), fmt.Sprintf("%.4f", res[1].QAcc),
			fmt.Sprintf("%.4f", res[2].QAcc), fmt.Sprintf("%.4f", res[3].QAcc))
		vals[name+"_E5M2"] = res[0].QAcc
		vals[name+"_E4M3"] = res[1].QAcc
		vals[name+"_E3M4"] = res[2].QAcc
		vals[name+"_Mixed"] = res[3].QAcc
	}
	return &Report{
		Text: "Table 5 reproduction: single vs mixed FP8 formats (E4M3 activations +\n" +
			"E3M4 weights) on the paper's mixed-format study models.\n\n" + tb.String(),
		Values: vals,
	}
}

// table6Cases are the static-vs-dynamic comparisons of Table 6.
var table6Cases = []struct {
	model  string
	format quant.DType
}{
	{"bert_base_mrpc", quant.E4M3},
	{"bert_base_cola", quant.E4M3},
	{"bert_large_rte", quant.E4M3},
	{"xlm_roberta_mrpc", quant.E3M4},
}

func runTable6() *Report {
	tb := newTable("Model", "FP8 Format", "Dynamic", "Static", "Improvement")
	vals := map[string]float64{}
	rows := collectCells(len(table6Cases), func(i int) []evalx.Result {
		net, err := models.Build(table6Cases[i].model)
		if err != nil {
			return nil
		}
		return evalx.EvaluateRecipes(net, []quant.Recipe{
			quant.DynamicFP8(table6Cases[i].format),
			quant.StandardFP8(table6Cases[i].format),
		}, true)
	})
	for i, c := range table6Cases {
		res := rows[i]
		if len(res) < 2 {
			continue
		}
		dyn, st := res[0].QAcc, res[1].QAcc
		tb.add(c.model, c.format.String(),
			fmt.Sprintf("%.4f", dyn), fmt.Sprintf("%.4f", st),
			fmt.Sprintf("%+.2f%%", (dyn-st)*100))
		vals[c.model+"_dynamic"] = dyn
		vals[c.model+"_static"] = st
	}
	return &Report{
		Text: "Table 6 reproduction: static vs dynamic quantization on NLP workloads\n" +
			"(paper reports dynamic improving E4M3/E3M4 accuracy on selected models).\n\n" + tb.String(),
		Values: vals,
	}
}

func runFig9() *Report {
	vals := map[string]float64{}
	tb := newTable("domain", "recipe", "format", "mean loss", "std", "max")
	// Each group is one table row: a (domain, format, coverage) triple
	// averaged over 12 models. Cells are the individual (group, model)
	// evaluations, fanned out over the sweep pool; per-cell losses land
	// in fixed slots so the aggregation below is order-independent.
	type group struct {
		domain  string
		format  quant.DType
		altOps  bool // CV: +first/last; NLP: extended coverage
		names   []string
		label   string
		valsKey string
	}
	cvNames := models.NamesByDomain(models.CV)[:12]
	nlpNames := models.NamesByDomain(models.NLP)[:12]
	var groups []group
	for _, f := range []quant.DType{quant.E5M2, quant.E4M3, quant.E3M4} {
		for _, alt := range []bool{false, true} {
			label := "Conv,Linear"
			if alt {
				label = "Conv,Linear -1st&LastOps"
			}
			groups = append(groups, group{"CV", f, alt, cvNames, label,
				fmt.Sprintf("cv_%s_firstlast_%v", f, alt)})
		}
	}
	for _, f := range []quant.DType{quant.E5M2, quant.E4M3, quant.E3M4} {
		for _, alt := range []bool{false, true} {
			label := "Linear"
			if alt {
				label = "Linear +BMM,MM,Emb,LayerNorm"
			}
			groups = append(groups, group{"NLP", f, alt, nlpNames, label,
				fmt.Sprintf("nlp_%s_extended_%v", f, alt)})
		}
	}
	type cellID struct{ gi, mi int }
	var cells []cellID
	losses := make([][]float64, len(groups))
	for gi, g := range groups {
		losses[gi] = make([]float64, len(g.names))
		for mi := range g.names {
			cells = append(cells, cellID{gi, mi})
		}
	}
	forEachCell(len(cells), func(k int) {
		gi, mi := cells[k].gi, cells[k].mi
		g := groups[gi]
		losses[gi][mi] = math.NaN()
		net, err := models.Build(g.names[mi])
		if err != nil {
			return
		}
		r := quant.StandardFP8(g.format)
		if g.altOps {
			if g.domain == "CV" {
				r = r.WithFirstLast()
			} else {
				r = r.WithExtendedOps()
			}
		}
		losses[gi][mi] = evalx.Evaluate(net, r, true).RelLoss * 100
	})
	for gi, g := range groups {
		var ok []float64
		for _, l := range losses[gi] {
			if !math.IsNaN(l) {
				ok = append(ok, l)
			}
		}
		s := evalx.ComputeLossStats(ok)
		tb.add(g.domain, g.label, g.format.String(), fmt.Sprintf("%.2f%%", s.Mean),
			fmt.Sprintf("%.2f", s.Std), fmt.Sprintf("%.2f%%", s.Max))
		vals[g.valsKey] = s.Mean
	}
	return &Report{
		Text: "Figure 9 reproduction: accuracy impact of extended quantization recipes\n" +
			"(CV: quantizing first/last ops; NLP: expanded operator coverage).\n\n" + tb.String(),
		Values: vals,
	}
}

func runFirstLast() *Report {
	// Section 4.3.1: pass-rate drop when quantizing first and last
	// operators of CNNs.
	var cnns []string
	for _, name := range models.NamesByDomain(models.CV) {
		if info, _ := models.InfoFor(name); info.IsCNN {
			cnns = append(cnns, name)
		}
	}
	formats := []quant.DType{quant.E5M2, quant.E4M3, quant.E3M4}
	// One cell per (format, CNN): both recipes share the cell's model
	// build. passes[fi][mi] = {std pass, first/last pass} or nil.
	passes := make([][][2]bool, len(formats))
	valid := make([][]bool, len(formats))
	for fi := range formats {
		passes[fi] = make([][2]bool, len(cnns))
		valid[fi] = make([]bool, len(cnns))
	}
	forEachCell(len(formats)*len(cnns), func(k int) {
		fi, mi := k/len(cnns), k%len(cnns)
		net, err := models.Build(cnns[mi])
		if err != nil {
			return
		}
		res := evalx.EvaluateRecipes(net, []quant.Recipe{
			quant.StandardFP8(formats[fi]),
			quant.StandardFP8(formats[fi]).WithFirstLast(),
		}, true)
		passes[fi][mi] = [2]bool{res[0].Pass, res[1].Pass}
		valid[fi][mi] = true
	})
	tb := newTable("format", "pass rate (std)", "pass rate (+first/last)", "drop")
	vals := map[string]float64{}
	for fi, f := range formats {
		var std, fl, total int
		for mi := range cnns {
			if !valid[fi][mi] {
				continue
			}
			total++
			if passes[fi][mi][0] {
				std++
			}
			if passes[fi][mi][1] {
				fl++
			}
		}
		sp := float64(std) / float64(total) * 100
		fp := float64(fl) / float64(total) * 100
		tb.add(f.String(), pct(sp), pct(fp), fmt.Sprintf("%.1f pts", sp-fp))
		vals["std_"+f.String()] = sp
		vals["firstlast_"+f.String()] = fp
	}
	return &Report{
		Text: "Section 4.3.1 reproduction: quantizing the first convolution and last\n" +
			"linear layer reduces the CNN pass rate, most for the low-mantissa formats.\n\n" + tb.String(),
		Values: vals,
	}
}
