// Package faultline is a deterministic fault-injection layer for the
// sweep infrastructure. Code that claims durability declares named
// *failpoints* — `faultline.Hit("resultstore.save.rename")` — which are
// a no-op costing one atomic load while disarmed (the default, proven
// by a zero-alloc test), and inject faults when armed with a Plan:
// errors, ENOSPC, delays, torn/partial writes, silent corruption, HTTP
// 5xx, dropped responses, and crash-after-N-hits.
//
// Determinism: a Plan carries a seed, and every probabilistic decision
// draws from one PRNG seeded by it, so a chaos run is replayable from
// its seed — the same plan over the same workload makes the same
// injection decisions in the same order. (Which wall-clock moment a
// given hit lands at still depends on goroutine scheduling; the
// *decisions* are what replay.) Hit counts are per failpoint name, so
// `@N` rules fire on exactly the N-th time that point is reached.
//
// Plans arm programmatically (Arm) or from the FP8_FAULTS environment
// variable (ArmFromEnv), whose grammar is semicolon-separated clauses:
//
//	FP8_FAULTS="seed=42;resultstore.save.temp=corrupt:0.5@5x2;coord.server.push=http500@3x4"
//
//	seed=<n>                      PRNG seed (default 1); at most once, first
//	<pattern>=<kind>[:<param>][@<from>][%<prob>][x<max>]
//
// where <pattern> is a failpoint name or a prefix ending in '*';
// <kind> is err, enospc, delay (param: duration), torn (param: kept
// fraction), corrupt (param: kept fraction), crash, http500 or drop;
// @<from> makes the rule eligible from the from-th hit on (default 1);
// %<prob> injects with that per-hit probability (default 1); and
// x<max> caps the rule's total injections (default unlimited).
//
// Failpoints decide which fault kinds they can express: error-bearing
// points (store writes, HTTP calls) honor every kind; write points
// additionally honor torn/corrupt via WriteBytes; pure compute points
// honor only delay and crash and ignore injected errors. The injection
// layer itself never touches cell math — arming faults can make runs
// fail, stall or crash, never produce different bytes.
package faultline

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Kind names one fault behavior.
type Kind string

const (
	// KindErr returns a generic injected error.
	KindErr Kind = "err"
	// KindENOSPC returns an error wrapping syscall.ENOSPC.
	KindENOSPC Kind = "enospc"
	// KindDelay sleeps for the rule's Delay, then proceeds normally.
	KindDelay Kind = "delay"
	// KindTorn (write points) truncates the payload to Frac of its
	// bytes and returns ErrTorn — the caller writes the prefix and
	// "dies", leaving a partial temp file like a real crash would.
	KindTorn Kind = "torn"
	// KindCorrupt (write points) truncates the payload to Frac of its
	// bytes and reports success — silent corruption, the way a torn
	// sector looks after the rename already happened.
	KindCorrupt Kind = "corrupt"
	// KindCrash terminates the process (CrashFn, default os.Exit(3)).
	KindCrash Kind = "crash"
	// KindHTTP500 makes HTTP server failpoints answer 500.
	KindHTTP500 Kind = "http500"
	// KindDrop makes HTTP failpoints drop the connection/response.
	KindDrop Kind = "drop"
)

// Sentinel errors callers branch on. Every injected error wraps the
// base ErrInjected, so `faultline.Injected(err)` distinguishes a
// simulated fault from a real one (e.g. to skip temp-file cleanup the
// way a genuine crash would).
var (
	ErrInjected = errors.New("faultline: injected fault")
	// ErrTorn marks a torn-write injection (partial bytes were written).
	ErrTorn = fmt.Errorf("torn write: %w", ErrInjected)
	// ErrHTTP500 tells an HTTP server failpoint to answer 500.
	ErrHTTP500 = fmt.Errorf("http 500: %w", ErrInjected)
	// ErrDrop tells an HTTP failpoint to drop the connection.
	ErrDrop = fmt.Errorf("dropped connection: %w", ErrInjected)
)

// Injected reports whether err came from an armed failpoint.
func Injected(err error) bool { return errors.Is(err, ErrInjected) }

// CrashExitCode is the exit status KindCrash terminates with —
// distinct from 1/2 so scripts can tell an injected crash from an
// ordinary failure.
const CrashExitCode = 3

// CrashFn performs the KindCrash termination. Tests may swap it to
// observe crashes in-process; the default is os.Exit(CrashExitCode).
var CrashFn = func(name string) { os.Exit(CrashExitCode) }

// Rule is one arming clause: inject Kind at failpoints matching
// Pattern, subject to the hit-count, probability and budget triggers.
type Rule struct {
	// Pattern is a failpoint name, or a prefix ending in '*'.
	Pattern string
	Kind    Kind
	// Delay is the sleep for KindDelay.
	Delay time.Duration
	// Frac is the kept byte fraction for KindTorn/KindCorrupt in (0,1).
	Frac float64
	// From is the 1-based hit number the rule becomes eligible at
	// (0 means 1: eligible from the first hit).
	From int
	// Prob is the per-hit injection probability (0 means 1: always).
	Prob float64
	// Max caps the rule's total injections (0 = unlimited).
	Max int
}

// Plan is a full arming: a PRNG seed plus ordered rules. The first
// eligible rule matching a hit wins, so order rules from specific to
// general.
type Plan struct {
	Seed  uint64
	Rules []Rule
}

// ruleState is a rule plus its injection budget counter.
type ruleState struct {
	Rule
	injected int
}

// state is the armed plan's mutable half.
type state struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []*ruleState
	hits  map[string]int // per-failpoint hit counts
	inj   map[string]int // per-failpoint injection counts
}

// active is nil while disarmed — the entire disarmed cost of a
// failpoint is this one atomic load.
var active atomic.Pointer[state]

// Enabled reports whether a plan is armed.
func Enabled() bool { return active.Load() != nil }

// Arm installs a plan (replacing any armed one). An empty plan arms
// nothing but still counts hits, which tests use to assert coverage.
func Arm(p Plan) error {
	for i := range p.Rules {
		if err := p.Rules[i].validate(); err != nil {
			return err
		}
	}
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	st := &state{
		rng:  rand.New(rand.NewSource(int64(seed))),
		hits: map[string]int{},
		inj:  map[string]int{},
	}
	for _, r := range p.Rules {
		rc := r
		st.rules = append(st.rules, &ruleState{Rule: rc})
	}
	active.Store(st)
	return nil
}

// Disarm removes the armed plan; every failpoint reverts to a no-op.
func Disarm() { active.Store(nil) }

// EnvVar is the environment variable ArmFromEnv reads.
const EnvVar = "FP8_FAULTS"

// ArmFromEnv arms the plan described by FP8_FAULTS, if set. Returns
// whether a plan was armed; a malformed plan is an error (a typo'd
// chaos spec must fail loudly, not silently run clean).
func ArmFromEnv() (bool, error) {
	spec := os.Getenv(EnvVar)
	if strings.TrimSpace(spec) == "" {
		return false, nil
	}
	p, err := ParsePlan(spec)
	if err != nil {
		return false, fmt.Errorf("%s: %w", EnvVar, err)
	}
	if err := Arm(p); err != nil {
		return false, fmt.Errorf("%s: %w", EnvVar, err)
	}
	return true, nil
}

// validate rejects rules the grammar cannot mean.
func (r *Rule) validate() error {
	if r.Pattern == "" {
		return fmt.Errorf("faultline: rule with empty pattern")
	}
	switch r.Kind {
	case KindErr, KindENOSPC, KindCrash, KindHTTP500, KindDrop:
	case KindDelay:
		if r.Delay <= 0 {
			return fmt.Errorf("faultline: rule %s: delay needs a positive duration parameter", r.Pattern)
		}
	case KindTorn, KindCorrupt:
		if r.Frac <= 0 || r.Frac >= 1 {
			return fmt.Errorf("faultline: rule %s: %s needs a kept-fraction parameter in (0,1)", r.Pattern, r.Kind)
		}
	default:
		return fmt.Errorf("faultline: rule %s: unknown kind %q", r.Pattern, r.Kind)
	}
	if r.From < 0 || r.Max < 0 || r.Prob < 0 || r.Prob > 1 {
		return fmt.Errorf("faultline: rule %s: out-of-range trigger (from=%d prob=%g max=%d)", r.Pattern, r.From, r.Prob, r.Max)
	}
	return nil
}

// ParsePlan parses the FP8_FAULTS grammar (see the package comment).
func ParsePlan(spec string) (Plan, error) {
	var p Plan
	seenSeed := false
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, rhs, ok := strings.Cut(clause, "=")
		name, rhs = strings.TrimSpace(name), strings.TrimSpace(rhs)
		if !ok || name == "" || rhs == "" {
			return Plan{}, fmt.Errorf("faultline: bad clause %q (want name=kind[:param][@from][%%prob][xmax])", clause)
		}
		if name == "seed" {
			if seenSeed || len(p.Rules) > 0 {
				return Plan{}, fmt.Errorf("faultline: seed must appear once, before any rule")
			}
			n, err := strconv.ParseUint(rhs, 10, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("faultline: bad seed %q", rhs)
			}
			p.Seed, seenSeed = n, true
			continue
		}
		r, err := parseRule(name, rhs)
		if err != nil {
			return Plan{}, err
		}
		p.Rules = append(p.Rules, r)
	}
	if len(p.Rules) == 0 {
		return Plan{}, fmt.Errorf("faultline: plan %q has no rules", spec)
	}
	return p, nil
}

// parseRule parses one "<kind>[:<param>][@<from>][%<prob>][x<max>]"
// right-hand side. Triggers may appear in any order after the kind.
func parseRule(pattern, rhs string) (Rule, error) {
	r := Rule{Pattern: pattern}
	// Split the trailing triggers off the kind[:param] head. Triggers
	// start at the first '@', '%' or 'x' that follows the kind/param
	// (durations like "50ms" contain no trigger characters; fractions
	// are digits and dots).
	head := rhs
	var triggers string
	if i := strings.IndexAny(rhs, "@%x"); i >= 0 {
		head, triggers = rhs[:i], rhs[i:]
	}
	kind, param, _ := strings.Cut(head, ":")
	r.Kind = Kind(strings.TrimSpace(kind))
	param = strings.TrimSpace(param)
	switch r.Kind {
	case KindDelay:
		d, err := time.ParseDuration(param)
		if err != nil {
			return Rule{}, fmt.Errorf("faultline: rule %s: bad delay %q", pattern, param)
		}
		r.Delay = d
	case KindTorn, KindCorrupt:
		f, err := strconv.ParseFloat(param, 64)
		if err != nil {
			return Rule{}, fmt.Errorf("faultline: rule %s: bad fraction %q", pattern, param)
		}
		r.Frac = f
	default:
		if param != "" {
			return Rule{}, fmt.Errorf("faultline: rule %s: kind %q takes no parameter", pattern, r.Kind)
		}
	}
	for triggers != "" {
		tag := triggers[0]
		rest := triggers[1:]
		end := strings.IndexAny(rest, "@%x")
		var val string
		if end < 0 {
			val, triggers = rest, ""
		} else {
			val, triggers = rest[:end], rest[end:]
		}
		switch tag {
		case '@':
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return Rule{}, fmt.Errorf("faultline: rule %s: bad @from %q", pattern, val)
			}
			r.From = n
		case '%':
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return Rule{}, fmt.Errorf("faultline: rule %s: bad %%prob %q", pattern, val)
			}
			r.Prob = f
		case 'x':
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return Rule{}, fmt.Errorf("faultline: rule %s: bad xmax %q", pattern, val)
			}
			r.Max = n
		}
	}
	if err := r.validate(); err != nil {
		return Rule{}, err
	}
	return r, nil
}

// String renders the plan in the FP8_FAULTS grammar (round-trips
// through ParsePlan), so a programmatic plan can be logged in the
// shape a shell replay needs.
func (p Plan) String() string {
	var parts []string
	if p.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	}
	for _, r := range p.Rules {
		rhs := string(r.Kind)
		switch r.Kind {
		case KindDelay:
			rhs += ":" + r.Delay.String()
		case KindTorn, KindCorrupt:
			rhs += ":" + strconv.FormatFloat(r.Frac, 'g', -1, 64)
		}
		if r.From > 0 {
			rhs += "@" + strconv.Itoa(r.From)
		}
		if r.Prob > 0 && r.Prob < 1 {
			rhs += "%" + strconv.FormatFloat(r.Prob, 'g', -1, 64)
		}
		if r.Max > 0 {
			rhs += "x" + strconv.Itoa(r.Max)
		}
		parts = append(parts, r.Pattern+"="+rhs)
	}
	return strings.Join(parts, ";")
}

// matches reports whether the rule's pattern covers the failpoint.
func (r *ruleState) matches(name string) bool {
	if strings.HasSuffix(r.Pattern, "*") {
		return strings.HasPrefix(name, r.Pattern[:len(r.Pattern)-1])
	}
	return r.Pattern == name
}

// decide records a hit on the named failpoint and returns the winning
// rule, or nil when nothing injects this time.
func (st *state) decide(name string) *ruleState {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.hits[name]++
	n := st.hits[name]
	for _, r := range st.rules {
		if !r.matches(name) {
			continue
		}
		from := r.From
		if from == 0 {
			from = 1
		}
		if n < from {
			continue
		}
		if r.Max > 0 && r.injected >= r.Max {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && st.rng.Float64() >= r.Prob {
			// The draw is consumed either way — that is what makes the
			// decision sequence a pure function of the seed and the hit
			// order.
			continue
		}
		r.injected++
		st.inj[name]++
		return r
	}
	return nil
}

// Hit is the generic failpoint: a no-op while disarmed; when armed it
// may sleep (delay), crash the process (crash), or return an injected
// error for the caller to propagate. Torn/corrupt rules at a plain Hit
// point degrade to a generic injected error (only WriteBytes can
// truncate payloads).
func Hit(name string) error {
	st := active.Load()
	if st == nil {
		return nil
	}
	r := st.decide(name)
	if r == nil {
		return nil
	}
	return r.act(name)
}

// act performs a non-write injection.
func (r *ruleState) act(name string) error {
	switch r.Kind {
	case KindDelay:
		time.Sleep(r.Delay)
		return nil
	case KindCrash:
		CrashFn(name)
		return nil // only reached when a test hook declined to exit
	case KindENOSPC:
		return fmt.Errorf("faultline %s: %w: %w", name, ErrInjected, syscall.ENOSPC)
	case KindHTTP500:
		return fmt.Errorf("faultline %s: %w", name, ErrHTTP500)
	case KindDrop:
		return fmt.Errorf("faultline %s: %w", name, ErrDrop)
	default: // KindErr, and torn/corrupt degraded to a plain error
		return fmt.Errorf("faultline %s: %w", name, ErrInjected)
	}
}

// WriteBytes is the write-site failpoint: callers pass the payload
// they are about to write and write what comes back. Disarmed it
// returns the payload untouched. Armed, a torn rule returns a strict
// prefix plus ErrTorn (the caller should write the prefix and abandon
// the file, like a crash mid-write); a corrupt rule returns a strict
// prefix with no error (silent corruption — the write "succeeds");
// every other kind behaves as in Hit.
func WriteBytes(name string, b []byte) ([]byte, error) {
	st := active.Load()
	if st == nil {
		return b, nil
	}
	r := st.decide(name)
	if r == nil {
		return b, nil
	}
	switch r.Kind {
	case KindTorn:
		return truncate(b, r.Frac), fmt.Errorf("faultline %s: %w", name, ErrTorn)
	case KindCorrupt:
		return truncate(b, r.Frac), nil
	default:
		if err := r.act(name); err != nil {
			return nil, err
		}
		return b, nil
	}
}

// truncate keeps a strict prefix of b: at least one byte short, at
// most frac of the length (so even frac near 1 on tiny payloads still
// tears).
func truncate(b []byte, frac float64) []byte {
	n := int(float64(len(b)) * frac)
	if n >= len(b) {
		n = len(b) - 1
	}
	if n < 0 {
		n = 0
	}
	return b[:n]
}

// PointStats is one failpoint's traffic under the armed plan.
type PointStats struct {
	Name     string
	Hits     int
	Injected int
}

// Stats returns per-failpoint hit/injection counts, sorted by name —
// empty while disarmed. Chaos drivers print it so a replayed run can
// be compared decision-for-decision.
func Stats() []PointStats {
	st := active.Load()
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	names := make([]string, 0, len(st.hits))
	for n := range st.hits {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]PointStats, 0, len(names))
	for _, n := range names {
		out = append(out, PointStats{Name: n, Hits: st.hits[n], Injected: st.inj[n]})
	}
	return out
}

// Report renders Stats as one line per failpoint ("" when disarmed).
func Report() string {
	var b strings.Builder
	for _, s := range Stats() {
		fmt.Fprintf(&b, "faultline: %s: %d hits, %d injected\n", s.Name, s.Hits, s.Injected)
	}
	return b.String()
}
