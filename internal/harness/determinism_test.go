package harness

import (
	"math"
	"testing"
)

// runWithWorkers runs one experiment at a fixed sweep worker count.
// The in-process cell memo is cleared first so every run genuinely
// recomputes its cells — otherwise the second worker count would just
// replay memoized results and the determinism check would be vacuous.
func runWithWorkers(t *testing.T, id string, workers int) *Report {
	t.Helper()
	ClearMemo()
	t.Cleanup(ClearMemo)
	SetWorkers(workers)
	defer SetWorkers(0)
	e, ok := Get(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	return Run(e)
}

// requireIdenticalValues asserts two reports carry bit-identical
// Values maps — the per-cell isolation contract: scheduling must not
// influence a single bit of any reported number.
func requireIdenticalValues(t *testing.T, id string, a, b *Report) {
	t.Helper()
	if len(a.Values) != len(b.Values) {
		t.Fatalf("%s: %d values vs %d", id, len(a.Values), len(b.Values))
	}
	for k, va := range a.Values {
		vb, ok := b.Values[k]
		if !ok {
			t.Fatalf("%s: value %q missing from second run", id, k)
		}
		if math.Float64bits(va) != math.Float64bits(vb) {
			t.Errorf("%s: value %q = %v (workers=1) vs %v (workers=8): not bit-identical",
				id, k, va, vb)
		}
	}
	if a.Text != b.Text {
		t.Errorf("%s: report text differs across worker counts", id)
	}
}

// TestFig6DeterministicAcrossWorkers pins the isolated-cell refactor:
// every Figure 6 config quantizes its own pipeline clone, so the FID
// grid must be bit-identical serially and at full parallelism.
func TestFig6DeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full diffusion grid")
	}
	serial := runWithWorkers(t, "fig6", 1)
	parallel := runWithWorkers(t, "fig6", 8)
	requireIdenticalValues(t, "fig6", serial, parallel)
	if len(serial.Values) == 0 {
		t.Fatal("fig6 produced no values")
	}
}

// TestTable4DeterministicAcrossWorkers does the same for the Bloom
// generation study: per-cell LM clones, any worker count, identical
// beam-search metrics.
func TestTable4DeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full generation grid")
	}
	serial := runWithWorkers(t, "table4", 1)
	parallel := runWithWorkers(t, "table4", 8)
	requireIdenticalValues(t, "table4", serial, parallel)
	if len(serial.Values) == 0 {
		t.Fatal("table4 produced no values")
	}
}

// TestAblationsDeterministicAcrossWorkers covers the smaller grids that
// moved onto the sweep pool in the same refactor.
func TestAblationsDeterministicAcrossWorkers(t *testing.T) {
	for _, id := range []string{"fig8", "ablation-wgt", "ablation-calib"} {
		serial := runWithWorkers(t, id, 1)
		parallel := runWithWorkers(t, id, 8)
		requireIdenticalValues(t, id, serial, parallel)
	}
}
