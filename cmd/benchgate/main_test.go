package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: fp8quant/internal/tensor/kernels
BenchmarkMatmulT/16x256x256-8   	   10000	    107024 ns/op	2755.58 MB/s	      64 B/op	       2 allocs/op
BenchmarkBatchEncode-8          	     270	   4437631 ns/op	 945.17 MB/s	       0 B/op	       0 allocs/op
BenchmarkNoThroughput-8         	     100	      5000 ns/op	     128 B/op	       3 allocs/op
PASS
ok  	fp8quant/internal/tensor/kernels	9.157s
`

func intp(v int64) *int64 { return &v }

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d results, want 3: %v", len(got), got)
	}
	r := got[0]
	if r.Name != "BenchmarkMatmulT/16x256x256" {
		t.Errorf("name = %q (worker-count suffix must be stripped)", r.Name)
	}
	if r.NsPerOp != 107024 {
		t.Errorf("ns/op = %v, want 107024", r.NsPerOp)
	}
	if r.MBPerS == nil || *r.MBPerS != 2755.58 {
		t.Errorf("MB/s = %v, want 2755.58", r.MBPerS)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 64 || r.AllocsPerOp == nil || *r.AllocsPerOp != 2 {
		t.Errorf("benchmem counters = %v/%v, want 64/2", r.BytesPerOp, r.AllocsPerOp)
	}
	if got[2].MBPerS != nil {
		t.Errorf("benchmark without MB/s parsed throughput %v", *got[2].MBPerS)
	}
}

func TestReadEntriesLegacyConversion(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	legacy := `[
  {"name": "BenchmarkMatmulT/16x256x256", "ns_per_op": 107024, "mb_per_s": 2755.58},
  {"name": "BenchmarkBatchEncode", "ns_per_op": 4437631, "mb_per_s": 945.17}
]`
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := readEntries(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Date != "legacy" || len(entries[0].Results) != 2 {
		t.Fatalf("legacy conversion = %+v, want one legacy entry with 2 results", entries)
	}
	if entries[0].Results[0].AllocsPerOp != nil {
		t.Error("legacy results must carry no alloc counters")
	}
}

func TestReadEntriesMissingFile(t *testing.T) {
	entries, err := readEntries(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil || entries != nil {
		t.Fatalf("missing file: entries=%v err=%v, want nil/nil", entries, err)
	}
}

func TestGate(t *testing.T) {
	baseline := []Entry{
		{Date: "legacy", Results: []Result{{Name: "BenchmarkA", NsPerOp: 1}}},
		{Date: "2026-08-08", Results: []Result{
			{Name: "BenchmarkA", NsPerOp: 100, BytesPerOp: intp(100000), AllocsPerOp: intp(10)},
			{Name: "BenchmarkB", NsPerOp: 100, BytesPerOp: intp(0), AllocsPerOp: intp(0)},
		}},
	}
	cases := []struct {
		name     string
		cur      []Result
		failures int
	}{
		{"identical", []Result{
			{Name: "BenchmarkA", BytesPerOp: intp(100000), AllocsPerOp: intp(10)},
			{Name: "BenchmarkB", BytesPerOp: intp(0), AllocsPerOp: intp(0)},
		}, 0},
		{"within tolerance", []Result{
			{Name: "BenchmarkA", BytesPerOp: intp(125000), AllocsPerOp: intp(11)},
			{Name: "BenchmarkB", BytesPerOp: intp(4096), AllocsPerOp: intp(2)},
		}, 0},
		{"wall clock ignored", []Result{
			{Name: "BenchmarkA", NsPerOp: 1e9, BytesPerOp: intp(100000), AllocsPerOp: intp(10)},
		}, 0},
		{"alloc regression", []Result{
			{Name: "BenchmarkA", BytesPerOp: intp(100000), AllocsPerOp: intp(13)},
		}, 1},
		{"bytes regression", []Result{
			{Name: "BenchmarkA", BytesPerOp: intp(125001), AllocsPerOp: intp(10)},
			{Name: "BenchmarkB", BytesPerOp: intp(4097), AllocsPerOp: intp(0)},
		}, 2},
		{"new benchmark skipped", []Result{
			{Name: "BenchmarkNew", BytesPerOp: intp(1 << 30), AllocsPerOp: intp(1 << 20)},
		}, 0},
	}
	for _, tc := range cases {
		var sb strings.Builder
		if got := gate(baseline, tc.cur, "sse", &sb); got != tc.failures {
			t.Errorf("%s: %d failures, want %d\n%s", tc.name, got, tc.failures, sb.String())
		}
	}
}

func TestGateVariantSelection(t *testing.T) {
	entries := []Entry{
		// Legacy entry with no recorded variant: compatible with any tier.
		{Date: "2026-08-01", Results: []Result{
			{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: intp(3)},
		}},
		// Later avx2 entry must be skipped when gating an sse run.
		{Date: "2026-08-08", KernelVariant: "avx2", Results: []Result{
			{Name: "BenchmarkA", NsPerOp: 50, AllocsPerOp: intp(0)},
		}},
	}
	cur := []Result{{Name: "BenchmarkA", AllocsPerOp: intp(3)}}

	var sb strings.Builder
	if got := gate(entries, cur, "sse", &sb); got != 0 {
		t.Errorf("sse gate = %d failures, want 0 (avx2 entry must be skipped)\n%s", got, sb.String())
	}
	if !strings.Contains(sb.String(), "2026-08-01") {
		t.Errorf("sse gate should use the variant-less 2026-08-01 baseline, got:\n%s", sb.String())
	}

	sb.Reset()
	if got := gate(entries, cur, "avx2", &sb); got != 1 {
		t.Errorf("avx2 gate = %d failures, want 1 (3 allocs vs the avx2 entry's 0)\n%s", got, sb.String())
	}

	// No compatible baseline at all: vacuous pass naming the variant.
	sb.Reset()
	only := []Entry{{Date: "2026-08-08", KernelVariant: "avx2", Results: []Result{
		{Name: "BenchmarkA", AllocsPerOp: intp(0)},
	}}}
	if got := gate(only, cur, "generic", &sb); got != 0 {
		t.Errorf("generic gate = %d failures, want 0 (vacuous)", got)
	}
	if !strings.Contains(sb.String(), `"generic"`) {
		t.Errorf("vacuous-pass message should name the variant, got %q", sb.String())
	}
}

func TestSpark(t *testing.T) {
	cases := []struct {
		name string
		vals []float64
		want string
	}{
		{"monotone speedup", []float64{800, 400, 100}, "#~."},
		{"flat", []float64{100, 100, 100}, "---"},
		{"absent entries blank", []float64{0, 200, 100}, " #."},
		{"single point", []float64{42}, "-"},
	}
	for _, tc := range cases {
		if got := spark(tc.vals); got != tc.want {
			t.Errorf("%s: spark(%v) = %q, want %q", tc.name, tc.vals, got, tc.want)
		}
	}
}

func TestTrend(t *testing.T) {
	entries := []Entry{
		{Date: "legacy", Results: []Result{{Name: "BenchmarkA", NsPerOp: 200}}},
		{Date: "2026-08-08", Results: []Result{
			{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: intp(0)},
			{Name: "BenchmarkNew", NsPerOp: 50},
		}},
	}
	var sb strings.Builder
	trend(entries, "bench.json", &sb)
	out := sb.String()
	for _, want := range []string{
		"2 entries, legacy → 2026-08-08",
		"| benchmark | first ns/op | latest ns/op | change | allocs/op | trend |",
		"| BenchmarkA | 200 | 100 | -50.0% | 0 | `#.` |",
		// Absent in the first entry: first ns/op falls back to the
		// earliest recorded value, sparkline leads with a blank.
		"| BenchmarkNew | 50 | 50 | +0.0% | - | ` -` |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trend output missing %q\ngot:\n%s", want, out)
		}
	}
}

func TestTrendEmptyHistory(t *testing.T) {
	var sb strings.Builder
	trend(nil, "bench.json", &sb)
	if !strings.Contains(sb.String(), "nothing to trend") {
		t.Errorf("empty-history trend output = %q", sb.String())
	}
}

func TestGateNoAllocBaseline(t *testing.T) {
	entries := []Entry{{Date: "legacy", Results: []Result{{Name: "BenchmarkA", NsPerOp: 1}}}}
	var sb strings.Builder
	if got := gate(entries, []Result{{Name: "BenchmarkA", AllocsPerOp: intp(99)}}, "sse", &sb); got != 0 {
		t.Errorf("gate without alloc baseline = %d failures, want 0 (vacuous pass)", got)
	}
	if !strings.Contains(sb.String(), "nothing to gate") {
		t.Errorf("output %q should state the gate is vacuous", sb.String())
	}
}
