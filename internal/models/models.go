// Package models is the reproduction's model zoo: 75 scaled-down but
// structurally faithful network architectures spanning the paper's
// evaluation domains (image classification/segmentation/detection,
// text classification, generative language modeling, machine
// translation, summarization, speech, recommendation, diffusion).
//
// Checkpoints are unavailable offline, so weights are synthesized with
// per-channel-varied fan-in scaling (normal, precision-bound — Figure 3
// right panel) and NLP models inject the LayerNorm-amplified sparse
// channel outliers that make INT8 activation quantization fail
// (Figure 3 left panel, Section 2). Per DESIGN.md the evaluation is
// teacher-is-truth: the FP32 network defines the labels.
package models

import (
	"fmt"
	"math"
	"sort"

	"fp8quant/internal/data"
	"fp8quant/internal/nn"
	"fp8quant/internal/tensor"
)

// Domain buckets models the way Table 2 groups pass rates.
type Domain int

// Evaluation domains.
const (
	CV Domain = iota
	NLP
	Audio
	RecSys
)

// String names the domain.
func (d Domain) String() string {
	switch d {
	case CV:
		return "CV"
	case NLP:
		return "NLP"
	case Audio:
		return "Audio"
	case RecSys:
		return "RecSys"
	}
	return "?"
}

// Info is the registry metadata of a model.
type Info struct {
	// Name matches the paper's naming (lower-case family_variant).
	Name string
	// Domain is the Table 2 bucket.
	Domain Domain
	// Task names the simulated dataset/task.
	Task string
	// SizeMB is the simulated checkpoint size of the real model, used
	// for the Figure 5 size buckets.
	SizeMB float64
	// IsCNN enables the first/last-operator FP32 exception.
	IsCNN bool
	// HasBN/HasLN describe normalization content (Figure 7 selection,
	// extended-scheme coverage).
	HasBN, HasLN bool
	// OutlierRatio is the magnitude ratio of the model's activation
	// outlier channels versus bulk activations (0 = no outliers).
	// NLP transformers exhibit 20-60x; a few pathological models
	// (Funnel-style) exceed 300x.
	OutlierRatio float64
}

// SizeClass returns the Figure 5 bucket for the model's size:
// tiny (<=32MB), small (32-384], medium (384-512], large (>512).
func (i Info) SizeClass() string {
	switch {
	case i.SizeMB <= 32:
		return "tiny"
	case i.SizeMB <= 384:
		return "small"
	case i.SizeMB <= 512:
		return "medium"
	default:
		return "large"
	}
}

// EvalKind selects how teacher-is-truth accuracy is measured.
type EvalKind int

// Evaluation kinds: Argmax measures prediction agreement with the FP32
// reference (classification tasks); Score measures Pearson correlation
// of raw outputs (regression/generation-quality tasks like STS-B,
// DLRM CTR and denoiser outputs).
const (
	Argmax EvalKind = iota
	Score
)

// Network is a built model: the module tree, its forward function and
// its data source. It implements quant.Model.
type Network struct {
	Meta Info
	root nn.Module
	fwd  func(s data.Sample) *tensor.Tensor
	// Data generates calibration and evaluation batches.
	Data data.Dataset
	// Classes is the logit dimensionality of the output.
	Classes int
	// Eval selects the agreement metric.
	Eval EvalKind
	// plannable marks networks whose forward is a pure function of the
	// dense input s.X through an ArenaForwarder root (CV/ViT/audio
	// families); token- and bag-driven models (GPT, DLRM) are not.
	plannable bool
	// plan, when installed, routes Run through a compiled execution
	// plan (preallocated scratch arenas, byte-identical math).
	plan *nn.Plan
}

// Root implements quant.Model.
func (n *Network) Root() nn.Module { return n.root }

// IsCNN implements quant.Model.
func (n *Network) IsCNN() bool { return n.Meta.IsCNN }

// Plannable reports whether the network's forward can run under a
// compiled execution plan.
func (n *Network) Plannable() bool { return n.plannable }

// InstallPlan routes Run through p (binding p to the network's root);
// installing nil restores the unplanned path. Outputs of a planned Run
// are valid only until the next Run — Clone to retain.
func (n *Network) InstallPlan(p *nn.Plan) {
	if p != nil {
		if !n.plannable {
			panic(fmt.Sprintf("models: %s is not plannable", n.Meta.Name))
		}
		p.Bind(n.root)
	}
	n.plan = p
}

// Run implements quant.Model.
func (n *Network) Run(s data.Sample) *tensor.Tensor {
	if n.plan != nil && s.X != nil {
		return n.plan.Forward(s.X)
	}
	return n.fwd(s)
}

// Builder constructs a Network deterministically from a seed.
type Builder func(seed uint64) *Network

// registry maps model names to builders, populated by init() in the
// per-family files.
var registry = map[string]Builder{}
var registryInfo = map[string]Info{}

// register adds a model to the zoo.
func register(info Info, b Builder) {
	if _, dup := registry[info.Name]; dup {
		panic(fmt.Sprintf("models: duplicate registration %q", info.Name))
	}
	registry[info.Name] = b
	registryInfo[info.Name] = info
}

// Names returns all registered model names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// NamesByDomain returns the sorted names in a domain.
func NamesByDomain(d Domain) []string {
	var out []string
	for _, n := range Names() {
		if registryInfo[n].Domain == d {
			out = append(out, n)
		}
	}
	return out
}

// InfoFor returns the registry metadata for name.
func InfoFor(name string) (Info, bool) {
	i, ok := registryInfo[name]
	return i, ok
}

// Build constructs the named model with a deterministic per-name seed.
func Build(name string) (*Network, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("models: unknown model %q", name)
	}
	return b(nameSeed(name)), nil
}

// WarmBatchNorms replaces randomly-initialized BatchNorm statistics
// with the true FP32 data statistics by running calibration batches
// through the freshly-built network — the synthetic stand-in for
// "trained" running stats. Without this the FP32 reference would be
// inconsistent with its own data and BatchNorm re-calibration (Figure
// 7) would have nothing meaningful to restore.
func WarmBatchNorms(n *Network, batches int) {
	var bns []*nn.BatchNorm2d
	nn.Walk(n.root, func(_ string, m nn.Module) {
		if bn, ok := m.(*nn.BatchNorm2d); ok {
			bns = append(bns, bn)
		}
	})
	if len(bns) == 0 {
		return
	}
	// One estimation cycle updates each BN from data flowing through
	// the *previous* cycle's statistics, so stats go stale for
	// downstream layers whenever upstream layers change; iterate until
	// the statistics reach a fixed point (bounded by a generous cap).
	prev := snapshotBN(bns)
	cap := 2*len(bns) + 8
	if cap > 40 {
		cap = 40
	}
	for cycle := 0; cycle < cap; cycle++ {
		for _, bn := range bns {
			bn.StartCalibration()
		}
		for i := 0; i < batches; i++ {
			n.Run(n.Data.Batch(i % n.Data.Batches()))
		}
		for _, bn := range bns {
			bn.FinishCalibration()
		}
		cur := snapshotBN(bns)
		if bnConverged(prev, cur, 0.01) {
			return
		}
		prev = cur
	}
}

func snapshotBN(bns []*nn.BatchNorm2d) [][]float32 {
	var out [][]float32
	for _, bn := range bns {
		s := make([]float32, 0, 2*bn.C)
		s = append(s, bn.Mean...)
		s = append(s, bn.Var...)
		out = append(out, s)
	}
	return out
}

func bnConverged(a, b [][]float32, tol float64) bool {
	for i := range a {
		for j := range a[i] {
			d := math.Abs(float64(a[i][j] - b[i][j]))
			scale := math.Abs(float64(a[i][j])) + 1e-3
			if d/scale > tol {
				return false
			}
		}
	}
	return true
}

// nameSeed derives a stable seed from the model name (FNV-1a).
func nameSeed(name string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// ---- weight initialization helpers ----

// initLinear fills a Linear with fan-in-scaled normal weights whose
// per-output-channel std varies (log-uniform 0.5x-2x), making
// per-channel weight scaling consequential as in real checkpoints.
func initLinear(l *nn.Linear, r *tensor.RNG) {
	base := kaiming(l.In)
	for o := 0; o < l.Out; o++ {
		std := base * chanSpread(r)
		for i := 0; i < l.In; i++ {
			l.W.Data[o*l.In+i] = float32(std * r.Norm())
		}
		l.B[o] = float32(0.01 * r.Norm())
	}
}

// initConv fills a Conv2d similarly (per-output-filter spread).
func initConv(c *nn.Conv2d, r *tensor.RNG) {
	fanIn := (c.InC / c.Groups) * c.K * c.K
	base := kaiming(fanIn)
	per := c.W.Len() / c.OutC
	for o := 0; o < c.OutC; o++ {
		std := base * chanSpread(r)
		for i := 0; i < per; i++ {
			c.W.Data[o*per+i] = float32(std * r.Norm())
		}
		c.B[o] = float32(0.01 * r.Norm())
	}
}

// initConv1d fills a Conv1d.
func initConv1d(c *nn.Conv1d, r *tensor.RNG) {
	base := kaiming(c.InC * c.K)
	per := c.W.Len() / c.OutC
	for o := 0; o < c.OutC; o++ {
		std := base * chanSpread(r)
		for i := 0; i < per; i++ {
			c.W.Data[o*per+i] = float32(std * r.Norm())
		}
		c.B[o] = float32(0.01 * r.Norm())
	}
}

// initEmbedding fills an embedding table with N(0, 0.5) rows — wider
// than projection weights, as in trained token embeddings.
func initEmbedding(w *tensor.Tensor, r *tensor.RNG) {
	w.FillNormal(r, 0, 0.5)
}

// kaiming returns sqrt(2/fanIn).
func kaiming(fanIn int) float64 {
	if fanIn <= 0 {
		fanIn = 1
	}
	return math.Sqrt(2 / float64(fanIn))
}

// chanSpread draws a log-uniform factor in [0.5, 2].
func chanSpread(r *tensor.RNG) float64 {
	return math.Exp2(r.Uniform(-1, 1))
}

// spikeGammas plants sparse outlier channels in a LayerNorm's gamma,
// reproducing the LayerNorm-amplified activation outliers of
// transformer models (Wei et al. 2022): nSpikes channels get |gamma| =
// ratio instead of ~1.
func spikeGammas(gamma []float32, r *tensor.RNG, nSpikes int, ratio float64) {
	for i := range gamma {
		gamma[i] = float32(1 + 0.1*r.Norm())
	}
	for k := 0; k < nSpikes; k++ {
		j := r.Intn(len(gamma))
		s := ratio * (0.8 + 0.4*r.Float64())
		if r.Float64() < 0.5 {
			s = -s
		}
		gamma[j] = float32(s)
	}
}
