package nn

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"fp8quant/internal/tensor"
	"fp8quant/internal/tensor/kernels"
)

// These differential tests pin every layer routed through the blocked
// kernels (Linear, Conv2d im2col, BatchMatMul) to its scalar oracle,
// asserting exact bit equality over randomized shapes that exercise
// the tile remainders, grouped/strided/padded convolutions and rank>2
// linear inputs.

func fillTensor(t *tensor.Tensor, rng *tensor.RNG, scale float64) {
	for i := range t.Data {
		v := rng.Norm() * scale
		// A few huge and tiny magnitudes so any reassociation of the
		// reduction would change the rounding and fail the comparison.
		switch i % 11 {
		case 0:
			v *= 1e5
		case 7:
			v *= 1e-5
		}
		t.Data[i] = float32(v)
	}
}

func requireBitsEqual(t *testing.T, got, want []float32, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", what, len(got), len(want))
	}
	for i := range got {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s: first bit difference at %d: %x vs %x (%g vs %g)",
				what, i, math.Float32bits(got[i]), math.Float32bits(want[i]), got[i], want[i])
		}
	}
}

// linearOracle computes Linear.Forward's result with the original
// scalar loop: matmulT then a separate bias pass.
func linearOracle(l *Linear, x *tensor.Tensor) []float32 {
	rows, _ := flatten2D(x)
	y := make([]float32, rows*l.Out)
	matmulT(y, x.Data, l.W.Data, rows, l.In, l.Out)
	if l.B != nil {
		for r := 0; r < rows; r++ {
			row := y[r*l.Out : (r+1)*l.Out]
			for j := range row {
				row[j] += l.B[j]
			}
		}
	}
	return y
}

func TestLinearForwardMatchesOracle(t *testing.T) {
	rng := tensor.NewRNG(0x11EA)
	cases := []struct {
		shape []int
		out   int
		bias  bool
	}{
		{[]int{1, 1}, 1, true},
		{[]int{3, 7}, 5, true},
		{[]int{16, 256}, 256, true},
		{[]int{5, 33}, 17, false},
		{[]int{2, 3, 31}, 13, true},   // rank-3 input
		{[]int{2, 2, 4, 9}, 11, true}, // rank-4 input
		{[]int{7, 129}, 65, true},     // both tile remainders
	}
	for _, tc := range cases {
		in := tc.shape[len(tc.shape)-1]
		l := NewLinear(in, tc.out)
		fillTensor(l.W, rng, 0.2)
		if tc.bias {
			for i := range l.B {
				l.B[i] = float32(rng.Norm())
			}
		} else {
			l.B = nil
		}
		x := tensor.New(tc.shape...)
		fillTensor(x, rng, 1)
		got := l.Forward(x)
		want := linearOracle(l, x)
		requireBitsEqual(t, got.Data, want, fmt.Sprintf("Linear %v->%d bias=%v", tc.shape, tc.out, tc.bias))
	}
}

func TestConv2dForwardMatchesDirectOracle(t *testing.T) {
	rng := tensor.NewRNG(0xC0F)
	cases := []struct {
		inC, outC, k, stride, pad, groups int
		n, h, w                           int
	}{
		{3, 8, 3, 1, 1, 1, 2, 9, 9},
		{4, 4, 3, 1, 1, 4, 1, 8, 10},   // depthwise
		{8, 12, 3, 2, 1, 4, 2, 11, 13}, // grouped + strided, odd sizes
		{2, 5, 5, 1, 2, 1, 1, 7, 7},    // large kernel, pad 2
		{6, 6, 1, 1, 0, 1, 3, 5, 5},    // 1x1, no pad
		{2, 3, 3, 3, 1, 1, 1, 10, 10},  // stride > pad: interior col 0 empty
		{1, 1, 4, 2, 2, 1, 1, 6, 8},    // even kernel, pad 2
		{2, 2, 3, 1, 1, 1, 1, 3, 3},    // 3x3 output: single interior pixel
	}
	for _, tc := range cases {
		c := NewConv2d(tc.inC, tc.outC, tc.k, tc.stride, tc.pad, tc.groups)
		fillTensor(c.W, rng, 0.3)
		for i := range c.B {
			c.B[i] = float32(rng.Norm())
		}
		x := tensor.New(tc.n, tc.inC, tc.h, tc.w)
		fillTensor(x, rng, 1)
		got := c.Forward(x)
		oh, ow := c.OutSize(tc.h), c.OutSize(tc.w)
		want := tensor.New(tc.n, tc.outC, oh, ow)
		c.forwardDirect(want, x, tc.n, tc.h, tc.w, oh, ow)
		requireBitsEqual(t, got.Data, want.Data,
			fmt.Sprintf("Conv2d %+v", tc))
	}
}

// TestConv2dInfWeightBitIdentical guards the reason the border ring
// avoids zero-filled im2col: with an Inf weight (IEEE formats overflow
// to Inf under fake-quant), a zero-padded patch would turn skip-on-pad
// into 0·Inf = NaN.
func TestConv2dInfWeightBitIdentical(t *testing.T) {
	rng := tensor.NewRNG(0x1FF)
	c := NewConv2d(2, 3, 3, 1, 1, 1)
	fillTensor(c.W, rng, 0.3)
	c.W.Data[4] = float32(math.Inf(1)) // center tap of channel 0
	x := tensor.New(1, 2, 6, 6)
	fillTensor(x, rng, 1)
	got := c.Forward(x)
	want := tensor.New(1, 3, 6, 6)
	c.forwardDirect(want, x, 1, 6, 6, 6, 6)
	requireBitsEqual(t, got.Data, want.Data, "Conv2d with Inf weight")
}

// batchMatMulOracle is the pre-kernel BatchMatMul loop pair, built on
// the active variant's scalar multiply-accumulate (each yi[j] is a
// single accumulator updated in ascending-k order).
func batchMatMulOracle(a, b *tensor.Tensor, transB bool) []float32 {
	madd := kernels.RefMadd(kernels.Active())
	M := a.Shape[a.Rank()-2]
	K := a.Shape[a.Rank()-1]
	var N int
	if transB {
		N = b.Shape[b.Rank()-2]
	} else {
		N = b.Shape[b.Rank()-1]
	}
	batch := a.Len() / (M * K)
	y := make([]float32, batch*M*N)
	for bi := 0; bi < batch; bi++ {
		am := a.Data[bi*M*K : (bi+1)*M*K]
		bm := b.Data[bi*K*N : (bi+1)*K*N]
		ym := y[bi*M*N : (bi+1)*M*N]
		if transB {
			matmulT(ym, am, bm, M, K, N)
		} else {
			for i := 0; i < M; i++ {
				ai := am[i*K : (i+1)*K]
				yi := ym[i*N : (i+1)*N]
				for k := 0; k < K; k++ {
					av := ai[k]
					bk := bm[k*N : (k+1)*N]
					for j := range yi {
						yi[j] = madd(yi[j], av, bk[j])
					}
				}
			}
		}
	}
	return y
}

func TestBatchMatMulMatchesOracle(t *testing.T) {
	rng := tensor.NewRNG(0xB3B)
	cases := []struct {
		aShape, bShape []int
		transB         bool
	}{
		{[]int{3, 5}, []int{5, 7}, false},              // single matrix
		{[]int{3, 5}, []int{7, 5}, true},               // single, transposed
		{[]int{2, 4, 9, 16}, []int{2, 4, 9, 16}, true}, // QKᵀ shape
		{[]int{2, 4, 9, 9}, []int{2, 4, 9, 16}, false}, // PV shape
		{[]int{5, 13, 31}, []int{5, 31, 17}, false},    // odd extents
	}
	for _, tc := range cases {
		a := tensor.New(tc.aShape...)
		b := tensor.New(tc.bShape...)
		fillTensor(a, rng, 1)
		fillTensor(b, rng, 0.5)
		got := BatchMatMul(a, b, tc.transB)
		want := batchMatMulOracle(a, b, tc.transB)
		requireBitsEqual(t, got.Data, want,
			fmt.Sprintf("BatchMatMul %v x %v transB=%v", tc.aShape, tc.bShape, tc.transB))
	}
}

// TestLayerKernelsDeterministicAcrossWorkers reruns the three routed
// layers under different GOMAXPROCS values (which drives the worker
// pool's chunking) and requires identical bytes.
func TestLayerKernelsDeterministicAcrossWorkers(t *testing.T) {
	rng := tensor.NewRNG(0xDE7)
	l := NewLinear(96, 53)
	fillTensor(l.W, rng, 0.2)
	xl := tensor.New(37, 96)
	fillTensor(xl, rng, 1)
	cv := NewConv2d(8, 12, 3, 1, 1, 2)
	fillTensor(cv.W, rng, 0.3)
	xc := tensor.New(2, 8, 13, 13)
	fillTensor(xc, rng, 1)
	ba := tensor.New(6, 9, 21)
	bb := tensor.New(6, 21, 9)
	fillTensor(ba, rng, 1)
	fillTensor(bb, rng, 1)

	type result struct{ lin, conv, bmm []float32 }
	runAll := func() result {
		return result{
			lin:  l.Forward(xl).Data,
			conv: cv.Forward(xc).Data,
			bmm:  BatchMatMul(ba, bb, false).Data,
		}
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	runtime.GOMAXPROCS(1)
	ref := runAll()
	for _, procs := range []int{2, 8} {
		runtime.GOMAXPROCS(procs)
		got := runAll()
		requireBitsEqual(t, got.lin, ref.lin, fmt.Sprintf("Linear GOMAXPROCS=%d", procs))
		requireBitsEqual(t, got.conv, ref.conv, fmt.Sprintf("Conv2d GOMAXPROCS=%d", procs))
		requireBitsEqual(t, got.bmm, ref.bmm, fmt.Sprintf("BatchMatMul GOMAXPROCS=%d", procs))
	}
}

// TestPool2dMatchesReference pins the row-sliced pooling loops to the
// original per-element indexing.
func TestPool2dMatchesReference(t *testing.T) {
	rng := tensor.NewRNG(0x901)
	x := tensor.New(2, 3, 11, 13)
	fillTensor(x, rng, 1)
	for _, k := range []int{2, 3} {
		for _, stride := range []int{1, 2, 3} {
			gotMax := (&MaxPool2d{K: k, Stride: stride}).Forward(x)
			gotAvg := (&AvgPool2d{K: k, Stride: stride}).Forward(x)
			wantMax, wantAvg := pool2dRef(x, k, stride)
			requireBitsEqual(t, gotMax.Data, wantMax.Data, fmt.Sprintf("MaxPool2d k=%d s=%d", k, stride))
			requireBitsEqual(t, gotAvg.Data, wantAvg.Data, fmt.Sprintf("AvgPool2d k=%d s=%d", k, stride))
		}
	}
}

// pool2dRef is the original pool2d with per-element 4-D offsets.
func pool2dRef(x *tensor.Tensor, k, stride int) (maxT, avgT *tensor.Tensor) {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh := (h-k)/stride + 1
	ow := (w-k)/stride + 1
	maxT = tensor.New(n, c, oh, ow)
	avgT = tensor.New(n, c, oh, ow)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			plane := x.Data[(ni*c+ci)*h*w:]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					mx := plane[(oy*stride)*w+ox*stride]
					var sum float32
					for ky := 0; ky < k; ky++ {
						for kx := 0; kx < k; kx++ {
							v := plane[(oy*stride+ky)*w+(ox*stride+kx)]
							if v > mx {
								mx = v
							}
							sum += v
						}
					}
					maxT.Data[((ni*c+ci)*oh+oy)*ow+ox] = mx
					avgT.Data[((ni*c+ci)*oh+oy)*ow+ox] = sum / float32(k*k)
				}
			}
		}
	}
	return
}
