package harness

import (
	"testing"

	"fp8quant/internal/evalx"
	"fp8quant/internal/faultline"
	"fp8quant/internal/resultstore"
)

// armHarness arms a single rule on one harness failpoint and disarms on
// cleanup.
func armHarness(t *testing.T, pattern string, kind faultline.Kind) {
	t.Helper()
	err := faultline.Arm(faultline.Plan{Rules: []faultline.Rule{
		{Pattern: pattern, Kind: kind, Max: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultline.Disarm)
}

// TestPersistFailpointDegradesToWarning: an injected persist fault must
// not change the returned result or poison the memo — the cell is
// served, the store write is skipped with a warning, and once the
// fault clears a recompute persists normally.
func TestPersistFailpointDegradesToWarning(t *testing.T) {
	withCleanCache(t)
	s, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	SetStore(s)
	armHarness(t, "harness.cell.persist", faultline.KindErr)

	computes := 0
	k := cellTestKey("fault-persist")
	want := cellTestResult("fault-persist")
	compute := func() evalx.Result { computes++; return want }
	if r := cachedCell(k, compute); r.QAcc != want.QAcc {
		t.Fatalf("faulted persist changed the result: %+v", r)
	}
	if _, ok := s.LoadCell(k); ok {
		t.Fatal("cell persisted despite the injected persist fault")
	}
	// The memo still serves it within the process.
	if cachedCell(k, compute); computes != 1 {
		t.Fatalf("memo did not serve the un-persisted cell (computes = %d)", computes)
	}
	// A new "process" recomputes (the persist was lost — that is the
	// injected failure) and, with the budget spent, persists this time.
	ClearMemo()
	if cachedCell(k, compute); computes != 2 {
		t.Fatalf("recompute after lost persist: computes = %d, want 2", computes)
	}
	if _, ok := s.LoadCell(k); !ok {
		t.Fatal("cell not persisted after the fault budget was spent")
	}
}

// TestComputeFailpointNeverChangesValues: the compute-side failpoint
// discards injected errors — a fault there may delay or kill a run,
// never alter what a cell evaluates to.
func TestComputeFailpointNeverChangesValues(t *testing.T) {
	withCleanCache(t)
	armHarness(t, "harness.cell.compute", faultline.KindErr)
	k := cellTestKey("fault-compute")
	want := cellTestResult("fault-compute")
	r := cachedCell(k, func() evalx.Result { return want })
	if r.Err != "" || r.QAcc != want.QAcc {
		t.Fatalf("injected compute error leaked into the result: %+v", r)
	}
}
