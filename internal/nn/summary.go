package nn

import (
	"fmt"
	"sort"
	"strings"
)

// Summary describes a module tree: parameter counts and per-kind
// operator census — the information quantization coverage reports and
// the model-zoo listing are built from.
type Summary struct {
	// Params is the total number of weight parameters (biases
	// excluded, matching the quantized-parameter count).
	Params int
	// OpCounts maps operator kind to occurrence count.
	OpCounts map[string]int
	// QuantizableOps counts modules that expose a QState.
	QuantizableOps int
}

// Summarize walks m and collects its Summary.
func Summarize(m Module) Summary {
	s := Summary{OpCounts: map[string]int{}}
	Walk(m, func(_ string, mod Module) {
		s.OpCounts[mod.Kind()]++
		if p, ok := mod.(Parametric); ok {
			s.Params += p.WeightTensor().Len()
		}
		if _, ok := mod.(Quantizable); ok {
			s.QuantizableOps++
		}
	})
	return s
}

// String renders the summary as a compact single-line description.
func (s Summary) String() string {
	kinds := make([]string, 0, len(s.OpCounts))
	for k := range s.OpCounts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	parts := make([]string, 0, len(kinds))
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%s×%d", k, s.OpCounts[k]))
	}
	return fmt.Sprintf("params=%d quantizable=%d ops=[%s]",
		s.Params, s.QuantizableOps, strings.Join(parts, " "))
}
