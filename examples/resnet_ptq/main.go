// resnet_ptq: post-training FP8 quantization of a convolutional model
// with the paper's CV recipe stack — BatchNorm re-calibration with
// augmented calibration data, first/last operator exclusion, and the
// E3M4 format the paper recommends for vision.
//
//	go run ./examples/resnet_ptq
package main

import (
	"fmt"
	"log"

	"fp8quant/internal/data"
	"fp8quant/internal/evalx"
	"fp8quant/internal/models"
	"fp8quant/internal/quant"
)

func main() {
	net, err := models.Build("resnet50")
	if err != nil {
		log.Fatal(err)
	}
	ref := evalx.ComputeReference(net)

	// Calibration data with training-style augmentation — the Figure 7
	// recommendation (3K samples + training transform).
	calib := &data.ImageDataset{
		N: 16, C: 3, H: 12, W: 12, NumBatches: 187, // ≈3000 samples
		Seed:      42,
		Transform: data.AugmentTraining,
	}

	for _, c := range []struct {
		label  string
		recipe quant.Recipe
	}{
		{"E3M4 static, no BN calibration", quant.StandardFP8(quant.E3M4)},
		{"E3M4 static + BN calibration", quant.StandardFP8(quant.E3M4).WithBNCalib(32)},
		{"E3M4 static + BN calib + first/last", quant.StandardFP8(quant.E3M4).WithBNCalib(32).WithFirstLast()},
	} {
		r := c.recipe
		r.CalibBatches = evalx.CalibBatches
		h := quant.Quantize(net, calib, r)
		acc := evalx.AccuracyAgainst(net, ref)
		h.Release()
		fmt.Printf("%-38s accuracy=%.4f loss=%5.2f%%\n",
			c.label, acc, data.RelativeLoss(1, acc)*100)
	}
}
