package fp8

import (
	"math"
	"testing"

	"fp8quant/internal/tensor"
)

// testFormats are the codec-eligible formats the equivalence suite
// pins: the three paper formats plus generic and bias-shifted variants.
func testFormats(t *testing.T) []Format {
	t.Helper()
	fs := []Format{E5M2, E4M3, E3M4}
	if g, err := New(2, 5, false); err == nil {
		fs = append(fs, g)
	}
	if g, err := New(5, 2, false); err == nil {
		fs = append(fs, g) // E5M2 grid with extended specials
	}
	fs = append(fs, E4M3.WithBias(11), E3M4.WithBias(1))
	return fs
}

// sameFloat32 compares bit-for-bit modulo NaN payloads.
func sameFloat32(a, b float32) bool {
	if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) {
		return math.IsNaN(float64(a)) && math.IsNaN(float64(b))
	}
	return math.Float32bits(a) == math.Float32bits(b)
}

// TestDecodeLUTExhaustive checks all 256 codes of every format: the
// codec table must match the reference Decode exactly (every
// representable value fits float32, so float32 storage loses nothing).
func TestDecodeLUTExhaustive(t *testing.T) {
	for _, f := range testFormats(t) {
		c := f.Codec()
		for b := 0; b < 256; b++ {
			got := c.Decode(uint8(b))
			want := f.Decode(uint8(b))
			if !sameFloat32(got, float32(want)) {
				t.Errorf("%s: Decode(%#02x) LUT %v != ref %v", f, b, got, want)
			}
			if !math.IsNaN(want) && float64(got) != want {
				t.Errorf("%s: Decode(%#02x) loses precision in float32: %v vs %v", f, b, got, want)
			}
		}
	}
}

// checkEncode asserts fast == reference for one input.
func checkEncode(t *testing.T, f Format, c *Codec, x float32) {
	t.Helper()
	got, want := c.Encode(x), f.Encode(float64(x))
	if got != want {
		t.Fatalf("%s: Encode(%v = %#08x) fast %#02x != ref %#02x",
			f, x, math.Float32bits(x), got, want)
	}
}

// TestEncodeFastSpecials covers the special values of every format:
// zeros, infinities, NaN payloads, ±max, the overflow midpoints, and
// the subnormal boundaries.
func TestEncodeFastSpecials(t *testing.T) {
	for _, f := range testFormats(t) {
		c := f.Codec()
		max := f.MaxValue()
		ulp := math.Ldexp(1, f.maxRawExp()-f.Bias-int(f.ManBits))
		specials := []float64{
			0, math.Copysign(0, -1),
			math.Inf(1), math.Inf(-1),
			max, -max, max + ulp/4, max + ulp/2, max + ulp, 2 * max,
			f.MinNormal(), f.MinNormal() * 0.999999,
			f.MinSubnormal(), f.MinSubnormal() / 2, f.MinSubnormal() / 2.000001,
			f.MinSubnormal() * 1.5, f.MinSubnormal() * 2.5,
			math.MaxFloat32, -math.MaxFloat32,
			math.SmallestNonzeroFloat32, // float32 subnormal
			5.877471754111438e-39,       // float32 subnormal with high bits
		}
		for _, v := range specials {
			checkEncode(t, f, c, float32(v))
			checkEncode(t, f, c, -float32(v))
		}
		for _, nan := range []float32{
			float32(math.NaN()),
			math.Float32frombits(0x7FC00001),
			math.Float32frombits(0xFF800001), // negative signalling payload
		} {
			checkEncode(t, f, c, nan)
		}
	}
}

// TestEncodeFastRoundTrip checks that every finite code survives an
// encode(decode(code)) round trip and that NaN codes stay NaN.
func TestEncodeFastRoundTrip(t *testing.T) {
	for _, f := range testFormats(t) {
		c := f.Codec()
		for b := 0; b < 256; b++ {
			code := uint8(b)
			v := c.Decode(code)
			got := c.Encode(v)
			switch {
			case f.IsNaN(code):
				if !f.IsNaN(got) {
					t.Errorf("%s: NaN code %#02x re-encoded to %#02x", f, code, got)
				}
			default:
				if got != code {
					t.Errorf("%s: code %#02x (%v) round-tripped to %#02x", f, code, v, got)
				}
			}
		}
	}
}

// TestEncodeFastDenseSweep compares the fast encoder against the
// reference over a dense structured float32 sweep: every float32
// exponent (subnormals included), all 512 top-mantissa patterns, and
// boundary low bits that decide round-to-nearest-even ties.
func TestEncodeFastDenseSweep(t *testing.T) {
	lowBits := []uint32{0x0000, 0x0001, 0x1FFF, 0x2000, 0x2001, 0x3FFF}
	for _, f := range testFormats(t) {
		c := f.Codec()
		for e32 := uint32(0); e32 <= 254; e32++ {
			for hi := uint32(0); hi < 512; hi++ {
				for _, lo := range lowBits {
					mant := hi<<14 | lo
					bits := e32<<23 | mant
					x := math.Float32frombits(bits)
					if got, want := c.Encode(x), f.Encode(float64(x)); got != want {
						t.Fatalf("%s: Encode(%v = %#08x) fast %#02x != ref %#02x",
							f, x, bits, got, want)
					}
					xn := math.Float32frombits(bits | 0x80000000)
					if got, want := c.Encode(xn), f.Encode(float64(xn)); got != want {
						t.Fatalf("%s: Encode(%v = %#08x) fast %#02x != ref %#02x",
							f, xn, bits|0x80000000, got, want)
					}
				}
			}
		}
	}
}

// TestEncodeFastRandom fuzzes the encoder with uniform random bit
// patterns (covering NaN payloads and both infinities by construction).
func TestEncodeFastRandom(t *testing.T) {
	r := tensor.NewRNG(0xFA57)
	for _, f := range testFormats(t) {
		c := f.Codec()
		for i := 0; i < 200000; i++ {
			bits := uint32(r.Intn(1<<16))<<16 | uint32(r.Intn(1<<16))
			checkEncode(t, f, c, math.Float32frombits(bits))
		}
	}
}

// mixedTestSlice builds a slice exercising every encoder branch:
// normals across the full scale, subnormals, zeros, specials.
func mixedTestSlice(n int, f Format) []float32 {
	r := tensor.NewRNG(0x51C3)
	src := make([]float32, n)
	for i := range src {
		src[i] = float32(r.Norm() * math.Ldexp(1, r.Intn(40)-20))
	}
	src[0] = float32(math.NaN())
	src[1] = float32(math.Inf(1))
	src[2] = float32(math.Inf(-1))
	src[3] = 0
	src[4] = float32(math.Copysign(0, -1))
	src[5] = float32(f.MaxValue())
	src[6] = -float32(f.MaxValue()) * 4
	src[7] = float32(f.MinSubnormal() / 2)
	return src
}

// TestQuantizeSliceMatchesRef pins the fast QuantizeSlice to the scalar
// reference path bit-for-bit.
func TestQuantizeSliceMatchesRef(t *testing.T) {
	for _, f := range testFormats(t) {
		src := mixedTestSlice(100000, f)
		fast := f.QuantizeSlice(make([]float32, len(src)), src)
		ref := f.QuantizeSliceRef(make([]float32, len(src)), src)
		for i := range src {
			if !sameFloat32(fast[i], ref[i]) {
				t.Fatalf("%s: QuantizeSlice[%d]=%v (in %v) != ref %v", f, i, fast[i], src[i], ref[i])
			}
		}
	}
}

// TestQuantizeSliceParallelMatchesSerial checks serial/parallel
// equality across sizes spanning the inline threshold, including
// lengths that do not divide evenly into chunks, and in-place aliasing.
func TestQuantizeSliceParallelMatchesSerial(t *testing.T) {
	for _, n := range []int{0, 1, 100, quantGrain - 1, quantGrain + 1, 1<<20 + 3} {
		src := mixedTestSlice(max(n, 8), E4M3)[:n]
		serial := E4M3.QuantizeSlice(make([]float32, n), src)
		par := E4M3.QuantizeSliceParallel(make([]float32, n), src)
		for i := range src {
			if !sameFloat32(serial[i], par[i]) {
				t.Fatalf("n=%d: parallel[%d]=%v != serial %v", n, i, par[i], serial[i])
			}
		}
		// In-place (dst aliasing src) must work too.
		inPlace := append([]float32(nil), src...)
		E4M3.QuantizeSliceParallel(inPlace, inPlace)
		for i := range inPlace {
			if !sameFloat32(inPlace[i], serial[i]) {
				t.Fatalf("n=%d: in-place parallel[%d]=%v != serial %v", n, i, inPlace[i], serial[i])
			}
		}
	}
}

// TestQuantizeScaledSliceMatchesUnfused pins the fused
// scale→quantize→rescale kernel to the unfused per-element expression
// Quantize(v*scale)*inv bit-for-bit, across sizes on both sides of the
// rescale-table threshold, every test format (slow fallbacks included),
// and in-place aliasing.
func TestQuantizeScaledSliceMatchesUnfused(t *testing.T) {
	for _, f := range testFormats(t) {
		c := f.Codec()
		threshold := 3.7
		scale := float32(f.MaxValue() / threshold)
		inv := 1 / scale
		for _, n := range []int{0, 1, 8, rescaleMin - 1, rescaleMin, rescaleMin + 3, 4096} {
			src := mixedTestSlice(max(n, 8), f)[:n]
			want := make([]float32, n)
			for i, v := range src {
				want[i] = c.Quantize(v*scale) * inv
			}
			got := c.QuantizeScaledSlice(make([]float32, n), src, scale, inv)
			for i := range src {
				if !sameFloat32(got[i], want[i]) {
					t.Fatalf("%s n=%d: fused[%d]=%v (in %v) != unfused %v",
						f, n, i, got[i], src[i], want[i])
				}
			}
			inPlace := append([]float32(nil), src...)
			c.QuantizeScaledSlice(inPlace, inPlace, scale, inv)
			for i := range inPlace {
				if !sameFloat32(inPlace[i], want[i]) {
					t.Fatalf("%s n=%d: in-place fused[%d]=%v != unfused %v",
						f, n, i, inPlace[i], want[i])
				}
			}
		}
	}
}

// The fused-vs-unfused pair quantifies the QuantizeScaledSlice win on a
// static-fake-quant-sized activation slice (run with -bench to compare;
// the fused path folds the rescale into the decode table).
func benchScaledSrc() ([]float32, []float32, float32, float32) {
	src := make([]float32, 1<<14)
	r := tensor.NewRNG(0xF05E)
	for i := range src {
		src[i] = float32(r.Norm() * 2)
	}
	scale := float32(E4M3.MaxValue() / 4.0)
	return src, make([]float32, len(src)), scale, 1 / scale
}

func BenchmarkQuantizeScaledSliceFused(b *testing.B) {
	src, dst, scale, inv := benchScaledSrc()
	c := E4M3.Codec()
	b.SetBytes(int64(len(src) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.QuantizeScaledSlice(dst, src, scale, inv)
	}
}

func BenchmarkQuantizeScaledSliceUnfused(b *testing.B) {
	src, dst, scale, inv := benchScaledSrc()
	c := E4M3.Codec()
	b.SetBytes(int64(len(src) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, v := range src {
			dst[j] = c.Quantize(v*scale) * inv
		}
	}
}

// TestCodecCached checks the per-format cache returns one instance.
func TestCodecCached(t *testing.T) {
	if E4M3.Codec() != E4M3.Codec() {
		t.Error("Codec() must be cached per format")
	}
	if E4M3.Codec() == E3M4.Codec() {
		t.Error("distinct formats must have distinct codecs")
	}
	if E4M3.WithBias(11).Codec() == E4M3.Codec() {
		t.Error("bias-shifted format must not share the base codec")
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
