package harness

import (
	"errors"
	"reflect"
	"testing"

	"fp8quant/internal/evalx"
	"fp8quant/internal/models"
	"fp8quant/internal/resultstore"
)

// withCleanCache isolates a test from the package-level cache state.
func withCleanCache(t *testing.T) {
	t.Helper()
	ClearMemo()
	t.Cleanup(func() {
		SetStore(nil)
		ClearMemo()
	})
}

func cellTestKey(model string) resultstore.CellKey {
	return resultstore.CellKey{
		Grid: "cache-test",
		Cell: []resultstore.AxisValue{
			{Axis: "model", Value: model},
			{Axis: "recipe", Value: "r1"},
		},
		Schema: resultstore.SchemaVersion,
	}
}

func cellTestResult(model string) evalx.Result {
	return evalx.Result{
		Model: model, Domain: models.CV, Recipe: "r1",
		BaseAcc: 1, QAcc: 0.993, RelLoss: 0.007, Pass: true,
		Metrics: map[string]float64{"aux": 1.25},
	}
}

// TestCachedCellMemoizes checks the in-process layer: the second call
// with the same key must not recompute, with or without a disk store.
func TestCachedCellMemoizes(t *testing.T) {
	withCleanCache(t)
	SetStore(nil)
	computes := 0
	compute := func() evalx.Result { computes++; return cellTestResult("m1") }
	k := cellTestKey("m1")
	r1 := cachedCell(k, compute)
	r2 := cachedCell(k, compute)
	if computes != 1 {
		t.Fatalf("computed %d times, want 1", computes)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Error("second call should return the memoized result")
	}
}

// TestCachedCellPersistsAcrossProcesses simulates two fp8bench
// invocations sharing a cache dir: the memo is cleared (process
// boundary) and the second "process" must load from disk, not compute.
func TestCachedCellPersistsAcrossProcesses(t *testing.T) {
	withCleanCache(t)
	s, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	SetStore(s)
	computes := 0
	compute := func() evalx.Result { computes++; return cellTestResult("m1") }
	k := cellTestKey("m1")
	first := cachedCell(k, compute)

	ClearMemo() // process boundary
	second := cachedCell(k, compute)
	if computes != 1 {
		t.Fatalf("computed %d times, want 1 (second run must hit the store)", computes)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Writes != 1 {
		t.Errorf("store stats = %+v, want 1 hit / 1 write", st)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("store round trip changed the result: %+v vs %+v", second, first)
	}
}

// TestCachedCellDistinctKeys checks two keys never share a result.
func TestCachedCellDistinctKeys(t *testing.T) {
	withCleanCache(t)
	SetStore(nil)
	computes := 0
	compute := func() evalx.Result { computes++; return cellTestResult("m1") }
	k2 := cellTestKey("m1")
	k2.Seed = 7
	cachedCell(cellTestKey("m1"), compute)
	cachedCell(k2, compute)
	if computes != 2 {
		t.Fatalf("distinct keys computed %d times, want 2", computes)
	}
}

// TestCachedCellErrNotPersisted checks failed cells are memoized for
// the process but never written to the store: after a process
// boundary, a failed cell must recompute.
func TestCachedCellErrNotPersisted(t *testing.T) {
	withCleanCache(t)
	s, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	SetStore(s)
	computes := 0
	compute := func() evalx.Result {
		computes++
		return evalx.Failed("m1", "r1", errors.New("build failed"))
	}
	k := cellTestKey("m1")
	cachedCell(k, compute)
	cachedCell(k, compute) // memoized within the process
	if computes != 1 {
		t.Fatalf("computed %d times before the boundary, want 1", computes)
	}
	if st := s.Stats(); st.Writes != 0 {
		t.Errorf("errored cell was persisted: %+v", st)
	}
	ClearMemo() // process boundary
	cachedCell(k, compute)
	if computes != 2 {
		t.Fatalf("errored cell not recomputed after process boundary: %d computes", computes)
	}
}
