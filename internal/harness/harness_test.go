package harness

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "firstlast", "table2", "table3", "table4", "table5", "table6",
		"ablation-wgt", "ablation-calib",
	}
	ids := IDs()
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(ids) != len(want) {
		t.Errorf("registered %d experiments, want %d: %v", len(ids), len(want), ids)
	}
}

func TestGetUnknown(t *testing.T) {
	if _, ok := Get("nope"); ok {
		t.Error("unknown id should not resolve")
	}
}

func TestTableFormatting(t *testing.T) {
	tb := newTable("a", "bb")
	tb.add("1", "2")
	tb.add("333", "4")
	out := tb.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "333") {
		t.Errorf("table output: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Errorf("table has %d lines", len(lines))
	}
}

// TestAddfEscapedPipe is the regression test for labels containing a
// literal pipe: splitting on bare "|" used to shear the Table 2 recipe
// label "INT8 Static CV | Dynamic NLP" across three cells.
func TestAddfEscapedPipe(t *testing.T) {
	tb := newTable("recipe", "pass rate")
	tb.addf(`INT8 Static CV \| Dynamic NLP|%.2f%%`, 85.0)
	if len(tb.rows) != 1 {
		t.Fatalf("addf added %d rows, want 1", len(tb.rows))
	}
	row := tb.rows[0]
	if len(row) != 2 {
		t.Fatalf("escaped pipe split the row into %d cells: %q", len(row), row)
	}
	if row[0] != "INT8 Static CV | Dynamic NLP" {
		t.Errorf("label cell = %q, want the literal-pipe label", row[0])
	}
	if row[1] != "85.00%" {
		t.Errorf("value cell = %q", row[1])
	}

	// Plain splitting still works, bare backslashes pass through.
	tb2 := newTable("a", "b", "c")
	tb2.addf(`x\y|%d|%s`, 7, "z")
	if got := tb2.rows[0]; len(got) != 3 || got[0] != `x\y` || got[1] != "7" || got[2] != "z" {
		t.Errorf("addf cells = %q", got)
	}
}

// TestFig1Shape checks the headline Figure 1 invariants on the actual
// experiment output: E3M4 < INT8 at the paper's outlier magnitude, and
// both E4M3 and E3M4 < INT8 at the LLM-scale magnitude; E5M2 worst FP8.
func TestFig1Shape(t *testing.T) {
	e, _ := Get("fig1")
	rep := Run(e)
	v := rep.Values
	if !(v["mse_E3M4_mag6"] < v["mse_INT8_mag6"]) {
		t.Errorf("E3M4 (%e) should beat INT8 (%e) at magnitude 6",
			v["mse_E3M4_mag6"], v["mse_INT8_mag6"])
	}
	if !(v["mse_E4M3_mag20"] < v["mse_INT8_mag20"] && v["mse_E3M4_mag20"] < v["mse_INT8_mag20"]) {
		t.Errorf("both FP8 formats should beat INT8 at magnitude 20: %v", v)
	}
	if !(v["mse_E5M2_mag6"] > v["mse_E4M3_mag6"]) {
		t.Errorf("E5M2 should be the worst FP8 format")
	}
	if !strings.Contains(rep.Text, "E4M3") {
		t.Error("report text missing format rows")
	}
}

func TestFig3Shape(t *testing.T) {
	e, _ := Get("fig3")
	rep := Run(e)
	v := rep.Values
	if v["ratio_nlp_activation"] <= 10 {
		t.Errorf("NLP activation should be range-bound: ratio %v", v["ratio_nlp_activation"])
	}
	if v["ratio_weights"] > 10 {
		t.Errorf("weights should be precision-bound: ratio %v", v["ratio_weights"])
	}
	if v["kurtosis_nlp_activation"] <= v["kurtosis_weights"] {
		t.Error("NLP activations must have heavier tails than weights")
	}
}

func TestFig10Shape(t *testing.T) {
	e, _ := Get("fig10")
	rep := Run(e)
	v := rep.Values
	// KL calibration must clip below the outlier cluster (the demo's
	// "clipped max value is 2" behaviour).
	if v["int8_kl_threshold"] >= 5.5 {
		t.Errorf("INT8 KL threshold %v should clip outliers", v["int8_kl_threshold"])
	}
	// The appendix's observation: the KL-clipped FP8 mapping, despite
	// denser small-value coverage, has LARGER MSE than plain max
	// scaling — KL brings nothing for FP8's log-spaced grid.
	if v["e4m3_mse_kl"] <= v["e4m3_mse_max"] {
		t.Errorf("KL-clipped E4M3 MSE %v should exceed max-scaled %v (appendix demo)",
			v["e4m3_mse_kl"], v["e4m3_mse_max"])
	}
}

func TestFig8Shape(t *testing.T) {
	e, _ := Get("fig8")
	rep := Run(e)
	v := rep.Values
	mixed := v["out_mse_Mixed(E4M3 act + E3M4 wgt)"]
	for _, single := range []string{"E5M2", "E4M3"} {
		if mixed >= v["out_mse_"+single] {
			t.Errorf("mixed (%e) should beat %s (%e)", mixed, single, v["out_mse_"+single])
		}
	}
}
