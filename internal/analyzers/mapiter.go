// mapiter: map iteration order must not reach an order-sensitive sink.
//
// Go randomizes map iteration per run. A `range` over a map is fine
// when the body is order-insensitive — inserting into another map,
// membership tests, counting — and fine under the collect-then-sort
// idiom (append the keys, sort, iterate the slice). It is a report
// poisoner when the body prints, string-builds, JSON-encodes, writes
// store entries, or appends to a slice that is never sorted: the same
// grid then renders differently run to run, and byte-compared store
// payloads stop being comparable.

package analyzers

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

func mapiterAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "mapiter",
		Doc:  "range over a map must not feed rendering/encoding/store writes unless keys are sorted first",
		Run:  runMapiter,
	}
}

// mapiterSinkCalls are qualified functions whose call inside a
// map-range body makes the iteration order observable.
var mapiterSinkCalls = map[string]bool{
	"fmt.Print": true, "fmt.Printf": true, "fmt.Println": true,
	"fmt.Fprint": true, "fmt.Fprintf": true, "fmt.Fprintln": true,
	"fmt.Sprint": true, "fmt.Sprintf": true, "fmt.Sprintln": true,
	"fmt.Appendf":           true,
	"encoding/json.Marshal": true, "encoding/json.MarshalIndent": true,
	"os.WriteFile": true,
}

// mapiterSinkMethods are method names that emit in call order wherever
// they live: stream writers, the table builder, store persistence.
var mapiterSinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true,
	"add":    true, "addf": true, // harness table builder
	"SaveCell": true, "SaveManifest": true, // resultstore
}

func runMapiter(pkgs []*Package) []Finding {
	var out []Finding
	eachFuncDecl(pkgs, func(p *Package, d *ast.FuncDecl) {
		ast.Inspect(d.Body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if f := mapRangeSink(p, d, rng); f != nil {
				out = append(out, *f)
			}
			return true
		})
	})
	return out
}

// mapRangeSink decides whether one map-range statement leaks iteration
// order, returning the finding if so.
func mapRangeSink(p *Package, fn *ast.FuncDecl, rng *ast.RangeStmt) *Finding {
	var finding *Finding
	report := func(n ast.Node, format string, args ...any) {
		if finding == nil {
			finding = &Finding{Check: "mapiter", Pos: position(p, n),
				Message: fmt.Sprintf(format, args...)}
		}
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, sink := sinkCallName(p, n); sink {
				report(n, "map iteration order reaches %s; sort the keys first", name)
			}
			// append(s, ...) is order-sensitive unless s is sorted
			// after the loop.
			if id, ok := unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" && len(n.Args) > 0 {
				if target, ok := unparen(n.Args[0]).(*ast.Ident); ok {
					if !sortedAfter(p, fn, rng, target) {
						report(n, "append to %q inside a map range, and %q is never sorted afterwards", target.Name, target.Name)
					}
				} else {
					report(n, "append to a non-identifier target inside a map range; cannot prove it is sorted")
				}
			}
		case *ast.AssignStmt:
			// Writing slice elements / struct fields in key order is a
			// sink; writing map entries is not (maps are unordered on
			// both sides).
			for _, lhs := range n.Lhs {
				if orderSensitiveLHS(p, lhs) {
					report(n, "ordered write to %s inside a map range; iterate sorted keys instead", lhsDesc(lhs))
				}
			}
		}
		return true
	})
	return finding
}

// sinkCallName reports whether the call is an order-sensitive sink and
// names it for the message.
func sinkCallName(p *Package, call *ast.CallExpr) (string, bool) {
	if f := calleeFunc(p.Info, call); f != nil && f.Pkg() != nil {
		q := f.Pkg().Path() + "." + f.Name()
		if mapiterSinkCalls[q] {
			return q, true
		}
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil && mapiterSinkMethods[f.Name()] {
			return recvTypeName(sig.Recv().Type()) + "." + f.Name(), true
		}
	}
	return "", false
}

// orderSensitiveLHS reports whether assigning through this LHS records
// iteration order: slice/array indexing does; map indexing and plain
// (re)assignment of locals do not.
func orderSensitiveLHS(p *Package, lhs ast.Expr) bool {
	idx, ok := unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return false
	}
	t := p.Info.TypeOf(idx.X)
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Array, *types.Pointer:
		return true
	}
	return false
}

func lhsDesc(lhs ast.Expr) string {
	if idx, ok := unparen(lhs).(*ast.IndexExpr); ok {
		if id, ok := unparen(idx.X).(*ast.Ident); ok {
			return fmt.Sprintf("%s[...]", id.Name)
		}
	}
	return "an indexed element"
}

// sortedAfter reports whether ident's object is passed to a sort call
// in fn after the range statement — the collect-then-sort idiom.
func sortedAfter(p *Package, fn *ast.FuncDecl, rng *ast.RangeStmt, target *ast.Ident) bool {
	obj := p.Info.ObjectOf(target)
	if obj == nil {
		return false
	}
	sorted := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rng.End() {
			return true
		}
		f := calleeFunc(p.Info, call)
		if f == nil || f.Pkg() == nil {
			return true
		}
		// The sort package, slices.Sort*, or a local helper whose name
		// says it sorts (sortFindings, sortCells, …) all count.
		pkg := f.Pkg().Path()
		if pkg != "sort" && pkg != "slices" &&
			!strings.Contains(strings.ToLower(f.Name()), "sort") {
			return true
		}
		for _, arg := range call.Args {
			base := unparen(arg)
			if id, ok := base.(*ast.Ident); ok && p.Info.ObjectOf(id) == obj {
				sorted = true
			}
		}
		return true
	})
	return sorted
}
