package kernels

import "math"

// fmaRef is the scalar oracle of the FMA kernel tiers: the exactly-
// rounded float32 fused multiply-add, fmaRef(a,b,c) = RN32(a·b + c)
// with a single rounding. The avx2 differential tests pin every output
// element against a naive loop built on it, the same way the sse and
// generic tiers pin against the two-rounding `acc += float32(v*b)`
// loop.
//
// The "fma" file-name token places this file under fp8vet's
// floatorder FMA-tier contract: math.FMA is the point here, not a
// violation (see internal/analyzers/floatorder.go).
//
// Construction: the float64 product of two float32s is exact (24+24
// significand bits ≤ 53), so math.FMA in float64 yields RN64(a·b + c)
// with one rounding. Converting that to float32 double-rounds, which
// is wrong in halfway cases (the classic fmaf-via-double bug), so the
// float64 sum is first corrected to round-to-odd using its exact 2Sum
// residue: forcing the last mantissa bit when the sum was inexact
// makes the subsequent RN32 conversion land exactly where a single
// rounding would (float64 carries 29 guard bits past float32, far more
// than the 2 the round-to-odd argument needs).
func fmaRef(a, b, c float32) float32 {
	p := float64(a) * float64(b) // exact
	s := math.FMA(float64(a), float64(b), float64(c))
	// Knuth 2Sum residue of p + c around s; exact in the absence of
	// overflow, which the float32-range inputs cannot reach in float64.
	t := s - p
	err := (p - (s - t)) + (float64(c) - t)
	if err != 0 && !math.IsNaN(err) && math.Float64bits(s)&1 == 0 {
		// Inexact sum on an even mantissa: nudge one ulp toward the
		// true value so the last bit ends up odd (adjacent float64s
		// alternate parity; err≠0 rules out s == 0, and the maxima are
		// odd-mantissa so this never overflows to Inf).
		if err > 0 {
			s = math.Nextafter(s, math.Inf(1))
		} else {
			s = math.Nextafter(s, math.Inf(-1))
		}
	}
	return float32(s)
}
