// Lease table and schedule state. The coordinator owns a flat set of
// work items — one per distinct cell fingerprint across the scheduled
// experiments (experiments sharing a grid share cells, exactly like
// the local memo) — and hands them out as deadline-bearing leases.
// Expired leases requeue their cell, so a crashed or wedged worker
// costs one timeout rather than a shard; cells whose push reports a
// deterministic failure are marked failed instead of looping forever.

package coord

import (
	"sort"
	"time"

	"fp8quant/internal/resultstore"
)

type itemState int

const (
	statePending itemState = iota
	stateLeased
	stateDone
	stateFailed
)

// workItem is one distinct grid cell to compute.
type workItem struct {
	// exp is the experiment id workers resolve the cell through (the
	// first scheduled experiment that declared it, for shared grids).
	exp string
	// grid/seed identify the owning grid schedule.
	grid string
	// index is the row-major cell index within exp's grid.
	index int
	// key is the human-readable label, fp the content address.
	key string
	fp  string
	// axes are the cell's coordinates, fed to the cost model.
	axes []resultstore.AxisValue

	state itemState
	// expiries counts lease timeouts so a cell that keeps killing its
	// workers is eventually declared failed rather than requeued
	// forever.
	expiries int
	failMsg  string
}

// leaseRec is one outstanding lease.
type leaseRec struct {
	id       string
	item     *workItem
	worker   string
	deadline time.Time
}

// expSchedule is one experiment's view of the shared item set.
type expSchedule struct {
	id   string
	grid string
	// items holds the experiment's cells in row-major order (pointers
	// into the shared deduplicated set).
	items []*workItem
}

// progress summarizes a schedule's item states.
func (es *expSchedule) progress() ExpProgress {
	p := ExpProgress{Exp: es.id, Grid: es.grid, Total: len(es.items)}
	for _, it := range es.items {
		switch it.state {
		case stateDone:
			p.Done++
		case stateFailed:
			p.Failed++
		case stateLeased:
			p.Leased++
		default:
			p.Pending++
		}
	}
	if p.Total == 0 {
		p.Percent = 100
	} else {
		p.Percent = float64(p.Done) / float64(p.Total) * 100
	}
	return p
}

// sortPending orders the pending queue most-expensive-first by the cost
// model's estimates, tie-broken by (exp, index) so the order is
// deterministic for a given model state. Called lazily: estimates move
// with every observed push, so the queue re-sorts when marked dirty
// rather than on every observation.
func sortPending(pending []*workItem, cost *CostModel) {
	type scored struct {
		it *workItem
		ms float64
	}
	sc := make([]scored, len(pending))
	for i, it := range pending {
		sc[i] = scored{it, cost.EstimateMs(it.fp, it.axes)}
	}
	sort.SliceStable(sc, func(i, j int) bool {
		if sc[i].ms != sc[j].ms {
			return sc[i].ms > sc[j].ms
		}
		if sc[i].it.exp != sc[j].it.exp {
			return sc[i].it.exp < sc[j].it.exp
		}
		return sc[i].it.index < sc[j].it.index
	})
	for i := range sc {
		pending[i] = sc[i].it
	}
}
