// bert_ptq: post-training FP8 quantization of a BERT-style NLP model
// with the paper's NLP recipe stack — SmoothQuant, mixed FP8 formats,
// and extended operator coverage (LayerNorm, BMM, Embedding).
//
//	go run ./examples/bert_ptq
package main

import (
	"fmt"
	"log"

	"fp8quant/internal/evalx"
	"fp8quant/internal/models"
	"fp8quant/internal/quant"
)

func main() {
	net, err := models.Build("bert_base_mrpc")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %s  task: %s  activation outlier ratio: %.0fx\n\n",
		net.Meta.Name, net.Meta.Task, net.Meta.OutlierRatio)

	configs := []struct {
		label  string
		recipe quant.Recipe
		paper  bool
	}{
		{"E4M3 static (no SmoothQuant)", quant.StandardFP8(quant.E4M3), false},
		{"E4M3 static + SmoothQuant", quant.StandardFP8(quant.E4M3).WithSmoothQuant(0.5), false},
		{"E4M3 dynamic", quant.DynamicFP8(quant.E4M3), false},
		{"Mixed E4M3 act / E3M4 wgt", quant.MixedFP8(), true},
		{"E4M3 + extended op coverage", quant.StandardFP8(quant.E4M3).WithExtendedOps(), true},
		{"INT8 dynamic (baseline)", quant.StandardINT8(true), false},
	}
	fmt.Printf("%-32s %9s %9s %6s\n", "config", "accuracy", "loss", "pass")
	for _, c := range configs {
		res := evalx.Evaluate(net, c.recipe, c.paper)
		fmt.Printf("%-32s %9.4f %8.2f%% %6v\n",
			c.label, res.QAcc, res.RelLoss*100, res.Pass)
	}

	// Inspect what the extended scheme actually covers.
	h := quant.Quantize(net, net.Data, quant.StandardFP8(quant.E4M3).WithExtendedOps())
	fmt.Printf("\nextended-scheme operator coverage: %v\n", h.Report.QuantizedOps)
	h.Release()
}
