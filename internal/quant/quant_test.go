package quant

import (
	"math"
	"testing"

	"fp8quant/internal/data"
	"fp8quant/internal/fp8"
	"fp8quant/internal/nn"
	"fp8quant/internal/tensor"
)

// testMLP is a 2-layer model used across workflow tests.
type testMLP struct {
	seq *nn.Sequential
}

func newTestMLP(seed uint64) *testMLP {
	r := tensor.NewRNG(seed)
	l1 := nn.NewLinear(8, 16)
	l1.W.FillNormal(r, 0, 0.4)
	l2 := nn.NewLinear(16, 4)
	l2.W.FillNormal(r, 0, 0.4)
	return &testMLP{seq: nn.NewSequential(l1, nn.ReLU{}, l2)}
}

func (m *testMLP) Root() nn.Module { return m.seq }
func (m *testMLP) IsCNN() bool     { return false }
func (m *testMLP) Run(s data.Sample) *tensor.Tensor {
	return m.seq.Forward(s.X)
}

type vecDataset struct {
	n, d    int
	batches int
	seed    uint64
	outlier float64
	// frac is the outlier fraction; realistic LLM activations have
	// sparse (<1%) but huge (20x+) outliers.
	frac float64
	// bigChannel scales feature 0 by the outlier factor on every row,
	// modelling the channel-concentrated outliers of NLP activations
	// (the regime SmoothQuant targets).
	bigChannel bool
}

func (v *vecDataset) Batches() int { return v.batches }
func (v *vecDataset) Batch(i int) data.Sample {
	r := tensor.NewRNG(v.seed + uint64(i))
	x := tensor.New(v.n, v.d)
	x.FillNormal(r, 0, 1)
	if v.outlier > 0 {
		if v.bigChannel {
			for row := 0; row < v.n; row++ {
				x.Data[row*v.d] *= float32(v.outlier)
			}
		} else {
			f := v.frac
			if f == 0 {
				f = 0.005
			}
			x.InjectOutliers(r, f, v.outlier, v.outlier*1.2)
		}
	}
	return data.Sample{X: x}
}

// testCNN is a small conv net for first/last and BN-calibration tests.
type testCNN struct {
	seq *nn.Sequential
}

func newTestCNN(seed uint64) *testCNN {
	r := tensor.NewRNG(seed)
	c1 := nn.NewConv2d(1, 4, 3, 1, 1, 1)
	c1.W.FillNormal(r, 0, 0.3)
	bn := nn.NewBatchNorm2d(4)
	c2 := nn.NewConv2d(4, 8, 3, 2, 1, 1)
	c2.W.FillNormal(r, 0, 0.3)
	fc := nn.NewLinear(8, 4)
	fc.W.FillNormal(r, 0, 0.4)
	seq := nn.NewSequential(c1, bn, nn.ReLU{}, c2, nn.ReLU{}, nn.GlobalAvgPool{}, fc)
	return &testCNN{seq: seq}
}

func (m *testCNN) Root() nn.Module { return m.seq }
func (m *testCNN) IsCNN() bool     { return true }
func (m *testCNN) Run(s data.Sample) *tensor.Tensor {
	return m.seq.Forward(s.X)
}

type imgDataset struct {
	batches int
	seed    uint64
}

func (v *imgDataset) Batches() int { return v.batches }
func (v *imgDataset) Batch(i int) data.Sample {
	r := tensor.NewRNG(v.seed + uint64(i))
	x := tensor.New(2, 1, 8, 8)
	x.FillNormal(r, 0.5, 1)
	return data.Sample{X: x}
}

func TestMinMaxObserver(t *testing.T) {
	o := NewMinMaxObserver()
	o.Observe([]float32{-2, 3, 0.5})
	o.Observe([]float32{1, -5})
	mn, mx := o.Range()
	if mn != -5 || mx != 3 {
		t.Errorf("range = %v,%v", mn, mx)
	}
	if o.AbsMax() != 5 {
		t.Errorf("absmax = %v", o.AbsMax())
	}
	// NaN and Inf ignored.
	o.Observe([]float32{float32(math.NaN()), float32(math.Inf(1))})
	if o.AbsMax() != 5 {
		t.Error("NaN/Inf must be ignored")
	}
}

func TestPercentileObserverClipsOutliers(t *testing.T) {
	o := NewPercentileObserver(99)
	vals := make([]float32, 10000)
	r := tensor.NewRNG(1)
	for i := range vals {
		vals[i] = float32(r.Norm())
	}
	vals[0] = 1000 // single extreme outlier
	o.Observe(vals)
	if am := o.AbsMax(); am > 100 {
		t.Errorf("99th percentile absmax = %v, should clip the outlier", am)
	}
	// Range must stay within the clip.
	mn, mx := o.Range()
	if mx > 100 || mn < -100 {
		t.Errorf("clipped range = %v,%v", mn, mx)
	}
}

func TestHistogramObserverRangesContainData(t *testing.T) {
	o := NewHistogramObserver(128)
	o.Observe([]float32{0.5, -1.5, 2})
	o.Observe([]float32{3, -0.1})
	if o.AbsMax() != 3 {
		t.Errorf("absmax = %v", o.AbsMax())
	}
}

func TestKLThresholdClipsFP8LessThanInt8Wants(t *testing.T) {
	// Normal data plus outliers at 6: the classic Figure 10 setup.
	o := NewHistogramObserver(2048)
	r := tensor.NewRNG(2)
	vals := make([]float32, 50000)
	for i := range vals {
		vals[i] = float32(r.Norm() * math.Sqrt(0.5))
	}
	for i := 0; i < 500; i++ {
		vals[r.Intn(len(vals))] = float32(r.Uniform(5.5, 6))
	}
	o.Observe(vals)

	int8T := o.KLThreshold(func(th float64) Quantizer { return fp8.NewInt8Symmetric(th) })
	if int8T >= 5.5 {
		t.Errorf("INT8 KL threshold = %v, should clip below the outliers", int8T)
	}
	// MSE threshold search returns something in a sane range.
	mseT := o.MSEThreshold(func(th float64) Quantizer { return NewScaledFP8(fp8.E4M3, th) })
	if mseT <= 0 || mseT > 7 {
		t.Errorf("MSE threshold = %v", mseT)
	}
}

func TestStaticFP8FuncRoundsToGrid(t *testing.T) {
	fn := StaticFP8Func(fp8.E4M3, 4)
	src := []float32{0.1, -2.7, 3.9, 5.0} // 5.0 beyond threshold saturates
	dst := make([]float32, 4)
	fn(dst, src)
	scale := float32(fp8.E4M3.MaxValue() / 4)
	inv := 1 / scale
	for i, v := range src {
		want := float32(fp8.E4M3.Quantize(float64(v*scale))) * inv
		if dst[i] != want {
			t.Errorf("static[%d] = %v, want %v", i, dst[i], want)
		}
	}
	if math.Abs(float64(dst[3])-4) > 0.01 {
		t.Errorf("out-of-threshold value should saturate near 4: %v", dst[3])
	}
}

func TestDynamicFP8FuncAdaptsScale(t *testing.T) {
	fn := DynamicFP8Func(fp8.E4M3)
	small := []float32{0.001, -0.002, 0.003}
	dst := make([]float32, 3)
	fn(dst, small)
	// Relative error must be tiny because the scale adapts.
	for i := range small {
		rel := math.Abs(float64(dst[i]-small[i])) / math.Abs(float64(small[i]))
		if rel > 0.05 {
			t.Errorf("dynamic rel err[%d] = %v", i, rel)
		}
	}
	// All-zero input passes through.
	zeros := []float32{0, 0}
	fn(dst[:2], zeros)
	if dst[0] != 0 || dst[1] != 0 {
		t.Error("zeros must stay zero")
	}
}

func TestQuantizeWeightPerChannelIndependentScales(t *testing.T) {
	w := tensor.New(2, 4)
	// Channel 0 tiny, channel 1 huge.
	for i := 0; i < 4; i++ {
		w.Data[i] = 0.001 * float32(i+1)
		w.Data[4+i] = 100 * float32(i+1)
	}
	orig := append([]float32(nil), w.Data...)
	master := QuantizeWeightPerChannel(w, 0, E4M3)
	for i := range master {
		if master[i] != orig[i] {
			t.Fatal("master must be the pre-quant copy")
		}
	}
	// Both channels keep fine relative precision thanks to per-channel
	// scales.
	for i := range w.Data {
		rel := math.Abs(float64(w.Data[i]-orig[i])) / math.Abs(float64(orig[i]))
		if rel > 0.05 {
			t.Errorf("per-channel rel err[%d] = %v", i, rel)
		}
	}
	// Per-tensor quantization destroys the small channel.
	w2 := tensor.New(2, 4)
	copy(w2.Data, orig)
	QuantizeWeightPerTensor(w2, E4M3)
	worst := 0.0
	for i := 0; i < 4; i++ {
		rel := math.Abs(float64(w2.Data[i]-orig[i])) / math.Abs(float64(orig[i]))
		if rel > worst {
			worst = rel
		}
	}
	if worst < 0.05 {
		t.Errorf("per-tensor error on tiny channel = %v, expected large", worst)
	}
}

func TestQuantizeReleaseRestoresExactly(t *testing.T) {
	m := newTestMLP(10)
	ds := &vecDataset{n: 4, d: 8, batches: 4, seed: 3}
	l1 := m.seq.Modules[0].(*nn.Linear)
	orig := append([]float32(nil), l1.W.Data...)
	before := m.Run(ds.Batch(0))

	h := Quantize(m, ds, StandardFP8(E4M3))
	quantized := m.Run(ds.Batch(0))
	changed := false
	for i := range quantized.Data {
		if quantized.Data[i] != before.Data[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("quantization should perturb outputs")
	}
	if l1.QS.Input == nil {
		t.Error("input hook not installed")
	}

	h.Release()
	for i := range orig {
		if l1.W.Data[i] != orig[i] {
			t.Fatal("weights not restored exactly")
		}
	}
	if l1.QS.Input != nil {
		t.Error("hooks not cleared")
	}
	after := m.Run(ds.Batch(0))
	for i := range after.Data {
		if after.Data[i] != before.Data[i] {
			t.Fatal("outputs differ after release")
		}
	}
}

func TestQuantizeErrorOrdering(t *testing.T) {
	// On outlier-free data the MSE ordering should be
	// E3M4 < E4M3 < E5M2 (mantissa bits dominate).
	ds := &vecDataset{n: 8, d: 8, batches: 4, seed: 5}
	ref := newTestMLP(20)
	base := ref.Run(ds.Batch(5))
	mse := map[DType]float64{}
	for _, d := range []DType{E5M2, E4M3, E3M4} {
		m := newTestMLP(20)
		h := Quantize(m, ds, StandardFP8(d))
		out := m.Run(ds.Batch(5))
		mse[d] = tensor.MSE(base.Data, out.Data)
		h.Release()
	}
	if !(mse[E3M4] <= mse[E4M3] && mse[E4M3] <= mse[E5M2]) {
		t.Errorf("MSE ordering violated: E3M4=%v E4M3=%v E5M2=%v",
			mse[E3M4], mse[E4M3], mse[E5M2])
	}
}

func TestInt8SuffersFromOutliers(t *testing.T) {
	// With LLM-style emergent activation outliers (sparse ~0.2%, huge
	// ~40 sigma; cf. Dettmers et al. 2022), static INT8 loses to
	// static E4M3: the outliers stretch the uniform INT8 grid
	// quadratically while FP8's log-spaced grid keeps near-zero
	// density (Section 2).
	ds := &vecDataset{n: 128, d: 8, batches: 4, seed: 7, outlier: 40, frac: 0.002}
	ref := newTestMLP(30)
	base := ref.Run(ds.Batch(5))

	mFP8 := newTestMLP(30)
	h1 := Quantize(mFP8, ds, StandardFP8(E4M3))
	fp8Out := mFP8.Run(ds.Batch(5))
	h1.Release()

	mInt8 := newTestMLP(30)
	h2 := Quantize(mInt8, ds, StandardINT8(false))
	int8Out := mInt8.Run(ds.Batch(5))
	h2.Release()

	fp8MSE := tensor.MSE(base.Data, fp8Out.Data)
	int8MSE := tensor.MSE(base.Data, int8Out.Data)
	if fp8MSE >= int8MSE {
		t.Errorf("E4M3 MSE %v should beat INT8 MSE %v under outliers", fp8MSE, int8MSE)
	}
}

func TestFirstLastExclusion(t *testing.T) {
	m := newTestCNN(40)
	ds := &imgDataset{batches: 3, seed: 1}
	h := Quantize(m, ds, StandardFP8(E4M3))
	defer h.Release()
	if h.Report.FirstOp == "" || h.Report.LastOp == "" {
		t.Fatalf("first/last not identified: %+v", h.Report)
	}
	c1 := m.seq.Modules[0].(*nn.Conv2d)
	fc := m.seq.Modules[6].(*nn.Linear)
	if c1.QS.Input != nil {
		t.Error("first conv must stay FP32")
	}
	if fc.QS.Input != nil {
		t.Error("last linear must stay FP32")
	}
	c2 := m.seq.Modules[3].(*nn.Conv2d)
	if c2.QS.Input == nil {
		t.Error("middle conv must be quantized")
	}
}

func TestFirstLastEnabled(t *testing.T) {
	m := newTestCNN(41)
	ds := &imgDataset{batches: 3, seed: 2}
	h := Quantize(m, ds, StandardFP8(E3M4).WithFirstLast())
	defer h.Release()
	c1 := m.seq.Modules[0].(*nn.Conv2d)
	if c1.QS.Input == nil {
		t.Error("first conv should be quantized with WithFirstLast")
	}
}

func TestExtendedOpsCoverage(t *testing.T) {
	m := newTestCNN(42)
	ds := &imgDataset{batches: 3, seed: 3}
	h := Quantize(m, ds, StandardFP8(E4M3).WithExtendedOps())
	defer h.Release()
	bn := m.seq.Modules[1].(*nn.BatchNorm2d)
	if bn.QS.Output == nil {
		t.Error("extended scheme must quantize BatchNorm output")
	}
	if h.Report.QuantizedOps["BatchNorm"] != 1 {
		t.Errorf("report: %+v", h.Report.QuantizedOps)
	}
}

func TestBNCalibrationRecovers(t *testing.T) {
	m := newTestCNN(43)
	ds := &imgDataset{batches: 8, seed: 4}
	bn := m.seq.Modules[1].(*nn.BatchNorm2d)
	// Give BN deliberately wrong stats; calibration should fix them to
	// match the conv output distribution.
	bn.Mean[0] = 50
	origMean := bn.Mean[0]
	h := Quantize(m, ds, StandardFP8(E4M3).WithBNCalib(4))
	if bn.Mean[0] == origMean {
		t.Error("BN calibration did not update statistics")
	}
	if math.Abs(float64(bn.Mean[0])) > 5 {
		t.Errorf("recalibrated mean = %v, want near data mean", bn.Mean[0])
	}
	h.Release()
	if bn.Mean[0] != origMean {
		t.Error("release must restore BN statistics")
	}
}

func TestDirectE5M2NoCalibration(t *testing.T) {
	m := newTestMLP(50)
	// Dataset with zero batches would break calibration; Direct must
	// not need it.
	ds := &vecDataset{n: 2, d: 8, batches: 1, seed: 9}
	h := Quantize(m, ds, StandardFP8(E5M2))
	defer h.Release()
	l1 := m.seq.Modules[0].(*nn.Linear)
	if l1.QS.Input == nil {
		t.Fatal("direct hook missing")
	}
	// Direct E5M2 rounds values straight to the format grid.
	dst := make([]float32, 1)
	l1.QS.Input(dst, []float32{3.3})
	if float64(dst[0]) != fp8.E5M2.Quantize(3.3) {
		t.Errorf("direct quant = %v, want %v", dst[0], fp8.E5M2.Quantize(3.3))
	}
}

func TestSmoothQuantImprovesOutlierMSE(t *testing.T) {
	// A Linear with one huge activation channel: SmoothQuant should
	// reduce static-INT8 output error.
	build := func() (*testMLP, *vecDataset) {
		m := newTestMLP(60)
		ds := &vecDataset{n: 8, d: 8, batches: 4, seed: 11, outlier: 30, bigChannel: true}
		return m, ds
	}
	m1, ds := build()
	base := m1.Run(ds.Batch(5))

	m2, _ := build()
	h2 := Quantize(m2, ds, StandardINT8(false))
	plain := m2.Run(ds.Batch(5))
	h2.Release()

	m3, _ := build()
	h3 := Quantize(m3, ds, StandardINT8(false).WithSmoothQuant(0.5))
	smooth := m3.Run(ds.Batch(5))
	h3.Release()

	mseP := tensor.MSE(base.Data, plain.Data)
	mseS := tensor.MSE(base.Data, smooth.Data)
	if mseS >= mseP {
		t.Errorf("SmoothQuant MSE %v should beat plain %v", mseS, mseP)
	}
}

func TestSmoothQuantReleaseRestores(t *testing.T) {
	m := newTestMLP(61)
	ds := &vecDataset{n: 4, d: 8, batches: 2, seed: 12, outlier: 10}
	l1 := m.seq.Modules[0].(*nn.Linear)
	orig := append([]float32(nil), l1.W.Data...)
	h := Quantize(m, ds, StandardFP8(E4M3).WithSmoothQuant(0.5))
	h.Release()
	for i := range orig {
		if l1.W.Data[i] != orig[i] {
			t.Fatal("SmoothQuant-folded weights not restored")
		}
	}
}

func TestFallbackPathsRespected(t *testing.T) {
	m := newTestMLP(70)
	ds := &vecDataset{n: 4, d: 8, batches: 2, seed: 13}
	// Find the first linear's path.
	var path string
	nn.Walk(m.Root(), func(p string, mod nn.Module) {
		if _, ok := mod.(*nn.Linear); ok && path == "" {
			path = p
		}
	})
	h := Quantize(m, ds, StandardFP8(E4M3).WithFallback(path))
	defer h.Release()
	l1 := m.seq.Modules[0].(*nn.Linear)
	if l1.QS.Input != nil {
		t.Error("fallback path still quantized")
	}
	found := false
	for _, p := range h.Report.FallbackOps {
		if p == path {
			found = true
		}
	}
	if !found {
		t.Errorf("fallback not reported: %+v", h.Report.FallbackOps)
	}
}

func TestMixedFormatsRecipe(t *testing.T) {
	r := MixedFP8()
	if r.Act != E4M3 || r.Wgt != E3M4 {
		t.Fatalf("mixed recipe = %+v", r)
	}
	m := newTestMLP(80)
	ds := &vecDataset{n: 4, d: 8, batches: 2, seed: 14}
	l1 := m.seq.Modules[0].(*nn.Linear)
	h := Quantize(m, ds, r)
	defer h.Release()
	// Weights must sit on the E3M4 grid (after per-channel scaling):
	// check a channel round-trips under its own scale.
	am := ChannelAbsMax(l1.W, 0)
	for i := 0; i < l1.In; i++ {
		v := float64(l1.W.Data[i])
		scale := fp8.E3M4.MaxValue() / am[0]
		q := fp8.E3M4.Quantize(v*scale) / scale
		if math.Abs(q-v) > 1e-6*math.Abs(v)+1e-12 {
			t.Errorf("weight[%d]=%v not on E3M4 grid", i, v)
		}
	}
}

func TestAutoTunePassesEasyCase(t *testing.T) {
	m := newTestMLP(90)
	ds := &vecDataset{n: 8, d: 8, batches: 4, seed: 15}
	// Accuracy proxy: cosine similarity of outputs vs FP32 reference.
	ref := m.Run(ds.Batch(9)).Clone()
	eval := func() float64 {
		out := m.Run(ds.Batch(9))
		return tensor.CosineSimilarity(ref.Data, out.Data)
	}
	res := AutoTune(m, ds, eval, 1.0, DefaultCandidates(false), 0.01, 20)
	if !res.Passed {
		t.Fatalf("auto-tune failed on easy model: %+v", res.Trials)
	}
	if len(res.Trials) == 0 {
		t.Fatal("no trials recorded")
	}
	// Model must be restored.
	l1 := m.seq.Modules[0].(*nn.Linear)
	if l1.QS.Input != nil {
		t.Error("model not restored after tuning")
	}
}

func TestAutoTuneFallsBack(t *testing.T) {
	m := newTestMLP(91)
	ds := &vecDataset{n: 8, d: 8, batches: 4, seed: 16, outlier: 50}
	ref := m.Run(ds.Batch(9)).Clone()
	eval := func() float64 {
		out := m.Run(ds.Batch(9))
		return tensor.CosineSimilarity(ref.Data, out.Data)
	}
	// Force an impossible-to-pass ladder (INT8 only with tight goal) so
	// the fallback machinery engages.
	res := AutoTune(m, ds, eval, 1.0, []Recipe{StandardINT8(false)}, 1e-9, 12)
	if len(res.Trials) < 2 {
		t.Errorf("expected fallback trials, got %d", len(res.Trials))
	}
	if res.Passed {
		// Fine: fallback found a passing config; Best must have
		// fallback entries.
		if len(res.Best.Fallback) == 0 {
			t.Error("passed without any fallback on an impossible goal?")
		}
	}
}

func TestRecipeNamesAndDTypes(t *testing.T) {
	if StandardFP8(E4M3).Name() != "E4M3 Static" {
		t.Errorf("name = %q", StandardFP8(E4M3).Name())
	}
	if StandardFP8(E5M2).Name() != "E5M2 Direct" {
		t.Errorf("name = %q", StandardFP8(E5M2).Name())
	}
	if !E4M3.IsFP8() || INT8.IsFP8() || FP32.IsFP8() {
		t.Error("IsFP8 wrong")
	}
	if E3M4.Format().Name != "E3M4" {
		t.Error("Format mapping wrong")
	}
	if CalibKL.String() != "kl" || CalibMax.String() != "max" {
		t.Error("calib names wrong")
	}
}

func TestObserverFactory(t *testing.T) {
	if _, ok := NewObserver(CalibMax).(*MinMaxObserver); !ok {
		t.Error("max -> MinMaxObserver")
	}
	if _, ok := NewObserver(CalibKL).(*HistogramObserver); !ok {
		t.Error("kl -> HistogramObserver")
	}
	if _, ok := NewObserver(CalibPercentile).(*PercentileObserver); !ok {
		t.Error("percentile -> PercentileObserver")
	}
}

func TestChannelAbsMax(t *testing.T) {
	w := tensor.FromSlice([]float32{1, -3, 0.5, 2}, 2, 2)
	am := ChannelAbsMax(w, 0)
	if am[0] != 3 || am[1] != 2 {
		t.Errorf("channel absmax = %v", am)
	}
}
