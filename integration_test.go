package fp8quant_bench

import (
	"math"
	"testing"

	"fp8quant/internal/data"
	"fp8quant/internal/diffusion"
	"fp8quant/internal/evalx"
	"fp8quant/internal/models"
	"fp8quant/internal/nn"
	"fp8quant/internal/quant"
	"fp8quant/internal/tensor"
	"fp8quant/internal/textgen"
)

// TestEndToEndPTQAcrossDomains runs the full pipeline — build,
// calibrate, convert, evaluate, restore — on one model per domain and
// checks the recommended format passes the paper's accuracy criterion.
func TestEndToEndPTQAcrossDomains(t *testing.T) {
	cases := []struct {
		model  string
		recipe quant.Recipe
		// minAcc relaxes the pass criterion for Score-metric models
		// (Pearson degrades quadratically in noise and has no margin
		// filter; see DESIGN.md §5).
		minAcc float64
	}{
		{"cifar_resnet20", quant.StandardFP8(quant.E3M4), 0.99},  // CV: E3M4 recommended
		{"distilbert_mrpc", quant.StandardFP8(quant.E4M3), 0.99}, // NLP: E4M3 recommended
		{"wav2vec2_librispeech", quant.StandardFP8(quant.E3M4), 0.99},
		{"dlrm_criteo", quant.StandardFP8(quant.E3M4), 0.97},
	}
	for _, c := range cases {
		c := c
		t.Run(c.model, func(t *testing.T) {
			t.Parallel()
			net, err := models.Build(c.model)
			if err != nil {
				t.Fatal(err)
			}
			res := evalx.Evaluate(net, c.recipe, true)
			if res.QAcc < c.minAcc {
				t.Errorf("%s with %s: acc %.4f (loss %.2f%%), want >= %.2f",
					c.model, c.recipe.Name(), res.QAcc, res.RelLoss*100, c.minAcc)
			}
		})
	}
}

// TestQuantizeIsReversibleOnComplexModel verifies bit-exact restore on
// a model containing every quantizable op kind.
func TestQuantizeIsReversibleOnComplexModel(t *testing.T) {
	net, err := models.Build("bert_base_mrpc")
	if err != nil {
		t.Fatal(err)
	}
	before := net.Run(net.Data.Batch(2)).Clone()
	recipes := []quant.Recipe{
		quant.StandardFP8(quant.E4M3).WithExtendedOps().WithSmoothQuant(0.5),
		quant.MixedFP8(),
		quant.StandardINT8(true),
		quant.DynamicFP8(quant.E3M4),
	}
	for _, r := range recipes {
		h := quant.Quantize(net, net.Data, r)
		h.Release()
		after := net.Run(net.Data.Batch(2))
		for i := range after.Data {
			if after.Data[i] != before.Data[i] {
				t.Fatalf("recipe %s: model not restored bit-exactly", r.Name())
			}
		}
	}
}

// TestExtendedOpsCoverageCounts checks the extended scheme actually
// covers the operator families Figure 9 lists.
func TestExtendedOpsCoverageCounts(t *testing.T) {
	net, _ := models.Build("bert_base_mrpc")
	h := quant.Quantize(net, net.Data, quant.StandardFP8(quant.E4M3).WithExtendedOps())
	defer h.Release()
	for _, kind := range []string{"Linear", "LayerNorm", "BatchMatMul", "Add"} {
		if h.Report.QuantizedOps[kind] == 0 {
			t.Errorf("extended scheme did not cover %s ops: %v", kind, h.Report.QuantizedOps)
		}
	}
}

// TestRecommendedFormatsByDomain is the paper's headline recommendation
// (Section 5): E4M3 for NLP, E3M4 marginally better for CV — verified
// as mean relative loss over small per-domain pools.
func TestRecommendedFormatsByDomain(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-model sweep")
	}
	meanLoss := func(names []string, r quant.Recipe) float64 {
		s := 0.0
		for _, n := range names {
			net, err := models.Build(n)
			if err != nil {
				t.Fatal(err)
			}
			s += evalx.Evaluate(net, r, true).RelLoss
		}
		return s / float64(len(names))
	}
	cv := []string{"cifar_resnet20", "squeezenet", "googlenet"}
	cvE3 := meanLoss(cv, quant.StandardFP8(quant.E3M4))
	cvE5 := meanLoss(cv, quant.StandardFP8(quant.E5M2))
	if cvE3 > cvE5 {
		t.Errorf("CV: E3M4 loss %.4f should not exceed E5M2 loss %.4f", cvE3, cvE5)
	}
	nlp := []string{"distilbert_mrpc", "tinybert_mrpc", "albert_sst2"}
	nlpE4 := meanLoss(nlp, quant.StandardFP8(quant.E4M3))
	nlpE5 := meanLoss(nlp, quant.StandardFP8(quant.E5M2))
	if nlpE4 > nlpE5 {
		t.Errorf("NLP: E4M3 loss %.4f should not exceed E5M2 loss %.4f", nlpE4, nlpE5)
	}
}

// TestTextGenerationPipelineUnderQuantization runs the quantized
// generator and checks the FP8 next-token distribution stays closer to
// FP32 than the INT8 baseline's. (Beam-search trajectories diverge
// chaotically after the first mismatch, so the distribution-level KL is
// the stable Table 4 shape check; trajectory metrics are reported by
// fp8bench -exp table4.)
func TestTextGenerationPipelineUnderQuantization(t *testing.T) {
	lm := models.NewGenLM(0x1E57)
	prompts := [][]int{
		{2, 7, 12, 17, 22, 27, 32, 37},
		{1, 3, 5, 7, 11, 13, 17, 19},
		{40, 41, 42, 43, 44, 45, 46, 47},
		{9, 90, 18, 80, 27, 70, 36, 60},
	}
	kl := func(r quant.Recipe) float64 {
		r.CalibBatches = 4
		h := quant.Quantize(lm, lm.DataSet, r)
		defer h.Release()
		return textgen.NextTokenKL(&fp32GenLM{lm: models.NewGenLM(0x1E57)}, lm, prompts)
	}
	e3m4 := kl(quant.StandardFP8(quant.E3M4))
	int8 := kl(quant.StandardINT8(true))
	if e3m4 >= int8 {
		t.Errorf("E3M4 next-token KL %.4f should be < INT8 dynamic %.4f", e3m4, int8)
	}
	// Beam search still runs end-to-end on the quantized model.
	h := quant.Quantize(lm, lm.DataSet, quant.MixedFP8())
	gen := textgen.BeamSearch(lm, prompts[0], 4, 20)
	h.Release()
	if len(gen) != 20 {
		t.Errorf("generated %d tokens, want 20", len(gen))
	}
}

// fp32GenLM wraps a pristine FP32 copy of the generator as the KL
// reference.
type fp32GenLM struct{ lm *models.GenLM }

func (f *fp32GenLM) NextLogits(tokens [][]int) *tensor.Tensor { return f.lm.NextLogits(tokens) }
func (f *fp32GenLM) Vocab() int                               { return f.lm.Vocab() }

// TestDiffusionFIDOrdering checks the Figure 6 shape end-to-end: FP8
// FID below INT8-dynamic FID.
func TestDiffusionFIDOrdering(t *testing.T) {
	pipe := diffusion.NewPipeline(0xD1F2, 2)
	ref := pipe.Generate(16)
	fid := func(r quant.Recipe) float64 {
		r.CalibBatches = 4
		h := quant.Quantize(pipe, pipe.CalibData(), r)
		gen := pipe.Generate(16)
		h.Release()
		return diffusion.FIDAgainst(ref, gen)
	}
	e4 := fid(quant.StandardFP8(quant.E4M3))
	i8 := fid(quant.StandardINT8(true))
	if e4 >= i8 {
		t.Errorf("FID(E4M3)=%v should be < FID(INT8 dynamic)=%v", e4, i8)
	}
}

// TestBNCalibrationImprovesQuantizedCNN verifies the Figure 7 property
// end-to-end: re-calibrating BatchNorm statistics after quantization
// reduces the output error of a quantized CNN.
// Classic CNNs benefit; channel-imbalanced mobile nets can diverge
// under heavy quantization noise (their recalibrated variances chase
// quantization-collapsed channels), so the assertion uses a
// Figure 7-style network.
func TestBNCalibrationImprovesQuantizedCNN(t *testing.T) {
	net, err := models.Build("resnet18")
	if err != nil {
		t.Fatal(err)
	}
	base := net.Run(net.Data.Batch(8)).Clone()
	outErr := func(r quant.Recipe) float64 {
		h := quant.Quantize(net, net.Data, r)
		out := net.Run(net.Data.Batch(8))
		h.Release()
		var s float64
		for i := range out.Data {
			d := float64(out.Data[i] - base.Data[i])
			s += d * d
		}
		return math.Sqrt(s / float64(out.Len()))
	}
	plain := outErr(quant.StandardFP8(quant.E4M3))
	calib := outErr(quant.StandardFP8(quant.E4M3).WithBNCalib(4))
	if calib >= plain {
		t.Errorf("BN calibration should reduce output error: %v vs %v", calib, plain)
	}
}

// TestAugmentedCalibrationDataFlows checks the Figure 7 data path: a
// transform-bearing dataset feeds quantization without disturbing the
// reversibility contract.
func TestAugmentedCalibrationDataFlows(t *testing.T) {
	net, err := models.Build("cifar_resnet20")
	if err != nil {
		t.Fatal(err)
	}
	before := net.Run(net.Data.Batch(0)).Clone()
	ds := &data.ImageDataset{N: 16, C: 3, H: 12, W: 12, NumBatches: 8,
		Seed: 99, Transform: data.AugmentTraining}
	r := quant.StandardFP8(quant.E3M4).WithBNCalib(4)
	r.CalibBatches = 4
	h := quant.Quantize(net, ds, r)
	h.Release()
	after := net.Run(net.Data.Batch(0))
	for i := range after.Data {
		if after.Data[i] != before.Data[i] {
			t.Fatal("augmented calibration broke restore")
		}
	}
}

// TestWalkPathsAreUnique guards the fallback machinery: every module
// path in every zoo model must be unique, or fallbacks would be
// ambiguous.
func TestWalkPathsAreUnique(t *testing.T) {
	for _, name := range []string{"bert_base_mrpc", "resnet50", "dlrm_criteo", "marianmt_enro"} {
		net, _ := models.Build(name)
		seen := map[string]bool{}
		dup := ""
		nn.Walk(net.Root(), func(path string, _ nn.Module) {
			if seen[path] {
				dup = path
			}
			seen[path] = true
		})
		if dup != "" {
			t.Errorf("%s: duplicate module path %q", name, dup)
		}
	}
}
