// Package resultstore persists experiment result grids to disk as
// content-addressed JSON files, so repeated fp8bench invocations reuse
// sweeps instead of recomputing them. A grid is keyed by a fingerprint
// of (experiment id, model set, recipe set, seed, schema version);
// writes are atomic (temp file + rename) and reads tolerate corrupt or
// stale files by treating them as misses, so a damaged cache can never
// poison a report — at worst it costs a recompute.
package resultstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"fp8quant/internal/evalx"
)

// SchemaVersion identifies the evaluation-code generation a stored grid
// was produced by. Bump it whenever evalx.Result's layout, the batch
// protocol, or anything else that changes grid numbers changes; stored
// grids from other versions are treated as misses.
const SchemaVersion = 1

// Key identifies one cached grid. Models and Recipes are ordered — the
// grid is indexed [model][recipe], so order is part of the identity.
type Key struct {
	// Experiment is the experiment id (e.g. "table2-sweep").
	Experiment string `json:"experiment"`
	// Models are the model names of the grid rows, in row order.
	Models []string `json:"models"`
	// Recipes label the grid columns, in column order.
	Recipes []string `json:"recipes"`
	// Seed is the experiment-level seed (model weights derive further
	// per-name seeds from it or independently of it).
	Seed uint64 `json:"seed"`
	// Schema is the evaluation-code schema version (SchemaVersion).
	Schema int `json:"schema"`
}

// Fingerprint returns the content address of the key: a 128-bit hex
// digest of its canonical JSON encoding.
func (k Key) Fingerprint() string {
	b, err := json.Marshal(k)
	if err != nil {
		panic("resultstore: unmarshalable key: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16])
}

// Stats counts store traffic since Open.
type Stats struct {
	Hits, Misses, Writes int64
}

// String formats the stats as the fp8bench cache-stats line body.
func (s Stats) String() string {
	return fmt.Sprintf("%d hits, %d misses, %d writes", s.Hits, s.Misses, s.Writes)
}

// Store is a directory of content-addressed grid files. A nil *Store is
// valid and behaves as an always-miss, never-write store.
type Store struct {
	dir                  string
	hits, misses, writes atomic.Int64
}

// Open creates (if needed) and opens the store directory.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// Stats returns a snapshot of the traffic counters.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	return Stats{Hits: s.hits.Load(), Misses: s.misses.Load(), Writes: s.writes.Load()}
}

// Path returns the file a key's grid is stored at.
func (s *Store) Path(k Key) string {
	return filepath.Join(s.dir, k.Fingerprint()+".json")
}

// envelope is the on-disk format: the schema version and full key ride
// along with the grid so reads can reject stale or colliding entries.
type envelope struct {
	Schema int              `json:"schema"`
	Key    Key              `json:"key"`
	Grid   [][]evalx.Result `json:"grid"`
}

// LoadGrid returns the stored grid for the key, or (nil, false) on any
// miss: absent file, unreadable JSON, schema mismatch, or key mismatch.
func (s *Store) LoadGrid(k Key) ([][]evalx.Result, bool) {
	if s == nil {
		return nil, false
	}
	path := s.Path(k)
	b, err := os.ReadFile(path)
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	var env envelope
	if err := json.Unmarshal(b, &env); err != nil {
		// Corrupt entry (torn write from a crashed process, disk
		// damage): treat as a miss. Deliberately not deleted — the
		// recompute's SaveGrid rename replaces it atomically, and a
		// delete here could race a concurrent process's just-renamed
		// valid grid.
		s.misses.Add(1)
		return nil, false
	}
	if env.Schema != k.Schema || !keysEqual(env.Key, k) {
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return env.Grid, true
}

// SaveGrid atomically persists the grid under the key: the JSON is
// written to a temp file in the store directory and renamed into place,
// so concurrent readers only ever see complete entries.
func (s *Store) SaveGrid(k Key, grid [][]evalx.Result) error {
	if s == nil {
		return nil
	}
	b, err := json.Marshal(envelope{Schema: k.Schema, Key: k, Grid: grid})
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, ".grid-*.tmp")
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.Path(k)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: %w", err)
	}
	s.writes.Add(1)
	return nil
}

// keysEqual compares keys by canonical encoding (guards fingerprint
// collisions and hand-edited files).
func keysEqual(a, b Key) bool {
	ab, _ := json.Marshal(a)
	bb, _ := json.Marshal(b)
	return string(ab) == string(bb)
}
