//go:build !amd64

package kernels

// packPanel8 interleaves nr contiguous source rows into a full micro
// panel; non-amd64 hosts use the fused row walk.
func packPanel8(dst, src []float32, in int) { packPanel8Go(dst, src, in, 0) }
