package harness

import (
	"bytes"
	"fmt"
	"os"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"fp8quant/internal/evalx"
	"fp8quant/internal/resultstore"
	"fp8quant/internal/tensor/kernels"
)

// newExecTestExp returns a cheap deterministic 3x2 grid experiment and
// a counter of actual RunCell invocations.
func newExecTestExp() (Experiment, *atomic.Int64) {
	var computes atomic.Int64
	spec := func() GridSpec {
		return GridSpec{
			ID:   "exec-test",
			Seed: 3,
			Axes: []Axis{
				{Name: "model", Values: []string{"ma", "mb", "mc"}},
				{Name: "recipe", Values: []string{"r1", "r2"}},
			},
		}
	}
	cell := func(c Cell) evalx.Result {
		computes.Add(1)
		return evalx.Result{
			Model: c.Values[0], Recipe: c.Values[1],
			BaseAcc: 1, QAcc: 1 - float64(c.Index)/100,
			RelLoss: float64(c.Index) / 100, Pass: c.Index == 0,
			Metrics: map[string]float64{"aux": float64(c.Index) * 1.5},
		}
	}
	render := func(g *Grid) *Report {
		tb := newTable("cell", "qacc", "aux")
		vals := map[string]float64{}
		for i, r := range g.Results {
			key := g.Spec.KeyString(g.Spec.CellAt(i))
			tb.add(key, fmt.Sprintf("%.4f", r.QAcc), fmt.Sprintf("%.2f", r.Metrics["aux"]))
			vals["qacc_"+key] = r.QAcc
		}
		return &Report{Text: tb.String(), Values: vals}
	}
	return gridExp{id: "exec-test", title: "executor test grid", spec: spec, cell: cell, render: render}, &computes
}

// requireSameReport asserts byte-identical text and bit-identical
// values between two reports.
func requireSameReport(t *testing.T, a, b *Report, what string) {
	t.Helper()
	if a.Text != b.Text {
		t.Errorf("%s: report text differs:\n--- a ---\n%s\n--- b ---\n%s", what, a.Text, b.Text)
	}
	if !reflect.DeepEqual(a.Values, b.Values) {
		t.Errorf("%s: report values differ: %v vs %v", what, a.Values, b.Values)
	}
}

// TestResumeRecomputesOnlyMissingCells is the end-to-end per-cell
// resume contract: delete a subset of cell files from a warm store and
// re-run — the executor must recompute exactly the deleted cells
// (store misses == deleted cells) and the rendered report must be
// byte-identical to the cold run, serially and at full parallelism.
func TestResumeRecomputesOnlyMissingCells(t *testing.T) {
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			withCleanCache(t)
			SetWorkers(workers)
			defer SetWorkers(0)
			s, err := resultstore.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			SetStore(s)
			e, computes := newExecTestExp()
			spec := e.Spec()
			n := spec.NumCells()

			cold := Run(e)
			if got := computes.Load(); got != int64(n) {
				t.Fatalf("cold run computed %d cells, want %d", got, n)
			}
			if st := s.Stats(); st.Writes != int64(n) || st.Misses != int64(n) {
				t.Fatalf("cold run store stats = %+v, want %d misses / %d writes", st, n, n)
			}

			// Warm full run across a process boundary: zero computes.
			ClearMemo()
			computes.Store(0)
			beforeWarm := s.Stats()
			warm := Run(e)
			if got := computes.Load(); got != 0 {
				t.Fatalf("warm run computed %d cells, want 0", got)
			}
			if d := s.Stats(); d.Hits-beforeWarm.Hits != int64(n) {
				t.Fatalf("warm run hits = %d, want %d", d.Hits-beforeWarm.Hits, n)
			}
			requireSameReport(t, cold, warm, "warm vs cold")

			// Interrupt simulation: drop a subset of cells, re-run.
			deleted := []int{1, 4}
			for _, i := range deleted {
				path := s.CellPath(spec.CellKey(spec.CellAt(i)))
				if err := os.Remove(path); err != nil {
					t.Fatalf("deleting cell %d: %v", i, err)
				}
			}
			ClearMemo()
			computes.Store(0)
			before := s.Stats()
			resumed := Run(e)
			if got := computes.Load(); got != int64(len(deleted)) {
				t.Fatalf("resume computed %d cells, want %d (only the deleted ones)", got, len(deleted))
			}
			d := s.Stats()
			if misses := d.Misses - before.Misses; misses != int64(len(deleted)) {
				t.Errorf("resume misses = %d, want %d", misses, len(deleted))
			}
			if hits := d.Hits - before.Hits; hits != int64(n-len(deleted)) {
				t.Errorf("resume hits = %d, want %d", hits, n-len(deleted))
			}
			if writes := d.Writes - before.Writes; writes != int64(len(deleted)) {
				t.Errorf("resume writes = %d, want %d", writes, len(deleted))
			}
			requireSameReport(t, cold, resumed, "resumed vs cold")
		})
	}
}

// TestRunGridRecoversCellPanic checks a panicking RunCell becomes an
// Err-marked, never-persisted result instead of killing the process —
// cells run on pool worker goroutines, where an escaped panic is fatal
// regardless of any recover in the caller.
func TestRunGridRecoversCellPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		withCleanCache(t)
		SetWorkers(workers)
		s, err := resultstore.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		SetStore(s)
		spec := func() GridSpec {
			return GridSpec{ID: "panic-test", Axes: []Axis{{Name: "i", Values: []string{"0", "1", "2"}}}}
		}
		cell := func(c Cell) evalx.Result {
			if c.Index == 1 {
				panic("cell blew up")
			}
			return evalx.Result{Model: c.Values[0], QAcc: 1}
		}
		e := gridExp{id: "panic-test", title: "panic test", spec: spec, cell: cell,
			render: func(g *Grid) *Report { return &Report{Text: "ok", Values: map[string]float64{}} }}
		g, _, err := RunGrid(e, nil, Shard{})
		if err != nil {
			t.Fatal(err)
		}
		if g.Results[1].Err == "" || !strings.Contains(g.Results[1].Err, "panic") {
			t.Errorf("workers=%d: panicking cell result = %+v, want panic Err", workers, g.Results[1])
		}
		if g.Results[0].Err != "" || g.Results[2].Err != "" {
			t.Errorf("workers=%d: healthy cells affected: %+v", workers, g.Results)
		}
		if st := s.Stats(); st.Writes != 2 {
			t.Errorf("workers=%d: store writes = %d, want 2 (panicked cell never persisted)", workers, st.Writes)
		}
		SetWorkers(0)
	}
}

// TestRunGridFilterSelectsSubGrid checks a filter runs exactly the
// matching cells and SubGridReport renders them.
func TestRunGridFilterSelectsSubGrid(t *testing.T) {
	withCleanCache(t)
	SetStore(nil)
	e, computes := newExecTestExp()
	f := Filter{"model": {"mb"}}
	g, sel, err := RunGrid(e, f, Shard{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 || sel[0] != 2 || sel[1] != 3 {
		t.Fatalf("selected cells = %v, want [2 3]", sel)
	}
	if got := computes.Load(); got != 2 {
		t.Fatalf("filtered run computed %d cells, want 2", got)
	}
	// Unselected cells carry the sentinel Err, so a renderer handed the
	// partial grid skips them instead of aggregating zeros.
	if g.Results[0].Err != ErrNotSelected || g.Results[5].Err != ErrNotSelected {
		t.Errorf("unselected cells not marked: %+v / %+v", g.Results[0], g.Results[5])
	}
	rep := SubGridReport(e, g, sel)
	if !strings.Contains(rep.Text, "model=mb,recipe=r1") {
		t.Errorf("sub-grid report missing cell row:\n%s", rep.Text)
	}
	if !strings.Contains(rep.Text, "2 of 6 cells") {
		t.Errorf("sub-grid report missing selection summary:\n%s", rep.Text)
	}
	if _, ok := rep.Values["qacc_model=mb,recipe=r2"]; !ok {
		t.Errorf("sub-grid values missing cell entry: %v", rep.Values)
	}
}

// TestRunGridFilterNoMatch checks an unmatched filter is an error, not
// a silent full run.
func TestRunGridFilterNoMatch(t *testing.T) {
	withCleanCache(t)
	SetStore(nil)
	e, computes := newExecTestExp()
	if _, _, err := RunGrid(e, Filter{"model": {"nope"}}, Shard{}); err == nil {
		t.Fatal("unmatched filter should error")
	}
	if _, _, err := RunGrid(e, Filter{"no-such-axis": {"x"}}, Shard{}); err == nil {
		t.Fatal("unknown filter axis should error")
	}
	if got := computes.Load(); got != 0 {
		t.Fatalf("unmatched filter computed %d cells, want 0", got)
	}
	// A filter can never apply to an axis-less (scalar) experiment —
	// that must error too, not silently succeed with zero cells.
	scalar, _ := Get("fig1")
	if _, _, err := RunGrid(scalar, Filter{"model": {"resnet50"}}, Shard{}); err == nil {
		t.Fatal("filter on a scalar experiment should error")
	}
}

// TestRunGridWritesManifest checks a full run records the grid
// schedule once.
func TestRunGridWritesManifest(t *testing.T) {
	withCleanCache(t)
	s, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	SetStore(s)
	e, _ := newExecTestExp()
	Run(e)
	spec := e.Spec()
	m, ok := s.LoadManifest(spec.ID, spec.Seed)
	if !ok {
		t.Fatal("full run should write a grid manifest")
	}
	if len(m.Cells) != spec.NumCells() || len(m.Axes) != len(spec.Axes) {
		t.Errorf("manifest shape = %d cells / %d axes, want %d / %d",
			len(m.Cells), len(m.Axes), spec.NumCells(), len(spec.Axes))
	}
	if m.Cells[0] != spec.CellKey(spec.CellAt(0)).Fingerprint() {
		t.Error("manifest cell fingerprints disagree with the spec")
	}
	// The cold run computed fresh cells, so it stamps the dispatched
	// kernel variant into the manifest's provenance.
	if len(m.KernelVariants) != 1 || m.KernelVariants[0] != string(kernels.Active()) {
		t.Errorf("cold-run manifest variants = %v, want [%s]", m.KernelVariants, kernels.Active())
	}
	// A fully warm re-run serves everything from the store: it must not
	// restamp (nor otherwise rewrite) the manifest — a pre-variant
	// store's manifest stays byte-identical across warm runs.
	path := s.ManifestPath(spec.ID, spec.Seed)
	legacy := m
	legacy.KernelVariants = nil
	if err := s.SaveManifest(legacy); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ClearMemo()
	Run(e)
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("warm run rewrote the manifest of a variant-less store")
	}
}

// TestScalarExperimentRuns checks axis-less experiments execute
// entirely in Render with no store traffic.
func TestScalarExperimentRuns(t *testing.T) {
	withCleanCache(t)
	s, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	SetStore(s)
	e, _ := Get("fig3")
	rep := Run(e)
	if len(rep.Values) == 0 {
		t.Fatal("scalar experiment produced no values")
	}
	if st := s.Stats(); st.Hits+st.Misses+st.Writes != 0 {
		t.Errorf("scalar experiment touched the store: %+v", st)
	}
}

// TestParseFilter covers the -filter syntax table-driven: the happy
// paths, whitespace trimming, duplicate axes (merged, order kept),
// empty values and the malformed-term error paths.
func TestParseFilter(t *testing.T) {
	cases := []struct {
		name, in string
		want     Filter
		wantErr  bool
	}{
		{name: "empty means no filter", in: "", want: nil},
		{name: "blank means no filter", in: "   ", want: nil},
		{name: "single term", in: "model=resnet50",
			want: Filter{"model": {"resnet50"}}},
		{name: "alternatives and second axis", in: "model=resnet50;densenet121,recipe=E4M3 Static",
			want: Filter{"model": {"resnet50", "densenet121"}, "recipe": {"E4M3 Static"}}},
		{name: "whitespace around separators trimmed", in: " model = resnet50 ; densenet121 ",
			want: Filter{"model": {"resnet50", "densenet121"}}},
		{name: "duplicate axes merge in order", in: "model=a,recipe=r,model=b;c",
			want: Filter{"model": {"a", "b", "c"}, "recipe": {"r"}}},
		{name: "value containing equals kept whole", in: "recipe=E4M3(b=11)",
			want: Filter{"recipe": {"E4M3(b=11)"}}},
		{name: "bare axis", in: "model", wantErr: true},
		{name: "missing axis name", in: "=x", wantErr: true},
		{name: "empty value", in: "model=", wantErr: true},
		{name: "empty alternative", in: "model=a;;b", wantErr: true},
		{name: "blank alternative", in: "model=a; ", wantErr: true},
		{name: "whitespace-only axis", in: " =a", wantErr: true},
		{name: "trailing comma empty term", in: "model=a,", wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, err := ParseFilter(tc.in)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("ParseFilter(%q) = %v, want error", tc.in, f)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseFilter(%q): %v", tc.in, err)
			}
			if !reflect.DeepEqual(f, tc.want) {
				t.Errorf("ParseFilter(%q) = %v, want %v", tc.in, f, tc.want)
			}
		})
	}
}

// TestGridSpecCellOrder pins the row-major cell order and key shape.
func TestGridSpecCellOrder(t *testing.T) {
	e, _ := newExecTestExp()
	spec := e.Spec()
	c := spec.CellAt(3)
	if c.Values[0] != "mb" || c.Values[1] != "r2" {
		t.Errorf("cell 3 = %v, want [mb r2] (row-major, last axis fastest)", c.Values)
	}
	if got := spec.KeyString(c); got != "model=mb,recipe=r2" {
		t.Errorf("KeyString = %q", got)
	}
	k := spec.CellKey(c)
	if k.Grid != "exec-test" || k.Seed != 3 || k.Schema != resultstore.SchemaVersion {
		t.Errorf("cell key = %+v", k)
	}
	// Sibling cells must have distinct fingerprints.
	k2 := spec.CellKey(spec.CellAt(2))
	if k.Fingerprint() == k2.Fingerprint() {
		t.Error("distinct cells share a fingerprint")
	}
}

// TestSharedGridExperimentsShareCells checks table2/fig4/fig5 declare
// the identical sweep grid, so their cells are shared by construction.
func TestSharedGridExperimentsShareCells(t *testing.T) {
	t2, _ := Get("table2")
	f4, _ := Get("fig4")
	f5, _ := Get("fig5")
	s2, s4, s5 := t2.Spec(), f4.Spec(), f5.Spec()
	k2 := s2.CellKey(s2.CellAt(0)).Fingerprint()
	if k2 != s4.CellKey(s4.CellAt(0)).Fingerprint() || k2 != s5.CellKey(s5.CellAt(0)).Fingerprint() {
		t.Error("table2/fig4/fig5 should share cell fingerprints")
	}
}
