// Store warming over the wire: a restarted fleet member (or a fresh
// machine joining one) fills its local result store from the
// coordinator's cached cell bytes instead of needing a shared
// filesystem or an rsync step. Cells travel as the exact stored
// envelopes (GET /v1/cell/<fp>), and land through IngestCell, so a
// warmed store is byte-identical to one that computed the cells
// itself — warm runs over it report pure hits.

package coord

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"

	"fp8quant/internal/faultline"
	"fp8quant/internal/harness"
	"fp8quant/internal/resultstore"
)

// WarmStats summarizes one Warm call.
type WarmStats struct {
	// Fetched counts cells pulled from the coordinator into the store.
	Fetched int
	// Present counts cells the local store already held valid bytes for.
	Present int
	// Absent counts cells the coordinator does not have either (404) —
	// normal while a sweep is still running.
	Absent int
}

func (s WarmStats) String() string {
	return fmt.Sprintf("%d cells fetched, %d already present, %d absent upstream", s.Fetched, s.Present, s.Absent)
}

// Warm fetches every cell of the experiments' grids that the local
// store is missing from the coordinator at url, ingesting them under
// the store's usual conflict rules. Manifests are written locally from
// the specs (the same full-schedule rule local runs use), so coverage
// tooling works on the warmed store immediately. Fetches are single
// requests — an unreachable coordinator fails the warm; a missing cell
// does not.
func Warm(ctx context.Context, url string, store *resultstore.Store, exps []harness.Experiment, log io.Writer) (WarmStats, error) {
	var st WarmStats
	if store == nil {
		return st, fmt.Errorf("coord: Warm needs a store to warm")
	}
	client := &http.Client{}
	base := strings.TrimRight(url, "/")
	for _, e := range exps {
		spec := e.Spec()
		if spec.NumCells() == 0 {
			continue
		}
		saveManifest(store, spec)
		for i := 0; i < spec.NumCells(); i++ {
			fp := spec.CellKey(spec.CellAt(i)).Fingerprint()
			if _, ok := store.CellBytesByFingerprint(fp); ok {
				st.Present++
				continue
			}
			b, found, err := fetchCell(ctx, client, base, fp)
			if err != nil {
				return st, fmt.Errorf("coord: warm %s cell %d: %w", e.ID(), i, err)
			}
			if !found {
				st.Absent++
				continue
			}
			if _, err := store.IngestCell(fp, b); err != nil {
				return st, fmt.Errorf("coord: warm %s cell %d: %w", e.ID(), i, err)
			}
			st.Fetched++
		}
		if log != nil {
			fmt.Fprintf(log, "warm %s: %s\n", e.ID(), st)
		}
	}
	return st, nil
}

// fetchCell GETs one cell's stored bytes; found=false on 404.
func fetchCell(ctx context.Context, client *http.Client, base, fp string) ([]byte, bool, error) {
	if err := faultline.Hit("coord.client.cell"); err != nil {
		return nil, false, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/cell/"+fp, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, false, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return b, true, nil
	case http.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("GET /v1/cell/%s: HTTP %d: %s", fp, resp.StatusCode, strings.TrimSpace(string(b)))
	}
}
