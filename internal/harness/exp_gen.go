package harness

import (
	"fmt"
	"sync"

	"fp8quant/internal/diffusion"
	"fp8quant/internal/evalx"
	"fp8quant/internal/models"
	"fp8quant/internal/quant"
	"fp8quant/internal/tensor"
	"fp8quant/internal/textgen"
)

func init() {
	registerGrid("fig6", "Figure 6 / A.2: Stable Diffusion FID across formats", fig6Spec, runFig6Cell, renderFig6)
	registerGrid("table4", "Table 4 / A.3: Bloom text generation quality", table4Spec, runTable4Cell, renderTable4)
}

// ---- fig6 ----

// Three prompts stand in for the three prompt studies (Figures 6, 11,
// 12). FP32 generations are the FID reference.
const (
	fig6Seed            = 0xF166
	fig6Prompts         = 3
	fig6ImagesPerPrompt = 24
)

var fig6Cfgs = []struct {
	label  string
	recipe func() quant.Recipe
}{
	{"FP8-E5M2 Direct", func() quant.Recipe { return quant.StandardFP8(quant.E5M2) }},
	{"FP8-E4M3 Dynamic", func() quant.Recipe { return quant.DynamicFP8(quant.E4M3) }},
	{"FP8-E4M3 Static", func() quant.Recipe { return quant.StandardFP8(quant.E4M3) }},
	{"FP8-E4M3 Static +LayerNorm", func() quant.Recipe { return quant.StandardFP8(quant.E4M3).WithExtendedOps() }},
	{"FP8-E3M4 Dynamic", func() quant.Recipe { return quant.DynamicFP8(quant.E3M4) }},
	{"FP8-E3M4 Static", func() quant.Recipe { return quant.StandardFP8(quant.E3M4) }},
	{"INT8-Dynamic", func() quant.Recipe { return quant.StandardINT8(true) }},
	{"INT8-Static", func() quant.Recipe { return quant.StandardINT8(false) }},
}

// genRefMu guards the lazily computed fig6/table4 FP32 references:
// pure deterministic data, computed at most once between ClearMemo
// calls and only when some cell actually misses every cache. ClearMemo
// resets them (clearGenRefs) so its "drop every in-process cache"
// contract holds and memory can actually be released.
var (
	genRefMu     sync.Mutex
	fig6Ref      *tensor.Tensor
	table4RefGen []int
)

func clearGenRefs() {
	genRefMu.Lock()
	fig6Ref = nil
	table4RefGen = nil
	genRefMu.Unlock()
}

func fig6Reference() *tensor.Tensor {
	genRefMu.Lock()
	defer genRefMu.Unlock()
	if fig6Ref == nil {
		//fp8vet:ignore cellpurity mutex-guarded compute-once cache of seeded reference data; every caller computes the identical value, so fill order cannot matter
		fig6Ref = diffusion.NewPipeline(fig6Seed, fig6Prompts).Generate(fig6ImagesPerPrompt)
	}
	return fig6Ref
}

func fig6Spec() GridSpec {
	labels := make([]string, len(fig6Cfgs))
	for i, c := range fig6Cfgs {
		labels[i] = c.label
	}
	return GridSpec{
		ID:   "fig6",
		Seed: fig6Seed,
		Axes: []Axis{{Name: "config", Values: labels}},
	}
}

// runFig6Cell quantizes a private, deterministically rebuilt pipeline
// (identical weights for every cell) and measures the FID of its
// generations against the FP32 reference.
func runFig6Cell(c Cell) evalx.Result {
	pipe := diffusion.NewPipeline(fig6Seed, fig6Prompts)
	r := fig6Cfgs[c.Index].recipe()
	r.CalibBatches = 8
	h := quant.Quantize(pipe, pipe.CalibData(), r)
	gen := pipe.Generate(fig6ImagesPerPrompt)
	h.Release()
	fid := diffusion.FIDAgainst(fig6Reference(), gen)
	return evalx.Result{
		Model: "diffusion", Recipe: c.Values[0],
		Metrics: map[string]float64{"fid": fid},
	}
}

func renderFig6(g *Grid) *Report {
	tb := newTable("config", "FID (vs FP32 generations)")
	vals := map[string]float64{}
	for i, c := range fig6Cfgs {
		r := g.Results[i]
		if r.Err != "" {
			tb.add(c.label, "error: "+r.Err)
			continue
		}
		fid := r.Metrics["fid"]
		tb.add(c.label, fmt.Sprintf("%.2f", fid*100))
		vals["fid_"+c.label] = fid * 100
	}
	return &Report{
		Text: "Figure 6 / Appendix A.2 reproduction: FID of generated latent features vs the\n" +
			"FP32 pipeline (lower is better; paper finds FP8 formats below INT8, E4M3/E3M4\n" +
			"best). FID scaled x100 for readability.\n\n" + tb.String(),
		Values: vals,
	}
}

// ---- table4 ----

// The Bloom 32-token prompt, beam width 4, 100 new tokens.
const (
	table4Seed                                     = 0x7AB4
	table4BeamWidth, table4MaxNew, table4PromptLen = 4, 100, 32
)

var table4Cfgs = []struct {
	label  string
	recipe func() quant.Recipe
}{
	{"INT8 Dynamic", func() quant.Recipe { return quant.StandardINT8(true) }},
	{"E5M2 Direct", func() quant.Recipe { return quant.StandardFP8(quant.E5M2) }},
	{"E4M3 Dynamic", func() quant.Recipe { return quant.DynamicFP8(quant.E4M3) }},
	{"E4M3 Static", func() quant.Recipe { return quant.StandardFP8(quant.E4M3) }},
	{"E3M4 Dynamic", func() quant.Recipe { return quant.DynamicFP8(quant.E3M4) }},
	{"E3M4 Static", func() quant.Recipe { return quant.StandardFP8(quant.E3M4) }},
	{"FP8 Mixed", func() quant.Recipe { return quant.MixedFP8() }},
}

const table4RefLabel = "FP32 (reference)"

// table4Prompt is the fixed synthetic prompt (deterministic
// mixed-frequency tokens).
func table4Prompt(vocab int) []int {
	prompt := make([]int, table4PromptLen)
	for i := range prompt {
		prompt[i] = (i*7 + 3) % vocab
	}
	return prompt
}

// table4Reference lazily computes the FP32 beam-search generation the
// quantized cells diverge from — needed only on cache misses, reset by
// ClearMemo (see genRefMu).
func table4Reference() []int {
	genRefMu.Lock()
	defer genRefMu.Unlock()
	if table4RefGen == nil {
		lm := models.NewGenLM(table4Seed)
		//fp8vet:ignore cellpurity mutex-guarded compute-once cache of seeded reference data; every caller computes the identical value, so fill order cannot matter
		table4RefGen = textgen.BeamSearch(lm, table4Prompt(lm.Vocab()), table4BeamWidth, table4MaxNew)
	}
	return table4RefGen
}

// table4Spec puts the FP32 reference row on the grid as cell 0: its
// divergence metrics persist with the quantized cells, so a fully warm
// run renders without re-running any beam search.
func table4Spec() GridSpec {
	labels := make([]string, 0, len(table4Cfgs)+1)
	labels = append(labels, table4RefLabel)
	for _, c := range table4Cfgs {
		labels = append(labels, c.label)
	}
	return GridSpec{
		ID:   "table4",
		Seed: table4Seed,
		Axes: []Axis{{Name: "config", Values: labels}},
	}
}

// runTable4Cell quantizes a private, deterministically rebuilt
// generator and beam-searches it against the read-only FP32 reference
// sequence. Cell 0 is the reference row itself.
func runTable4Cell(c Cell) evalx.Result {
	refGen := table4Reference()
	if c.Index == 0 {
		return evalx.Result{
			Model: "genlm", Recipe: table4RefLabel,
			Metrics: map[string]float64{
				"first_divergence": float64(len(refGen)),
				"match_rate":       1,
				"repetition":       textgen.RepetitionRate(refGen, 3),
				"distinct2":        textgen.DistinctN(refGen, 2),
			},
		}
	}
	lm := models.NewGenLM(table4Seed)
	r := table4Cfgs[c.Index-1].recipe()
	r.CalibBatches = 4
	h := quant.Quantize(lm, lm.DataSet, r)
	gen := textgen.BeamSearch(lm, table4Prompt(lm.Vocab()), table4BeamWidth, table4MaxNew)
	h.Release()
	m := textgen.Compare(refGen, gen)
	return evalx.Result{
		Model: "genlm", Recipe: c.Values[0],
		Metrics: map[string]float64{
			"first_divergence": float64(m.FirstDivergence),
			"match_rate":       m.MatchRate,
			"repetition":       m.RepetitionRate,
			"distinct2":        m.DistinctN,
		},
	}
}

func renderTable4(g *Grid) *Report {
	tb := newTable("config", "first divergence", "match rate", "repetition (3-gram)", "distinct-2")
	vals := map[string]float64{}
	if ref := g.Results[0]; ref.Err != "" {
		tb.add(table4RefLabel, "error: "+ref.Err)
	} else {
		m := ref.Metrics
		tb.add(table4RefLabel, fmt.Sprintf("%d", int(m["first_divergence"])),
			fmt.Sprintf("%.3f", m["match_rate"]),
			fmt.Sprintf("%.3f", m["repetition"]), fmt.Sprintf("%.3f", m["distinct2"]))
		vals["ref_repetition"] = m["repetition"]
	}
	for i, c := range table4Cfgs {
		r := g.Results[i+1]
		if r.Err != "" {
			tb.add(c.label, "error: "+r.Err)
			continue
		}
		m := r.Metrics
		tb.add(c.label, fmt.Sprintf("%d", int(m["first_divergence"])),
			fmt.Sprintf("%.3f", m["match_rate"]),
			fmt.Sprintf("%.3f", m["repetition"]),
			fmt.Sprintf("%.3f", m["distinct2"]))
		vals["repetition_"+c.label] = m["repetition"]
		vals["match_"+c.label] = m["match_rate"]
		vals["distinct_"+c.label] = m["distinct2"]
	}
	return &Report{
		Text: "Table 4 / Appendix A.3 reproduction: beam-search generation (beam 4, 100 new\n" +
			"tokens from a 32-token prompt). The paper's qualitative finding — INT8 output\n" +
			"degenerates into repetition while E3M4/Mixed stay close to FP32 — is\n" +
			"quantified via divergence and repetition metrics.\n\n" + tb.String(),
		Values: vals,
	}
}
