// format_explorer: inspect the FP8 binary formats — Table 1 constants,
// grid density across magnitudes (Appendix A.1 equations), generic
// EeMm variants and exponent-bias shifting.
//
//	go run ./examples/format_explorer
package main

import (
	"fmt"

	"fp8quant/internal/fp8"
)

func main() {
	fmt.Println("Table 1 — FP8 binary formats:")
	fmt.Printf("%-10s %6s %12s %14s %8s %6s\n",
		"format", "bias", "max", "min subnorm", "NaNs", "Inf")
	for _, f := range fp8.Formats {
		nans := "single"
		if f.IEEE {
			nans = "all"
		}
		fmt.Printf("%-10s %6d %12.1f %14.2e %8s %6v\n",
			f.Name, f.Bias, f.MaxValue(), f.MinSubnormal(), nans, f.HasInf())
	}

	fmt.Println("\nGrid density D = 2^(m - floor(log2 N)) per unit interval:")
	fmt.Printf("%-10s", "N")
	for _, f := range fp8.Formats {
		fmt.Printf(" %10s", f.Name)
	}
	fmt.Println()
	for _, n := range []float64{0.25, 0.5, 1, 2, 4, 8, 16} {
		fmt.Printf("%-10.2f", n)
		for _, f := range fp8.Formats {
			fmt.Printf(" %10.1f", f.Density(n))
		}
		fmt.Println()
	}

	fmt.Println("\nGeneric formats (related work: Kuzmin et al. 2022):")
	for _, spec := range []struct{ e, m uint }{{2, 5}, {3, 4}, {4, 3}, {5, 2}} {
		f, err := fp8.New(spec.e, spec.m, false)
		if err != nil {
			continue
		}
		fmt.Printf("  %-6s max=%8.1f  grid points=%d\n",
			f.Name, f.MaxValue(), len(f.GridPoints()))
	}

	shifted := fp8.E4M3.WithBias(3)
	fmt.Printf("\nExponent-bias shifting (Sun et al. 2019): %s max=%.0f (16x the E4M3 range)\n",
		shifted.Name, shifted.MaxValue())
}
