package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewAndShape(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 || x.Rank() != 3 || x.Dim(1) != 3 {
		t.Fatalf("bad tensor: len=%d rank=%d dim1=%d", x.Len(), x.Rank(), x.Dim(1))
	}
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestAtSetRowMajor(t *testing.T) {
	x := New(2, 3)
	x.Set(7, 1, 2)
	if x.Data[5] != 7 {
		t.Errorf("Set(1,2) wrote to wrong offset: %v", x.Data)
	}
	if x.At(1, 2) != 7 {
		t.Errorf("At(1,2) = %v, want 7", x.At(1, 2))
	}
}

func TestAtPanicsOutOfBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-bounds index")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestReshapeSharesData(t *testing.T) {
	x := New(2, 6)
	y := x.Reshape(3, 4)
	y.Set(5, 0, 1)
	if x.Data[1] != 5 {
		t.Error("Reshape must share backing data")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for bad reshape")
		}
	}()
	x.Reshape(5, 5)
}

func TestCloneIndependent(t *testing.T) {
	x := New(4)
	x.Fill(1)
	y := x.Clone()
	y.Data[0] = 9
	if x.Data[0] != 1 {
		t.Error("Clone must copy data")
	}
}

func TestFromSliceValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for size mismatch")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestStatsBasics(t *testing.T) {
	x := FromSlice([]float32{-3, 1, 2, 0}, 4)
	if got := x.AbsMax(); got != 3 {
		t.Errorf("AbsMax = %v, want 3", got)
	}
	min, max := x.MinMax()
	if min != -3 || max != 2 {
		t.Errorf("MinMax = %v,%v", min, max)
	}
	if got := x.Mean(); got != 0 {
		t.Errorf("Mean = %v, want 0", got)
	}
	if got := x.Variance(); math.Abs(got-3.5) > 1e-9 {
		t.Errorf("Variance = %v, want 3.5", got)
	}
}

func TestKurtosisDetectsOutliers(t *testing.T) {
	r := NewRNG(1)
	normal := New(10000)
	normal.FillNormal(r, 0, 1)
	spiky := normal.Clone()
	spiky.InjectOutliers(r, 0.01, 8, 12)
	if spiky.Kurtosis() <= normal.Kurtosis()+1 {
		t.Errorf("outlier tensor kurtosis %v should exceed normal %v",
			spiky.Kurtosis(), normal.Kurtosis())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Error("different seeds should diverge")
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(7)
	n := 100000
	var s, s2 float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		s += v
		s2 += v * v
	}
	mean := s / float64(n)
	variance := s2/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("norm mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("norm variance = %v, want ~1", variance)
	}
}

func TestRNGPerm(t *testing.T) {
	p := NewRNG(3).Perm(100)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestMSEAndMAE(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{1, 2, 5}
	if got := MSE(a, b); math.Abs(got-4.0/3) > 1e-9 {
		t.Errorf("MSE = %v", got)
	}
	if got := MAE(a, b); math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("MAE = %v", got)
	}
	if MSE(a, a) != 0 {
		t.Error("MSE(x,x) must be 0")
	}
}

func TestSQNR(t *testing.T) {
	ref := []float32{1, -1, 2, -2}
	if !math.IsInf(SQNR(ref, ref), 1) {
		t.Error("SQNR of identical signals must be +Inf")
	}
	noisy := []float32{1.1, -0.9, 2.1, -1.9}
	got := SQNR(ref, noisy)
	if got < 10 || got > 30 {
		t.Errorf("SQNR = %v dB, expected ~17 dB", got)
	}
}

func TestPercentile(t *testing.T) {
	data := []float32{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2},
	}
	for _, c := range cases {
		if got := Percentile(data, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float32{0, 0.5, 1, 2, -1}, 4, 0, 2)
	if h.Total != 5 {
		t.Errorf("Total = %d", h.Total)
	}
	// -1 clamps into bin 0; 2 clamps into last bin.
	if h.Counts[0] != 2 {
		t.Errorf("bin0 = %d, want 2 (0 and clamped -1)", h.Counts[0])
	}
	p := h.Normalized()
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("normalized sum = %v", sum)
	}
}

func TestKLDivergence(t *testing.T) {
	p := []float64{0.5, 0.5}
	if got := KLDivergence(p, p); got != 0 {
		t.Errorf("KL(p||p) = %v, want 0", got)
	}
	q := []float64{0.9, 0.1}
	if KLDivergence(p, q) <= 0 {
		t.Error("KL(p||q) must be positive for p != q")
	}
}

// Property: KL divergence is non-negative for arbitrary distributions.
func TestKLNonNegative(t *testing.T) {
	prop := func(a, b, c, d float64) bool {
		p := normalize([]float64{math.Abs(a), math.Abs(b), math.Abs(c), math.Abs(d)})
		q := normalize([]float64{math.Abs(d), math.Abs(c), math.Abs(b), math.Abs(a)})
		if p == nil || q == nil {
			return true
		}
		return KLDivergence(p, q) >= -1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func normalize(v []float64) []float64 {
	s := 0.0
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return nil
		}
		s += x
	}
	if s == 0 {
		return nil
	}
	for i := range v {
		v[i] /= s
	}
	return v
}

func TestCosineSimilarity(t *testing.T) {
	a := []float32{1, 0}
	if got := CosineSimilarity(a, a); math.Abs(got-1) > 1e-9 {
		t.Errorf("cos(a,a) = %v", got)
	}
	if got := CosineSimilarity(a, []float32{0, 1}); math.Abs(got) > 1e-9 {
		t.Errorf("cos(orth) = %v", got)
	}
	if got := CosineSimilarity(a, []float32{-1, 0}); math.Abs(got+1) > 1e-9 {
		t.Errorf("cos(opposite) = %v", got)
	}
}

func TestInjectOutliersFraction(t *testing.T) {
	x := New(10000)
	x.FillNormal(NewRNG(1), 0, 0.1)
	x.InjectOutliers(NewRNG(2), 0.01, 5, 6)
	count := 0
	for _, v := range x.Data {
		if math.Abs(float64(v)) >= 5 {
			count++
		}
	}
	if count < 50 || count > 150 {
		t.Errorf("outlier count = %d, want ~100", count)
	}
}
