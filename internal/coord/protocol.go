// Wire protocol of the sweep coordinator: plain JSON over HTTP,
// stdlib-only on both sides. Workers are pull-based — they ask for a
// cell lease, compute it with the same harness code a local run uses,
// and push the resulting store payload back — so the coordinator never
// needs to know worker addresses, and a crashed worker costs exactly
// one lease timeout instead of a shard.
//
// Endpoints (all under /v1):
//
//	POST /v1/lease     LeaseRequest  -> LeaseResponse
//	POST /v1/push      PushRequest   -> PushResponse
//	POST /v1/workers   WorkerHello   -> WorkerAck (register/heartbeat)
//	GET  /v1/workers   -> WorkersSnapshot (fleet view)
//	GET  /v1/cell/<fp> -> raw stored cell envelope (200) or 404
//	GET  /v1/progress  ?gen=N&timeout_ms=M  -> ProgressSnapshot (long-poll)
//	GET  /v1/coverage  -> text coverage table (fp8bench -coverage style)
//	GET  /v1/healthz   -> "ok"
package coord

import "encoding/json"

// Lease statuses returned by POST /v1/lease.
const (
	// StatusLease carries a granted cell lease.
	StatusLease = "lease"
	// StatusWait means no cell is grantable right now (everything is
	// leased out) but the schedule is not finished — retry after
	// RetryMs.
	StatusWait = "wait"
	// StatusDone means every scheduled cell is done or permanently
	// failed; workers should exit.
	StatusDone = "done"
	// StatusDraining means the coordinator is shutting down and refuses
	// new leases; workers should exit after pushing in-flight work.
	StatusDraining = "draining"
)

// LeaseRequest asks for one cell of work.
type LeaseRequest struct {
	// Worker is a free-form worker identity, used only for logging and
	// lease bookkeeping.
	Worker string `json:"worker"`
}

// Lease is one granted unit of work: a single grid cell.
type Lease struct {
	// ID identifies the lease for the matching push.
	ID string `json:"id"`
	// Exp is the experiment id (resolved via harness.Get on the worker).
	Exp string `json:"exp"`
	// Index is the row-major cell index in the experiment's grid.
	Index int `json:"index"`
	// Key is the human-readable cell label ("model=...,recipe=...").
	Key string `json:"key"`
	// Fingerprint is the cell's content address. The worker recomputes
	// it from its own spec and refuses the lease on mismatch — a
	// coordinator and worker built from different schedules must fail
	// loudly, not push cells under wrong addresses.
	Fingerprint string `json:"fingerprint"`
	// TTLMs is the lease duration: a push arriving later than this may
	// find the cell re-leased to another worker (the late push is still
	// accepted if it gets there first).
	TTLMs int64 `json:"ttl_ms"`
}

// LeaseResponse answers a lease request.
type LeaseResponse struct {
	Status string `json:"status"`
	Lease  *Lease `json:"lease,omitempty"`
	// RetryMs suggests how long to wait before retrying (StatusWait).
	RetryMs int64 `json:"retry_ms,omitempty"`
}

// PushRequest delivers a completed (or failed) cell.
type PushRequest struct {
	Worker  string `json:"worker"`
	LeaseID string `json:"lease_id"`
	// Fingerprint is the cell's content address (must match the lease).
	Fingerprint string `json:"fingerprint"`
	// Payload is the exact store envelope (resultstore.EncodeCell) for
	// a successful cell; empty when Err is set.
	Payload json.RawMessage `json:"payload,omitempty"`
	// DurationMs is the worker-observed wall time of the computation.
	DurationMs float64 `json:"duration_ms"`
	// Computed is true when the worker actually ran the cell (false for
	// a local cache hit, whose duration says nothing about cell cost).
	Computed bool `json:"computed"`
	// KernelVariant is the GEMM tier the worker dispatched (avx2, sse,
	// generic), set only for freshly computed cells — the same rule the
	// local executor uses to stamp manifest provenance. The coordinator
	// unions it into the grid manifest and refuses a push whose tier
	// conflicts with the store's recorded one, so a mixed-hardware fleet
	// fails loudly instead of poisoning the store (pin FP8_KERNEL on
	// every worker to mix hardware). Empty (older workers) stamps
	// nothing.
	KernelVariant string `json:"kernel_variant,omitempty"`
	// Err marks a cell that could not be evaluated (RunCell panic,
	// unknown experiment, schedule mismatch). The coordinator records
	// it as permanently failed — cell failures are deterministic, so
	// retrying on another worker would just fail again.
	Err string `json:"err,omitempty"`
}

// Push statuses returned by POST /v1/push.
const (
	// PushStored means the payload was ingested into the store.
	PushStored = "stored"
	// PushIdentical means the store already held byte-identical payload
	// (an idempotent duplicate: a re-pushed cell or an expired lease
	// whose work was redone elsewhere).
	PushIdentical = "identical"
	// PushFailedRecorded means the cell's Err was recorded.
	PushFailedRecorded = "failed-recorded"
)

// PushResponse answers a push.
type PushResponse struct {
	Status string `json:"status"`
}

// ProgressSnapshot is the long-poll progress payload: the coordinator's
// live -coverage view. Gen increases on every state change; pass it
// back as ?gen= to block until something new happens.
type ProgressSnapshot struct {
	Gen      int64 `json:"gen"`
	Draining bool  `json:"draining"`
	// Complete is true once every scheduled cell is done or failed.
	Complete    bool          `json:"complete"`
	Experiments []ExpProgress `json:"experiments"`
}

// ExpProgress is one experiment's schedule state.
type ExpProgress struct {
	Exp     string  `json:"exp"`
	Grid    string  `json:"grid"`
	Total   int     `json:"total"`
	Done    int     `json:"done"`
	Failed  int     `json:"failed"`
	Leased  int     `json:"leased"`
	Pending int     `json:"pending"`
	Percent float64 `json:"percent"`
}

// WorkerHello registers (or heartbeats) a worker with the coordinator.
// Workers send it on startup and then every HeartbeatMs; a worker that
// stops arriving is declared stale and its leases expire early instead
// of waiting out the full TTL.
type WorkerHello struct {
	Worker string `json:"worker"`
	// Host and Pid locate the process for fleet debugging.
	Host string `json:"host,omitempty"`
	Pid  int    `json:"pid,omitempty"`
	// KernelVariant is the GEMM tier this worker dispatches, for fleet
	// visibility (the push path still enforces tier consistency).
	KernelVariant string `json:"kernel_variant,omitempty"`
}

// WorkerAck answers a hello.
type WorkerAck struct {
	// HeartbeatMs is how often the coordinator wants the worker to
	// re-hello.
	HeartbeatMs int64 `json:"heartbeat_ms"`
}

// WorkerInfo is one worker's fleet state in GET /v1/workers.
type WorkerInfo struct {
	Worker        string `json:"worker"`
	Host          string `json:"host,omitempty"`
	Pid           int    `json:"pid,omitempty"`
	KernelVariant string `json:"kernel_variant,omitempty"`
	// Registered is true for workers that sent a hello (lease/push
	// traffic alone tracks a worker but does not opt it into stale
	// detection — an old worker with no heartbeat loop must keep its
	// plain lease TTL).
	Registered bool `json:"registered"`
	// IdleMs is how long since the worker was last heard from.
	IdleMs int64 `json:"idle_ms"`
	// Stale is true when a registered worker has been silent past the
	// coordinator's stale threshold.
	Stale bool `json:"stale"`
	// Leases and Pushes count protocol traffic from this worker.
	Leases int `json:"leases"`
	Pushes int `json:"pushes"`
}

// WorkersSnapshot is the GET /v1/workers payload, sorted by worker name.
type WorkersSnapshot struct {
	Workers []WorkerInfo `json:"workers"`
}

// errorResponse is the JSON body of non-2xx protocol answers.
type errorResponse struct {
	Error string `json:"error"`
}
