// Package fp8quant_bench holds the top-level benchmark harness: one
// testing.B benchmark per paper table/figure (running reduced-size
// sweeps where the full experiment takes minutes — cmd/fp8bench runs
// the full versions), plus micro-benchmarks for the codec and layer
// kernels the experiments are built on.
package fp8quant_bench

import (
	"testing"

	"fp8quant/internal/diffusion"
	"fp8quant/internal/evalx"
	"fp8quant/internal/fp8"
	"fp8quant/internal/harness"
	"fp8quant/internal/models"
	"fp8quant/internal/nn"
	"fp8quant/internal/quant"
	"fp8quant/internal/tensor"
	"fp8quant/internal/textgen"
)

// ---- per-table / per-figure benchmarks ----

// BenchmarkTable1FormatConstants regenerates Table 1's format constants
// (trivial, included for index completeness).
func BenchmarkTable1FormatConstants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, f := range fp8.Formats {
			_ = f.MaxValue()
			_ = f.MinSubnormal()
		}
	}
}

// BenchmarkFig1QuantMSE regenerates Figure 1 (quantized-value grids and
// MSE on the N(0,0.5)+outliers tensor).
func BenchmarkFig1QuantMSE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e, _ := harness.Get("fig1")
		_ = harness.Run(e)
	}
}

// BenchmarkFig3TensorDistributions regenerates Figure 3.
func BenchmarkFig3TensorDistributions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e, _ := harness.Get("fig3")
		_ = harness.Run(e)
	}
}

// benchSubset is a fast cross-domain model subset used by the reduced
// pass-rate benchmarks.
var benchSubset = []string{
	"cifar_resnet20", "squeezenet", "vit_small",
	"distilbert_mrpc", "tinybert_mrpc", "bloom_560m", "dlrm_criteo",
}

// BenchmarkTable2PassRate runs the Table 2 recipe set over a reduced
// model subset (full 75-model sweep: fp8bench -exp table2).
func BenchmarkTable2PassRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, name := range benchSubset {
			net, err := models.Build(name)
			if err != nil {
				b.Fatal(err)
			}
			recipes := []quant.Recipe{
				quant.StandardFP8(quant.E4M3),
				quant.StandardINT8(net.Meta.Domain != models.CV),
			}
			res := evalx.EvaluateRecipes(net, recipes, true)
			_ = evalx.AggregatePassRates(res)
		}
	}
}

// BenchmarkFig4LossVariability computes loss-distribution statistics on
// the reduced subset (full version: fp8bench -exp fig4).
func BenchmarkFig4LossVariability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var losses []float64
		for _, name := range benchSubset {
			net, err := models.Build(name)
			if err != nil {
				b.Fatal(err)
			}
			r := evalx.Evaluate(net, quant.StandardFP8(quant.E3M4), true)
			losses = append(losses, r.RelLoss)
		}
		_ = evalx.ComputeLossStats(losses)
	}
}

// BenchmarkTable3RepresentativeAccuracy evaluates two representative
// Table 3 rows (full version: fp8bench -exp table3).
func BenchmarkTable3RepresentativeAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, name := range []string{"distilbert_mrpc", "cifar_resnet20"} {
			net, _ := models.Build(name)
			_ = evalx.EvaluateRecipes(net, []quant.Recipe{
				quant.StandardFP8(quant.E4M3),
				quant.StandardFP8(quant.E3M4),
			}, true)
		}
	}
}

// BenchmarkFig5SizeBuckets exercises the size-class bucketing path.
func BenchmarkFig5SizeBuckets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, name := range models.Names() {
			info, _ := models.InfoFor(name)
			_ = info.SizeClass()
		}
	}
}

// BenchmarkFig6DiffusionFID regenerates a reduced Figure 6 (one format
// pair; full grid: fp8bench -exp fig6).
func BenchmarkFig6DiffusionFID(b *testing.B) {
	pipe := diffusion.NewPipeline(0xBE6, 2)
	ref := pipe.Generate(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := quant.StandardFP8(quant.E4M3)
		r.CalibBatches = 4
		h := quant.Quantize(pipe, pipe.CalibData(), r)
		gen := pipe.Generate(8)
		h.Release()
		_ = diffusion.FIDAgainst(ref, gen)
	}
}

// BenchmarkTable4BeamSearch regenerates a reduced Table 4 row: beam
// search under E3M4 quantization with degeneration metrics.
func BenchmarkTable4BeamSearch(b *testing.B) {
	lm := models.NewGenLM(0xBE4)
	prompt := []int{1, 5, 9, 13, 17, 21, 25, 29}
	ref := textgen.BeamSearch(lm, prompt, 2, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := quant.StandardFP8(quant.E3M4)
		r.CalibBatches = 2
		h := quant.Quantize(lm, lm.DataSet, r)
		gen := textgen.BeamSearch(lm, prompt, 2, 16)
		h.Release()
		_ = textgen.Compare(ref, gen)
	}
}

// BenchmarkFig7BNCalibration regenerates one Figure 7 cell (3K samples
// + training transform on one BN model).
func BenchmarkFig7BNCalibration(b *testing.B) {
	net, err := models.Build("cifar_resnet20")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := quant.StandardFP8(quant.E4M3).WithBNCalib(4)
		r.CalibBatches = 4
		h := quant.Quantize(net, net.Data, r)
		h.Release()
	}
}

// BenchmarkFig8MixedFormatMSE regenerates Figure 8. fig8 is a grid
// experiment, so the in-process cell memo is cleared every iteration —
// without that, iterations 2..N would just replay memoized cells and
// the benchmark would stop tracking the quantization path.
func BenchmarkFig8MixedFormatMSE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		harness.ClearMemo()
		e, _ := harness.Get("fig8")
		_ = harness.Run(e)
	}
}

// BenchmarkTable5MixedFormats evaluates single vs mixed formats on one
// Table 5 model.
func BenchmarkTable5MixedFormats(b *testing.B) {
	net, _ := models.Build("bert_base_mrpc")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = evalx.EvaluateRecipes(net, []quant.Recipe{
			quant.StandardFP8(quant.E4M3),
			quant.MixedFP8(),
		}, true)
	}
}

// BenchmarkTable6StaticVsDynamic evaluates the static/dynamic pair on
// one Table 6 model.
func BenchmarkTable6StaticVsDynamic(b *testing.B) {
	net, _ := models.Build("bert_base_cola")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = evalx.EvaluateRecipes(net, []quant.Recipe{
			quant.DynamicFP8(quant.E4M3),
			quant.StandardFP8(quant.E4M3),
		}, true)
	}
}

// BenchmarkFig9ExtendedOps compares standard vs extended coverage on
// one NLP model.
func BenchmarkFig9ExtendedOps(b *testing.B) {
	net, _ := models.Build("distilbert_sst2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = evalx.EvaluateRecipes(net, []quant.Recipe{
			quant.StandardFP8(quant.E4M3),
			quant.StandardFP8(quant.E4M3).WithExtendedOps(),
		}, true)
	}
}

// BenchmarkFig10KLDemo regenerates the appendix KL demo.
func BenchmarkFig10KLDemo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e, _ := harness.Get("fig10")
		_ = harness.Run(e)
	}
}

// BenchmarkFirstLastAblation runs the Section 4.3.1 ablation on one
// CNN.
func BenchmarkFirstLastAblation(b *testing.B) {
	net, _ := models.Build("cifar_resnet20")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = evalx.EvaluateRecipes(net, []quant.Recipe{
			quant.StandardFP8(quant.E3M4),
			quant.StandardFP8(quant.E3M4).WithFirstLast(),
		}, true)
	}
}

// ---- fast codec vs scalar reference (1M-element tensor) ----

// bench1M builds a 1M-element tensor spanning the E4M3 normal and
// subnormal ranges, the workload quantifying the LUT codec speedup.
func bench1M() []float32 {
	src := make([]float32, 1<<20)
	r := tensor.NewRNG(0xBE1C)
	for i := range src {
		src[i] = float32(r.Norm() * 8)
	}
	return src
}

// BenchmarkEncodeScalar is the reference float64 encoder over 1M
// elements — the baseline BenchmarkEncodeLUT is measured against.
func BenchmarkEncodeScalar(b *testing.B) {
	src := bench1M()
	b.SetBytes(int64(len(src) * 4))
	b.ResetTimer()
	var sink uint8
	for i := 0; i < b.N; i++ {
		for _, v := range src {
			sink += fp8.E4M3.Encode(float64(v))
		}
	}
	benchSink = sink
}

// BenchmarkEncodeLUT is the bit-level fast encoder over the same 1M
// elements (acceptance target: >= 2x over BenchmarkEncodeScalar).
func BenchmarkEncodeLUT(b *testing.B) {
	src := bench1M()
	c := fp8.E4M3.Codec()
	b.SetBytes(int64(len(src) * 4))
	b.ResetTimer()
	var sink uint8
	for i := 0; i < b.N; i++ {
		for _, v := range src {
			sink += c.Encode(v)
		}
	}
	benchSink = sink
}

// BenchmarkQuantizeSliceScalar is the scalar quantize-dequantize
// reference path on a 1M-element tensor.
func BenchmarkQuantizeSliceScalar(b *testing.B) {
	src := bench1M()
	dst := make([]float32, len(src))
	b.SetBytes(int64(len(src) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fp8.E4M3.QuantizeSliceRef(dst, src)
	}
}

// BenchmarkQuantizeSliceFast is the serial LUT-codec path.
func BenchmarkQuantizeSliceFast(b *testing.B) {
	src := bench1M()
	dst := make([]float32, len(src))
	b.SetBytes(int64(len(src) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fp8.E4M3.QuantizeSlice(dst, src)
	}
}

// BenchmarkQuantizeSliceParallel fans the same tensor out over the
// worker pool (acceptance target: >= 2x over the scalar path).
func BenchmarkQuantizeSliceParallel(b *testing.B) {
	src := bench1M()
	dst := make([]float32, len(src))
	b.SetBytes(int64(len(src) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fp8.E4M3.QuantizeSliceParallel(dst, src)
	}
}

var benchSink uint8

// ---- sweep-engine scaling ----

// benchmarkSweep runs the Table 2 recipe sweep over the reduced model
// subset at a fixed worker count. ClearMemo before every run drops the
// process-wide FP32 reference cache, so each worker count measures the
// same amount of work and the scaling comparison stays valid.
func benchmarkSweep(b *testing.B, workers int) {
	harness.SetWorkers(workers)
	defer harness.SetWorkers(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		harness.ClearMemo()
		_ = harness.Sweep(benchSubset)
	}
}

func BenchmarkSweepWorkers1(b *testing.B) { benchmarkSweep(b, 1) }
func BenchmarkSweepWorkers2(b *testing.B) { benchmarkSweep(b, 2) }
func BenchmarkSweepWorkersN(b *testing.B) { benchmarkSweep(b, 0) }

// ---- micro-benchmarks for the substrate kernels ----

func BenchmarkE4M3Encode(b *testing.B) {
	vals := make([]float64, 1024)
	r := tensor.NewRNG(1)
	for i := range vals {
		vals[i] = r.Norm() * 10
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, v := range vals {
			_ = fp8.E4M3.Encode(v)
		}
	}
	b.SetBytes(1024)
}

func BenchmarkQuantizeSliceE4M3(b *testing.B) {
	src := make([]float32, 4096)
	dst := make([]float32, 4096)
	r := tensor.NewRNG(2)
	for i := range src {
		src[i] = float32(r.Norm())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fp8.E4M3.QuantizeSlice(dst, src)
	}
	b.SetBytes(4096 * 4)
}

func BenchmarkInt8QuantizeSlice(b *testing.B) {
	src := make([]float32, 4096)
	dst := make([]float32, 4096)
	r := tensor.NewRNG(3)
	for i := range src {
		src[i] = float32(r.Norm())
	}
	q := fp8.NewInt8Symmetric(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.QuantizeSlice(dst, src)
	}
	b.SetBytes(4096 * 4)
}

func BenchmarkLinearForward(b *testing.B) {
	l := nn.NewLinear(256, 256)
	l.W.FillNormal(tensor.NewRNG(4), 0, 0.1)
	x := tensor.New(16, 256)
	x.FillNormal(tensor.NewRNG(5), 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = l.Forward(x)
	}
}

func BenchmarkLinearForwardQuantized(b *testing.B) {
	l := nn.NewLinear(256, 256)
	l.W.FillNormal(tensor.NewRNG(4), 0, 0.1)
	l.QS.Input = quant.StaticFP8Func(fp8.E4M3, 4)
	x := tensor.New(16, 256)
	x.FillNormal(tensor.NewRNG(5), 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = l.Forward(x)
	}
}

func BenchmarkConv2dForward(b *testing.B) {
	c := nn.NewConv2d(16, 16, 3, 1, 1, 1)
	c.W.FillNormal(tensor.NewRNG(6), 0, 0.1)
	x := tensor.New(4, 16, 16, 16)
	x.FillNormal(tensor.NewRNG(7), 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Forward(x)
	}
}

func BenchmarkAttentionForward(b *testing.B) {
	a := nn.NewMultiHeadAttention(64, 4)
	r := tensor.NewRNG(8)
	for _, l := range []*nn.Linear{a.WQ, a.WK, a.WV, a.WO} {
		l.W.FillNormal(r, 0, 0.1)
	}
	x := tensor.New(4, 32, 64)
	x.FillNormal(r, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Forward(x)
	}
}

func BenchmarkObserverMinMax(b *testing.B) {
	vals := make([]float32, 4096)
	r := tensor.NewRNG(9)
	for i := range vals {
		vals[i] = float32(r.Norm())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := quant.NewMinMaxObserver()
		o.Observe(vals)
		_ = o.AbsMax()
	}
}

func BenchmarkQuantizePrepare(b *testing.B) {
	net, err := models.Build("tinybert_mrpc")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := quant.Quantize(net, net.Data, quant.StandardFP8(quant.E4M3))
		h.Release()
	}
}
