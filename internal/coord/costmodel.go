// Learned per-cell cost model. The zoo's cell costs vary by two orders
// of magnitude (bloom_176b vs squeezenet), so leasing cells in naive
// row-major order routinely parks the most expensive model on whichever
// worker draws it last and stretches the sweep tail by minutes. The
// coordinator instead leases expensive cells first — longest-processing-
// time-first is the classic 4/3-approximation for makespan on identical
// machines — using durations observed from completed pushes. Estimates
// fall back gracefully: exact cell → same axis value (a model's recipes
// cost alike) → global mean → a fixed default, so the very first run is
// merely unordered, never wrong.
//
// The model is operational state, not results: it is persisted as a
// store *sidecar* (atomic temp+rename, see resultstore.SaveSidecar) and
// never inside content-addressed payloads, so stored cells and rendered
// reports stay byte-identical whether a sweep ran locally, sharded, or
// coordinated.

package coord

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"fp8quant/internal/resultstore"
)

// CostSidecarName is the default sidecar file the model persists to.
const CostSidecarName = "costmodel.json"

// costSchemaVersion guards the sidecar layout; entries from other
// versions load as an empty model (the estimates re-learn in one run).
const costSchemaVersion = 1

// costAlpha is the EMA smoothing factor for repeated observations of
// the same key: high enough to track real cost shifts (a kernel
// landing), low enough that one noisy VM stall does not dominate.
const costAlpha = 0.3

// defaultCostMs seeds estimates when nothing has ever been observed.
const defaultCostMs = 1000

// CostEntry is one learned duration estimate.
type CostEntry struct {
	// EMAms is the exponentially weighted mean duration in milliseconds.
	EMAms float64 `json:"ema_ms"`
	// N counts observations folded in.
	N int64 `json:"n"`
}

// observe folds one duration into the entry.
func (e *CostEntry) observe(ms float64) {
	if e.N == 0 {
		e.EMAms = ms
	} else {
		e.EMAms = costAlpha*ms + (1-costAlpha)*e.EMAms
	}
	e.N++
}

// CostModel estimates per-cell run durations from observed pushes.
// Safe for concurrent use.
type CostModel struct {
	mu    sync.Mutex
	cells map[string]*CostEntry // cell fingerprint -> estimate
	axes  map[string]*CostEntry // "axis=value" -> aggregate estimate
	all   CostEntry             // global aggregate
}

// NewCostModel returns an empty model.
func NewCostModel() *CostModel {
	return &CostModel{cells: map[string]*CostEntry{}, axes: map[string]*CostEntry{}}
}

// Observe records one computed cell duration under its fingerprint and
// axis coordinates.
func (m *CostModel) Observe(fp string, axes []resultstore.AxisValue, d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	if ms < 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ent := m.cells[fp]
	if ent == nil {
		ent = &CostEntry{}
		m.cells[fp] = ent
	}
	ent.observe(ms)
	for _, av := range axes {
		k := av.Axis + "=" + av.Value
		a := m.axes[k]
		if a == nil {
			a = &CostEntry{}
			m.axes[k] = a
		}
		a.observe(ms)
	}
	m.all.observe(ms)
}

// EstimateMs returns the model's best duration guess for a cell:
// the exact fingerprint if seen, else the most expensive matching axis
// aggregate (the model axis dominates cost, and overestimating an
// unknown cell only moves it earlier — the safe direction for the
// tail), else the global mean, else the default.
func (m *CostModel) EstimateMs(fp string, axes []resultstore.AxisValue) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.cells[fp]; ok && e.N > 0 {
		return e.EMAms
	}
	best, found := 0.0, false
	for _, av := range axes {
		if a, ok := m.axes[av.Axis+"="+av.Value]; ok && a.N > 0 && a.EMAms > best {
			best, found = a.EMAms, true
		}
	}
	if found {
		return best
	}
	if m.all.N > 0 {
		return m.all.EMAms
	}
	return defaultCostMs
}

// Observations reports how many cell durations have been folded in.
func (m *CostModel) Observations() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.all.N
}

// costSidecar is the persisted layout. Both maps serialize through
// encoding/json, which sorts keys, so the sidecar bytes are
// deterministic for a given model state.
type costSidecar struct {
	Schema int                  `json:"schema"`
	Cells  map[string]CostEntry `json:"cells"`
	Axes   map[string]CostEntry `json:"axes"`
	All    CostEntry            `json:"all"`
}

// Persist writes the model to the store as a sidecar via the atomic
// temp+rename path.
func (m *CostModel) Persist(s *resultstore.Store, name string) error {
	m.mu.Lock()
	sc := costSidecar{
		Schema: costSchemaVersion,
		Cells:  make(map[string]CostEntry, len(m.cells)),
		Axes:   make(map[string]CostEntry, len(m.axes)),
		All:    m.all,
	}
	for k, v := range m.cells {
		sc.Cells[k] = *v
	}
	for k, v := range m.axes {
		sc.Axes[k] = *v
	}
	m.mu.Unlock()
	b, err := json.Marshal(sc)
	if err != nil {
		return fmt.Errorf("coord: %w", err)
	}
	return s.SaveSidecar(name, b)
}

// LoadCostModel reads a persisted model from the store sidecar. An
// absent, corrupt or schema-stale sidecar yields an empty model — the
// cost model is an optimization, never a correctness dependency.
func LoadCostModel(s *resultstore.Store, name string) *CostModel {
	m := NewCostModel()
	b, ok := s.LoadSidecar(name)
	if !ok {
		return m
	}
	var sc costSidecar
	if json.Unmarshal(b, &sc) != nil || sc.Schema != costSchemaVersion {
		return m
	}
	for k, v := range sc.Cells {
		e := v
		m.cells[k] = &e
	}
	for k, v := range sc.Axes {
		e := v
		m.axes[k] = &e
	}
	m.all = sc.All
	return m
}
