// cellpurity: RunCell must not write package-level state.
//
// The executor's contract is that RunCell is pure — it may build
// anything it likes, but its writes stay cell-local, so any worker
// count, shard plan or cell order computes the same grid. An
// assignment to a package-level variable from a RunCell body (or from
// a function it calls directly in the same package — the helpers a
// cell leans on) couples cells through hidden state: results then
// depend on execution order, which the memo, the store and Merge all
// assume away. Deliberate deterministic caches (compute-once
// reference data guarded by a mutex) are the sanctioned exception —
// annotate them with an fp8vet:ignore stating why order cannot
// matter.

package analyzers

import (
	"fmt"
	"go/ast"
	"go/types"
)

func cellpurityAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "cellpurity",
		Doc:  "RunCell bodies and their direct in-package callees must not assign package-level variables",
		Run:  runCellpurity,
	}
}

func runCellpurity(pkgs []*Package) []Finding {
	g := buildGraph(pkgs)
	roots := cellRoots(pkgs)

	// The audited set: every root, plus each root's direct callees
	// declared in the same package (one level — the issue's "direct
	// callees in-package"; deeper shared infrastructure is the
	// executor's domain and nondeterm's problem).
	audit := map[string][]string{} // funcKey -> chain from root
	for key := range roots {
		audit[key] = []string{key}
	}
	for _, key := range sortedKeys(roots) {
		fn := roots[key]
		for _, e := range fn.callees {
			callee, ok := g[e.key]
			if !ok || callee.pkg != fn.pkg {
				continue
			}
			if _, already := audit[e.key]; !already {
				audit[e.key] = []string{key, e.key}
			}
		}
	}

	var out []Finding
	for _, key := range sortedKeys(audit) {
		chain := audit[key]
		fn := g[key]
		if fn == nil {
			continue
		}
		ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if obj, name := pkgLevelTarget(fn.pkg, lhs); obj != nil {
						out = append(out, pureFinding(fn.pkg, n, name, chain))
					}
				}
			case *ast.IncDecStmt:
				if obj, name := pkgLevelTarget(fn.pkg, n.X); obj != nil {
					out = append(out, pureFinding(fn.pkg, n, name, chain))
				}
			}
			return true
		})
	}
	return out
}

func pureFinding(p *Package, n ast.Node, name string, chain []string) Finding {
	msg := fmt.Sprintf("package-level variable %q assigned on a RunCell path", name)
	if len(chain) > 1 {
		msg += fmt.Sprintf(" (via %s)", chainString(chain))
	}
	return Finding{Check: "cellpurity", Pos: position(p, n), Message: msg}
}

// pkgLevelTarget resolves an assignment target to a package-level
// variable, seeing through index and selector chains to the base
// identifier: `memo[k] = v`, `cfg.Field = v` and `cfg = v` all write
// package state when their base is a package-level var. The blank
// identifier never does.
func pkgLevelTarget(p *Package, lhs ast.Expr) (types.Object, string) {
	e := unparen(lhs)
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = unparen(x.X)
		case *ast.SelectorExpr:
			// A selector may be pkgvar.Field (base below) or
			// otherpkg.Var (resolved here).
			if id, ok := unparen(x.X).(*ast.Ident); ok {
				if _, isPkg := p.Info.ObjectOf(id).(*types.PkgName); isPkg {
					e = x.Sel
					continue
				}
			}
			e = unparen(x.X)
		case *ast.StarExpr:
			e = unparen(x.X)
		case *ast.Ident:
			if x.Name == "_" {
				return nil, ""
			}
			obj := p.Info.ObjectOf(x)
			v, ok := obj.(*types.Var)
			if !ok || v.IsField() {
				return nil, ""
			}
			// Package-level: the variable's parent scope is its
			// package scope.
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v, x.Name
			}
			return nil, ""
		default:
			return nil, ""
		}
	}
}
