package kernels

import (
	"math"
	"math/big"
	"runtime"
	"testing"

	"fp8quant/internal/tensor"
)

func TestVariantDispatch(t *testing.T) {
	av := Available()
	if len(av) == 0 {
		t.Fatal("no variants available")
	}
	if av[len(av)-1] != VariantGeneric {
		t.Errorf("Available() = %v, want generic last", av)
	}
	if runtime.GOARCH == "amd64" {
		found := false
		for _, v := range av {
			if v == VariantSSE {
				found = true
			}
		}
		if !found {
			t.Errorf("Available() = %v, want sse on amd64", av)
		}
	}
	cur := Active()
	ok := false
	for _, v := range av {
		if v == cur {
			ok = true
		}
	}
	if !ok {
		t.Errorf("Active() = %q not in Available() %v", cur, av)
	}
	if err := ForceVariant("neon"); err == nil {
		t.Error("ForceVariant of an unsupported variant did not error")
	}
	if Active() != cur {
		t.Errorf("failed ForceVariant changed Active to %q", Active())
	}
}

// TestVariantsActuallyDiffer: when an FMA tier and a non-FMA tier are
// both available, their outputs must differ in bits on multi-binade
// data — if they did not, per-variant provenance would be vacuous (and
// the avx2 kernel would not actually be fusing).
func TestVariantsActuallyDiffer(t *testing.T) {
	hasAVX2 := false
	for _, v := range Available() {
		if v == VariantAVX2 {
			hasAVX2 = true
		}
	}
	if !hasAVX2 {
		t.Skip("avx2 tier not available on this host")
	}
	rows, in, out := 16, 256, 16
	rng := tensor.NewRNG(0xBEEF)
	x := make([]float32, rows*in)
	w := make([]float32, out*in)
	fillMixed(x, rng)
	fillMixed(w, rng)
	prev := Active()
	defer func() { _ = ForceVariant(prev) }()
	res := map[Variant][]float32{}
	for _, v := range []Variant{VariantSSE, VariantAVX2} {
		if err := ForceVariant(v); err != nil {
			t.Fatal(err)
		}
		y := make([]float32, rows*out)
		GemmT(y, x, w, rows, in, out, Opt{})
		res[v] = y
	}
	if bitsEqual(res[VariantSSE], res[VariantAVX2]) {
		t.Error("sse and avx2 outputs are byte-identical on multi-binade data; the avx2 tier is not fusing")
	}
}

// TestFmaRefExactlyRounded pins the fused scalar oracle against
// arbitrary-precision arithmetic: fmaRef(a,b,c) must equal the
// round-to-nearest-even float32 of the exact value a·b + c.
func TestFmaRefExactlyRounded(t *testing.T) {
	check := func(a, b, c float32) {
		t.Helper()
		got := fmaRef(a, b, c)
		// 500 bits of precision make the product and sum exact for any
		// float32 inputs (48-bit product, exponent spread < 300).
		pa := new(big.Float).SetPrec(500).SetFloat64(float64(a))
		pb := new(big.Float).SetPrec(500).SetFloat64(float64(b))
		pc := new(big.Float).SetPrec(500).SetFloat64(float64(c))
		exact := new(big.Float).SetPrec(500).Mul(pa, pb)
		exact.Add(exact, pc)
		want, _ := exact.Float32()
		if math.Float32bits(got) != math.Float32bits(want) &&
			!(math.IsNaN(float64(got)) && math.IsNaN(float64(want))) {
			t.Errorf("fmaRef(%g, %g, %g) = %x (%g), want %x (%g)",
				a, b, c, math.Float32bits(got), got, math.Float32bits(want), want)
		}
	}
	rng := tensor.NewRNG(0xFA)
	buf := make([]float32, 3*5000)
	fillMixed(buf, rng)
	for i := 0; i+2 < len(buf); i += 3 {
		check(buf[i], buf[i+1], buf[i+2])
	}
	// Adversarial corners: double-rounding halfway cases (products just
	// past the 24-bit boundary cancelling against a near-equal addend),
	// denormals, signed zero, huge/tiny mixes.
	one := float32(1)
	ulp := float32(math.Float32frombits(math.Float32bits(one) + 1)) // 1 + 2^-23
	cases := [][3]float32{
		{ulp, ulp, -1},               // product 1+2^-22+2^-46: tail beyond 24 bits
		{ulp, -ulp, 1},               // negative mirror
		{1 + 2048*ulp/2048, ulp, -1}, // near-cancellation
		{3e38, 3e38, -3e38},          // product overflows float32, fine in float64
		{1e-38, 1e-38, 1e-20},        // product is sub-subnormal sticky
		{1e-38, 1e-38, 0},            // underflow to zero
		{math.Float32frombits(1), math.Float32frombits(1), math.Float32frombits(1)}, // denormal soup
		{0, 3, 0}, {0, -3, 0}, // signed-zero products
		{float32(math.Inf(1)), 1, -1}, // Inf propagation
		{float32(math.Inf(1)), 0, 1},  // Inf·0 = NaN
	}
	for _, cs := range cases {
		a, b, c := cs[0], cs[1], cs[2]
		if math.IsInf(float64(a), 0) || math.IsInf(float64(b), 0) || math.IsInf(float64(c), 0) {
			// big.Float has no Inf/NaN semantics; check against float64
			// FMA instead (exact for these: no rounding subtleties).
			got := fmaRef(a, b, c)
			want := float32(math.FMA(float64(a), float64(b), float64(c)))
			if math.Float32bits(got) != math.Float32bits(want) &&
				!(math.IsNaN(float64(got)) && math.IsNaN(float64(want))) {
				t.Errorf("fmaRef(%g, %g, %g) = %g, want %g", a, b, c, got, want)
			}
			continue
		}
		check(a, b, c)
	}
	// A dense sweep around exact powers of two, where round-to-nearest
	// ties and mantissa parity matter most.
	for i := -3; i <= 3; i++ {
		base := float32(math.Ldexp(1, i))
		for db := uint32(0); db < 8; db++ {
			for dc := uint32(0); dc < 8; dc++ {
				b := math.Float32frombits(math.Float32bits(base) + db)
				c := math.Float32frombits(math.Float32bits(base) + dc)
				check(b, c, -base)
				check(b, -c, base*base)
			}
		}
	}
}

// truncQuant is a hand-rolled elementwise quantizer for the fused-pack
// differentials: snap to a coarse grid, chunk-independent by
// construction.
func truncQuant(dst, src []float32) {
	for i, v := range src {
		dst[i] = float32(math.Trunc(float64(v)*8) / 8)
	}
}

// TestPackQuantMatchesUnfused: the fused quantize-while-packing paths
// must write byte-identical panels to the unfused quantize-whole-slice
// then pack expression, for both layouts and ragged widths.
func TestPackQuantMatchesUnfused(t *testing.T) {
	rng := tensor.NewRNG(0x51)
	for _, s := range []struct{ in, out int }{{1, 1}, {5, 3}, {16, 8}, {17, 29}, {64, 130}} {
		w := make([]float32, s.in*s.out)
		fillMixed(w, rng)
		qw := make([]float32, len(w))
		truncQuant(qw, w)
		n := PanelFloats(s.in, s.out)
		stage := make([]float32, QuantStageFloats(s.in, s.out))

		want := make([]float32, n)
		got := make([]float32, n)
		PackTInto(want, qw, s.in, s.out)
		PackTQuantInto(got, stage, w, s.in, s.out, truncQuant)
		if !bitsEqual(got, want) {
			t.Errorf("PackTQuantInto %dx%d diverges from quantize-then-pack", s.in, s.out)
			firstDiff(t, got, want)
		}

		PackNInto(want, qw, s.in, s.out)
		PackNQuantInto(got, stage, w, s.in, s.out, truncQuant)
		if !bitsEqual(got, want) {
			t.Errorf("PackNQuantInto %dx%d diverges from quantize-then-pack", s.in, s.out)
			firstDiff(t, got, want)
		}
	}
}

// TestGemmQuantMatchesUnfused: the fused-quant GEMM entry points must
// produce the bytes of quantize-then-GemmT/GemmN, for every variant.
func TestGemmQuantMatchesUnfused(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v Variant) {
		rng := tensor.NewRNG(0x52)
		rows, in, out := 13, 37, 21
		x := make([]float32, rows*in)
		w := make([]float32, in*out)
		bias := make([]float32, out)
		fillMixed(x, rng)
		fillMixed(w, rng)
		fillMixed(bias, rng)
		qw := make([]float32, len(w))
		truncQuant(qw, w)
		opt := Opt{Bias: bias}
		got := make([]float32, rows*out)
		want := make([]float32, rows*out)

		GemmTQuant(got, x, w, rows, in, out, truncQuant, opt)
		GemmT(want, x, qw, rows, in, out, opt)
		if !bitsEqual(got, want) {
			t.Error("GemmTQuant diverges from quantize-then-GemmT")
			firstDiff(t, got, want)
		}

		GemmNQuant(got, x, w, rows, in, out, truncQuant, opt)
		GemmN(want, x, qw, rows, in, out, opt)
		if !bitsEqual(got, want) {
			t.Error("GemmNQuant diverges from quantize-then-GemmN")
			firstDiff(t, got, want)
		}
	})
}
