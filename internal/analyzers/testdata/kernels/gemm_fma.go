// Fixture for the floatorder file-scoped FMA-tier allowance: the base
// name carries an "fma" token, so math.FMA is the sanctioned operation
// here (the tier pins to a fused oracle that rounds once per update).
// Every other floatorder check still applies in such files — an
// implicit contraction or a reassociated reduction breaks the fused
// oracle exactly as it breaks the two-rounding one.
package kernels

import "math"

// Negative: the fused oracle itself — math.FMA is allowed in fma files.
func fusedOracle(a, b, c float64) float64 {
	return math.FMA(a, b, c)
}

// Positive: the allowance is FMA-only; implicit contraction is still a
// finding even in an fma file.
func fmaFileContract(a, v, b float32) float32 {
	return a + v*b // want floatorder "contraction"
}

// Positive: split accumulators stay banned here too.
func fmaFileSplitAcc(xs []float64) float64 {
	var s0, s1 float64
	for i := 0; i+1 < len(xs); i += 2 {
		s0 += xs[i]
		s1 += xs[i+1]
	}
	return s0 + s1 // want floatorder "reassociates"
}
