// Package evalx runs the teacher-is-truth evaluation protocol: for
// each model the FP32 network's outputs define ground truth, a recipe
// is applied with internal/quant, and the quantized model's agreement
// with the reference is its accuracy. The paper's pass criterion —
// relative accuracy loss ≤ 1% versus FP32 — then applies directly.
package evalx

import (
	"math"
	"runtime"
	"sync"

	"fp8quant/internal/data"
	"fp8quant/internal/models"
	"fp8quant/internal/quant"
	"fp8quant/internal/tensor"
)

// Batch protocol: dataset batches [0, CalibBatches) feed calibration
// (and BatchNorm re-calibration); batches [EvalStart, EvalEnd) feed
// evaluation. The split prevents calibration from seeing eval data.
const (
	CalibBatches = 4
	EvalStart    = 8
	EvalEnd      = 32
)

// MarginKeepPct drops the most boundary-ambiguous fraction of eval
// samples: teacher-is-truth references come from random-weight (not
// trained) networks whose decision margins are uniformly small, while
// the real pretrained models the paper evaluates are confident on most
// inputs. Filtering to the top (100-MarginKeepPct)% of FP32 margins
// restores a trained-model-like margin distribution; see DESIGN.md.
const MarginKeepPct = 70.0

// Result is one (model, recipe) evaluation. Accuracy experiments fill
// the BaseAcc/QAcc/RelLoss/Pass quartet; experiments measuring other
// quantities (FID, beam-search divergence, MSE ablations) carry them
// as named Metrics instead. Results are serialized as-is by
// internal/resultstore, so every field must JSON round-trip exactly —
// keep NaN/Inf out of the float fields (mark failures via Err) — and
// the encoding must be byte-deterministic: distributed shards that
// compute the same cell must produce byte-identical store entries for
// Store.Merge to recognize as duplicates. Map-valued fields are safe
// (encoding/json sorts keys); do not add fields whose encoding depends
// on iteration or insertion order.
type Result struct {
	Model   string        `json:"model"`
	Domain  models.Domain `json:"domain"`
	Recipe  string        `json:"recipe"`
	BaseAcc float64       `json:"base_acc"`
	QAcc    float64       `json:"qacc"`
	RelLoss float64       `json:"rel_loss"`
	Pass    bool          `json:"pass"`
	// Metrics holds named non-accuracy measurements of the cell.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Err marks a cell that could not be evaluated (e.g. the model
	// failed to build). Renderers skip errored cells; the cache layer
	// never persists them.
	Err string `json:"err,omitempty"`
}

// Failed returns the error marker Result for a cell that could not run.
func Failed(model, recipe string, err error) Result {
	return Result{Model: model, Recipe: recipe, Err: err.Error()}
}

// Reference holds the FP32 ground truth of a model on its eval split.
type Reference struct {
	// Labels are per-sample argmax predictions (Argmax models).
	Labels []int
	// Keep marks the samples retained by the margin filter.
	Keep []bool
	// Scores are flattened raw outputs (Score models).
	Scores []float32
}

// ComputeReference runs the FP32 model over the eval split and applies
// the margin filter.
func ComputeReference(net *models.Network) Reference {
	var ref Reference
	var margins []float32
	for b := EvalStart; b < EvalEnd; b++ {
		out := net.Run(net.Data.Batch(b))
		if net.Eval == models.Argmax {
			ref.Labels = append(ref.Labels, data.ArgmaxRows(out)...)
			margins = append(margins, rowMargins(out)...)
		} else {
			ref.Scores = append(ref.Scores, out.Data...)
		}
	}
	if len(margins) > 0 {
		thr := tensor.Percentile(margins, MarginKeepPct)
		ref.Keep = make([]bool, len(margins))
		for i, m := range margins {
			ref.Keep[i] = float64(m) >= thr
		}
	}
	return ref
}

// rowMargins returns the top1-top2 logit gap per row of [rows, C].
func rowMargins(t *tensor.Tensor) []float32 {
	cols := t.Shape[t.Rank()-1]
	rows := t.Len() / cols
	out := make([]float32, rows)
	for r := 0; r < rows; r++ {
		row := t.Data[r*cols : (r+1)*cols]
		best, second := float32(math.Inf(-1)), float32(math.Inf(-1))
		for _, v := range row {
			if v > best {
				second = best
				best = v
			} else if v > second {
				second = v
			}
		}
		if cols == 1 {
			second = 0
		}
		out[r] = best - second
	}
	return out
}

// AccuracyAgainst measures the current model state against a reference
// computed earlier with ComputeReference.
func AccuracyAgainst(net *models.Network, ref Reference) float64 {
	if net.Eval == models.Argmax {
		var preds []int
		for b := EvalStart; b < EvalEnd; b++ {
			out := net.Run(net.Data.Batch(b))
			preds = append(preds, data.ArgmaxRows(out)...)
		}
		kept, hit := 0, 0
		for i := range preds {
			if ref.Keep != nil && !ref.Keep[i] {
				continue
			}
			kept++
			if preds[i] == ref.Labels[i] {
				hit++
			}
		}
		if kept == 0 {
			return 0
		}
		return float64(hit) / float64(kept)
	}
	var scores []float32
	for b := EvalStart; b < EvalEnd; b++ {
		out := net.Run(net.Data.Batch(b))
		scores = append(scores, out.Data...)
	}
	a := make([]float64, len(scores))
	bb := make([]float64, len(scores))
	for i := range scores {
		a[i] = float64(scores[i])
		bb[i] = float64(ref.Scores[i])
	}
	p := data.Pearson(a, bb)
	if p < 0 {
		p = 0
	}
	return p
}

// PaperRecipe specializes a base recipe per the paper's per-domain
// settings: SmoothQuant (alpha 0.5) on static NLP/Audio quantization,
// BatchNorm calibration on CV models containing BatchNorm.
func PaperRecipe(base quant.Recipe, net *models.Network) quant.Recipe {
	r := base
	isNLPish := net.Meta.Domain == models.NLP || net.Meta.Domain == models.Audio
	if isNLPish && r.Approach == quant.Static {
		r = r.WithSmoothQuant(0.5)
	}
	if net.Meta.Domain == models.CV && net.Meta.HasBN {
		r = r.WithBNCalib(CalibBatches)
	}
	r.CalibBatches = CalibBatches
	return r
}

// Evaluate applies the recipe to the model, measures agreement, and
// restores the model. Set paperDefaults to apply PaperRecipe.
func Evaluate(net *models.Network, base quant.Recipe, paperDefaults bool) Result {
	return EvaluateWithRef(net, base, paperDefaults, ComputeReference(net))
}

// EvaluateWithRef is Evaluate with a precomputed FP32 reference,
// letting callers amortize the reference pass across recipes.
func EvaluateWithRef(net *models.Network, base quant.Recipe, paperDefaults bool, ref Reference) Result {
	r := base
	if paperDefaults {
		r = PaperRecipe(base, net)
	}
	h := quant.Quantize(net, net.Data, r)
	acc := AccuracyAgainst(net, ref)
	h.Release()
	rl := data.RelativeLoss(1.0, acc)
	return Result{
		Model:   net.Meta.Name,
		Domain:  net.Meta.Domain,
		Recipe:  base.Name(),
		BaseAcc: 1.0,
		QAcc:    acc,
		RelLoss: rl,
		Pass:    data.Passes(1.0, acc),
	}
}

// EvaluateRecipes evaluates several recipes on one model, computing the
// FP32 reference once.
func EvaluateRecipes(net *models.Network, bases []quant.Recipe, paperDefaults bool) []Result {
	ref := ComputeReference(net)
	out := make([]Result, len(bases))
	for i, b := range bases {
		out[i] = EvaluateWithRef(net, b, paperDefaults, ref)
	}
	return out
}

// EvaluateNames evaluates a recipe over a list of registry model names
// in parallel (one worker per core), returning results in input order.
func EvaluateNames(names []string, base quant.Recipe, paperDefaults bool) []Result {
	results := make([]Result, len(names))
	workers := runtime.NumCPU()
	if workers > len(names) {
		workers = len(names)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				net, err := models.Build(names[i])
				if err != nil {
					results[i] = Result{Model: names[i], Recipe: base.Name()}
					continue
				}
				results[i] = Evaluate(net, base, paperDefaults)
			}
		}()
	}
	for i := range names {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}

// PassRates aggregates Table 2-style pass percentages.
type PassRates struct {
	CV, NLP, All float64
	NCV, NNLP, N int
}

// AggregatePassRates buckets results: CV bucket is Domain CV; NLP
// bucket is Domain NLP plus Audio (language-adjacent transformer
// stacks, as the paper groups its non-CV workloads); All covers every
// result.
func AggregatePassRates(results []Result) PassRates {
	var pr PassRates
	for _, r := range results {
		pr.N++
		if r.Pass {
			pr.All++
		}
		switch r.Domain {
		case models.CV:
			pr.NCV++
			if r.Pass {
				pr.CV++
			}
		case models.NLP, models.Audio, models.RecSys:
			pr.NNLP++
			if r.Pass {
				pr.NLP++
			}
		}
	}
	if pr.NCV > 0 {
		pr.CV = pr.CV / float64(pr.NCV) * 100
	}
	if pr.NNLP > 0 {
		pr.NLP = pr.NLP / float64(pr.NNLP) * 100
	}
	if pr.N > 0 {
		pr.All = pr.All / float64(pr.N) * 100
	}
	return pr
}

// LossStats summarizes a loss distribution (Figure 4 / Figure 9's
// box-plot style variability view).
type LossStats struct {
	Mean, Std, Min, Max, Median, Q1, Q3 float64
	N                                   int
}

// ComputeLossStats reduces relative losses (in %) to summary stats.
func ComputeLossStats(losses []float64) LossStats {
	if len(losses) == 0 {
		return LossStats{}
	}
	f := make([]float32, len(losses))
	for i, v := range losses {
		f[i] = float32(v)
	}
	var s, s2 float64
	mn, mx := losses[0], losses[0]
	for _, v := range losses {
		s += v
		s2 += v * v
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	n := float64(len(losses))
	mean := s / n
	va := s2/n - mean*mean
	if va < 0 {
		va = 0
	}
	return LossStats{
		Mean: mean, Std: math.Sqrt(va), Min: mn, Max: mx,
		Median: tensor.Percentile(f, 50),
		Q1:     tensor.Percentile(f, 25),
		Q3:     tensor.Percentile(f, 75),
		N:      len(losses),
	}
}
