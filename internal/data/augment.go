package data

import "fp8quant/internal/tensor"

// Transform maps an image batch to an augmented batch. Figure 7 of the
// paper compares "training transform" (randomized augmentation) against
// "inference transform" (deterministic preprocessing) for BatchNorm
// calibration data; these are the Go equivalents.
type Transform func(x *tensor.Tensor, r *tensor.RNG) *tensor.Tensor

// AugmentTraining applies the training-style transform: random shift
// (crop with reflection padding), random horizontal flip, and additive
// brightness/contrast jitter. The paper found this feature diversity
// improves BatchNorm statistics quality at small sample sizes.
func AugmentTraining(x *tensor.Tensor, r *tensor.RNG) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	y := tensor.New(x.Shape...)
	for ni := 0; ni < n; ni++ {
		dy := r.Intn(3) - 1
		dx := r.Intn(3) - 1
		flip := r.Float64() < 0.5
		gain := float32(r.Uniform(0.8, 1.2))
		bias := float32(r.Uniform(-0.1, 0.1))
		for ci := 0; ci < c; ci++ {
			for yy := 0; yy < h; yy++ {
				sy := reflect(yy+dy, h)
				for xx := 0; xx < w; xx++ {
					sx := reflect(xx+dx, w)
					if flip {
						sx = w - 1 - sx
					}
					v := x.At(ni, ci, sy, sx)
					y.Set(v*gain+bias, ni, ci, yy, xx)
				}
			}
		}
	}
	return y
}

// AugmentInference applies the deterministic inference-style transform:
// a centre-preserving identity pass with fixed normalization (no
// randomness), matching validation preprocessing.
func AugmentInference(x *tensor.Tensor, r *tensor.RNG) *tensor.Tensor {
	// Normalize each image to zero mean, matching a fixed
	// mean-subtraction preprocessing pipeline.
	n := x.Shape[0]
	per := x.Len() / n
	y := x.Clone()
	for ni := 0; ni < n; ni++ {
		seg := y.Data[ni*per : (ni+1)*per]
		var mu float64
		for _, v := range seg {
			mu += float64(v)
		}
		mu /= float64(per)
		for i := range seg {
			seg[i] -= float32(mu)
		}
	}
	return y
}

// reflect mirrors index i into [0, n).
func reflect(i, n int) int {
	if i < 0 {
		return -i
	}
	if i >= n {
		return 2*n - 2 - i
	}
	return i
}
