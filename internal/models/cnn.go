package models

import (
	"fmt"
	"math"

	"fp8quant/internal/data"
	"fp8quant/internal/nn"
	"fp8quant/internal/tensor"
)

// Shared CV evaluation geometry: small images keep the zoo fast while
// exercising every operator the real architectures use.
const (
	cvImage   = 12
	cvChans   = 3
	cvBatch   = 16
	cvBatches = 16
)

func cvDataset(seed uint64) data.Dataset {
	return &data.ImageDataset{N: cvBatch, C: cvChans, H: cvImage, W: cvImage,
		NumBatches: cvBatches, Seed: seed}
}

// convBN is Conv → BatchNorm → activation, the workhorse CV unit.
type convBN struct {
	Conv *nn.Conv2d
	BN   *nn.BatchNorm2d
	Act  nn.Module // nil for linear
}

func newConvBN(r *tensor.RNG, inC, outC, k, stride, pad, groups int, act nn.Module) *convBN {
	c := nn.NewConv2d(inC, outC, k, stride, pad, groups)
	initConv(c, r)
	bn := nn.NewBatchNorm2d(outC)
	initBN(bn, r)
	return &convBN{Conv: c, BN: bn, Act: act}
}

// initBN gives BatchNorm realistic non-identity statistics so that
// re-calibration (Figure 7) has real work to do. bnGammaSpread (a
// per-builder knob, see withGammaSpread) widens the log-normal gamma
// distribution: mobile-family networks have per-channel activation
// ranges spanning an order of magnitude, which is precisely what makes
// per-tensor INT8 activation scaling fail on them (Figure 4 caption)
// while FP8's log-spaced grid keeps per-value relative precision.
func initBN(bn *nn.BatchNorm2d, r *tensor.RNG) {
	initBNSpread(bn, r, 0.2)
}

func initBNSpread(bn *nn.BatchNorm2d, r *tensor.RNG, spread float64) {
	for i := 0; i < bn.C; i++ {
		bn.Gamma[i] = float32(math.Exp(spread * r.Norm()))
		bn.Beta[i] = float32(0.1 * r.Norm())
		bn.Mean[i] = float32(0.1 * r.Norm())
		bn.Var[i] = float32(0.5 + 0.5*r.Float64())
	}
}

// Kind implements nn.Module.
func (c *convBN) Kind() string { return "ConvBN" }

// Visit implements nn.Container.
func (c *convBN) Visit(path string, v nn.Visitor) {
	nn.WalkChild(path+"/conv", c.Conv, v)
	nn.WalkChild(path+"/bn", c.BN, v)
}

// Forward runs conv → BN → act.
func (c *convBN) Forward(x *tensor.Tensor) *tensor.Tensor {
	return c.ForwardArena(nil, x)
}

// ForwardArena implements nn.ArenaForwarder.
func (c *convBN) ForwardArena(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	x = c.BN.ForwardArena(a, c.Conv.ForwardArena(a, x))
	if c.Act != nil {
		x = nn.ForwardWith(a, c.Act, x)
	}
	return x
}

// inceptionBlock concatenates parallel branches (GoogleNet/Inception).
type inceptionBlock struct {
	Branches []nn.Module
}

// Kind implements nn.Module.
func (b *inceptionBlock) Kind() string { return "Inception" }

// Visit implements nn.Container.
func (b *inceptionBlock) Visit(path string, v nn.Visitor) {
	for i, br := range b.Branches {
		nn.WalkChild(fmt.Sprintf("%s/branch%d", path, i), br, v)
	}
}

// Forward concatenates branch outputs along channels.
func (b *inceptionBlock) Forward(x *tensor.Tensor) *tensor.Tensor {
	return b.ForwardArena(nil, x)
}

// ForwardArena implements nn.ArenaForwarder.
func (b *inceptionBlock) ForwardArena(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	out := nn.ForwardWith(a, b.Branches[0], x)
	for _, br := range b.Branches[1:] {
		out = nn.ConcatChannelsArena(a, out, nn.ForwardWith(a, br, x))
	}
	return out
}

// fireBlock is SqueezeNet's fire module.
type fireBlock struct {
	Squeeze, Expand1, Expand3 *convBN
}

// Kind implements nn.Module.
func (f *fireBlock) Kind() string { return "Fire" }

// Visit implements nn.Container.
func (f *fireBlock) Visit(path string, v nn.Visitor) {
	nn.WalkChild(path+"/squeeze", f.Squeeze, v)
	nn.WalkChild(path+"/expand1", f.Expand1, v)
	nn.WalkChild(path+"/expand3", f.Expand3, v)
}

// Forward runs squeeze then concatenated 1x1/3x3 expands.
func (f *fireBlock) Forward(x *tensor.Tensor) *tensor.Tensor {
	return f.ForwardArena(nil, x)
}

// ForwardArena implements nn.ArenaForwarder.
func (f *fireBlock) ForwardArena(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	s := f.Squeeze.ForwardArena(a, x)
	return nn.ConcatChannelsArena(a, f.Expand1.ForwardArena(a, s), f.Expand3.ForwardArena(a, s))
}

// invertedResidual is the MobileNetV2/V3 and EfficientNet MBConv block:
// pointwise expand → depthwise → (SE) → pointwise project, with an
// additive skip when shapes match.
type invertedResidual struct {
	Expand  *convBN // nil when expansion ratio is 1
	DW      *convBN
	SE      *nn.SEBlock // nil when not used
	Project *convBN
	Skip    *nn.AddOp // nil when stride/channels change
}

// Kind implements nn.Module.
func (b *invertedResidual) Kind() string { return "InvertedResidual" }

// Visit implements nn.Container.
func (b *invertedResidual) Visit(path string, v nn.Visitor) {
	if b.Expand != nil {
		nn.WalkChild(path+"/expand", b.Expand, v)
	}
	nn.WalkChild(path+"/dw", b.DW, v)
	if b.SE != nil {
		nn.WalkChild(path+"/se", b.SE, v)
	}
	nn.WalkChild(path+"/project", b.Project, v)
	if b.Skip != nil {
		nn.WalkChild(path+"/skip", b.Skip, v)
	}
}

// Forward runs the block.
func (b *invertedResidual) Forward(x *tensor.Tensor) *tensor.Tensor {
	return b.ForwardArena(nil, x)
}

// ForwardArena implements nn.ArenaForwarder.
func (b *invertedResidual) ForwardArena(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	h := x
	if b.Expand != nil {
		h = b.Expand.ForwardArena(a, h)
	}
	h = b.DW.ForwardArena(a, h)
	if b.SE != nil {
		h = b.SE.ForwardArena(a, h)
	}
	h = b.Project.ForwardArena(a, h)
	if b.Skip != nil {
		h = b.Skip.ApplyArena(a, h, x)
	}
	return h
}

func newInvertedResidual(r *tensor.RNG, inC, outC, stride, expand int, se bool, act nn.Module) *invertedResidual {
	mid := inC * expand
	b := &invertedResidual{}
	if expand != 1 {
		b.Expand = newConvBN(r, inC, mid, 1, 1, 0, 1, act)
	}
	b.DW = newConvBN(r, mid, mid, 3, stride, 1, mid, act)
	if se {
		b.SE = nn.NewSEBlock(mid, 4)
		initLinear(b.SE.FC1, r)
		initLinear(b.SE.FC2, r)
	}
	b.Project = newConvBN(r, mid, outC, 1, 1, 0, 1, nil)
	if stride == 1 && inC == outC {
		b.Skip = &nn.AddOp{}
	}
	return b
}

// denseBlock implements DenseNet's concatenative connectivity; its
// BatchNorms cannot be folded into convolutions (the paper's footnote
// on why BatchNorm coverage matters).
type denseBlock struct {
	Layers []*convBN
}

// Kind implements nn.Module.
func (d *denseBlock) Kind() string { return "DenseBlock" }

// Visit implements nn.Container.
func (d *denseBlock) Visit(path string, v nn.Visitor) {
	for i, l := range d.Layers {
		nn.WalkChild(fmt.Sprintf("%s/dense%d", path, i), l, v)
	}
}

// Forward concatenates each layer's output onto its input.
func (d *denseBlock) Forward(x *tensor.Tensor) *tensor.Tensor {
	return d.ForwardArena(nil, x)
}

// ForwardArena implements nn.ArenaForwarder.
func (d *denseBlock) ForwardArena(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	for _, l := range d.Layers {
		x = nn.ConcatChannelsArena(a, x, l.ForwardArena(a, x))
	}
	return x
}

func newDenseBlock(r *tensor.RNG, inC, growth, n int) (*denseBlock, int) {
	d := &denseBlock{}
	c := inC
	for i := 0; i < n; i++ {
		d.Layers = append(d.Layers, newConvBN(r, c, growth, 3, 1, 1, 1, nn.ReLU{}))
		c += growth
	}
	return d, c
}

// channelShuffle permutes channels between groups (ShuffleNet).
type channelShuffle struct{ Groups int }

// Kind implements nn.Module.
func (c channelShuffle) Kind() string { return "ChannelShuffle" }

// Forward interleaves channel groups.
func (c channelShuffle) Forward(x *tensor.Tensor) *tensor.Tensor {
	return c.ForwardArena(nil, x)
}

// ForwardArena implements nn.ArenaForwarder.
func (c channelShuffle) ForwardArena(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	n, ch, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	g := c.Groups
	if ch%g != 0 {
		return x
	}
	per := ch / g
	hw := h * w
	y := a.New(x.Shape...)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < ch; ci++ {
			src := x.Data[(ni*ch+ci)*hw : (ni*ch+ci+1)*hw]
			// channel ci = (group gi, index pi) -> pi*g + gi
			gi, pi := ci/per, ci%per
			dst := y.Data[(ni*ch+pi*g+gi)*hw:]
			copy(dst[:hw], src)
		}
	}
	return y
}

// cnnHead is GlobalAvgPool → Linear classifier.
func cnnHead(r *tensor.RNG, c, classes int) []nn.Module {
	fc := nn.NewLinear(c, classes)
	initLinear(fc, r)
	return []nn.Module{nn.GlobalAvgPool{}, fc}
}

// buildCNN assembles a Sequential CV model with standard plumbing.
// gammaSpread > 0 re-draws every BatchNorm gamma with the given
// log-normal spread (mobile-family channel-range imbalance).
func buildCNN(info Info, seed uint64, body func(r *tensor.RNG, seq *nn.Sequential) int, classes int, gammaSpread float64) *Network {
	r := tensor.NewRNG(seed)
	seq := &nn.Sequential{}
	outC := body(r, seq)
	for _, m := range cnnHead(r, outC, classes) {
		seq.Add("", m)
	}
	if gammaSpread > 0 {
		gr := tensor.NewRNG(seed ^ 0x6A77A)
		nn.Walk(seq, func(_ string, m nn.Module) {
			if bn, ok := m.(*nn.BatchNorm2d); ok {
				initBNSpread(bn, gr, gammaSpread)
			}
		})
	}
	net := &Network{
		Meta:      info,
		root:      seq,
		fwd:       func(s data.Sample) *tensor.Tensor { return seq.Forward(s.X) },
		Data:      cvDataset(seed ^ 0xDA7A),
		Classes:   classes,
		plannable: true,
	}
	WarmBatchNorms(net, 4)
	return net
}

// resnetBody builds stem + basic-block stages.
func resnetBody(widths []int, blocks []int, se bool) func(r *tensor.RNG, seq *nn.Sequential) int {
	return func(r *tensor.RNG, seq *nn.Sequential) int {
		seq.Add("stem", newConvBN(r, cvChans, widths[0], 3, 1, 1, 1, nn.ReLU{}))
		c := widths[0]
		for si, w := range widths {
			for bi := 0; bi < blocks[si]; bi++ {
				stride := 1
				if bi == 0 && si > 0 {
					stride = 2
				}
				rb := nn.NewResidualBlock(c, w, stride)
				initConv(rb.Conv1, r)
				initConv(rb.Conv2, r)
				initBN(rb.BN1, r)
				initBN(rb.BN2, r)
				if rb.Proj != nil {
					initConv(rb.Proj, r)
					initBN(rb.ProjBN, r)
				}
				seq.Add(fmt.Sprintf("s%db%d", si, bi), rb)
				c = w
				if se {
					seb := nn.NewSEBlock(c, 4)
					initLinear(seb.FC1, r)
					initLinear(seb.FC2, r)
					seq.Add(fmt.Sprintf("s%db%dse", si, bi), seb)
				}
			}
		}
		return c
	}
}

// vggBody builds conv-conv-pool stages without BatchNorm.
func vggBody(widths []int, convs int) func(r *tensor.RNG, seq *nn.Sequential) int {
	return func(r *tensor.RNG, seq *nn.Sequential) int {
		c := cvChans
		for si, w := range widths {
			for k := 0; k < convs; k++ {
				conv := nn.NewConv2d(c, w, 3, 1, 1, 1)
				initConv(conv, r)
				seq.Add(fmt.Sprintf("s%dc%d", si, k), conv)
				seq.Add("", nn.ReLU{})
				c = w
			}
			if si < len(widths)-1 {
				seq.Add("", &nn.MaxPool2d{K: 2, Stride: 2})
			}
		}
		return c
	}
}

func mobilenetBody(v3 bool) func(r *tensor.RNG, seq *nn.Sequential) int {
	return func(r *tensor.RNG, seq *nn.Sequential) int {
		var act nn.Module = nn.ReLU{}
		if v3 {
			act = nn.HardSwish{}
		}
		seq.Add("stem", newConvBN(r, cvChans, 8, 3, 1, 1, 1, act))
		cfg := []struct{ in, out, stride, expand int }{
			{8, 12, 1, 2}, {12, 12, 1, 3}, {12, 16, 2, 3}, {16, 16, 1, 3},
		}
		for i, c := range cfg {
			seq.Add(fmt.Sprintf("ir%d", i),
				newInvertedResidual(r, c.in, c.out, c.stride, c.expand, v3, act))
		}
		return 16
	}
}

func efficientnetBody(depth int) func(r *tensor.RNG, seq *nn.Sequential) int {
	return func(r *tensor.RNG, seq *nn.Sequential) int {
		act := nn.SiLU{}
		seq.Add("stem", newConvBN(r, cvChans, 8, 3, 1, 1, 1, act))
		c := 8
		for i := 0; i < depth; i++ {
			out := c
			stride := 1
			if i == depth/2 {
				out, stride = c+8, 2
			}
			seq.Add(fmt.Sprintf("mb%d", i),
				newInvertedResidual(r, c, out, stride, 3, true, act))
			c = out
		}
		return c
	}
}

func densenetBody(growth, n1, n2 int) func(r *tensor.RNG, seq *nn.Sequential) int {
	return func(r *tensor.RNG, seq *nn.Sequential) int {
		seq.Add("stem", newConvBN(r, cvChans, 8, 3, 1, 1, 1, nn.ReLU{}))
		d1, c := newDenseBlock(r, 8, growth, n1)
		seq.Add("dense1", d1)
		seq.Add("trans", newConvBN(r, c, c/2, 1, 1, 0, 1, nn.ReLU{}))
		seq.Add("", &nn.AvgPool2d{K: 2, Stride: 2})
		d2, c2 := newDenseBlock(r, c/2, growth, n2)
		seq.Add("dense2", d2)
		return c2
	}
}

func inceptionBody(deep bool) func(r *tensor.RNG, seq *nn.Sequential) int {
	return func(r *tensor.RNG, seq *nn.Sequential) int {
		seq.Add("stem", newConvBN(r, cvChans, 8, 3, 2, 1, 1, nn.ReLU{}))
		mk := func(in int) *inceptionBlock {
			return &inceptionBlock{Branches: []nn.Module{
				newConvBN(r, in, 8, 1, 1, 0, 1, nn.ReLU{}),
				nn.NewSequential(
					newConvBN(r, in, 6, 1, 1, 0, 1, nn.ReLU{}),
					newConvBN(r, 6, 8, 3, 1, 1, 1, nn.ReLU{})),
				nn.NewSequential(
					newConvBN(r, in, 4, 1, 1, 0, 1, nn.ReLU{}),
					newConvBN(r, 4, 8, 5, 1, 2, 1, nn.ReLU{})),
			}}
		}
		seq.Add("inc1", mk(8))
		c := 24
		if deep {
			seq.Add("inc2", mk(c))
			c = 24
		}
		return c
	}
}

func shufflenetBody() func(r *tensor.RNG, seq *nn.Sequential) int {
	return func(r *tensor.RNG, seq *nn.Sequential) int {
		seq.Add("stem", newConvBN(r, cvChans, 8, 3, 1, 1, 1, nn.ReLU{}))
		seq.Add("g1", newConvBN(r, 8, 16, 1, 1, 0, 2, nn.ReLU{}))
		seq.Add("", channelShuffle{Groups: 2})
		seq.Add("dw1", newConvBN(r, 16, 16, 3, 2, 1, 16, nil))
		seq.Add("g2", newConvBN(r, 16, 16, 1, 1, 0, 2, nn.ReLU{}))
		seq.Add("", channelShuffle{Groups: 2})
		seq.Add("dw2", newConvBN(r, 16, 16, 3, 1, 1, 16, nil))
		seq.Add("g3", newConvBN(r, 16, 16, 1, 1, 0, 2, nn.ReLU{}))
		return 16
	}
}

func squeezenetBody() func(r *tensor.RNG, seq *nn.Sequential) int {
	return func(r *tensor.RNG, seq *nn.Sequential) int {
		seq.Add("stem", newConvBN(r, cvChans, 8, 3, 2, 1, 1, nn.ReLU{}))
		f1 := &fireBlock{
			Squeeze: newConvBN(r, 8, 4, 1, 1, 0, 1, nn.ReLU{}),
			Expand1: newConvBN(r, 4, 8, 1, 1, 0, 1, nn.ReLU{}),
			Expand3: newConvBN(r, 4, 8, 3, 1, 1, 1, nn.ReLU{}),
		}
		seq.Add("fire1", f1)
		f2 := &fireBlock{
			Squeeze: newConvBN(r, 16, 4, 1, 1, 0, 1, nn.ReLU{}),
			Expand1: newConvBN(r, 4, 8, 1, 1, 0, 1, nn.ReLU{}),
			Expand3: newConvBN(r, 4, 8, 3, 1, 1, 1, nn.ReLU{}),
		}
		seq.Add("fire2", f2)
		return 16
	}
}

func yoloBody() func(r *tensor.RNG, seq *nn.Sequential) int {
	return func(r *tensor.RNG, seq *nn.Sequential) int {
		// Darknet-style: strided convs with BN, leaky-ish ReLU stands
		// in for LeakyReLU.
		widths := []int{8, 16, 24}
		c := cvChans
		for i, w := range widths {
			seq.Add(fmt.Sprintf("d%d", i), newConvBN(r, c, w, 3, 2, 1, 1, nn.ReLU{}))
			seq.Add(fmt.Sprintf("p%d", i), newConvBN(r, w, w, 1, 1, 0, 1, nn.ReLU{}))
			c = w
		}
		return c
	}
}

func registerCNN(name string, sizeMB float64, classes int, hasBN bool,
	body func(r *tensor.RNG, seq *nn.Sequential) int) {
	registerCNNSpread(name, sizeMB, classes, hasBN, 0, body)
}

// registerCNNSpread registers a CV model whose BatchNorm gammas are
// re-drawn with the given log-normal spread (see initBNSpread).
func registerCNNSpread(name string, sizeMB float64, classes int, hasBN bool,
	gammaSpread float64, body func(r *tensor.RNG, seq *nn.Sequential) int) {
	info := Info{
		Name: name, Domain: CV, Task: "imagenet-sim", SizeMB: sizeMB,
		IsCNN: true, HasBN: hasBN,
	}
	register(info, func(seed uint64) *Network {
		return buildCNN(info, seed, body, classes, gammaSpread)
	})
}

func init() {
	// ResNet family and friends.
	registerCNN("resnet18", 45, 10, true, resnetBody([]int{8, 16}, []int{2, 2}, false))
	registerCNN("resnet34", 83, 10, true, resnetBody([]int{8, 16}, []int{3, 2}, false))
	registerCNN("resnet50", 98, 12, true, resnetBody([]int{8, 16, 24}, []int{2, 2, 2}, false))
	registerCNN("resnext101", 170, 12, true, resnetBody([]int{10, 20}, []int{2, 2}, false))
	registerCNN("wide_resnet50", 132, 10, true, resnetBody([]int{12, 24}, []int{2, 2}, false))
	registerCNNSpread("se_resnext50", 105, 10, true, 0.55, resnetBody([]int{8, 16}, []int{2, 2}, true))
	registerCNNSpread("resnest50", 110, 10, true, 0.55, resnetBody([]int{8, 16}, []int{2, 3}, true))
	registerCNN("cifar_resnet20", 1.1, 8, true, resnetBody([]int{8}, []int{3}, false))
	registerCNN("regnet_y", 22, 8, true, resnetBody([]int{8, 12}, []int{2, 2}, true))

	// VGG family (no BatchNorm).
	registerCNN("vgg11", 507, 10, false, vggBody([]int{8, 16}, 1))
	registerCNN("vgg13", 508, 10, false, vggBody([]int{8, 16}, 2))
	registerCNN("vgg16", 528, 12, false, vggBody([]int{8, 16, 16}, 2))

	// DenseNets (unfoldable BatchNorm).
	registerCNN("densenet121", 31, 10, true, densenetBody(6, 3, 3))
	registerCNN("densenet169", 55, 10, true, densenetBody(6, 4, 3))
	registerCNN("peleenet", 21, 8, true, densenetBody(4, 3, 2))

	// Mobile families (depthwise; INT8's classic trouble spot).
	registerCNNSpread("mobilenet_v2", 14, 8, true, 0.7, mobilenetBody(false))
	registerCNNSpread("mobilenet_v3", 21, 8, true, 0.9, mobilenetBody(true))
	registerCNNSpread("shufflenet_v2", 9, 8, true, 0.5, shufflenetBody())
	registerCNNSpread("mnasnet", 17, 8, true, 0.6, mobilenetBody(false))
	registerCNNSpread("ghostnet", 20, 8, true, 0.8, mobilenetBody(true))

	// EfficientNets (SE + SiLU).
	registerCNNSpread("efficientnet_b0", 21, 10, true, 1.0, efficientnetBody(3))
	registerCNNSpread("efficientnet_b4", 75, 10, true, 1.1, efficientnetBody(4))

	// Inception family.
	registerCNN("googlenet", 27, 10, true, inceptionBody(false))
	registerCNN("inception_v3", 104, 10, true, inceptionBody(true))
	registerCNN("squeezenet", 4.8, 8, true, squeezenetBody())

	// Detection backbone.
	registerCNN("yolov3", 237, 8, true, yoloBody())

	// Modernized ConvNet (depthwise 7x7-ish stages, here 3x3 at this
	// scale).
	registerCNN("convnext_tiny", 109, 10, true, resnetBody([]int{12, 16}, []int{2, 2}, false))
}
