GO ?= go

.PHONY: all build vet fmt fmt-check test bench ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

# Fails if any file needs reformatting.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

ci: build vet fmt-check test
