// Package analyzers implements fp8vet, the project's determinism-
// contract checker suite. Every load-bearing guarantee of this
// reproduction — memoized cells, content-addressed store merges that
// hard-error on differing payloads, kernels proven byte-identical to
// the naive oracle — rests on source-level invariants that ordinary
// tests only probe after the fact. Each analyzer makes one of those
// invariants machine-checked on every push:
//
//	mapiter      map iteration feeding reports, encodings or store
//	             writes must sort its keys first
//	nondeterm    no wall clock, environment, CPU-count or global-RNG
//	             reads reachable from cell or kernel code
//	floatorder   kernel/codec float math must not invite FMA
//	             contraction, float equality, or split accumulators
//	atomicwrite  result-store files are written only via the
//	             temp+rename helper
//	cellpurity   RunCell bodies (and their direct in-package callees)
//	             must not assign package-level variables
//
// A finding is suppressed by an allowlist comment on the same line or
// the line above:
//
//	//fp8vet:ignore <check> <reason>
//
// The reason is mandatory — an ignore without one is itself reported —
// so every exemption documents why the contract holds anyway.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one contract violation at a source position.
type Finding struct {
	Check   string
	Pos     token.Position
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Check, f.Message)
}

// Analyzer is one named contract check over a loaded package set.
type Analyzer struct {
	Name string
	Doc  string
	// Run reports violations across the whole package set (checks like
	// nondeterm walk call edges between packages).
	Run func(pkgs []*Package) []Finding
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		mapiterAnalyzer(),
		nondetermAnalyzer(),
		floatorderAnalyzer(),
		atomicwriteAnalyzer(),
		cellpurityAnalyzer(),
	}
}

// ByName resolves a comma-separated check list ("mapiter,cellpurity").
func ByName(names string) ([]*Analyzer, error) {
	if strings.TrimSpace(names) == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := byName[n]
		if !ok {
			known := make([]string, 0, len(byName))
			for k := range byName {
				known = append(known, k)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("unknown check %q (have %s)", n, strings.Join(known, ", "))
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return All(), nil
	}
	return out, nil
}

// Directive is one parsed //fp8vet:ignore comment.
type Directive struct {
	Check  string
	Reason string
	Line   int
}

// directivePrefix is the ignore-comment marker.
const directivePrefix = "//fp8vet:ignore"

// parseDirectives collects the fp8vet:ignore comments of one file,
// keyed by line.
func parseDirectives(fset *token.FileSet, f *ast.File) map[int][]Directive {
	out := map[int][]Directive{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, directivePrefix))
			parts := strings.SplitN(rest, " ", 2)
			d := Directive{Line: fset.Position(c.Pos()).Line}
			if len(parts) > 0 {
				d.Check = parts[0]
			}
			if len(parts) == 2 {
				d.Reason = strings.TrimSpace(parts[1])
			}
			out[d.Line] = append(out[d.Line], d)
		}
	}
	return out
}

// RunResult is the outcome of running one analyzer over the set:
// surviving findings plus how many were suppressed by directives.
type RunResult struct {
	Analyzer *Analyzer
	Findings []Finding
	Ignored  int
}

// RunAll executes the given analyzers, applies ignore directives, and
// reports malformed directives (no check name, missing reason, or a
// check name no analyzer declares) as findings of the "directive"
// pseudo-check appended to the matching analyzer pass.
func RunAll(pkgs []*Package, as []*Analyzer) []RunResult {
	var out []RunResult
	for _, a := range as {
		raw := dedupeFindings(a.Run(pkgs))
		res := RunResult{Analyzer: a}
		for _, f := range raw {
			if ignored(pkgs, f) {
				res.Ignored++
				continue
			}
			res.Findings = append(res.Findings, f)
		}
		sortFindings(res.Findings)
		out = append(out, res)
	}
	// Directive hygiene rides with the suite: an ignore that names no
	// known check or gives no reason silently suppresses nothing (or
	// everything) — surface it.
	if bad := badDirectives(pkgs, as); len(bad) > 0 {
		out = append(out, RunResult{
			Analyzer: &Analyzer{Name: "directive", Doc: "fp8vet:ignore comments must name a check and give a reason"},
			Findings: bad,
		})
	}
	return out
}

// ignored reports whether a directive on the finding's line (or the
// line above it) suppresses the finding. Reason-less directives do not
// suppress — they are themselves findings.
func ignored(pkgs []*Package, f Finding) bool {
	for _, p := range pkgs {
		lines, ok := p.Ignores[f.Pos.Filename]
		if !ok {
			continue
		}
		for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
			for _, d := range lines[line] {
				if d.Check == f.Check && d.Reason != "" {
					return true
				}
			}
		}
	}
	return false
}

// badDirectives reports malformed ignore comments across the set.
func badDirectives(pkgs []*Package, as []*Analyzer) []Finding {
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	var out []Finding
	for _, p := range pkgs {
		for _, file := range sortedKeys(p.Ignores) {
			lines := p.Ignores[file]
			lineNos := make([]int, 0, len(lines))
			for n := range lines {
				lineNos = append(lineNos, n)
			}
			sort.Ints(lineNos)
			for _, n := range lineNos {
				for _, d := range lines[n] {
					switch {
					case d.Check == "" || !known[d.Check]:
						out = append(out, Finding{
							Check:   "directive",
							Pos:     token.Position{Filename: file, Line: d.Line},
							Message: fmt.Sprintf("fp8vet:ignore names unknown check %q", d.Check),
						})
					case d.Reason == "":
						out = append(out, Finding{
							Check:   "directive",
							Pos:     token.Position{Filename: file, Line: d.Line},
							Message: fmt.Sprintf("fp8vet:ignore %s has no reason — say why the contract holds", d.Check),
						})
					}
				}
			}
		}
	}
	sortFindings(out)
	return dedupeFindings(out)
}

// dedupeFindings drops exact duplicates — build-tag variant packages
// (see loadIgnoredVariants) re-analyze the files they share with the
// base configuration, reproducing its findings verbatim.
func dedupeFindings(fs []Finding) []Finding {
	seen := map[string]bool{}
	out := fs[:0]
	for _, f := range fs {
		k := fmt.Sprintf("%s:%d:%s:%s", f.Pos.Filename, f.Pos.Line, f.Check, f.Message)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, f)
	}
	return out
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].Pos.Filename != fs[j].Pos.Filename {
			return fs[i].Pos.Filename < fs[j].Pos.Filename
		}
		if fs[i].Pos.Line != fs[j].Pos.Line {
			return fs[i].Pos.Line < fs[j].Pos.Line
		}
		return fs[i].Message < fs[j].Message
	})
}

// ---- shared AST/type helpers ----

// isFloat reports whether t's underlying type is a floating-point
// scalar.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (nil for calls through function values, builtins, or conversions).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// funcKey names a function unambiguously across separately
// type-checked packages: "pkgpath.Recv.Name" (receiver type name
// without pointer) or "pkgpath.Name".
func funcKey(f *types.Func) string {
	if f == nil {
		return ""
	}
	pkg := ""
	if f.Pkg() != nil {
		pkg = f.Pkg().Path()
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		return pkg + "." + recvTypeName(sig.Recv().Type()) + "." + f.Name()
	}
	return pkg + "." + f.Name()
}

// recvTypeName returns the bare named type of a receiver.
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

// declKey returns funcKey for a declared function in pkg.
func declKey(p *Package, d *ast.FuncDecl) string {
	if obj, ok := p.Info.Defs[d.Name].(*types.Func); ok {
		return funcKey(obj)
	}
	// Fallback when type info is partial (fixtures with errors).
	return p.Path + "." + d.Name.Name
}

// eachFuncDecl visits every function declaration with a body across
// the set.
func eachFuncDecl(pkgs []*Package, fn func(p *Package, d *ast.FuncDecl)) {
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				if d, ok := decl.(*ast.FuncDecl); ok && d.Body != nil {
					fn(p, d)
				}
			}
		}
	}
}

// kernelOrCodecPackage reports whether the package is under the
// kernel/codec bit-identity contract: internal/fp8 and
// internal/tensor/kernels (matched by path segment so fixture packages
// named "fp8" or "kernels" participate too).
func kernelOrCodecPackage(p *Package) bool {
	for _, seg := range strings.Split(p.Path, "/") {
		if seg == "fp8" || seg == "kernels" {
			return true
		}
	}
	return false
}

// position converts a node position.
func position(p *Package, n ast.Node) token.Position {
	return p.Fset.Position(n.Pos())
}

// unparen strips parentheses (ast.Unparen needs go1.22; go.mod floors
// at 1.21).
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
