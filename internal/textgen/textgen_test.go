package textgen

import (
	"math"
	"testing"

	"fp8quant/internal/tensor"
)

// tableLM is a deterministic bigram LM for tests: next-token logits
// depend only on the last token.
type tableLM struct {
	vocab int
	table [][]float32
}

func newTableLM(vocab int, seed uint64) *tableLM {
	r := tensor.NewRNG(seed)
	t := make([][]float32, vocab)
	for i := range t {
		row := make([]float32, vocab)
		for j := range row {
			row[j] = float32(r.Norm())
		}
		t[i] = row
	}
	return &tableLM{vocab: vocab, table: t}
}

func (m *tableLM) Vocab() int { return m.vocab }
func (m *tableLM) NextLogits(tokens [][]int) *tensor.Tensor {
	out := tensor.New(len(tokens), m.vocab)
	for i, seq := range tokens {
		last := seq[len(seq)-1]
		copy(out.Data[i*m.vocab:], m.table[last])
	}
	return out
}

func TestGreedyFollowsArgmax(t *testing.T) {
	m := newTableLM(8, 1)
	gen := Greedy(m, []int{0}, 5)
	cur := 0
	for i, tok := range gen {
		best := 0
		for j, v := range m.table[cur] {
			if v > m.table[cur][best] {
				best = j
			}
		}
		if tok != best {
			t.Fatalf("step %d: got %d, want argmax %d", i, tok, best)
		}
		cur = tok
	}
}

func TestBeamSearchBeatsGreedyScore(t *testing.T) {
	m := newTableLM(12, 2)
	prompt := []int{3}
	greedy := Greedy(m, prompt, 6)
	beam := BeamSearch(m, prompt, 4, 6)
	gs := seqScore(m, prompt, greedy)
	bs := seqScore(m, prompt, beam)
	if bs < gs-1e-9 {
		t.Errorf("beam score %v < greedy score %v", bs, gs)
	}
}

func seqScore(m LM, prompt, gen []int) float64 {
	toks := append([]int(nil), prompt...)
	score := 0.0
	for _, tok := range gen {
		lg := m.NextLogits([][]int{toks})
		lp := logSoftmax(lg.Data)
		score += lp[tok]
		toks = append(toks, tok)
	}
	return score
}

func TestBeamSearchDeterministic(t *testing.T) {
	m := newTableLM(10, 3)
	a := BeamSearch(m, []int{1, 2}, 3, 8)
	b := BeamSearch(m, []int{1, 2}, 3, 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("beam search must be deterministic")
		}
	}
}

func TestRepetitionRate(t *testing.T) {
	// Perfectly repetitive sequence: rate near 1.
	rep := []int{1, 2, 3, 1, 2, 3, 1, 2, 3, 1, 2, 3}
	if got := RepetitionRate(rep, 3); got < 0.5 {
		t.Errorf("repetitive rate = %v, want high", got)
	}
	// All-distinct sequence: rate 0.
	uniq := []int{1, 2, 3, 4, 5, 6, 7, 8}
	if got := RepetitionRate(uniq, 3); got != 0 {
		t.Errorf("unique rate = %v, want 0", got)
	}
	if RepetitionRate([]int{1, 2}, 3) != 0 {
		t.Error("short sequence rate must be 0")
	}
}

func TestDistinctN(t *testing.T) {
	uniq := []int{1, 2, 3, 4, 5}
	if got := DistinctN(uniq, 2); got != 1 {
		t.Errorf("distinct-2 = %v, want 1", got)
	}
	rep := []int{1, 1, 1, 1, 1}
	if got := DistinctN(rep, 2); got != 0.25 {
		t.Errorf("constant distinct-2 = %v, want 0.25", got)
	}
}

func TestCompare(t *testing.T) {
	ref := []int{1, 2, 3, 4, 5}
	same := Compare(ref, ref)
	if same.FirstDivergence != 5 || same.MatchRate != 1 {
		t.Errorf("self compare: %+v", same)
	}
	div := Compare(ref, []int{1, 2, 9, 4, 5})
	if div.FirstDivergence != 2 {
		t.Errorf("first divergence = %d, want 2", div.FirstDivergence)
	}
	if math.Abs(div.MatchRate-0.8) > 1e-9 {
		t.Errorf("match rate = %v, want 0.8", div.MatchRate)
	}
}

func TestLogSoftmaxNormalizes(t *testing.T) {
	lp := logSoftmax([]float32{1, 2, 3, 1000})
	sum := 0.0
	for _, v := range lp {
		sum += math.Exp(v)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("softmax sum = %v", sum)
	}
}

func TestTopK(t *testing.T) {
	idx := topK([]float64{0.1, 0.9, 0.5, 0.7}, 2)
	if idx[0] != 1 || idx[1] != 3 {
		t.Errorf("topK = %v", idx)
	}
	if got := topK([]float64{1, 2}, 5); len(got) != 2 {
		t.Errorf("topK overshoot = %v", got)
	}
}

func TestNextTokenKL(t *testing.T) {
	m := newTableLM(8, 4)
	prompts := [][]int{{1}, {2}, {3}}
	if got := NextTokenKL(m, m, prompts); got > 1e-9 {
		t.Errorf("KL(self) = %v, want 0", got)
	}
	other := newTableLM(8, 5)
	if got := NextTokenKL(m, other, prompts); got <= 0 {
		t.Errorf("KL(different) = %v, want > 0", got)
	}
}
