//go:build amd64

package kernels

// packT8x4 interleaves 8 source rows (contiguous, row stride in floats)
// into dst as n4 blocks of 4 panel rows each, using 4x4 SSE register
// transposes: dst[k*8+j] = src[j*in+k] for k < 4*n4. SSE-baseline
// shuffles only, so it runs on every amd64 host regardless of the
// active GEMM variant — packing is a pure copy and produces the same
// bytes as the Go walk.
//
//go:noescape
func packT8x4(dst, src *float32, in, n4 int)

// packPanel8 interleaves nr contiguous source rows (src row-major
// [nr, in]) into one full micro panel.
func packPanel8(dst, src []float32, in int) {
	n4 := in &^ 3
	if n4 > 0 {
		packT8x4(&dst[0], &src[0], in, n4>>2)
	}
	if n4 < in {
		packPanel8Go(dst, src, in, n4)
	}
}
