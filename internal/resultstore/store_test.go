package resultstore

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"fp8quant/internal/evalx"
	"fp8quant/internal/models"
)

func testKey() Key {
	return Key{
		Experiment: "table2-sweep",
		Models:     []string{"resnet50", "bert_base_mrpc"},
		Recipes:    []string{"E4M3 Static", "INT8 Static CV | Dynamic NLP"},
		Seed:       0,
		Schema:     SchemaVersion,
	}
}

func testGrid() [][]evalx.Result {
	return [][]evalx.Result{
		{
			{Model: "resnet50", Domain: models.CV, Recipe: "E4M3 Static",
				BaseAcc: 1, QAcc: 0.9987654321012345, RelLoss: 0.0012345678987655, Pass: true},
			{Model: "resnet50", Domain: models.CV, Recipe: "INT8 Static CV | Dynamic NLP",
				BaseAcc: 1, QAcc: 0.91, RelLoss: 0.09, Pass: false},
		},
		nil, // a model that failed to build yields a nil row
	}
}

func TestRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey()
	if _, ok := s.LoadGrid(k); ok {
		t.Fatal("empty store must miss")
	}
	grid := testGrid()
	if err := s.SaveGrid(k, grid); err != nil {
		t.Fatal(err)
	}
	got, ok := s.LoadGrid(k)
	if !ok {
		t.Fatal("warm store must hit")
	}
	if len(got) != len(grid) {
		t.Fatalf("grid rows = %d, want %d", len(got), len(grid))
	}
	if got[1] != nil {
		t.Errorf("nil row round-tripped to %v", got[1])
	}
	for i, r := range grid[0] {
		if got[0][i] != r {
			t.Errorf("cell [0][%d] = %+v, want exact %+v", i, got[0][i], r)
		}
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 write", st)
	}
}

func TestCorruptFileIsMissAndHealed(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey()
	if err := os.WriteFile(s.Path(k), []byte(`{"schema":1,"grid":[[truncated`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.LoadGrid(k); ok {
		t.Fatal("corrupt file must be a miss")
	}
	// The recompute's SaveGrid atomically replaces the corrupt entry.
	if err := s.SaveGrid(k, testGrid()); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.LoadGrid(k); !ok {
		t.Fatal("healed slot must hit")
	}
}

func TestSchemaMismatchIsMiss(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey()
	// Simulate a grid written by an older code generation: same file
	// location, stale schema stamp in the envelope.
	b, _ := json.Marshal(envelope{Schema: k.Schema - 1, Key: k, Grid: testGrid()})
	if err := os.WriteFile(s.Path(k), b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.LoadGrid(k); ok {
		t.Fatal("stale-schema entry must be a miss")
	}
	// A key mismatch (fingerprint collision / hand-edited file) is a
	// miss too.
	other := k
	other.Models = []string{"resnet50"}
	b, _ = json.Marshal(envelope{Schema: k.Schema, Key: other, Grid: testGrid()})
	if err := os.WriteFile(s.Path(k), b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.LoadGrid(k); ok {
		t.Fatal("key-mismatch entry must be a miss")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := testKey()
	fp := base.Fingerprint()
	mutate := []func(*Key){
		func(k *Key) { k.Experiment = "other" },
		func(k *Key) { k.Models = []string{"bert_base_mrpc", "resnet50"} }, // order matters
		func(k *Key) { k.Recipes = k.Recipes[:1] },
		func(k *Key) { k.Seed = 1 },
		func(k *Key) { k.Schema++ },
	}
	for i, mut := range mutate {
		k := testKey()
		mut(&k)
		if k.Fingerprint() == fp {
			t.Errorf("mutation %d did not change the fingerprint", i)
		}
	}
	if testKey().Fingerprint() != fp {
		t.Error("fingerprint must be deterministic")
	}
}

func TestNilStoreIsInert(t *testing.T) {
	var s *Store
	if _, ok := s.LoadGrid(testKey()); ok {
		t.Error("nil store must miss")
	}
	if err := s.SaveGrid(testKey(), testGrid()); err != nil {
		t.Error("nil store SaveGrid must be a no-op")
	}
	if s.Stats() != (Stats{}) || s.Dir() != "" {
		t.Error("nil store must report empty stats and dir")
	}
}

func TestAtomicWriteLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveGrid(testKey(), testGrid()); err != nil {
		t.Fatal(err)
	}
	tmps, _ := filepath.Glob(filepath.Join(dir, ".grid-*.tmp"))
	if len(tmps) != 0 {
		t.Errorf("temp files left behind: %v", tmps)
	}
}
