package resultstore

// Crash-consistency battery: kill a store write at every faultline
// point between "decided to persist" and "entry visible", then prove
// the three recovery guarantees — the store reads the cell as a miss
// (never a wrong value), a plain rewrite heals it, and Fsck
// reports/repairs whatever the simulated crash left on the floor.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fp8quant/internal/faultline"
)

// armOnce arms a single always-fire rule on one failpoint and disarms
// on cleanup.
func armOnce(t *testing.T, pattern string, kind faultline.Kind, frac float64) {
	t.Helper()
	err := faultline.Arm(faultline.Plan{Rules: []faultline.Rule{
		{Pattern: pattern, Kind: kind, Frac: frac, Max: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultline.Disarm)
}

// tmpFiles lists the ".tmp" leftovers in a store directory.
func tmpFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			out = append(out, e.Name())
		}
	}
	return out
}

func TestCrashAtEverySaveStage(t *testing.T) {
	stages := []struct {
		point     string
		kind      faultline.Kind
		frac      float64
		wantTmp   bool // the simulated crash leaves a temp file behind
		wantFinal bool // a final cell file exists afterwards
	}{
		// Before the temp file exists: nothing on disk at all.
		{"resultstore.save.create", faultline.KindErr, 0, false, false},
		// Torn mid-write: a partial temp file, no final file.
		{"resultstore.save.temp", faultline.KindTorn, 0.5, true, false},
		// ENOSPC during the write: temp left, no final file.
		{"resultstore.save.temp", faultline.KindENOSPC, 0, true, false},
		// Between a complete temp write and the rename: temp left.
		{"resultstore.save.rename", faultline.KindErr, 0, true, false},
		// Silent corruption: the write "succeeds", final file is torn.
		{"resultstore.save.temp", faultline.KindCorrupt, 0.5, false, true},
	}
	for _, st := range stages {
		name := st.point + "/" + string(st.kind)
		t.Run(strings.ReplaceAll(name, ".", "_"), func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			k, r := testKey(), testResult()
			armOnce(t, st.point, st.kind, st.frac)
			saveErr := s.SaveCell(k, r)
			if st.kind == faultline.KindCorrupt {
				if saveErr != nil {
					t.Fatalf("corrupt save must look successful, got %v", saveErr)
				}
			} else if !faultline.Injected(saveErr) {
				t.Fatalf("save error = %v, want injected", saveErr)
			}

			// Guarantee 1: the store never serves a damaged cell.
			if _, ok := s.LoadCell(k); ok {
				t.Fatal("store served a cell whose write crashed")
			}
			if got := tmpFiles(t, dir); (len(got) > 0) != st.wantTmp {
				t.Fatalf("tmp leftovers = %v, want present=%v", got, st.wantTmp)
			}
			if _, err := os.Stat(s.CellPath(k)); (err == nil) != st.wantFinal {
				t.Fatalf("final file present=%v, want %v", err == nil, st.wantFinal)
			}

			// Guarantee 2: Fsck sees exactly the damage the crash left,
			// and repair quarantines it.
			rep, err := s.Fsck(FsckOptions{})
			if err != nil {
				t.Fatal(err)
			}
			wantDamage := 0
			if st.wantTmp {
				wantDamage++
			}
			if st.wantFinal {
				wantDamage++ // the corrupt final cell
			}
			if rep.Damage != wantDamage {
				t.Fatalf("fsck damage = %d (%v), want %d", rep.Damage, rep.Findings, wantDamage)
			}
			if wantDamage > 0 {
				if rep.Healthy() {
					t.Fatal("fsck called a damaged store healthy")
				}
				rep, err = s.Fsck(FsckOptions{Repair: true})
				if err != nil {
					t.Fatal(err)
				}
				if !rep.Healthy() || rep.Repaired != wantDamage {
					t.Fatalf("repair: %+v", rep)
				}
			}

			// Guarantee 3: a plain rewrite heals the cell completely.
			if err := s.SaveCell(k, r); err != nil {
				t.Fatalf("healing rewrite: %v", err)
			}
			got, ok := s.LoadCell(k)
			if !ok {
				t.Fatal("healed cell still missing")
			}
			if got.QAcc != r.QAcc {
				t.Fatalf("healed cell differs: %v != %v", got.QAcc, r.QAcc)
			}
			rep, err = s.Fsck(FsckOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Healthy() || len(tmpFiles(t, dir)) != 0 {
				t.Fatalf("store not clean after heal: %+v, tmp=%v", rep, tmpFiles(t, dir))
			}
		})
	}
}

func TestCrashDuringManifestAndSidecarWrites(t *testing.T) {
	for _, st := range []struct {
		point string
		write func(s *Store) error
	}{
		{"resultstore.manifest.rename", func(s *Store) error { return s.SaveManifest(testManifest()) }},
		{"resultstore.sidecar.temp", func(s *Store) error { return s.SaveSidecar("costmodel.json", []byte(`{}`)) }},
	} {
		t.Run(strings.ReplaceAll(st.point, ".", "_"), func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			kind := faultline.KindErr
			var frac float64
			if strings.HasSuffix(st.point, ".temp") {
				kind, frac = faultline.KindTorn, 0.5
			}
			armOnce(t, st.point, kind, frac)
			if err := st.write(s); !faultline.Injected(err) {
				t.Fatalf("write error = %v, want injected", err)
			}
			if len(tmpFiles(t, dir)) == 0 {
				t.Fatal("crash left no tmp evidence")
			}
			// Retry heals; fsck repair clears the leftover.
			if err := st.write(s); err != nil {
				t.Fatalf("healing rewrite: %v", err)
			}
			rep, err := s.Fsck(FsckOptions{Repair: true})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Healthy() {
				t.Fatalf("post-heal fsck: %+v", rep)
			}
			if len(tmpFiles(t, dir)) != 0 {
				t.Fatal("repair left tmp files behind")
			}
		})
	}
}

// TestInjectedLoadFaultIsAMiss proves a read-side fault can only cost
// a recompute, never return wrong data.
func TestInjectedLoadFaultIsAMiss(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k, r := testKey(), testResult()
	if err := s.SaveCell(k, r); err != nil {
		t.Fatal(err)
	}
	armOnce(t, "resultstore.load.read", faultline.KindErr, 0)
	if _, ok := s.LoadCell(k); ok {
		t.Fatal("injected read fault did not miss")
	}
	// The rule's budget (Max:1) is spent; the next read succeeds.
	if got, ok := s.LoadCell(k); !ok || got.QAcc != r.QAcc {
		t.Fatalf("store did not recover after fault: ok=%v", ok)
	}
}

// TestIngestFaultsAreRetryable proves the ingest path distinguishes
// injected I/O faults (retryable) from true conflicts (permanent).
func TestIngestFaultsAreRetryable(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k, r := testKey(), testResult()
	payload, err := EncodeCell(k, r)
	if err != nil {
		t.Fatal(err)
	}
	fp := k.Fingerprint()
	armOnce(t, "resultstore.ingest.begin", faultline.KindErr, 0)
	if _, err := s.IngestCell(fp, payload); !faultline.Injected(err) {
		t.Fatalf("ingest error = %v, want injected", err)
	}
	if _, err := os.Stat(filepath.Join(s.Dir(), "c-"+fp+".json")); !os.IsNotExist(err) {
		t.Fatal("failed ingest left a cell behind")
	}
	// Retry (budget spent) stores it.
	status, err := s.IngestCell(fp, payload)
	if err != nil || status != IngestStored {
		t.Fatalf("retry = %v, %v", status, err)
	}
	// A true conflict is not an injected fault and wraps ErrCellConflict.
	r2 := r
	r2.QAcc = 0.5
	payload2, err := EncodeCell(k, r2)
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.IngestCell(fp, payload2)
	if !IsCellConflict(err) || faultline.Injected(err) {
		t.Fatalf("conflict error = %v", err)
	}
}
