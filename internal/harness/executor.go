// Generic grid executor: the single place that owns cell fan-out,
// in-process memoization and persistence for every experiment. An
// experiment only declares its schedule (Spec), its pure per-cell
// computation (RunCell) and its presentation (Render); the executor
// fans the selected cells out over the bounded sweep worker pool,
// consults the memo and the result store per cell, and persists fresh
// results — so an interrupted sweep resumes from its completed cells
// on the next invocation, for every grid experiment by construction.

package harness

import (
	"fmt"
	"os"
	"reflect"
	"sort"
	"sync/atomic"

	"fp8quant/internal/evalx"
	"fp8quant/internal/resultstore"
)

// ErrNotSelected marks the cells of a filtered run that were excluded
// by the filter; renderers skip them like any other errored cell.
const ErrNotSelected = "cell not selected by the filter"

// Run executes the experiment end to end: every grid cell through the
// cache layers on the sweep worker pool, then Render.
func Run(e Experiment) *Report {
	g, _, err := RunGrid(e, nil)
	if err != nil {
		// Unreachable with a nil filter; keep the report well-formed.
		return &Report{Text: "error: " + err.Error(), Values: map[string]float64{}}
	}
	return e.Render(g)
}

// RunGrid evaluates the cells of e selected by the filter (nil or
// empty = all) and returns the grid plus the selected row-major
// indices. Unselected cells stay zero-valued in the grid. A non-empty
// filter that matches no cell is an error.
func RunGrid(e Experiment, f Filter) (*Grid, []int, error) {
	spec := e.Spec()
	n := spec.NumCells()
	sel := spec.Select(f)
	if len(f) > 0 && len(sel) == 0 {
		// Covers axis-less (scalar) experiments too: a filter can never
		// apply to them, and succeeding silently would hide typos.
		return nil, nil, fmt.Errorf("filter %q matches none of %s's %d cells", f.String(), e.ID(), n)
	}
	g := &Grid{Spec: spec, Results: make([]evalx.Result, n)}
	if len(sel) < n {
		// Unselected cells must not masquerade as successfully
		// evaluated zero results: a renderer handed a partial grid
		// would fold them into its aggregates. The Err sentinel makes
		// every renderer skip them by the existing convention.
		for i := range g.Results {
			g.Results[i] = evalx.Result{Err: ErrNotSelected}
		}
	}
	if len(sel) == 0 {
		return g, sel, nil
	}
	var done atomic.Int64
	reportProgress(e.ID(), 0, len(sel))
	forEachCell(len(sel), func(k int) {
		c := spec.CellAt(sel[k])
		g.Results[sel[k]] = cachedCell(spec.CellKey(c), func() evalx.Result {
			return runCellSafe(e, spec, c)
		})
		reportProgress(e.ID(), int(done.Add(1)), len(sel))
	})
	// A full run knows the complete schedule; record it once so tooling
	// can reason about store coverage without re-deriving the spec.
	if s := Store(); s != nil && len(sel) == n {
		saveManifest(s, spec)
	}
	return g, sel, nil
}

// runCellSafe converts a RunCell panic into an Err-marked result.
// Cells run on pool worker goroutines, where an escaped panic would
// kill the whole process — a caller's deferred recover only covers its
// own goroutine — so this is what makes "one failing cell/experiment
// cannot abort the batch" hold at any worker count. Err results are
// never persisted, so a code fix recomputes the cell.
func runCellSafe(e Experiment, spec GridSpec, c Cell) (r evalx.Result) {
	defer func() {
		if p := recover(); p != nil {
			r = evalx.Result{Err: fmt.Sprintf("panic in cell %s: %v", spec.KeyString(c), p)}
		}
	}()
	return e.RunCell(c)
}

// SubGridReport renders the generic report for a filtered run: one row
// per selected cell, with whatever the cell carries (accuracy quartet
// and/or named metrics).
func SubGridReport(e Experiment, g *Grid, sel []int) *Report {
	tb := newTable("cell", "qacc", "rel loss", "pass", "metrics")
	vals := map[string]float64{}
	for _, i := range sel {
		c := g.Spec.CellAt(i)
		r := g.Results[i]
		key := g.Spec.KeyString(c)
		if r.Err != "" {
			tb.add(key, "-", "-", "-", "error: "+r.Err)
			continue
		}
		tb.add(key, fmt.Sprintf("%.4f", r.QAcc), fmt.Sprintf("%.2f%%", r.RelLoss*100),
			fmt.Sprintf("%v", r.Pass), formatMetrics(r.Metrics))
		vals["qacc_"+key] = r.QAcc
		vals["relloss_"+key] = r.RelLoss
		for name, v := range r.Metrics {
			vals[name+"_"+key] = v
		}
	}
	text := fmt.Sprintf("%s — %s\nsub-grid: %d of %d cells\n\n%s",
		e.ID(), e.Title(), len(sel), g.Spec.NumCells(), tb.String())
	return &Report{Text: text, Values: vals}
}

// formatMetrics renders a metrics map as "k=v k=v" in sorted key order.
func formatMetrics(m map[string]float64) string {
	if len(m) == 0 {
		return ""
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b []byte
	for i, k := range keys {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, fmt.Sprintf("%s=%.4g", k, m[k])...)
	}
	return string(b)
}

// saveManifest records the grid's full schedule, rewriting a stored
// manifest that no longer matches the spec — the grid's axes can
// legitimately change without a schema bump (a model added to the
// zoo), and a stale manifest would misreport store coverage forever.
func saveManifest(s *resultstore.Store, spec GridSpec) {
	m := resultstore.Manifest{Grid: spec.ID, Seed: spec.Seed, Schema: resultstore.SchemaVersion}
	for _, a := range spec.Axes {
		m.Axes = append(m.Axes, resultstore.ManifestAxis{Name: a.Name, Values: a.Values})
	}
	n := spec.NumCells()
	m.Cells = make([]string, n)
	for i := 0; i < n; i++ {
		m.Cells[i] = spec.CellKey(spec.CellAt(i)).Fingerprint()
	}
	if old, ok := s.LoadManifest(spec.ID, spec.Seed); ok && reflect.DeepEqual(old, m) {
		return
	}
	if err := s.SaveManifest(m); err != nil {
		fmt.Fprintf(os.Stderr, "warning: manifest write failed: %v\n", err)
	}
}

// progressFn receives (experiment id, cells done, cells selected)
// updates while a grid executes; installed by fp8bench for its
// progress line. Called from worker goroutines — must be safe for
// concurrent use.
var progressFn atomic.Pointer[func(id string, done, total int)]

// SetProgress installs (or, with nil, removes) the cell-progress
// callback.
func SetProgress(fn func(id string, done, total int)) {
	if fn == nil {
		progressFn.Store(nil)
		return
	}
	progressFn.Store(&fn)
}

func reportProgress(id string, done, total int) {
	if p := progressFn.Load(); p != nil {
		(*p)(id, done, total)
	}
}
