package evalx

import (
	"encoding/json"
	"math"
	"testing"

	"fp8quant/internal/models"
	"fp8quant/internal/quant"
)

func TestComputeReferenceShapes(t *testing.T) {
	net, err := models.Build("distilbert_mrpc")
	if err != nil {
		t.Fatal(err)
	}
	ref := ComputeReference(net)
	wantSamples := (EvalEnd - EvalStart) * 16 // nlp batch size
	if len(ref.Labels) != wantSamples {
		t.Fatalf("labels = %d, want %d", len(ref.Labels), wantSamples)
	}
	if len(ref.Keep) != wantSamples {
		t.Fatalf("keep mask = %d, want %d", len(ref.Keep), wantSamples)
	}
	kept := 0
	for _, k := range ref.Keep {
		if k {
			kept++
		}
	}
	frac := float64(kept) / float64(wantSamples)
	want := 1 - MarginKeepPct/100
	if math.Abs(frac-want) > 0.1 {
		t.Errorf("kept fraction %.2f, want ~%.2f", frac, want)
	}
}

func TestFP32SelfAgreementIsPerfect(t *testing.T) {
	net, _ := models.Build("distilbert_mrpc")
	ref := ComputeReference(net)
	if acc := AccuracyAgainst(net, ref); acc != 1 {
		t.Fatalf("FP32 self-agreement = %v, want 1", acc)
	}
}

func TestEvaluateRestoresModel(t *testing.T) {
	net, _ := models.Build("distilbert_mrpc")
	before := net.Run(net.Data.Batch(0)).Clone()
	Evaluate(net, quant.StandardFP8(quant.E4M3), true)
	after := net.Run(net.Data.Batch(0))
	for i := range after.Data {
		if after.Data[i] != before.Data[i] {
			t.Fatal("Evaluate must restore the model")
		}
	}
}

func TestEvaluateRecipesSharesReference(t *testing.T) {
	net, _ := models.Build("distilbert_mrpc")
	rs := []quant.Recipe{
		quant.StandardFP8(quant.E4M3),
		quant.StandardFP8(quant.E3M4),
	}
	res := EvaluateRecipes(net, rs, true)
	if len(res) != 2 {
		t.Fatalf("results = %d", len(res))
	}
	for _, r := range res {
		if r.QAcc <= 0 || r.QAcc > 1 {
			t.Errorf("%s acc out of range: %v", r.Recipe, r.QAcc)
		}
		if r.Model != "distilbert_mrpc" {
			t.Errorf("model name %q", r.Model)
		}
	}
}

func TestPaperRecipeSpecialization(t *testing.T) {
	nlp, _ := models.Build("distilbert_mrpc")
	r := PaperRecipe(quant.StandardFP8(quant.E4M3), nlp)
	if !r.SmoothQuant {
		t.Error("NLP static recipe must enable SmoothQuant")
	}
	rd := PaperRecipe(quant.DynamicFP8(quant.E4M3), nlp)
	if rd.SmoothQuant {
		t.Error("dynamic recipe must not enable SmoothQuant")
	}
	cv, _ := models.Build("cifar_resnet20")
	rc := PaperRecipe(quant.StandardFP8(quant.E3M4), cv)
	if !rc.BNCalib {
		t.Error("BN CV recipe must enable BN calibration")
	}
	if rc.SmoothQuant {
		t.Error("CV recipe must not enable SmoothQuant")
	}
}

func TestAggregatePassRates(t *testing.T) {
	results := []Result{
		{Domain: models.CV, Pass: true},
		{Domain: models.CV, Pass: false},
		{Domain: models.NLP, Pass: true},
		{Domain: models.Audio, Pass: true},
		{Domain: models.RecSys, Pass: false},
	}
	pr := AggregatePassRates(results)
	if pr.CV != 50 {
		t.Errorf("CV = %v", pr.CV)
	}
	if math.Abs(pr.NLP-200.0/3) > 1e-9 {
		t.Errorf("NLP = %v", pr.NLP)
	}
	if pr.All != 60 {
		t.Errorf("All = %v", pr.All)
	}
}

func TestComputeLossStats(t *testing.T) {
	s := ComputeLossStats([]float64{1, 2, 3, 4})
	if s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.N != 4 {
		t.Errorf("stats = %+v", s)
	}
	if math.Abs(s.Median-2.5) > 1e-6 {
		t.Errorf("median = %v", s.Median)
	}
	if z := ComputeLossStats(nil); z.N != 0 {
		t.Errorf("empty stats = %+v", z)
	}
}

func TestEvaluateNamesParallel(t *testing.T) {
	names := []string{"distilbert_mrpc", "tinybert_mrpc", "cifar_resnet20"}
	res := EvaluateNames(names, quant.StandardFP8(quant.E3M4), true)
	if len(res) != 3 {
		t.Fatalf("results = %d", len(res))
	}
	for i, r := range res {
		if r.Model != names[i] {
			t.Errorf("order not preserved: %v", r.Model)
		}
	}
}

// TestFormatOrderingOnOutlierNLP is the core Table 2 shape invariant on
// one representative outlier-heavy NLP model: FP8 static beats the
// unsmoothed dynamic INT8 baseline.
func TestFormatOrderingOnOutlierNLP(t *testing.T) {
	net, _ := models.Build("bloom_560m")
	res := EvaluateRecipes(net, []quant.Recipe{
		quant.StandardFP8(quant.E4M3),
		quant.StandardINT8(true),
	}, true)
	if res[0].QAcc <= res[1].QAcc {
		t.Errorf("E4M3 static (%.4f) should beat dynamic INT8 (%.4f) on outlier NLP",
			res[0].QAcc, res[1].QAcc)
	}
}

// TestResultJSONByteDeterministic pins the serialization contract the
// distributed-sweep store merge relies on: two shards computing the
// same cell must emit byte-identical JSON, or Store.Merge would flag
// every shared cell as a conflict. Map-valued Metrics are the risky
// part — encoding/json must sort the keys regardless of insertion
// order.
func TestResultJSONByteDeterministic(t *testing.T) {
	values := map[string]float64{"fid": 12.5, "mse": 1e-6, "divergence": 0.25}
	build := func(order []string) Result {
		m := map[string]float64{}
		for _, k := range order {
			m[k] = values[k]
		}
		return Result{
			Model: "bloom_560m", Domain: models.NLP, Recipe: "E4M3 Static",
			BaseAcc: 1, QAcc: 0.993, RelLoss: 0.007, Pass: true, Metrics: m,
		}
	}
	a, err := json.Marshal(build([]string{"fid", "mse", "divergence"}))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(build([]string{"divergence", "fid", "mse"}))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("Result encoding depends on Metrics insertion order:\n%s\n%s", a, b)
	}
	// And the round trip is exact, including the map.
	var back Result
	if err := json.Unmarshal(a, &back); err != nil {
		t.Fatal(err)
	}
	c, _ := json.Marshal(back)
	if string(c) != string(a) {
		t.Errorf("Result does not JSON round-trip byte-exactly:\n%s\n%s", a, c)
	}
}
