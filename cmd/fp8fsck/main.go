// Command fp8fsck verifies and repairs fp8bench result store
// directories, the way fsck verifies a filesystem: every cell,
// manifest, sidecar and leftover temp file is classified, damage is
// reported, and -repair quarantines damaged entries (into the store's
// quarantine/ subdirectory) so the next sweep recomputes exactly the
// cells that were lost.
//
// Usage:
//
//	fp8fsck [-repair] [-tmp-age 10m] dir [dir...]
//
// Exit status: 0 when every store is healthy (no unrepaired damage —
// informational findings such as incomplete grids or orphan cells do
// not fail the check), 1 when unrepaired damage remains, 2 on usage or
// I/O errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"fp8quant/internal/resultstore"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("fp8fsck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	repair := fs.Bool("repair", false, "quarantine damaged entries so the next sweep recomputes them")
	tmpAge := fs.Duration("tmp-age", 0, "ignore temp files younger than this (0 flags every temp file; use a positive age when a sweep may be live)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: fp8fsck [-repair] [-tmp-age duration] dir [dir...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	dirs := fs.Args()
	if len(dirs) == 0 {
		fs.Usage()
		return 2
	}
	unhealthy := false
	for _, dir := range dirs {
		info, err := os.Stat(dir)
		if err != nil || !info.IsDir() {
			fmt.Fprintf(stderr, "fp8fsck: %s: not a directory\n", dir)
			return 2
		}
		s, err := resultstore.Open(dir)
		if err != nil {
			fmt.Fprintf(stderr, "fp8fsck: %v\n", err)
			return 2
		}
		rep, err := s.Fsck(resultstore.FsckOptions{Repair: *repair, TmpAge: *tmpAge})
		if err != nil {
			fmt.Fprintf(stderr, "fp8fsck: %v\n", err)
			return 2
		}
		for _, f := range rep.Findings {
			mark := "note"
			switch {
			case f.Repaired:
				mark = "repaired"
			case f.Damage:
				mark = "DAMAGE"
			}
			fmt.Fprintf(stdout, "fp8fsck: %s/%s: %s [%s]: %s\n", dir, f.File, f.Kind, mark, f.Detail)
		}
		fmt.Fprintf(stdout, "fp8fsck: %s: %d cells, %d manifests, %d sidecars scanned; %d damaged, %d repaired\n",
			dir, rep.Cells, rep.Manifests, rep.Sidecars, rep.Damage, rep.Repaired)
		if !rep.Healthy() {
			unhealthy = true
		}
	}
	if unhealthy {
		return 1
	}
	return 0
}
