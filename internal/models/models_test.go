package models

import (
	"testing"

	"fp8quant/internal/nn"
)

func TestRegistryCensus(t *testing.T) {
	if got := len(Names()); got != 75 {
		t.Fatalf("registry has %d models, want 75", got)
	}
	wantByDomain := map[Domain]int{CV: 34, NLP: 38, Audio: 2, RecSys: 1}
	for d, want := range wantByDomain {
		if got := len(NamesByDomain(d)); got != want {
			t.Errorf("%s has %d models, want %d", d, got, want)
		}
	}
}

func TestBuildUnknown(t *testing.T) {
	if _, err := Build("nonexistent_model"); err == nil {
		t.Error("expected error for unknown model")
	}
}

func TestInfoMetadata(t *testing.T) {
	for _, name := range Names() {
		info, ok := InfoFor(name)
		if !ok {
			t.Fatalf("no info for %s", name)
		}
		if info.Name != name {
			t.Errorf("info name mismatch: %s vs %s", info.Name, name)
		}
		if info.SizeMB <= 0 {
			t.Errorf("%s: non-positive size", name)
		}
		if info.Task == "" {
			t.Errorf("%s: empty task", name)
		}
	}
}

func TestSizeClasses(t *testing.T) {
	cases := []struct {
		mb   float64
		want string
	}{{10, "tiny"}, {32, "tiny"}, {100, "small"}, {384, "small"},
		{400, "medium"}, {512, "medium"}, {1000, "large"}}
	for _, c := range cases {
		if got := (Info{SizeMB: c.mb}).SizeClass(); got != c.want {
			t.Errorf("SizeClass(%v) = %s, want %s", c.mb, got, c.want)
		}
	}
}

// TestBuildAndForwardRepresentatives builds one model per family and
// checks the forward pass produces finite outputs of the right shape.
func TestBuildAndForwardRepresentatives(t *testing.T) {
	reps := []string{
		"resnet18", "vgg11", "densenet121", "mobilenet_v2", "shufflenet_v2",
		"efficientnet_b0", "googlenet", "squeezenet", "yolov3", "cifar_resnet20",
		"vit_small", "swin_tiny", "unet_carvana", "stable_diffusion_unet",
		"bert_base_mrpc", "distilbert_sst2", "longformer_mrpc", "funnel_mrpc",
		"gpt2_wikitext", "bloom_560m", "llama_7b", "marianmt_enro",
		"pegasus_samsum", "wav2vec2_librispeech", "dlrm_criteo",
	}
	for _, name := range reps {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			net, err := Build(name)
			if err != nil {
				t.Fatal(err)
			}
			out := net.Run(net.Data.Batch(0))
			if out.Len() == 0 {
				t.Fatal("empty output")
			}
			if out.Shape[out.Rank()-1] != net.Classes {
				t.Errorf("last dim %d != classes %d", out.Shape[out.Rank()-1], net.Classes)
			}
			am := out.AbsMax()
			if am == 0 {
				t.Error("all-zero output")
			}
			if am > 1e4 {
				t.Errorf("output magnitude %v suggests a conditioning bug", am)
			}
		})
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, _ := Build("bert_base_mrpc")
	b, _ := Build("bert_base_mrpc")
	oa := a.Run(a.Data.Batch(0))
	ob := b.Run(b.Data.Batch(0))
	for i := range oa.Data {
		if oa.Data[i] != ob.Data[i] {
			t.Fatal("Build must be deterministic")
		}
	}
}

func TestCNNFlagConsistency(t *testing.T) {
	// Every conv-backbone CV model should set IsCNN; transformers not.
	for _, name := range []string{"resnet18", "vgg11", "yolov3"} {
		info, _ := InfoFor(name)
		if !info.IsCNN {
			t.Errorf("%s should be IsCNN", name)
		}
	}
	for _, name := range []string{"vit_small", "bert_base_mrpc", "bloom_560m"} {
		info, _ := InfoFor(name)
		if info.IsCNN {
			t.Errorf("%s should not be IsCNN", name)
		}
	}
}

func TestWarmBatchNormsConditions(t *testing.T) {
	net, _ := Build("resnet18")
	// After build-time warming, intermediate magnitudes must be sane.
	out := net.Run(net.Data.Batch(3))
	if out.AbsMax() > 100 {
		t.Errorf("warmed CNN output absmax %v too large", out.AbsMax())
	}
	// BN stats should be near the true data statistics: re-warming
	// must barely change the output.
	before := out.Clone()
	WarmBatchNorms(net, 4)
	after := net.Run(net.Data.Batch(3))
	for i := range after.Data {
		d := float64(after.Data[i] - before.Data[i])
		if d > 0.5 || d < -0.5 {
			t.Fatalf("re-warming moved outputs by %v: warming had not converged", d)
		}
	}
}

func TestNLPModelsHaveOutlierChannels(t *testing.T) {
	// Outlier-ratio models must actually produce high-kurtosis
	// activations inside the network (check an encoder LN gamma).
	net, _ := Build("bert_base_mrpc")
	maxGamma := 0.0
	nn.Walk(net.Root(), func(_ string, m nn.Module) {
		if ln, ok := m.(*nn.LayerNorm); ok {
			for _, g := range ln.Gamma {
				a := float64(g)
				if a < 0 {
					a = -a
				}
				if a > maxGamma {
					maxGamma = a
				}
			}
		}
	})
	if maxGamma < 10 {
		t.Errorf("max |gamma| = %v; outlier spikes missing", maxGamma)
	}
}

func TestGenLM(t *testing.T) {
	lm := NewGenLM(1)
	if lm.Vocab() != nlpVocab {
		t.Fatalf("vocab %d", lm.Vocab())
	}
	lg := lm.NextLogits([][]int{{1, 2, 3}, {4, 5, 6}})
	if lg.Shape[0] != 2 || lg.Shape[1] != nlpVocab {
		t.Fatalf("logits shape %v", lg.Shape)
	}
	// Longer context changes the prediction (causal attention works).
	a := lm.NextLogits([][]int{{1, 2, 3}})
	b := lm.NextLogits([][]int{{9, 2, 3}})
	same := true
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("context should influence next-token logits")
	}
}

func TestModelWalkFindsQuantizableOps(t *testing.T) {
	cases := map[string][]string{
		"bert_base_mrpc":       {"Linear", "LayerNorm", "Embedding", "BatchMatMul", "Add"},
		"resnet18":             {"Conv2d", "BatchNorm", "Linear", "Add"},
		"dlrm_criteo":          {"Linear", "EmbeddingBag"},
		"wav2vec2_librispeech": {"Conv1d", "Linear", "LayerNorm"},
	}
	for name, kinds := range cases {
		net, _ := Build(name)
		found := map[string]bool{}
		nn.Walk(net.Root(), func(_ string, m nn.Module) {
			found[m.Kind()] = true
		})
		for _, k := range kinds {
			if !found[k] {
				t.Errorf("%s: operator %s not found in walk", name, k)
			}
		}
	}
}
