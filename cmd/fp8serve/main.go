// Command fp8serve is a saturation demo for compiled execution plans:
// it serves batched inference over a quantized zoo model with a
// configurable worker pool, each worker owning one plan (a pair of
// preallocated scratch arenas), and reports p50/p99 service latency
// plus throughput per worker count.
//
//	fp8serve -model cifar_resnet20 -recipe e4m3 -workers 1,4
//	fp8serve -model vit_small -requests 512 -batch 8
//	fp8serve -model squeezenet -check=false   # skip the bit-identity audit
//
// Requests are single samples drawn from the model's deterministic
// eval stream; workers coalesce them into fixed-size batches (the
// batch dimension folds into the GEMM M dimension) and run the planned
// forward with zero steady-state heap allocations. With -check (the
// default) every served row is compared bit-for-bit against an
// unplanned single-sample forward of the same quantized network — the
// demo doubles as an end-to-end proof that plans, arenas and batching
// leave the math untouched. Exits nonzero on any mismatch or on zero
// throughput.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fp8quant/internal/data"
	"fp8quant/internal/evalx"
	"fp8quant/internal/models"
	"fp8quant/internal/nn"
	"fp8quant/internal/quant"
	"fp8quant/internal/tensor"
)

func main() {
	model := flag.String("model", "cifar_resnet20", "zoo model to serve (must be plannable)")
	recipe := flag.String("recipe", "e4m3", "quantization recipe: e5m2|e4m3|e3m4|int8|fp32")
	workers := flag.String("workers", "1,4", "comma-separated worker counts to sweep")
	requests := flag.Int("requests", 256, "requests to serve per worker count")
	batch := flag.Int("batch", 4, "requests coalesced per planned forward")
	warmup := flag.Int("warmup", 8, "warmup forwards per worker (excluded from stats)")
	check := flag.Bool("check", true, "bit-compare every served row against an unplanned forward")
	flag.Parse()

	if err := run(*model, *recipe, *workers, *requests, *batch, *warmup, *check); err != nil {
		fmt.Fprintln(os.Stderr, "fp8serve:", err)
		os.Exit(1)
	}
}

func run(model, recipeName, workerList string, requests, batch, warmup int, check bool) error {
	if batch < 1 || requests < 1 {
		return fmt.Errorf("batch and requests must be positive")
	}
	counts, err := parseWorkers(workerList)
	if err != nil {
		return err
	}

	ref, err := buildServing(model, recipeName)
	if err != nil {
		return err
	}
	pool := requestPool(ref)
	if len(pool) == 0 {
		return fmt.Errorf("model %s yields no dense requests", model)
	}
	var refOut []*tensor.Tensor
	if check {
		for _, req := range pool {
			refOut = append(refOut, ref.Run(data.Sample{X: req}).Clone())
		}
	}

	fmt.Printf("fp8serve: model=%s recipe=%s batch=%d requests=%d check=%v\n",
		model, recipeName, batch, requests, check)
	fmt.Printf("%8s  %9s  %9s  %9s  %13s\n", "workers", "p50(ms)", "p99(ms)", "req/s", "req/s/worker")

	audited := 0
	for _, w := range counts {
		res, err := serve(model, recipeName, pool, refOut, w, requests, batch, warmup)
		if err != nil {
			return err
		}
		fmt.Printf("%8d  %9.3f  %9.3f  %9.0f  %13.0f\n",
			w, res.p50.Seconds()*1e3, res.p99.Seconds()*1e3, res.throughput, res.throughput/float64(w))
		if res.throughput <= 0 {
			return fmt.Errorf("%d workers: zero throughput", w)
		}
		audited += res.rows
	}
	if check {
		// serve() already failed on any mismatch; this line makes the
		// audit visible in the smoke logs.
		fmt.Printf("bit-identity audit: %d/%d served rows identical to unplanned forwards\n", audited, audited)
	}
	return nil
}

// buildServing builds and quantizes one serving replica of the model.
// Quantization is deterministic, so every replica holds identical
// weights and produces identical bits.
func buildServing(model, recipeName string) (*models.Network, error) {
	net, err := models.Build(model)
	if err != nil {
		return nil, err
	}
	if !net.Plannable() {
		return nil, fmt.Errorf("model %s is not plannable (token/bag-driven forward)", model)
	}
	base, err := parseRecipe(recipeName)
	if err != nil {
		return nil, err
	}
	if base != nil {
		r := evalx.PaperRecipe(*base, net)
		quant.Quantize(net, net.Data, r) // handle intentionally kept: serve quantized
	}
	return net, nil
}

func parseRecipe(name string) (*quant.Recipe, error) {
	var r quant.Recipe
	switch strings.ToLower(name) {
	case "fp32", "none":
		return nil, nil
	case "e5m2":
		r = quant.StandardFP8(quant.E5M2)
	case "e4m3":
		r = quant.StandardFP8(quant.E4M3)
	case "e3m4":
		r = quant.StandardFP8(quant.E3M4)
	case "int8":
		r = quant.StandardINT8(false)
	default:
		return nil, fmt.Errorf("unknown recipe %q (want e5m2|e4m3|e3m4|int8|fp32)", name)
	}
	return &r, nil
}

func parseWorkers(list string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(list, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad worker count %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// requestPool slices the model's eval batches into single-sample
// request tensors (row views — StackBatch copies when coalescing).
func requestPool(net *models.Network) []*tensor.Tensor {
	var pool []*tensor.Tensor
	batches := net.Data.Batches()
	if batches > 4 {
		batches = 4
	}
	for b := 0; b < batches; b++ {
		s := net.Data.Batch(b)
		if s.X == nil {
			return nil
		}
		for i := 0; i < s.X.Shape[0]; i++ {
			pool = append(pool, s.X.Slice0(i, i+1))
		}
	}
	return pool
}

type serveResult struct {
	p50, p99   time.Duration
	throughput float64 // requests per second over the measured window
	rows       int     // served rows bit-compared against the reference
}

// serve runs one worker-count configuration: nWorkers replicas, each
// with its own plan, pulling request batches off a shared counter.
func serve(model, recipeName string, pool []*tensor.Tensor, refOut []*tensor.Tensor,
	nWorkers, requests, batch, warmup int) (serveResult, error) {

	nBatches := (requests + batch - 1) / batch
	var next atomic.Int64
	var mismatches atomic.Int64
	lats := make([][]time.Duration, nWorkers)
	nets := make([]*models.Network, nWorkers)
	plans := make([]*nn.Plan, nWorkers)

	// Replica setup (excluded from the measured window): fresh build,
	// identical quantization, plan compile + warmup to steady state.
	for w := 0; w < nWorkers; w++ {
		net, err := buildServing(model, recipeName)
		if err != nil {
			return serveResult{}, err
		}
		shape := append([]int{batch}, pool[0].Shape[1:]...)
		plan := nn.Compile(net.Root(), shape...)
		net.InstallPlan(plan)
		wu := data.Sample{X: tensor.New(shape...)}
		for i := 0; i < warmup; i++ {
			net.Run(wu)
		}
		nets[w], plans[w] = net, plan
	}

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			net := nets[w]
			in := make([]*tensor.Tensor, batch)
			for {
				bi := int(next.Add(1)) - 1
				if bi >= nBatches {
					return
				}
				for j := 0; j < batch; j++ {
					in[j] = pool[(bi*batch+j)%len(pool)]
				}
				t0 := time.Now()
				out := net.Run(data.Sample{X: tensor.StackBatch(in)})
				lat := time.Since(t0)
				lats[w] = append(lats[w], lat)
				if refOut != nil {
					for j := 0; j < batch; j++ {
						if !bitEqual(out.Slice0(j, j+1), refOut[(bi*batch+j)%len(refOut)]) {
							mismatches.Add(1)
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	for w := range nets {
		nets[w].InstallPlan(nil)
		plans[w].Bind(nil)
	}
	if n := mismatches.Load(); n > 0 {
		return serveResult{}, fmt.Errorf("%d workers: %d served rows differ from the unplanned reference", nWorkers, n)
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res := serveResult{
		p50:        percentileDur(all, 50),
		p99:        percentileDur(all, 99),
		throughput: float64(nBatches*batch) / elapsed.Seconds(),
	}
	if refOut != nil {
		res.rows = nBatches * batch
	}
	return res, nil
}

// percentileDur picks the nearest-rank percentile of sorted latencies.
func percentileDur(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

func bitEqual(a, b *tensor.Tensor) bool {
	if len(a.Data) != len(b.Data) {
		return false
	}
	for i := range a.Data {
		if math.Float32bits(a.Data[i]) != math.Float32bits(b.Data[i]) {
			return false
		}
	}
	return true
}
