package models

import (
	"fmt"

	"fp8quant/internal/data"
	"fp8quant/internal/nn"
	"fp8quant/internal/tensor"
)

// vitNet is a Vision Transformer: convolutional patch embedding →
// encoder layers over patch tokens → mean pool → classifier. ViTs are
// CV models without BatchNorm (LayerNorm instead) — one of the
// families the paper calls out as hard for INT8 (Figure 4 caption).
type vitNet struct {
	Patch  *nn.Conv2d
	Pos    *nn.PositionalEmbedding
	Layers []*nn.TransformerEncoderLayer
	Head   *nn.Linear
	dim    int
}

// Kind implements nn.Module.
func (v *vitNet) Kind() string { return "ViT" }

// Visit implements nn.Container.
func (v *vitNet) Visit(path string, vis nn.Visitor) {
	nn.WalkChild(path+"/patch", v.Patch, vis)
	for i, l := range v.Layers {
		nn.WalkChild(fmt.Sprintf("%s/layer%d", path, i), l, vis)
	}
	nn.WalkChild(path+"/head", v.Head, vis)
}

// Forward classifies an image batch [N,C,H,W].
func (v *vitNet) Forward(x *tensor.Tensor) *tensor.Tensor {
	return v.ForwardArena(nil, x)
}

// ForwardArena implements nn.ArenaForwarder.
func (v *vitNet) ForwardArena(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	p := v.Patch.ForwardArena(a, x) // [N, D, h, w]
	n, d, h, w := p.Shape[0], p.Shape[1], p.Shape[2], p.Shape[3]
	// To token sequence [N, h*w, D].
	toks := a.New(n, h*w, d)
	for ni := 0; ni < n; ni++ {
		for di := 0; di < d; di++ {
			plane := p.Data[(ni*d+di)*h*w : (ni*d+di+1)*h*w]
			for t, val := range plane {
				toks.Data[(ni*h*w+t)*d+di] = val
			}
		}
	}
	toks = v.Pos.ForwardArena(a, toks)
	for _, l := range v.Layers {
		toks = l.ForwardArena(a, toks)
	}
	return v.Head.ForwardArena(a, meanPoolSeqArena(a, toks))
}

func buildViT(info Info, seed uint64, dim, heads, ff, layers, classes int, window int) *Network {
	r := tensor.NewRNG(seed)
	patch := nn.NewConv2d(cvChans, dim, 4, 4, 0, 1)
	initConv(patch, r)
	net := &vitNet{
		Patch: patch,
		Pos:   nn.NewPositionalEmbedding(16, dim),
		Head:  nn.NewLinear(dim, classes),
		dim:   dim,
	}
	net.Pos.W.FillNormal(r, 0, 0.1)
	for i := 0; i < layers; i++ {
		l := nn.NewTransformerEncoderLayer(dim, heads, ff)
		if window > 0 {
			l.Attn.Window = window // Swin-style local attention
		}
		initEncoderLayer(l, r)
		// CV transformers sit between CNNs and NLP: LayerNorm still
		// amplifies a few channels (~25x), enough to trouble
		// per-tensor INT8 (Figure 4 calls out ViT) but far milder
		// than NLP outliers.
		spikeGammas(l.LN1.Gamma, r, 2, 25)
		spikeGammas(l.LN2.Gamma, r, 2, 25)
		net.Layers = append(net.Layers, l)
	}
	initLinear(net.Head, r)
	return &Network{
		Meta:      info,
		root:      net,
		fwd:       func(s data.Sample) *tensor.Tensor { return net.Forward(s.X) },
		Data:      cvDataset(seed ^ 0x517),
		Classes:   classes,
		plannable: true,
	}
}

func registerViT(name string, sizeMB float64, dim, heads, ff, layers, classes, window int) {
	info := Info{Name: name, Domain: CV, Task: "imagenet-sim", SizeMB: sizeMB, HasLN: true}
	register(info, func(seed uint64) *Network {
		return buildViT(info, seed, dim, heads, ff, layers, classes, window)
	})
}

func init() {
	registerViT("vit_small", 88, 32, 4, 64, 2, 40, 0)
	registerViT("vit_base", 346, 48, 4, 96, 3, 50, 0)
	registerViT("deit_tiny", 23, 24, 4, 48, 2, 30, 0)
	registerViT("swin_tiny", 113, 32, 4, 64, 2, 30, 2)
}
