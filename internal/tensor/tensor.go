// Package tensor provides a minimal dense float32 tensor, a deterministic
// random number generator, and the statistics primitives (absmax,
// histograms, moments, MSE) that range calibration and the paper's
// analysis figures are built on.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major float32 tensor.
type Tensor struct {
	// Shape holds the dimension sizes, outermost first.
	Shape []int
	// Data is the row-major backing storage, len == product(Shape).
	Data []float32
}

// New allocates a zero tensor with the given shape.
func New(shape ...int) *Tensor {
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, NumElements(shape))}
}

// FromSlice wraps data in a tensor of the given shape. The slice is not
// copied; it must have exactly product(shape) elements.
func FromSlice(data []float32, shape ...int) *Tensor {
	if len(data) != NumElements(shape) {
		// Formatting shape here would make the variadic argument
		// heap-escape at every call site; the copy confines that to
		// the panic path.
		panicShapeMismatch(len(data), append([]int(nil), shape...))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

func panicShapeMismatch(n int, shape []int) {
	panic(fmt.Sprintf("tensor: data length %d does not match shape %v", n, shape))
}

// NumElements returns the product of the dimension sizes.
func NumElements(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view with a new shape sharing the same data.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	if NumElements(shape) != t.Len() {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.Shape, shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// Slice0 returns a view of rows [i, j) along dimension 0, sharing the
// backing data (the row-major layout makes leading-dimension slices
// contiguous). Used to split a batched forward's output back into
// per-sample tensors.
func (t *Tensor) Slice0(i, j int) *Tensor {
	if t.Rank() == 0 || i < 0 || j < i || j > t.Shape[0] {
		panic(fmt.Sprintf("tensor: Slice0[%d:%d] out of bounds for shape %v", i, j, t.Shape))
	}
	stride := 1
	for _, d := range t.Shape[1:] {
		stride *= d
	}
	shape := append([]int(nil), t.Shape...)
	shape[0] = j - i
	return &Tensor{Shape: shape, Data: t.Data[i*stride : j*stride : j*stride]}
}

// StackBatch concatenates tensors along dimension 0 into one newly
// allocated tensor; all inputs must agree on the trailing dimensions.
// Stacking K samples turns K forward passes into one whose leading
// (batch) dimension folds into the GEMM M dimension.
func StackBatch(xs []*Tensor) *Tensor {
	if len(xs) == 0 {
		panic("tensor: StackBatch of no tensors")
	}
	first := xs[0]
	rows := 0
	for _, x := range xs {
		if x.Rank() != first.Rank() {
			panic("tensor: StackBatch rank mismatch")
		}
		for d := 1; d < first.Rank(); d++ {
			if x.Shape[d] != first.Shape[d] {
				panic(fmt.Sprintf("tensor: StackBatch trailing shape mismatch: %v vs %v", x.Shape, first.Shape))
			}
		}
		rows += x.Shape[0]
	}
	shape := append([]int(nil), first.Shape...)
	shape[0] = rows
	out := New(shape...)
	off := 0
	for _, x := range xs {
		off += copy(out.Data[off:], x.Data)
	}
	return out
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.Shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Apply replaces every element x with f(x).
func (t *Tensor) Apply(f func(float32) float32) {
	for i, v := range t.Data {
		t.Data[i] = f(v)
	}
}

// Scale multiplies every element by s.
func (t *Tensor) Scale(s float32) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// AddInto accumulates src into t element-wise.
func (t *Tensor) AddInto(src *Tensor) {
	if src.Len() != t.Len() {
		panic("tensor: AddInto size mismatch")
	}
	for i, v := range src.Data {
		t.Data[i] += v
	}
}

// String returns a short description (shape plus a few leading values).
func (t *Tensor) String() string {
	n := t.Len()
	if n > 4 {
		n = 4
	}
	return fmt.Sprintf("Tensor%v%v…", t.Shape, t.Data[:n])
}

// AbsMax returns the maximum absolute value, ignoring NaNs.
func (t *Tensor) AbsMax() float64 {
	m := 0.0
	for _, v := range t.Data {
		a := math.Abs(float64(v))
		if a > m {
			m = a
		}
	}
	return m
}

// MinMax returns the minimum and maximum finite values.
func (t *Tensor) MinMax() (min, max float64) {
	min, max = math.Inf(1), math.Inf(-1)
	for _, v := range t.Data {
		f := float64(v)
		if math.IsNaN(f) {
			continue
		}
		if f < min {
			min = f
		}
		if f > max {
			max = f
		}
	}
	return min, max
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 {
	if t.Len() == 0 {
		return 0
	}
	s := 0.0
	for _, v := range t.Data {
		s += float64(v)
	}
	return s / float64(t.Len())
}

// Variance returns the population variance.
func (t *Tensor) Variance() float64 {
	if t.Len() == 0 {
		return 0
	}
	mu := t.Mean()
	s := 0.0
	for _, v := range t.Data {
		d := float64(v) - mu
		s += d * d
	}
	return s / float64(t.Len())
}

// Std returns the population standard deviation.
func (t *Tensor) Std() float64 { return math.Sqrt(t.Variance()) }

// Kurtosis returns the excess kurtosis; heavy-tailed (outlier-rich)
// tensors have large positive kurtosis, which is how Figure 3
// distinguishes range-bound from precision-bound tensors.
func (t *Tensor) Kurtosis() float64 {
	if t.Len() == 0 {
		return 0
	}
	mu := t.Mean()
	var m2, m4 float64
	for _, v := range t.Data {
		d := float64(v) - mu
		m2 += d * d
		m4 += d * d * d * d
	}
	n := float64(t.Len())
	m2 /= n
	m4 /= n
	if m2 == 0 {
		return 0
	}
	return m4/(m2*m2) - 3
}
