package quant

import (
	"fmt"

	"fp8quant/internal/fp8"
)

// DType selects the numeric format a tensor is quantized to.
type DType int

// Supported quantization targets.
const (
	FP32 DType = iota // no quantization
	E5M2
	E4M3
	E3M4
	INT8
)

// String names the dtype as in the paper's tables.
func (d DType) String() string {
	switch d {
	case FP32:
		return "FP32"
	case E5M2:
		return "E5M2"
	case E4M3:
		return "E4M3"
	case E3M4:
		return "E3M4"
	case INT8:
		return "INT8"
	}
	return fmt.Sprintf("DType(%d)", int(d))
}

// IsFP8 reports whether the dtype is one of the three FP8 formats.
func (d DType) IsFP8() bool { return d == E5M2 || d == E4M3 || d == E3M4 }

// Format returns the fp8.Format for FP8 dtypes.
func (d DType) Format() fp8.Format {
	switch d {
	case E5M2:
		return fp8.E5M2
	case E4M3:
		return fp8.E4M3
	case E3M4:
		return fp8.E3M4
	}
	panic(fmt.Sprintf("quant: %v is not an FP8 dtype", d))
}

// Approach selects when activation scales are computed.
type Approach int

// Quantization approaches. Static computes scales once from
// calibration data (the paper's default). Dynamic recomputes the scale
// per tensor per inference. Direct applies the format's encoding with
// no scaling at all — used by E5M2, whose dynamic range needs no range
// calibration (Figure 2 note).
const (
	Static Approach = iota
	Dynamic
	Direct
)

// String names the approach as used in the paper's tables.
func (a Approach) String() string {
	switch a {
	case Static:
		return "Static"
	case Dynamic:
		return "Dynamic"
	case Direct:
		return "Direct"
	}
	return fmt.Sprintf("Approach(%d)", int(a))
}

// Recipe is a complete quantization configuration: the "standard
// scheme" defaults plus the "extended scheme" switches of Figure 2.
type Recipe struct {
	// Act is the activation dtype.
	Act DType
	// Wgt is the weight dtype. Mixed FP8 formats (Section 3.2) use
	// Act=E4M3 with Wgt=E3M4.
	Wgt DType
	// Approach selects static/dynamic/direct activation scaling.
	Approach Approach
	// Calib selects the range-calibration algorithm for static
	// quantization (Max is the paper's recommendation).
	Calib CalibMethod
	// CalibBatches is how many dataset batches feed calibration.
	CalibBatches int

	// QuantFirstLast also quantizes the first convolution and last
	// linear layer of CNNs (standard scheme keeps them FP32; Section
	// 4.3.1 studies enabling them).
	QuantFirstLast bool
	// ExtendedOps expands coverage to LayerNorm, BatchNorm, element
	// wise Add/Mul, MatMul/BatchMatMul and Embedding outputs.
	ExtendedOps bool

	// SmoothQuant enables the activation-outlier smoothing transform
	// on Linear layers (enabled for NLP models in the paper's runs).
	SmoothQuant bool
	// SmoothAlpha is the migration strength (paper default 0.5).
	SmoothAlpha float64

	// BNCalib re-estimates BatchNorm statistics after quantization
	// (CV models only; Figure 2's BatchNorm Calibration step).
	BNCalib bool
	// BNCalibBatches is how many batches feed BN re-calibration.
	BNCalibBatches int

	// Fallback lists module paths forced to FP32 (populated by the
	// auto-tuner).
	Fallback map[string]bool
}

// Name returns a short table label such as "E4M3 Static".
func (r Recipe) Name() string {
	if r.Act == FP32 {
		return "FP32"
	}
	return fmt.Sprintf("%s %s", r.Act, r.Approach)
}

// StandardFP8 returns the paper's standard-scheme recipe for the given
// FP8 format: static per-tensor activation / per-channel weight max
// scaling, first/last conv excluded. E5M2 uses Direct (no range
// calibration).
func StandardFP8(d DType) Recipe {
	r := Recipe{
		Act: d, Wgt: d,
		Approach:     Static,
		Calib:        CalibMax,
		CalibBatches: 4,
	}
	if d == E5M2 {
		r.Approach = Direct
	}
	return r
}

// DynamicFP8 returns the dynamic-quantization variant.
func DynamicFP8(d DType) Recipe {
	r := StandardFP8(d)
	if d != E5M2 {
		r.Approach = Dynamic
	}
	return r
}

// MixedFP8 returns the mixed-format recipe: E4M3 activations (range
// bound) with E3M4 weights (precision bound), the combination Section
// 4.3.2 found best for NLP workloads.
func MixedFP8() Recipe {
	r := StandardFP8(E4M3)
	r.Wgt = E3M4
	return r
}

// StandardINT8 returns the INT8 baseline recipe matching the paper's
// comparison setting: "Static CV | Dynamic NLP".
func StandardINT8(dynamic bool) Recipe {
	a := Static
	if dynamic {
		a = Dynamic
	}
	return Recipe{Act: INT8, Wgt: INT8, Approach: a, Calib: CalibMax, CalibBatches: 4}
}

// WithExtendedOps returns a copy of r with extended operator coverage.
func (r Recipe) WithExtendedOps() Recipe {
	r.ExtendedOps = true
	return r
}

// WithSmoothQuant returns a copy of r with SmoothQuant enabled.
func (r Recipe) WithSmoothQuant(alpha float64) Recipe {
	r.SmoothQuant = true
	r.SmoothAlpha = alpha
	return r
}

// WithBNCalib returns a copy of r with BatchNorm calibration enabled.
func (r Recipe) WithBNCalib(batches int) Recipe {
	r.BNCalib = true
	r.BNCalibBatches = batches
	return r
}

// WithFirstLast returns a copy of r that also quantizes the first and
// last operators of CNNs.
func (r Recipe) WithFirstLast() Recipe {
	r.QuantFirstLast = true
	return r
}

// WithFallback returns a copy of r adding path to the FP32 fallback
// set.
func (r Recipe) WithFallback(path string) Recipe {
	fb := make(map[string]bool, len(r.Fallback)+1)
	for k, v := range r.Fallback {
		fb[k] = v
	}
	fb[path] = true
	r.Fallback = fb
	return r
}
