package nn

import (
	"fmt"
	"math"

	"fp8quant/internal/tensor"
)

// MultiHeadAttention implements scaled dot-product attention with
// learned Q/K/V/output projections. The two activation×activation
// matrix multiplies (QKᵀ and PV) are explicit BatchMatMulOp leaves so
// the extended quantization scheme can cover them (the "BMM" rows of
// Figure 9).
type MultiHeadAttention struct {
	Dim, Heads int
	WQ, WK, WV *Linear
	WO         *Linear
	// QK and PV are the two batched matmuls inside attention.
	QK, PV BatchMatMulOp
	// Causal masks future positions (decoder-only LMs).
	Causal bool
	// Window > 0 restricts attention to a sliding local window
	// (Longformer-style).
	Window int
}

// NewMultiHeadAttention allocates an attention block with zero weights.
func NewMultiHeadAttention(dim, heads int) *MultiHeadAttention {
	if dim%heads != 0 {
		panic(fmt.Sprintf("nn: attention dim %d not divisible by heads %d", dim, heads))
	}
	return &MultiHeadAttention{
		Dim: dim, Heads: heads,
		WQ: NewLinear(dim, dim), WK: NewLinear(dim, dim),
		WV: NewLinear(dim, dim), WO: NewLinear(dim, dim),
		QK: BatchMatMulOp{TransposeB: true},
	}
}

// Kind implements Module.
func (a *MultiHeadAttention) Kind() string { return "MultiHeadAttention" }

// Visit implements Container.
func (a *MultiHeadAttention) Visit(path string, v Visitor) {
	walk(path+"/wq", a.WQ, v)
	walk(path+"/wk", a.WK, v)
	walk(path+"/wv", a.WV, v)
	walk(path+"/wo", a.WO, v)
	walk(path+"/qk", &a.QK, v)
	walk(path+"/pv", &a.PV, v)
}

// Forward runs self-attention over x [B,T,D].
func (a *MultiHeadAttention) Forward(x *tensor.Tensor) *tensor.Tensor {
	return a.ForwardArena(nil, x)
}

// ForwardArena implements ArenaForwarder.
func (a *MultiHeadAttention) ForwardArena(ar *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 3 || x.Shape[2] != a.Dim {
		panic(fmt.Sprintf("nn: attention expects [B,T,%d], got %v", a.Dim, x.Shape))
	}
	b, t := x.Shape[0], x.Shape[1]
	hd := a.Dim / a.Heads

	q := splitHeads(ar, a.WQ.ForwardArena(ar, x), a.Heads) // [B,H,T,hd]
	k := splitHeads(ar, a.WK.ForwardArena(ar, x), a.Heads)
	v := splitHeads(ar, a.WV.ForwardArena(ar, x), a.Heads)

	scores := a.QK.ApplyArena(ar, q, k) // [B,H,T,T]
	scale := float32(1 / math.Sqrt(float64(hd)))
	for i := range scores.Data {
		scores.Data[i] *= scale
	}
	a.mask(scores, b, t)

	probs := ar.New(scores.Shape...)
	SoftmaxInto(probs.Data, scores.Data, t)

	ctx := a.PV.ApplyArena(ar, probs, v) // [B,H,T,hd]
	return a.WO.ForwardArena(ar, mergeHeads(ar, ctx))
}

// mask applies causal and/or sliding-window masking in place.
func (a *MultiHeadAttention) mask(scores *tensor.Tensor, b, t int) {
	if !a.Causal && a.Window <= 0 {
		return
	}
	const negInf = float32(-1e30)
	heads := a.Heads
	for bi := 0; bi < b*heads; bi++ {
		m := scores.Data[bi*t*t : (bi+1)*t*t]
		for i := 0; i < t; i++ {
			for j := 0; j < t; j++ {
				if a.Causal && j > i {
					m[i*t+j] = negInf
				}
				if a.Window > 0 && abs(i-j) > a.Window {
					m[i*t+j] = negInf
				}
			}
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// splitHeads reshapes [B,T,D] to [B,H,T,D/H].
func splitHeads(a *tensor.Arena, x *tensor.Tensor, heads int) *tensor.Tensor {
	b, t, d := x.Shape[0], x.Shape[1], x.Shape[2]
	hd := d / heads
	y := a.New(b, heads, t, hd)
	for bi := 0; bi < b; bi++ {
		for ti := 0; ti < t; ti++ {
			for h := 0; h < heads; h++ {
				src := x.Data[(bi*t+ti)*d+h*hd : (bi*t+ti)*d+(h+1)*hd]
				dst := y.Data[((bi*heads+h)*t+ti)*hd:]
				copy(dst[:hd], src)
			}
		}
	}
	return y
}

// mergeHeads reshapes [B,H,T,hd] back to [B,T,D].
func mergeHeads(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	b, heads, t, hd := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	d := heads * hd
	y := a.New(b, t, d)
	for bi := 0; bi < b; bi++ {
		for h := 0; h < heads; h++ {
			for ti := 0; ti < t; ti++ {
				src := x.Data[((bi*heads+h)*t+ti)*hd : ((bi*heads+h)*t+ti+1)*hd]
				dst := y.Data[(bi*t+ti)*d+h*hd:]
				copy(dst[:hd], src)
			}
		}
	}
	return y
}

// CrossAttention attends queries from x over keys/values from a memory
// tensor (encoder-decoder models: Marian, Pegasus).
type CrossAttention struct {
	*MultiHeadAttention
}

// NewCrossAttention allocates a cross-attention block.
func NewCrossAttention(dim, heads int) *CrossAttention {
	return &CrossAttention{NewMultiHeadAttention(dim, heads)}
}

// Kind implements Module.
func (c *CrossAttention) Kind() string { return "CrossAttention" }

// Attend runs attention with queries from x [B,Tq,D] and keys/values
// from mem [B,Tk,D].
func (c *CrossAttention) Attend(x, mem *tensor.Tensor) *tensor.Tensor {
	b, tq := x.Shape[0], x.Shape[1]
	tk := mem.Shape[1]
	hd := c.Dim / c.Heads

	q := splitHeads(nil, c.WQ.Forward(x), c.Heads)
	k := splitHeads(nil, c.WK.Forward(mem), c.Heads)
	v := splitHeads(nil, c.WV.Forward(mem), c.Heads)

	scores := c.QK.Apply(q, k) // [B,H,Tq,Tk]
	scale := float32(1 / math.Sqrt(float64(hd)))
	for i := range scores.Data {
		scores.Data[i] *= scale
	}
	probs := tensor.New(scores.Shape...)
	SoftmaxInto(probs.Data, scores.Data, tk)
	ctx := c.PV.Apply(probs, v)
	_ = b
	_ = tq
	return c.WO.Forward(mergeHeads(nil, ctx))
}
