//go:build amd64

package kernels

// Runtime dispatch for the amd64 assembly tiers. Feature detection is
// hand-rolled CPUID/XGETBV in cpuid_amd64.s — no golang.org/x/sys
// dependency — and runs once at init. AVX2+FMA requires, per the Intel
// SDM: CPUID.1:ECX OSXSAVE(27), AVX(28) and FMA(12); XCR0 bits 1|2
// (XMM and YMM state enabled by the OS); and CPUID.7.0:EBX AVX2(5).

// cpuid executes CPUID with EAX=leaf, ECX=sub.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0 (extended control register 0).
func xgetbv0() (eax, edx uint32)

const (
	cpuidOSXSAVE = 1 << 27 // leaf 1 ECX
	cpuidAVX     = 1 << 28 // leaf 1 ECX
	cpuidFMA     = 1 << 12 // leaf 1 ECX
	cpuidAVX2    = 1 << 5  // leaf 7.0 EBX
	xcr0XMMYMM   = 0x6     // XCR0 bits 1|2
)

// hasAVX2FMA reports whether the host supports the avx2 tier.
func hasAVX2FMA() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	need := uint32(cpuidOSXSAVE | cpuidAVX | cpuidFMA)
	if ecx1&need != need {
		return false
	}
	if lo, _ := xgetbv0(); lo&xcr0XMMYMM != xcr0XMMYMM {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&cpuidAVX2 != 0
}

// archKernels returns the amd64 assembly tiers, best-first. SSE2 is
// part of the amd64 baseline, so the sse tier is unconditional; the
// avx2 tier leads when the host supports it.
func archKernels() []*kernel {
	ks := []*kernel{{variant: VariantSSE, mr: 4}}
	if hasAVX2FMA() {
		ks = append([]*kernel{{variant: VariantAVX2, mr: 8, fused: true}}, ks...)
	}
	return ks
}

// blockRowsOf dispatches to the variant's block loop. A direct switch
// (not a method or function-pointer field) so each loop's direct calls
// into the //go:noescape assembly wrappers keep the accumulator tiles
// on the stack.
func blockRowsOf(k *kernel, y, x, panel []float32, r, rb, in, out int, opt Opt) {
	switch k.variant {
	case VariantAVX2:
		blockRowsFMA(y, x, panel, r, rb, in, out, opt)
	case VariantSSE:
		blockRowsSSE(y, x, panel, r, rb, in, out, opt)
	default:
		blockRowsGeneric(y, x, panel, r, rb, in, out, opt)
	}
}
