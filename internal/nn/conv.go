package nn

import (
	"fmt"

	"fp8quant/internal/tensor"
)

// Conv2d is a 2-D convolution over NCHW tensors with optional grouping
// (Groups == InC == OutC gives a depthwise convolution, the op that
// makes INT8 struggle on MobileNet/EfficientNet-style models).
type Conv2d struct {
	InC, OutC int
	K         int // square kernel size
	Stride    int
	Pad       int
	Groups    int
	// W has shape [OutC, InC/Groups, K, K].
	W *tensor.Tensor
	// B has length OutC; may be nil.
	B []float32
	// QS holds quantization hooks for the input activation.
	QS QState
}

// NewConv2d allocates a convolution layer with zero weights.
func NewConv2d(inC, outC, k, stride, pad, groups int) *Conv2d {
	if groups <= 0 {
		groups = 1
	}
	if inC%groups != 0 || outC%groups != 0 {
		panic(fmt.Sprintf("nn: conv channels %d->%d not divisible by groups %d", inC, outC, groups))
	}
	return &Conv2d{
		InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad, Groups: groups,
		W: tensor.New(outC, inC/groups, k, k),
		B: make([]float32, outC),
	}
}

// Kind implements Module.
func (c *Conv2d) Kind() string { return "Conv2d" }

// Q implements Quantizable.
func (c *Conv2d) Q() *QState { return &c.QS }

// WeightTensor implements Parametric.
func (c *Conv2d) WeightTensor() *tensor.Tensor { return c.W }

// OutChannelDim implements Parametric.
func (c *Conv2d) OutChannelDim() int { return 0 }

// OutSize returns the spatial output size for input size n.
func (c *Conv2d) OutSize(n int) int {
	return (n+2*c.Pad-c.K)/c.Stride + 1
}

// Forward convolves x [N, InC, H, W] producing [N, OutC, H', W'].
func (c *Conv2d) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 4 || x.Shape[1] != c.InC {
		panic(fmt.Sprintf("nn: Conv2d expects [N,%d,H,W], got %v", c.InC, x.Shape))
	}
	x = c.QS.applyIn(x)
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh, ow := c.OutSize(h), c.OutSize(w)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: Conv2d output empty for input %v", x.Shape))
	}
	y := tensor.New(n, c.OutC, oh, ow)
	icg := c.InC / c.Groups // input channels per group
	ocg := c.OutC / c.Groups
	for ni := 0; ni < n; ni++ {
		for oc := 0; oc < c.OutC; oc++ {
			g := oc / ocg
			var bias float32
			if c.B != nil {
				bias = c.B[oc]
			}
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					acc := bias
					for ic := 0; ic < icg; ic++ {
						inC := g*icg + ic
						for ky := 0; ky < c.K; ky++ {
							iy := oy*c.Stride - c.Pad + ky
							if iy < 0 || iy >= h {
								continue
							}
							xRow := x.Data[((ni*c.InC+inC)*h+iy)*w:]
							wRow := c.W.Data[((oc*icg+ic)*c.K+ky)*c.K:]
							for kx := 0; kx < c.K; kx++ {
								ix := ox*c.Stride - c.Pad + kx
								if ix < 0 || ix >= w {
									continue
								}
								acc += xRow[ix] * wRow[kx]
							}
						}
					}
					y.Data[((ni*c.OutC+oc)*oh+oy)*ow+ox] = acc
				}
			}
		}
	}
	return c.QS.applyOut(y)
}

// MaxPool2d takes the max over non-overlapping K×K windows.
type MaxPool2d struct {
	K, Stride int
}

// Kind implements Module.
func (p *MaxPool2d) Kind() string { return "MaxPool2d" }

// Forward pools x [N,C,H,W].
func (p *MaxPool2d) Forward(x *tensor.Tensor) *tensor.Tensor {
	return pool2d(x, p.K, p.Stride, true)
}

// AvgPool2d averages over K×K windows.
type AvgPool2d struct {
	K, Stride int
}

// Kind implements Module.
func (p *AvgPool2d) Kind() string { return "AvgPool2d" }

// Forward pools x [N,C,H,W].
func (p *AvgPool2d) Forward(x *tensor.Tensor) *tensor.Tensor {
	return pool2d(x, p.K, p.Stride, false)
}

func pool2d(x *tensor.Tensor, k, stride int, max bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic("nn: pooling expects NCHW")
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh := (h-k)/stride + 1
	ow := (w-k)/stride + 1
	y := tensor.New(n, c, oh, ow)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			plane := x.Data[(ni*c+ci)*h*w:]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var acc float32
					if max {
						acc = plane[(oy*stride)*w+ox*stride]
					}
					for ky := 0; ky < k; ky++ {
						for kx := 0; kx < k; kx++ {
							v := plane[(oy*stride+ky)*w+(ox*stride+kx)]
							if max {
								if v > acc {
									acc = v
								}
							} else {
								acc += v
							}
						}
					}
					if !max {
						acc /= float32(k * k)
					}
					y.Data[((ni*c+ci)*oh+oy)*ow+ox] = acc
				}
			}
		}
	}
	return y
}

// GlobalAvgPool reduces [N,C,H,W] to [N,C].
type GlobalAvgPool struct{}

// Kind implements Module.
func (GlobalAvgPool) Kind() string { return "GlobalAvgPool" }

// Forward averages each channel plane.
func (GlobalAvgPool) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 4 {
		panic("nn: GlobalAvgPool expects NCHW")
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	y := tensor.New(n, c)
	area := float32(h * w)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			plane := x.Data[(ni*c+ci)*h*w : (ni*c+ci+1)*h*w]
			var s float32
			for _, v := range plane {
				s += v
			}
			y.Data[ni*c+ci] = s / area
		}
	}
	return y
}

// Flatten reshapes [N, ...] to [N, rest].
type Flatten struct{}

// Kind implements Module.
func (Flatten) Kind() string { return "Flatten" }

// Forward flattens all but the leading dimension.
func (Flatten) Forward(x *tensor.Tensor) *tensor.Tensor {
	return x.Reshape(x.Shape[0], x.Len()/x.Shape[0])
}

// Upsample2x nearest-neighbour upsamples [N,C,H,W] to [N,C,2H,2W]
// (used by the U-Net decoder path).
type Upsample2x struct{}

// Kind implements Module.
func (Upsample2x) Kind() string { return "Upsample2x" }

// Forward duplicates each pixel into a 2×2 block.
func (Upsample2x) Forward(x *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	y := tensor.New(n, c, 2*h, 2*w)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			src := x.Data[(ni*c+ci)*h*w:]
			dst := y.Data[(ni*c+ci)*4*h*w:]
			for iy := 0; iy < h; iy++ {
				for ix := 0; ix < w; ix++ {
					v := src[iy*w+ix]
					dst[(2*iy)*2*w+2*ix] = v
					dst[(2*iy)*2*w+2*ix+1] = v
					dst[(2*iy+1)*2*w+2*ix] = v
					dst[(2*iy+1)*2*w+2*ix+1] = v
				}
			}
		}
	}
	return y
}

// ConcatChannels concatenates two NCHW tensors along the channel dim
// (U-Net skip connections).
func ConcatChannels(a, b *tensor.Tensor) *tensor.Tensor {
	if a.Rank() != 4 || b.Rank() != 4 || a.Shape[0] != b.Shape[0] ||
		a.Shape[2] != b.Shape[2] || a.Shape[3] != b.Shape[3] {
		panic(fmt.Sprintf("nn: ConcatChannels shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	n, ca, cb := a.Shape[0], a.Shape[1], b.Shape[1]
	h, w := a.Shape[2], a.Shape[3]
	y := tensor.New(n, ca+cb, h, w)
	hw := h * w
	for ni := 0; ni < n; ni++ {
		copy(y.Data[ni*(ca+cb)*hw:], a.Data[ni*ca*hw:(ni+1)*ca*hw])
		copy(y.Data[(ni*(ca+cb)+ca)*hw:], b.Data[ni*cb*hw:(ni+1)*cb*hw])
	}
	return y
}
