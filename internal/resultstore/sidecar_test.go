package resultstore

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"fp8quant/internal/evalx"
)

func sidecarTestKey(model string) CellKey {
	return CellKey{
		Grid: "sidecar-test",
		Cell: []AxisValue{{Axis: "model", Value: model}},
		Seed: 5, Schema: SchemaVersion,
	}
}

func TestSidecarRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.LoadSidecar("costmodel.json"); ok {
		t.Fatal("absent sidecar loaded")
	}
	want := []byte(`{"schema":1}`)
	if err := s.SaveSidecar("costmodel.json", want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.LoadSidecar("costmodel.json")
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("LoadSidecar = %q/%v, want %q", got, ok, want)
	}
	// Overwrite is atomic and last-write-wins.
	want2 := []byte(`{"schema":1,"n":2}`)
	if err := s.SaveSidecar("costmodel.json", want2); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.LoadSidecar("costmodel.json"); !bytes.Equal(got, want2) {
		t.Fatalf("after overwrite = %q, want %q", got, want2)
	}
}

func TestSidecarNameValidation(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	bad := []string{
		"",                                       // empty
		".hidden",                                // hidden
		"../escape.json",                         // path traversal
		"a/b.json",                               // separator
		"x.tmp",                                  // reserved in-flight suffix
		"c-" + strings.Repeat("0", 32) + ".json", // store cell pattern
		"m-" + strings.Repeat("a", 32) + ".json", // store manifest pattern
	}
	for _, name := range bad {
		if err := s.SaveSidecar(name, []byte("x")); err == nil {
			t.Errorf("SaveSidecar(%q) succeeded, want rejection", name)
		}
		if _, ok := s.LoadSidecar(name); ok {
			t.Errorf("LoadSidecar(%q) succeeded, want rejection", name)
		}
	}
}

// TestSidecarSurvivesMergeAndPrune: sidecars are per-deployment state,
// not shared results — Merge must not copy them, Prune must not delete
// them.
func TestSidecarSurvivesMergeAndPrune(t *testing.T) {
	src, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	dst, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := src.SaveCell(sidecarTestKey("m1"), evalx.Result{Model: "m1", QAcc: 1}); err != nil {
		t.Fatal(err)
	}
	if err := src.SaveSidecar("costmodel.json", []byte(`{"schema":1}`)); err != nil {
		t.Fatal(err)
	}
	st, err := dst.Merge(src)
	if err != nil {
		t.Fatal(err)
	}
	if st.CellsCopied != 1 || st.Skipped != 1 {
		t.Fatalf("merge stats = %+v, want 1 copied cell and the sidecar skipped", st)
	}
	if _, ok := dst.LoadSidecar("costmodel.json"); ok {
		t.Fatal("merge copied a sidecar across stores")
	}
	if _, err := src.Prune(0); err != nil {
		t.Fatal(err)
	}
	if _, ok := src.LoadSidecar("costmodel.json"); !ok {
		t.Fatal("prune deleted a sidecar")
	}
}

// TestIngestCell covers the push-side ingest contract directly: the
// same conflict rules as Merge, for one cell handed over as raw bytes.
func TestIngestCell(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := sidecarTestKey("m2")
	fp := k.Fingerprint()
	payload, err := EncodeCell(k, evalx.Result{Model: "m2", QAcc: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	// Invalid payloads never land: garbage, and a valid envelope under
	// the wrong fingerprint.
	if _, err := s.IngestCell(fp, []byte("junk")); err == nil {
		t.Fatal("garbage payload ingested")
	}
	wrong := sidecarTestKey("other").Fingerprint()
	if _, err := s.IngestCell(wrong, payload); err == nil {
		t.Fatal("payload ingested under a mismatched fingerprint")
	}
	// Absent: stored.
	if st, err := s.IngestCell(fp, payload); err != nil || st != IngestStored {
		t.Fatalf("first ingest = %v/%v, want stored", st, err)
	}
	// Identical duplicate: idempotent.
	if st, err := s.IngestCell(fp, payload); err != nil || st != IngestIdentical {
		t.Fatalf("duplicate ingest = %v/%v, want identical", st, err)
	}
	// Differing valid payload: hard error naming the fingerprint.
	conflicting, err := EncodeCell(k, evalx.Result{Model: "m2", QAcc: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.IngestCell(fp, conflicting); err == nil || !strings.Contains(err.Error(), fp) {
		t.Fatalf("conflicting ingest err = %v, want conflict naming %s", err, fp)
	}
	// A corrupt destination is replaced, like a recompute would.
	if err := os.WriteFile(s.SidecarPath("c-"+fp+".json"), []byte("torn"), 0o644); err != nil { //nolint — deliberate corruption
		t.Fatal(err)
	}
	if st, err := s.IngestCell(fp, payload); err != nil || st != IngestStored {
		t.Fatalf("ingest over corrupt dst = %v/%v, want stored", st, err)
	}
	if got, ok := s.CellBytesByFingerprint(fp); !ok || !bytes.Equal(got, payload) {
		t.Fatal("store does not hold the valid payload after corruption recovery")
	}
}
