package nn

import (
	"fmt"

	"fp8quant/internal/tensor"
	"fp8quant/internal/tensor/kernels"
)

// Conv2d is a 2-D convolution over NCHW tensors with optional grouping
// (Groups == InC == OutC gives a depthwise convolution, the op that
// makes INT8 struggle on MobileNet/EfficientNet-style models).
type Conv2d struct {
	InC, OutC int
	K         int // square kernel size
	Stride    int
	Pad       int
	Groups    int
	// W has shape [OutC, InC/Groups, K, K].
	W *tensor.Tensor
	// B has length OutC; may be nil.
	B []float32
	// QS holds quantization hooks for the input activation.
	QS QState
}

// NewConv2d allocates a convolution layer with zero weights.
func NewConv2d(inC, outC, k, stride, pad, groups int) *Conv2d {
	if groups <= 0 {
		groups = 1
	}
	if inC%groups != 0 || outC%groups != 0 {
		panic(fmt.Sprintf("nn: conv channels %d->%d not divisible by groups %d", inC, outC, groups))
	}
	return &Conv2d{
		InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad, Groups: groups,
		W: tensor.New(outC, inC/groups, k, k),
		B: make([]float32, outC),
	}
}

// Kind implements Module.
func (c *Conv2d) Kind() string { return "Conv2d" }

// Q implements Quantizable.
func (c *Conv2d) Q() *QState { return &c.QS }

// WeightTensor implements Parametric.
func (c *Conv2d) WeightTensor() *tensor.Tensor { return c.W }

// OutChannelDim implements Parametric.
func (c *Conv2d) OutChannelDim() int { return 0 }

// OutSize returns the spatial output size for input size n.
func (c *Conv2d) OutSize(n int) int {
	return (n+2*c.Pad-c.K)/c.Stride + 1
}

// Forward convolves x [N, InC, H, W] producing [N, OutC, H', W'].
// Output pixels whose window lies fully inside the input go through an
// im2col gather + blocked GEMM (kernels.GemmT); the padded border ring
// keeps the direct skip-on-pad loop. Both paths accumulate products in
// the same (ic, ky, kx) order from a bias-seeded accumulator, so the
// result is bit-identical to the all-direct reference (forwardDirect),
// which the differential tests pin it against.
func (c *Conv2d) Forward(x *tensor.Tensor) *tensor.Tensor { return c.ForwardArena(nil, x) }

// ForwardArena implements ArenaForwarder: the output, the im2col
// patch/scratch buffers and the packed weight panel all carve from a.
func (c *Conv2d) ForwardArena(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 4 || x.Shape[1] != c.InC {
		panic(fmt.Sprintf("nn: Conv2d expects [N,%d,H,W], got %v", c.InC, x.Shape))
	}
	x = c.QS.applyIn(a, x)
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh, ow := c.OutSize(h), c.OutSize(w)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: Conv2d output empty for input %v", x.Shape))
	}
	y := a.New(n, c.OutC, oh, ow)
	c.forwardInto(a, y, x, n, h, w, oh, ow)
	return c.QS.applyOut(y)
}

// interior returns the output rows/cols [y0,y1)×[x0,x1) whose K×K
// window is fully inside the input (no padding touched). With Pad == 0
// that is the whole output.
func (c *Conv2d) interior(h, w, oh, ow int) (y0, y1, x0, x1 int) {
	y0 = (c.Pad + c.Stride - 1) / c.Stride
	x0 = y0
	y1 = (h-c.K+c.Pad)/c.Stride + 1
	x1 = (w-c.K+c.Pad)/c.Stride + 1
	if y1 > oh {
		y1 = oh
	}
	if x1 > ow {
		x1 = ow
	}
	if y1 < y0 {
		y1 = y0
	}
	if x1 < x0 {
		x1 = x0
	}
	return
}

// forwardInto dispatches between the im2col+GEMM interior and the
// direct border path.
func (c *Conv2d) forwardInto(a *tensor.Arena, y, x *tensor.Tensor, n, h, w, oh, ow int) {
	y0, y1, x0, x1 := c.interior(h, w, oh, ow)
	npix := (y1 - y0) * (x1 - x0)
	icg := c.InC / c.Groups
	ocg := c.OutC / c.Groups
	kdim := icg * c.K * c.K
	// Degenerate GEMMs (depthwise: ocg=1, kdim=K²) spend more on the
	// gather/pack/scatter round trip than the multiply; the direct loop
	// wins there. Both paths are bit-identical, so this is purely a
	// performance dispatch: the GEMMs below pass NoFused so the kernel
	// keeps two-rounding semantics under every variant, matching the
	// scalar convPixel loop this dispatch (and the border ring) runs.
	// Convolution outputs are therefore variant-independent.
	if npix == 0 || ocg*kdim < 64 {
		c.forwardDirect(y, x, n, h, w, oh, ow)
		return
	}

	if a != nil {
		// Arena path: same buffers, same GEMMs, carved instead of
		// pooled, run serially (plan-per-worker parallelism).
		patches := a.Alloc(npix * kdim)
		scratch := a.Alloc(npix * ocg)
		panel := a.Alloc(kernels.PanelFloats(kdim, ocg))
		for g := 0; g < c.Groups; g++ {
			var bias []float32
			if c.B != nil {
				bias = c.B[g*ocg : (g+1)*ocg]
			}
			wg := c.W.Data[g*ocg*kdim : (g+1)*ocg*kdim]
			kernels.PackTInto(panel, wg, kdim, ocg)
			for ni := 0; ni < n; ni++ {
				c.im2col(patches, x, ni, g, h, w, y0, y1, x0, x1)
				kernels.GemmPacked(scratch, patches, panel, npix, kdim, ocg,
					kernels.Opt{Bias: bias, Prologue: true, Serial: true, NoFused: true})
				c.scatter(y, scratch, ni, g, oh, ow, y0, y1, x0, x1)
			}
		}
		if y1-y0 < oh || x1-x0 < ow {
			c.forwardBorder(y, x, n, h, w, oh, ow, y0, y1, x0, x1)
		}
		return
	}

	patches := kernels.GetScratch(npix * kdim)
	scratch := kernels.GetScratch(npix * ocg)
	defer kernels.PutScratch(patches)
	defer kernels.PutScratch(scratch)

	for g := 0; g < c.Groups; g++ {
		var bias []float32
		if c.B != nil {
			bias = c.B[g*ocg : (g+1)*ocg]
		}
		// Pack the group's weight panel once and reuse it across the
		// batch; the per-sample GEMM runs against the packed form.
		wg := c.W.Data[g*ocg*kdim : (g+1)*ocg*kdim]
		panel := kernels.PackT(wg, kdim, ocg)
		for ni := 0; ni < n; ni++ {
			c.im2col(*patches, x, ni, g, h, w, y0, y1, x0, x1)
			// Prologue bias: the accumulator starts at the bias, exactly
			// like the direct loop's acc := bias.
			kernels.GemmPacked(*scratch, *patches, *panel, npix, kdim, ocg,
				kernels.Opt{Bias: bias, Prologue: true, NoFused: true})
			c.scatter(y, *scratch, ni, g, oh, ow, y0, y1, x0, x1)
		}
		kernels.PutScratch(panel)
	}
	if y1-y0 < oh || x1-x0 < ow {
		c.forwardBorder(y, x, n, h, w, oh, ow, y0, y1, x0, x1)
	}
}

// im2col gathers the interior patches of sample ni, group g into dst
// as a row-major [npix, icg*K*K] matrix. The patch element order is
// (ic, ky, kx) — the direct loop's accumulation order — and every
// element is a genuine input read (no zero padding), so the GEMM
// reduction replays the direct loop exactly.
func (c *Conv2d) im2col(dst []float32, x *tensor.Tensor, ni, g, h, w, y0, y1, x0, x1 int) {
	icg := c.InC / c.Groups
	k := c.K
	kdim := icg * k * k
	idx := 0
	for oy := y0; oy < y1; oy++ {
		iy0 := oy*c.Stride - c.Pad
		for ox := x0; ox < x1; ox++ {
			ix0 := ox*c.Stride - c.Pad
			p := dst[idx*kdim : (idx+1)*kdim]
			pi := 0
			for ic := 0; ic < icg; ic++ {
				base := ((ni*c.InC+g*icg+ic)*h + iy0) * w
				for ky := 0; ky < k; ky++ {
					row := x.Data[base+ky*w+ix0 : base+ky*w+ix0+k]
					copy(p[pi:pi+k], row)
					pi += k
				}
			}
			idx++
		}
	}
}

// scatter copies the GEMM output (row-major [npix, ocg]) into the
// interior rectangle of y's channel planes.
func (c *Conv2d) scatter(y *tensor.Tensor, src []float32, ni, g, oh, ow, y0, y1, x0, x1 int) {
	ocg := c.OutC / c.Groups
	cols := x1 - x0
	for oc := 0; oc < ocg; oc++ {
		plane := y.Data[(ni*c.OutC+g*ocg+oc)*oh*ow:]
		for oy := y0; oy < y1; oy++ {
			row := plane[oy*ow+x0 : oy*ow+x1]
			base := ((oy-y0)*cols)*ocg + oc
			for j := range row {
				row[j] = src[base+j*ocg]
			}
		}
	}
}

// forwardBorder runs the direct loop over every output pixel outside
// the interior rectangle (the ring that touches padding).
func (c *Conv2d) forwardBorder(y, x *tensor.Tensor, n, h, w, oh, ow, y0, y1, x0, x1 int) {
	icg := c.InC / c.Groups
	ocg := c.OutC / c.Groups
	for ni := 0; ni < n; ni++ {
		for oc := 0; oc < c.OutC; oc++ {
			g := oc / ocg
			var bias float32
			if c.B != nil {
				bias = c.B[oc]
			}
			for oy := 0; oy < oh; oy++ {
				inY := oy >= y0 && oy < y1
				for ox := 0; ox < ow; ox++ {
					if inY && ox >= x0 && ox < x1 {
						ox = x1 - 1 // skip the interior span
						continue
					}
					y.Data[((ni*c.OutC+oc)*oh+oy)*ow+ox] =
						c.convPixel(x, ni, oc, g, icg, h, w, oy, ox, bias)
				}
			}
		}
	}
}

// convPixel is the direct skip-on-pad accumulation for one output
// element — the shared reference order for both forward paths.
func (c *Conv2d) convPixel(x *tensor.Tensor, ni, oc, g, icg, h, w, oy, ox int, bias float32) float32 {
	acc := bias
	for ic := 0; ic < icg; ic++ {
		inC := g*icg + ic
		for ky := 0; ky < c.K; ky++ {
			iy := oy*c.Stride - c.Pad + ky
			if iy < 0 || iy >= h {
				continue
			}
			xRow := x.Data[((ni*c.InC+inC)*h+iy)*w:]
			wRow := c.W.Data[((oc*icg+ic)*c.K+ky)*c.K:]
			for kx := 0; kx < c.K; kx++ {
				ix := ox*c.Stride - c.Pad + kx
				if ix < 0 || ix >= w {
					continue
				}
				acc += xRow[ix] * wRow[kx]
			}
		}
	}
	return acc
}

// forwardDirect is the original 7-deep direct convolution, kept as the
// differential-test oracle for the im2col path.
func (c *Conv2d) forwardDirect(y, x *tensor.Tensor, n, h, w, oh, ow int) {
	icg := c.InC / c.Groups
	ocg := c.OutC / c.Groups
	for ni := 0; ni < n; ni++ {
		for oc := 0; oc < c.OutC; oc++ {
			g := oc / ocg
			var bias float32
			if c.B != nil {
				bias = c.B[oc]
			}
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					y.Data[((ni*c.OutC+oc)*oh+oy)*ow+ox] =
						c.convPixel(x, ni, oc, g, icg, h, w, oy, ox, bias)
				}
			}
		}
	}
}

// MaxPool2d takes the max over non-overlapping K×K windows.
type MaxPool2d struct {
	K, Stride int
}

// Kind implements Module.
func (p *MaxPool2d) Kind() string { return "MaxPool2d" }

// Forward pools x [N,C,H,W].
func (p *MaxPool2d) Forward(x *tensor.Tensor) *tensor.Tensor {
	return pool2d(nil, x, p.K, p.Stride, true)
}

// ForwardArena implements ArenaForwarder.
func (p *MaxPool2d) ForwardArena(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	return pool2d(a, x, p.K, p.Stride, true)
}

// AvgPool2d averages over K×K windows.
type AvgPool2d struct {
	K, Stride int
}

// Kind implements Module.
func (p *AvgPool2d) Kind() string { return "AvgPool2d" }

// Forward pools x [N,C,H,W].
func (p *AvgPool2d) Forward(x *tensor.Tensor) *tensor.Tensor {
	return pool2d(nil, x, p.K, p.Stride, false)
}

// ForwardArena implements ArenaForwarder.
func (p *AvgPool2d) ForwardArena(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	return pool2d(a, x, p.K, p.Stride, false)
}

func pool2d(a *tensor.Arena, x *tensor.Tensor, k, stride int, max bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic("nn: pooling expects NCHW")
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh := (h-k)/stride + 1
	ow := (w-k)/stride + 1
	y := a.New(n, c, oh, ow)
	area := float32(k * k)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			plane := x.Data[(ni*c+ci)*h*w : (ni*c+ci+1)*h*w]
			out := y.Data[(ni*c+ci)*oh*ow : (ni*c+ci+1)*oh*ow]
			for oy := 0; oy < oh; oy++ {
				// One slice per window row: the inner loops walk k
				// contiguous elements instead of recomputing the 4-D
				// offset (two multiplies) per element. The reduction
				// order over (ky, kx) is unchanged.
				top := oy * stride * w
				outRow := out[oy*ow : (oy+1)*ow]
				for ox := 0; ox < ow; ox++ {
					x0 := ox * stride
					var acc float32
					if max {
						acc = plane[top+x0]
						for ky := 0; ky < k; ky++ {
							row := plane[top+ky*w+x0 : top+ky*w+x0+k]
							for _, v := range row {
								if v > acc {
									acc = v
								}
							}
						}
					} else {
						for ky := 0; ky < k; ky++ {
							row := plane[top+ky*w+x0 : top+ky*w+x0+k]
							for _, v := range row {
								acc += v
							}
						}
						acc /= area
					}
					outRow[ox] = acc
				}
			}
		}
	}
	return y
}

// GlobalAvgPool reduces [N,C,H,W] to [N,C].
type GlobalAvgPool struct{}

// Kind implements Module.
func (GlobalAvgPool) Kind() string { return "GlobalAvgPool" }

// Forward averages each channel plane.
func (g GlobalAvgPool) Forward(x *tensor.Tensor) *tensor.Tensor { return g.ForwardArena(nil, x) }

// ForwardArena implements ArenaForwarder.
func (GlobalAvgPool) ForwardArena(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 4 {
		panic("nn: GlobalAvgPool expects NCHW")
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	y := a.New(n, c)
	area := float32(h * w)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			plane := x.Data[(ni*c+ci)*h*w : (ni*c+ci+1)*h*w]
			var s float32
			for _, v := range plane {
				s += v
			}
			y.Data[ni*c+ci] = s / area
		}
	}
	return y
}

// Flatten reshapes [N, ...] to [N, rest].
type Flatten struct{}

// Kind implements Module.
func (Flatten) Kind() string { return "Flatten" }

// Forward flattens all but the leading dimension.
func (f Flatten) Forward(x *tensor.Tensor) *tensor.Tensor { return f.ForwardArena(nil, x) }

// ForwardArena implements ArenaForwarder: the reshaped view's header
// carves from the arena; the data is shared with x either way.
func (Flatten) ForwardArena(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	return a.View(x.Data, x.Shape[0], x.Len()/x.Shape[0])
}

// Upsample2x nearest-neighbour upsamples [N,C,H,W] to [N,C,2H,2W]
// (used by the U-Net decoder path).
type Upsample2x struct{}

// Kind implements Module.
func (Upsample2x) Kind() string { return "Upsample2x" }

// Forward duplicates each pixel into a 2×2 block.
func (u Upsample2x) Forward(x *tensor.Tensor) *tensor.Tensor { return u.ForwardArena(nil, x) }

// ForwardArena implements ArenaForwarder.
func (Upsample2x) ForwardArena(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	y := a.New(n, c, 2*h, 2*w)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			src := x.Data[(ni*c+ci)*h*w:]
			dst := y.Data[(ni*c+ci)*4*h*w:]
			for iy := 0; iy < h; iy++ {
				for ix := 0; ix < w; ix++ {
					v := src[iy*w+ix]
					dst[(2*iy)*2*w+2*ix] = v
					dst[(2*iy)*2*w+2*ix+1] = v
					dst[(2*iy+1)*2*w+2*ix] = v
					dst[(2*iy+1)*2*w+2*ix+1] = v
				}
			}
		}
	}
	return y
}

// ConcatChannels concatenates two NCHW tensors along the channel dim
// (U-Net skip connections).
func ConcatChannels(a, b *tensor.Tensor) *tensor.Tensor {
	return ConcatChannelsArena(nil, a, b)
}

// ConcatChannelsArena is ConcatChannels with the output carved from ar.
func ConcatChannelsArena(ar *tensor.Arena, a, b *tensor.Tensor) *tensor.Tensor {
	if a.Rank() != 4 || b.Rank() != 4 || a.Shape[0] != b.Shape[0] ||
		a.Shape[2] != b.Shape[2] || a.Shape[3] != b.Shape[3] {
		panic(fmt.Sprintf("nn: ConcatChannels shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	n, ca, cb := a.Shape[0], a.Shape[1], b.Shape[1]
	h, w := a.Shape[2], a.Shape[3]
	y := ar.New(n, ca+cb, h, w)
	hw := h * w
	for ni := 0; ni < n; ni++ {
		copy(y.Data[ni*(ca+cb)*hw:], a.Data[ni*ca*hw:(ni+1)*ca*hw])
		copy(y.Data[(ni*(ca+cb)+ca)*hw:], b.Data[ni*cb*hw:(ni+1)*cb*hw])
	}
	return y
}
