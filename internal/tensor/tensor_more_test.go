package tensor

import (
	"math"
	"strings"
	"testing"
)

func TestApplyScaleAddInto(t *testing.T) {
	x := FromSlice([]float32{1, -2, 3}, 3)
	x.Apply(func(v float32) float32 { return v * v })
	if x.Data[0] != 1 || x.Data[1] != 4 || x.Data[2] != 9 {
		t.Errorf("Apply: %v", x.Data)
	}
	x.Scale(2)
	if x.Data[2] != 18 {
		t.Errorf("Scale: %v", x.Data)
	}
	y := FromSlice([]float32{1, 1, 1}, 3)
	x.AddInto(y)
	if x.Data[0] != 3 {
		t.Errorf("AddInto: %v", x.Data)
	}
}

func TestAddIntoSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(3).AddInto(New(4))
}

func TestStringPreview(t *testing.T) {
	x := New(2, 3)
	s := x.String()
	if !strings.Contains(s, "[2 3]") {
		t.Errorf("String = %q", s)
	}
}

func TestFillAndZeroStats(t *testing.T) {
	x := New(4)
	x.Fill(2.5)
	if x.Mean() != 2.5 || x.Variance() != 0 || x.Std() != 0 {
		t.Errorf("constant tensor stats: mean %v var %v", x.Mean(), x.Variance())
	}
	empty := &Tensor{Shape: []int{0}, Data: nil}
	if empty.Mean() != 0 || empty.Variance() != 0 || empty.Kurtosis() != 0 {
		t.Error("empty tensor stats must be zero")
	}
}

func TestMinMaxIgnoresNaN(t *testing.T) {
	x := FromSlice([]float32{1, float32(math.NaN()), -2}, 3)
	mn, mx := x.MinMax()
	if mn != -2 || mx != 1 {
		t.Errorf("MinMax with NaN: %v %v", mn, mx)
	}
}

func TestUniformRange(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(-2, 5)
		if v < -2 || v >= 5 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(5)
	c1 := r.Split()
	c2 := r.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Error("split children should differ")
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestPercentileEmptyAndSingle(t *testing.T) {
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
	if Percentile([]float32{7}, 99) != 7 {
		t.Error("single-element percentile")
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h := NewHistogram([]float32{0, 1}, 2, 0, 2)
	if h.BinCenter(0) != 0.5 || h.BinCenter(1) != 1.5 {
		t.Errorf("bin centers: %v %v", h.BinCenter(0), h.BinCenter(1))
	}
}

func TestHistogramDegenerateRange(t *testing.T) {
	// max <= min gets widened instead of dividing by zero.
	h := NewHistogram([]float32{1, 1, 1}, 4, 1, 1)
	if h.Total != 3 {
		t.Errorf("total = %d", h.Total)
	}
}

func TestSQNRZeroNoise(t *testing.T) {
	if !math.IsInf(SQNR([]float32{1, 2}, []float32{1, 2}), 1) {
		t.Error("zero noise must be +Inf dB")
	}
}

func TestMSEMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MSE([]float32{1}, []float32{1, 2})
}
