package fp8

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTable1Constants(t *testing.T) {
	cases := []struct {
		f            Format
		bias         int
		max          float64
		minSubnormal float64
		hasInf       bool
	}{
		{E5M2, 15, 57344.0, math.Ldexp(1, -16), true},
		{E4M3, 7, 448.0, math.Ldexp(1, -9), false},
		{E3M4, 3, 30.0, math.Ldexp(1, -6), false},
	}
	for _, c := range cases {
		if c.f.Bias != c.bias {
			t.Errorf("%s bias = %d, want %d", c.f, c.f.Bias, c.bias)
		}
		if got := c.f.MaxValue(); got != c.max {
			t.Errorf("%s max = %v, want %v", c.f, got, c.max)
		}
		if got := c.f.MinSubnormal(); got != c.minSubnormal {
			t.Errorf("%s min subnormal = %v, want %v", c.f, got, c.minSubnormal)
		}
		if got := c.f.HasInf(); got != c.hasInf {
			t.Errorf("%s hasInf = %v, want %v", c.f, got, c.hasInf)
		}
	}
	// Paper Table 1 quotes approximate min values; check within 5%.
	approx := []struct {
		f   Format
		min float64
	}{{E5M2, 1.5e-5}, {E4M3, 1.9e-3}, {E3M4, 1.5e-2}}
	for _, c := range approx {
		got := c.f.MinSubnormal()
		if math.Abs(got-c.min)/c.min > 0.05 {
			t.Errorf("%s min subnormal = %v, want approx %v", c.f, got, c.min)
		}
	}
}

// TestRoundTripAllCodes checks Decode->Encode is the identity on every
// finite code point of every format (up to ±0 sign preservation).
func TestRoundTripAllCodes(t *testing.T) {
	for _, f := range Formats {
		for b := 0; b < 256; b++ {
			c := uint8(b)
			v := f.Decode(c)
			if math.IsNaN(v) {
				if !f.IsNaN(f.Encode(v)) {
					t.Errorf("%s code %#02x: NaN did not re-encode to NaN", f, c)
				}
				continue
			}
			got := f.Encode(v)
			if got != c {
				// -0 encodes back to 0x80; +0 to 0x00; both decode to 0.
				if v == 0 && got&0x7F == 0 && c&0x7F == 0 {
					continue
				}
				t.Errorf("%s code %#02x (val %v): re-encoded to %#02x", f, c, v, got)
			}
		}
	}
}

// TestEncodeNearest verifies Encode picks the closest grid point by
// brute force over the full code space.
func TestEncodeNearest(t *testing.T) {
	inputs := []float64{0, 1e-9, 1e-6, 0.001, 0.017, 0.3, 0.5, 0.75, 1,
		1.1, 2.5, 3.14159, 7.7, 29, 31, 100, 447, 449, 1000, 57000, 60000,
		-0.3, -2.5, -448, -1e5}
	for _, f := range Formats {
		for _, x := range inputs {
			got := f.Decode(f.Encode(x))
			if math.IsInf(got, 0) {
				if math.Abs(x) <= f.MaxValue() {
					t.Errorf("%s Encode(%v) overflowed to Inf", f, x)
				}
				continue
			}
			best := math.Inf(1)
			for b := 0; b < 256; b++ {
				v := f.Decode(uint8(b))
				if math.IsNaN(v) || math.IsInf(v, 0) {
					continue
				}
				// Saturating behaviour: clamp target into range.
				xc := x
				if xc > f.MaxValue() {
					xc = f.MaxValue()
				}
				if xc < -f.MaxValue() {
					xc = -f.MaxValue()
				}
				if d := math.Abs(v - xc); d < best {
					best = d
				}
			}
			xc := x
			if xc > f.MaxValue() {
				xc = f.MaxValue()
			}
			if xc < -f.MaxValue() {
				xc = -f.MaxValue()
			}
			if d := math.Abs(got - xc); d > best+1e-12 {
				t.Errorf("%s Quantize(%v) = %v (err %v), nearest grid err %v",
					f, x, got, d, best)
			}
		}
	}
}

func TestSpecialValues(t *testing.T) {
	for _, f := range Formats {
		if !math.IsNaN(f.Decode(f.Encode(math.NaN()))) {
			t.Errorf("%s: NaN not preserved", f)
		}
		inf := f.Decode(f.Encode(math.Inf(1)))
		if f.HasInf() {
			if !math.IsInf(inf, 1) {
				t.Errorf("%s: +Inf should stay Inf, got %v", f, inf)
			}
		} else if inf != f.MaxValue() {
			t.Errorf("%s: +Inf should saturate to %v, got %v", f, f.MaxValue(), inf)
		}
		ninf := f.Decode(f.Encode(math.Inf(-1)))
		if f.HasInf() {
			if !math.IsInf(ninf, -1) {
				t.Errorf("%s: -Inf should stay -Inf, got %v", f, ninf)
			}
		} else if ninf != -f.MaxValue() {
			t.Errorf("%s: -Inf should saturate to %v, got %v", f, -f.MaxValue(), ninf)
		}
		if f.Decode(f.Encode(0)) != 0 {
			t.Errorf("%s: zero not preserved", f)
		}
	}
}

func TestSaturation(t *testing.T) {
	// Extended formats saturate; E5M2 overflows to Inf well past max.
	if got := E4M3.Quantize(1e6); got != 448 {
		t.Errorf("E4M3.Quantize(1e6) = %v, want 448", got)
	}
	if got := E3M4.Quantize(-1e6); got != -30 {
		t.Errorf("E3M4.Quantize(-1e6) = %v, want -30", got)
	}
	if got := E5M2.Quantize(1e9); !math.IsInf(got, 1) {
		t.Errorf("E5M2.Quantize(1e9) = %v, want +Inf", got)
	}
	// Just above max but below the rounding midpoint stays at max.
	if got := E5M2.Quantize(57345); got != 57344 {
		t.Errorf("E5M2.Quantize(57345) = %v, want 57344", got)
	}
}

func TestSubnormalBoundary(t *testing.T) {
	for _, f := range Formats {
		mn := f.MinNormal()
		ms := f.MinSubnormal()
		if got := f.Quantize(mn); got != mn {
			t.Errorf("%s: min normal %v quantized to %v", f, mn, got)
		}
		if got := f.Quantize(ms); got != ms {
			t.Errorf("%s: min subnormal %v quantized to %v", f, ms, got)
		}
		// Halfway between 0 and min subnormal rounds to even (0).
		if got := f.Quantize(ms / 2); got != 0 {
			t.Errorf("%s: ms/2 = %v quantized to %v, want 0", f, ms/2, got)
		}
		// Slightly above halfway rounds up.
		if got := f.Quantize(ms * 0.51); got != ms {
			t.Errorf("%s: 0.51*ms quantized to %v, want %v", f, got, ms)
		}
	}
}

func TestRoundHalfEven(t *testing.T) {
	// 1 + 2^-m steps: value exactly between two grid points must round
	// to the even mantissa.
	for _, f := range Formats {
		step := 1.0 / float64(int64(1)<<f.ManBits)
		// Between 1.0 (mantissa 0, even) and 1+step (mantissa 1, odd):
		if got := f.Quantize(1 + step/2); got != 1 {
			t.Errorf("%s: tie at 1+step/2 = %v, want 1", f, got)
		}
		// Between 1+step and 1+2*step (mantissa 2, even):
		if got := f.Quantize(1 + step*1.5); got != 1+2*step {
			t.Errorf("%s: tie at 1+1.5step = %v, want %v", f, got, 1+2*step)
		}
	}
}

func TestNaNEncodingUniqueness(t *testing.T) {
	// Extended formats: exactly two NaN codes (0x7F, 0xFF).
	for _, f := range []Format{E4M3, E3M4} {
		count := 0
		for b := 0; b < 256; b++ {
			if f.IsNaN(uint8(b)) {
				count++
			}
		}
		if count != 2 {
			t.Errorf("%s: %d NaN encodings, want 2 (±all-ones)", f, count)
		}
	}
	// E5M2: IEEE — 3 NaN mantissa patterns per sign = 6.
	count := 0
	for b := 0; b < 256; b++ {
		if E5M2.IsNaN(uint8(b)) {
			count++
		}
	}
	if count != 6 {
		t.Errorf("E5M2: %d NaN encodings, want 6", count)
	}
}

func TestGridPoints(t *testing.T) {
	for _, f := range Formats {
		pts := f.GridPoints()
		want := 127 // 128 non-negative codes minus the single NaN
		if f.IEEE {
			want = 124 // minus the Inf code and 3 NaN codes
		}
		if len(pts) != want {
			t.Errorf("%s: %d grid points, want %d", f, len(pts), want)
		}
		for i := 1; i < len(pts); i++ {
			if pts[i] <= pts[i-1] {
				t.Errorf("%s: grid not strictly increasing at %d: %v <= %v",
					f, i, pts[i], pts[i-1])
			}
		}
		if pts[0] != 0 {
			t.Errorf("%s: first grid point %v, want 0", f, pts[0])
		}
		if pts[len(pts)-1] != f.MaxValue() {
			t.Errorf("%s: last grid point %v, want %v", f, pts[len(pts)-1], f.MaxValue())
		}
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"E5M2", "E4M3", "E3M4", "e4m3"} {
		if _, err := ByName(n); err != nil {
			t.Errorf("ByName(%q) error: %v", n, err)
		}
	}
	if _, err := ByName("E2M5"); err == nil {
		t.Error("ByName(E2M5) should fail")
	}
}

// Property: quantization is idempotent — Quantize(Quantize(x)) ==
// Quantize(x) for all finite x.
func TestQuantizeIdempotent(t *testing.T) {
	for _, f := range Formats {
		f := f
		prop := func(x float64) bool {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			y := f.Quantize(x)
			if math.IsInf(y, 0) {
				return f.IEEE
			}
			return f.Quantize(y) == y
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("%s: %v", f, err)
		}
	}
}

// Property: quantization is monotone — x <= y implies Q(x) <= Q(y).
func TestQuantizeMonotone(t *testing.T) {
	for _, f := range Formats {
		f := f
		prop := func(a, b float64) bool {
			if math.IsNaN(a) || math.IsNaN(b) {
				return true
			}
			x, y := a, b
			if x > y {
				x, y = y, x
			}
			qx, qy := f.Quantize(x), f.Quantize(y)
			return qx <= qy || math.IsInf(qx, -1)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("%s: %v", f, err)
		}
	}
}

// Property: quantization error is bounded by half the local step size.
func TestQuantizeErrorBound(t *testing.T) {
	for _, f := range Formats {
		f := f
		prop := func(x float64) bool {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			if math.Abs(x) > f.MaxValue() {
				return true // saturation regime
			}
			q := f.Quantize(x)
			step := f.StepAt(x)
			return math.Abs(q-x) <= step/2+1e-15
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("%s: %v", f, err)
		}
	}
}

func TestQuantizeSlice(t *testing.T) {
	src := []float32{0, 0.1, -0.5, 3.2, 500, -500}
	dst := make([]float32, len(src))
	E4M3.QuantizeSlice(dst, src)
	for i, v := range src {
		want := float32(E4M3.Quantize(float64(v)))
		if dst[i] != want {
			t.Errorf("QuantizeSlice[%d] = %v, want %v", i, dst[i], want)
		}
	}
	// In-place aliasing works.
	cp := append([]float32(nil), src...)
	E4M3.QuantizeSlice(cp, cp)
	for i := range cp {
		if cp[i] != dst[i] {
			t.Errorf("in-place QuantizeSlice[%d] = %v, want %v", i, cp[i], dst[i])
		}
	}
}
