// AVX2+FMA microkernels for the packed-panel GEMM (the "avx2"
// variant). One VMOVUPS panel load and eight VBROADCASTSS+VFMADD231PS
// pairs per k — each accumulator lane is updated with a single-rounding
// fused multiply-add, so this tier's scalar oracle is fmaRef (fma.go),
// not the two-rounding naive loop. Per output element the chain is
// still one accumulator, ascending k.
//
// Go assembler operand order: VFMADD231PS src3, src2, dst computes
// dst += src2 * src3 (Intel dst = dst + src2*src3 with operands
// reversed). VZEROUPPER before every RET keeps later SSE code out of
// the AVX-SSE transition penalty.

#include "textflag.h"

// func gemm8x8FMA(x *float32, stride int, p *float32, n int, acc *[64]float32)
//
// Register map: Y0..Y7 the 8×8 accumulator tile (row r in Yr);
// Y8 panel row for the current k; Y9 broadcast scratch. Row pointers:
// SI, AX, BX, R9, R10, R11, R12, R13 (rows 0-7), advanced 4 bytes per k.
TEXT ·gemm8x8FMA(SB), NOSPLIT, $0-40
	MOVQ x+0(FP), SI
	MOVQ stride+8(FP), R8
	MOVQ p+16(FP), DI
	MOVQ n+24(FP), CX
	MOVQ acc+32(FP), DX
	SHLQ $2, R8          // float32 stride -> byte stride
	LEAQ (SI)(R8*1), AX  // row 1
	LEAQ (AX)(R8*1), BX  // row 2
	LEAQ (BX)(R8*1), R9  // row 3
	LEAQ (R9)(R8*1), R10 // row 4
	LEAQ (R10)(R8*1), R11
	LEAQ (R11)(R8*1), R12
	LEAQ (R12)(R8*1), R13 // row 7
	VMOVUPS 0(DX), Y0
	VMOVUPS 32(DX), Y1
	VMOVUPS 64(DX), Y2
	VMOVUPS 96(DX), Y3
	VMOVUPS 128(DX), Y4
	VMOVUPS 160(DX), Y5
	VMOVUPS 192(DX), Y6
	VMOVUPS 224(DX), Y7
	TESTQ CX, CX
	JLE done8

loop8:
	VMOVUPS (DI), Y8
	VBROADCASTSS (SI), Y9
	VFMADD231PS Y8, Y9, Y0
	VBROADCASTSS (AX), Y9
	VFMADD231PS Y8, Y9, Y1
	VBROADCASTSS (BX), Y9
	VFMADD231PS Y8, Y9, Y2
	VBROADCASTSS (R9), Y9
	VFMADD231PS Y8, Y9, Y3
	VBROADCASTSS (R10), Y9
	VFMADD231PS Y8, Y9, Y4
	VBROADCASTSS (R11), Y9
	VFMADD231PS Y8, Y9, Y5
	VBROADCASTSS (R12), Y9
	VFMADD231PS Y8, Y9, Y6
	VBROADCASTSS (R13), Y9
	VFMADD231PS Y8, Y9, Y7
	ADDQ $32, DI
	ADDQ $4, SI
	ADDQ $4, AX
	ADDQ $4, BX
	ADDQ $4, R9
	ADDQ $4, R10
	ADDQ $4, R11
	ADDQ $4, R12
	ADDQ $4, R13
	DECQ CX
	JNZ loop8

done8:
	VMOVUPS Y0, 0(DX)
	VMOVUPS Y1, 32(DX)
	VMOVUPS Y2, 64(DX)
	VMOVUPS Y3, 96(DX)
	VMOVUPS Y4, 128(DX)
	VMOVUPS Y5, 160(DX)
	VMOVUPS Y6, 192(DX)
	VMOVUPS Y7, 224(DX)
	VZEROUPPER
	RET

// func gemm1x8FMA(x, p *float32, n int, acc *[8]float32)
TEXT ·gemm1x8FMA(SB), NOSPLIT, $0-32
	MOVQ x+0(FP), SI
	MOVQ p+8(FP), DI
	MOVQ n+16(FP), CX
	MOVQ acc+24(FP), DX
	VMOVUPS 0(DX), Y0
	TESTQ CX, CX
	JLE done1

loop1:
	VMOVUPS (DI), Y8
	VBROADCASTSS (SI), Y9
	VFMADD231PS Y8, Y9, Y0
	ADDQ $32, DI
	ADDQ $4, SI
	DECQ CX
	JNZ loop1

done1:
	VMOVUPS Y0, 0(DX)
	VZEROUPPER
	RET
