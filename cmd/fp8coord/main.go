// Command fp8coord is the sweep coordinator: a long-running HTTP
// control plane that owns a grid schedule end to end. It derives the
// cell set from the requested experiments, leases cells to pull-based
// fp8bench workers (most expensive first, by a cost model learned from
// observed durations and persisted as a store sidecar), ingests pushed
// payloads into its content-addressed result store under the exact
// -merge conflict rules, and serves live coverage over a long-poll
// endpoint.
//
// Usage:
//
//	fp8coord -exp table3                        coordinate one grid
//	fp8coord -exp all -addr :8123               all experiments, fixed port
//	fp8coord -addr 127.0.0.1:0 -addr-file a.txt ephemeral port for scripts
//	fp8coord -exp table3 -once                  exit when the schedule completes
//	fp8bench -worker http://host:8123           ...then point workers at it
//
// Workers pull: the coordinator never needs their addresses, and a
// crashed worker costs one lease timeout (-lease-ttl), after which the
// cell requeues. SIGINT/SIGTERM drain gracefully: new leases are
// refused, in-flight pushes are accepted until -drain-timeout, the
// cost model is persisted, and the final coverage table is printed.
// Results land in the same store layout as local runs, so a warm
// `fp8bench -exp ...` against the store renders reports byte-identical
// to an unsharded run, and -coverage/-merge work unchanged.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"fp8quant/internal/coord"
	"fp8quant/internal/faultline"
	"fp8quant/internal/harness"
	"fp8quant/internal/resultstore"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "127.0.0.1:0", "listen address (port 0 = ephemeral)")
	addrFile := flag.String("addr-file", "", "write the resolved listen URL to this file (for scripts racing an ephemeral port)")
	exp := flag.String("exp", "all", "comma-separated experiment ids to schedule (or 'all')")
	filterFlag := flag.String("filter", "", `schedule only matching cells, e.g. "model=resnet50;densenet121"`)
	cacheDir := flag.String("cache-dir", defaultCacheDir(), "result-store directory receiving pushed cells (required)")
	leaseTTL := flag.Duration("lease-ttl", 5*time.Minute, "how long a worker may hold a cell before it requeues")
	once := flag.Bool("once", false, "exit once every scheduled cell is done or failed")
	linger := flag.Duration("linger", 5*time.Second, "with -once, keep serving this long after completion so workers observe 'done'")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "on SIGINT/SIGTERM, how long to wait for in-flight leases before exiting")
	flag.Parse()

	if armed, err := faultline.ArmFromEnv(); err != nil {
		fmt.Fprintf(os.Stderr, "fp8coord: %v\n", err)
		return 1
	} else if armed {
		// Chaos runs announce themselves so a log is never mistaken for
		// a clean run; the stats print at exit for replay comparison.
		fmt.Fprintf(os.Stderr, "fp8coord: faultline armed from %s\n", faultline.EnvVar)
		defer fmt.Fprint(os.Stderr, faultline.Report())
	}

	if *cacheDir == "" {
		fmt.Fprintln(os.Stderr, "fp8coord: -cache-dir is required (pushed cells have nowhere to go)")
		return 1
	}
	store, err := resultstore.Open(*cacheDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fp8coord: opening store: %v\n", err)
		return 1
	}
	filter, err := harness.ParseFilter(*filterFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fp8coord: -filter: %v\n", err)
		return 1
	}
	exps, err := resolveExperiments(*exp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fp8coord: %v; ids: %s\n", err, strings.Join(harness.IDs(), ", "))
		return 1
	}

	c, err := coord.New(coord.Config{
		Experiments: exps,
		Filter:      filter,
		Store:       store,
		LeaseTTL:    *leaseTTL,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "fp8coord: %v\n", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fp8coord: listen: %v\n", err)
		return 1
	}
	url := "http://" + ln.Addr().String()
	fmt.Fprintf(os.Stderr, "fp8coord: serving %d experiment(s) on %s (store %s)\n", len(exps), url, store.Dir())
	if *addrFile != "" {
		// Best-effort convenience file; written via temp+rename so a
		// script polling it never reads a half-written URL.
		if err := writeAddrFile(*addrFile, url); err != nil {
			fmt.Fprintf(os.Stderr, "fp8coord: -addr-file: %v\n", err)
			return 1
		}
	}

	srv := &http.Server{Handler: c.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	// Reap expired leases on a ticker so a crashed worker's cell
	// requeues even when no other worker traffic arrives.
	reapDone := make(chan struct{})
	go func() {
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				c.Reap()
			case <-reapDone:
				return
			}
		}
	}()
	defer close(reapDone)

	// Log progress on completion changes (not every lease — that would
	// be a line per cell per worker).
	go logProgress(c)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)

	code := 0
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "fp8coord: %v: draining (no new leases; waiting up to %s for in-flight work)\n", s, *drainTimeout)
		c.Drain()
		waitLeases(c, *drainTimeout)
	case <-c.Done():
		if *once {
			fmt.Fprintf(os.Stderr, "fp8coord: schedule complete; lingering %s so workers observe done\n", *linger)
			time.Sleep(*linger)
		} else {
			// Without -once, completion is not an exit condition: stay up
			// for late workers and watchers until signalled.
			<-sig
			c.Drain()
			waitLeases(c, *drainTimeout)
		}
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "fp8coord: serve: %v\n", err)
		code = 1
	}

	if err := c.PersistCost(); err != nil {
		fmt.Fprintf(os.Stderr, "fp8coord: persisting cost model: %v\n", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "fp8coord: shutdown: %v\n", err)
	}

	snap := c.Snapshot()
	fmt.Fprint(os.Stderr, coord.CoverageText(snap))
	if failed := c.FailedCells(); len(failed) > 0 {
		for _, line := range failed {
			fmt.Fprintf(os.Stderr, "fp8coord: failed cell: %s\n", line)
		}
		code = 1
	}
	if *once && !snap.Complete {
		code = 1
	}
	return code
}

// waitLeases blocks until no leases are outstanding or the timeout
// elapses (leases still out then will simply expire server-side; their
// cells are already in the store or will be recomputed next run).
func waitLeases(c *coord.Coordinator, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if c.ActiveLeases() == 0 {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	fmt.Fprintf(os.Stderr, "fp8coord: drain timeout with %d lease(s) still out\n", c.ActiveLeases())
}

// logProgress prints a one-line summary whenever completed/failed
// counts move.
func logProgress(c *coord.Coordinator) {
	gen := int64(-1)
	lastDone, lastFailed := -1, -1
	for {
		snap := c.AwaitChange(gen, time.Minute)
		gen = snap.Gen
		done, failed, total := 0, 0, 0
		for _, p := range snap.Experiments {
			done += p.Done
			failed += p.Failed
			total += p.Total
		}
		if done != lastDone || failed != lastFailed {
			lastDone, lastFailed = done, failed
			fmt.Fprintf(os.Stderr, "fp8coord: progress: %d/%d cells done, %d failed\n", done, total, failed)
		}
		if snap.Complete {
			return
		}
	}
}

// resolveExperiments expands the -exp argument into experiments.
func resolveExperiments(arg string) ([]harness.Experiment, error) {
	ids := harness.IDs()
	if arg != "all" {
		ids = nil
		for _, id := range strings.Split(arg, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if _, ok := harness.Get(id); !ok {
				return nil, fmt.Errorf("unknown experiment %q", id)
			}
			ids = append(ids, id)
		}
		if len(ids) == 0 {
			return nil, fmt.Errorf("no experiment ids in %q", arg)
		}
	}
	var exps []harness.Experiment
	for _, id := range ids {
		e, _ := harness.Get(id)
		exps = append(exps, e)
	}
	return exps, nil
}

// writeAddrFile writes the URL atomically (temp in the same directory,
// then rename) so concurrent readers see either nothing or the full
// line.
func writeAddrFile(path, url string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".addr-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.WriteString(url + "\n"); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// defaultCacheDir mirrors fp8bench's default store location, so a
// coordinator and local runs share results out of the box.
func defaultCacheDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		return ".fp8bench-cache"
	}
	return filepath.Join(base, "fp8bench")
}
