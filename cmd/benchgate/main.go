// Command benchgate maintains BENCH_kernels.json, the kernel-layer
// perf trajectory, and gates CI on the deterministic half of it.
//
// Usage:
//
//	go test -bench ... -benchmem | benchgate -append [-date D] [-benchtime T]
//	go test -bench ... -benchmem | benchgate -gate
//	benchgate -trend
//
// -trend renders the recorded history as a markdown table with an
// ASCII sparkline per benchmark (ns/op across entries, plus the
// first→latest allocs/op movement), reading only the JSON file — no
// benchmark run required.
//
// -append parses `go test -bench -benchmem` output and appends one
// dated entry to the JSON history (converting the pre-history flat
// array, kept from earlier PRs, into a single "legacy" entry). The
// file accumulates one entry per recorded run, so the perf trajectory
// across PRs stays diffable in-repo.
//
// -gate compares the current run's allocs/op and bytes/op against the
// most recent entry that recorded them, and exits nonzero on
// regression. Wall-clock (ns/op, MB/s) is deliberately not gated: on
// shared CI VMs it flaps far outside any usable tolerance, while
// allocation counts are deterministic properties of the code. See
// allowed() for the per-counter tolerances.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"

	"fp8quant/internal/tensor/kernels"
)

// Result is one benchmark's measurements. MBPerS is a pointer so
// benchmarks that report no throughput serialize as null (the shape
// the legacy flat format used); the -benchmem counters are omitted
// when absent.
type Result struct {
	Name        string   `json:"name"`
	NsPerOp     float64  `json:"ns_per_op"`
	MBPerS      *float64 `json:"mb_per_s"`
	BytesPerOp  *int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64   `json:"allocs_per_op,omitempty"`
}

// Entry is one recorded benchmark run.
type Entry struct {
	Date      string `json:"date"`
	Benchtime string `json:"benchtime,omitempty"`
	// KernelVariant is the GEMM tier the recording host dispatched
	// (avx2, sse, generic). -gate only compares entries recorded on the
	// same tier: allocation counts are deterministic per code path, and
	// the avx2 tier's 8-row blocking is a different code path. Entries
	// predating the field (empty) are compatible with any tier.
	KernelVariant string   `json:"kernel_variant,omitempty"`
	Results       []Result `json:"results"`
}

func main() {
	appendMode := flag.Bool("append", false, "append a dated entry to the JSON history")
	gateMode := flag.Bool("gate", false, "gate allocs/op and bytes/op against the latest recorded entry")
	trendMode := flag.Bool("trend", false, "render the recorded history as a markdown trend report")
	jsonPath := flag.String("json", "BENCH_kernels.json", "path of the benchmark history file")
	date := flag.String("date", "", "entry date for -append (default: today, UTC)")
	benchtime := flag.String("benchtime", "", "benchtime label recorded with the entry")
	variant := flag.String("variant", string(kernels.Active()),
		"kernel variant the benchmarks ran on: recorded by -append, matched by -gate (default: this host's dispatch)")
	flag.Parse()

	modes := 0
	for _, m := range []bool{*appendMode, *gateMode, *trendMode} {
		if m {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(os.Stderr, "benchgate: exactly one of -append, -gate or -trend is required")
		os.Exit(2)
	}

	if *trendMode {
		entries, err := readEntries(*jsonPath)
		if err != nil {
			fatal(err)
		}
		trend(entries, *jsonPath, os.Stdout)
		return
	}

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	cur, err := parseBench(in)
	if err != nil {
		fatal(err)
	}
	if len(cur) == 0 {
		fatal(fmt.Errorf("no benchmark lines in input (need `go test -bench` output)"))
	}

	entries, err := readEntries(*jsonPath)
	if err != nil {
		fatal(err)
	}

	if *appendMode {
		d := *date
		if d == "" {
			d = time.Now().UTC().Format("2006-01-02")
		}
		entries = append(entries, Entry{Date: d, Benchtime: *benchtime, KernelVariant: *variant, Results: cur})
		buf, err := json.MarshalIndent(entries, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchgate: appended entry %s (%d benchmarks) to %s\n", d, len(cur), *jsonPath)
		return
	}

	if failures := gate(entries, cur, *variant, os.Stdout); failures > 0 {
		fmt.Printf("\nbenchgate: %d allocation regression(s) against the recorded baseline\n", failures)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
	os.Exit(2)
}

var benchNameRe = regexp.MustCompile(`-\d+$`)

// parseBench extracts per-benchmark measurements from `go test -bench`
// output. Value/unit pairs follow the iteration count; unknown units
// are skipped so future testing-package additions stay harmless.
func parseBench(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		res := Result{Name: benchNameRe.ReplaceAllString(f[0], "")}
		for i := 2; i+1 < len(f); i += 2 {
			val, unit := f[i], f[i+1]
			switch unit {
			case "ns/op":
				res.NsPerOp, _ = strconv.ParseFloat(val, 64)
			case "MB/s":
				if v, err := strconv.ParseFloat(val, 64); err == nil {
					res.MBPerS = &v
				}
			case "B/op":
				if v, err := strconv.ParseInt(val, 10, 64); err == nil {
					res.BytesPerOp = &v
				}
			case "allocs/op":
				if v, err := strconv.ParseInt(val, 10, 64); err == nil {
					res.AllocsPerOp = &v
				}
			}
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

// readEntries loads the history file. A missing file is an empty
// history; the pre-append-era flat array of results becomes a single
// entry labeled "legacy" so old trajectories are preserved verbatim.
func readEntries(path string) ([]Entry, error) {
	buf, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var probe []map[string]json.RawMessage
	if err := json.Unmarshal(buf, &probe); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(probe) > 0 {
		if _, hasResults := probe[0]["results"]; !hasResults {
			var legacy []Result
			if err := json.Unmarshal(buf, &legacy); err != nil {
				return nil, fmt.Errorf("%s (legacy format): %v", path, err)
			}
			return []Entry{{Date: "legacy", Results: legacy}}, nil
		}
	}
	var entries []Entry
	if err := json.Unmarshal(buf, &entries); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return entries, nil
}

// gate compares the current run against the latest entry carrying
// -benchmem counters and returns the number of regressions. Only
// benchmarks present in both runs participate; wall-clock is not
// compared. Entries recorded on a different kernel variant are
// skipped — the avx2 tier's 8-row blocking is a different code path
// with its own allocation profile — while legacy entries with no
// recorded variant match any tier.
func gate(entries []Entry, cur []Result, variant string, w io.Writer) int {
	var base map[string]Result
	baseDate := ""
	for i := len(entries) - 1; i >= 0; i-- {
		if entries[i].KernelVariant != "" && entries[i].KernelVariant != variant {
			continue
		}
		for _, r := range entries[i].Results {
			if r.AllocsPerOp != nil {
				base = map[string]Result{}
				for _, br := range entries[i].Results {
					base[br.Name] = br
				}
				baseDate = entries[i].Date
				break
			}
		}
		if base != nil {
			break
		}
	}
	if base == nil {
		fmt.Fprintf(w, "benchgate: no recorded entry for variant %q carries allocs/op; nothing to gate against\n", variant)
		return 0
	}

	fmt.Fprintf(w, "benchgate: gating against entry %s\n", baseDate)
	fmt.Fprintf(w, "%-44s %22s %22s  %s\n", "benchmark", "allocs/op (base→cur)", "bytes/op (base→cur)", "status")
	failures, compared := 0, 0
	for _, c := range cur {
		b, ok := base[c.Name]
		if !ok || b.AllocsPerOp == nil || c.AllocsPerOp == nil {
			continue
		}
		compared++
		pass := *c.AllocsPerOp <= allowed(*b.AllocsPerOp, 10, 2)
		if b.BytesPerOp != nil && c.BytesPerOp != nil && *c.BytesPerOp > allowed(*b.BytesPerOp, 25, 4096) {
			pass = false
		}
		status := "ok"
		if !pass {
			status = "FAIL"
			failures++
		}
		fmt.Fprintf(w, "%-44s %22s %22s  %s\n", c.Name,
			pairString(b.AllocsPerOp, c.AllocsPerOp),
			pairString(b.BytesPerOp, c.BytesPerOp), status)
	}
	if compared == 0 {
		fmt.Fprintln(w, "benchgate: no benchmark overlaps the recorded baseline; nothing gated")
	}
	return failures
}

// sparkChars are the ASCII levels of the trend sparkline, slowest
// (highest ns/op) to fastest.
const sparkChars = "#%*=~-,."

// spark maps a ns/op series to one ASCII character per entry, scaled
// to the series' own min..max (a flat series renders as all '-').
// Entries where the benchmark is absent render as a space.
func spark(vals []float64) string {
	mn, mx := 0.0, 0.0
	first := true
	for _, v := range vals {
		if v <= 0 {
			continue
		}
		if first || v < mn {
			mn = v
		}
		if first || v > mx {
			mx = v
		}
		first = false
	}
	var b strings.Builder
	for _, v := range vals {
		switch {
		case v <= 0:
			b.WriteByte(' ')
		case mx == mn:
			b.WriteByte('-')
		default:
			lvl := int((mx - v) / (mx - mn) * float64(len(sparkChars)-1))
			b.WriteByte(sparkChars[lvl])
		}
	}
	return b.String()
}

// trend renders the recorded history as a markdown table: one row per
// benchmark (in latest-entry order), first and latest ns/op, the
// percentage change between them, the latest allocs/op, and an ASCII
// sparkline over every dated entry.
func trend(entries []Entry, path string, w io.Writer) {
	if len(entries) == 0 {
		fmt.Fprintf(w, "benchgate: %s holds no entries; nothing to trend\n", path)
		return
	}
	fmt.Fprintf(w, "## Kernel benchmark trend — %s\n\n", path)
	fmt.Fprintf(w, "%d entries, %s → %s. Sparkline: `%c` slowest … `%c` fastest, per-benchmark scale.\n\n",
		len(entries), entries[0].Date, entries[len(entries)-1].Date,
		sparkChars[0], sparkChars[len(sparkChars)-1])
	fmt.Fprintln(w, "| benchmark | first ns/op | latest ns/op | change | allocs/op | trend |")
	fmt.Fprintln(w, "|---|---:|---:|---:|---:|---|")
	latest := entries[len(entries)-1]
	for _, r := range latest.Results {
		series := make([]float64, len(entries))
		for i, e := range entries {
			for _, er := range e.Results {
				if er.Name == r.Name {
					series[i] = er.NsPerOp
					break
				}
			}
		}
		firstNs := 0.0
		for _, v := range series {
			if v > 0 {
				firstNs = v
				break
			}
		}
		change := "n/a"
		if firstNs > 0 && r.NsPerOp > 0 {
			change = fmt.Sprintf("%+.1f%%", (r.NsPerOp-firstNs)/firstNs*100)
		}
		allocs := "-"
		if r.AllocsPerOp != nil {
			allocs = strconv.FormatInt(*r.AllocsPerOp, 10)
		}
		fmt.Fprintf(w, "| %s | %.0f | %.0f | %s | %s | `%s` |\n",
			r.Name, firstNs, r.NsPerOp, change, allocs, spark(series))
	}
}

// allowed is the regression ceiling: baseline + pct% with an absolute
// slack floor. Allocation counts get a tight band (10%, +2): they are
// a deterministic property of the code for a given b.N. Bytes/op gets
// a wider one (25%, +4096): pooled-scratch growth amortizes over the
// iteration count, which differs between the recorded benchtime and
// the gate's fixed-count run.
func allowed(baseline, pct, slack int64) int64 {
	tol := baseline * pct / 100
	if tol < slack {
		tol = slack
	}
	return baseline + tol
}

func pairString(base, cur *int64) string {
	f := func(p *int64) string {
		if p == nil {
			return "-"
		}
		return strconv.FormatInt(*p, 10)
	}
	return f(base) + "→" + f(cur)
}
