package analyzers

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Fixture tests: each testdata package seeds violations marked with
// trailing `// want <check> "substring"` comments. The analyzer must
// report exactly the marked lines (message containing the substring)
// and nothing else; //fp8vet:ignore directives in the fixture must
// suppress their finding and be counted.

var wantRe = regexp.MustCompile(`// want (\w+) "([^"]*)"`)

type wantMark struct {
	file   string
	line   int
	check  string
	substr string
}

func loadFixture(t *testing.T, dirs ...string) []*Package {
	t.Helper()
	var pkgs []*Package
	for _, d := range dirs {
		p, err := LoadDir(filepath.Join("testdata", d))
		if err != nil {
			t.Fatalf("LoadDir(%s): %v", d, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs
}

func fixtureWants(pkgs []*Package) []wantMark {
	var out []wantMark
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					out = append(out, wantMark{file: pos.Filename, line: pos.Line, check: m[1], substr: m[2]})
				}
			}
		}
	}
	return out
}

// checkFixture runs one analyzer over the fixture dirs and compares
// findings against the want markers and the expected ignore count.
func checkFixture(t *testing.T, check string, wantIgnored int, dirs ...string) {
	t.Helper()
	pkgs := loadFixture(t, dirs...)
	as, err := ByName(check)
	if err != nil {
		t.Fatal(err)
	}
	results := RunAll(pkgs, as)
	var got []Finding
	ignored := 0
	for _, r := range results {
		got = append(got, r.Findings...)
		ignored += r.Ignored
	}
	wants := fixtureWants(pkgs)
	matched := make([]bool, len(wants))
	for _, f := range got {
		ok := false
		for i, w := range wants {
			if !matched[i] && w.check == f.Check && w.file == f.Pos.Filename &&
				w.line == f.Pos.Line && strings.Contains(f.Message, w.substr) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("missing finding at %s:%d: [%s] want message containing %q", w.file, w.line, w.check, w.substr)
		}
	}
	if ignored != wantIgnored {
		t.Errorf("ignored = %d, want %d", ignored, wantIgnored)
	}
}

func TestMapiterFixture(t *testing.T)    { checkFixture(t, "mapiter", 1, "mapiter") }
func TestNondetermFixture(t *testing.T)  { checkFixture(t, "nondeterm", 1, "nondeterm") }
func TestFloatorderFixture(t *testing.T) { checkFixture(t, "floatorder", 1, "kernels") }
func TestAtomicwriteFixture(t *testing.T) {
	checkFixture(t, "atomicwrite", 2, "resultstore", "storeclient")
}
func TestCellpurityFixture(t *testing.T) { checkFixture(t, "cellpurity", 1, "cellpurity") }

// TestDirectiveHygiene: a reason-less or unknown-check ignore is
// itself a finding, and suppresses nothing.
func TestDirectiveHygiene(t *testing.T) {
	pkgs := loadFixture(t, "directives")
	as, err := ByName("mapiter")
	if err != nil {
		t.Fatal(err)
	}
	results := RunAll(pkgs, as)
	var got []Finding
	for _, r := range results {
		got = append(got, r.Findings...)
		if r.Ignored != 0 {
			t.Errorf("analyzer %s ignored %d findings; malformed directives must not suppress", r.Analyzer.Name, r.Ignored)
		}
	}
	want := []struct {
		check, substr string
		line          int
	}{
		{"directive", `unknown check "nosuchcheck"`, 9},
		{"directive", "has no reason", 10},
		{"mapiter", "fmt.Println", 12},
	}
	for _, w := range want {
		found := false
		for _, f := range got {
			if f.Check == w.check && f.Pos.Line == w.line && strings.Contains(f.Message, w.substr) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing %s finding at line %d containing %q (got %v)", w.check, w.line, w.substr, got)
		}
	}
	if len(got) != len(want) {
		t.Errorf("got %d findings, want %d: %v", len(got), len(want), got)
	}
}

// TestRepoClean is the self-check: the real tree must satisfy every
// contract the suite enforces (modulo its reasoned ignores) — the
// fp8vet CI gate in test form.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the full module")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, r := range RunAll(pkgs, All()) {
		for _, f := range r.Findings {
			t.Errorf("%s", f)
		}
	}
}

// TestVariantAnalyzesBuildTagExcludedFiles proves the loader sees the
// other build configuration: a contraction hidden behind a !amd64 (or
// amd64) tag must be reported no matter which side of the tag the
// host is on.
func TestVariantAnalyzesBuildTagExcludedFiles(t *testing.T) {
	dir := t.TempDir()
	kdir := filepath.Join(dir, "kernels")
	if err := os.MkdirAll(kdir, 0o755); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		"go.mod": "module variantfix\n\ngo 1.21\n",
		"kernels/inner_amd64.go": `//go:build amd64

package kernels

func inner(acc, v, b float32) float32 {
	return acc + float32(v*b)
}
`,
		"kernels/inner_generic.go": `//go:build !amd64

package kernels

func inner(acc, v, b float32) float32 {
	return acc + v*b
}
`,
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2 (base + build-tag variant)", len(pkgs))
	}
	as, err := ByName("floatorder")
	if err != nil {
		t.Fatal(err)
	}
	var got []Finding
	for _, r := range RunAll(pkgs, as) {
		got = append(got, r.Findings...)
	}
	if len(got) != 1 {
		t.Fatalf("got %d findings, want exactly the generic-side contraction: %v", len(got), got)
	}
	if base := filepath.Base(got[0].Pos.Filename); base != "inner_generic.go" {
		t.Errorf("finding in %s, want inner_generic.go", base)
	}
	if !strings.Contains(got[0].Message, "contraction") {
		t.Errorf("message %q does not mention contraction", got[0].Message)
	}
}
