package resultstore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// findKinds returns the report's finding kinds in order.
func findKinds(rep FsckReport) []string {
	var out []string
	for _, f := range rep.Findings {
		out = append(out, f.Kind)
	}
	return out
}

func hasKind(rep FsckReport, kind string) bool {
	for _, f := range rep.Findings {
		if f.Kind == kind {
			return true
		}
	}
	return false
}

func TestFsckCleanStore(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveCell(testKey(), testResult()); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveManifest(testManifest()); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveSidecar("costmodel.json", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Fsck(FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy() || rep.Damage != 0 {
		t.Fatalf("clean store unhealthy: %+v", rep)
	}
	if rep.Cells != 1 || rep.Manifests != 1 || rep.Sidecars != 1 {
		t.Fatalf("counts = %d/%d/%d", rep.Cells, rep.Manifests, rep.Sidecars)
	}
	if len(rep.Findings) != 0 {
		t.Fatalf("clean store findings: %v", findKinds(rep))
	}
}

func TestFsckFindsAndRepairsDamage(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey()
	if err := s.SaveCell(k, testResult()); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveManifest(testManifest()); err != nil {
		t.Fatal(err)
	}
	// Damage 1: a torn tmp file.
	if err := os.WriteFile(filepath.Join(dir, ".cell-torn.tmp"), []byte(`{"partial`), 0o644); err != nil {
		t.Fatal(err)
	}
	// Damage 2: a corrupt cell (truncated valid bytes) under a store name.
	goodBytes, err := os.ReadFile(s.CellPath(k))
	if err != nil {
		t.Fatal(err)
	}
	corruptName := "c-" + strings.Repeat("ab", 16) + ".json"
	if err := os.WriteFile(filepath.Join(dir, corruptName), goodBytes[:len(goodBytes)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	// Damage 3: a valid cell stored under the wrong fingerprint.
	wrongName := "c-" + strings.Repeat("cd", 16) + ".json"
	if err := os.WriteFile(filepath.Join(dir, wrongName), goodBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	// Damage 4: a corrupt manifest.
	badManifest := "m-" + strings.Repeat("ef", 16) + ".json"
	if err := os.WriteFile(filepath.Join(dir, badManifest), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := s.Fsck(FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Healthy() {
		t.Fatalf("damaged store reported healthy: %+v", rep)
	}
	if rep.Damage != 4 || rep.Repaired != 0 {
		t.Fatalf("damage/repaired = %d/%d, findings %v", rep.Damage, rep.Repaired, findKinds(rep))
	}
	for _, kind := range []string{FindTornTmp, FindCorruptCell, FindMismatchedCell, FindCorruptManifest} {
		if !hasKind(rep, kind) {
			t.Fatalf("missing finding %s in %v", kind, findKinds(rep))
		}
	}

	// Repair quarantines all four; the store is healthy afterwards and
	// the good cell+manifest survive untouched.
	rep, err = s.Fsck(FsckOptions{Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy() || rep.Repaired != 4 {
		t.Fatalf("repair run: %+v", rep)
	}
	rep, err = s.Fsck(FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy() || len(rep.Findings) != 0 || rep.Cells != 1 {
		t.Fatalf("post-repair store not clean: %+v", rep)
	}
	if _, ok := s.LoadCell(k); !ok {
		t.Fatal("repair lost the healthy cell")
	}
	// The quarantined files are all present in quarantine/.
	qents, err := os.ReadDir(filepath.Join(dir, QuarantineDir))
	if err != nil || len(qents) != 4 {
		t.Fatalf("quarantine dir: %v, %v", qents, err)
	}
}

func TestFsckTmpAgeSkipsFreshWrites(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ".cell-live.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Fsck(FsckOptions{TmpAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy() || len(rep.Findings) != 0 {
		t.Fatalf("fresh tmp flagged despite TmpAge: %+v", rep)
	}
	rep, err = s.Fsck(FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Healthy() || !hasKind(rep, FindTornTmp) {
		t.Fatalf("zero TmpAge must flag every tmp: %+v", rep)
	}
}

func TestFsckCrossChecks(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// A manifest whose only cell is absent → incomplete-grid.
	if err := s.SaveManifest(testManifest()); err != nil {
		t.Fatal(err)
	}
	// A healthy cell no manifest references → orphan-cell.
	orphan := testKey()
	orphan.Seed = 99
	if err := s.SaveCell(orphan, testResult()); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Fsck(FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy() {
		t.Fatalf("informational findings must not be damage: %+v", rep)
	}
	if !hasKind(rep, FindIncompleteGrid) || !hasKind(rep, FindOrphanCell) {
		t.Fatalf("findings = %v", findKinds(rep))
	}
}

func TestFsckIgnoresStaleSchemaAndForeign(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Legacy schema-1 whole-grid blob (bare hex name).
	legacy := strings.Repeat("12", 16) + ".json"
	if err := os.WriteFile(filepath.Join(dir, legacy), []byte(`{"schema":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	// A stale-schema cell.
	stale := "c-" + strings.Repeat("34", 16) + ".json"
	if err := os.WriteFile(filepath.Join(dir, stale), []byte(`{"schema":1,"key":{},"result":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	// A file with a name the store could never produce.
	if err := os.WriteFile(filepath.Join(dir, ".hidden-notes"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Fsck(FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy() {
		t.Fatalf("stale/foreign files must be informational: %+v", rep)
	}
	staleCount := 0
	for _, f := range rep.Findings {
		if f.Kind == FindStaleSchema {
			staleCount++
		}
	}
	if staleCount != 2 || !hasKind(rep, FindForeign) {
		t.Fatalf("findings = %v", findKinds(rep))
	}
}

func TestFsckDeterministicOrder(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{".b.tmp", ".a.tmp", "c-" + strings.Repeat("ff", 16) + ".json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	rep1, err := s.Fsck(FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := s.Fsck(FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep1.Findings) != 3 {
		t.Fatalf("findings = %v", findKinds(rep1))
	}
	for i := range rep1.Findings {
		if rep1.Findings[i] != rep2.Findings[i] {
			t.Fatalf("nondeterministic report:\n%v\n%v", rep1.Findings, rep2.Findings)
		}
		if i > 0 && rep1.Findings[i].File < rep1.Findings[i-1].File {
			t.Fatalf("unsorted findings: %+v", rep1.Findings)
		}
	}
}

func TestMergeAndPruneSkipQuarantine(t *testing.T) {
	srcDir, dstDir := t.TempDir(), t.TempDir()
	src, err := Open(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := Open(dstDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.SaveCell(testKey(), testResult()); err != nil {
		t.Fatal(err)
	}
	// Corrupt a second cell and quarantine it.
	bad := "c-" + strings.Repeat("aa", 16) + ".json"
	if err := os.WriteFile(filepath.Join(srcDir, bad), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Fsck(FsckOptions{Repair: true}); err != nil {
		t.Fatal(err)
	}
	st, err := dst.Merge(src)
	if err != nil {
		t.Fatal(err)
	}
	if st.CellsCopied != 1 {
		t.Fatalf("merge stats = %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dstDir, bad)); !os.IsNotExist(err) {
		t.Fatal("merge propagated a quarantined cell")
	}
	if _, err := src.Prune(0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(srcDir, QuarantineDir, bad)); err != nil {
		t.Fatalf("prune touched quarantine: %v", err)
	}
}
