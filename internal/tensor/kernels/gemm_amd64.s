// SSE microkernels for the packed-panel GEMM. Plain MOVUPS loads,
// MULPS then ADDPS per lane — the exact scalar mul/add sequence per
// output element, eight elements per instruction pair. SSE1 only, so
// every amd64 target Go supports runs this path.

#include "textflag.h"

// func gemm4x8SSE(x0, x1, x2, x3, p *float32, n int, acc *[32]float32)
//
// Register map: X0/X1 panel columns 0-3/4-7 for the current k;
// X2/X3 broadcast+product scratch; X4..X11 the 4×8 accumulator tile
// (X4=row0 cols0-3, X5=row0 cols4-7, X6=row1 lo, ... X11=row3 hi).
TEXT ·gemm4x8SSE(SB), NOSPLIT, $0-56
	MOVQ x0+0(FP), SI
	MOVQ x1+8(FP), DI
	MOVQ x2+16(FP), R8
	MOVQ x3+24(FP), R9
	MOVQ p+32(FP), DX
	MOVQ n+40(FP), CX
	MOVQ acc+48(FP), AX
	MOVUPS 0(AX), X4
	MOVUPS 16(AX), X5
	MOVUPS 32(AX), X6
	MOVUPS 48(AX), X7
	MOVUPS 64(AX), X8
	MOVUPS 80(AX), X9
	MOVUPS 96(AX), X10
	MOVUPS 112(AX), X11
	TESTQ CX, CX
	JLE done4

loop4:
	MOVUPS (DX), X0
	MOVUPS 16(DX), X1

	MOVSS (SI), X2
	SHUFPS $0, X2, X2
	MOVAPS X2, X3
	MULPS X0, X2
	ADDPS X2, X4
	MULPS X1, X3
	ADDPS X3, X5

	MOVSS (DI), X2
	SHUFPS $0, X2, X2
	MOVAPS X2, X3
	MULPS X0, X2
	ADDPS X2, X6
	MULPS X1, X3
	ADDPS X3, X7

	MOVSS (R8), X2
	SHUFPS $0, X2, X2
	MOVAPS X2, X3
	MULPS X0, X2
	ADDPS X2, X8
	MULPS X1, X3
	ADDPS X3, X9

	MOVSS (R9), X2
	SHUFPS $0, X2, X2
	MOVAPS X2, X3
	MULPS X0, X2
	ADDPS X2, X10
	MULPS X1, X3
	ADDPS X3, X11

	ADDQ $32, DX
	ADDQ $4, SI
	ADDQ $4, DI
	ADDQ $4, R8
	ADDQ $4, R9
	DECQ CX
	JNZ loop4

done4:
	MOVUPS X4, 0(AX)
	MOVUPS X5, 16(AX)
	MOVUPS X6, 32(AX)
	MOVUPS X7, 48(AX)
	MOVUPS X8, 64(AX)
	MOVUPS X9, 80(AX)
	MOVUPS X10, 96(AX)
	MOVUPS X11, 112(AX)
	RET

// func gemm1x8SSE(x, p *float32, n int, acc *[8]float32)
TEXT ·gemm1x8SSE(SB), NOSPLIT, $0-32
	MOVQ x+0(FP), SI
	MOVQ p+8(FP), DX
	MOVQ n+16(FP), CX
	MOVQ acc+24(FP), AX
	MOVUPS 0(AX), X4
	MOVUPS 16(AX), X5
	TESTQ CX, CX
	JLE done1

loop1:
	MOVUPS (DX), X0
	MOVUPS 16(DX), X1
	MOVSS (SI), X2
	SHUFPS $0, X2, X2
	MOVAPS X2, X3
	MULPS X0, X2
	ADDPS X2, X4
	MULPS X1, X3
	ADDPS X3, X5
	ADDQ $32, DX
	ADDQ $4, SI
	DECQ CX
	JNZ loop1

done1:
	MOVUPS X4, 0(AX)
	MOVUPS X5, 16(AX)
	RET
