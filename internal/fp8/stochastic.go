package fp8

import (
	"math"
	"sort"
	"sync"

	"fp8quant/internal/tensor"
)

// gridCache memoizes each format's non-negative grid for neighbour
// lookups.
var gridCache sync.Map // Format -> []float64

func (f Format) grid() []float64 {
	if v, ok := gridCache.Load(f); ok {
		return v.([]float64)
	}
	g := f.GridPoints()
	gridCache.Store(f, g)
	return g
}

// EncodeStochastic converts x to an 8-bit code with stochastic rounding:
// the value rounds up with probability proportional to its position
// between the two neighbouring grid points, making the rounding error
// zero-mean. Stochastic rounding is the rounding mode used by FP8
// *training* work (Wang et al. 2018; Mellempudi et al. 2019); the
// paper's inference pipeline uses round-to-nearest-even (Encode), and
// this variant exists for the training-oriented extension studies.
func (f Format) EncodeStochastic(x float64, r *tensor.RNG) uint8 {
	if math.IsNaN(x) || math.IsInf(x, 0) || x == 0 {
		return f.Encode(x)
	}
	var sign uint8
	ax := x
	if math.Signbit(x) {
		sign = 0x80
		ax = -x
	}
	if ax >= f.MaxValue() {
		return f.Encode(x)
	}
	// Find the two neighbouring grid points via floor-rounding.
	lo := f.floorQuantize(ax)
	hi := f.nextUp(lo)
	//fp8vet:ignore floatorder exact grid-point landing test: lo is copied from the grid slice (or is ax itself), never recomputed, so the bits compare exactly
	if lo == ax {
		return sign | f.Encode(ax)&0x7F
	}
	p := (ax - lo) / (hi - lo)
	v := lo
	if r.Float64() < p {
		v = hi
	}
	code := f.Encode(v)
	return sign | code&0x7F
}

// QuantizeStochastic rounds x to the grid with stochastic rounding.
func (f Format) QuantizeStochastic(x float64, r *tensor.RNG) float64 {
	return f.Decode(f.EncodeStochastic(x, r))
}

// floorQuantize returns the largest representable value <= ax (ax > 0,
// within range).
func (f Format) floorQuantize(ax float64) float64 {
	g := f.grid()
	// First index with g[i] > ax; the floor is the previous point.
	i := sort.SearchFloat64s(g, ax)
	//fp8vet:ignore floatorder binary-search exact-membership test against stored grid values; no arithmetic on either side
	if i < len(g) && g[i] == ax {
		return ax
	}
	if i == 0 {
		return 0
	}
	return g[i-1]
}

// nextUp returns the next representable value above v (v >= 0, below
// max).
func (f Format) nextUp(v float64) float64 {
	g := f.grid()
	i := sort.SearchFloat64s(g, v)
	//fp8vet:ignore floatorder binary-search exact-membership test against stored grid values; no arithmetic on either side
	if i < len(g) && g[i] == v {
		i++
	}
	if i >= len(g) {
		return g[len(g)-1]
	}
	return g[i]
}

// prevDown returns the next representable value below v (v > 0).
func (f Format) prevDown(v float64) float64 {
	g := f.grid()
	i := sort.SearchFloat64s(g, v)
	if i == 0 {
		return 0
	}
	return g[i-1]
}
