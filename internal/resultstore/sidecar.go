// Sidecar files: small named artifacts that live next to a store's
// content-addressed cells without being part of them — the sweep
// coordinator's learned cost model is the canonical example. Results
// and manifests must stay byte-identical across local, sharded and
// coordinated runs, so operational state like observed cell durations
// can never ride inside cell payloads; a sidecar gives it the same
// atomic temp+rename durability without touching content addresses.
// Sidecar names are deliberately constrained so they can never collide
// with the store's own "c-*/m-*" files (Merge and Prune skip them as
// foreign, which is exactly right: a cost model is per-deployment
// state, not shared results).

package resultstore

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
)

// sidecarNamePattern is the allowed shape of a sidecar name: a simple
// relative file name, no separators, not hidden, not ".tmp" (reserved
// for in-flight atomic writes), and not matching the store's own
// content-addressed file pattern.
var sidecarNamePattern = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]*$`)

// validSidecarName rejects names that could collide with store files
// or escape the store directory.
func validSidecarName(name string) error {
	if !sidecarNamePattern.MatchString(name) || filepath.Base(name) != name {
		return fmt.Errorf("resultstore: invalid sidecar name %q", name)
	}
	if storeFilePattern.MatchString(name) {
		return fmt.Errorf("resultstore: sidecar name %q collides with the store's content-addressed files", name)
	}
	if filepath.Ext(name) == ".tmp" {
		return fmt.Errorf("resultstore: sidecar name %q uses the reserved .tmp suffix", name)
	}
	return nil
}

// SidecarPath returns the file a sidecar is stored at.
func (s *Store) SidecarPath(name string) string {
	return filepath.Join(s.dir, name)
}

// SaveSidecar atomically persists a named sidecar next to the store's
// cells (temp file + rename, like every other store write).
func (s *Store) SaveSidecar(name string, b []byte) error {
	if s == nil {
		return fmt.Errorf("resultstore: SaveSidecar on a nil store")
	}
	if err := validSidecarName(name); err != nil {
		return err
	}
	return s.writeAtomic(s.SidecarPath(name), b)
}

// LoadSidecar returns a sidecar's bytes, or false when absent (or the
// name is invalid — an invalid name can never have been saved).
func (s *Store) LoadSidecar(name string) ([]byte, bool) {
	if s == nil || validSidecarName(name) != nil {
		return nil, false
	}
	b, err := os.ReadFile(s.SidecarPath(name))
	if err != nil {
		return nil, false
	}
	return b, true
}
