// Package kernels holds the blocked compute kernels behind the nn
// layer forward paths: a register-tiled, worker-pool-parallel GEMM for
// y = x·Wᵀ (Linear, im2col convolution, attention BMMs) in both
// transposed- and natural-B layouts.
//
// Bit-identity contract (per variant): for every output element y[r,o]
// the kernels perform exactly the same float32 operation sequence as
// the variant's scalar oracle — one accumulator, products x[r,k]·b[k,o]
// combined in ascending k order, bias either seeding the accumulator
// (prologue, convolution) or added once after the sum (epilogue,
// Linear). The speedup comes only from parallelism across *independent*
// output elements — an mr-row × 8-column register tile turns the serial
// FP-add latency chain into mr·8 concurrent chains (SIMD lanes on
// amd64, ILP elsewhere) — plus packed weight panels (contiguous loads,
// less weight traffic per row block) and hoisted bounds checks; a sum
// is never reassociated or vectorized across k. Results are therefore
// byte-identical to the variant's scalar reference for any shape, any
// worker count, and any chunking of the row range. (The one
// unspecifiable corner is the payload of NaN·NaN products, which the
// scalar Go expression does not pin down either.)
//
// Variants (see variant.go): the generic and sse tiers round every
// multiply and add separately, matching the naive two-rounding loop;
// the avx2 tier uses fused multiply-adds that round once per update
// and pins to the fused oracle fmaRef instead. Which tier ran is part
// of a result's provenance — callers record Active() alongside any
// kernel-derived artifact.
package kernels

import (
	"sync"

	"fp8quant/internal/tensor"
)

const (
	// nr is the register-tile width and the packed panel width, shared
	// by every variant; the tile height mr is per-variant (kernel.mr).
	nr = 8

	// minParallelOps is the smallest number of multiply-adds handed to
	// one worker; below it the goroutine handoff costs more than the
	// arithmetic.
	minParallelOps = 1 << 15
)

// Opt carries the optional parts of a GEMM call.
type Opt struct {
	// Bias, when non-nil, has length out and is folded into the kernel.
	Bias []float32
	// Prologue seeds each accumulator with Bias[o] before the k loop
	// (convolution semantics: acc starts at the bias). When false the
	// bias is added once after the sum (Linear semantics).
	Prologue bool
	// Serial skips the worker-pool fan-out; used by callers that are
	// already running inside a parallel region (e.g. per-batch BMMs).
	Serial bool
	// NoFused pins the call to two-rounding semantics under every
	// variant: when the active tier is fused (avx2) the call falls back
	// to the best non-fused tier (sse on amd64, generic elsewhere).
	// Convolution sets it because its interior-GEMM vs direct-border
	// dispatch is a pure performance choice whose two paths must agree
	// bit for bit — and the scalar border loop cannot cheaply reproduce
	// fused rounding. Conv results are therefore variant-independent.
	NoFused bool
}

// panelPool recycles packed weight panels and other scratch buffers.
var panelPool sync.Pool // *[]float32

// GetScratch returns a float32 scratch buffer with at least n elements
// from the shared pool. The contents are undefined.
func GetScratch(n int) *[]float32 {
	if p, ok := panelPool.Get().(*[]float32); ok {
		if cap(*p) >= n {
			*p = (*p)[:n]
			return p
		}
	}
	s := make([]float32, n)
	return &s
}

// PutScratch returns a buffer obtained from GetScratch to the pool.
func PutScratch(p *[]float32) { panelPool.Put(p) }

// GemmT computes y[r,o] = Σ_k x[r,k]·w[o,k] (+ bias): x is row-major
// [rows, in], w is row-major [out, in] (i.e. Bᵀ, the Linear weight
// layout), y is row-major [rows, out].
func GemmT(y, x, w []float32, rows, in, out int, opt Opt) {
	if rows <= 0 || out <= 0 {
		return
	}
	pp := PackT(w, in, out)
	run(y, x, *pp, rows, in, out, opt)
	PutScratch(pp)
}

// PackT packs w (row-major [out, in]) into the micro-panel layout the
// microkernels consume, in a pooled buffer. Callers multiplying the
// same weights against several row blocks (e.g. one panel per
// convolution group reused across the batch) pack once and run
// GemmPacked per block; return the buffer with PutScratch.
func PackT(w []float32, in, out int) *[]float32 {
	npan := (out + nr - 1) / nr
	pp := GetScratch(npan * in * nr)
	packT(*pp, w, in, out)
	return pp
}

// PanelFloats returns the float32 length of the packed panel for a
// [rows=out, cols=in] weight (both packT and packN layouts). Callers
// carving panels from a preallocated arena size them with this.
func PanelFloats(in, out int) int {
	npan := (out + nr - 1) / nr
	return npan * in * nr
}

// PackTInto packs w (row-major [out, in], the Linear weight layout)
// into panel, which must have at least PanelFloats(in, out) elements.
// The packing is a pure copy (zero-filled nr tail), so repacking into
// a reused buffer writes identical bytes every time.
func PackTInto(panel, w []float32, in, out int) { packT(panel, w, in, out) }

// PackNInto packs b (row-major [in, out], the natural matmul layout)
// into panel, which must have at least PanelFloats(in, out) elements.
func PackNInto(panel, b []float32, in, out int) { packN(panel, b, in, out) }

// GemmPacked is GemmT against a panel already packed by PackT.
func GemmPacked(y, x, panel []float32, rows, in, out int, opt Opt) {
	if rows <= 0 || out <= 0 {
		return
	}
	run(y, x, panel, rows, in, out, opt)
}

// GemmN computes y[r,o] = Σ_k x[r,k]·b[k,o] (+ bias): b is row-major
// [in, out] (the natural matmul layout).
func GemmN(y, x, b []float32, rows, in, out int, opt Opt) {
	if rows <= 0 || out <= 0 {
		return
	}
	npan := (out + nr - 1) / nr
	pp := GetScratch(npan * in * nr)
	packN(*pp, b, in, out)
	run(y, x, *pp, rows, in, out, opt)
	PutScratch(pp)
}

// packT packs w (row-major [out, in]; rows are output columns) into
// nr-wide micro panels: panel[pj*in*nr + k*nr + j] = w[(pj*nr+j)*in+k],
// zero-filled for the out%nr tail so the microkernel can always read
// nr lanes. The zero lanes are never stored to y, so their values are
// irrelevant (even 0·Inf = NaN stays local to a dead lane).
func packT(panel, w []float32, in, out int) {
	npan := (out + nr - 1) / nr
	for pj := 0; pj < npan; pj++ {
		o0 := pj * nr
		cols := out - o0
		if cols > nr {
			cols = nr
		}
		dst := panel[pj*in*nr : (pj+1)*in*nr]
		if cols == nr {
			// Full panel: the nr source rows are contiguous in w, so this
			// is an 8-row interleave a transpose kernel can do in one pass
			// (amd64) or a fused row walk (elsewhere) instead of the
			// j-outer form's nr strided crossings of the panel. Same bytes
			// either way — packing is a pure copy.
			packPanel8(dst, w[o0*in:(o0+nr)*in], in)
			continue
		}
		for j := 0; j < cols; j++ {
			src := w[(o0+j)*in : (o0+j+1)*in]
			for k, v := range src {
				dst[k*nr+j] = v
			}
		}
		for j := cols; j < nr; j++ {
			for k := 0; k < in; k++ {
				dst[k*nr+j] = 0
			}
		}
	}
}

// packPanel8Go interleaves nr contiguous source rows (src is row-major
// [nr, in]) into one full micro panel, columns [from, in). The pure-Go
// path for non-amd64 hosts and the k%4 tail of the amd64 transpose
// kernel.
func packPanel8Go(dst, src []float32, in, from int) {
	r0 := src[0*in : 1*in][:in:in]
	r1 := src[1*in : 2*in][:in:in]
	r2 := src[2*in : 3*in][:in:in]
	r3 := src[3*in : 4*in][:in:in]
	r4 := src[4*in : 5*in][:in:in]
	r5 := src[5*in : 6*in][:in:in]
	r6 := src[6*in : 7*in][:in:in]
	r7 := src[7*in : 8*in][:in:in]
	d := dst[from*nr:]
	for k := from; k < in; k++ {
		d[7] = r7[k] // stores len(d) ≥ 8, eliding the checks below
		d[0], d[1], d[2], d[3] = r0[k], r1[k], r2[k], r3[k]
		d[4], d[5], d[6] = r4[k], r5[k], r6[k]
		d = d[8:]
	}
}

// packN packs b (row-major [in, out]) into the same micro-panel layout
// as packT: panel[pj*in*nr + k*nr + j] = b[k*out + pj*nr + j].
func packN(panel, b []float32, in, out int) {
	npan := (out + nr - 1) / nr
	for pj := 0; pj < npan; pj++ {
		o0 := pj * nr
		cols := out - o0
		if cols > nr {
			cols = nr
		}
		dst := panel[pj*in*nr : (pj+1)*in*nr]
		for k := 0; k < in; k++ {
			src := b[k*out+o0 : k*out+o0+cols]
			d := dst[k*nr : k*nr+nr]
			for j, v := range src {
				d[j] = v
			}
			for j := cols; j < nr; j++ {
				d[j] = 0
			}
		}
	}
}

// run drives the packed panels over the row range, fanning row blocks
// out over the shared worker pool unless opt.Serial. Each row's output
// is computed independently of where chunk boundaries fall, so any
// worker count yields identical bytes.
func run(y, x, panel []float32, rows, in, out int, opt Opt) {
	if in == 0 {
		// Empty reduction: y is the bias (or zero), per element.
		for r := 0; r < rows; r++ {
			yr := y[r*out : (r+1)*out]
			for o := range yr {
				if opt.Bias != nil {
					yr[o] = opt.Bias[o]
				} else {
					yr[o] = 0
				}
			}
		}
		return
	}
	if opt.Serial {
		// The closure below escapes into the worker pool, costing one
		// heap allocation per call; the serial path (planned forwards,
		// per-batch BMMs) calls the range body directly so steady-state
		// planned GEMMs allocate nothing.
		runRange(y, x, panel, 0, rows, in, out, opt)
		return
	}
	body := func(lo, hi int) {
		runRange(y, x, panel, lo, hi, in, out, opt)
	}
	grain := 1
	if w := in * out; w < minParallelOps {
		grain = (minParallelOps + w - 1) / w
	}
	tensor.ParallelFor(rows, grain, body)
}

// runRange computes output rows [lo, hi) in blocks of the dispatched
// variant's tile height; chunk boundaries never change any row's
// result (the block and row kernels share one per-row operation
// sequence).
func runRange(y, x, panel []float32, lo, hi, in, out int, opt Opt) {
	k := active
	if opt.NoFused && k.fused {
		k = twoRounding
	}
	for r := lo; r < hi; {
		rb := hi - r
		if rb > k.mr {
			rb = k.mr
		}
		blockRowsOf(k, y, x, panel, r, rb, in, out, opt)
		r += rb
	}
}

// blockRowsGeneric computes rb (≤ 4) consecutive output rows against
// every packed panel with the portable tier while the x rows stay hot
// in cache. Like its per-variant amd64 siblings it calls the
// microkernels directly — through a function-pointer field the
// stack-array-backed accumulator tile would escape, costing one heap
// allocation per block.
func blockRowsGeneric(y, x, panel []float32, r, rb, in, out int, opt Opt) {
	npan := (out + nr - 1) / nr
	for pj := 0; pj < npan; pj++ {
		o0 := pj * nr
		cols := out - o0
		if cols > nr {
			cols = nr
		}
		p := panel[pj*in*nr : (pj+1)*in*nr]
		if rb == 4 {
			var acc [4 * nr]float32
			initAcc(acc[:], o0, cols, opt)
			generic4x8(x[r*in:], p, in, acc[:])
			storeAcc(y, acc[:], r, 4, o0, cols, out, opt)
		} else {
			for i := 0; i < rb; i++ {
				var acc [nr]float32
				initAcc(acc[:nr], o0, cols, opt)
				generic1x8(x[(r+i)*in:], p, in, acc[:nr])
				storeAcc(y, acc[:nr], r+i, 1, o0, cols, out, opt)
			}
		}
	}
}

// initAcc seeds the accumulator tile: bias per column for prologue
// mode, zero otherwise (padded lanes always start at zero harmlessly —
// they are never stored).
func initAcc(acc []float32, o0, cols int, opt Opt) {
	if opt.Prologue && opt.Bias != nil {
		for j := 0; j < cols; j++ {
			b := opt.Bias[o0+j]
			for r := 0; r < len(acc)/nr; r++ {
				acc[r*nr+j] = b
			}
		}
	}
}

// storeAcc applies the epilogue bias and writes the valid columns of
// the accumulator tile to y.
func storeAcc(y, acc []float32, r, rows, o0, cols, out int, opt Opt) {
	epi := !opt.Prologue && opt.Bias != nil
	for i := 0; i < rows; i++ {
		a := acc[i*nr : i*nr+nr]
		yr := y[(r+i)*out+o0 : (r+i)*out+o0+cols]
		if epi {
			for j := range yr {
				yr[j] = a[j] + opt.Bias[o0+j]
			}
		} else {
			copy(yr, a[:cols])
		}
	}
}
