package fp8

import (
	"math"
	"testing"
	"testing/quick"
)

func TestInt8SymmetricBasics(t *testing.T) {
	q := NewInt8Symmetric(127)
	if q.Scale != 1 {
		t.Fatalf("scale = %v, want 1", q.Scale)
	}
	for _, c := range []struct {
		in   float64
		want float64
	}{{0, 0}, {1, 1}, {-1, -1}, {126.4, 126}, {127.6, 127}, {200, 127}, {-200, -127}} {
		if got := q.Quantize(c.in); got != c.want {
			t.Errorf("Quantize(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestInt8SymmetricDegenerate(t *testing.T) {
	for _, absmax := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		q := NewInt8Symmetric(absmax)
		if q.Scale != 1 {
			t.Errorf("NewInt8Symmetric(%v).Scale = %v, want 1", absmax, q.Scale)
		}
	}
}

// Property: symmetric INT8 error within range is bounded by scale/2.
func TestInt8ErrorBound(t *testing.T) {
	prop := func(x float64, absmax float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(absmax) {
			return true
		}
		absmax = math.Abs(absmax)
		if absmax == 0 || absmax > 1e30 {
			return true
		}
		q := NewInt8Symmetric(absmax)
		if math.Abs(x) > absmax {
			return true // clipping regime
		}
		return math.Abs(q.Quantize(x)-x) <= q.Scale/2+1e-12*absmax
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: INT8 quantization is monotone.
func TestInt8Monotone(t *testing.T) {
	q := NewInt8Symmetric(10)
	prop := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return q.Quantize(a) <= q.Quantize(b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestInt8Asymmetric(t *testing.T) {
	q := NewInt8Asymmetric(-1, 3)
	if q.Scale <= 0 {
		t.Fatalf("scale = %v", q.Scale)
	}
	// Zero must be exactly representable (requirement for zero-padding
	// correctness in conv layers).
	if got := q.Quantize(0); math.Abs(got) > 1e-9 {
		t.Errorf("Quantize(0) = %v, want ~0", got)
	}
	for _, x := range []float64{-1, -0.5, 0, 0.7, 1.5, 3} {
		got := q.Quantize(x)
		if math.Abs(got-x) > q.Scale/2+1e-12 {
			t.Errorf("Quantize(%v) = %v, err > scale/2", x, got)
		}
	}
	// Out-of-range clamps.
	if got := q.Quantize(100); got > 3+q.Scale {
		t.Errorf("Quantize(100) = %v, should clamp near 3", got)
	}
	if got := q.Quantize(-100); got < -1-q.Scale {
		t.Errorf("Quantize(-100) = %v, should clamp near -1", got)
	}
}

func TestInt8AsymmetricRangeAdjustment(t *testing.T) {
	// All-positive range still includes zero.
	q := NewInt8Asymmetric(2, 5)
	if got := q.Quantize(0); math.Abs(got) > 1e-9 {
		t.Errorf("positive-range Quantize(0) = %v, want 0", got)
	}
	// All-negative range.
	q = NewInt8Asymmetric(-5, -2)
	if got := q.Quantize(0); math.Abs(got) > 1e-9 {
		t.Errorf("negative-range Quantize(0) = %v, want 0", got)
	}
}

func TestInt8GridUniform(t *testing.T) {
	pts := Int8GridPoints(127)
	if len(pts) != 128 {
		t.Fatalf("%d grid points, want 128", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if math.Abs((pts[i]-pts[i-1])-1) > 1e-12 {
			t.Errorf("non-uniform INT8 grid at %d", i)
		}
	}
}

// TestOutlierStretchesInt8Grid demonstrates Section 2's argument: one
// large outlier stretches the INT8 grid, while FP8's log-spaced grid
// keeps dense coverage near zero.
func TestOutlierStretchesInt8Grid(t *testing.T) {
	clean := NewInt8Symmetric(1).Scale
	stretched := NewInt8Symmetric(10).Scale
	if stretched <= clean*9 {
		t.Errorf("INT8 step should stretch ~10x with 10x absmax: %v vs %v",
			stretched, clean)
	}
	// FP8's relative step near 0.1 grows at most one binade (2x) when
	// the per-tensor scale absorbs a 10x outlier, versus INT8's exact
	// 10x stretch: the log-spaced grid keeps near-zero precision.
	for _, f := range []Format{E4M3, E3M4} {
		s1 := f.MaxValue() / 1
		s10 := f.MaxValue() / 10
		step1 := f.StepAt(0.1*s1) / s1
		step10 := f.StepAt(0.1*s10) / s10
		if step10 > step1*2.01 {
			t.Errorf("%s: step at 0.1 grew from %v to %v (>2x) with outlier", f, step1, step10)
		}
	}
}
