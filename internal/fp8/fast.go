// Fast codec: a precomputed 256-entry decode table plus a bit-level
// float32 encoder, bit-identical to the scalar reference Encode/Decode
// on every float32 input. Format.Encode/Decode (format.go) stay the
// reference oracle; the exhaustive equivalence tests in fast_test.go
// pin the two paths together.
package fp8

import (
	"math"
	"sync"

	"fp8quant/internal/tensor"
)

// quantGrain is the smallest per-worker chunk of QuantizeSliceParallel;
// below ~16K elements the goroutine handoff costs more than the encode.
const quantGrain = 1 << 14

// Codec holds the precomputed tables for one format. Obtain instances
// via Format.Codec(); they are cached per format and safe for
// concurrent use.
type Codec struct {
	format  Format
	dec     [256]float32
	manBits uint
	bias    int
	nan     uint8
	// overMag is the first magnitude (sign-stripped code value, before
	// clamping to 8 bits) that overflows the finite range; overCode is
	// what an overflowing encode emits (Inf for IEEE formats, ±max for
	// extended formats, which also covers a round up onto the extended
	// NaN pattern).
	overMag  uint32
	overCode uint8
	infCode  uint8
	// slow marks exotic formats (hand-built bias/width combinations
	// outside the 8-bit family) that fall back to the scalar encoder.
	slow bool
}

var codecCache sync.Map // Format -> *Codec

// Codec returns the cached fast codec for the format, building it on
// first use.
func (f Format) Codec() *Codec {
	if c, ok := codecCache.Load(f); ok {
		return c.(*Codec)
	}
	c, _ := codecCache.LoadOrStore(f, newCodec(f))
	return c.(*Codec)
}

func newCodec(f Format) *Codec {
	c := &Codec{format: f, manBits: f.ManBits, bias: f.Bias, nan: f.NaN()}
	for i := 0; i < 256; i++ {
		c.dec[i] = float32(f.Decode(uint8(i)))
	}
	if f.IEEE {
		c.overMag = uint32(f.expField()) << f.ManBits
		c.overCode = uint8(f.expField()) << f.ManBits
	} else {
		c.overMag = 0x7F // the extended NaN pattern and everything above
		c.overCode = f.maxCode()
	}
	c.infCode = c.overCode
	// The bit-level encoder assumes a normal float32 significand for
	// any value landing in the format's normal range, true whenever the
	// format's normal range sits inside float32's (bias <= 126). It
	// also relies on mantissa parity surviving the implicit-bit offset,
	// which needs at least one mantissa bit.
	c.slow = f.ExpBits+f.ManBits != 7 || f.ManBits < 1 || f.Bias > 126
	return c
}

// Format returns the format this codec encodes.
func (c *Codec) Format() Format { return c.format }

// Decode converts an 8-bit code to its float32 value via the lookup
// table (exact: every representable value fits float32).
func (c *Codec) Decode(b uint8) float32 { return c.dec[b] }

// Encode converts a float32 to the nearest representable 8-bit code
// using round-to-nearest-even, operating directly on the IEEE-754 bit
// pattern. It is bit-identical to Format.Encode(float64(x)).
func (c *Codec) Encode(x float32) uint8 {
	if c.slow {
		return c.format.Encode(float64(x))
	}
	bits := math.Float32bits(x)
	sign := uint8(bits >> 24 & 0x80)
	mag32 := bits & 0x7FFFFFFF
	if mag32 >= 0x7F800000 {
		if mag32 > 0x7F800000 {
			return c.nan
		}
		return sign | c.infCode
	}
	if mag32 == 0 {
		return sign // ±0
	}
	e := int(mag32>>23) - 127
	sig := mag32 & 0x7FFFFF
	if e == -127 {
		e = -126 // float32 subnormal: no implicit bit
	} else {
		sig |= 1 << 23
	}
	rawExp := e + c.bias
	m := uint(c.manBits)
	var mag uint32
	if rawExp >= 1 {
		// Normal target range. q covers [2^m, 2^(m+1)]; the additive
		// form folds a mantissa carry straight into the exponent field.
		q := rneShift(sig, 23-m)
		mag = uint32(rawExp-1)<<m + q
	} else {
		// Subnormal target range: round in units of 2^(1-bias-m). A
		// carry to 2^m lands exactly on the min-normal code.
		shift := 24 - int(m) - rawExp // rawExp <= 0, so shift >= 17
		if shift >= 32 {
			return sign // underflows to ±0
		}
		mag = rneShift(sig, uint(shift))
	}
	if mag >= c.overMag {
		return sign | c.overCode
	}
	return sign | uint8(mag)
}

// rneShift rounds sig right by s bits (1 <= s <= 31) to nearest, ties
// to even.
func rneShift(sig uint32, s uint) uint32 {
	q := sig >> s
	rem := sig & (1<<s - 1)
	half := uint32(1) << (s - 1)
	if rem > half || (rem == half && q&1 == 1) {
		q++
	}
	return q
}

// Quantize rounds x to the nearest representable value
// (encode+decode in one step).
func (c *Codec) Quantize(x float32) float32 { return c.dec[c.Encode(x)] }

// QuantizeSlice applies Quantize element-wise, writing into dst (which
// may alias src). It returns dst.
func (c *Codec) QuantizeSlice(dst, src []float32) []float32 {
	if c.slow {
		f := c.format
		for i, v := range src {
			dst[i] = float32(f.Quantize(float64(v)))
		}
		return dst
	}
	for i, v := range src {
		dst[i] = c.dec[c.Encode(v)]
	}
	return dst
}

// QuantizeSliceParallel is QuantizeSlice with the work fanned out in
// chunks over the shared worker pool. Small slices run inline; results
// are bit-identical to the serial path regardless of scheduling.
func (c *Codec) QuantizeSliceParallel(dst, src []float32) []float32 {
	tensor.ParallelFor(len(src), quantGrain, func(lo, hi int) {
		c.QuantizeSlice(dst[lo:hi], src[lo:hi])
	})
	return dst
}

// rescaleMin is the slice length above which QuantizeScaledSlice
// amortizes a 256-entry rescaled decode table; below it the table
// build costs more than the per-element multiply it saves.
const rescaleMin = 256

// QuantizeScaledSlice is the fused static fake-quant kernel: it
// computes dst[i] = Decode(Encode(src[i]*scale)) * inv in a single
// pass, writing into dst (which may alias src) and returning it. For
// slices past rescaleMin the rescale is folded into a stack-local
// decode table (tbl[j] = Decode(j)*inv) and the bit-level encoder is
// inlined into the loop, eliminating both the per-element multiply
// round trip and the per-element call. Results are bit-identical to
// the unfused Quantize(v*scale)*inv expression on every input (the
// fast_test equivalence suite pins the inlined encoder to Encode).
func (c *Codec) QuantizeScaledSlice(dst, src []float32, scale, inv float32) []float32 {
	if c.slow {
		f := c.format
		for i, v := range src {
			dst[i] = float32(f.Quantize(float64(v*scale))) * inv
		}
		return dst
	}
	if len(src) < rescaleMin {
		for i, v := range src {
			dst[i] = c.dec[c.Encode(v*scale)] * inv
		}
		return dst
	}
	var tbl [256]float32
	for j, d := range c.dec {
		tbl[j] = d * inv
	}
	m := c.manBits
	bias := c.bias
	nanCode := c.nan
	overMag, overCode, infCode := c.overMag, c.overCode, c.infCode
	// The loop body mirrors Codec.Encode exactly (see the comments
	// there); duplicated here because Go will not inline Encode and the
	// call is the dominant per-element cost.
	for i, v := range src {
		bits := math.Float32bits(v * scale)
		sign := uint8(bits >> 24 & 0x80)
		mag32 := bits & 0x7FFFFFFF
		var code uint8
		switch {
		case mag32 >= 0x7F800000:
			if mag32 > 0x7F800000 {
				code = nanCode
			} else {
				code = sign | infCode
			}
		case mag32 == 0:
			code = sign
		default:
			e := int(mag32>>23) - 127
			sig := mag32 & 0x7FFFFF
			if e == -127 {
				e = -126
			} else {
				sig |= 1 << 23
			}
			rawExp := e + bias
			var mag uint32
			if rawExp >= 1 {
				mag = uint32(rawExp-1)<<m + rneShift(sig, 23-m)
			} else if shift := 24 - int(m) - rawExp; shift >= 32 {
				mag = 0 // underflows to ±0
			} else {
				mag = rneShift(sig, uint(shift))
			}
			if mag >= overMag {
				code = sign | overCode
			} else {
				code = sign | uint8(mag)
			}
		}
		dst[i] = tbl[code]
	}
	return dst
}
