package harness

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"fp8quant/internal/resultstore"
)

// TestShardDisjointComplete proves the shard plan's core contract on
// real experiment grids and the synthetic one: for several n, the n
// subsets are pairwise disjoint, jointly cover every cell exactly
// once, stay in row-major order, and differ in size by at most one.
func TestShardDisjointComplete(t *testing.T) {
	specs := map[string]GridSpec{}
	for _, id := range []string{"table2", "table3", "fig7", "fig6"} {
		e, ok := Get(id)
		if !ok {
			t.Fatalf("experiment %s not registered", id)
		}
		specs[id] = e.Spec()
	}
	e, _ := newExecTestExp()
	specs["exec-test"] = e.Spec()

	for name, spec := range specs {
		num := spec.NumCells()
		if num == 0 {
			t.Fatalf("%s: spec has no cells", name)
		}
		for _, n := range []int{1, 2, 3, 5, 7, num, num + 3} {
			seen := make([]int, num)
			minSize, maxSize := num+1, -1
			for i := 0; i < n; i++ {
				sub := spec.Shard(i, n)
				if len(sub) < minSize {
					minSize = len(sub)
				}
				if len(sub) > maxSize {
					maxSize = len(sub)
				}
				prev := -1
				for _, j := range sub {
					if j < 0 || j >= num {
						t.Fatalf("%s n=%d shard %d: index %d out of range [0,%d)", name, n, i, j, num)
					}
					if j <= prev {
						t.Errorf("%s n=%d shard %d: indices not strictly increasing", name, n, i)
					}
					prev = j
					seen[j]++
				}
			}
			for j, c := range seen {
				if c != 1 {
					t.Fatalf("%s n=%d: cell %d covered %d times, want exactly 1 (disjoint + complete)", name, n, j, c)
				}
			}
			if maxSize-minSize > 1 {
				t.Errorf("%s n=%d: shard sizes range [%d, %d], want balanced within 1", name, n, minSize, maxSize)
			}
		}
		// Stability: the same (spec, i, n) must always yield the same
		// subset — shard plans are computed independently per process.
		a := fmt.Sprint(spec.Shard(1, 3))
		b := fmt.Sprint(spec.Shard(1, 3))
		if a != b {
			t.Errorf("%s: Shard(1,3) not deterministic: %s vs %s", name, a, b)
		}
	}
}

// TestShardValidate covers the plan's argument checking.
func TestShardValidate(t *testing.T) {
	for _, ok := range []Shard{{}, {Count: 1}, {Count: 3}, {Index: 2, Count: 3}} {
		if err := ok.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []Shard{{Index: 3, Count: 3}, {Index: -1, Count: 3}, {Index: 0, Count: -1}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate(%+v) should error", bad)
		}
	}
	if !(Shard{Count: 2}).Enabled() || (Shard{Count: 1}).Enabled() || (Shard{}).Enabled() {
		t.Error("Enabled: want true only for Count > 1")
	}
}

// TestShardedRunsMergeToIdenticalReport is the sharded-equivalence
// contract end to end: run the grid as 3 disjoint shards into 3
// separate stores (each behind a simulated process boundary), merge
// the stores, and render warm — the report must be byte-identical to
// the unsharded workers=1 run with zero misses and zero recomputes.
func TestShardedRunsMergeToIdenticalReport(t *testing.T) {
	const shards = 3
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			withCleanCache(t)
			SetWorkers(workers)
			defer SetWorkers(0)

			// Reference: unsharded workers=1 run, no store.
			SetWorkers(1)
			SetStore(nil)
			refExp, _ := newExecTestExp()
			ref := Run(refExp)
			ClearMemo()
			SetWorkers(workers)

			// Compute each shard into its own store, as separate
			// "processes" (memo cleared between them).
			n := refExp.Spec().NumCells()
			stores := make([]*resultstore.Store, shards)
			totalComputes := int64(0)
			for i := 0; i < shards; i++ {
				s, err := resultstore.Open(t.TempDir())
				if err != nil {
					t.Fatal(err)
				}
				stores[i] = s
				SetStore(s)
				e, computes := newExecTestExp()
				g, sel, err := RunGrid(e, nil, Shard{Index: i, Count: shards})
				if err != nil {
					t.Fatal(err)
				}
				if len(sel) != n {
					t.Fatalf("shard %d: selection = %d cells, want the full grid %d", i, len(sel), n)
				}
				want := int64(len(e.Spec().Shard(i, shards)))
				if got := computes.Load(); got != want {
					t.Errorf("shard %d computed %d cells, want %d (its slice only)", i, got, want)
				}
				totalComputes += computes.Load()
				// Other shards' cells are absent from this store and
				// must carry the sentinel, not zero values.
				for _, j := range e.Spec().Shard((i+1)%shards, shards) {
					if g.Results[j].Err != ErrNotInShard {
						t.Errorf("shard %d: foreign cell %d = %+v, want ErrNotInShard", i, j, g.Results[j])
					}
				}
				ClearMemo() // next shard is a fresh process
			}
			if totalComputes != int64(n) {
				t.Errorf("shards computed %d cells total, want %d (disjoint, complete)", totalComputes, n)
			}

			// Merge all shard stores into a fresh one.
			merged, err := resultstore.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			copied := 0
			for _, s := range stores {
				st, err := merged.Merge(s)
				if err != nil {
					t.Fatal(err)
				}
				copied += st.CellsCopied
			}
			if copied != n {
				t.Errorf("merge copied %d cells, want %d", copied, n)
			}

			// Warm full run against the merged store: zero computes,
			// zero misses, byte-identical report.
			SetStore(merged)
			e, computes := newExecTestExp()
			before := merged.Stats()
			warm := Run(e)
			if got := computes.Load(); got != 0 {
				t.Errorf("warm run after merge computed %d cells, want 0", got)
			}
			d := merged.Stats()
			if misses := d.Misses - before.Misses; misses != 0 {
				t.Errorf("warm run after merge had %d misses, want 0", misses)
			}
			requireSameReport(t, ref, warm, "merged warm vs unsharded workers=1")

			// The merged manifest must record all three shard slices.
			spec := e.Spec()
			m, ok := merged.LoadManifest(spec.ID, spec.Seed)
			if !ok {
				t.Fatal("merged store lost the grid manifest")
			}
			if len(m.Shards) != shards {
				t.Fatalf("merged manifest shard records = %+v, want %d entries", m.Shards, shards)
			}
			for i, r := range m.Shards {
				if r != (resultstore.ShardRecord{Index: i, Count: shards}) {
					t.Errorf("merged shard record %d = %+v", i, r)
				}
			}
		})
	}
}

// TestShardedRunRendersPresentCells checks a sharded run fills sibling
// shards' cells from the store when they are already there — the
// "render from whatever is present" half of the contract.
func TestShardedRunRendersPresentCells(t *testing.T) {
	withCleanCache(t)
	SetWorkers(1)
	defer SetWorkers(0)
	s, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	SetStore(s)

	// Shard 1/2 runs first and persists its slice.
	e, _ := newExecTestExp()
	if _, _, err := RunGrid(e, nil, Shard{Index: 0, Count: 2}); err != nil {
		t.Fatal(err)
	}
	ClearMemo()

	// Shard 2/2 runs against the same store: shard 1's cells are
	// present and must render as real results, not sentinels.
	e2, computes := newExecTestExp()
	g, _, err := RunGrid(e2, nil, Shard{Index: 1, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	spec := e2.Spec()
	if got, want := computes.Load(), int64(len(spec.Shard(1, 2))); got != want {
		t.Errorf("second shard computed %d cells, want %d", got, want)
	}
	for _, j := range spec.Shard(0, 2) {
		if g.Results[j].Err != "" {
			t.Errorf("cell %d present in store but rendered as error %q", j, g.Results[j].Err)
		}
	}
	// And the report over the shared store is the full one.
	rep := e2.Render(g)
	full, _ := newExecTestExp()
	SetStore(nil)
	ClearMemo()
	SetWorkers(1)
	requireSameReport(t, Run(full), rep, "two sequential shards over one store vs unsharded")
}

// TestShardedFilteredRun checks shard and filter compose: the shard
// slices the *positions* of the filtered selection (not the absolute
// grid indices), and unfiltered cells keep the ErrNotSelected
// sentinel.
func TestShardedFilteredRun(t *testing.T) {
	withCleanCache(t)
	SetWorkers(1)
	defer SetWorkers(0)
	SetStore(nil)
	e, computes := newExecTestExp()
	f := Filter{"model": {"ma", "mb"}} // cells 0..3
	g, sel, err := RunGrid(e, f, Shard{Index: 0, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 4 {
		t.Fatalf("selection = %v, want the 4 filtered cells", sel)
	}
	// Shard 0 of 2 over cells {0,1,2,3} computes positions 0 and 2.
	if got := computes.Load(); got != 2 {
		t.Errorf("computed %d cells, want 2 (shard slice of the filtered selection)", got)
	}
	if g.Results[1].Err != ErrNotInShard || g.Results[3].Err != ErrNotInShard {
		t.Errorf("odd filtered cells should be ErrNotInShard: %+v / %+v", g.Results[1], g.Results[3])
	}
	if g.Results[4].Err != ErrNotSelected || g.Results[5].Err != ErrNotSelected {
		t.Errorf("unfiltered cells should stay ErrNotSelected: %+v / %+v", g.Results[4], g.Results[5])
	}
}

// TestShardedFilteredRunBalancesResidueClasses is the regression test
// for position-based shard slicing: a single-recipe filter on a
// [model, recipe] grid selects indices that all share a residue class
// (1, 3, 5 here) — slicing by absolute index would hand every cell to
// one shard and starve the rest.
func TestShardedFilteredRunBalancesResidueClasses(t *testing.T) {
	withCleanCache(t)
	SetWorkers(1)
	defer SetWorkers(0)
	SetStore(nil)
	f := Filter{"recipe": {"r2"}} // cells 1, 3, 5: all odd
	var total int64
	for i := 0; i < 2; i++ {
		e, computes := newExecTestExp()
		if _, _, err := RunGrid(e, f, Shard{Index: i, Count: 2}); err != nil {
			t.Fatal(err)
		}
		got := computes.Load()
		want := int64(2 - i) // positions {0,2} -> cells {1,5}; position {1} -> cell {3}
		if got != want {
			t.Errorf("shard %d/2 computed %d cells, want %d (balanced over filtered positions)", i+1, got, want)
		}
		total += got
	}
	if total != 3 {
		t.Errorf("both shards computed %d cells total, want all 3 filtered cells", total)
	}
}

// TestShardedRunWritesManifestWithShardRecord checks a full-schedule
// sharded run records the schedule plus its own shard provenance, and
// that a second shard against the same store accumulates records.
func TestShardedRunWritesManifestWithShardRecord(t *testing.T) {
	withCleanCache(t)
	SetWorkers(1)
	defer SetWorkers(0)
	s, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	SetStore(s)
	e, _ := newExecTestExp()
	spec := e.Spec()
	if _, _, err := RunGrid(e, nil, Shard{Index: 2, Count: 3}); err != nil {
		t.Fatal(err)
	}
	m, ok := s.LoadManifest(spec.ID, spec.Seed)
	if !ok {
		t.Fatal("sharded full-schedule run must write the manifest")
	}
	if len(m.Shards) != 1 || m.Shards[0] != (resultstore.ShardRecord{Index: 2, Count: 3}) {
		t.Fatalf("manifest shards = %+v, want [{2 3}]", m.Shards)
	}
	ClearMemo()
	if _, _, err := RunGrid(e, nil, Shard{Index: 0, Count: 3}); err != nil {
		t.Fatal(err)
	}
	m, _ = s.LoadManifest(spec.ID, spec.Seed)
	want := []resultstore.ShardRecord{{Index: 0, Count: 3}, {Index: 2, Count: 3}}
	if len(m.Shards) != 2 || m.Shards[0] != want[0] || m.Shards[1] != want[1] {
		t.Fatalf("manifest shards after second shard = %+v, want %+v", m.Shards, want)
	}
}

// TestCoverageAfterDeletionAndResume mirrors the fp8bench -coverage
// acceptance check at the library layer: a completed store reports
// 100%, deleting k cells reports exactly those k missing, and a resume
// run restores 100%.
func TestCoverageAfterDeletionAndResume(t *testing.T) {
	withCleanCache(t)
	SetWorkers(1)
	defer SetWorkers(0)
	s, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	SetStore(s)
	e, _ := newExecTestExp()
	spec := e.Spec()
	Run(e)
	m, ok := s.LoadManifest(spec.ID, spec.Seed)
	if !ok {
		t.Fatal("completed run must leave a manifest")
	}
	if cov := s.Coverage(m); !cov.Complete() || cov.Percent() != 100 {
		t.Fatalf("completed store coverage = %+v, want complete", cov)
	}

	deleted := []int{0, 3, 5}
	for _, i := range deleted {
		if err := os.Remove(s.CellPath(spec.CellKey(spec.CellAt(i)))); err != nil {
			t.Fatal(err)
		}
	}
	cov := s.Coverage(m)
	if len(cov.Missing) != len(deleted) || cov.Done != spec.NumCells()-len(deleted) {
		t.Fatalf("coverage after deleting %v = %+v, want exactly those missing", deleted, cov)
	}
	for i, idx := range cov.Missing {
		if idx != deleted[i] {
			t.Errorf("missing[%d] = %d, want %d (row-major index of the deleted cell)", i, idx, deleted[i])
		}
	}

	ClearMemo()
	Run(e) // resume recomputes the deleted cells
	if cov := s.Coverage(m); !cov.Complete() {
		t.Fatalf("coverage after resume = %+v, want 100%%", cov)
	}
}

// TestValidateFilterListsAxes checks the unknown-axis error names the
// grid's real axes — the fix for silently-empty filtered sub-grids.
func TestValidateFilterListsAxes(t *testing.T) {
	e, _ := newExecTestExp()
	spec := e.Spec()
	if err := spec.ValidateFilter(Filter{"model": {"ma"}}); err != nil {
		t.Errorf("declared axis rejected: %v", err)
	}
	err := spec.ValidateFilter(Filter{"modle": {"ma"}})
	if err == nil {
		t.Fatal("unknown axis must be rejected")
	}
	for _, want := range []string{"modle", "model", "recipe", "exec-test"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q should mention %q", err, want)
		}
	}
	// RunGrid surfaces it instead of running an empty sub-grid.
	if _, _, err := RunGrid(e, Filter{"modle": {"ma"}}, Shard{}); err == nil || !strings.Contains(err.Error(), "model, recipe") {
		t.Errorf("RunGrid unknown-axis error = %v, want the axis list", err)
	}
	// Scalar experiments say so rather than listing nothing.
	scalar, _ := Get("fig1")
	if err := scalar.Spec().ValidateFilter(Filter{"model": {"x"}}); err == nil || !strings.Contains(err.Error(), "no axes") {
		t.Errorf("scalar ValidateFilter = %v, want a no-axes explanation", err)
	}
}
