package harness

import (
	"fmt"
	"math"

	"fp8quant/internal/evalx"
	"fp8quant/internal/fp8"
	"fp8quant/internal/nn"
	"fp8quant/internal/quant"
	"fp8quant/internal/tensor"
)

func init() {
	registerScalar("fig1",
		"Figure 1: quantized-value grids and MSE, N(0,0.5) + 1% outliers U(-6,6)", runFig1)
	registerScalar("fig3",
		"Figure 3: tensor distribution characterization (range- vs precision-bound)", runFig3)
	registerScalar("fig10",
		"Figure 10 / A.1: KL-clipped vs max-scaled FP8 mapping", runFig10)
	registerGrid("fig8",
		"Figure 8: MSE of mixed FP8 formats vs single format on a BERT-style Linear",
		fig8Spec, runFig8Cell, renderFig8)
}

// fig1Tensor draws the Figure 1 tensor: X ~ N(0, 0.5) with 1% outliers
// uniform in (-mag, mag).
func fig1Tensor(n int, mag float64, seed uint64) []float32 {
	r := tensor.NewRNG(seed)
	x := make([]float32, n)
	sigma := math.Sqrt(0.5)
	for i := range x {
		x[i] = float32(sigma * r.Norm())
	}
	for i := 0; i < n/100; i++ {
		x[r.Intn(n)] = float32(r.Uniform(-mag, mag))
	}
	return x
}

func quantMSE(x []float32, q func(float64) float64) float64 {
	var s float64
	for _, v := range x {
		d := q(float64(v)) - float64(v)
		s += d * d
	}
	return s / float64(len(x))
}

func absmax32(x []float32) float64 {
	m := 0.0
	for _, v := range x {
		if a := math.Abs(float64(v)); a > m {
			m = a
		}
	}
	return m
}

func runFig1() *Report {
	const n = 200000
	vals := map[string]float64{}
	tb := newTable("outlier-mag", "format", "grid pts in 3σ", "MSE")
	for _, mag := range []float64{6, 20} {
		x := fig1Tensor(n, mag, 0xF161)
		am := absmax32(x)
		sigma3 := 3 * math.Sqrt(0.5)
		for _, f := range fp8.Formats {
			scale := f.MaxValue() / am
			in3 := 0
			for _, p := range f.GridPoints() {
				if p/scale <= sigma3 {
					in3++
				}
			}
			mse := quantMSE(x, func(v float64) float64 {
				return f.Quantize(v*scale) / scale
			})
			tb.add(fmt.Sprintf("%.0f", mag), f.Name,
				fmt.Sprintf("%d", in3), fmt.Sprintf("%.3e", mse))
			vals[fmt.Sprintf("mse_%s_mag%.0f", f.Name, mag)] = mse
		}
		qi := fp8.NewInt8Symmetric(am)
		in3 := 0
		for _, p := range fp8.Int8GridPoints(am) {
			if p <= sigma3 {
				in3++
			}
		}
		mse := quantMSE(x, qi.Quantize)
		tb.add(fmt.Sprintf("%.0f", mag), "INT8",
			fmt.Sprintf("%d", in3), fmt.Sprintf("%.3e", mse))
		vals[fmt.Sprintf("mse_INT8_mag%.0f", mag)] = mse
	}
	text := "Figure 1 reproduction (right panel = MSE; centre panel = grid density in the 3σ region).\n" +
		"Paper setup is outlier magnitude 6; magnitude 20 extends to the LLM-scale outlier\n" +
		"regime where both E4M3 and E3M4 dominate INT8 (see EXPERIMENTS.md).\n\n" + tb.String()
	return &Report{Text: text, Values: vals}
}

func runFig3() *Report {
	r := tensor.NewRNG(0xF163)
	// NLP activation: normal bulk + sparse huge channel outliers.
	nlp := tensor.New(4096)
	nlp.FillNormal(r, 0, 1)
	nlp.InjectOutliers(r, 0.005, 40, 60)
	// CV activation: post-BN/ReLU, bounded.
	cv := tensor.New(4096)
	cv.FillNormal(r, 0, 1)
	cv.Apply(func(v float32) float32 {
		if v < 0 {
			return 0
		}
		return v
	})
	// Weights: tight normal.
	w := tensor.New(4096)
	w.FillNormal(r, 0, 0.05)

	tb := newTable("tensor", "absmax", "std", "absmax/std", "kurtosis", "class")
	vals := map[string]float64{}
	row := func(name string, t *tensor.Tensor) {
		ratio := t.AbsMax() / math.Max(t.Std(), 1e-12)
		kurt := t.Kurtosis()
		class := "precision-bound"
		if ratio > 10 {
			class = "range-bound"
		}
		tb.add(name, fmt.Sprintf("%.2f", t.AbsMax()), fmt.Sprintf("%.3f", t.Std()),
			fmt.Sprintf("%.1f", ratio), fmt.Sprintf("%.1f", kurt), class)
		vals["ratio_"+name] = ratio
		vals["kurtosis_"+name] = kurt
	}
	row("nlp_activation", nlp)
	row("cv_activation", cv)
	row("weights", w)
	return &Report{
		Text: "Figure 3 reproduction: NLP activations are range-bound (outliers);\n" +
			"CV activations and weights are precision-bound.\n\n" + tb.String(),
		Values: vals,
	}
}

func runFig10() *Report {
	// The appendix demo: a tensor with outliers near 6; KL calibration
	// clips the range near 2, which buys denser small-value coverage
	// but *increases* MSE for FP8, whose density is already
	// concentrated near zero.
	r := tensor.NewRNG(0xF1610)
	n := 100000
	x := make([]float32, n)
	for i := range x {
		x[i] = float32(math.Sqrt(0.5) * r.Norm())
	}
	for i := 0; i < n/100; i++ {
		x[r.Intn(n)] = float32(r.Uniform(5.5, 6))
	}
	obs := quant.NewHistogramObserver(2048)
	obs.Observe(x)

	am := absmax32(x)
	vals := map[string]float64{}
	tb := newTable("target", "max threshold", "KL threshold", "MSE@max", "MSE@KL")
	// INT8: KL clips below the outlier cluster.
	int8KL := obs.KLThreshold(func(t float64) quant.Quantizer { return fp8.NewInt8Symmetric(t) })
	int8MSEmax := quantMSE(x, fp8.NewInt8Symmetric(am).Quantize)
	int8MSEkl := quantMSE(x, clipThen(int8KL, fp8.NewInt8Symmetric(int8KL).Quantize))
	tb.add("INT8", fmt.Sprintf("%.3f", am), fmt.Sprintf("%.3f", int8KL),
		fmt.Sprintf("%.3e", int8MSEmax), fmt.Sprintf("%.3e", int8MSEkl))
	vals["int8_mse_max"] = int8MSEmax
	vals["int8_mse_kl"] = int8MSEkl
	vals["int8_kl_threshold"] = int8KL

	// E4M3: KL clipping gives no benefit (and typically hurts).
	f := fp8.E4M3
	e4KL := obs.KLThreshold(func(t float64) quant.Quantizer { return quant.NewScaledFP8(f, t) })
	mkQ := func(t float64) func(float64) float64 {
		scale := f.MaxValue() / t
		return func(v float64) float64 { return f.Quantize(v*scale) / scale }
	}
	e4MSEmax := quantMSE(x, mkQ(am))
	e4MSEkl := quantMSE(x, clipThen(e4KL, mkQ(e4KL)))
	tb.add("E4M3", fmt.Sprintf("%.3f", am), fmt.Sprintf("%.3f", e4KL),
		fmt.Sprintf("%.3e", e4MSEmax), fmt.Sprintf("%.3e", e4MSEkl))
	vals["e4m3_mse_max"] = e4MSEmax
	vals["e4m3_mse_kl"] = e4MSEkl
	vals["e4m3_kl_threshold"] = e4KL

	return &Report{
		Text: "Figure 10 / Appendix A.1 reproduction: KL-based range clipping on a tensor\n" +
			"with outliers near 6. The clipped mapping represents small values more densely\n" +
			"yet has LARGER MSE than plain max scaling — the appendix's demonstration that\n" +
			"KL calibration brings nothing to FP8's already log-dense near-zero grid.\n\n" + tb.String(),
		Values: vals,
	}
}

// clipThen clamps |v| to t before quantizing (KL-clipped pipeline).
func clipThen(t float64, q func(float64) float64) func(float64) float64 {
	return func(v float64) float64 {
		if v > t {
			v = t
		} else if v < -t {
			v = -t
		}
		return q(v)
	}
}

// fig8Layer deterministically rebuilds the Figure 8 study unit: a
// BERT-base-style Linear (weights normal, precision-bound) and an input
// batch with channel outliers (range-bound). Each grid cell builds its
// own copy so the format configs quantize in isolation.
func fig8Layer() (*nn.Linear, *tensor.Tensor) {
	r := tensor.NewRNG(0xF168)
	const in, out, rows = 64, 64, 256
	l := nn.NewLinear(in, out)
	for o := 0; o < out; o++ {
		for i := 0; i < in; i++ {
			l.W.Data[o*in+i] = float32(0.12 * r.Norm())
		}
	}
	x := tensor.New(rows, in)
	x.FillNormal(r, 0, 1)
	// Two outlier channels at 50x/35x (MRPC BERT-style activation
	// outliers). Note a documented deviation (EXPERIMENTS.md): with
	// bit-accurate per-tensor max scaling, outlier representation
	// error dominates the raw input MSE and the extra mantissa bit
	// means E3M4's input MSE stays below E4M3's at any outlier ratio;
	// the paper's E3M4 input blow-up is not reproducible at the MSE
	// level. The mixed assignment's advantage shows on the weight
	// side here and at the accuracy level in Table 5.
	for row := 0; row < rows; row++ {
		x.Data[row*in+7] *= 50
		x.Data[row*in+23] *= 35
	}
	return l, x
}

var fig8Cfgs = []struct {
	name     string
	act, wgt quant.DType
}{
	{"E5M2", quant.E5M2, quant.E5M2},
	{"E4M3", quant.E4M3, quant.E4M3},
	{"E3M4", quant.E3M4, quant.E3M4},
	{"Mixed(E4M3 act + E3M4 wgt)", quant.E4M3, quant.E3M4},
}

func fig8Spec() GridSpec {
	labels := make([]string, len(fig8Cfgs))
	for i, c := range fig8Cfgs {
		labels[i] = c.name
	}
	return GridSpec{
		ID:   "fig8",
		Seed: 0xF168,
		Axes: []Axis{{Name: "config", Values: labels}},
	}
}

// runFig8Cell measures one format config on a private rebuild of the
// Figure 8 layer.
func runFig8Cell(c Cell) evalx.Result {
	cfg := fig8Cfgs[c.Index]
	l, x := fig8Layer()
	refOut := l.Forward(x)
	xq := x.Clone()
	fn := quant.StaticFP8Func(cfg.act.Format(), xq.AbsMax())
	fn(xq.Data, xq.Data)
	master := quant.QuantizeWeightPerChannel(l.W, 0, cfg.wgt)
	outQ := l.Forward(xq)
	return evalx.Result{
		Model: "bert_linear", Recipe: cfg.name,
		Metrics: map[string]float64{
			"in_mse":  tensor.MSE(x.Data, xq.Data),
			"w_mse":   tensor.MSE(master, l.W.Data),
			"out_mse": tensor.MSE(refOut.Data, outQ.Data),
		},
	}
}

func renderFig8(g *Grid) *Report {
	vals := map[string]float64{}
	tb := newTable("config", "input MSE", "weight MSE", "output MSE")
	for i, c := range fig8Cfgs {
		r := g.Results[i]
		if r.Err != "" {
			tb.add(c.name, "error: "+r.Err)
			continue
		}
		m := r.Metrics
		tb.add(c.name, fmt.Sprintf("%.4e", m["in_mse"]),
			fmt.Sprintf("%.4e", m["w_mse"]), fmt.Sprintf("%.4e", m["out_mse"]))
		vals["out_mse_"+c.name] = m["out_mse"]
	}
	return &Report{
		Text: "Figure 8 reproduction: output MSE of a Linear with range-bound inputs and\n" +
			"precision-bound weights. Mixed formats pair E4M3's range for activations with\n" +
			"E3M4's precision for weights.\n\n" + tb.String(),
		Values: vals,
	}
}
