// Declarative grid model: an experiment describes its schedule as a
// GridSpec — ordered named axes whose cartesian product is the cell
// set — instead of hiding it inside an opaque run function. Cell
// identity (grid id + axis coordinates + seed + schema version) is
// stable across processes, which is what makes per-cell persistence
// and resume possible: the executor can ask the store for exactly the
// cells it is about to compute.

package harness

import (
	"fmt"
	"sort"
	"strings"

	"fp8quant/internal/evalx"
	"fp8quant/internal/resultstore"
)

// Axis is one named dimension of an experiment grid.
type Axis struct {
	Name   string
	Values []string
}

// GridSpec declares an experiment's cell schedule. The cell order is
// row-major over the axes (last axis fastest), so a [model, recipe]
// spec enumerates all recipes of model 0, then model 1, matching the
// [model][recipe] indexing of the old whole-grid sweeps.
type GridSpec struct {
	// ID is the grid identity. Experiments that share a grid (table2,
	// fig4 and fig5 all consume the Table-2 sweep) declare the same ID
	// and so share memoized and persisted cells.
	ID string
	// Seed is the experiment-level seed, part of every cell identity.
	Seed uint64
	// Axes, outermost first. A spec with no axes has no cells; its
	// experiment computes everything in Render (scalar experiments).
	Axes []Axis
}

// NumCells returns the total cell count (0 for an axis-less spec).
func (s GridSpec) NumCells() int {
	if len(s.Axes) == 0 {
		return 0
	}
	n := 1
	for _, a := range s.Axes {
		n *= len(a.Values)
	}
	return n
}

// Cell is one grid point, handed to RunCell.
type Cell struct {
	// Index is the row-major position in the spec's cell order.
	Index int
	// Coords are the per-axis value indices.
	Coords []int
	// Values are the resolved per-axis values.
	Values []string
}

// CellAt returns the i-th cell in row-major order.
func (s GridSpec) CellAt(i int) Cell {
	c := Cell{
		Index:  i,
		Coords: make([]int, len(s.Axes)),
		Values: make([]string, len(s.Axes)),
	}
	rem := i
	for ai := len(s.Axes) - 1; ai >= 0; ai-- {
		n := len(s.Axes[ai].Values)
		c.Coords[ai] = rem % n
		rem /= n
		c.Values[ai] = s.Axes[ai].Values[c.Coords[ai]]
	}
	return c
}

// CellKey returns the cell's persistent identity for the result store.
func (s GridSpec) CellKey(c Cell) resultstore.CellKey {
	av := make([]resultstore.AxisValue, len(s.Axes))
	for ai, a := range s.Axes {
		av[ai] = resultstore.AxisValue{Axis: a.Name, Value: c.Values[ai]}
	}
	return resultstore.CellKey{Grid: s.ID, Cell: av, Seed: s.Seed, Schema: resultstore.SchemaVersion}
}

// KeyString returns the human-readable cell label
// ("model=resnet50,recipe=E4M3 Static").
func (s GridSpec) KeyString(c Cell) string {
	var b strings.Builder
	for ai, a := range s.Axes {
		if ai > 0 {
			b.WriteByte(',')
		}
		b.WriteString(a.Name)
		b.WriteByte('=')
		b.WriteString(c.Values[ai])
	}
	return b.String()
}

// Grid is an executed (or partially executed) cell grid: the spec plus
// row-major results. Cells that were not selected (filtered runs) stay
// zero-valued.
type Grid struct {
	Spec    GridSpec
	Results []evalx.Result
}

// At returns the result at the given per-axis coordinates.
func (g *Grid) At(coords ...int) evalx.Result {
	if len(coords) != len(g.Spec.Axes) {
		panic(fmt.Sprintf("harness: Grid.At got %d coords for %d axes", len(coords), len(g.Spec.Axes)))
	}
	idx := 0
	for ai, ci := range coords {
		idx = idx*len(g.Spec.Axes[ai].Values) + ci
	}
	return g.Results[idx]
}

// Filter selects a sub-grid: axis name -> allowed values. A cell
// matches when, for every filter axis the spec declares, its value is
// allowed. A filter axis the spec does not declare matches no cell
// (the experiment has no such dimension).
type Filter map[string][]string

// ParseFilter parses the fp8bench -filter syntax:
// "axis=value,axis=value" with ";"-separated alternative values
// ("model=resnet50;densenet121,recipe=E4M3 Static").
func ParseFilter(s string) (Filter, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	f := Filter{}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 || strings.TrimSpace(kv[0]) == "" {
			return nil, fmt.Errorf("bad filter term %q (want axis=value)", part)
		}
		name := strings.TrimSpace(kv[0])
		for _, v := range strings.Split(kv[1], ";") {
			// Trim around separators so "a; b" means ["a", "b"] — an
			// untrimmed " b" would silently match nothing and shrink
			// the sub-grid.
			v = strings.TrimSpace(v)
			if v == "" {
				return nil, fmt.Errorf("bad filter term %q (empty value)", part)
			}
			f[name] = append(f[name], v)
		}
	}
	return f, nil
}

// String formats the filter canonically (sorted axes).
func (f Filter) String() string {
	names := make([]string, 0, len(f))
	for n := range f {
		names = append(names, n)
	}
	sort.Strings(names)
	var parts []string
	for _, n := range names {
		parts = append(parts, n+"="+strings.Join(f[n], ";"))
	}
	return strings.Join(parts, ",")
}

// AxisNames returns the spec's declared axis names in order.
func (s GridSpec) AxisNames() []string {
	out := make([]string, len(s.Axes))
	for i, a := range s.Axes {
		out[i] = a.Name
	}
	return out
}

// UnknownAxes returns, sorted, the filter's axis names the spec does
// not declare — the single source of truth for "does this filter even
// apply here", shared by ValidateFilter and the fp8bench batch
// pre-check.
func (s GridSpec) UnknownAxes(f Filter) []string {
	declared := map[string]bool{}
	for _, a := range s.Axes {
		declared[a.Name] = true
	}
	var unknown []string
	for name := range f {
		if !declared[name] {
			unknown = append(unknown, name)
		}
	}
	sort.Strings(unknown)
	return unknown
}

// ValidateFilter rejects a filter naming an axis the spec does not
// declare. A typo'd axis name would otherwise select an empty sub-grid
// and read like "no cells matched" — the error instead names the
// offending axes and lists what the grid actually has.
func (s GridSpec) ValidateFilter(f Filter) error {
	unknown := s.UnknownAxes(f)
	if len(unknown) == 0 {
		return nil
	}
	if len(s.Axes) == 0 {
		return fmt.Errorf("unknown filter axis %s: grid %s has no axes (scalar experiment)",
			strings.Join(unknown, ", "), s.ID)
	}
	return fmt.Errorf("unknown filter axis %s: grid %s has axes %s",
		strings.Join(unknown, ", "), s.ID, strings.Join(s.AxisNames(), ", "))
}

// Select returns the row-major indices of the cells matching the
// filter (all cells for an empty filter).
func (s GridSpec) Select(f Filter) []int {
	n := s.NumCells()
	if len(f) == 0 {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	// A filter axis the spec does not declare can match nothing.
	declared := map[string]bool{}
	for _, a := range s.Axes {
		declared[a.Name] = true
	}
	for name := range f {
		if !declared[name] {
			return nil
		}
	}
	var out []int
	for i := 0; i < n; i++ {
		c := s.CellAt(i)
		ok := true
		for ai, a := range s.Axes {
			want, filtered := f[a.Name]
			if !filtered {
				continue
			}
			match := false
			for _, v := range want {
				if v == c.Values[ai] {
					match = true
					break
				}
			}
			if !match {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, i)
		}
	}
	return out
}
