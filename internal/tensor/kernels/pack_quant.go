package kernels

// Fused fake-quant panel packing: quantize the B operand while
// scattering it into the micro-panel layout, instead of round-tripping
// the whole tensor through a quantized copy first. This erases one
// full memory pass (write + re-read) over every packed weight or
// activation tensor per GEMM.
//
// Bit-identity: q must be elementwise-pure — quantizing any chunk of
// the tensor must produce exactly the bytes the corresponding slice of
// a whole-tensor q call would (true for every codec quantizer here:
// per-element rounding with a precomputed scale; *not* true for a
// dynamic quantizer that derives its scale from the slice it is
// handed, which is why dynamic recipes bind their absmax before
// returning a chunkable func — see quant.ActQuantFused). Under that
// contract the fused pack writes byte-identical panels to
// quantize-then-PackTInto, so GEMM results are unchanged.

// QuantFunc fake-quantizes src into dst elementwise (dst[i] =
// q(src[i])); dst and src may alias. It mirrors nn.QuantFunc.
type QuantFunc func(dst, src []float32)

// QuantStageFloats returns the stage-buffer length PackTQuantInto and
// PackNQuantInto need for a [in, out] packing (one source row for
// either layout).
func QuantStageFloats(in, out int) int {
	if in > out {
		return in
	}
	return out
}

// PackTQuantInto packs w (row-major [out, in], the Linear weight
// layout) into panel, quantizing each element through q on the way:
// the fused form of q(tmp, w) + PackTInto(panel, tmp, ...). stage must
// have at least in elements and is clobbered; panel needs
// PanelFloats(in, out).
func PackTQuantInto(panel, stage, w []float32, in, out int, q QuantFunc) {
	npan := (out + nr - 1) / nr
	st := stage[:in]
	for pj := 0; pj < npan; pj++ {
		o0 := pj * nr
		cols := out - o0
		if cols > nr {
			cols = nr
		}
		dst := panel[pj*in*nr : (pj+1)*in*nr]
		for j := 0; j < cols; j++ {
			q(st, w[(o0+j)*in:(o0+j+1)*in])
			for k, v := range st {
				dst[k*nr+j] = v
			}
		}
		for j := cols; j < nr; j++ {
			for k := 0; k < in; k++ {
				dst[k*nr+j] = 0
			}
		}
	}
}

// PackNQuantInto packs b (row-major [in, out], the natural matmul
// layout) into panel, quantizing each element through q on the way:
// the fused form of q(tmp, b) + PackNInto(panel, tmp, ...). stage must
// have at least out elements and is clobbered.
func PackNQuantInto(panel, stage, b []float32, in, out int, q QuantFunc) {
	npan := (out + nr - 1) / nr
	st := stage[:out]
	for k := 0; k < in; k++ {
		q(st, b[k*out:(k+1)*out])
		for pj := 0; pj < npan; pj++ {
			o0 := pj * nr
			cols := out - o0
			if cols > nr {
				cols = nr
			}
			d := panel[pj*in*nr+k*nr : pj*in*nr+k*nr+nr]
			copy(d[:cols], st[o0:o0+cols])
			for j := cols; j < nr; j++ {
				d[j] = 0
			}
		}
	}
}

// GemmTQuant is GemmT with the B operand quantized through q during
// packing (fused fake-quant): y[r,o] = Σ_k x[r,k]·q(w)[o,k] (+ bias).
func GemmTQuant(y, x, w []float32, rows, in, out int, q QuantFunc, opt Opt) {
	if rows <= 0 || out <= 0 {
		return
	}
	pp := GetScratch(PanelFloats(in, out))
	sp := GetScratch(QuantStageFloats(in, out))
	PackTQuantInto(*pp, *sp, w, in, out, q)
	run(y, x, *pp, rows, in, out, opt)
	PutScratch(sp)
	PutScratch(pp)
}

// GemmNQuant is GemmN with the B operand quantized through q during
// packing: y[r,o] = Σ_k x[r,k]·q(b)[k,o] (+ bias).
func GemmNQuant(y, x, b []float32, rows, in, out int, q QuantFunc, opt Opt) {
	if rows <= 0 || out <= 0 {
		return
	}
	pp := GetScratch(PanelFloats(in, out))
	sp := GetScratch(QuantStageFloats(in, out))
	PackNQuantInto(*pp, *sp, b, in, out, q)
	run(y, x, *pp, rows, in, out, opt)
	PutScratch(sp)
	PutScratch(pp)
}
