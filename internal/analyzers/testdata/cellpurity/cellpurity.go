// Fixture for the cellpurity check: RunCell bodies and their direct
// in-package callees must not assign package-level variables.
package cellpurityfix

var hits int
var cache = map[string]int{}
var cfg struct{ N int }
var refCache []int

type Cell struct{}

func (Cell) RunCell(key string) int {
	hits++         // want cellpurity "hits"
	cache[key] = 1 // want cellpurity "cache"
	cfg.N = 2      // want cellpurity "cfg"
	viaTwo()
	fillCache()
	return localHelper(key)
}

// localHelper is a direct in-package callee: audited one level deep.
func localHelper(key string) int {
	hits += 1 // want cellpurity "hits"
	return len(key)
}

// viaTwo is audited but clean; deepWrite, two levels down, is outside
// the audited set.
func viaTwo() { deepWrite() }

func deepWrite() { hits = 0 }

// Ignored: a documented exemption suppresses the finding.
func fillCache() {
	//fp8vet:ignore cellpurity fixture exemption: mutex-free compute-once cache, value independent of call order
	refCache = []int{1}
}

type PureCell struct{}

// Negative: cell-local state is the whole point.
func (PureCell) RunCell() int {
	local := map[string]int{}
	local["a"] = 1
	n := 0
	n++
	return n + len(local)
}
