// Store merging and coverage: the distributed-sweep half of the
// result store. Cells are content-addressed, so two stores produced by
// disjoint shards of the same grid merge by copying files — identical
// names either carry identical bytes (the same cell computed twice) or
// expose a real problem (a fingerprint collision or nondeterministic
// cell, which Merge refuses to paper over). Coverage diffs a grid
// manifest against the cells actually on disk, answering "how much of
// this sweep is done here".

package resultstore

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"fp8quant/internal/faultline"
)

// ErrCellConflict marks the unresolvable merge case: the same
// fingerprint holding two different valid payloads (a hash collision
// or a nondeterministic cell). Callers branch on it with errors.Is —
// the coordinator answers it with 409 Conflict (permanent) while every
// other ingest failure is a retryable 500.
var ErrCellConflict = errors.New("resultstore: cell conflict")

// IsCellConflict reports whether err is a cell-conflict error.
func IsCellConflict(err error) bool { return errors.Is(err, ErrCellConflict) }

// ErrBadPayload marks an ingest payload that is not a valid
// current-schema envelope for its claimed fingerprint. Like a
// conflict, it is permanent — re-sending identical bytes cannot
// succeed — unlike the transient I/O failures IngestCell can also
// return.
var ErrBadPayload = errors.New("resultstore: invalid cell payload")

// IsBadPayload reports whether err is a bad-payload error.
func IsBadPayload(err error) bool { return errors.Is(err, ErrBadPayload) }

// MergeStats summarizes one Store.Merge call. Merge traffic is kept
// out of the hit/miss/write Stats counters: those answer "how many
// cells were reused vs recomputed", while a merge moves cells in bulk.
type MergeStats struct {
	// CellsCopied counts cells new to the destination.
	CellsCopied int
	// CellsIdentical counts cells already present with identical bytes.
	CellsIdentical int
	// Manifests counts manifests copied or updated (shard-record union).
	Manifests int
	// Skipped counts source files Merge did not propagate: temp files,
	// legacy or stale-schema entries, corrupt cells, foreign files.
	Skipped int
}

func (m MergeStats) String() string {
	return fmt.Sprintf("%d cells copied, %d identical, %d manifests, %d skipped",
		m.CellsCopied, m.CellsIdentical, m.Manifests, m.Skipped)
}

// Merge copies src's cells and manifests into s. Valid current-schema
// cells are copied by content address: absent in s → copied, present
// with identical bytes → skipped, present with differing bytes → the
// valid entry wins if exactly one side is corrupt, and otherwise Merge
// fails loudly — same fingerprint with two different valid payloads
// means a hash collision or a nondeterministic cell, and silently
// picking a side would make reports depend on merge order. Manifests
// whose schedules agree are unioned (shard provenance accumulates);
// schedules that disagree are an error, because the shards were not
// runs of the same grid. Stale-schema, corrupt and foreign source
// files are skipped, never copied.
func (s *Store) Merge(src *Store) (MergeStats, error) {
	var st MergeStats
	if s == nil || src == nil {
		return st, fmt.Errorf("resultstore: Merge needs both a destination and a source store")
	}
	if sameDir(s.dir, src.dir) {
		return st, nil // merging a store into itself is a no-op
	}
	entries, err := os.ReadDir(src.dir)
	if err != nil {
		return st, fmt.Errorf("resultstore: %w", err)
	}
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		name := ent.Name()
		if !storeFilePattern.MatchString(name) || (!strings.HasPrefix(name, "c-") && !strings.HasPrefix(name, "m-")) {
			st.Skipped++ // temp files, legacy blobs, foreign files
			continue
		}
		srcBytes, err := os.ReadFile(filepath.Join(src.dir, name))
		if err != nil {
			return st, fmt.Errorf("resultstore: merge read %s: %w", name, err)
		}
		if strings.HasPrefix(name, "m-") {
			written, valid, err := s.mergeManifest(srcBytes)
			if err != nil {
				return st, err
			}
			if !valid {
				st.Skipped++
			}
			st.Manifests += written
			continue
		}
		ok, err := s.mergeCell(name, srcBytes, &st)
		if err != nil {
			return st, err
		}
		if !ok {
			st.Skipped++
		}
	}
	return st, nil
}

// mergeCell merges one "c-<fp>.json" source cell; reports false when
// the source entry was invalid and skipped.
func (s *Store) mergeCell(name string, srcBytes []byte, st *MergeStats) (bool, error) {
	if err := faultline.Hit("resultstore.merge.cell"); err != nil {
		return false, fmt.Errorf("resultstore: merge %s: %w", name, err)
	}
	fp, _ := cellFingerprint(name)
	if !validCellBytes(srcBytes, fp) {
		return false, nil
	}
	status, err := s.IngestCell(fp, srcBytes)
	if err != nil {
		return false, err
	}
	switch status {
	case IngestStored:
		st.CellsCopied++
	case IngestIdentical:
		st.CellsIdentical++
	}
	return true, nil
}

// IngestStatus reports what IngestCell did with a payload.
type IngestStatus int

const (
	// IngestStored means the payload was written (the cell was absent,
	// or replaced a corrupt entry).
	IngestStored IngestStatus = iota
	// IngestIdentical means the destination already held byte-identical
	// payload; nothing was written.
	IngestIdentical
)

// IngestCell applies Store.Merge's conflict rules to a single cell
// payload arriving as bytes rather than as a sibling store's file —
// the coordinator's push path. The payload must be a valid
// current-schema cell envelope whose key hashes to fp (a remote worker
// encodes it with EncodeCell); anything else is rejected before
// touching disk. Then: absent → written, byte-identical → skipped,
// corrupt destination → replaced, and two differing valid payloads →
// a hard error naming the fingerprint, exactly as in Merge.
func (s *Store) IngestCell(fp string, payload []byte) (IngestStatus, error) {
	if s == nil {
		return 0, fmt.Errorf("resultstore: IngestCell on a nil store")
	}
	if err := faultline.Hit("resultstore.ingest.begin"); err != nil {
		return 0, fmt.Errorf("resultstore: ingest cell %s: %w", fp, err)
	}
	if !validCellBytes(payload, fp) {
		return 0, fmt.Errorf("%w: payload for cell %s is not a valid current-schema envelope for that fingerprint", ErrBadPayload, fp)
	}
	dstPath := filepath.Join(s.dir, "c-"+fp+".json")
	dstBytes, err := os.ReadFile(dstPath)
	switch {
	case os.IsNotExist(err):
		// Absent in the destination: write.
		if werr := s.writeAtomic(dstPath, payload); werr != nil {
			return 0, werr
		}
		return IngestStored, nil
	case err != nil:
		// A destination cell that exists but cannot be read right now
		// (EACCES, EIO) might hold a different valid payload —
		// overwriting would silently pick a side, the very thing the
		// conflict check exists to prevent. Fail and let the caller
		// retry once the store is readable.
		return 0, fmt.Errorf("resultstore: ingest read destination c-%s.json: %w", fp, err)
	case bytes.Equal(dstBytes, payload):
		return IngestIdentical, nil
	case !validCellBytes(dstBytes, fp):
		// The destination holds a torn or corrupt entry; the valid
		// payload replaces it exactly like a recompute would.
		if werr := s.writeAtomic(dstPath, payload); werr != nil {
			return 0, werr
		}
		return IngestStored, nil
	default:
		return 0, fmt.Errorf(
			"%w on cell %s: incoming and stored payloads are both valid but differ (fingerprint collision or nondeterministic cell)", ErrCellConflict, fp)
	}
}

// CellBytesByFingerprint returns the raw stored envelope for a cell
// fingerprint when present and valid — the read half of the push
// protocol, used to answer idempotent re-pushes.
func (s *Store) CellBytesByFingerprint(fp string) ([]byte, bool) {
	if s == nil {
		return nil, false
	}
	b, err := os.ReadFile(filepath.Join(s.dir, "c-"+fp+".json"))
	if err != nil || !validCellBytes(b, fp) {
		return nil, false
	}
	return b, true
}

// validCellBytes reports whether b is a current-schema cell envelope
// whose key hashes to the expected fingerprint.
func validCellBytes(b []byte, fp string) bool {
	var env cellEnvelope
	if json.Unmarshal(b, &env) != nil || env.Schema != SchemaVersion {
		return false
	}
	return env.Key.Fingerprint() == fp
}

// mergeManifest merges one "m-<hash>.json" source manifest, returning
// how many destination manifests were written (0 or 1) and whether the
// source bytes were a valid current-schema manifest at all (invalid
// ones are skipped, and the caller counts them as such).
func (s *Store) mergeManifest(srcBytes []byte) (int, bool, error) {
	var srcEnv manifestEnvelope
	if json.Unmarshal(srcBytes, &srcEnv) != nil || srcEnv.Schema != SchemaVersion {
		return 0, false, nil // stale or corrupt manifest: skip
	}
	sm := srcEnv.Manifest
	old, ok := s.LoadManifest(sm.Grid, sm.Seed)
	if !ok {
		if err := s.SaveManifest(sm); err != nil {
			return 0, true, err
		}
		return 1, true, nil
	}
	if !old.SameSchedule(sm) {
		return 0, true, fmt.Errorf(
			"resultstore: merge conflict on manifest for grid %q seed %d: schedules differ (the stores ran different grids)", sm.Grid, sm.Seed)
	}
	merged := old
	merged.Shards = UnionShards(old.Shards, sm.Shards)
	merged.KernelVariants = UnionVariants(old.KernelVariants, sm.KernelVariants)
	if len(merged.KernelVariants) > 1 {
		// Cells from a fused tier are bit-incompatible with cells from
		// the two-rounding tiers; silently mixing them would make warm
		// runs nondeterministic across the merge. (Legacy manifests with
		// no variant recorded union harmlessly as the empty set.)
		return 0, true, fmt.Errorf(
			"resultstore: merge conflict on manifest for grid %q seed %d: stores hold cells from different kernel variants %v (recompute one side on the other's tier)",
			sm.Grid, sm.Seed, merged.KernelVariants)
	}
	if len(merged.Shards) == len(old.Shards) && len(merged.KernelVariants) == len(old.KernelVariants) {
		return 0, true, nil // nothing new
	}
	if err := s.SaveManifest(merged); err != nil {
		return 0, true, err
	}
	return 1, true, nil
}

// UnionShards merges two shard-record lists, deduplicated and sorted
// (by count, then index) so the union is order-independent.
func UnionShards(a, b []ShardRecord) []ShardRecord {
	seen := map[ShardRecord]bool{}
	var out []ShardRecord
	for _, r := range append(append([]ShardRecord{}, a...), b...) {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count < out[j].Count
		}
		return out[i].Index < out[j].Index
	})
	return out
}

// UnionVariants merges two kernel-variant lists, deduplicated and
// sorted so the union is order-independent.
func UnionVariants(a, b []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, v := range append(append([]string{}, a...), b...) {
		if v != "" && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// sameDir reports whether two paths name the same directory.
func sameDir(a, b string) bool {
	ai, err1 := os.Stat(a)
	bi, err2 := os.Stat(b)
	if err1 == nil && err2 == nil {
		return os.SameFile(ai, bi)
	}
	aa, err1 := filepath.Abs(a)
	bb, err2 := filepath.Abs(b)
	return err1 == nil && err2 == nil && aa == bb
}

// Coverage reports which of a manifest's cells are present in the
// store as valid current-schema entries.
type Coverage struct {
	// Total is the manifest's cell count.
	Total int
	// Done is how many of them are on disk.
	Done int
	// Missing holds the row-major indices of the absent cells.
	Missing []int
}

// Complete reports whether every cell is present.
func (c Coverage) Complete() bool { return c.Done == c.Total }

// Percent is the completion percentage (100 for an empty manifest).
func (c Coverage) Percent() float64 {
	if c.Total == 0 {
		return 100
	}
	return float64(c.Done) / float64(c.Total) * 100
}

// Coverage diffs the manifest's cell schedule against the store's
// on-disk cells. A cell counts as done when its file exists and parses
// as a current-schema envelope — a torn write is as missing as no file
// at all, since a resume run would recompute it. A nil store has
// nothing, so every cell is missing.
func (s *Store) Coverage(m Manifest) Coverage {
	cov := Coverage{Total: len(m.Cells)}
	for i, fp := range m.Cells {
		if s != nil {
			path := filepath.Join(s.dir, "c-"+fp+".json")
			if ok, err := hasCurrentSchema(path); err == nil && ok {
				cov.Done++
				continue
			}
		}
		cov.Missing = append(cov.Missing, i)
	}
	return cov
}
