// mixed_formats: why pairing E4M3 activations with E3M4 weights wins
// on NLP workloads (Section 3.2 / Figure 8 / Table 5) — activations
// are range-bound, weights are precision-bound.
//
//	go run ./examples/mixed_formats
package main

import (
	"fmt"

	"fp8quant/internal/fp8"
	"fp8quant/internal/tensor"
)

func main() {
	r := tensor.NewRNG(7)

	// Range-bound activation: normal bulk + sparse 50x channel outliers.
	act := tensor.New(8192)
	act.FillNormal(r, 0, 1)
	act.InjectOutliers(r, 0.004, 45, 55)

	// Precision-bound weight: tight normal.
	wgt := tensor.New(8192)
	wgt.FillNormal(r, 0, 0.12)

	fmt.Println("per-tensor max-scaled quantization MSE:")
	fmt.Printf("%-8s %14s %14s\n", "format", "activation", "weight")
	for _, f := range fp8.Formats {
		fmt.Printf("%-8s %14.3e %14.3e\n", f.Name, mse(act, f), mse(wgt, f))
	}

	fmt.Println("\nreading: E4M3's extra exponent bit wins on the outlier-rich")
	fmt.Println("activation; E3M4's extra mantissa bit wins on the tight weight.")
	fmt.Println("Mixed formats take the best of both (Table 5).")
}

func mse(t *tensor.Tensor, f fp8.Format) float64 {
	scale := f.MaxValue() / t.AbsMax()
	var s float64
	for _, v := range t.Data {
		d := f.Quantize(float64(v)*scale)/scale - float64(v)
		s += d * d
	}
	return s / float64(t.Len())
}
