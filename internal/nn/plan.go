package nn

import "fp8quant/internal/tensor"

// Plan is a compiled execution plan for one module tree: a pair of
// ping-ponged arenas sized by running the module once over each input
// shape (the recording cycle sizes the slabs through the arenas'
// high-water tracking; Reset then pins them). On the steady path a
// planned Forward carves every intermediate — tensors, headers, shape
// slices, im2col patches and packed weight panels — out of preallocated
// slabs, performing zero heap allocations while running kernels in
// exactly the same float operation order as the unplanned path, so
// planned and unplanned outputs are byte-identical.
//
// Ping-pong: for a top-level Sequential the plan alternates two arenas
// between consecutive children. Child k writes into one arena while its
// input (child k-1's output) lives in the other; resetting the side
// about to be written reclaims everything that is at least two steps
// dead. View modules (Flatten) alias their input's storage, which the
// plan detects by data-pointer identity so an aliased output keeps its
// arena alive.
//
// A Plan is not safe for concurrent use; run one plan per worker.
// Outputs of Plan.Forward remain valid only until the next Forward —
// Clone them to retain. Shapes may vary between calls: a new shape
// re-records (allocating once), and slabs grow monotonically to the
// largest shape seen.
type Plan struct {
	m           Module
	front, back tensor.Arena
}

// NewPlan wraps m in an (un-warmed) plan; the first Forward over each
// input shape records arena demand and allocates, later ones do not.
func NewPlan(m Module) *Plan { return &Plan{m: m} }

// Compile builds a plan for m and warms it for the given input shape
// by running one recording forward over a zero input.
func Compile(m Module, inShape ...int) *Plan {
	p := NewPlan(m)
	p.Forward(tensor.New(inShape...))
	return p
}

// Module returns the module the plan currently executes.
func (p *Plan) Module() Module { return p.m }

// Bind points the plan at a different module (typically the same
// architecture with different weights — e.g. a pooled plan reused
// across sweep cells, where the arenas are already sized right).
// Binding nil detaches the module so a pooled plan does not keep a
// whole network reachable.
func (p *Plan) Bind(m Module) { p.m = m }

// Footprint returns the total float32 capacity of the plan's arenas.
func (p *Plan) Footprint() int { return p.front.Floats() + p.back.Floats() }

// Forward runs the planned module over x. The input must not itself be
// arena memory from this plan's previous call.
func (p *Plan) Forward(x *tensor.Tensor) *tensor.Tensor {
	if s, ok := p.m.(*Sequential); ok {
		return p.forwardSeq(s, x)
	}
	p.front.Reset()
	p.back.Reset()
	return ForwardWith(&p.front, p.m, x)
}

// forwardSeq ping-pongs the two arenas across the top-level chain.
// Invariant: cur either lives on the heap (the original input) or in
// the arena identified by curFront; the side about to execute is the
// one cur does NOT live in, and resetting it only invalidates tensors
// that are at least two steps dead.
func (p *Plan) forwardSeq(s *Sequential, x *tensor.Tensor) *tensor.Tensor {
	p.front.Reset()
	p.back.Reset()
	cur := x
	curHeap := true
	curFront := false
	for _, m := range s.Modules {
		side, useFront := &p.front, true
		if !curHeap && curFront {
			side, useFront = &p.back, false
		}
		// Per-step: recycle only the side's float slab. Headers carved
		// earlier this forward (e.g. a view header whose data lives in
		// the other side) stay valid until the next Forward.
		side.ResetFloats()
		out := ForwardWith(side, m, cur)
		// View modules return a tensor aliasing cur's storage; the
		// output then stays attributed to cur's side so the next step
		// does not reset the slab under it.
		if !sameData(out, cur) {
			curHeap, curFront = false, useFront
		}
		cur = out
	}
	return cur
}

// sameData reports whether two tensors share a backing array (full
// views: Flatten/Reshape share from element 0).
func sameData(a, b *tensor.Tensor) bool {
	return len(a.Data) > 0 && len(b.Data) > 0 && &a.Data[0] == &b.Data[0]
}
