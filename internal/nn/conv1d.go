package nn

import (
	"fmt"

	"fp8quant/internal/tensor"
)

// Conv1d is a 1-D convolution over [N, C, T] tensors — the feature
// extractor op of wav2vec2/HuBERT-style speech models.
type Conv1d struct {
	InC, OutC int
	K         int
	Stride    int
	Pad       int
	// W has shape [OutC, InC, K].
	W *tensor.Tensor
	// B has length OutC; may be nil.
	B []float32
	// QS holds quantization hooks for the input activation.
	QS QState
}

// NewConv1d allocates a 1-D convolution with zero weights.
func NewConv1d(inC, outC, k, stride, pad int) *Conv1d {
	return &Conv1d{
		InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		W: tensor.New(outC, inC, k),
		B: make([]float32, outC),
	}
}

// Kind implements Module. It reports "Conv2d" family semantics under
// the name "Conv1d"; quantization schemes treat both as Convolution.
func (c *Conv1d) Kind() string { return "Conv1d" }

// Q implements Quantizable.
func (c *Conv1d) Q() *QState { return &c.QS }

// WeightTensor implements Parametric.
func (c *Conv1d) WeightTensor() *tensor.Tensor { return c.W }

// OutChannelDim implements Parametric.
func (c *Conv1d) OutChannelDim() int { return 0 }

// OutSize returns the output length for input length t.
func (c *Conv1d) OutSize(t int) int { return (t+2*c.Pad-c.K)/c.Stride + 1 }

// Forward convolves x [N, InC, T] producing [N, OutC, T'].
func (c *Conv1d) Forward(x *tensor.Tensor) *tensor.Tensor { return c.ForwardArena(nil, x) }

// ForwardArena implements ArenaForwarder.
func (c *Conv1d) ForwardArena(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 3 || x.Shape[1] != c.InC {
		panic(fmt.Sprintf("nn: Conv1d expects [N,%d,T], got %v", c.InC, x.Shape))
	}
	x = c.QS.applyIn(a, x)
	n, t := x.Shape[0], x.Shape[2]
	ot := c.OutSize(t)
	if ot <= 0 {
		panic(fmt.Sprintf("nn: Conv1d output empty for input %v", x.Shape))
	}
	y := a.New(n, c.OutC, ot)
	for ni := 0; ni < n; ni++ {
		for oc := 0; oc < c.OutC; oc++ {
			var bias float32
			if c.B != nil {
				bias = c.B[oc]
			}
			for ox := 0; ox < ot; ox++ {
				acc := bias
				for ic := 0; ic < c.InC; ic++ {
					xRow := x.Data[(ni*c.InC+ic)*t:]
					wRow := c.W.Data[(oc*c.InC+ic)*c.K:]
					for k := 0; k < c.K; k++ {
						ix := ox*c.Stride - c.Pad + k
						if ix < 0 || ix >= t {
							continue
						}
						acc += xRow[ix] * wRow[k]
					}
				}
				y.Data[(ni*c.OutC+oc)*ot+ox] = acc
			}
		}
	}
	return c.QS.applyOut(y)
}
