package quant

import (
	"math"

	"fp8quant/internal/data"
	"fp8quant/internal/fp8"
	"fp8quant/internal/nn"
	"fp8quant/internal/tensor"
)

// Model is the contract the quantization workflow needs from a network:
// a module tree to rewrite and a forward runner for calibration.
type Model interface {
	// Root returns the module tree.
	Root() nn.Module
	// Run executes a forward pass, returning the model output.
	Run(s data.Sample) *tensor.Tensor
	// IsCNN reports whether the first/last-operator FP32 exception of
	// the standard scheme applies (convolutional networks only).
	IsCNN() bool
}

// Handle tracks the reversible state of a quantized model. Release
// restores the original FP32 model exactly.
type Handle struct {
	states    []*nn.QState
	weights   map[*tensor.Tensor][]float32
	rounded   map[*tensor.Tensor]bool
	bnBackups map[*nn.BatchNorm2d][2][]float32
	// Report summarizes what was quantized, for logs and tests.
	Report Report
}

// Report describes the outcome of a Quantize call.
type Report struct {
	// QuantizedOps counts fake-quantized leaf modules by kind.
	QuantizedOps map[string]int
	// FallbackOps lists module paths kept in FP32.
	FallbackOps []string
	// FirstOp and LastOp are the excluded first/last operator paths
	// (empty when not applicable).
	FirstOp, LastOp string
}

// Release restores FP32 weights, BatchNorm statistics, and removes all
// quantization hooks.
func (h *Handle) Release() {
	for w, master := range h.weights {
		copy(w.Data, master)
	}
	for bn, b := range h.bnBackups {
		copy(bn.Mean, b[0])
		copy(bn.Var, b[1])
	}
	for _, q := range h.states {
		q.Reset()
	}
}

// target is one quantization site: a QState plus the metadata needed to
// calibrate and convert it.
type target struct {
	path    string
	kind    string
	qs      *nn.QState
	output  bool // quantize the output instead of the input
	obs     Observer
	weight  *tensor.Tensor // non-nil for parametric modules
	wgtDim  int
	linear  *nn.Linear // non-nil for SmoothQuant-eligible sites
	colMax  []float64  // per-input-channel activation absmax
	smooth  []float64  // per-input-channel SmoothQuant divisors
	obsOnly bool
}

// Quantize applies recipe r to model m, calibrating on ds. It returns
// a Handle whose Release undoes everything. The model is modified in
// place (fake-quant hooks installed, weights rounded).
func Quantize(m Model, ds data.Dataset, r Recipe) *Handle {
	h := &Handle{
		weights:   make(map[*tensor.Tensor][]float32),
		rounded:   make(map[*tensor.Tensor]bool),
		bnBackups: make(map[*nn.BatchNorm2d][2][]float32),
		Report:    Report{QuantizedOps: make(map[string]int)},
	}
	if r.Act == FP32 && r.Wgt == FP32 {
		return h
	}

	targets, bns := collectTargets(m, r, h)

	// Phase 1: calibration (static approaches that need ranges).
	needCalib := r.Approach == Static && r.Act != FP32
	if needCalib || r.SmoothQuant {
		for _, t := range targets {
			t.attachObservers(r)
		}
		runBatches(m, ds, r.CalibBatches)
		for _, t := range targets {
			t.qs.Observe = nil
			t.qs.ObserveOutput = nil
		}
	}

	// Phase 2: convert — SmoothQuant folding, weight rounding, hook
	// installation.
	for _, t := range targets {
		t.convert(r, h)
	}

	// Phase 3: BatchNorm re-calibration on the quantized graph.
	if r.BNCalib && len(bns) > 0 {
		for _, bn := range bns {
			h.bnBackups[bn] = [2][]float32{
				append([]float32(nil), bn.Mean...),
				append([]float32(nil), bn.Var...),
			}
		}
		// Iterate estimation to a fixed point: each cycle re-estimates
		// every BN from data flowing through the previous cycle's
		// statistics, so stacked BNs need several cycles before the
		// stats stop shifting (the same staleness issue arises when
		// initializing the FP32 statistics).
		prev := snapshotBNStats(bns)
		// Warm-started statistics converge in a few cycles; cap the
		// loop tightly since each cycle costs full calibration passes
		// (and with large calibration sets a single pass already
		// averages away staleness).
		cycles := 4
		if r.BNCalibBatches >= 32 {
			cycles = 2
		}
		for cycle := 0; cycle < cycles; cycle++ {
			for _, bn := range bns {
				bn.StartCalibration()
			}
			runBatches(m, ds, r.BNCalibBatches)
			for _, bn := range bns {
				bn.FinishCalibration()
			}
			cur := snapshotBNStats(bns)
			if bnStatsConverged(prev, cur, 0.01) {
				break
			}
			prev = cur
		}
	}
	return h
}

// snapshotBNStats copies the running statistics of a set of BNs.
func snapshotBNStats(bns []*nn.BatchNorm2d) [][]float32 {
	out := make([][]float32, 0, len(bns))
	for _, bn := range bns {
		s := make([]float32, 0, 2*bn.C)
		s = append(s, bn.Mean...)
		s = append(s, bn.Var...)
		out = append(out, s)
	}
	return out
}

// bnStatsConverged reports whether two stat snapshots agree within a
// relative tolerance.
func bnStatsConverged(a, b [][]float32, tol float64) bool {
	for i := range a {
		for j := range a[i] {
			d := math.Abs(float64(a[i][j] - b[i][j]))
			scale := math.Abs(float64(a[i][j])) + 1e-3
			if d/scale > tol {
				return false
			}
		}
	}
	return true
}

// runBatches feeds n batches (cycling if the dataset is smaller)
// through the model.
func runBatches(m Model, ds data.Dataset, n int) {
	if n <= 0 {
		n = 1
	}
	total := ds.Batches()
	if total == 0 {
		return
	}
	for i := 0; i < n; i++ {
		m.Run(ds.Batch(i % total))
	}
}

// collectTargets walks the model and builds the quantization site list
// according to the recipe's scheme.
func collectTargets(m Model, r Recipe, h *Handle) ([]*target, []*nn.BatchNorm2d) {
	type entry struct {
		path string
		mod  nn.Module
	}
	var order []entry
	var bns []*nn.BatchNorm2d
	nn.Walk(m.Root(), func(path string, mod nn.Module) {
		order = append(order, entry{path, mod})
		if bn, ok := mod.(*nn.BatchNorm2d); ok {
			bns = append(bns, bn)
		}
	})

	// First conv / last linear exclusion (CNNs, standard scheme).
	firstConv, lastLinear := "", ""
	if m.IsCNN() && !r.QuantFirstLast {
		for _, e := range order {
			if _, ok := e.mod.(*nn.Conv2d); ok {
				firstConv = e.path
				break
			}
		}
		for i := len(order) - 1; i >= 0; i-- {
			if _, ok := order[i].mod.(*nn.Linear); ok {
				lastLinear = order[i].path
				break
			}
		}
	}
	h.Report.FirstOp, h.Report.LastOp = firstConv, lastLinear

	var targets []*target
	add := func(t *target) { targets = append(targets, t) }
	for _, e := range order {
		if r.Fallback[e.path] {
			h.Report.FallbackOps = append(h.Report.FallbackOps, e.path)
			continue
		}
		if e.path == firstConv || e.path == lastLinear {
			h.Report.FallbackOps = append(h.Report.FallbackOps, e.path)
			continue
		}
		switch mod := e.mod.(type) {
		case *nn.Linear:
			add(&target{path: e.path, kind: mod.Kind(), qs: &mod.QS,
				weight: mod.W, wgtDim: 0, linear: mod})
		case *nn.Conv2d:
			add(&target{path: e.path, kind: mod.Kind(), qs: &mod.QS,
				weight: mod.W, wgtDim: 0})
		case *nn.Conv1d:
			add(&target{path: e.path, kind: mod.Kind(), qs: &mod.QS,
				weight: mod.W, wgtDim: 0})
		case *nn.Embedding:
			t := &target{path: e.path, kind: mod.Kind(), qs: &mod.QS,
				weight: mod.W, wgtDim: 0, output: true}
			// Standard scheme: weight-only; extended also quantizes
			// the gathered output tensor.
			t.obsOnly = !r.ExtendedOps
			add(t)
		case *nn.EmbeddingBag:
			t := &target{path: e.path, kind: mod.Kind(), qs: &mod.QS,
				weight: mod.W, wgtDim: 0, output: true}
			t.obsOnly = !r.ExtendedOps
			add(t)
		case *nn.LayerNorm:
			if r.ExtendedOps {
				add(&target{path: e.path, kind: mod.Kind(), qs: &mod.QS, output: true})
			}
		case *nn.RMSNorm:
			if r.ExtendedOps {
				add(&target{path: e.path, kind: mod.Kind(), qs: &mod.QS, output: true})
			}
		case *nn.GroupNorm:
			if r.ExtendedOps {
				add(&target{path: e.path, kind: mod.Kind(), qs: &mod.QS, output: true})
			}
		case *nn.BatchNorm2d:
			if r.ExtendedOps {
				add(&target{path: e.path, kind: mod.Kind(), qs: &mod.QS, output: true})
			}
		case *nn.AddOp:
			if r.ExtendedOps {
				add(&target{path: e.path + "#a", kind: mod.Kind(), qs: &mod.QA})
				add(&target{path: e.path + "#b", kind: mod.Kind(), qs: &mod.QB})
			}
		case *nn.MulOp:
			if r.ExtendedOps {
				add(&target{path: e.path + "#a", kind: mod.Kind(), qs: &mod.QA})
				add(&target{path: e.path + "#b", kind: mod.Kind(), qs: &mod.QB})
			}
		case *nn.MatMulOp:
			if r.ExtendedOps {
				add(&target{path: e.path + "#a", kind: mod.Kind(), qs: &mod.QA})
				add(&target{path: e.path + "#b", kind: mod.Kind(), qs: &mod.QB})
			}
		case *nn.BatchMatMulOp:
			if r.ExtendedOps {
				add(&target{path: e.path + "#a", kind: mod.Kind(), qs: &mod.QA})
				add(&target{path: e.path + "#b", kind: mod.Kind(), qs: &mod.QB})
			}
		}
	}
	return targets, bns
}

// attachObservers wires calibration hooks for the target.
func (t *target) attachObservers(r Recipe) {
	t.obs = NewObserver(r.Calib)
	obs := t.obs
	if t.output {
		t.qs.ObserveOutput = obs.Observe
	} else if t.linear != nil && r.SmoothQuant {
		in := t.linear.In
		t.colMax = make([]float64, in)
		cm := t.colMax
		t.qs.Observe = func(v []float32) {
			obs.Observe(v)
			for i, x := range v {
				a := math.Abs(float64(x))
				if a > cm[i%in] {
					cm[i%in] = a
				}
			}
		}
	} else {
		t.qs.Observe = obs.Observe
	}
}

// convert installs the final quantization hooks and rounds weights.
func (t *target) convert(r Recipe, h *Handle) {
	h.states = append(h.states, t.qs)

	// SmoothQuant folding on Linear layers (before weight rounding).
	if t.linear != nil && r.SmoothQuant && t.colMax != nil {
		t.smooth = applySmoothQuant(t.linear, t.colMax, r.SmoothAlpha, h)
	}

	// Weight rounding (once per tensor, even when shared/tied).
	if t.weight != nil && r.Wgt != FP32 && !h.rounded[t.weight] {
		h.rounded[t.weight] = true
		var master []float32
		if r.Approach == Direct && r.Wgt.IsFP8() {
			master = quantizeWeightDirect(t.weight, r.Wgt.Format())
		} else {
			master = QuantizeWeightPerChannel(t.weight, t.wgtDim, r.Wgt)
		}
		// SmoothQuant may have saved the true pre-smoothing master
		// already; never overwrite it.
		if _, saved := h.weights[t.weight]; !saved {
			h.weights[t.weight] = master
		}
	}

	// Activation hooks.
	if r.Act == FP32 || t.obsOnly {
		return
	}
	threshold, mn, mx := t.calibrated(r)
	fn := ActQuantFunc(r, threshold, mn, mx)
	if fn == nil {
		return
	}
	// The fused-packing form rides along on input sites; SmoothQuant's
	// per-column divisors are position-dependent (i%in over the flat
	// slice), which the chunkable contract cannot express, so smoothed
	// sites stay on the copy path.
	fused := ActQuantFused(r, threshold, mn, mx)
	if t.smooth != nil {
		fn = composeSmooth(t.smooth, fn)
		fused = nil
	}
	if t.output {
		t.qs.Output = fn
	} else {
		t.qs.Input = fn
		t.qs.InputFused = fused
	}
	h.Report.QuantizedOps[t.kind]++
}

// calibrated resolves the threshold and range for a static target.
func (t *target) calibrated(r Recipe) (threshold, mn, mx float64) {
	if t.obs == nil {
		return 0, 0, 0
	}
	mk := func(th float64) Quantizer {
		if r.Act == INT8 {
			return fp8.NewInt8Symmetric(th)
		}
		return NewScaledFP8(r.Act.Format(), th)
	}
	threshold = CalibratedThreshold(t.obs, r.Calib, mk)
	mn, mx = t.obs.Range()
	if t.smooth != nil {
		// Ranges shift after smoothing: recompute from column maxima.
		threshold = 0
		for j, c := range t.colMax {
			s := t.smooth[j]
			if v := c / s; v > threshold {
				threshold = v
			}
		}
		mn, mx = -threshold, threshold
	}
	return threshold, mn, mx
}

// applySmoothQuant folds per-channel smoothing scales into the weight
// (W[:, j] *= s_j) and returns the divisors applied to the activation.
// s_j = actMax_j^alpha / wMax_j^(1-alpha), the SmoothQuant migration.
func applySmoothQuant(l *nn.Linear, colMax []float64, alpha float64, h *Handle) []float64 {
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.5
	}
	in, out := l.In, l.Out
	// Per-input-channel weight absmax (over output rows).
	wMax := make([]float64, in)
	for o := 0; o < out; o++ {
		row := l.W.Data[o*in : (o+1)*in]
		for j, v := range row {
			a := math.Abs(float64(v))
			if a > wMax[j] {
				wMax[j] = a
			}
		}
	}
	s := make([]float64, in)
	for j := range s {
		if colMax[j] == 0 || wMax[j] == 0 {
			s[j] = 1
			continue
		}
		v := math.Pow(colMax[j], alpha) / math.Pow(wMax[j], 1-alpha)
		if v < 1e-5 {
			v = 1e-5
		} else if v > 1e5 {
			v = 1e5
		}
		s[j] = v
	}
	// Save the pre-smoothing weight exactly once.
	if _, saved := h.weights[l.W]; !saved {
		h.weights[l.W] = append([]float32(nil), l.W.Data...)
	}
	for o := 0; o < out; o++ {
		row := l.W.Data[o*in : (o+1)*in]
		for j := range row {
			row[j] *= float32(s[j])
		}
	}
	return s
}

// composeSmooth divides activations by the smoothing scales before the
// quantization function runs.
func composeSmooth(s []float64, fn nn.QuantFunc) nn.QuantFunc {
	in := len(s)
	inv := make([]float32, in)
	for j, v := range s {
		inv[j] = float32(1 / v)
	}
	return func(dst, src []float32) {
		for i, v := range src {
			dst[i] = v * inv[i%in]
		}
		fn(dst, dst)
	}
}

// quantizeWeightDirect rounds weights straight to the FP8 grid with no
// scaling (the E5M2 Direct path), returning the restore copy. Large
// tensors quantize across all cores through the fast codec.
func quantizeWeightDirect(w *tensor.Tensor, f fp8.Format) []float32 {
	master := append([]float32(nil), w.Data...)
	f.QuantizeSliceParallel(w.Data, w.Data)
	return master
}
