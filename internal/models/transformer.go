package models

import (
	"fmt"

	"fp8quant/internal/data"
	"fp8quant/internal/nn"
	"fp8quant/internal/tensor"
)

// Shared NLP evaluation geometry.
const (
	nlpBatch   = 16
	nlpSeq     = 12
	nlpVocab   = 128
	nlpBatches = 16
)

func nlpDataset(seed uint64) data.Dataset {
	return &data.TokenDataset{N: nlpBatch, T: nlpSeq, Vocab: nlpVocab,
		NumBatches: nlpBatches, Seed: seed}
}

// encoderNet is a BERT-style encoder classifier: embedding → position →
// encoder layers → mean pool → classifier head.
type encoderNet struct {
	Emb    *nn.Embedding
	Pos    *nn.PositionalEmbedding
	EmbLN  *nn.LayerNorm
	Layers []*nn.TransformerEncoderLayer
	Head   *nn.Linear
	window int
}

// Kind implements nn.Module.
func (e *encoderNet) Kind() string { return "EncoderNet" }

// Visit implements nn.Container.
func (e *encoderNet) Visit(path string, v nn.Visitor) {
	nn.WalkChild(path+"/emb", e.Emb, v)
	nn.WalkChild(path+"/embln", e.EmbLN, v)
	for i, l := range e.Layers {
		nn.WalkChild(fmt.Sprintf("%s/layer%d", path, i), l, v)
	}
	nn.WalkChild(path+"/head", e.Head, v)
}

// Forward is unsupported; encoder models consume tokens via Predict.
func (e *encoderNet) Forward(x *tensor.Tensor) *tensor.Tensor {
	panic("models: encoderNet consumes tokens; use Predict")
}

// Predict runs the full pipeline on token input.
func (e *encoderNet) Predict(tokens [][]int) *tensor.Tensor {
	x := e.Emb.Lookup(tokens)
	x = e.Pos.Forward(x)
	x = e.EmbLN.Forward(x)
	for _, l := range e.Layers {
		x = l.Forward(x)
	}
	return e.Head.Forward(meanPoolSeq(x))
}

// addTensors returns a + b element-wise (FP32 residual join).
func addTensors(a, b *tensor.Tensor) *tensor.Tensor {
	y := tensor.New(a.Shape...)
	for i := range y.Data {
		y.Data[i] = a.Data[i] + b.Data[i]
	}
	return y
}

// meanPoolSeq averages [B,T,D] over T, returning [B,D].
func meanPoolSeq(x *tensor.Tensor) *tensor.Tensor {
	return meanPoolSeqArena(nil, x)
}

// meanPoolSeqArena is meanPoolSeq with the output carved from a.
func meanPoolSeqArena(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	b, t, d := x.Shape[0], x.Shape[1], x.Shape[2]
	y := a.New(b, d)
	inv := 1 / float32(t)
	for bi := 0; bi < b; bi++ {
		for ti := 0; ti < t; ti++ {
			src := x.Data[(bi*t+ti)*d : (bi*t+ti+1)*d]
			dst := y.Data[bi*d : (bi+1)*d]
			for i, v := range src {
				dst[i] += v * inv
			}
		}
	}
	return y
}

// encoderCfg parameterizes a BERT-family build.
type encoderCfg struct {
	dim, heads, ff, layers, classes int
	window                          int // sliding attention (Longformer)
	// outlier plants LayerNorm gamma spikes at the given magnitude
	// ratio; spikes/layer channels are affected.
	outlier float64
	spikes  int
	// scoreEval switches to Score (regression) evaluation.
	scoreEval bool
}

func buildEncoder(info Info, seed uint64, cfg encoderCfg) *Network {
	r := tensor.NewRNG(seed)
	net := &encoderNet{
		Emb:    nn.NewEmbedding(nlpVocab, cfg.dim),
		Pos:    nn.NewPositionalEmbedding(nlpSeq, cfg.dim),
		EmbLN:  nn.NewLayerNorm(cfg.dim),
		Head:   nn.NewLinear(cfg.dim, cfg.classes),
		window: cfg.window,
	}
	initEmbedding(net.Emb.W, r)
	net.Pos.W.FillNormal(r, 0, 0.1)
	initLN(net.EmbLN, r)
	for i := 0; i < cfg.layers; i++ {
		l := nn.NewTransformerEncoderLayer(cfg.dim, cfg.heads, cfg.ff)
		if cfg.window > 0 {
			l.Attn.Window = cfg.window
		}
		initEncoderLayer(l, r)
		if cfg.outlier > 0 {
			spikeGammas(l.LN1.Gamma, r, cfg.spikes, cfg.outlier)
			spikeGammas(l.LN2.Gamma, r, cfg.spikes, cfg.outlier)
		}
		net.Layers = append(net.Layers, l)
	}
	initLinear(net.Head, r)
	n := &Network{
		Meta:    info,
		root:    net,
		fwd:     func(s data.Sample) *tensor.Tensor { return net.Predict(s.Tokens) },
		Data:    nlpDataset(seed ^ 0x7E57),
		Classes: cfg.classes,
	}
	if cfg.scoreEval {
		n.Eval = Score
	}
	return n
}

func initLN(ln *nn.LayerNorm, r *tensor.RNG) {
	for i := range ln.Gamma {
		ln.Gamma[i] = float32(1 + 0.1*r.Norm())
		ln.Beta[i] = float32(0.05 * r.Norm())
	}
}

func initEncoderLayer(l *nn.TransformerEncoderLayer, r *tensor.RNG) {
	for _, lin := range []*nn.Linear{l.Attn.WQ, l.Attn.WK, l.Attn.WV, l.Attn.WO, l.FF.FC1, l.FF.FC2} {
		initLinear(lin, r)
	}
	initLN(l.LN1, r)
	initLN(l.LN2, r)
}

// decoderNet is a GPT/Bloom/LLaMA-style causal LM. Predict returns the
// next-token logits at the final position.
type decoderNet struct {
	Emb    *nn.Embedding
	Pos    *nn.PositionalEmbedding
	Layers []*nn.TransformerDecoderLayer
	Final  nn.Module // *LayerNorm or *RMSNorm
	LMHead *nn.Linear
}

// Kind implements nn.Module.
func (d *decoderNet) Kind() string { return "DecoderNet" }

// Visit implements nn.Container.
func (d *decoderNet) Visit(path string, v nn.Visitor) {
	nn.WalkChild(path+"/emb", d.Emb, v)
	for i, l := range d.Layers {
		nn.WalkChild(fmt.Sprintf("%s/layer%d", path, i), l, v)
	}
	nn.WalkChild(path+"/final", d.Final, v)
	nn.WalkChild(path+"/lmhead", d.LMHead, v)
}

// Forward is unsupported; decoder models consume tokens.
func (d *decoderNet) Forward(x *tensor.Tensor) *tensor.Tensor {
	panic("models: decoderNet consumes tokens; use Logits")
}

// Hidden runs the decoder trunk, returning [B,T,D] hidden states.
func (d *decoderNet) Hidden(tokens [][]int) *tensor.Tensor {
	x := d.Emb.Lookup(tokens)
	x = d.Pos.Forward(x)
	for _, l := range d.Layers {
		x = l.Forward(x)
	}
	return d.Final.Forward(x)
}

// Logits returns next-token logits at every position: [B,T,V].
func (d *decoderNet) Logits(tokens [][]int) *tensor.Tensor {
	return d.LMHead.Forward(d.Hidden(tokens))
}

// LastLogits returns the final-position logits [B,V].
func (d *decoderNet) LastLogits(tokens [][]int) *tensor.Tensor {
	lg := d.Logits(tokens)
	b, t, v := lg.Shape[0], lg.Shape[1], lg.Shape[2]
	y := tensor.New(b, v)
	for bi := 0; bi < b; bi++ {
		copy(y.Data[bi*v:], lg.Data[(bi*t+t-1)*v:(bi*t+t)*v])
	}
	return y
}

type decoderCfg struct {
	dim, heads, ff, layers int
	llama                  bool // RMSNorm + SwiGLU
	outlier                float64
	spikes                 int
}

func newDecoderNet(r *tensor.RNG, cfg decoderCfg) *decoderNet {
	net := &decoderNet{
		Emb:    nn.NewEmbedding(nlpVocab, cfg.dim),
		Pos:    nn.NewPositionalEmbedding(nlpSeq+20, cfg.dim),
		LMHead: nn.NewLinear(cfg.dim, nlpVocab),
	}
	initEmbedding(net.Emb.W, r)
	net.Pos.W.FillNormal(r, 0, 0.1)
	for i := 0; i < cfg.layers; i++ {
		var l *nn.TransformerDecoderLayer
		if cfg.llama {
			l = nn.NewLlamaDecoderLayer(cfg.dim, cfg.heads, cfg.ff)
		} else {
			l = nn.NewTransformerDecoderLayer(cfg.dim, cfg.heads, cfg.ff)
		}
		initDecoderLayer(l, r)
		if cfg.outlier > 0 {
			switch ln := l.LN1.(type) {
			case *nn.LayerNorm:
				spikeGammas(ln.Gamma, r, cfg.spikes, cfg.outlier)
			case *nn.RMSNorm:
				spikeGammas(ln.Gamma, r, cfg.spikes, cfg.outlier)
			}
			switch ln := l.LN2.(type) {
			case *nn.LayerNorm:
				spikeGammas(ln.Gamma, r, cfg.spikes, cfg.outlier)
			case *nn.RMSNorm:
				spikeGammas(ln.Gamma, r, cfg.spikes, cfg.outlier)
			}
		}
		net.Layers = append(net.Layers, l)
	}
	if cfg.llama {
		rn := nn.NewRMSNorm(cfg.dim)
		for i := range rn.Gamma {
			rn.Gamma[i] = float32(1 + 0.1*r.Norm())
		}
		net.Final = rn
	} else {
		fl := nn.NewLayerNorm(cfg.dim)
		initLN(fl, r)
		net.Final = fl
	}
	initLinear(net.LMHead, r)
	return net
}

func initDecoderLayer(l *nn.TransformerDecoderLayer, r *tensor.RNG) {
	for _, lin := range []*nn.Linear{l.Attn.WQ, l.Attn.WK, l.Attn.WV, l.Attn.WO} {
		initLinear(lin, r)
	}
	switch ff := l.FF.(type) {
	case *nn.FFN:
		initLinear(ff.FC1, r)
		initLinear(ff.FC2, r)
	case *nn.SwiGLU:
		initLinear(ff.W1, r)
		initLinear(ff.W2, r)
		initLinear(ff.W3, r)
	}
	switch ln := l.LN1.(type) {
	case *nn.LayerNorm:
		initLN(ln, r)
	}
	switch ln := l.LN2.(type) {
	case *nn.LayerNorm:
		initLN(ln, r)
	}
}

func buildDecoder(info Info, seed uint64, cfg decoderCfg) *Network {
	r := tensor.NewRNG(seed)
	net := newDecoderNet(r, cfg)
	return &Network{
		Meta:    info,
		root:    net,
		fwd:     func(s data.Sample) *tensor.Tensor { return net.LastLogits(s.Tokens) },
		Data:    nlpDataset(seed ^ 0x6707),
		Classes: nlpVocab,
	}
}

// GenLM wraps a decoder network for text generation (textgen.LM): it
// exposes next-token logits plus the quant.Model contract so recipes
// can be applied to the generator directly.
type GenLM struct {
	Net *decoderNet
	// DataSet provides calibration batches.
	DataSet data.Dataset
	seed    uint64
}

// NewGenLM builds a Bloom-style generative LM for the Table 4 text
// generation study. The configuration mirrors the bloom_7b1 registry
// entry but is constructed standalone so generation experiments don't
// perturb the registry models.
func NewGenLM(seed uint64) *GenLM {
	r := tensor.NewRNG(seed)
	net := newDecoderNet(r, decoderCfg{dim: 48, heads: 4, ff: 96, layers: 3, outlier: 120, spikes: 2})
	// Generation runs far past the classification context length; give
	// the generator a long, strong positional table so the next-token
	// distribution stays position-dependent (beam search over a
	// position-independent random LM collapses into a periodic orbit,
	// which would mask the quantization effects Table 4 measures).
	net.Pos = nn.NewPositionalEmbedding(160, 48)
	net.Pos.W.FillNormal(r, 0, 0.6)
	return &GenLM{
		Net:     net,
		DataSet: nlpDataset(seed ^ 0x9E41),
		seed:    seed,
	}
}

// Clone returns an independent generator with identical weights,
// rebuilt deterministically from the seed — cheap enough that grid
// experiments build one per cell instead of sharing a mutated LM.
func (g *GenLM) Clone() *GenLM { return NewGenLM(g.seed) }

// NextLogits implements textgen.LM.
func (g *GenLM) NextLogits(tokens [][]int) *tensor.Tensor {
	return g.Net.LastLogits(tokens)
}

// Vocab implements textgen.LM.
func (g *GenLM) Vocab() int { return nlpVocab }

// Root implements quant.Model.
func (g *GenLM) Root() nn.Module { return g.Net }

// IsCNN implements quant.Model.
func (g *GenLM) IsCNN() bool { return false }

// Run implements quant.Model.
func (g *GenLM) Run(s data.Sample) *tensor.Tensor { return g.Net.LastLogits(s.Tokens) }

// encDecNet is a Marian/Pegasus-style encoder-decoder. The decoder
// attends over encoder memory through cross-attention.
type encDecNet struct {
	EncEmb, DecEmb *nn.Embedding
	EncPos, DecPos *nn.PositionalEmbedding
	Enc            []*nn.TransformerEncoderLayer
	DecSelf        []*nn.TransformerDecoderLayer
	Cross          []*nn.CrossAttention
	CrossLN        []*nn.LayerNorm
	Final          *nn.LayerNorm
	LMHead         *nn.Linear
}

// Kind implements nn.Module.
func (e *encDecNet) Kind() string { return "EncDecNet" }

// Visit implements nn.Container.
func (e *encDecNet) Visit(path string, v nn.Visitor) {
	nn.WalkChild(path+"/encemb", e.EncEmb, v)
	nn.WalkChild(path+"/decemb", e.DecEmb, v)
	for i, l := range e.Enc {
		nn.WalkChild(fmt.Sprintf("%s/enc%d", path, i), l, v)
	}
	for i, l := range e.DecSelf {
		nn.WalkChild(fmt.Sprintf("%s/dec%d", path, i), l, v)
		nn.WalkChild(fmt.Sprintf("%s/cross%d", path, i), e.Cross[i], v)
		nn.WalkChild(fmt.Sprintf("%s/crossln%d", path, i), e.CrossLN[i], v)
	}
	nn.WalkChild(path+"/final", e.Final, v)
	nn.WalkChild(path+"/lmhead", e.LMHead, v)
}

// Forward is unsupported; enc-dec models consume tokens.
func (e *encDecNet) Forward(x *tensor.Tensor) *tensor.Tensor {
	panic("models: encDecNet consumes tokens; use Translate")
}

// Translate encodes src tokens and decodes them (teacher forcing on the
// same tokens, standing in for a translation pair), returning final-
// position logits [B,V].
func (e *encDecNet) Translate(tokens [][]int) *tensor.Tensor {
	mem := e.EncPos.Forward(e.EncEmb.Lookup(tokens))
	for _, l := range e.Enc {
		mem = l.Forward(mem)
	}
	x := e.DecPos.Forward(e.DecEmb.Lookup(tokens))
	for i, l := range e.DecSelf {
		x = l.Forward(x)
		x = e.CrossLN[i].Forward(addTensors(x, e.Cross[i].Attend(x, mem)))
	}
	x = e.Final.Forward(x)
	lg := e.LMHead.Forward(x)
	b, t, v := lg.Shape[0], lg.Shape[1], lg.Shape[2]
	y := tensor.New(b, v)
	for bi := 0; bi < b; bi++ {
		copy(y.Data[bi*v:], lg.Data[(bi*t+t-1)*v:(bi*t+t)*v])
	}
	return y
}

func buildEncDec(info Info, seed uint64, dim, heads, ff, layers int, outlier float64) *Network {
	r := tensor.NewRNG(seed)
	net := &encDecNet{
		EncEmb: nn.NewEmbedding(nlpVocab, dim),
		DecEmb: nn.NewEmbedding(nlpVocab, dim),
		EncPos: nn.NewPositionalEmbedding(nlpSeq, dim),
		DecPos: nn.NewPositionalEmbedding(nlpSeq, dim),
		Final:  nn.NewLayerNorm(dim),
		LMHead: nn.NewLinear(dim, nlpVocab),
	}
	initEmbedding(net.EncEmb.W, r)
	initEmbedding(net.DecEmb.W, r)
	net.EncPos.W.FillNormal(r, 0, 0.1)
	net.DecPos.W.FillNormal(r, 0, 0.1)
	for i := 0; i < layers; i++ {
		enc := nn.NewTransformerEncoderLayer(dim, heads, ff)
		initEncoderLayer(enc, r)
		if outlier > 0 {
			spikeGammas(enc.LN1.Gamma, r, 1, outlier)
		}
		net.Enc = append(net.Enc, enc)

		dec := nn.NewTransformerDecoderLayer(dim, heads, ff)
		initDecoderLayer(dec, r)
		net.DecSelf = append(net.DecSelf, dec)

		ca := nn.NewCrossAttention(dim, heads)
		for _, lin := range []*nn.Linear{ca.WQ, ca.WK, ca.WV, ca.WO} {
			initLinear(lin, r)
		}
		net.Cross = append(net.Cross, ca)
		cl := nn.NewLayerNorm(dim)
		initLN(cl, r)
		if outlier > 0 {
			spikeGammas(cl.Gamma, r, 1, outlier)
		}
		net.CrossLN = append(net.CrossLN, cl)
	}
	initLN(net.Final, r)
	initLinear(net.LMHead, r)
	return &Network{
		Meta:    info,
		root:    net,
		fwd:     func(s data.Sample) *tensor.Tensor { return net.Translate(s.Tokens) },
		Data:    nlpDataset(seed ^ 0xE2CD),
		Classes: nlpVocab,
	}
}

func registerEncoder(name, task string, sizeMB float64, cfg encoderCfg) {
	info := Info{Name: name, Domain: NLP, Task: task, SizeMB: sizeMB,
		HasLN: true, OutlierRatio: cfg.outlier}
	register(info, func(seed uint64) *Network { return buildEncoder(info, seed, cfg) })
}

func registerDecoder(name, task string, sizeMB float64, cfg decoderCfg) {
	info := Info{Name: name, Domain: NLP, Task: task, SizeMB: sizeMB,
		HasLN: true, OutlierRatio: cfg.outlier}
	register(info, func(seed uint64) *Network { return buildDecoder(info, seed, cfg) })
}

func registerEncDec(name, task string, sizeMB float64, dim, heads, ff, layers int, outlier float64) {
	info := Info{Name: name, Domain: NLP, Task: task, SizeMB: sizeMB,
		HasLN: true, OutlierRatio: outlier}
	register(info, func(seed uint64) *Network {
		return buildEncDec(info, seed, dim, heads, ff, layers, outlier)
	})
}

func init() {
	// --- BERT family text classification (binary GLUE-style tasks).
	registerEncoder("bert_base_mrpc", "mrpc", 418, encoderCfg{dim: 32, heads: 4, ff: 64, layers: 2, classes: 2, outlier: 120, spikes: 1})
	registerEncoder("bert_base_cola", "cola", 418, encoderCfg{dim: 32, heads: 4, ff: 64, layers: 2, classes: 2, outlier: 105, spikes: 1})
	registerEncoder("bert_base_sst2", "sst2", 418, encoderCfg{dim: 32, heads: 4, ff: 64, layers: 2, classes: 2, outlier: 90, spikes: 1})
	registerEncoder("bert_base_stsb", "sts-b", 418, encoderCfg{dim: 32, heads: 4, ff: 64, layers: 2, classes: 1, outlier: 90, spikes: 1, scoreEval: true})
	registerEncoder("bert_large_cola", "cola", 1280, encoderCfg{dim: 48, heads: 4, ff: 96, layers: 3, classes: 2, outlier: 135, spikes: 2})
	registerEncoder("bert_large_rte", "rte", 1280, encoderCfg{dim: 48, heads: 4, ff: 96, layers: 3, classes: 2, outlier: 120, spikes: 2})
	registerEncoder("distilbert_mrpc", "mrpc", 256, encoderCfg{dim: 32, heads: 4, ff: 64, layers: 1, classes: 2, outlier: 75, spikes: 1})
	registerEncoder("distilbert_sst2", "sst2", 256, encoderCfg{dim: 32, heads: 4, ff: 64, layers: 1, classes: 2, outlier: 75, spikes: 1})
	registerEncoder("roberta_mrpc", "mrpc", 476, encoderCfg{dim: 32, heads: 4, ff: 64, layers: 2, classes: 2, outlier: 105, spikes: 1})
	registerEncoder("xlm_roberta_mrpc", "mrpc", 1040, encoderCfg{dim: 40, heads: 4, ff: 80, layers: 2, classes: 2, outlier: 105, spikes: 1})
	registerEncoder("albert_sst2", "sst2", 45, encoderCfg{dim: 24, heads: 4, ff: 48, layers: 2, classes: 2, outlier: 60, spikes: 1})
	registerEncoder("electra_sst2", "sst2", 52, encoderCfg{dim: 24, heads: 4, ff: 48, layers: 2, classes: 2, outlier: 60, spikes: 1})
	registerEncoder("minilm_sst2", "sst2", 120, encoderCfg{dim: 24, heads: 4, ff: 48, layers: 2, classes: 2, outlier: 54, spikes: 1})
	registerEncoder("tinybert_mrpc", "mrpc", 57, encoderCfg{dim: 16, heads: 2, ff: 32, layers: 2, classes: 2, outlier: 45, spikes: 1})
	registerEncoder("mobilebert_sst2", "sst2", 98, encoderCfg{dim: 24, heads: 4, ff: 48, layers: 2, classes: 2, outlier: 54, spikes: 1})
	registerEncoder("deberta_mnli", "mnli", 750, encoderCfg{dim: 40, heads: 4, ff: 80, layers: 2, classes: 3, outlier: 105, spikes: 1})
	registerEncoder("camembert_xnli", "xnli", 442, encoderCfg{dim: 32, heads: 4, ff: 64, layers: 2, classes: 3, outlier: 90, spikes: 1})
	registerEncoder("ernie_sst2", "sst2", 430, encoderCfg{dim: 32, heads: 4, ff: 64, layers: 2, classes: 2, outlier: 84, spikes: 1})
	registerEncoder("flaubert_cls", "cls-fr", 550, encoderCfg{dim: 32, heads: 4, ff: 64, layers: 2, classes: 2, outlier: 90, spikes: 1})
	registerEncoder("xlnet_sst2", "sst2", 467, encoderCfg{dim: 32, heads: 4, ff: 64, layers: 2, classes: 2, outlier: 90, spikes: 1})

	// Long-document and pathological-outlier encoders.
	registerEncoder("longformer_mrpc", "mrpc", 595, encoderCfg{dim: 32, heads: 4, ff: 64, layers: 2, classes: 2, window: 3, outlier: 180, spikes: 1})
	// Funnel exhibits the catastrophic E3M4 failure of Table 5: its
	// activation outliers exceed E3M4's dynamic range headroom.
	registerEncoder("funnel_mrpc", "mrpc", 508, encoderCfg{dim: 32, heads: 4, ff: 64, layers: 2, classes: 2, outlier: 400, spikes: 1})

	// --- Generative LMs (lambada-style next-token tasks).
	registerDecoder("gpt2_wikitext", "wikitext", 548, decoderCfg{dim: 32, heads: 4, ff: 64, layers: 2, outlier: 90, spikes: 1})
	registerDecoder("dialogpt_reddit", "dialog", 351, decoderCfg{dim: 32, heads: 4, ff: 64, layers: 2, outlier: 84, spikes: 1})
	registerDecoder("gpt_neo_lambada", "lambada", 657, decoderCfg{dim: 32, heads: 4, ff: 64, layers: 2, outlier: 96, spikes: 1})
	registerDecoder("opt_lambada", "lambada", 662, decoderCfg{dim: 32, heads: 4, ff: 64, layers: 2, outlier: 105, spikes: 1})
	registerDecoder("bloom_560m", "lambada", 1120, decoderCfg{dim: 32, heads: 4, ff: 64, layers: 2, outlier: 120, spikes: 1})
	registerDecoder("bloom_7b1", "lambada", 14200, decoderCfg{dim: 48, heads: 4, ff: 96, layers: 3, outlier: 135, spikes: 2})
	registerDecoder("bloom_176b", "lambada", 352000, decoderCfg{dim: 64, heads: 8, ff: 128, layers: 3, outlier: 150, spikes: 2})
	registerDecoder("llama_7b", "lambada", 13500, decoderCfg{dim: 48, heads: 4, ff: 96, layers: 3, llama: true, outlier: 120, spikes: 1})
	registerDecoder("llama_13b", "lambada", 26000, decoderCfg{dim: 56, heads: 4, ff: 112, layers: 3, llama: true, outlier: 160, spikes: 2})
	registerDecoder("llama_65b", "lambada", 131000, decoderCfg{dim: 64, heads: 8, ff: 128, layers: 3, llama: true, outlier: 220, spikes: 2})

	// --- Sequence-to-sequence (translation, summarization).
	registerEncDec("marianmt_enro", "wmt-en-ro", 298, 32, 4, 64, 2, 30)
	registerEncDec("pegasus_samsum", "samsum", 2280, 40, 4, 80, 2, 35)
	registerEncDec("t5_small_cnndm", "cnn-dm", 242, 32, 4, 64, 2, 25)
	registerEncDec("bart_xsum", "xsum", 532, 32, 4, 64, 2, 30)
	registerEncDec("mbart_enro", "wmt-en-ro", 2440, 40, 4, 80, 2, 35)
	registerEncDec("prophetnet_gigaword", "gigaword", 1560, 40, 4, 80, 2, 30)
}
