// Command fp8vet runs the project's determinism-contract analyzers.
//
// Usage:
//
//	fp8vet ./...                 analyze every package
//	fp8vet -checks mapiter ./... run a subset of the checks
//	fp8vet -list                 describe the checks
//
// The suite enforces the source-level invariants the result store,
// the merge protocol and the kernel bit-identity proofs rest on; see
// internal/analyzers for the individual checks. Findings print as
// file:line: [check] message, followed by a per-check summary table.
// The exit status is 1 when any finding survives its allowlist
// (//fp8vet:ignore <check> <reason>), 2 on usage or load errors — so
// `make vet-contracts` is a hard CI gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"fp8quant/internal/analyzers"
)

func main() {
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := flag.Bool("list", false, "describe the available checks")
	dir := flag.String("C", ".", "directory to resolve package patterns from")
	flag.Parse()

	if *list {
		for _, a := range analyzers.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	as, err := analyzers.ByName(*checks)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fp8vet: %v\n", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analyzers.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fp8vet: %v\n", err)
		os.Exit(2)
	}

	results := analyzers.RunAll(pkgs, as)
	total := 0
	for _, r := range results {
		for _, f := range r.Findings {
			fmt.Printf("%s:%d: [%s] %s\n", relPath(f.Pos.Filename), f.Pos.Line, f.Check, f.Message)
			total++
		}
	}
	if total > 0 {
		fmt.Println()
	}
	fmt.Printf("%-12s %9s %9s\n", "check", "findings", "ignored")
	fmt.Printf("%-12s %9s %9s\n", "-----", "--------", "-------")
	for _, r := range results {
		fmt.Printf("%-12s %9d %9d\n", r.Analyzer.Name, len(r.Findings), r.Ignored)
	}
	if total > 0 {
		fmt.Printf("\nfp8vet: %d finding(s) — the determinism contract does not hold\n", total)
		os.Exit(1)
	}
	fmt.Printf("\nfp8vet: clean (%d packages)\n", len(pkgs))
}

// relPath shortens a filename to be relative to the working directory
// when possible; findings stay clickable either way.
func relPath(path string) string {
	wd, err := os.Getwd()
	if err != nil {
		return path
	}
	if rel, err := filepath.Rel(wd, path); err == nil && len(rel) < len(path) {
		return rel
	}
	return path
}
