// Sweep engine: the experiments evaluate grids of independent
// (model, recipe) cells — Table 2 alone is 75 models x 6 recipes. This
// file provides the bounded worker pool they all share. Cells are
// claimed dynamically for load balance (model costs vary by 100x across
// the zoo) but every result is written to its input-order slot, so
// reports are deterministic regardless of scheduling or worker count.

package harness

import (
	"runtime"
	"sync"
	"sync/atomic"

	"fp8quant/internal/evalx"
)

// sweepWorkers is the configured cell-level parallelism; 0 selects
// GOMAXPROCS. Set through SetWorkers (the fp8bench -workers flag).
var sweepWorkers atomic.Int64

// SetWorkers bounds the number of sweep cells evaluated concurrently.
// n <= 0 restores the default (GOMAXPROCS). Safe to call at any time;
// sweeps already in flight keep their pool size.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	sweepWorkers.Store(int64(n))
}

// Workers reports the effective sweep worker count.
func Workers() int {
	if n := int(sweepWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// forEachCell runs cell(i) for every i in [0, n) across the bounded
// worker pool. cell must confine its writes to per-index state.
func forEachCell(n int, cell func(i int)) {
	workers := Workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			cell(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				cell(i)
			}
		}()
	}
	wg.Wait()
}

// collectCells evaluates fn over [0, n) on the worker pool and returns
// the results in input order.
func collectCells[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	forEachCell(n, func(i int) { out[i] = fn(i) })
	return out
}

// Sweep evaluates the Table 2 recipe set over the named models on the
// worker pool — the building block of the table2/fig4/fig5 experiments,
// exported for callers (and benchmarks) that want the raw cells without
// the memo/store layers. It does share the process-wide per-model FP32
// reference cache; benchmarks comparing repeated Sweep calls should
// ClearMemo between runs to keep the measured work equal. Results are
// indexed [model][recipe] in input order; a model that fails to build
// yields Err-marked results in its row.
func Sweep(names []string) [][]evalx.Result {
	spec := sweepSpecFor(names)
	out := make([][]evalx.Result, len(names))
	for i := range out {
		out[i] = make([]evalx.Result, len(table2Labels))
	}
	forEachCell(spec.NumCells(), func(i int) {
		c := spec.CellAt(i)
		out[c.Coords[0]][c.Coords[1]] = runSweepCell(c)
	})
	return out
}
