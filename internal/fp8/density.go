package fp8

import "math"

// Density returns the density of representable values of the format
// around magnitude n, following Appendix A.1 of the paper:
//
//	D_EeMm(N) = 2^(m - floor(log2 N))
//
// i.e. the number of representable grid points per unit interval in the
// binade containing N. Smaller magnitudes are represented more densely;
// each additional mantissa bit doubles the density.
func (f Format) Density(n float64) float64 {
	if n <= 0 || math.IsNaN(n) || math.IsInf(n, 0) {
		return math.Inf(1)
	}
	return math.Ldexp(1, int(f.ManBits)-int(math.Floor(math.Log2(n))))
}

// StepAt returns the grid spacing (quantization step) of the format at
// magnitude n: the reciprocal of Density in the normal range, clamped
// to the subnormal step below MinNormal.
func (f Format) StepAt(n float64) float64 {
	n = math.Abs(n)
	if n < f.MinNormal() {
		return f.MinSubnormal()
	}
	if n > f.MaxValue() {
		n = f.MaxValue()
	}
	return 1 / f.Density(n)
}

// Int8Step returns the uniform step size of a symmetric INT8 grid with
// the given calibrated absmax (absmax/127), for contrast with the
// magnitude-dependent FP8 step. Outliers stretch this step linearly,
// which is the core INT8 weakness the paper discusses in Section 2.
func Int8Step(absmax float64) float64 {
	return NewInt8Symmetric(absmax).Scale
}
