package nn

import (
	"testing"

	"fp8quant/internal/tensor"
)

// planLinearNet is the Linear-only benchmark chain (pure packed-GEMM
// path, no conv scratch).
func planLinearNet() *Sequential {
	r := tensor.NewRNG(0xBEAC5)
	fc1 := NewLinear(256, 512)
	fc1.W.FillNormal(r, 0, 0.05)
	fc2 := NewLinear(512, 256)
	fc2.W.FillNormal(r, 0, 0.05)
	fc3 := NewLinear(256, 64)
	fc3.W.FillNormal(r, 0, 0.05)
	return NewSequential(fc1, GELU{}, fc2, ReLU{}, fc3)
}

// forwardBenchCases pairs a module with its input; "batch8" is the
// batched-forward variant (8 inputs stacked, folding into the GEMM M
// dimension).
func forwardBenchCases() []struct {
	name string
	m    Module
	x    *tensor.Tensor
} {
	r := tensor.NewRNG(0x5EED)
	lin := tensor.New(16, 256)
	lin.FillNormal(r, 0, 1)
	return []struct {
		name string
		m    Module
		x    *tensor.Tensor
	}{
		{"linear", planLinearNet(), lin},
		{"conv", planTestNet(), planTestInput(4, 3)},
		{"conv_batch8", planTestNet(), planTestInput(8, 4)},
	}
}

// BenchmarkForwardUnplanned is the heap-allocating baseline forward.
func BenchmarkForwardUnplanned(b *testing.B) {
	for _, c := range forwardBenchCases() {
		b.Run(c.name, func(b *testing.B) {
			c.m.Forward(c.x)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.m.Forward(c.x)
			}
		})
	}
}

// BenchmarkForwardPlanned runs the same forwards through a compiled
// plan; steady state must report 0 allocs/op (gated by bench-gate).
func BenchmarkForwardPlanned(b *testing.B) {
	for _, c := range forwardBenchCases() {
		b.Run(c.name, func(b *testing.B) {
			p := Compile(c.m, c.x.Shape...)
			p.Forward(c.x) // slabs grow lazily; one more run reaches steady state
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Forward(c.x)
			}
		})
	}
}
