// Fixture for directive hygiene: an ignore naming an unknown check or
// giving no reason is itself reported, and a reason-less ignore
// suppresses nothing.
package directivesfix

import "fmt"

func bad(m map[string]int) {
	//fp8vet:ignore nosuchcheck because reasons
	//fp8vet:ignore mapiter
	for k := range m {
		fmt.Println(k)
	}
}
