// Fast codec: a precomputed 256-entry decode table plus a bit-level
// float32 encoder, bit-identical to the scalar reference Encode/Decode
// on every float32 input. Format.Encode/Decode (format.go) stay the
// reference oracle; the exhaustive equivalence tests in fast_test.go
// pin the two paths together.
package fp8

import (
	"math"
	"sync"

	"fp8quant/internal/tensor"
)

// quantGrain is the smallest per-worker chunk of QuantizeSliceParallel;
// below ~16K elements the goroutine handoff costs more than the encode.
const quantGrain = 1 << 14

// Codec holds the precomputed tables for one format. Obtain instances
// via Format.Codec(); they are cached per format and safe for
// concurrent use.
type Codec struct {
	format  Format
	dec     [256]float32
	manBits uint
	bias    int
	nan     uint8
	// overMag is the first magnitude (sign-stripped code value, before
	// clamping to 8 bits) that overflows the finite range; overCode is
	// what an overflowing encode emits (Inf for IEEE formats, ±max for
	// extended formats, which also covers a round up onto the extended
	// NaN pattern).
	overMag  uint32
	overCode uint8
	infCode  uint8
	// slow marks exotic formats (hand-built bias/width combinations
	// outside the 8-bit family) that fall back to the scalar encoder.
	slow bool
}

var codecCache sync.Map // Format -> *Codec

// Codec returns the cached fast codec for the format, building it on
// first use.
func (f Format) Codec() *Codec {
	if c, ok := codecCache.Load(f); ok {
		return c.(*Codec)
	}
	c, _ := codecCache.LoadOrStore(f, newCodec(f))
	return c.(*Codec)
}

func newCodec(f Format) *Codec {
	c := &Codec{format: f, manBits: f.ManBits, bias: f.Bias, nan: f.NaN()}
	for i := 0; i < 256; i++ {
		c.dec[i] = float32(f.Decode(uint8(i)))
	}
	if f.IEEE {
		c.overMag = uint32(f.expField()) << f.ManBits
		c.overCode = uint8(f.expField()) << f.ManBits
	} else {
		c.overMag = 0x7F // the extended NaN pattern and everything above
		c.overCode = f.maxCode()
	}
	c.infCode = c.overCode
	// The bit-level encoder assumes a normal float32 significand for
	// any value landing in the format's normal range, true whenever the
	// format's normal range sits inside float32's (bias <= 126). It
	// also relies on mantissa parity surviving the implicit-bit offset,
	// which needs at least one mantissa bit.
	c.slow = f.ExpBits+f.ManBits != 7 || f.ManBits < 1 || f.Bias > 126
	return c
}

// Format returns the format this codec encodes.
func (c *Codec) Format() Format { return c.format }

// Decode converts an 8-bit code to its float32 value via the lookup
// table (exact: every representable value fits float32).
func (c *Codec) Decode(b uint8) float32 { return c.dec[b] }

// Encode converts a float32 to the nearest representable 8-bit code
// using round-to-nearest-even, operating directly on the IEEE-754 bit
// pattern. It is bit-identical to Format.Encode(float64(x)).
func (c *Codec) Encode(x float32) uint8 {
	if c.slow {
		return c.format.Encode(float64(x))
	}
	bits := math.Float32bits(x)
	sign := uint8(bits >> 24 & 0x80)
	mag32 := bits & 0x7FFFFFFF
	if mag32 >= 0x7F800000 {
		if mag32 > 0x7F800000 {
			return c.nan
		}
		return sign | c.infCode
	}
	if mag32 == 0 {
		return sign // ±0
	}
	e := int(mag32>>23) - 127
	sig := mag32 & 0x7FFFFF
	if e == -127 {
		e = -126 // float32 subnormal: no implicit bit
	} else {
		sig |= 1 << 23
	}
	rawExp := e + c.bias
	m := uint(c.manBits)
	var mag uint32
	if rawExp >= 1 {
		// Normal target range. q covers [2^m, 2^(m+1)]; the additive
		// form folds a mantissa carry straight into the exponent field.
		q := rneShift(sig, 23-m)
		mag = uint32(rawExp-1)<<m + q
	} else {
		// Subnormal target range: round in units of 2^(1-bias-m). A
		// carry to 2^m lands exactly on the min-normal code.
		shift := 24 - int(m) - rawExp // rawExp <= 0, so shift >= 17
		if shift >= 32 {
			return sign // underflows to ±0
		}
		mag = rneShift(sig, uint(shift))
	}
	if mag >= c.overMag {
		return sign | c.overCode
	}
	return sign | uint8(mag)
}

// rneShift rounds sig right by s bits (1 <= s <= 31) to nearest, ties
// to even, branch-free: adding half-1 plus the pre-round quotient's
// LSB carries into the quotient exactly when rem > half, or rem == half
// with an odd quotient (the tie-to-even case). The data-dependent
// rounding branch this replaces mispredicted ~half the time and
// dominated the batch encode's per-element cost. sig < 2^25, so the
// addition cannot overflow uint32.
func rneShift(sig uint32, s uint) uint32 {
	half := uint32(1) << (s - 1)
	return (sig + half - 1 + ((sig >> s) & 1)) >> s
}

// Quantize rounds x to the nearest representable value
// (encode+decode in one step).
func (c *Codec) Quantize(x float32) float32 { return c.dec[c.Encode(x)] }

// QuantizeSlice applies Quantize element-wise, writing into dst (which
// may alias src). It returns dst. The hot path is the 4-lane batch
// kernel (quantBatch4) with the identity scale: v·1 encodes to the
// same code as v for every float32 (including specials), so the shared
// kernel stays bit-identical to the per-element Encode loop.
func (c *Codec) QuantizeSlice(dst, src []float32) []float32 {
	if c.slow {
		f := c.format
		for i, v := range src {
			dst[i] = float32(f.Quantize(float64(v)))
		}
		return dst
	}
	c.quantBatch4(dst, src, 1, &c.dec)
	return dst
}

// QuantizeSliceParallel is QuantizeSlice with the work fanned out in
// chunks over the shared worker pool. Small slices run inline; results
// are bit-identical to the serial path regardless of scheduling.
func (c *Codec) QuantizeSliceParallel(dst, src []float32) []float32 {
	tensor.ParallelFor(len(src), quantGrain, func(lo, hi int) {
		c.QuantizeSlice(dst[lo:hi], src[lo:hi])
	})
	return dst
}

// rescaleMin is the slice length above which QuantizeScaledSlice
// amortizes a 256-entry rescaled decode table; below it the table
// build costs more than the per-element multiply it saves.
const rescaleMin = 256

// QuantizeScaledSlice is the fused static fake-quant kernel: it
// computes dst[i] = Decode(Encode(src[i]*scale)) * inv in a single
// pass, writing into dst (which may alias src) and returning it. For
// slices past rescaleMin the rescale is folded into a stack-local
// decode table (tbl[j] = Decode(j)*inv) and the bit-level encoder is
// inlined into the loop, eliminating both the per-element multiply
// round trip and the per-element call. Results are bit-identical to
// the unfused Quantize(v*scale)*inv expression on every input (the
// fast_test equivalence suite pins the inlined encoder to Encode).
func (c *Codec) QuantizeScaledSlice(dst, src []float32, scale, inv float32) []float32 {
	if c.slow {
		f := c.format
		for i, v := range src {
			dst[i] = float32(f.Quantize(float64(v*scale))) * inv
		}
		return dst
	}
	if len(src) < rescaleMin {
		for i, v := range src {
			dst[i] = c.dec[c.Encode(v*scale)] * inv
		}
		return dst
	}
	var tbl [256]float32
	for j, d := range c.dec {
		tbl[j] = d * inv
	}
	c.quantBatch4(dst, src, scale, &tbl)
	return dst
}

// quantBatch4 is the batch fake-quant kernel shared by QuantizeSlice
// (scale 1, tbl = the plain decode table) and QuantizeScaledSlice
// (tbl = decode·inv): dst[i] = tbl[Encode(src[i]*scale)], four lanes
// per iteration. Each lane duplicates the Codec.Encode body verbatim
// (Go will not inline a function this size, and the call was the
// dominant per-element cost); the four encode chains are independent,
// so they pipeline where the single-lane loop serialized on one
// branchy chain. Bounds checks are hoisted by reslicing dst to
// len(src) and indexing both through the same induction variable.
// dst may alias src. Bit-identical to the per-element reference for
// every input, pinned by the fast_test equivalence suite.
func (c *Codec) quantBatch4(dst, src []float32, scale float32, tbl *[256]float32) {
	m := c.manBits
	bias := c.bias
	nanCode := c.nan
	overMag, overCode, infCode := c.overMag, c.overCode, c.infCode
	n := len(src)
	dst = dst[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		v0 := src[i] * scale
		v1 := src[i+1] * scale
		v2 := src[i+2] * scale
		v3 := src[i+3] * scale

		bits := math.Float32bits(v0)
		sign := uint8(bits >> 24 & 0x80)
		mag32 := bits & 0x7FFFFFFF
		var c0 uint8
		switch {
		case mag32 >= 0x7F800000:
			if mag32 > 0x7F800000 {
				c0 = nanCode
			} else {
				c0 = sign | infCode
			}
		case mag32 == 0:
			c0 = sign
		default:
			e := int(mag32>>23) - 127
			sig := mag32 & 0x7FFFFF
			if e == -127 {
				e = -126
			} else {
				sig |= 1 << 23
			}
			rawExp := e + bias
			var mag uint32
			if rawExp >= 1 {
				mag = uint32(rawExp-1)<<m + rneShift(sig, 23-m)
			} else if shift := 24 - int(m) - rawExp; shift >= 32 {
				mag = 0 // underflows to ±0
			} else {
				mag = rneShift(sig, uint(shift))
			}
			if mag >= overMag {
				c0 = sign | overCode
			} else {
				c0 = sign | uint8(mag)
			}
		}

		bits = math.Float32bits(v1)
		sign = uint8(bits >> 24 & 0x80)
		mag32 = bits & 0x7FFFFFFF
		var c1 uint8
		switch {
		case mag32 >= 0x7F800000:
			if mag32 > 0x7F800000 {
				c1 = nanCode
			} else {
				c1 = sign | infCode
			}
		case mag32 == 0:
			c1 = sign
		default:
			e := int(mag32>>23) - 127
			sig := mag32 & 0x7FFFFF
			if e == -127 {
				e = -126
			} else {
				sig |= 1 << 23
			}
			rawExp := e + bias
			var mag uint32
			if rawExp >= 1 {
				mag = uint32(rawExp-1)<<m + rneShift(sig, 23-m)
			} else if shift := 24 - int(m) - rawExp; shift >= 32 {
				mag = 0
			} else {
				mag = rneShift(sig, uint(shift))
			}
			if mag >= overMag {
				c1 = sign | overCode
			} else {
				c1 = sign | uint8(mag)
			}
		}

		bits = math.Float32bits(v2)
		sign = uint8(bits >> 24 & 0x80)
		mag32 = bits & 0x7FFFFFFF
		var c2 uint8
		switch {
		case mag32 >= 0x7F800000:
			if mag32 > 0x7F800000 {
				c2 = nanCode
			} else {
				c2 = sign | infCode
			}
		case mag32 == 0:
			c2 = sign
		default:
			e := int(mag32>>23) - 127
			sig := mag32 & 0x7FFFFF
			if e == -127 {
				e = -126
			} else {
				sig |= 1 << 23
			}
			rawExp := e + bias
			var mag uint32
			if rawExp >= 1 {
				mag = uint32(rawExp-1)<<m + rneShift(sig, 23-m)
			} else if shift := 24 - int(m) - rawExp; shift >= 32 {
				mag = 0
			} else {
				mag = rneShift(sig, uint(shift))
			}
			if mag >= overMag {
				c2 = sign | overCode
			} else {
				c2 = sign | uint8(mag)
			}
		}

		bits = math.Float32bits(v3)
		sign = uint8(bits >> 24 & 0x80)
		mag32 = bits & 0x7FFFFFFF
		var c3 uint8
		switch {
		case mag32 >= 0x7F800000:
			if mag32 > 0x7F800000 {
				c3 = nanCode
			} else {
				c3 = sign | infCode
			}
		case mag32 == 0:
			c3 = sign
		default:
			e := int(mag32>>23) - 127
			sig := mag32 & 0x7FFFFF
			if e == -127 {
				e = -126
			} else {
				sig |= 1 << 23
			}
			rawExp := e + bias
			var mag uint32
			if rawExp >= 1 {
				mag = uint32(rawExp-1)<<m + rneShift(sig, 23-m)
			} else if shift := 24 - int(m) - rawExp; shift >= 32 {
				mag = 0
			} else {
				mag = rneShift(sig, uint(shift))
			}
			if mag >= overMag {
				c3 = sign | overCode
			} else {
				c3 = sign | uint8(mag)
			}
		}

		dst[i] = tbl[c0]
		dst[i+1] = tbl[c1]
		dst[i+2] = tbl[c2]
		dst[i+3] = tbl[c3]
	}
	for ; i < n; i++ {
		dst[i] = tbl[c.Encode(src[i]*scale)]
	}
}
