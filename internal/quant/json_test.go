package quant

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestRecipeJSONRoundTrip(t *testing.T) {
	recipes := []Recipe{
		StandardFP8(E4M3),
		StandardFP8(E5M2),
		DynamicFP8(E3M4),
		MixedFP8().WithExtendedOps().WithSmoothQuant(0.5).WithBNCalib(3),
		StandardINT8(true).WithFallback("encoder/layer0/ffn/fc1"),
	}
	for _, r := range recipes {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("marshal %s: %v", r.Name(), err)
		}
		var back Recipe
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", r.Name(), err)
		}
		if !reflect.DeepEqual(r, back) {
			t.Errorf("round trip mismatch:\n  in:  %+v\n  out: %+v\n  json: %s", r, back, b)
		}
	}
}

func TestRecipeJSONSymbolicNames(t *testing.T) {
	b, _ := json.Marshal(MixedFP8())
	s := string(b)
	for _, want := range []string{`"act":"E4M3"`, `"wgt":"E3M4"`, `"approach":"Static"`} {
		if !contains(s, want) {
			t.Errorf("json %s missing %s", s, want)
		}
	}
}

func TestRecipeJSONRejectsUnknown(t *testing.T) {
	var r Recipe
	if err := json.Unmarshal([]byte(`{"act":"E9M9"}`), &r); err == nil {
		t.Error("unknown dtype should fail")
	}
	if err := json.Unmarshal([]byte(`{"approach":"Quantum"}`), &r); err == nil {
		t.Error("unknown approach should fail")
	}
	if err := json.Unmarshal([]byte(`{"calib":"vibes"}`), &r); err == nil {
		t.Error("unknown calibration should fail")
	}
}

func contains(s, sub string) bool {
	return indexOf(s, sub) >= 0
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
