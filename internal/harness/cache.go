// Result caching: grid cells are memoized per process (table2, fig4
// and fig5 all consume the same 75x6 sweep grid) and, when a store is
// configured, persisted to disk per cell so later fp8bench invocations
// resume from completed cells across processes. Entries are keyed by
// content address — grid id, axis coordinates, seed and schema version
// — so a stale store can only miss, never corrupt a report.

package harness

import (
	"fmt"
	"os"
	"sync"

	"fp8quant/internal/evalx"
	"fp8quant/internal/faultline"
	"fp8quant/internal/resultstore"
)

var (
	cacheMu sync.Mutex
	// store is the optional disk-backed result store (nil = disabled).
	store *resultstore.Store
	// memo is the in-process cell cache, keyed by cell fingerprint.
	memo = map[string]evalx.Result{}
)

// SetStore installs (or, with nil, removes) the persistent result
// store consulted by the grid executor. Call before running
// experiments; cells already memoized in-process are kept.
func SetStore(s *resultstore.Store) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	store = s
}

// Store returns the configured persistent result store (nil if none).
func Store() *resultstore.Store {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	return store
}

// ClearMemo drops every in-process cache — the cell memo, the
// per-model FP32 reference cache, and the fig6/table4 generation
// references (the disk store is untouched). Tests use it to simulate a
// process boundary and force store round trips; long-lived embedders
// can use it to release sweep memory.
func ClearMemo() {
	cacheMu.Lock()
	memo = map[string]evalx.Result{}
	cacheMu.Unlock()
	clearRefs()
	clearGenRefs()
}

// lookupCell returns the cell's result if the memo or the store
// already holds it, without ever computing. Sharded runs use it to
// render sibling shards' cells when present; an absent cell counts a
// store miss, which is exactly what it is.
func lookupCell(k resultstore.CellKey) (evalx.Result, bool) {
	fp := k.Fingerprint()
	cacheMu.Lock()
	r, ok := memo[fp]
	s := store
	cacheMu.Unlock()
	if ok {
		return r, true
	}
	if r, ok := s.LoadCell(k); ok {
		cacheMu.Lock()
		memo[fp] = r
		cacheMu.Unlock()
		return r, true
	}
	return evalx.Result{}, false
}

// cachedCell returns the result for the cell key, trying the
// in-process memo, then the disk store, then computing it (and
// persisting the result). Errored cells (Err != "") are memoized for
// the process but never persisted — a deterministic failure is cheap
// to re-derive and must not outlive the code that caused it.
// Concurrent callers with the same key may compute twice; both arrive
// at identical results, so last-write-wins is safe.
func cachedCell(k resultstore.CellKey, compute func() evalx.Result) evalx.Result {
	r, _ := cachedCellFresh(k, compute)
	return r
}

// cachedCellFresh is cachedCell plus a flag reporting whether the cell
// was computed fresh rather than served from a cache layer — the
// provenance signal: only fresh cells carry the current kernel
// variant's bits into the store.
func cachedCellFresh(k resultstore.CellKey, compute func() evalx.Result) (evalx.Result, bool) {
	fp := k.Fingerprint()
	cacheMu.Lock()
	r, ok := memo[fp]
	s := store
	cacheMu.Unlock()
	if ok {
		return r, false
	}
	if r, ok := s.LoadCell(k); ok {
		cacheMu.Lock()
		memo[fp] = r
		cacheMu.Unlock()
		return r, false
	}
	// A compute-side failpoint for chaos runs: delay and crash rules act
	// inside Hit; an injected *error* here is deliberately discarded,
	// because cell results must stay a pure function of the key — faults
	// may slow, kill or un-persist a cell, never change its value (and
	// the coordinator treats reported cell failures as permanent).
	_ = faultline.Hit("harness.cell.compute")
	r = compute()
	if r.Err == "" {
		err := faultline.Hit("harness.cell.persist")
		if err == nil {
			err = s.SaveCell(k, r)
		}
		if err != nil {
			// A failed persist (full/unwritable cache dir) must not go
			// unnoticed: without it every invocation repays the sweep.
			fmt.Fprintf(os.Stderr, "warning: result store write failed: %v\n", err)
		}
	}
	cacheMu.Lock()
	memo[fp] = r
	cacheMu.Unlock()
	return r, true
}
