// Per-model FP32 reference cache. Cells are pure — each builds its own
// network — but the FP32 reference a model is judged against is pure
// data, deterministic per model name, and shared by every recipe cell
// of that model. Computing it once per process keeps the per-cell API
// from multiplying the reference passes by the recipe-axis length.

package harness

import (
	"sync"

	"fp8quant/internal/evalx"
	"fp8quant/internal/models"
)

var refCache sync.Map // model name -> *refEntry

type refEntry struct {
	once sync.Once
	ref  evalx.Reference
}

// modelRef returns the FP32 reference for the named model, computed at
// most once per process from a freshly built network. The caller's net
// is used only for the first computation; references are deterministic
// (the forward pass does not mutate the network), so every caller sees
// the same data.
func modelRef(name string, net *models.Network) evalx.Reference {
	e, _ := refCache.LoadOrStore(name, &refEntry{})
	ent := e.(*refEntry)
	ent.once.Do(func() { ent.ref = evalx.ComputeReference(net) })
	return ent.ref
}

// clearRefs drops the reference cache (ClearMemo's process-boundary
// simulation).
func clearRefs() {
	refCache.Range(func(k, _ any) bool {
		refCache.Delete(k)
		return true
	})
}
