// Command fp8bench regenerates the paper's tables and figures.
//
// Usage:
//
//	fp8bench -list               list available experiment ids
//	fp8bench -exp table2         run one experiment
//	fp8bench -exp all            run every experiment (slow)
//	fp8bench -exp table2 -workers 4   bound the sweep worker pool
//	fp8bench -models             list the 75-model zoo with metadata
//
// Sweep experiments fan their (model, recipe) cells out over a bounded
// worker pool; -workers defaults to GOMAXPROCS. Results are
// deterministic for any worker count.
//
// Sweep grids are also persisted to a content-addressed result store
// (-cache-dir, default ~/.cache/fp8bench), so a repeated invocation
// reuses the stored grid instead of recomputing the sweep and prints an
// identical report. -no-cache disables the store; each experiment
// footer reports its cache traffic.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"fp8quant/internal/harness"
	"fp8quant/internal/models"
	"fp8quant/internal/resultstore"
)

func main() {
	exp := flag.String("exp", "", "experiment id to run (or 'all')")
	list := flag.Bool("list", false, "list experiment ids")
	listModels := flag.Bool("models", false, "list the model zoo")
	workers := flag.Int("workers", 0, "max concurrent sweep cells (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache-dir", defaultCacheDir(), "persistent result-store directory ('' = disabled)")
	noCache := flag.Bool("no-cache", false, "disable the persistent result store")
	flag.Parse()
	harness.SetWorkers(*workers)
	if !*noCache && *cacheDir != "" {
		s, err := resultstore.Open(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "warning: result store disabled: %v\n", err)
		} else {
			harness.SetStore(s)
		}
	}

	switch {
	case *list:
		for _, id := range harness.IDs() {
			e, _ := harness.Get(id)
			fmt.Printf("%-10s %s\n", id, e.Title)
		}
	case *listModels:
		fmt.Printf("%-24s %-7s %-14s %9s %6s %6s %8s\n",
			"name", "domain", "task", "size(MB)", "BN", "LN", "outlier")
		for _, name := range models.Names() {
			info, _ := models.InfoFor(name)
			fmt.Printf("%-24s %-7s %-14s %9.1f %6v %6v %8.0f\n",
				info.Name, info.Domain, info.Task, info.SizeMB,
				info.HasBN, info.HasLN, info.OutlierRatio)
		}
	case *exp == "all":
		for _, id := range harness.IDs() {
			runOne(id)
		}
	case *exp != "":
		if _, ok := harness.Get(*exp); !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
			os.Exit(1)
		}
		runOne(*exp)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// defaultCacheDir resolves ~/.cache/fp8bench (per XDG on Linux); an
// unresolvable home directory falls back to a local cache dir.
func defaultCacheDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		return ".fp8bench-cache"
	}
	return filepath.Join(base, "fp8bench")
}

func runOne(id string) {
	e, _ := harness.Get(id)
	fmt.Printf("=== %s — %s ===\n", e.ID, e.Title)
	s := harness.Store()
	before := s.Stats()
	t0 := time.Now()
	rep := e.Run()
	fmt.Println(rep.Text)
	fmt.Printf("(%s finished in %.1fs)\n", id, time.Since(t0).Seconds())
	if s != nil {
		d := s.Stats()
		fmt.Printf("(result store %s: %d hits, %d misses, %d writes)\n",
			s.Dir(), d.Hits-before.Hits, d.Misses-before.Misses, d.Writes-before.Writes)
	}
	fmt.Println()
}
