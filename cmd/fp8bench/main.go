// Command fp8bench regenerates the paper's tables and figures.
//
// Usage:
//
//	fp8bench -list               list available experiment ids
//	fp8bench -exp table2         run one experiment
//	fp8bench -exp all            run every experiment (slow)
//	fp8bench -exp table2 -workers 4   bound the sweep worker pool
//	fp8bench -models             list the 75-model zoo with metadata
//
// Sweep experiments fan their (model, recipe) cells out over a bounded
// worker pool; -workers defaults to GOMAXPROCS. Results are
// deterministic for any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fp8quant/internal/harness"
	"fp8quant/internal/models"
)

func main() {
	exp := flag.String("exp", "", "experiment id to run (or 'all')")
	list := flag.Bool("list", false, "list experiment ids")
	listModels := flag.Bool("models", false, "list the model zoo")
	workers := flag.Int("workers", 0, "max concurrent sweep cells (0 = GOMAXPROCS)")
	flag.Parse()
	harness.SetWorkers(*workers)

	switch {
	case *list:
		for _, id := range harness.IDs() {
			e, _ := harness.Get(id)
			fmt.Printf("%-10s %s\n", id, e.Title)
		}
	case *listModels:
		fmt.Printf("%-24s %-7s %-14s %9s %6s %6s %8s\n",
			"name", "domain", "task", "size(MB)", "BN", "LN", "outlier")
		for _, name := range models.Names() {
			info, _ := models.InfoFor(name)
			fmt.Printf("%-24s %-7s %-14s %9.1f %6v %6v %8.0f\n",
				info.Name, info.Domain, info.Task, info.SizeMB,
				info.HasBN, info.HasLN, info.OutlierRatio)
		}
	case *exp == "all":
		for _, id := range harness.IDs() {
			runOne(id)
		}
	case *exp != "":
		if _, ok := harness.Get(*exp); !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
			os.Exit(1)
		}
		runOne(*exp)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runOne(id string) {
	e, _ := harness.Get(id)
	fmt.Printf("=== %s — %s ===\n", e.ID, e.Title)
	t0 := time.Now()
	rep := e.Run()
	fmt.Println(rep.Text)
	fmt.Printf("(%s finished in %.1fs)\n\n", id, time.Since(t0).Seconds())
}
