// Fixture for the atomicwrite check, client side: outside the store
// package, direct writes are violations only when the path argument is
// derived from a Store location.
package storeclient

import (
	"os"
	"path/filepath"
)

// Store mimics the result store's path API.
type Store struct{ root string }

func (s Store) Dir() string               { return s.root }
func (s Store) CellPath(id string) string { return filepath.Join(s.root, id) }

// Positive: writing directly to a cell path.
func writeIntoStore(s Store, data []byte) error {
	return os.WriteFile(s.CellPath("cell"), data, 0o644) // want atomicwrite "result-store path"
}

// Positive: a path built from the store directory.
func writeBeside(s Store, data []byte) error {
	return os.WriteFile(filepath.Join(s.Dir(), "extra"), data, 0o644) // want atomicwrite "result-store path"
}

// Negative: unrelated paths are not the store's business.
func writeElsewhere(dir string, data []byte) error {
	return os.WriteFile(filepath.Join(dir, "notes.txt"), data, 0o644)
}

// Ignored: a documented exemption suppresses the finding.
func exportCopy(s Store, data []byte) error {
	//fp8vet:ignore atomicwrite fixture exemption: one-shot export no concurrent reader ever opens
	return os.WriteFile(s.CellPath("export"), data, 0o644)
}
