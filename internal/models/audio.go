package models

import (
	"fmt"

	"fp8quant/internal/data"
	"fp8quant/internal/nn"
	"fp8quant/internal/tensor"
)

// audioNet is the wav2vec2/HuBERT skeleton: a strided Conv1d feature
// extractor over raw waveform, LayerNorm, a transformer encoder stack,
// and a token classifier (CTC-style head).
type audioNet struct {
	Convs  []*nn.Conv1d
	LN     *nn.LayerNorm
	Layers []*nn.TransformerEncoderLayer
	Head   *nn.Linear
	dim    int
}

// Kind implements nn.Module.
func (a *audioNet) Kind() string { return "AudioNet" }

// Visit implements nn.Container.
func (a *audioNet) Visit(path string, v nn.Visitor) {
	for i, c := range a.Convs {
		nn.WalkChild(fmt.Sprintf("%s/conv%d", path, i), c, v)
	}
	nn.WalkChild(path+"/ln", a.LN, v)
	for i, l := range a.Layers {
		nn.WalkChild(fmt.Sprintf("%s/layer%d", path, i), l, v)
	}
	nn.WalkChild(path+"/head", a.Head, v)
}

// Forward transcribes a waveform batch [N,1,T] to frame logits pooled
// to [N, classes].
func (a *audioNet) Forward(x *tensor.Tensor) *tensor.Tensor {
	return a.ForwardArena(nil, x)
}

// ForwardArena implements nn.ArenaForwarder.
func (a *audioNet) ForwardArena(ar *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	var act nn.GELU
	for _, c := range a.Convs {
		x = act.ForwardArena(ar, c.ForwardArena(ar, x))
	}
	// [N, D, T'] -> tokens [N, T', D]
	n, d, t := x.Shape[0], x.Shape[1], x.Shape[2]
	toks := ar.New(n, t, d)
	for ni := 0; ni < n; ni++ {
		for di := 0; di < d; di++ {
			row := x.Data[(ni*d+di)*t : (ni*d+di+1)*t]
			for ti, v := range row {
				toks.Data[(ni*t+ti)*d+di] = v
			}
		}
	}
	toks = a.LN.ForwardArena(ar, toks)
	for _, l := range a.Layers {
		toks = l.ForwardArena(ar, toks)
	}
	return a.Head.ForwardArena(ar, meanPoolSeqArena(ar, toks))
}

func buildAudio(info Info, seed uint64, dim, layers, classes int, outlier float64) *Network {
	r := tensor.NewRNG(seed)
	net := &audioNet{
		LN:   nn.NewLayerNorm(dim),
		Head: nn.NewLinear(dim, classes),
		dim:  dim,
	}
	chans := []int{1, 8, dim}
	for i := 0; i+1 < len(chans); i++ {
		c := nn.NewConv1d(chans[i], chans[i+1], 5, 4, 2)
		initConv1d(c, r)
		net.Convs = append(net.Convs, c)
	}
	initLN(net.LN, r)
	if outlier > 0 {
		spikeGammas(net.LN.Gamma, r, 1, outlier)
	}
	for i := 0; i < layers; i++ {
		l := nn.NewTransformerEncoderLayer(dim, 4, dim*2)
		initEncoderLayer(l, r)
		if outlier > 0 {
			spikeGammas(l.LN1.Gamma, r, 1, outlier)
		}
		net.Layers = append(net.Layers, l)
	}
	initLinear(net.Head, r)
	return &Network{
		Meta:      info,
		root:      net,
		fwd:       func(s data.Sample) *tensor.Tensor { return net.Forward(s.X) },
		Data:      &data.AudioDataset{N: 8, T: 256, NumBatches: nlpBatches, Seed: seed ^ 0xA0D10},
		Classes:   classes,
		plannable: true,
	}
}

func init() {
	infoW := Info{Name: "wav2vec2_librispeech", Domain: Audio, Task: "librispeech-sim",
		SizeMB: 360, HasLN: true, OutlierRatio: 20}
	register(infoW, func(seed uint64) *Network { return buildAudio(infoW, seed, 32, 2, 30, 20) })

	infoH := Info{Name: "hubert_librispeech", Domain: Audio, Task: "librispeech-sim",
		SizeMB: 360, HasLN: true, OutlierRatio: 20}
	register(infoH, func(seed uint64) *Network { return buildAudio(infoH, seed, 32, 2, 30, 20) })
}
