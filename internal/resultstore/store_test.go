package resultstore

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"fp8quant/internal/evalx"
	"fp8quant/internal/models"
)

func testKey() CellKey {
	return CellKey{
		Grid: "table2-sweep",
		Cell: []AxisValue{
			{Axis: "model", Value: "resnet50"},
			{Axis: "recipe", Value: "INT8 Static CV | Dynamic NLP"},
		},
		Seed:   0,
		Schema: SchemaVersion,
	}
}

func testResult() evalx.Result {
	return evalx.Result{
		Model: "resnet50", Domain: models.CV, Recipe: "INT8 Static CV | Dynamic NLP",
		BaseAcc: 1, QAcc: 0.9987654321012345, RelLoss: 0.0012345678987655, Pass: true,
		Metrics: map[string]float64{"aux": 0.3333333333333333},
	}
}

func testManifest() Manifest {
	k := testKey()
	return Manifest{
		Grid: "table2-sweep",
		Seed: 0,
		Axes: []ManifestAxis{
			{Name: "model", Values: []string{"resnet50"}},
			{Name: "recipe", Values: []string{"INT8 Static CV | Dynamic NLP"}},
		},
		Cells: []string{k.Fingerprint()},
	}
}

func TestCellRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey()
	if _, ok := s.LoadCell(k); ok {
		t.Fatal("empty store must miss")
	}
	r := testResult()
	if err := s.SaveCell(k, r); err != nil {
		t.Fatal(err)
	}
	got, ok := s.LoadCell(k)
	if !ok {
		t.Fatal("warm store must hit")
	}
	if !reflect.DeepEqual(got, r) {
		t.Errorf("cell = %+v, want exact %+v", got, r)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 write", st)
	}
}

func TestCorruptFileIsMissAndHealed(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey()
	if err := os.WriteFile(s.CellPath(k), []byte(`{"schema":2,"result":{truncated`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.LoadCell(k); ok {
		t.Fatal("corrupt file must be a miss")
	}
	// The recompute's SaveCell atomically replaces the corrupt entry.
	if err := s.SaveCell(k, testResult()); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.LoadCell(k); !ok {
		t.Fatal("healed slot must hit")
	}
}

func TestSchemaMismatchIsMiss(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey()
	// Simulate a cell written by an older code generation: same file
	// location, stale schema stamp in the envelope.
	b, _ := json.Marshal(cellEnvelope{Schema: k.Schema - 1, Key: k, Result: testResult()})
	if err := os.WriteFile(s.CellPath(k), b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.LoadCell(k); ok {
		t.Fatal("stale-schema entry must be a miss")
	}
	// A key mismatch (fingerprint collision / hand-edited file) is a
	// miss too.
	other := k
	other.Cell = []AxisValue{{Axis: "model", Value: "densenet121"}}
	b, _ = json.Marshal(cellEnvelope{Schema: k.Schema, Key: other, Result: testResult()})
	if err := os.WriteFile(s.CellPath(k), b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.LoadCell(k); ok {
		t.Fatal("key-mismatch entry must be a miss")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := testKey()
	fp := base.Fingerprint()
	mutate := []func(*CellKey){
		func(k *CellKey) { k.Grid = "other" },
		func(k *CellKey) { k.Cell[0].Value = "densenet121" },
		func(k *CellKey) { k.Cell[0], k.Cell[1] = k.Cell[1], k.Cell[0] }, // order matters
		func(k *CellKey) { k.Cell = k.Cell[:1] },
		func(k *CellKey) { k.Seed = 1 },
		func(k *CellKey) { k.Schema++ },
	}
	for i, mut := range mutate {
		k := testKey()
		mut(&k)
		if k.Fingerprint() == fp {
			t.Errorf("mutation %d did not change the fingerprint", i)
		}
	}
	if testKey().Fingerprint() != fp {
		t.Error("fingerprint must be deterministic")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.LoadManifest("table2-sweep", 0); ok {
		t.Fatal("empty store must miss manifests")
	}
	m := testManifest()
	if err := s.SaveManifest(m); err != nil {
		t.Fatal(err)
	}
	got, ok := s.LoadManifest("table2-sweep", 0)
	if !ok {
		t.Fatal("saved manifest must load")
	}
	m.Schema = SchemaVersion
	if !reflect.DeepEqual(got, m) {
		t.Errorf("manifest = %+v, want %+v", got, m)
	}
	// Manifest traffic must not pollute the cell counters.
	if st := s.Stats(); st != (Stats{}) {
		t.Errorf("manifest traffic counted in stats: %+v", st)
	}
	if _, ok := s.LoadManifest("table2-sweep", 7); ok {
		t.Error("different seed must miss")
	}
}

func TestPruneRemovesStaleEntries(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey()
	if err := s.SaveCell(k, testResult()); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveManifest(testManifest()); err != nil {
		t.Fatal(err)
	}
	// A schema-1 whole-grid blob from the pre-cell store, a corrupt
	// store-named cell file, and an abandoned temp file must go. A
	// *fresh* temp file (a possibly in-flight write) and foreign files
	// — even .json ones — must survive.
	stale := []string{
		"deadbeefdeadbeefdeadbeefdeadbeef.json",
		"c-0123456789abcdef0123456789abcdef.json",
		".cell-1234.tmp",
	}
	os.WriteFile(filepath.Join(dir, stale[0]), []byte(`{"schema":1,"key":{},"grid":[]}`), 0o644)
	os.WriteFile(filepath.Join(dir, stale[1]), []byte(`not json`), 0o644)
	os.WriteFile(filepath.Join(dir, stale[2]), []byte(`partial`), 0o644)
	old := time.Now().Add(-2 * tmpGrace)
	if err := os.Chtimes(filepath.Join(dir, stale[2]), old, old); err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(dir, ".cell-5678.tmp"), []byte(`in flight`), 0o644)
	os.WriteFile(filepath.Join(dir, "README.txt"), []byte(`keep me`), 0o644)
	os.WriteFile(filepath.Join(dir, "notes.json"), []byte(`{"mine": true}`), 0o644)

	n, err := s.Prune(0)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(stale) {
		t.Errorf("Prune removed %d files, want %d", n, len(stale))
	}
	for _, f := range stale {
		if _, err := os.Stat(filepath.Join(dir, f)); !os.IsNotExist(err) {
			t.Errorf("stale file %s survived Prune", f)
		}
	}
	for _, keep := range []string{"README.txt", "notes.json"} {
		if _, err := os.Stat(filepath.Join(dir, keep)); err != nil {
			t.Errorf("Prune must not touch foreign file %s", keep)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, ".cell-5678.tmp")); err != nil {
		t.Error("Prune must not delete a fresh (possibly in-flight) temp file")
	}
	if _, ok := s.LoadCell(k); !ok {
		t.Error("current-schema cell must survive Prune(0)")
	}
	if _, ok := s.LoadManifest("table2-sweep", 0); !ok {
		t.Error("current-schema manifest must survive Prune(0)")
	}
}

func TestPruneMaxAge(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey()
	if err := s.SaveCell(k, testResult()); err != nil {
		t.Fatal(err)
	}
	// Fresh entry survives an age-bounded prune...
	if n, err := s.Prune(time.Hour); err != nil || n != 0 {
		t.Fatalf("Prune(1h) on fresh entry = %d, %v; want 0, nil", n, err)
	}
	// ...but an old one is removed.
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(s.CellPath(k), old, old); err != nil {
		t.Fatal(err)
	}
	n, err := s.Prune(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("Prune(1h) removed %d files, want 1", n)
	}
	if _, ok := s.LoadCell(k); ok {
		t.Error("aged-out cell should be gone")
	}
}

func TestNilStoreIsInert(t *testing.T) {
	var s *Store
	if _, ok := s.LoadCell(testKey()); ok {
		t.Error("nil store must miss")
	}
	if err := s.SaveCell(testKey(), testResult()); err != nil {
		t.Error("nil store SaveCell must be a no-op")
	}
	if err := s.SaveManifest(testManifest()); err != nil {
		t.Error("nil store SaveManifest must be a no-op")
	}
	if _, ok := s.LoadManifest("x", 0); ok {
		t.Error("nil store must miss manifests")
	}
	if n, err := s.Prune(0); n != 0 || err != nil {
		t.Error("nil store Prune must be a no-op")
	}
	if s.Stats() != (Stats{}) || s.Dir() != "" {
		t.Error("nil store must report empty stats and dir")
	}
}

func TestAtomicWriteLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveCell(testKey(), testResult()); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveManifest(testManifest()); err != nil {
		t.Fatal(err)
	}
	tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if len(tmps) != 0 {
		t.Errorf("temp files left behind: %v", tmps)
	}
}
