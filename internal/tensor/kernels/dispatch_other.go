//go:build !amd64

package kernels

// archKernels returns the architecture's assembly tiers, best-first.
// Non-amd64 hosts have none: the portable generic tier (registered by
// variant.go) is the only — and therefore active — variant.
func archKernels() []*kernel { return nil }

// blockRowsOf dispatches to the variant's block loop; without assembly
// tiers there is only the generic one.
func blockRowsOf(_ *kernel, y, x, panel []float32, r, rb, in, out int, opt Opt) {
	blockRowsGeneric(y, x, panel, r, rb, in, out, opt)
}
