package fp8

import (
	"math"
	"testing"

	"fp8quant/internal/tensor"
)

func TestStochasticRoundsToNeighbours(t *testing.T) {
	r := tensor.NewRNG(1)
	for _, f := range Formats {
		for _, x := range []float64{0.3, 1.7, -2.4, 0.013, 14.2} {
			if math.Abs(x) >= f.MaxValue() {
				continue
			}
			lo := f.floorQuantize(math.Abs(x))
			hi := f.nextUp(lo)
			for i := 0; i < 50; i++ {
				q := f.QuantizeStochastic(x, r)
				aq := math.Abs(q)
				if aq != lo && aq != hi {
					t.Fatalf("%s: stochastic %v -> %v, want %v or %v", f, x, q, lo, hi)
				}
				if math.Signbit(q) != math.Signbit(x) && q != 0 {
					t.Fatalf("%s: sign flipped: %v -> %v", f, x, q)
				}
			}
		}
	}
}

// TestStochasticUnbiased verifies the defining property: the expected
// value of stochastic rounding equals the input.
func TestStochasticUnbiased(t *testing.T) {
	r := tensor.NewRNG(2)
	f := E4M3
	x := 1.3 // strictly between grid points 1.25 and 1.375
	const n = 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += f.QuantizeStochastic(x, r)
	}
	mean := sum / n
	if math.Abs(mean-x) > 0.005 {
		t.Errorf("stochastic mean = %v, want ~%v", mean, x)
	}
	// RNE, by contrast, is deterministic and biased for this input.
	if q := f.Quantize(x); q == x {
		t.Errorf("test value %v should not be on the grid", x)
	}
}

func TestStochasticSpecials(t *testing.T) {
	r := tensor.NewRNG(3)
	if !math.IsNaN(E4M3.QuantizeStochastic(math.NaN(), r)) {
		t.Error("NaN must pass through")
	}
	if got := E4M3.QuantizeStochastic(0, r); got != 0 {
		t.Errorf("zero -> %v", got)
	}
	if got := E4M3.QuantizeStochastic(1e9, r); got != 448 {
		t.Errorf("overflow -> %v, want saturation", got)
	}
	// Exact grid points stay put.
	if got := E4M3.QuantizeStochastic(0.5, r); got != 0.5 {
		t.Errorf("grid point moved: %v", got)
	}
}

func TestGridNeighbours(t *testing.T) {
	for _, f := range Formats {
		pts := f.GridPoints()
		for i := 2; i < len(pts)-1; i++ {
			if up := f.nextUp(pts[i]); up != pts[i+1] {
				t.Errorf("%s: nextUp(%v) = %v, want %v", f, pts[i], up, pts[i+1])
			}
			if down := f.prevDown(pts[i]); down != pts[i-1] {
				t.Errorf("%s: prevDown(%v) = %v, want %v", f, pts[i], down, pts[i-1])
			}
		}
	}
}
