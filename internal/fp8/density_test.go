package fp8

import (
	"math"
	"testing"
	"testing/quick"
)

// TestDensityLaw checks Appendix A.1 Eq. 4: D = 2^(m - floor(log2 N)).
func TestDensityLaw(t *testing.T) {
	for _, f := range Formats {
		for _, n := range []float64{0.5, 1, 1.5, 2, 3, 4, 10, 16, 29} {
			want := math.Ldexp(1, int(f.ManBits)-int(math.Floor(math.Log2(n))))
			if got := f.Density(n); got != want {
				t.Errorf("%s Density(%v) = %v, want %v", f, n, got, want)
			}
		}
	}
}

// Property: density halves when magnitude doubles (within binades).
func TestDensityHalvesPerBinade(t *testing.T) {
	prop := func(e int8) bool {
		n := math.Ldexp(1, int(e%20))
		for _, f := range Formats {
			if f.Density(2*n) != f.Density(n)/2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: more mantissa bits => denser grid at the same magnitude.
func TestMoreMantissaDenser(t *testing.T) {
	for _, n := range []float64{0.1, 0.5, 1, 2, 8, 20} {
		if !(E3M4.Density(n) > E4M3.Density(n) && E4M3.Density(n) > E5M2.Density(n)) {
			t.Errorf("density ordering violated at n=%v: E3M4=%v E4M3=%v E5M2=%v",
				n, E3M4.Density(n), E4M3.Density(n), E5M2.Density(n))
		}
	}
}

// TestStepMatchesGrid verifies StepAt agrees with actual adjacent grid
// point spacing in the normal range.
func TestStepMatchesGrid(t *testing.T) {
	for _, f := range Formats {
		pts := f.GridPoints()
		for i := 2; i < len(pts)-1; i++ {
			lo, hi := pts[i], pts[i+1]
			if lo < f.MinNormal() {
				continue
			}
			mid := (lo + hi) / 2
			if got := f.StepAt(mid); math.Abs(got-(hi-lo)) > 1e-12*hi {
				t.Errorf("%s StepAt(%v) = %v, grid spacing %v", f, mid, got, hi-lo)
			}
		}
	}
}

// TestFP8VsInt8DensityNearZero quantifies Figure 1's center panel: FP8
// formats concentrate far more grid points inside the 3-sigma region of
// a standard-normal-ish tensor whose absmax is stretched by outliers.
func TestFP8VsInt8DensityNearZero(t *testing.T) {
	const absmax = 6.0 // outliers at ±6
	const sigma3 = 2.1 // 3σ for σ²=0.5
	int8In := 0
	for _, p := range Int8GridPoints(absmax) {
		if p <= sigma3 {
			int8In++
		}
	}
	for _, f := range []Format{E4M3, E3M4} {
		scale := f.MaxValue() / absmax
		fp8In := 0
		for _, p := range f.GridPoints() {
			if p/scale <= sigma3 {
				fp8In++
			}
		}
		if fp8In <= int8In {
			t.Errorf("%s grid points in 3σ = %d, INT8 = %d: FP8 should dominate",
				f, fp8In, int8In)
		}
	}
}
