package fp8

import (
	"math"
	"testing"
)

func TestNewMatchesPaperFormats(t *testing.T) {
	e4m3, err := New(4, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if e4m3.Bias != E4M3.Bias || e4m3.MaxValue() != E4M3.MaxValue() {
		t.Errorf("New(4,3) = %+v differs from E4M3", e4m3)
	}
	e5m2, _ := New(5, 2, true)
	if e5m2.MaxValue() != E5M2.MaxValue() {
		t.Errorf("New(5,2) max %v != %v", e5m2.MaxValue(), E5M2.MaxValue())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(4, 4, false); err == nil {
		t.Error("8-bit payload should be rejected")
	}
	if _, err := New(1, 6, false); err == nil {
		t.Error("1 exponent bit should be rejected")
	}
}

func TestE2M5RoundTrip(t *testing.T) {
	e2m5, err := New(2, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	// All finite code points round-trip.
	for b := 0; b < 256; b++ {
		c := uint8(b)
		v := e2m5.Decode(c)
		if math.IsNaN(v) {
			continue
		}
		got := e2m5.Encode(v)
		if got != c && !(v == 0 && got&0x7F == 0) {
			t.Fatalf("E2M5 code %#02x (%v) re-encoded to %#02x", c, v, got)
		}
	}
	// More mantissa bits than E3M4 -> denser grid at unit scale.
	if !(e2m5.Density(1) > E3M4.Density(1)) {
		t.Error("E2M5 should be denser than E3M4 near 1")
	}
	// But far smaller dynamic range.
	if !(e2m5.MaxValue() < E3M4.MaxValue()) {
		t.Errorf("E2M5 max %v should be below E3M4 max %v", e2m5.MaxValue(), E3M4.MaxValue())
	}
}

func TestWithBiasShiftsRange(t *testing.T) {
	shifted := E4M3.WithBias(3) // bias 7 -> 3 shifts range up by 2^4
	ratio := shifted.MaxValue() / E4M3.MaxValue()
	if math.Abs(ratio-16) > 1e-9 {
		t.Errorf("bias shift ratio = %v, want 16", ratio)
	}
	// Quantization still round-trips on the shifted grid.
	v := shifted.Quantize(1000)
	if shifted.Quantize(v) != v {
		t.Error("shifted format not idempotent")
	}
	if shifted.Name == E4M3.Name {
		t.Error("shifted format should carry a distinct name")
	}
}
