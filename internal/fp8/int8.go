package fp8

import "math"

// Int8Symmetric implements symmetric signed INT8 quantization with a
// single positive scale: q = clamp(round(x/scale), -127, 127),
// dequant = q*scale. This mirrors the INT8 baseline scheme used in the
// paper's comparison (symmetric, scale = absmax/127).
type Int8Symmetric struct {
	// Scale maps quantized units back to real values. Must be > 0.
	Scale float64
}

// NewInt8Symmetric builds a symmetric INT8 quantizer from the calibrated
// absolute-maximum value of a tensor. A zero or negative absmax yields a
// degenerate quantizer with scale 1.
func NewInt8Symmetric(absmax float64) Int8Symmetric {
	if absmax <= 0 || math.IsNaN(absmax) || math.IsInf(absmax, 0) {
		return Int8Symmetric{Scale: 1}
	}
	return Int8Symmetric{Scale: absmax / 127}
}

// Encode quantizes x to an int8 code.
func (q Int8Symmetric) Encode(x float64) int8 {
	v := math.RoundToEven(x / q.Scale)
	if v > 127 {
		v = 127
	} else if v < -127 {
		v = -127
	}
	return int8(v)
}

// Decode converts an int8 code back to a real value.
func (q Int8Symmetric) Decode(c int8) float64 { return float64(c) * q.Scale }

// Quantize rounds x to its nearest representable INT8 value.
func (q Int8Symmetric) Quantize(x float64) float64 { return q.Decode(q.Encode(x)) }

// QuantizeSlice applies Quantize element-wise, writing into dst (which
// may alias src). It returns dst.
func (q Int8Symmetric) QuantizeSlice(dst, src []float32) []float32 {
	for i, v := range src {
		dst[i] = float32(q.Quantize(float64(v)))
	}
	return dst
}

// Int8Asymmetric implements affine (asymmetric) unsigned INT8
// quantization: q = clamp(round(x/scale)+zp, 0, 255). Used for
// activation tensors with non-symmetric ranges in the INT8 baseline.
type Int8Asymmetric struct {
	Scale     float64
	ZeroPoint int
}

// NewInt8Asymmetric builds an affine quantizer covering [min, max].
func NewInt8Asymmetric(min, max float64) Int8Asymmetric {
	if min > 0 {
		min = 0
	}
	if max < 0 {
		max = 0
	}
	scale := (max - min) / 255
	if scale <= 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		return Int8Asymmetric{Scale: 1, ZeroPoint: 0}
	}
	zp := int(math.RoundToEven(-min / scale))
	if zp < 0 {
		zp = 0
	} else if zp > 255 {
		zp = 255
	}
	return Int8Asymmetric{Scale: scale, ZeroPoint: zp}
}

// Encode quantizes x to an unsigned 8-bit code.
func (q Int8Asymmetric) Encode(x float64) uint8 {
	v := math.RoundToEven(x/q.Scale) + float64(q.ZeroPoint)
	if v > 255 {
		v = 255
	} else if v < 0 {
		v = 0
	}
	return uint8(v)
}

// Decode converts a code back to a real value.
func (q Int8Asymmetric) Decode(c uint8) float64 {
	return (float64(c) - float64(q.ZeroPoint)) * q.Scale
}

// Quantize rounds x to its nearest representable value.
func (q Int8Asymmetric) Quantize(x float64) float64 { return q.Decode(q.Encode(x)) }

// QuantizeSlice applies Quantize element-wise, writing into dst.
func (q Int8Asymmetric) QuantizeSlice(dst, src []float32) []float32 {
	for i, v := range src {
		dst[i] = float32(q.Quantize(float64(v)))
	}
	return dst
}

// Int8GridPoints returns the non-negative representable values of a
// symmetric INT8 quantizer, for grid-density comparisons (Figure 1).
func Int8GridPoints(absmax float64) []float64 {
	q := NewInt8Symmetric(absmax)
	pts := make([]float64, 0, 128)
	for c := 0; c <= 127; c++ {
		pts = append(pts, q.Decode(int8(c)))
	}
	return pts
}
