// Package quant implements the paper's primary contribution: a unified
// post-training FP8 quantization workflow (Figure 2) with a standard
// scheme (per-channel weight scaling, per-tensor activation scaling,
// max calibration, static quantization of Conv/Linear/Embedding, first
// and last convolution layers kept in FP32) and an extended scheme
// (expanded operator coverage, mixed FP8 formats, dynamic quantization,
// BatchNorm re-calibration, SmoothQuant) plus an accuracy-driven
// auto-tuner.
package quant

import (
	"math"

	"fp8quant/internal/fp8"
	"fp8quant/internal/tensor"
)

// Observer accumulates activation statistics during calibration and
// produces the calibrated range used to derive quantization scales.
type Observer interface {
	// Observe records a batch of activation values.
	Observe(values []float32)
	// Range returns the calibrated (min, max) of the observed data
	// after the observer's clipping policy.
	Range() (min, max float64)
	// AbsMax returns the calibrated maximum absolute value.
	AbsMax() float64
}

// MinMaxObserver tracks the raw running min/max — the paper's
// recommended "simple max scaling" which it found sufficient for E4M3
// and E3M4 outlier handling (Section 3).
type MinMaxObserver struct {
	min, max float64
	seen     bool
}

// NewMinMaxObserver returns an empty observer.
func NewMinMaxObserver() *MinMaxObserver { return &MinMaxObserver{} }

// Observe implements Observer.
func (o *MinMaxObserver) Observe(values []float32) {
	for _, v := range values {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			continue
		}
		if !o.seen {
			o.min, o.max = f, f
			o.seen = true
			continue
		}
		if f < o.min {
			o.min = f
		}
		if f > o.max {
			o.max = f
		}
	}
}

// Range implements Observer.
func (o *MinMaxObserver) Range() (float64, float64) {
	if !o.seen {
		return 0, 0
	}
	return o.min, o.max
}

// AbsMax implements Observer.
func (o *MinMaxObserver) AbsMax() float64 {
	mn, mx := o.Range()
	return math.Max(math.Abs(mn), math.Abs(mx))
}

// PercentileObserver clips the range to a high percentile of the
// observed magnitudes, discarding extreme outliers. It keeps a bounded
// reservoir sample for the percentile estimate.
type PercentileObserver struct {
	// Pct is the percentile in (0, 100], e.g. 99.99.
	Pct       float64
	reservoir []float32
	rng       *tensor.RNG
	n         int
	mm        MinMaxObserver
}

// NewPercentileObserver returns an observer clipping at pct.
func NewPercentileObserver(pct float64) *PercentileObserver {
	return &PercentileObserver{Pct: pct, rng: tensor.NewRNG(0xCA11B)}
}

const reservoirCap = 1 << 15

// Observe implements Observer (reservoir sampling of |v|).
func (o *PercentileObserver) Observe(values []float32) {
	o.mm.Observe(values)
	for _, v := range values {
		a := v
		if a < 0 {
			a = -a
		}
		o.n++
		if len(o.reservoir) < reservoirCap {
			o.reservoir = append(o.reservoir, a)
		} else if j := o.rng.Intn(o.n); j < reservoirCap {
			o.reservoir[j] = a
		}
	}
}

// AbsMax implements Observer.
func (o *PercentileObserver) AbsMax() float64 {
	if len(o.reservoir) == 0 {
		return 0
	}
	return tensor.Percentile(o.reservoir, o.Pct)
}

// Range implements Observer: the clipped symmetric range.
func (o *PercentileObserver) Range() (float64, float64) {
	am := o.AbsMax()
	mn, mx := o.mm.Range()
	return math.Max(mn, -am), math.Min(mx, am)
}

// HistogramObserver maintains a fixed-bin histogram of magnitudes; the
// KL and MSE calibrators are built on it.
type HistogramObserver struct {
	Bins   int
	counts []float64
	width  float64
	mm     MinMaxObserver
	// buffered values seen before the width is pinned.
	pending []float32
}

// NewHistogramObserver returns an observer with the given bin count.
func NewHistogramObserver(bins int) *HistogramObserver {
	return &HistogramObserver{Bins: bins}
}

// Observe implements Observer. The first batch pins the histogram
// width at 1.25× its absmax; later batches clamp into the top bin
// (matching TensorRT-style calibrator behaviour).
func (o *HistogramObserver) Observe(values []float32) {
	o.mm.Observe(values)
	if o.counts == nil {
		o.pending = append(o.pending, values...)
		am := 0.0
		for _, v := range o.pending {
			a := math.Abs(float64(v))
			if a > am {
				am = a
			}
		}
		if am == 0 {
			return // wait for non-zero data
		}
		o.counts = make([]float64, o.Bins)
		o.width = am * 1.25 / float64(o.Bins)
		vals := o.pending
		o.pending = nil
		o.add(vals)
		return
	}
	o.add(values)
}

func (o *HistogramObserver) add(values []float32) {
	for _, v := range values {
		a := math.Abs(float64(v))
		b := int(a / o.width)
		if b >= o.Bins {
			b = o.Bins - 1
		}
		o.counts[b]++
	}
}

// AbsMax implements Observer (unclipped).
func (o *HistogramObserver) AbsMax() float64 { return o.mm.AbsMax() }

// Range implements Observer (unclipped).
func (o *HistogramObserver) Range() (float64, float64) { return o.mm.Range() }

// Quantizer abstracts a scalar quantize-dequantize rule so KL/MSE
// threshold searches work for both INT8 and FP8 targets.
type Quantizer interface {
	Quantize(x float64) float64
}

// scaledFP8 quantizes through an FP8 format with a pre-scale mapping
// threshold T onto the format's max value.
type scaledFP8 struct {
	f     fp8.Format
	scale float64 // multiply before encode
}

func (s scaledFP8) Quantize(x float64) float64 {
	return s.f.Quantize(x*s.scale) / s.scale
}

// NewScaledFP8 returns a Quantizer mapping |x| <= threshold onto the
// full encoding range of format f.
func NewScaledFP8(f fp8.Format, threshold float64) Quantizer {
	if threshold <= 0 {
		threshold = 1
	}
	return scaledFP8{f: f, scale: f.MaxValue() / threshold}
}

// KLThreshold searches for the clip threshold that minimizes the KL
// divergence between the observed magnitude distribution and its
// quantized counterpart under the given target grid (TensorRT-style
// entropy calibration, generalized to FP8 grids so that the Appendix
// A.1 / Figure 10 comparison can be reproduced).
func (o *HistogramObserver) KLThreshold(mk func(threshold float64) Quantizer) float64 {
	if o.counts == nil {
		return o.AbsMax()
	}
	bins := o.Bins
	best := math.Inf(1)
	bestT := o.AbsMax()
	// Candidate thresholds sweep the top 3/4 of the histogram.
	for i := bins / 4; i <= bins; i += bins / 64 {
		t := float64(i) * o.width
		// Reference distribution: clip everything above t into the
		// last kept bin.
		p := make([]float64, i)
		copy(p, o.counts[:i])
		for j := i; j < bins; j++ {
			p[i-1] += o.counts[j]
		}
		// Quantized distribution: push each kept bin centre through
		// the quantizer and re-accumulate mass at the quantized
		// positions (re-binned on the same grid).
		q := make([]float64, i)
		quant := mk(t)
		for j := 0; j < i; j++ {
			if p[j] == 0 {
				continue
			}
			c := (float64(j) + 0.5) * o.width
			qc := quant.Quantize(c)
			b := int(qc / o.width)
			if b < 0 {
				b = 0
			}
			if b >= i {
				b = i - 1
			}
			q[b] += p[j]
		}
		kl := tensor.KLDivergence(normalizeDist(p), normalizeDist(q))
		if kl < best {
			best = kl
			bestT = t
		}
	}
	return bestT
}

// MSEThreshold searches candidate clip thresholds for the one that
// minimizes the quantization MSE of the observed distribution.
func (o *HistogramObserver) MSEThreshold(mk func(threshold float64) Quantizer) float64 {
	if o.counts == nil {
		return o.AbsMax()
	}
	am := o.AbsMax()
	if am == 0 {
		return 0
	}
	best := math.Inf(1)
	bestT := am
	for _, frac := range []float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0, 1.05, 1.1} {
		t := am * frac
		quant := mk(t)
		mse := 0.0
		total := 0.0
		for j, c := range o.counts {
			if c == 0 {
				continue
			}
			v := (float64(j) + 0.5) * o.width
			d := quant.Quantize(v) - v
			mse += c * d * d
			total += c
		}
		if total > 0 {
			mse /= total
		}
		if mse < best {
			best = mse
			bestT = t
		}
	}
	return bestT
}

func normalizeDist(v []float64) []float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	out := make([]float64, len(v))
	if s == 0 {
		return out
	}
	for i, x := range v {
		out[i] = x / s
	}
	return out
}

// CalibMethod selects the range-calibration algorithm.
type CalibMethod int

// Supported calibration methods. The paper found Max sufficient for
// FP8; KL, MSE and Percentile are provided for the comparison studies
// (Appendix A.1).
const (
	CalibMax CalibMethod = iota
	CalibKL
	CalibMSE
	CalibPercentile
)

// String names the method.
func (c CalibMethod) String() string {
	switch c {
	case CalibMax:
		return "max"
	case CalibKL:
		return "kl"
	case CalibMSE:
		return "mse"
	case CalibPercentile:
		return "percentile"
	}
	return "unknown"
}

// NewObserver constructs the observer implementing the given method.
func NewObserver(m CalibMethod) Observer {
	switch m {
	case CalibKL, CalibMSE:
		return NewHistogramObserver(2048)
	case CalibPercentile:
		return NewPercentileObserver(99.99)
	default:
		return NewMinMaxObserver()
	}
}

// CalibratedThreshold resolves the final clip threshold for an
// observer under the given method and target quantizer family.
func CalibratedThreshold(o Observer, m CalibMethod, mk func(threshold float64) Quantizer) float64 {
	switch m {
	case CalibKL:
		if h, ok := o.(*HistogramObserver); ok {
			return h.KLThreshold(mk)
		}
	case CalibMSE:
		if h, ok := o.(*HistogramObserver); ok {
			return h.MSEThreshold(mk)
		}
	}
	return o.AbsMax()
}

// ChannelAbsMax returns per-channel absolute maxima of a weight tensor
// along the given channel dimension (dim 0 for [Out, ...] weights).
func ChannelAbsMax(w *tensor.Tensor, dim int) []float64 {
	if dim != 0 {
		panic("quant: only leading-dim channel scaling is supported")
	}
	out := w.Shape[0]
	per := w.Len() / out
	res := make([]float64, out)
	for c := 0; c < out; c++ {
		seg := w.Data[c*per : (c+1)*per]
		m := 0.0
		for _, v := range seg {
			a := math.Abs(float64(v))
			if a > m {
				m = a
			}
		}
		res[c] = m
	}
	return res
}
