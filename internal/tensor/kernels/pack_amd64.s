#include "textflag.h"

// func packT8x4(dst, src *float32, in, n4 int)
//
// Interleaves 8 contiguous source rows (row stride `in` floats) into
// the micro-panel layout, 4 panel rows per iteration via two 4x4 SSE
// register transposes:
//
//   dst[k*8 + j] = src[j*in + k]   for k in [0, 4*n4), j in [0, 8)
//
// A pure copy — no arithmetic — so the bytes match the Go row walk
// exactly. SSE1 shuffles only (amd64 baseline); independent of the
// active GEMM variant.
TEXT ·packT8x4(SB), NOSPLIT, $0-32
	MOVQ  dst+0(FP), DI
	MOVQ  src+8(FP), SI
	MOVQ  in+16(FP), AX
	MOVQ  n4+24(FP), CX
	TESTQ CX, CX
	JLE   done

	// Byte stride between rows; row pointers SI, R8..R14.
	SHLQ $2, AX
	LEAQ (SI)(AX*1), R8
	LEAQ (R8)(AX*1), R9
	LEAQ (R9)(AX*1), R10
	LEAQ (R10)(AX*1), R11
	LEAQ (R11)(AX*1), R12
	LEAQ (R12)(AX*1), R13
	LEAQ (R13)(AX*1), R14

loop:
	// Four consecutive k from each of the eight rows.
	MOVUPS (SI), X0
	MOVUPS (R8), X1
	MOVUPS (R9), X2
	MOVUPS (R10), X3
	MOVUPS (R11), X4
	MOVUPS (R12), X5
	MOVUPS (R13), X6
	MOVUPS (R14), X7

	// 4x4 transpose of rows 0-3: X8=[a0 b0 a1 b1], X0=[a2 b2 a3 b3],
	// X9=[c0 d0 c1 d1], X2=[c2 d2 c3 d3].
	MOVAPS   X0, X8
	UNPCKLPS X1, X8
	UNPCKHPS X1, X0
	MOVAPS   X2, X9
	UNPCKLPS X3, X9
	UNPCKHPS X3, X2

	// Same for rows 4-7.
	MOVAPS   X4, X10
	UNPCKLPS X5, X10
	UNPCKHPS X5, X4
	MOVAPS   X6, X11
	UNPCKLPS X7, X11
	UNPCKHPS X7, X6

	// Panel row k+0: [a0 b0 c0 d0 | e0 f0 g0 h0].
	MOVAPS  X8, X12
	MOVLHPS X9, X12
	MOVUPS  X12, (DI)
	MOVAPS  X10, X13
	MOVLHPS X11, X13
	MOVUPS  X13, 16(DI)

	// Panel row k+1: highs of the low-unpacks.
	MOVAPS  X9, X12
	MOVHLPS X8, X12
	MOVUPS  X12, 32(DI)
	MOVAPS  X11, X13
	MOVHLPS X10, X13
	MOVUPS  X13, 48(DI)

	// Panel row k+2.
	MOVAPS  X0, X12
	MOVLHPS X2, X12
	MOVUPS  X12, 64(DI)
	MOVAPS  X4, X13
	MOVLHPS X6, X13
	MOVUPS  X13, 80(DI)

	// Panel row k+3.
	MOVAPS  X2, X12
	MOVHLPS X0, X12
	MOVUPS  X12, 96(DI)
	MOVAPS  X6, X13
	MOVHLPS X4, X13
	MOVUPS  X13, 112(DI)

	ADDQ $16, SI
	ADDQ $16, R8
	ADDQ $16, R9
	ADDQ $16, R10
	ADDQ $16, R11
	ADDQ $16, R12
	ADDQ $16, R13
	ADDQ $16, R14
	ADDQ $128, DI
	DECQ CX
	JNZ  loop

done:
	RET
