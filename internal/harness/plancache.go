// Per-model execution-plan pool. A compiled plan's arenas are sized by
// the model's forward footprint, which depends only on the architecture
// and the (fixed per model) eval batch shape — so a plan warmed by one
// sweep cell can be rebound to the next cell's freshly built network of
// the same model and run with zero steady-state allocations. Pooling is
// per model name; sync.Pool keeps one plan per concurrently running
// cell without serializing the executor.

package harness

import (
	"sync"

	"fp8quant/internal/models"
	"fp8quant/internal/nn"
)

var planPools sync.Map // model name -> *sync.Pool of *nn.Plan

// withPlan installs a pooled execution plan on net (a no-op for
// non-plannable models) and returns a release function that detaches
// the plan and returns it to the pool. Planned forwards are
// byte-identical to unplanned ones, so cell results are unaffected.
func withPlan(name string, net *models.Network) func() {
	if !net.Plannable() {
		return func() {}
	}
	pi, _ := planPools.LoadOrStore(name, &sync.Pool{})
	pool := pi.(*sync.Pool)
	var p *nn.Plan
	if v := pool.Get(); v != nil {
		p = v.(*nn.Plan)
	} else {
		p = nn.NewPlan(nil)
	}
	net.InstallPlan(p)
	return func() {
		net.InstallPlan(nil)
		p.Bind(nil) // do not keep the network reachable from the pool
		pool.Put(p)
	}
}
