package quant

import (
	"sort"

	"fp8quant/internal/data"
	"fp8quant/internal/nn"
)

// Trial records one configuration attempt during auto-tuning.
type Trial struct {
	Recipe   Recipe
	Accuracy float64
	RelLoss  float64
	Passed   bool
}

// TuneResult is the outcome of AutoTune.
type TuneResult struct {
	// Best is the selected recipe (zero Recipe when nothing passed).
	Best Recipe
	// Accuracy is the quantized accuracy under Best.
	Accuracy float64
	// Passed reports whether Best met the accuracy goal.
	Passed bool
	// Trials lists every configuration evaluated, in order.
	Trials []Trial
}

// AutoTune implements the paper's accuracy-driven tuning loop (Figure 2
// feedback path and Appendix A.1): it tries candidate recipes in order,
// then falls back operators to FP32 greedily until the accuracy goal
// (relative loss <= maxRelLoss against baseline) is met or the trial
// budget is exhausted.
//
// eval must measure the model's current accuracy (it is called with the
// model both quantized and restored). The model is always restored to
// FP32 before AutoTune returns; callers re-apply the winning recipe
// with Quantize(m, ds, result.Best).
func AutoTune(m Model, ds data.Dataset, eval func() float64, baseline float64,
	candidates []Recipe, maxRelLoss float64, maxTrials int) TuneResult {

	res := TuneResult{}
	try := func(r Recipe) Trial {
		h := Quantize(m, ds, r)
		acc := eval()
		h.Release()
		rl := data.RelativeLoss(baseline, acc)
		t := Trial{Recipe: r, Accuracy: acc, RelLoss: rl, Passed: rl <= maxRelLoss+1e-12}
		res.Trials = append(res.Trials, t)
		return t
	}

	best := Trial{Accuracy: -1}
	for _, r := range candidates {
		if len(res.Trials) >= maxTrials {
			break
		}
		t := try(r)
		if t.Accuracy > best.Accuracy {
			best = t
		}
		if t.Passed {
			res.Best, res.Accuracy, res.Passed = t.Recipe, t.Accuracy, true
			return res
		}
	}
	if best.Accuracy < 0 {
		return res
	}

	// Greedy operator fallback on the best candidate: repeatedly move
	// the quantized op whose exclusion recovers the most accuracy to
	// FP32.
	current := best
	paths := fallbackCandidates(m)
	for len(res.Trials) < maxTrials && !current.Passed && len(paths) > 0 {
		bestGain := current
		bestPath := ""
		for _, p := range paths {
			if len(res.Trials) >= maxTrials {
				break
			}
			t := try(current.Recipe.WithFallback(p))
			if t.Accuracy > bestGain.Accuracy {
				bestGain = t
				bestPath = p
			}
			if t.Passed {
				bestGain = t
				bestPath = p
				break
			}
		}
		if bestPath == "" {
			break // no single fallback helps further
		}
		current = bestGain
		// Remove the chosen path from future candidates.
		out := paths[:0]
		for _, p := range paths {
			if p != bestPath {
				out = append(out, p)
			}
		}
		paths = out
	}
	res.Best, res.Accuracy, res.Passed = current.Recipe, current.Accuracy, current.Passed
	return res
}

// fallbackCandidates lists the parametric op paths of the model in a
// deterministic order — the search space for greedy FP32 fallback.
func fallbackCandidates(m Model) []string {
	var paths []string
	nn.Walk(m.Root(), func(path string, mod nn.Module) {
		switch mod.(type) {
		case *nn.Linear, *nn.Conv2d, *nn.Conv1d, *nn.Embedding, *nn.EmbeddingBag:
			paths = append(paths, path)
		}
	})
	sort.Strings(paths)
	return paths
}

// DefaultCandidates returns the recipe ladder the tuner walks for a
// given domain, ordered cheapest-first: the paper's recommended format
// per domain, then alternatives, then mixed formats and dynamic
// variants.
func DefaultCandidates(isCNN bool) []Recipe {
	if isCNN {
		return []Recipe{
			StandardFP8(E3M4),
			StandardFP8(E4M3),
			DynamicFP8(E3M4),
			StandardFP8(E5M2),
		}
	}
	return []Recipe{
		StandardFP8(E4M3),
		MixedFP8(),
		DynamicFP8(E4M3),
		StandardFP8(E3M4),
		DynamicFP8(E3M4),
		StandardFP8(E5M2),
	}
}
