// Package diffusion implements a miniature latent diffusion pipeline —
// a conditioned U-Net denoiser iterated over a deterministic denoise
// schedule — plus exact diagonal-Gaussian FID, reproducing the Figure 6
// / Appendix A.2 Stable Diffusion image-quality comparison. The paper's
// FID ordering across quantization formats follows per-step denoiser
// error; the same quantity drives this simulation.
package diffusion

import (
	"math"

	"fp8quant/internal/data"
	"fp8quant/internal/nn"
	"fp8quant/internal/tensor"
)

// Latent geometry of the miniature pipeline.
const (
	LatentC = 4
	LatentH = 8
	LatentW = 8
	// Steps is the number of denoising iterations.
	Steps = 6
)

// Denoiser is the conditioned latent U-Net: two GroupNorm+SiLU conv
// stages with a skip connection, plus a prompt-conditioning projection
// added to the bottleneck (a stand-in for cross-attention).
type Denoiser struct {
	Enc1, Enc2 *gnConv
	Dec1       *gnConv
	Out        *nn.Conv2d
	CondProj   *nn.Linear
	condDim    int
}

// gnConv is Conv → GroupNorm → SiLU.
type gnConv struct {
	Conv *nn.Conv2d
	GN   *nn.GroupNorm
}

// Kind implements nn.Module.
func (g *gnConv) Kind() string { return "GNConv" }

// Visit implements nn.Container.
func (g *gnConv) Visit(path string, v nn.Visitor) {
	nn.WalkChild(path+"/conv", g.Conv, v)
	nn.WalkChild(path+"/gn", g.GN, v)
}

// Forward runs the unit.
func (g *gnConv) Forward(x *tensor.Tensor) *tensor.Tensor {
	var act nn.SiLU
	return act.Forward(g.GN.Forward(g.Conv.Forward(x)))
}

// Kind implements nn.Module.
func (d *Denoiser) Kind() string { return "Denoiser" }

// Visit implements nn.Container.
func (d *Denoiser) Visit(path string, v nn.Visitor) {
	nn.WalkChild(path+"/enc1", d.Enc1, v)
	nn.WalkChild(path+"/enc2", d.Enc2, v)
	nn.WalkChild(path+"/dec1", d.Dec1, v)
	nn.WalkChild(path+"/out", d.Out, v)
	nn.WalkChild(path+"/cond", d.CondProj, v)
}

// Forward denoises latents without conditioning (Module interface).
func (d *Denoiser) Forward(x *tensor.Tensor) *tensor.Tensor {
	return d.Denoise(x, nil)
}

// Denoise predicts the denoised latent given the current latent and an
// optional conditioning vector [N, condDim].
func (d *Denoiser) Denoise(x *tensor.Tensor, cond *tensor.Tensor) *tensor.Tensor {
	h := d.Enc1.Forward(x)
	h2 := d.Enc2.Forward(h)
	if cond != nil {
		// Project the prompt embedding and add per-channel at the
		// bottleneck.
		c := d.CondProj.Forward(cond) // [N, C2]
		n, ch := c.Shape[0], c.Shape[1]
		hw := h2.Len() / (n * ch)
		for ni := 0; ni < n; ni++ {
			for ci := 0; ci < ch; ci++ {
				add := c.At(ni, ci)
				seg := h2.Data[(ni*ch+ci)*hw : (ni*ch+ci+1)*hw]
				for i := range seg {
					seg[i] += add
				}
			}
		}
	}
	dcd := d.Dec1.Forward(h2)
	joined := nn.ConcatChannels(dcd, h)
	return d.Out.Forward(joined)
}

// NewDenoiser builds a denoiser with structured synthetic weights.
func NewDenoiser(seed uint64) *Denoiser {
	r := tensor.NewRNG(seed)
	mk := func(in, out int) *gnConv {
		c := nn.NewConv2d(in, out, 3, 1, 1, 1)
		fillConv(c, r)
		gn := nn.NewGroupNorm(out, 2)
		// Diffusion U-Nets have order-of-magnitude per-channel
		// activation range spread (time/conditioning modulation);
		// log-normal gammas reproduce it, which is what pushes
		// per-tensor INT8 behind FP8 in Figure 6.
		for i := range gn.Gamma {
			gn.Gamma[i] = float32(math.Exp(1.0 * r.Norm()))
		}
		return &gnConv{Conv: c, GN: gn}
	}
	d := &Denoiser{
		Enc1:     mk(LatentC, 8),
		Enc2:     mk(8, 12),
		Dec1:     mk(12, 8),
		Out:      nn.NewConv2d(16, LatentC, 1, 1, 0, 1),
		CondProj: nn.NewLinear(16, 12),
		condDim:  16,
	}
	fillConv(d.Out, r)
	fillLinear(d.CondProj, r)
	// Trained-network compensation: a channel whose upstream gamma is
	// small carries its information at small magnitude, and training
	// grows the downstream weights reading it by the inverse factor so
	// every channel contributes equally to the output. Without this
	// compensation a quantizer could erase low-magnitude channels for
	// free; with it, absolute-precision formats (INT8 per-tensor
	// activations) pay the full price while FP8's relative precision
	// does not — the Figure 6 separation.
	compensate(d.Enc2.Conv, d.Enc1.GN.Gamma)
	compensate(d.Dec1.Conv, d.Enc2.GN.Gamma)
	outGammas := append(append([]float32(nil), d.Dec1.GN.Gamma...), d.Enc1.GN.Gamma...)
	compensate(d.Out, outGammas)
	return d
}

// compensate scales conv input-channel weights by 1/|gamma_prev|.
func compensate(c *nn.Conv2d, prevGamma []float32) {
	per := c.K * c.K
	for oc := 0; oc < c.OutC; oc++ {
		for ic := 0; ic < c.InC; ic++ {
			g := prevGamma[ic]
			if g < 0 {
				g = -g
			}
			if g < 1e-3 {
				g = 1e-3
			}
			seg := c.W.Data[(oc*c.InC+ic)*per : (oc*c.InC+ic+1)*per]
			for i := range seg {
				seg[i] /= g
			}
		}
	}
}

func fillConv(c *nn.Conv2d, r *tensor.RNG) {
	fan := c.InC * c.K * c.K
	std := 1.2 / float32(math.Sqrt(float64(fan)))
	for i := range c.W.Data {
		c.W.Data[i] = std * float32(r.Norm())
	}
}

func fillLinear(l *nn.Linear, r *tensor.RNG) {
	std := 1.0 / float32(math.Sqrt(float64(l.In)))
	for i := range l.W.Data {
		l.W.Data[i] = std * float32(r.Norm())
	}
}

// Pipeline bundles the denoiser with its prompt set and implements
// quant.Model so recipes apply directly.
type Pipeline struct {
	Net *Denoiser
	// Prompts are fixed synthetic prompt embeddings [P, condDim].
	Prompts *tensor.Tensor
	seed    uint64
}

// NewPipeline builds the generation pipeline with nPrompts synthetic
// prompt embeddings.
func NewPipeline(seed uint64, nPrompts int) *Pipeline {
	r := tensor.NewRNG(seed ^ 0xD1FF)
	p := tensor.New(nPrompts, 16)
	p.FillNormal(r, 0, 1)
	return &Pipeline{Net: NewDenoiser(seed), Prompts: p, seed: seed}
}

// Clone returns an independent pipeline with identical weights and
// prompts, rebuilt deterministically from the seed. Construction is
// cheap (the denoiser is small), so grid experiments give every cell
// its own clone and quantize without cross-cell interference.
func (p *Pipeline) Clone() *Pipeline {
	return NewPipeline(p.seed, p.Prompts.Shape[0])
}

// Root implements quant.Model.
func (p *Pipeline) Root() nn.Module { return p.Net }

// IsCNN implements quant.Model: diffusion U-Nets follow the paper's
// "Last Linear excluded" convention rather than the CNN first/last
// rule (Figure 6 sidebar), so the CNN exception is disabled.
func (p *Pipeline) IsCNN() bool { return false }

// SigmaIn is the input-scaling schedule across denoising steps: early
// steps see large-magnitude noisy latents, late steps small residuals
// (a ~30x span, as in Karras-style schedules). Static activation
// calibration sees the early-step scale; formats whose precision is
// *absolute* (INT8) lose resolution at the late steps while FP8's
// log-spaced grid keeps relative precision at every scale — the
// mechanism behind Figure 6's FID gap.
func SigmaIn(step int) float32 {
	s := float32(4.0)
	for i := 0; i < step; i++ {
		s *= 0.5
	}
	return s
}

// Run implements quant.Model: one denoising step on first-step-scaled
// noise latents conditioned on cycling prompts (used for calibration).
func (p *Pipeline) Run(s data.Sample) *tensor.Tensor {
	n := s.X.Shape[0]
	cond := tensor.New(n, 16)
	for i := 0; i < n; i++ {
		copy(cond.Data[i*16:], p.Prompts.Data[(i%p.Prompts.Shape[0])*16:(i%p.Prompts.Shape[0])*16+16])
	}
	x := s.X.Clone()
	x.Scale(SigmaIn(0))
	return p.Net.Denoise(x, cond)
}

// CalibData returns a latent-noise dataset for calibration.
func (p *Pipeline) CalibData() data.Dataset {
	return &latentDataset{seed: p.seed ^ 0xCA11, batches: 8}
}

type latentDataset struct {
	seed    uint64
	batches int
}

func (l *latentDataset) Batches() int { return l.batches }
func (l *latentDataset) Batch(i int) data.Sample {
	r := tensor.NewRNG(l.seed + uint64(i)*977)
	x := tensor.New(4, LatentC, LatentH, LatentW)
	x.FillNormal(r, 0, 1)
	return data.Sample{X: x}
}

// Generate runs the full iterative denoising loop for nImages per
// prompt, returning flattened latent feature vectors [nImages*P, D].
// The schedule mixes the current latent with the denoiser prediction —
// a DDIM-like deterministic update x <- x + (f(x) - x) * alpha.
func (p *Pipeline) Generate(nImages int) *tensor.Tensor {
	nP := p.Prompts.Shape[0]
	dim := LatentC * LatentH * LatentW
	out := tensor.New(nImages*nP, dim)
	row := 0
	for pi := 0; pi < nP; pi++ {
		cond := tensor.New(1, 16)
		copy(cond.Data, p.Prompts.Data[pi*16:(pi+1)*16])
		for img := 0; img < nImages; img++ {
			r := tensor.NewRNG(p.seed ^ (uint64(pi) << 32) ^ uint64(img)*0x9E37)
			x := tensor.New(1, LatentC, LatentH, LatentW)
			x.FillNormal(r, 0, 1)
			for step := 0; step < Steps; step++ {
				// Scale the latent into the step's input range,
				// denoise, and rescale the prediction back: the
				// deterministic DDIM-like update
				// x <- x + alpha*(f(cin*x)/cin - x).
				cin := SigmaIn(step)
				inp := x.Clone()
				inp.Scale(cin)
				pred := p.Net.Denoise(inp, cond)
				alpha := float32(0.6)
				inv := 1 / cin
				for i := range x.Data {
					x.Data[i] += alpha * (pred.Data[i]*inv - x.Data[i])
				}
			}
			copy(out.Data[row*dim:], x.Data)
			row++
		}
	}
	return out
}

// FIDAgainst computes the FID between this pipeline's generations and a
// reference feature set.
func FIDAgainst(ref, gen *tensor.Tensor) float64 {
	return data.FID(data.ComputeFIDStats(ref), data.ComputeFIDStats(gen))
}

var _ nn.Module = (*Denoiser)(nil)
