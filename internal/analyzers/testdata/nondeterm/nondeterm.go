// Fixture for the nondeterm check: banned calls are reported when
// reachable from a RunCell implementation or a registerGrid cell
// argument, and stay silent off those paths.
package nondetermfix

import (
	"math/rand"
	"os"
	"runtime"
	"time"
)

type Cell struct{}

// RunCell is a contract root by name.
func (Cell) RunCell() float64 {
	now := time.Now()     // want nondeterm "time.Now"
	_ = os.Getenv("HOME") // want nondeterm "os.Getenv"
	_ = seededOK()
	return helper() + float64(now.Nanosecond())
}

// helper is reachable from RunCell: the finding carries the chain.
func helper() float64 {
	return rand.Float64() // want nondeterm "unseeded global RNG"
}

// Negative: explicitly seeded sources are deterministic.
func seededOK() float64 {
	r := rand.New(rand.NewSource(1))
	return r.Float64()
}

// Negative: not on any contract path.
func offPath() time.Time {
	return time.Now()
}

// registerGrid mimics the harness registration idiom: the 4th argument
// is a cell root.
func registerGrid(id, title string, spec int, cell func() int, render func()) {
	_ = cell
	_ = render
}

func register() {
	registerGrid("g", "t", 0, gridCell, nil)
}

func gridCell() int {
	return runtime.NumCPU() // want nondeterm "NumCPU"
}

type Cell2 struct{}

// Ignored: a documented exemption suppresses the finding.
func (Cell2) RunCell() int {
	//fp8vet:ignore nondeterm fixture exemption: value never persisted, parallelism degree only
	return runtime.GOMAXPROCS(0)
}
