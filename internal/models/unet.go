package models

import (
	"fp8quant/internal/data"
	"fp8quant/internal/nn"
	"fp8quant/internal/tensor"
)

// unetNet is the encoder-decoder segmentation network with skip
// connections (U-Net / Carvana masking). Norm selects BatchNorm
// (classic U-Net) or GroupNorm + SiLU (diffusion denoiser style).
type unetNet struct {
	Enc1, Enc2 nn.Module
	Bottleneck nn.Module
	Dec1       nn.Module
	OutConv    *nn.Conv2d
	Pool       *nn.MaxPool2d
	Up         nn.Upsample2x
	// classes is the per-pixel logit count.
	classes int
}

// Kind implements nn.Module.
func (u *unetNet) Kind() string { return "UNet" }

// Visit implements nn.Container.
func (u *unetNet) Visit(path string, v nn.Visitor) {
	nn.WalkChild(path+"/enc1", u.Enc1, v)
	nn.WalkChild(path+"/enc2", u.Enc2, v)
	nn.WalkChild(path+"/bottleneck", u.Bottleneck, v)
	nn.WalkChild(path+"/dec1", u.Dec1, v)
	nn.WalkChild(path+"/out", u.OutConv, v)
}

// Forward segments x [N,C,H,W], returning per-pixel logits flattened to
// [N*H*W, classes] so the standard argmax-agreement evaluation applies
// per pixel.
func (u *unetNet) Forward(x *tensor.Tensor) *tensor.Tensor {
	return u.ForwardArena(nil, x)
}

// ForwardArena implements nn.ArenaForwarder.
func (u *unetNet) ForwardArena(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	e1 := nn.ForwardWith(a, u.Enc1, x)                          // [N, c1, H, W]
	e2 := nn.ForwardWith(a, u.Enc2, u.Pool.ForwardArena(a, e1)) // [N, c2, H/2, W/2]
	b := nn.ForwardWith(a, u.Bottleneck, e2)
	d := u.Up.ForwardArena(a, b) // back to [.., H, W]
	d = nn.ConcatChannelsArena(a, d, e1)
	d = nn.ForwardWith(a, u.Dec1, d)
	lg := u.OutConv.ForwardArena(a, d) // [N, classes, H, W]
	n, c, h, w := lg.Shape[0], lg.Shape[1], lg.Shape[2], lg.Shape[3]
	out := a.New(n*h*w, c)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			plane := lg.Data[(ni*c+ci)*h*w : (ni*c+ci+1)*h*w]
			for p, v := range plane {
				out.Data[(ni*h*w+p)*c+ci] = v
			}
		}
	}
	return out
}

// groupNormConv is Conv → GroupNorm → SiLU (diffusion style).
type groupNormConv struct {
	Conv *nn.Conv2d
	GN   *nn.GroupNorm
}

// Kind implements nn.Module.
func (g *groupNormConv) Kind() string { return "GNConv" }

// Visit implements nn.Container.
func (g *groupNormConv) Visit(path string, v nn.Visitor) {
	nn.WalkChild(path+"/conv", g.Conv, v)
	nn.WalkChild(path+"/gn", g.GN, v)
}

// Forward runs the unit.
func (g *groupNormConv) Forward(x *tensor.Tensor) *tensor.Tensor {
	return g.ForwardArena(nil, x)
}

// ForwardArena implements nn.ArenaForwarder.
func (g *groupNormConv) ForwardArena(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	var act nn.SiLU
	return act.ForwardArena(a, g.GN.ForwardArena(a, g.Conv.ForwardArena(a, x)))
}

func newGNConv(r *tensor.RNG, inC, outC int) *groupNormConv {
	c := nn.NewConv2d(inC, outC, 3, 1, 1, 1)
	initConv(c, r)
	gn := nn.NewGroupNorm(outC, 2)
	for i := range gn.Gamma {
		gn.Gamma[i] = float32(1 + 0.1*r.Norm())
	}
	return &groupNormConv{Conv: c, GN: gn}
}

func buildUNet(info Info, seed uint64, classes int, diffusionStyle bool) *Network {
	r := tensor.NewRNG(seed)
	var enc1, enc2, bott, dec1 nn.Module
	if diffusionStyle {
		enc1 = newGNConv(r, cvChans, 8)
		enc2 = newGNConv(r, 8, 16)
		bott = newGNConv(r, 16, 16)
		dec1 = newGNConv(r, 24, 8)
	} else {
		enc1 = newConvBN(r, cvChans, 8, 3, 1, 1, 1, nn.ReLU{})
		enc2 = newConvBN(r, 8, 16, 3, 1, 1, 1, nn.ReLU{})
		bott = newConvBN(r, 16, 16, 3, 1, 1, 1, nn.ReLU{})
		dec1 = newConvBN(r, 24, 8, 3, 1, 1, 1, nn.ReLU{})
	}
	out := nn.NewConv2d(8, classes, 1, 1, 0, 1)
	initConv(out, r)
	net := &unetNet{
		Enc1: enc1, Enc2: enc2, Bottleneck: bott, Dec1: dec1,
		OutConv: out, Pool: &nn.MaxPool2d{K: 2, Stride: 2}, classes: classes,
	}
	n := &Network{
		Meta:      info,
		root:      net,
		fwd:       func(s data.Sample) *tensor.Tensor { return net.Forward(s.X) },
		Data:      cvDataset(seed ^ 0x0E7),
		Classes:   classes,
		plannable: true,
	}
	WarmBatchNorms(n, 4)
	return n
}

func init() {
	infoU := Info{Name: "unet_carvana", Domain: CV, Task: "carvana-sim",
		SizeMB: 124, IsCNN: true, HasBN: true}
	register(infoU, func(seed uint64) *Network { return buildUNet(infoU, seed, 2, false) })

	infoF := Info{Name: "fcn_resnet50", Domain: CV, Task: "voc-seg-sim",
		SizeMB: 135, IsCNN: true, HasBN: true}
	register(infoF, func(seed uint64) *Network { return buildUNet(infoF, seed, 8, false) })

	infoS := Info{Name: "stable_diffusion_unet", Domain: CV, Task: "coco-gen-sim",
		SizeMB: 3400, IsCNN: true, HasLN: true}
	register(infoS, func(seed uint64) *Network { return buildUNet(infoS, seed, 4, true) })
}
