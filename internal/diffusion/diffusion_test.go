package diffusion

import (
	"testing"

	"fp8quant/internal/quant"
)

func TestDenoiserShapes(t *testing.T) {
	p := NewPipeline(1, 2)
	s := p.CalibData().Batch(0)
	out := p.Run(s)
	if out.Shape[1] != LatentC || out.Shape[2] != LatentH {
		t.Fatalf("denoiser output shape %v", out.Shape)
	}
}

func TestGenerateDeterministicAndConditioned(t *testing.T) {
	p := NewPipeline(2, 2)
	a := p.Generate(3)
	b := p.Generate(3)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("generation must be deterministic")
		}
	}
	if a.Shape[0] != 6 { // 3 images x 2 prompts
		t.Fatalf("generated %d rows, want 6", a.Shape[0])
	}
	// Different prompts produce different feature statistics.
	dim := a.Shape[1]
	d := 0.0
	for i := 0; i < dim; i++ {
		d += float64((a.Data[i] - a.Data[3*dim+i]) * (a.Data[i] - a.Data[3*dim+i]))
	}
	if d == 0 {
		t.Error("prompt conditioning has no effect")
	}
}

func TestFIDSelfZeroAndQuantOrdering(t *testing.T) {
	p := NewPipeline(3, 2)
	ref := p.Generate(16)
	if got := FIDAgainst(ref, ref); got != 0 {
		t.Fatalf("FID(self) = %v", got)
	}

	fid := func(r quant.Recipe) float64 {
		r.CalibBatches = 4
		h := quant.Quantize(p, p.CalibData(), r)
		gen := p.Generate(16)
		h.Release()
		return FIDAgainst(ref, gen)
	}
	e3 := fid(quant.StandardFP8(quant.E3M4))
	e5 := fid(quant.StandardFP8(quant.E5M2))
	if e3 <= 0 || e5 <= 0 {
		t.Fatalf("quantized FID should be positive: e3=%v e5=%v", e3, e5)
	}
	// Figure 6 shape: the high-precision format tracks FP32 closer
	// than the low-mantissa format.
	if e3 >= e5 {
		t.Errorf("FID(E3M4)=%v should be < FID(E5M2)=%v", e3, e5)
	}
	// Model must be fully restored after Release.
	again := p.Generate(16)
	for i := range ref.Data {
		if again.Data[i] != ref.Data[i] {
			t.Fatal("pipeline not restored after Release")
		}
	}
}
