// Fixture for the atomicwrite check, in-store side: the directory is
// named "resultstore" so every direct file-creation call except the
// writeAtomic helper is a violation.
package resultstore

import "os"

// writeAtomic is the sanctioned temp+rename helper: its own direct
// calls are allowed.
func writeAtomic(path string, data []byte) error {
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(path+".tmp", path)
}

// Positive: a direct in-place write bypasses the helper.
func saveDirect(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want atomicwrite "bypasses writeAtomic"
}

// Positive: so does creating the file in place.
func createDirect(path string) error {
	f, err := os.Create(path) // want atomicwrite "bypasses writeAtomic"
	if err != nil {
		return err
	}
	return f.Close()
}

// Ignored: a documented exemption suppresses the finding.
func lockFile(path string) error {
	//fp8vet:ignore atomicwrite fixture exemption: lock files are presence-only, readers never parse them
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	return f.Close()
}
