package nn

import (
	"fmt"
	"os"
	"testing"

	"fp8quant/internal/tensor/kernels"
)

// TestMain honors the FP8_KERNEL pin exactly like the kernels package:
// the nn differential oracles build on kernels.RefMadd(kernels.Active()),
// so forcing a variant here runs every layer-level bit-identity test
// under that tier (the CI workflow does this once per variant).
func TestMain(m *testing.M) {
	if v := os.Getenv("FP8_KERNEL"); v != "" {
		if err := kernels.ForceVariant(kernels.Variant(v)); err != nil {
			// A variant the host cannot run is a vacuous pass for that
			// matrix step, same as in the kernels package.
			fmt.Printf("nn: %v; skipping forced-variant run\n", err)
			os.Exit(0)
		}
	}
	os.Exit(m.Run())
}
