// Grid sharding: one grid, several processes (or machines). A shard
// plan deterministically slices a spec's row-major cell indices into n
// disjoint, jointly complete subsets, so independent fp8bench
// invocations can each compute one subset into their own result store
// and the stores later merge by content address. Assignment is
// round-robin (cell j belongs to shard j mod n): row-major order
// groups a model's recipes together, so round-robin spreads the
// expensive models across shards instead of handing one shard the
// whole heavy end of the zoo. Under a filter, the executor applies the
// same round-robin to the positions of the filtered selection (see
// RunGrid), which balances even when the selected indices all share a
// residue class; for a full run the two formulations coincide.

package harness

import "fmt"

// Shard selects the Index-th (0-based) of Count disjoint slices of a
// grid's cells. The zero value means no sharding: the run computes
// every selected cell itself.
type Shard struct {
	Index, Count int
}

// Enabled reports whether the plan actually splits the grid.
func (sh Shard) Enabled() bool { return sh.Count > 1 }

// Validate checks the plan is well-formed (Count 0 and 1 both mean
// "unsharded" and are valid).
func (sh Shard) Validate() error {
	if sh.Count < 0 || sh.Index < 0 {
		return fmt.Errorf("harness: negative shard plan %d/%d", sh.Index+1, sh.Count)
	}
	if sh.Count > 0 && sh.Index >= sh.Count {
		return fmt.Errorf("harness: shard index %d out of range for %d shards", sh.Index+1, sh.Count)
	}
	return nil
}

// String renders the plan 1-based, matching the fp8bench -shard flag.
func (sh Shard) String() string {
	return fmt.Sprintf("%d/%d", sh.Index+1, sh.Count)
}

// Owns reports whether the plan assigns selection position k to this
// shard — the single definition of the round-robin rule, shared by the
// executor (over filtered-selection positions) and GridSpec.Shard
// (over the full cell range). The zero (unsharded) plan owns every
// position.
func (sh Shard) Owns(k int) bool {
	return !sh.Enabled() || k%sh.Count == sh.Index
}

// Shard returns the i-th of n disjoint subsets of the spec's row-major
// cell indices (0 <= i < n). The n subsets are pairwise disjoint,
// jointly cover every cell, are stable for a given spec, and differ in
// size by at most one. Invalid arguments panic: a shard plan reaching
// this point has already passed Shard.Validate.
func (s GridSpec) Shard(i, n int) []int {
	if n < 1 || i < 0 || i >= n {
		panic(fmt.Sprintf("harness: GridSpec.Shard(%d, %d) out of range", i, n))
	}
	num := s.NumCells()
	sh := Shard{Index: i, Count: n}
	out := make([]int, 0, (num+n-1)/n)
	for j := 0; j < num; j++ {
		if sh.Owns(j) {
			out = append(out, j)
		}
	}
	return out
}
