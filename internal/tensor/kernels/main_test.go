package kernels

import (
	"fmt"
	"os"
	"testing"
)

// testVariants is the set of variants the differential battery runs:
// every host-supported tier by default, or exactly one when FP8_KERNEL
// pins it (the CI workflow runs the battery once per forced variant so
// a regression in a non-default tier cannot hide behind the
// dispatcher's choice).
var testVariants []Variant

func TestMain(m *testing.M) {
	if v := os.Getenv("FP8_KERNEL"); v != "" {
		if err := ForceVariant(Variant(v)); err != nil {
			// A forced variant the host cannot run is a vacuous pass —
			// the matrix step for that variant simply has nothing to
			// prove here (e.g. FP8_KERNEL=avx2 on a pre-AVX2 runner).
			fmt.Printf("kernels: %v; skipping forced-variant run\n", err)
			os.Exit(0)
		}
		testVariants = []Variant{Variant(v)}
	} else {
		testVariants = Available()
	}
	os.Exit(m.Run())
}

// forEachVariant pins the dispatcher to each variant under test in
// turn, running fn as a subtest, and restores the prior variant.
func forEachVariant(t *testing.T, fn func(t *testing.T, v Variant)) {
	t.Helper()
	prev := Active()
	defer func() {
		if err := ForceVariant(prev); err != nil {
			t.Fatal(err)
		}
	}()
	for _, v := range testVariants {
		if err := ForceVariant(v); err != nil {
			t.Fatal(err)
		}
		t.Run(string(v), func(t *testing.T) { fn(t, v) })
	}
}
