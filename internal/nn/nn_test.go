package nn

import (
	"math"
	"strings"
	"testing"

	"fp8quant/internal/tensor"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLinearForward(t *testing.T) {
	l := NewLinear(2, 3)
	// W = [[1,0],[0,1],[1,1]], b = [0, 1, 2]
	copy(l.W.Data, []float32{1, 0, 0, 1, 1, 1})
	copy(l.B, []float32{0, 1, 2})
	x := tensor.FromSlice([]float32{2, 3}, 1, 2)
	y := l.Forward(x)
	want := []float32{2, 4, 7}
	for i, w := range want {
		if y.Data[i] != w {
			t.Errorf("y[%d] = %v, want %v", i, y.Data[i], w)
		}
	}
}

func TestLinearBatchedLeadingDims(t *testing.T) {
	l := NewLinear(4, 2)
	l.W.FillNormal(tensor.NewRNG(1), 0, 1)
	x := tensor.New(2, 3, 4)
	x.FillNormal(tensor.NewRNG(2), 0, 1)
	y := l.Forward(x)
	if y.Shape[0] != 2 || y.Shape[1] != 3 || y.Shape[2] != 2 {
		t.Fatalf("shape = %v, want [2 3 2]", y.Shape)
	}
	// Row 0 of the flattened input should match a 1-row forward.
	x0 := tensor.FromSlice(x.Data[:4], 1, 4)
	y0 := l.Forward(x0)
	for i := range y0.Data {
		if !almostEq(float64(y.Data[i]), float64(y0.Data[i]), 1e-6) {
			t.Errorf("batched row 0 differs at %d", i)
		}
	}
}

func TestLinearQuantHooks(t *testing.T) {
	l := NewLinear(2, 1)
	copy(l.W.Data, []float32{1, 1})
	var observed []float32
	l.QS.Observe = func(v []float32) { observed = append(observed, v...) }
	x := tensor.FromSlice([]float32{0.4, 0.6}, 1, 2)
	l.Forward(x)
	if len(observed) != 2 {
		t.Fatalf("observer saw %d values, want 2", len(observed))
	}
	// Input hook that zeroes the activation must change the result.
	l.QS.Input = func(dst, src []float32) {
		for i := range dst {
			dst[i] = 0
		}
	}
	y := l.Forward(x)
	if y.Data[0] != 0 {
		t.Errorf("input hook not applied: y = %v", y.Data[0])
	}
	// Original input must not be mutated by the hook.
	if x.Data[0] != 0.4 {
		t.Error("input tensor mutated by quant hook")
	}
	l.QS.Reset()
	if y := l.Forward(x); y.Data[0] != 1.0 {
		t.Errorf("Reset did not restore FP32 path: %v", y.Data[0])
	}
}

func TestConv2dIdentityKernel(t *testing.T) {
	c := NewConv2d(1, 1, 3, 1, 1, 1)
	c.W.Set(1, 0, 0, 1, 1) // centre tap
	x := tensor.New(1, 1, 4, 4)
	x.FillNormal(tensor.NewRNG(3), 0, 1)
	y := c.Forward(x)
	for i := range x.Data {
		if !almostEq(float64(y.Data[i]), float64(x.Data[i]), 1e-6) {
			t.Fatalf("identity conv mismatch at %d", i)
		}
	}
}

func TestConv2dStridePad(t *testing.T) {
	c := NewConv2d(2, 4, 3, 2, 1, 1)
	x := tensor.New(1, 2, 8, 8)
	y := c.Forward(x)
	if y.Shape[1] != 4 || y.Shape[2] != 4 || y.Shape[3] != 4 {
		t.Errorf("shape = %v, want [1 4 4 4]", y.Shape)
	}
}

func TestConv2dSumKernel(t *testing.T) {
	// 2x2 all-ones kernel, no pad: output = local window sums.
	c := NewConv2d(1, 1, 2, 1, 0, 1)
	c.W.Fill(1)
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	y := c.Forward(x)
	if y.Len() != 1 || y.Data[0] != 10 {
		t.Errorf("sum conv = %v, want [10]", y.Data)
	}
}

func TestDepthwiseConvGroups(t *testing.T) {
	// Depthwise: each channel convolved independently.
	c := NewConv2d(2, 2, 1, 1, 0, 2)
	c.W.Set(2, 0, 0, 0, 0) // channel 0 scale 2
	c.W.Set(3, 1, 0, 0, 0) // channel 1 scale 3
	x := tensor.FromSlice([]float32{1, 1, 1, 1, 2, 2, 2, 2}, 1, 2, 2, 2)
	y := c.Forward(x)
	for i := 0; i < 4; i++ {
		if y.Data[i] != 2 {
			t.Errorf("ch0[%d] = %v, want 2", i, y.Data[i])
		}
		if y.Data[4+i] != 6 {
			t.Errorf("ch1[%d] = %v, want 6", i, y.Data[4+i])
		}
	}
}

func TestPooling(t *testing.T) {
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	mp := &MaxPool2d{K: 2, Stride: 2}
	if y := mp.Forward(x); y.Data[0] != 4 {
		t.Errorf("maxpool = %v, want 4", y.Data[0])
	}
	ap := &AvgPool2d{K: 2, Stride: 2}
	if y := ap.Forward(x); y.Data[0] != 2.5 {
		t.Errorf("avgpool = %v, want 2.5", y.Data[0])
	}
	var gap GlobalAvgPool
	if y := gap.Forward(x); y.Data[0] != 2.5 {
		t.Errorf("gap = %v, want 2.5", y.Data[0])
	}
}

func TestBatchNormNormalizes(t *testing.T) {
	bn := NewBatchNorm2d(1)
	bn.Mean[0] = 2
	bn.Var[0] = 4
	x := tensor.FromSlice([]float32{2, 4, 0, 6}, 1, 1, 2, 2)
	y := bn.Forward(x)
	want := []float32{0, 1, -1, 2} // (x-2)/2
	for i := range want {
		if !almostEq(float64(y.Data[i]), float64(want[i]), 1e-3) {
			t.Errorf("bn[%d] = %v, want %v", i, y.Data[i], want[i])
		}
	}
}

func TestBatchNormCalibration(t *testing.T) {
	bn := NewBatchNorm2d(1)
	bn.Mean[0] = 100 // wildly wrong stats
	bn.Var[0] = 1
	bn.StartCalibration()
	r := tensor.NewRNG(5)
	for i := 0; i < 10; i++ {
		x := tensor.New(2, 1, 4, 4)
		x.FillNormal(r, 3, 2)
		bn.Forward(x)
	}
	bn.FinishCalibration()
	if !almostEq(float64(bn.Mean[0]), 3, 0.3) {
		t.Errorf("recalibrated mean = %v, want ~3", bn.Mean[0])
	}
	if !almostEq(float64(bn.Var[0]), 4, 1.0) {
		t.Errorf("recalibrated var = %v, want ~4", bn.Var[0])
	}
	if bn.Calibrating() {
		t.Error("calibration flag not cleared")
	}
}

func TestLayerNormOutput(t *testing.T) {
	ln := NewLayerNorm(4)
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 4)
	y := ln.Forward(x)
	// Output must have ~zero mean and ~unit variance.
	var mu float64
	for _, v := range y.Data {
		mu += float64(v)
	}
	mu /= 4
	if !almostEq(mu, 0, 1e-5) {
		t.Errorf("LN mean = %v", mu)
	}
	var va float64
	for _, v := range y.Data {
		va += (float64(v) - mu) * (float64(v) - mu)
	}
	if !almostEq(va/4, 1, 1e-3) {
		t.Errorf("LN var = %v", va/4)
	}
}

func TestRMSNorm(t *testing.T) {
	rn := NewRMSNorm(2)
	x := tensor.FromSlice([]float32{3, 4}, 1, 2)
	y := rn.Forward(x)
	// RMS = sqrt(25/2); y = x / rms.
	rms := math.Sqrt(12.5)
	if !almostEq(float64(y.Data[0]), 3/rms, 1e-4) {
		t.Errorf("rmsnorm = %v", y.Data)
	}
}

func TestGroupNorm(t *testing.T) {
	gn := NewGroupNorm(4, 2)
	x := tensor.New(1, 4, 2, 2)
	x.FillNormal(tensor.NewRNG(6), 5, 3)
	y := gn.Forward(x)
	// Each group of 2 channels should be ~N(0,1) after norm.
	for g := 0; g < 2; g++ {
		seg := y.Data[g*8 : (g+1)*8]
		var mu float64
		for _, v := range seg {
			mu += float64(v)
		}
		mu /= 8
		if !almostEq(mu, 0, 1e-4) {
			t.Errorf("group %d mean = %v", g, mu)
		}
	}
}

func TestActivations(t *testing.T) {
	x := tensor.FromSlice([]float32{-2, 0, 2}, 3)
	if y := (ReLU{}).Forward(x); y.Data[0] != 0 || y.Data[2] != 2 {
		t.Errorf("relu = %v", y.Data)
	}
	if y := (Sigmoid{}).Forward(x); !almostEq(float64(y.Data[1]), 0.5, 1e-6) {
		t.Errorf("sigmoid(0) = %v", y.Data[1])
	}
	if y := (Tanh{}).Forward(x); !almostEq(float64(y.Data[1]), 0, 1e-6) {
		t.Errorf("tanh(0) = %v", y.Data[1])
	}
	y := (GELU{}).Forward(x)
	if !almostEq(float64(y.Data[1]), 0, 1e-6) || y.Data[2] < 1.9 {
		t.Errorf("gelu = %v", y.Data)
	}
	if y := (SiLU{}).Forward(x); !almostEq(float64(y.Data[1]), 0, 1e-6) {
		t.Errorf("silu(0) = %v", y.Data[1])
	}
	if y := (HardSwish{}).Forward(tensor.FromSlice([]float32{-4, 0, 4}, 3)); y.Data[0] != 0 || y.Data[2] != 4 {
		t.Errorf("hardswish = %v", y.Data)
	}
}

func TestSoftmaxRows(t *testing.T) {
	x := tensor.FromSlice([]float32{1, 1, 1, 0, 0, 100}, 2, 3)
	y := (Softmax{}).Forward(x)
	for r := 0; r < 2; r++ {
		var s float64
		for c := 0; c < 3; c++ {
			s += float64(y.Data[r*3+c])
		}
		if !almostEq(s, 1, 1e-5) {
			t.Errorf("row %d sum = %v", r, s)
		}
	}
	if !almostEq(float64(y.Data[0]), 1.0/3, 1e-5) {
		t.Errorf("uniform row wrong: %v", y.Data[:3])
	}
	if y.Data[5] < 0.999 {
		t.Errorf("peaked row wrong: %v", y.Data[3:])
	}
}

func TestAddMulOps(t *testing.T) {
	a := tensor.FromSlice([]float32{1, 2}, 2)
	b := tensor.FromSlice([]float32{10, 20}, 2)
	var add AddOp
	y := add.Apply(a, b)
	if y.Data[0] != 11 || y.Data[1] != 22 {
		t.Errorf("add = %v", y.Data)
	}
	var mul MulOp
	y = mul.Apply(a, b)
	if y.Data[0] != 10 || y.Data[1] != 40 {
		t.Errorf("mul = %v", y.Data)
	}
	// Broadcast: [1,2,2,2] * [1,2] per-channel.
	x := tensor.New(1, 2, 2, 2)
	x.Fill(1)
	s := tensor.FromSlice([]float32{2, 3}, 1, 2)
	y = mul.Apply(x, s)
	if y.Data[0] != 2 || y.Data[7] != 3 {
		t.Errorf("broadcast mul = %v", y.Data)
	}
}

func TestEmbeddingLookup(t *testing.T) {
	e := NewEmbedding(10, 2)
	e.W.Set(1.5, 3, 0)
	e.W.Set(2.5, 3, 1)
	y := e.Lookup([][]int{{3, 3}, {0, 3}})
	if y.Shape[0] != 2 || y.Shape[1] != 2 || y.Shape[2] != 2 {
		t.Fatalf("shape %v", y.Shape)
	}
	if y.At(0, 0, 0) != 1.5 || y.At(1, 1, 1) != 2.5 || y.At(1, 0, 0) != 0 {
		t.Errorf("lookup values wrong: %v", y.Data)
	}
}

func TestEmbeddingBag(t *testing.T) {
	e := NewEmbeddingBag(4, 2)
	for i := 0; i < 4; i++ {
		e.W.Set(float32(i), i, 0)
	}
	y := e.LookupBags([][]int{{1, 2, 3}, {0}})
	if y.At(0, 0) != 6 || y.At(1, 0) != 0 {
		t.Errorf("bag sums = %v", y.Data)
	}
	e.Mean = true
	y = e.LookupBags([][]int{{1, 3}})
	if y.At(0, 0) != 2 {
		t.Errorf("bag mean = %v", y.At(0, 0))
	}
}

func TestAttentionShapesAndCausality(t *testing.T) {
	a := NewMultiHeadAttention(8, 2)
	r := tensor.NewRNG(7)
	for _, l := range []*Linear{a.WQ, a.WK, a.WV, a.WO} {
		l.W.FillNormal(r, 0, 0.3)
	}
	x := tensor.New(2, 5, 8)
	x.FillNormal(r, 0, 1)
	y := a.Forward(x)
	if y.Shape[0] != 2 || y.Shape[1] != 5 || y.Shape[2] != 8 {
		t.Fatalf("attention shape %v", y.Shape)
	}
	// Causal: output at position 0 must not change when we perturb
	// positions > 0.
	a.Causal = true
	y1 := a.Forward(x)
	x2 := x.Clone()
	for i := 8; i < x2.Len(); i++ {
		x2.Data[i] += 5
	}
	y2 := a.Forward(x2)
	for d := 0; d < 8; d++ {
		if !almostEq(float64(y1.At(0, 0, d)), float64(y2.At(0, 0, d)), 1e-5) {
			t.Fatalf("causal mask leaked future info at dim %d", d)
		}
	}
}

func TestSlidingWindowAttention(t *testing.T) {
	a := NewMultiHeadAttention(4, 1)
	a.Window = 1
	r := tensor.NewRNG(8)
	for _, l := range []*Linear{a.WQ, a.WK, a.WV, a.WO} {
		l.W.FillNormal(r, 0, 0.3)
	}
	x := tensor.New(1, 6, 4)
	x.FillNormal(r, 0, 1)
	y1 := a.Forward(x)
	// Perturbing position 5 must not affect output at position 0
	// (distance 5 > window 1).
	x2 := x.Clone()
	for d := 0; d < 4; d++ {
		x2.Set(x2.At(0, 5, d)+3, 0, 5, d)
	}
	y2 := a.Forward(x2)
	for d := 0; d < 4; d++ {
		if !almostEq(float64(y1.At(0, 0, d)), float64(y2.At(0, 0, d)), 1e-5) {
			t.Fatalf("window mask leaked at dim %d", d)
		}
	}
}

func TestBatchMatMul(t *testing.T) {
	a := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 2, 2)
	b := tensor.FromSlice([]float32{5, 6, 7, 8}, 1, 2, 2)
	y := BatchMatMul(a, b, false)
	want := []float32{19, 22, 43, 50}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Errorf("bmm[%d] = %v, want %v", i, y.Data[i], want[i])
		}
	}
	// transB: a · bᵀ
	y = BatchMatMul(a, b, true)
	want = []float32{17, 23, 39, 53}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Errorf("bmmT[%d] = %v, want %v", i, y.Data[i], want[i])
		}
	}
}

func TestSequentialAndWalk(t *testing.T) {
	s := NewSequential(NewLinear(4, 4), ReLU{}, NewLinear(4, 2))
	var kinds []string
	var paths []string
	Walk(s, func(path string, m Module) {
		kinds = append(kinds, m.Kind())
		paths = append(paths, path)
	})
	if len(kinds) != 4 { // Sequential + 3 children
		t.Fatalf("walked %d modules: %v", len(kinds), kinds)
	}
	if !strings.Contains(paths[1], "Linear") {
		t.Errorf("path naming: %v", paths)
	}
}

func TestResidualBlockShapes(t *testing.T) {
	b := NewResidualBlock(4, 8, 2)
	b.Conv1.W.FillNormal(tensor.NewRNG(9), 0, 0.1)
	b.Conv2.W.FillNormal(tensor.NewRNG(10), 0, 0.1)
	b.Proj.W.FillNormal(tensor.NewRNG(11), 0, 0.1)
	x := tensor.New(1, 4, 8, 8)
	x.FillNormal(tensor.NewRNG(12), 0, 1)
	y := b.Forward(x)
	if y.Shape[1] != 8 || y.Shape[2] != 4 {
		t.Errorf("residual shape %v", y.Shape)
	}
	// Count modules visited.
	n := 0
	Walk(b, func(string, Module) { n++ })
	if n != 8 { // block + conv1,bn1,conv2,bn2,proj,projbn,skip
		t.Errorf("visited %d, want 8", n)
	}
}

func TestEncoderDecoderLayers(t *testing.T) {
	r := tensor.NewRNG(13)
	enc := NewTransformerEncoderLayer(8, 2, 16)
	initTransformer(t, r, enc.Attn, enc.FF.FC1, enc.FF.FC2)
	x := tensor.New(1, 4, 8)
	x.FillNormal(r, 0, 1)
	y := enc.Forward(x)
	if y.Shape[2] != 8 {
		t.Errorf("encoder shape %v", y.Shape)
	}

	dec := NewLlamaDecoderLayer(8, 2, 16)
	sw := dec.FF.(*SwiGLU)
	initTransformer(t, r, dec.Attn, sw.W1, sw.W2)
	sw.W3.W.FillNormal(r, 0, 0.2)
	y = dec.Forward(x)
	if y.Shape[2] != 8 {
		t.Errorf("decoder shape %v", y.Shape)
	}
	if !dec.Attn.Causal {
		t.Error("llama decoder must be causal")
	}
}

func initTransformer(t *testing.T, r *tensor.RNG, a *MultiHeadAttention, extra ...*Linear) {
	t.Helper()
	for _, l := range []*Linear{a.WQ, a.WK, a.WV, a.WO} {
		l.W.FillNormal(r, 0, 0.2)
	}
	for _, l := range extra {
		l.W.FillNormal(r, 0, 0.2)
	}
}

func TestSEBlockGating(t *testing.T) {
	se := NewSEBlock(4, 2)
	se.FC1.W.FillNormal(tensor.NewRNG(14), 0, 0.5)
	se.FC2.W.FillNormal(tensor.NewRNG(15), 0, 0.5)
	x := tensor.New(1, 4, 2, 2)
	x.Fill(1)
	y := se.Forward(x)
	// Gates are in (0,1), so output magnitudes shrink.
	for i, v := range y.Data {
		if v <= 0 || v >= 1 {
			t.Errorf("SE output[%d] = %v, want in (0,1)", i, v)
		}
	}
}

func TestUpsampleConcat(t *testing.T) {
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	var up Upsample2x
	y := up.Forward(x)
	if y.Shape[2] != 4 || y.At(0, 0, 0, 1) != 1 || y.At(0, 0, 3, 3) != 4 {
		t.Errorf("upsample: %v %v", y.Shape, y.Data)
	}
	z := ConcatChannels(x, x)
	if z.Shape[1] != 2 || z.Data[4] != 1 {
		t.Errorf("concat: %v %v", z.Shape, z.Data)
	}
}

func TestCrossAttention(t *testing.T) {
	ca := NewCrossAttention(8, 2)
	r := tensor.NewRNG(16)
	for _, l := range []*Linear{ca.WQ, ca.WK, ca.WV, ca.WO} {
		l.W.FillNormal(r, 0, 0.3)
	}
	q := tensor.New(1, 3, 8)
	q.FillNormal(r, 0, 1)
	mem := tensor.New(1, 7, 8)
	mem.FillNormal(r, 0, 1)
	y := ca.Attend(q, mem)
	if y.Shape[0] != 1 || y.Shape[1] != 3 || y.Shape[2] != 8 {
		t.Errorf("cross attention shape %v", y.Shape)
	}
}

func TestBinaryOpsPanicOnForward(t *testing.T) {
	for _, m := range []Module{&AddOp{}, &MulOp{}, &MatMulOp{}, &BatchMatMulOp{}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s.Forward should panic", m.Kind())
				}
			}()
			m.Forward(tensor.New(1))
		}()
	}
}

func TestPositionalEmbedding(t *testing.T) {
	p := NewPositionalEmbedding(4, 2)
	p.W.Set(1, 1, 0) // position 1 gets +1 on dim 0
	x := tensor.New(1, 2, 2)
	y := p.Forward(x)
	if y.At(0, 1, 0) != 1 || y.At(0, 0, 0) != 0 {
		t.Errorf("positional add wrong: %v", y.Data)
	}
}
