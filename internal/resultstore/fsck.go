// Store verification and repair: Fsck walks a store directory the way
// an offline filesystem checker walks a disk — every file is
// classified, damaged entries are reported (and, on request,
// quarantined so the next sweep recomputes exactly the damaged cells),
// and cross-checks diff each manifest's schedule against the cells
// actually present. Reads never trust file names: a cell is only
// healthy if its bytes parse as a current-schema envelope whose key
// hashes back to the name's fingerprint.

package resultstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// QuarantineDir is the subdirectory damaged entries are moved into by
// a repair run. It lives inside the store so the evidence travels with
// the directory, and every store walk (Merge, Prune, Fsck itself)
// skips directories, so quarantined files can never be mistaken for
// live entries.
const QuarantineDir = "quarantine"

// Fsck finding kinds. Kinds marked damage make the store unhealthy;
// the rest are informational.
const (
	// FindTornTmp: a leftover ".tmp" file from an interrupted atomic
	// write (damage — the write it belonged to never became visible).
	FindTornTmp = "torn-tmp"
	// FindCorruptCell: a cell file whose bytes do not parse (damage).
	FindCorruptCell = "corrupt-cell"
	// FindMismatchedCell: a cell that parses but whose key hashes to a
	// different fingerprint than its file name claims (damage —
	// renamed by hand or cross-wired by a buggy copy).
	FindMismatchedCell = "mismatched-cell"
	// FindCorruptManifest: a manifest file whose bytes do not parse
	// (damage).
	FindCorruptManifest = "corrupt-manifest"
	// FindMisplacedManifest: a valid manifest stored under a file name
	// that is not the hash of its (grid, seed, schema) — LoadManifest
	// would never find it (damage).
	FindMisplacedManifest = "misplaced-manifest"
	// FindStaleSchema: an entry from another schema generation,
	// including legacy whole-grid blobs (informational — Prune's
	// business, reads already treat it as a miss).
	FindStaleSchema = "stale-schema"
	// FindOrphanCell: a healthy cell no valid manifest references
	// (informational — wasted space at worst).
	FindOrphanCell = "orphan-cell"
	// FindIncompleteGrid: a manifest whose schedule has absent or
	// unhealthy cells (informational — "resume will recompute these",
	// not damage; an interrupted sweep is incomplete, not broken).
	FindIncompleteGrid = "incomplete-grid"
	// FindForeign: a file the store did not name and that is not a
	// valid sidecar name either (informational — left alone).
	FindForeign = "foreign"
)

// FsckOptions configures a store check.
type FsckOptions struct {
	// Repair moves damaged entries into QuarantineDir so subsequent
	// reads miss cleanly and the next sweep recomputes them.
	Repair bool
	// TmpAge ignores ".tmp" files younger than this, in case a live
	// process is mid-write. Zero flags every temp file — right for an
	// offline check, which is what fsck is.
	TmpAge time.Duration
}

// FsckFinding is one reported problem (or notable fact).
type FsckFinding struct {
	// File is the name relative to the store directory.
	File string
	// Kind is one of the Find* constants.
	Kind string
	// Detail is a human-readable explanation.
	Detail string
	// Damage reports whether the finding makes the store unhealthy.
	Damage bool
	// Repaired reports whether a repair run quarantined the file.
	Repaired bool
}

// FsckReport is the result of one store check.
type FsckReport struct {
	// Cells, Manifests and Sidecars count the store files scanned
	// (healthy or not), by class.
	Cells, Manifests, Sidecars int
	// Findings lists problems and notable facts in deterministic
	// (file-name, then kind) order.
	Findings []FsckFinding
	// Damage counts damage findings; Repaired counts how many of them
	// a repair run quarantined.
	Damage, Repaired int
}

// Healthy reports whether the store has no unrepaired damage.
// Informational findings (incomplete grids, orphans, stale entries)
// never make a store unhealthy: an interrupted sweep is supposed to
// look exactly like that.
func (r FsckReport) Healthy() bool { return r.Damage == r.Repaired }

// Fsck verifies every file in the store directory and cross-checks
// manifests against the cells present. With opts.Repair it quarantines
// damaged entries (moving them into QuarantineDir) so the store is
// healthy afterwards and a resume run recomputes exactly what was
// lost. The walk is read-only apart from those moves; findings are
// ordered deterministically so two checks of the same store produce
// identical reports.
func (s *Store) Fsck(opts FsckOptions) (FsckReport, error) {
	var rep FsckReport
	if s == nil {
		return rep, fmt.Errorf("resultstore: Fsck on a nil store")
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return rep, fmt.Errorf("resultstore: %w", err)
	}
	add := func(file, kind, detail string, damage bool) {
		rep.Findings = append(rep.Findings, FsckFinding{File: file, Kind: kind, Detail: detail, Damage: damage})
		if damage {
			rep.Damage++
		}
	}
	healthyCells := map[string]bool{} // fingerprint → healthy cell present
	var manifests []Manifest
	now := time.Now()
	for _, ent := range entries {
		if ent.IsDir() {
			continue // quarantine/ and any other directory
		}
		name := ent.Name()
		path := filepath.Join(s.dir, name)
		switch {
		case strings.HasSuffix(name, ".tmp"):
			if opts.TmpAge > 0 {
				info, ierr := ent.Info()
				if ierr == nil && now.Sub(info.ModTime()) < opts.TmpAge {
					continue // possibly a write in flight
				}
			}
			add(name, FindTornTmp, "leftover temp file from an interrupted atomic write", true)
		case strings.HasPrefix(name, "c-") && storeFilePattern.MatchString(name):
			rep.Cells++
			b, rerr := os.ReadFile(path)
			if rerr != nil {
				return rep, fmt.Errorf("resultstore: fsck read %s: %w", name, rerr)
			}
			var env cellEnvelope
			if json.Unmarshal(b, &env) != nil {
				add(name, FindCorruptCell, "cell bytes do not parse as a cell envelope", true)
				continue
			}
			if env.Schema != SchemaVersion {
				add(name, FindStaleSchema, fmt.Sprintf("cell from schema %d (current is %d)", env.Schema, SchemaVersion), false)
				continue
			}
			fp, _ := cellFingerprint(name)
			if env.Key.Fingerprint() != fp {
				add(name, FindMismatchedCell,
					fmt.Sprintf("cell key hashes to %s, not the file's fingerprint", env.Key.Fingerprint()), true)
				continue
			}
			healthyCells[fp] = true
		case strings.HasPrefix(name, "m-") && storeFilePattern.MatchString(name):
			rep.Manifests++
			b, rerr := os.ReadFile(path)
			if rerr != nil {
				return rep, fmt.Errorf("resultstore: fsck read %s: %w", name, rerr)
			}
			var env manifestEnvelope
			if json.Unmarshal(b, &env) != nil {
				add(name, FindCorruptManifest, "manifest bytes do not parse as a manifest envelope", true)
				continue
			}
			if env.Schema != SchemaVersion {
				add(name, FindStaleSchema, fmt.Sprintf("manifest from schema %d (current is %d)", env.Schema, SchemaVersion), false)
				continue
			}
			m := env.Manifest
			if want := filepath.Base(s.ManifestPath(m.Grid, m.Seed)); want != name {
				add(name, FindMisplacedManifest,
					fmt.Sprintf("manifest for grid %q seed %d belongs at %s", m.Grid, m.Seed, want), true)
				continue
			}
			manifests = append(manifests, m)
		case storeFilePattern.MatchString(name):
			add(name, FindStaleSchema, "legacy schema-1 whole-grid blob", false)
		case validSidecarName(name) == nil:
			rep.Sidecars++
		default:
			add(name, FindForeign, "not a store file or valid sidecar name; left alone", false)
		}
	}
	if opts.Repair {
		for i := range rep.Findings {
			f := &rep.Findings[i]
			if !f.Damage {
				continue
			}
			if err := s.quarantine(f.File); err != nil {
				return rep, err
			}
			f.Repaired = true
			rep.Repaired++
		}
	}
	// Cross-checks run after repair, so a quarantined corrupt cell
	// counts as missing from its grid — which is the truth a resume run
	// will see.
	referenced := map[string]bool{}
	for _, m := range manifests {
		for _, fp := range m.Cells {
			referenced[fp] = true
		}
		cov := s.Coverage(m)
		if !cov.Complete() {
			add(filepath.Base(s.ManifestPath(m.Grid, m.Seed)), FindIncompleteGrid,
				fmt.Sprintf("grid %q seed %d: %d/%d cells present; resume will recompute %d",
					m.Grid, m.Seed, cov.Done, cov.Total, len(cov.Missing)), false)
		}
	}
	orphans := make([]string, 0, len(healthyCells))
	for fp := range healthyCells {
		if !referenced[fp] {
			orphans = append(orphans, fp)
		}
	}
	sort.Strings(orphans)
	for _, fp := range orphans {
		add("c-"+fp+".json", FindOrphanCell, "healthy cell not referenced by any manifest", false)
	}
	sort.SliceStable(rep.Findings, func(i, j int) bool {
		if rep.Findings[i].File != rep.Findings[j].File {
			return rep.Findings[i].File < rep.Findings[j].File
		}
		return rep.Findings[i].Kind < rep.Findings[j].Kind
	})
	return rep, nil
}

// quarantine moves a store-relative file into QuarantineDir.
func (s *Store) quarantine(name string) error {
	qdir := filepath.Join(s.dir, QuarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return fmt.Errorf("resultstore: quarantine: %w", err)
	}
	if err := os.Rename(filepath.Join(s.dir, name), filepath.Join(qdir, name)); err != nil {
		return fmt.Errorf("resultstore: quarantine %s: %w", name, err)
	}
	return nil
}
