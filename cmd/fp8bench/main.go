// Command fp8bench regenerates the paper's tables and figures.
//
// Usage:
//
//	fp8bench -list                       list available experiment ids
//	fp8bench -exp table2                 run one experiment
//	fp8bench -exp table2,fig4,fig5       run several (they share the sweep grid)
//	fp8bench -exp all                    run every experiment (slow)
//	fp8bench -exp table2 -workers 4      bound the sweep worker pool
//	fp8bench -exp table2 -filter "model=resnet50;densenet121"   run a sub-grid
//	fp8bench -exp table2 -json           machine-readable report on stdout
//	fp8bench -exp table2 -shard 2/3      compute only the 2nd of 3 grid shards
//	fp8bench -merge dir1,dir2            merge shard stores into -cache-dir
//	fp8bench -exp table2 -coverage       report done/missing cells per grid
//	fp8bench -cache-clear                prune stale/old-schema store entries
//	fp8bench -models                     list the 75-model zoo with metadata
//	fp8bench -worker http://host:port    pull cell leases from an fp8coord
//
// Experiments are declarative cell grids (harness.GridSpec); the
// executor fans their cells out over a bounded worker pool (-workers,
// default GOMAXPROCS) and persists every completed cell to a
// content-addressed result store (-cache-dir, default
// ~/.cache/fp8bench). An interrupted run therefore resumes from its
// completed cells, and a repeated invocation prints an identical
// report without recomputing. -no-cache disables the store; each
// experiment footer reports its cell cache traffic, and a progress
// line on stderr shows cells done/total while a grid executes.
//
// Besides static sharding, a sweep can run under a coordinator:
// -worker <url> turns this process into a pull-based worker that
// leases one cell at a time from a running fp8coord, computes it
// through the same cache layers as a local run, and pushes the store
// payload back over HTTP. SIGINT/SIGTERM drain gracefully — the
// in-flight cell is finished and pushed before the worker exits.
//
// A sweep too slow for one machine shards: -shard i/n computes only
// the i-th of n disjoint slices of each grid into this process's
// store, -merge folds the resulting stores together (cells are
// content-addressed, so merging is copying), and -coverage diffs each
// grid's manifest against the merged store to show what is still
// missing. A warm run against the merged store then renders the full
// report, byte-identical to an unsharded run.
//
// All model forward math runs on the blocked compute kernels in
// internal/tensor/kernels (packed-panel GEMM behind Linear, im2col
// Conv2d and the attention matmuls, plus the 4-lane batch FP8
// encode). The kernels are bit-identical to the scalar reference
// loops for any worker count, so reports — and the content addresses
// the store and -merge rely on — are unchanged from the pre-kernel
// code, just several times faster to compute cold (`make bench-json`
// tracks the kernel trajectory in BENCH_kernels.json).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"fp8quant/internal/coord"
	"fp8quant/internal/evalx"
	"fp8quant/internal/faultline"
	"fp8quant/internal/harness"
	"fp8quant/internal/models"
	"fp8quant/internal/resultstore"
	"fp8quant/internal/tensor/kernels"
)

func main() {
	exp := flag.String("exp", "", "comma-separated experiment ids to run (or 'all')")
	list := flag.Bool("list", false, "list experiment ids")
	listModels := flag.Bool("models", false, "list the model zoo")
	workers := flag.Int("workers", 0, "max concurrent grid cells (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache-dir", defaultCacheDir(), "persistent result-store directory ('' = disabled)")
	noCache := flag.Bool("no-cache", false, "disable the persistent result store")
	cacheClear := flag.Bool("cache-clear", false, "prune stale/old-schema entries from the result store")
	cacheMaxAge := flag.Duration("cache-max-age", 0, "with -cache-clear, also remove entries older than this age (0 = schema-stale only)")
	filterFlag := flag.String("filter", "", `run only matching cells, e.g. "model=resnet50;densenet121,recipe=E4M3 Static"`)
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON report on stdout")
	shardFlag := flag.String("shard", "", `compute only the i-th of n disjoint grid slices, e.g. "2/3" (1-based)`)
	mergeFlag := flag.String("merge", "", "comma-separated store directories to merge into -cache-dir")
	coverage := flag.Bool("coverage", false, "report done/missing cells per experiment instead of running (exits nonzero if any grid is incomplete)")
	workerURL := flag.String("worker", "", "run as a pull-based sweep worker against this fp8coord URL")
	workerName := flag.String("worker-name", "", "worker identity reported to the coordinator (default host-pid-n)")
	warmFrom := flag.String("warm-from", "", "fetch the -exp grids' missing cells into -cache-dir from this fp8coord URL instead of running")
	flag.Parse()
	if armed, err := faultline.ArmFromEnv(); err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	} else if armed {
		// Chaos runs announce themselves so a log is never mistaken for
		// a clean run; the stats print at exit for replay comparison.
		fmt.Fprintf(os.Stderr, "faultline: armed from %s\n", faultline.EnvVar)
		defer fmt.Fprint(os.Stderr, faultline.Report())
	}
	if v := os.Getenv("FP8_KERNEL"); v != "" {
		// Pin the GEMM tier before any cell runs — a mixed-hardware
		// worker fleet forces one variant so every store cell carries
		// the same rounding (merges reject variant mixes).
		if err := kernels.ForceVariant(kernels.Variant(v)); err != nil {
			fmt.Fprintf(os.Stderr, "FP8_KERNEL: %v\n", err)
			os.Exit(1)
		}
	}
	harness.SetWorkers(*workers)
	if !*noCache && *cacheDir != "" {
		s, err := resultstore.Open(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "warning: result store disabled: %v\n", err)
		} else {
			harness.SetStore(s)
		}
	}
	shard, err := parseShard(*shardFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "-shard: %v\n", err)
		os.Exit(1)
	}
	if shard.Enabled() && harness.Store() == nil {
		// A shard's whole output is its store; without one the computed
		// cells would be discarded and the slices could never merge.
		fmt.Fprintln(os.Stderr, "-shard: no result store configured (set -cache-dir, drop -no-cache)")
		os.Exit(1)
	}
	if *mergeFlag != "" {
		if err := mergeStores(harness.Store(), *mergeFlag); err != nil {
			fmt.Fprintf(os.Stderr, "-merge: %v\n", err)
			os.Exit(1)
		}
		if *exp == "" && !*coverage && !*list && !*listModels && !*cacheClear {
			return
		}
	}
	if *cacheClear {
		s := harness.Store()
		if s == nil {
			fmt.Fprintln(os.Stderr, "-cache-clear: no result store configured")
			os.Exit(1)
		}
		n, err := s.Prune(*cacheMaxAge)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-cache-clear: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pruned %d stale entries from %s\n", n, s.Dir())
		if *exp == "" && !*coverage && !*list && !*listModels {
			return
		}
	}
	filter, err := harness.ParseFilter(*filterFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "-filter: %v\n", err)
		os.Exit(1)
	}

	switch {
	case *workerURL != "":
		os.Exit(runWorker(*workerURL, *workerName))
	case *warmFrom != "":
		ids := harness.IDs()
		if *exp != "" {
			if ids, err = resolveIDs(*exp); err != nil {
				fmt.Fprintf(os.Stderr, "%v; use -list\n", err)
				os.Exit(1)
			}
		}
		os.Exit(runWarm(*warmFrom, ids))
	case *coverage:
		ids := harness.IDs()
		if *exp != "" {
			if ids, err = resolveIDs(*exp); err != nil {
				fmt.Fprintf(os.Stderr, "%v; use -list\n", err)
				os.Exit(1)
			}
		}
		incomplete, err := printCoverage(harness.Store(), ids)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-coverage: %v\n", err)
			os.Exit(1)
		}
		if incomplete > 0 {
			// Nonzero exit so scripts can gate "merge done?" on the
			// status instead of grepping the report text.
			os.Exit(1)
		}
	case *list:
		for _, id := range harness.IDs() {
			e, _ := harness.Get(id)
			fmt.Printf("%-14s %s\n", id, e.Title())
		}
	case *listModels:
		fmt.Printf("%-24s %-7s %-14s %9s %6s %6s %8s\n",
			"name", "domain", "task", "size(MB)", "BN", "LN", "outlier")
		for _, name := range models.Names() {
			info, _ := models.InfoFor(name)
			fmt.Printf("%-24s %-7s %-14s %9.1f %6v %6v %8.0f\n",
				info.Name, info.Domain, info.Task, info.SizeMB,
				info.HasBN, info.HasLN, info.OutlierRatio)
		}
	case *exp != "":
		ids, err := resolveIDs(*exp)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v; use -list\n", err)
			os.Exit(1)
		}
		if err := validateFilterAxes(ids, filter); err != nil {
			fmt.Fprintf(os.Stderr, "-filter: %v\n", err)
			os.Exit(1)
		}
		if stderrIsTerminal() {
			harness.SetProgress(progressLine)
		}
		var outs []expReport
		failed, skipped := 0, 0
		for _, id := range ids {
			// In a batch, an experiment without the filtered axes (fig6
			// has no "model" axis, scalar fig1 has no cells at all) is
			// skipped with a note, not failed — otherwise -filter could
			// never be combined with -exp all.
			if e, _ := harness.Get(id); len(filter) > 0 {
				if spec := e.Spec(); len(spec.Select(filter)) == 0 {
					if !*jsonOut {
						fmt.Fprintf(os.Stderr, "skipping %s: filter matches none of its cells\n", id)
					}
					outs = append(outs, expReport{ID: id, Title: e.Title(), Skipped: true})
					skipped++
					continue
				}
			}
			o := runOne(id, filter, shard, *jsonOut)
			if o.Error != "" {
				failed++
			}
			outs = append(outs, o)
		}
		if skipped == len(ids) {
			fmt.Fprintf(os.Stderr, "-filter %q matches no cells in any requested experiment\n", *filterFlag)
			failed++
		}
		if *jsonOut {
			// An unencodable report (a NaN that slipped into a value)
			// must not discard the whole batch: degrade just that
			// experiment to an error stub.
			for i := range outs {
				if _, err := json.Marshal(outs[i]); err != nil {
					outs[i] = expReport{
						ID: outs[i].ID, Title: outs[i].Title,
						Error:      "json encode: " + err.Error(),
						ElapsedSec: outs[i].ElapsedSec,
						Cache:      outs[i].Cache,
					}
				}
			}
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(struct {
				Experiments []expReport `json:"experiments"`
			}{outs}); err != nil {
				fmt.Fprintf(os.Stderr, "json encode: %v\n", err)
				os.Exit(1)
			}
		}
		if failed > 0 {
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runWorker runs the pull-based worker loop against a coordinator and
// returns the process exit code. SIGINT/SIGTERM cancel the loop's
// context: the worker finishes and pushes the cell it is computing,
// then exits instead of leasing more — a drained worker never wastes
// completed work or strands a lease until its timeout.
func runWorker(url, name string) int {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	// An empty name is filled by the worker itself (host-pid-counter),
	// collision-free even when several workers share a process.
	w := &coord.Worker{URL: url, Name: name, Log: os.Stderr}
	stats, err := w.Run(ctx)
	fmt.Fprintf(os.Stderr, "worker %s: done (%d computed, %d cached, %d failed)\n",
		w.Name, stats.Computed, stats.Cached, stats.Failed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "-worker: %v\n", err)
		return 1
	}
	return 0
}

// runWarm fills the local result store with the requested grids'
// missing cells fetched from a coordinator, so a fresh machine joins a
// fleet (or a wiped cache recovers) without recomputing anything the
// coordinator already holds. Exits 0 even when cells are absent
// upstream — warming a store mid-sweep is normal; -coverage tells you
// whether the result is complete.
func runWarm(url string, ids []string) int {
	s := harness.Store()
	if s == nil {
		fmt.Fprintln(os.Stderr, "-warm-from: no result store configured (set -cache-dir, drop -no-cache)")
		return 1
	}
	var exps []harness.Experiment
	for _, id := range ids {
		if e, ok := harness.Get(id); ok {
			exps = append(exps, e)
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	st, err := coord.Warm(ctx, url, s, exps, os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "-warm-from: %v\n", err)
		return 1
	}
	fmt.Printf("warmed %s from %s: %s\n", s.Dir(), url, st)
	return 0
}

// resolveIDs expands and validates the -exp argument.
func resolveIDs(arg string) ([]string, error) {
	if arg == "all" {
		return harness.IDs(), nil
	}
	var ids []string
	for _, id := range strings.Split(arg, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		if _, ok := harness.Get(id); !ok {
			return nil, fmt.Errorf("unknown experiment %q", id)
		}
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("no experiment ids in %q", arg)
	}
	return ids, nil
}

// defaultCacheDir resolves ~/.cache/fp8bench (per XDG on Linux); an
// unresolvable home directory falls back to a local cache dir.
func defaultCacheDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		return ".fp8bench-cache"
	}
	return filepath.Join(base, "fp8bench")
}

// expReport is the per-experiment unit of the -json output.
type expReport struct {
	ID         string             `json:"id"`
	Title      string             `json:"title"`
	Error      string             `json:"error,omitempty"`
	Skipped    bool               `json:"skipped,omitempty"`
	ElapsedSec float64            `json:"elapsed_sec"`
	Cells      []cellReport       `json:"cells,omitempty"`
	Values     map[string]float64 `json:"values,omitempty"`
	Cache      *cacheReport       `json:"cache,omitempty"`
	// KernelVariant is the GEMM tier this process dispatched (avx2, sse
	// or generic) — the provenance consumers compare before merging
	// reports computed on different machines.
	KernelVariant string `json:"kernel_variant,omitempty"`
}

// cellReport is one executed grid cell in the -json output.
type cellReport struct {
	Key string `json:"key"`
	evalx.Result
}

// cacheReport is the experiment's result-store traffic delta.
type cacheReport struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Writes int64 `json:"writes"`
}

// parseShard parses the -shard flag: "i/n" with 1 <= i <= n selects
// the i-th of n disjoint grid slices ("" means unsharded).
func parseShard(s string) (harness.Shard, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return harness.Shard{}, nil
	}
	parts := strings.Split(s, "/")
	if len(parts) != 2 {
		return harness.Shard{}, fmt.Errorf("bad shard %q (want i/n, e.g. 2/3)", s)
	}
	i, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
	n, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err1 != nil || err2 != nil {
		return harness.Shard{}, fmt.Errorf("bad shard %q (want i/n, e.g. 2/3)", s)
	}
	if n < 1 || i < 1 || i > n {
		return harness.Shard{}, fmt.Errorf("shard %q out of range (want 1 <= i <= n)", s)
	}
	return harness.Shard{Index: i - 1, Count: n}, nil
}

// mergeStores folds each comma-separated source store into dst.
func mergeStores(dst *resultstore.Store, dirs string) error {
	if dst == nil {
		return fmt.Errorf("no destination store configured (set -cache-dir, drop -no-cache)")
	}
	for _, dir := range strings.Split(dirs, ",") {
		dir = strings.TrimSpace(dir)
		if dir == "" {
			continue
		}
		src, err := resultstore.Open(dir)
		if err != nil {
			return err
		}
		st, err := dst.Merge(src)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "merged %s into %s: %s\n", dir, dst.Dir(), st)
	}
	return nil
}

// validateFilterAxes rejects a filter naming an axis no requested
// experiment declares — a typo'd axis would otherwise select empty
// sub-grids everywhere and read like "no cells matched". An axis valid
// for some experiments but not others stays fine: the batch loop skips
// the experiments it does not apply to.
func validateFilterAxes(ids []string, f harness.Filter) error {
	if len(f) == 0 {
		return nil
	}
	// An axis is unknown to the batch when every requested experiment's
	// spec reports it unknown (same rule as GridSpec.ValidateFilter,
	// relaxed across the batch).
	unknownEverywhere := map[string]int{}
	specs := 0
	for _, id := range ids {
		if e, ok := harness.Get(id); ok {
			specs++
			for _, name := range e.Spec().UnknownAxes(f) {
				unknownEverywhere[name]++
			}
		}
	}
	var unknown []string
	for name, n := range unknownEverywhere {
		if n == specs {
			unknown = append(unknown, name)
		}
	}
	if len(unknown) == 0 {
		return nil
	}
	sort.Strings(unknown)
	var grids []string
	for _, id := range ids {
		e, ok := harness.Get(id)
		if !ok {
			continue
		}
		axes := e.Spec().AxisNames()
		if len(axes) == 0 {
			grids = append(grids, id+": (no axes)")
		} else {
			grids = append(grids, id+": "+strings.Join(axes, ", "))
		}
	}
	return fmt.Errorf("unknown axis %s; valid axes per experiment — %s",
		strings.Join(unknown, ", "), strings.Join(grids, "; "))
}

// printCoverage diffs each experiment's grid manifest against the
// store's on-disk cells and returns how many grids are incomplete.
// The stored manifest is preferred (it is what a completed or sharded
// run recorded, including shard provenance); a grid never run against
// this store falls back to the schedule derived from its spec.
// Experiments sharing a grid share coverage; each is still listed,
// matching -exp semantics. Scalar experiments have no cells and are
// skipped.
func printCoverage(s *resultstore.Store, ids []string) (int, error) {
	if s == nil {
		return 0, fmt.Errorf("no result store configured (set -cache-dir, drop -no-cache)")
	}
	fmt.Printf("%-14s %-22s %7s %7s %8s %9s  %-8s %s\n",
		"experiment", "grid", "cells", "done", "missing", "complete", "variant", "shards")
	incomplete := 0
	for _, id := range ids {
		e, ok := harness.Get(id)
		if !ok {
			continue
		}
		spec := e.Spec()
		if spec.NumCells() == 0 {
			continue
		}
		m, ok := s.LoadManifest(spec.ID, spec.Seed)
		if !ok {
			m = harness.ManifestFor(spec)
		}
		cov := s.Coverage(m)
		if !cov.Complete() {
			incomplete++
		}
		shards := "-"
		if len(m.Shards) > 0 {
			var parts []string
			for _, r := range m.Shards {
				parts = append(parts, fmt.Sprintf("%d/%d", r.Index+1, r.Count))
			}
			shards = strings.Join(parts, ",")
		}
		variant := "-"
		if len(m.KernelVariants) > 0 {
			variant = strings.Join(m.KernelVariants, ",")
		}
		fmt.Printf("%-14s %-22s %7d %7d %8d %8.1f%%  %-8s %s\n",
			id, spec.ID, cov.Total, cov.Done, len(cov.Missing), cov.Percent(), variant, shards)
	}
	if incomplete > 0 {
		fmt.Printf("%d experiment grid(s) incomplete in %s\n", incomplete, s.Dir())
	} else {
		fmt.Printf("all experiment grids complete in %s\n", s.Dir())
	}
	return incomplete, nil
}

// runOne executes one experiment, printing its report (text mode) and
// returning the structured form (JSON mode). Panics are recovered and
// reported per experiment, so one failing experiment cannot abort an
// -exp all batch, and the elapsed-time and cache footers are printed
// either way.
func runOne(id string, f harness.Filter, sh harness.Shard, jsonMode bool) (out expReport) {
	e, ok := harness.Get(id)
	if !ok {
		return expReport{ID: id, Error: "unknown experiment"}
	}
	out = expReport{ID: id, Title: e.Title(), KernelVariant: string(kernels.Active())}
	s := harness.Store()
	before := s.Stats()
	t0 := time.Now()
	if !jsonMode {
		if sh.Enabled() {
			fmt.Printf("=== %s — %s (shard %s) ===\n", id, e.Title(), sh)
		} else {
			fmt.Printf("=== %s — %s ===\n", id, e.Title())
		}
	}
	defer func() {
		if r := recover(); r != nil {
			out.Error = fmt.Sprintf("panic: %v", r)
		}
		out.ElapsedSec = time.Since(t0).Seconds()
		if s != nil {
			d := s.Stats()
			out.Cache = &cacheReport{
				Hits:   d.Hits - before.Hits,
				Misses: d.Misses - before.Misses,
				Writes: d.Writes - before.Writes,
			}
		}
		if !jsonMode {
			if out.Error != "" {
				fmt.Fprintf(os.Stderr, "error: %s: %s\n", id, out.Error)
			}
			fmt.Printf("(%s finished in %.1fs)\n", id, out.ElapsedSec)
			if c := out.Cache; c != nil {
				fmt.Printf("(result store %s: %d hits, %d misses, %d writes)\n",
					s.Dir(), c.Hits, c.Misses, c.Writes)
			}
			// Parenthesized like the other footers so the byte-identity
			// smoke comparisons (`grep -v "^("`) skip it.
			fmt.Printf("(kernel variant: %s)\n", out.KernelVariant)
			fmt.Println()
		}
	}()
	grid, sel, err := harness.RunGrid(e, f, sh)
	if err != nil {
		out.Error = err.Error()
		return out
	}
	var rep *harness.Report
	if len(f) == 0 {
		rep = e.Render(grid)
	} else {
		rep = harness.SubGridReport(e, grid, sel)
	}
	out.Values = rep.Values
	if jsonMode {
		for _, i := range sel {
			c := grid.Spec.CellAt(i)
			out.Cells = append(out.Cells, cellReport{
				Key:    grid.Spec.KeyString(c),
				Result: grid.Results[i],
			})
		}
	} else {
		fmt.Println(rep.Text)
	}
	return out
}

// progressMu serializes the progress line across cell workers.
var progressMu sync.Mutex

// progressLine rewrites the cells done/total line on stderr while a
// grid executes (installed only when stderr is a terminal).
func progressLine(id string, done, total int) {
	progressMu.Lock()
	defer progressMu.Unlock()
	fmt.Fprintf(os.Stderr, "\r%s: cells %d/%d", id, done, total)
	if done >= total {
		fmt.Fprint(os.Stderr, "\r\033[K")
	}
}

// stderrIsTerminal reports whether stderr is an interactive terminal.
func stderrIsTerminal() bool {
	fi, err := os.Stderr.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}
