package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fp8quant/internal/evalx"
	"fp8quant/internal/harness"
	"fp8quant/internal/resultstore"
)

// testExp is a synthetic grid experiment: cheap, pure cells whose
// results are a deterministic function of the cell coordinates.
type testExp struct {
	id   string
	spec harness.GridSpec
	run  func(harness.Cell) evalx.Result
}

func (e testExp) ID() string                          { return e.id }
func (e testExp) Title() string                       { return "test " + e.id }
func (e testExp) Spec() harness.GridSpec              { return e.spec }
func (e testExp) RunCell(c harness.Cell) evalx.Result { return e.run(c) }
func (e testExp) Render(g *harness.Grid) *harness.Report {
	var b strings.Builder
	vals := map[string]float64{}
	for i, r := range g.Results {
		key := g.Spec.KeyString(g.Spec.CellAt(i))
		fmt.Fprintf(&b, "%s qacc=%.4f\n", key, r.QAcc)
		vals["qacc_"+key] = r.QAcc
	}
	return &harness.Report{Text: b.String(), Values: vals}
}

// newTestExp builds a 3x2 synthetic experiment and a counter of fresh
// RunCell invocations.
func newTestExp(id string) (testExp, *atomic.Int64) {
	var computes atomic.Int64
	spec := harness.GridSpec{
		ID:   id + "-grid",
		Seed: 11,
		Axes: []harness.Axis{
			{Name: "model", Values: []string{"ma", "mb", "mc"}},
			{Name: "recipe", Values: []string{"r1", "r2"}},
		},
	}
	run := func(c harness.Cell) evalx.Result {
		computes.Add(1)
		return evalx.Result{
			Model: c.Values[0], Recipe: c.Values[1],
			BaseAcc: 1, QAcc: 1 - float64(c.Index)/100,
			RelLoss: float64(c.Index) / 100, Pass: c.Index == 0,
			Metrics: map[string]float64{"aux": float64(c.Index) * 1.5},
		}
	}
	return testExp{id: id, spec: spec, run: run}, &computes
}

// withHarnessState isolates the process-global harness cache layers.
func withHarnessState(t *testing.T) {
	t.Helper()
	harness.ClearMemo()
	harness.SetStore(nil)
	t.Cleanup(func() {
		harness.SetStore(nil)
		harness.ClearMemo()
	})
}

func openStore(t *testing.T) *resultstore.Store {
	t.Helper()
	s, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newTestCoord(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// resolveOnly returns a Resolve that knows exactly the given experiments.
func resolveOnly(exps ...harness.Experiment) func(string) (harness.Experiment, bool) {
	return func(id string) (harness.Experiment, bool) {
		for _, e := range exps {
			if e.ID() == id {
				return e, true
			}
		}
		return nil, false
	}
}

// payloadFor encodes a cell's store envelope the way a worker would.
func payloadFor(t *testing.T, e testExp, idx int) (string, []byte) {
	t.Helper()
	spec := e.spec
	c := spec.CellAt(idx)
	k := spec.CellKey(c)
	b, err := resultstore.EncodeCell(k, e.run(c))
	if err != nil {
		t.Fatal(err)
	}
	return k.Fingerprint(), b
}

// TestEndToEndThreeWorkers is the tentpole contract: a coordinator and
// three concurrent pull-based workers complete a grid over HTTP, the
// coordinator's store ends up byte-identical to a local -workers 1
// run's store, and a warm render from it reproduces the local report
// exactly with zero recomputation.
func TestEndToEndThreeWorkers(t *testing.T) {
	withHarnessState(t)
	e, computes := newTestExp("e2e")
	coordStore := openStore(t)
	c := newTestCoord(t, Config{Experiments: []harness.Experiment{e}, Store: coordStore})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make([]error, 3)
	stats := make([]WorkerStats, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := &Worker{
				URL: srv.URL, Name: fmt.Sprintf("w%d", i),
				Resolve: resolveOnly(e), MaxRetries: 3,
				BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond,
			}
			stats[i], errs[i] = w.Run(context.Background())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("coordinator not complete after all workers exited")
	}
	snap := c.Snapshot()
	if !snap.Complete || snap.Experiments[0].Done != 6 || snap.Experiments[0].Failed != 0 {
		t.Fatalf("snapshot = %+v, want 6 done / complete", snap.Experiments[0])
	}
	totalFresh := 0
	for _, st := range stats {
		totalFresh += st.Computed
		if st.Failed != 0 {
			t.Fatalf("worker stats report failures: %+v", st)
		}
	}
	if totalFresh != 6 {
		t.Fatalf("workers computed %d cells fresh, want 6 (each cell leased exactly once)", totalFresh)
	}

	// Local single-worker run into a fresh store for the identity check.
	harness.ClearMemo()
	localStore := openStore(t)
	harness.SetStore(localStore)
	harness.SetWorkers(1)
	defer harness.SetWorkers(0)
	localRep := harness.Run(e)

	spec := e.Spec()
	for i := 0; i < spec.NumCells(); i++ {
		fp := spec.CellKey(spec.CellAt(i)).Fingerprint()
		got, ok := coordStore.CellBytesByFingerprint(fp)
		if !ok {
			t.Fatalf("cell %d (%s) missing from coordinator store", i, fp)
		}
		want, ok := localStore.CellBytesByFingerprint(fp)
		if !ok {
			t.Fatalf("cell %d (%s) missing from local store", i, fp)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("cell %d (%s): pushed bytes differ from local store bytes", i, fp)
		}
	}

	// Warm render from the coordinator's store: byte-identical report,
	// zero recomputes.
	harness.ClearMemo()
	harness.SetStore(coordStore)
	computes.Store(0)
	warmRep := harness.Run(e)
	if computes.Load() != 0 {
		t.Fatalf("warm run against coordinator store recomputed %d cells, want 0", computes.Load())
	}
	if warmRep.Text != localRep.Text {
		t.Errorf("warm report from coordinator store differs from local run:\n--- coord ---\n%s\n--- local ---\n%s", warmRep.Text, localRep.Text)
	}
}

// TestLeaseExpiryRequeue drives the fake clock past a lease's TTL and
// checks the cell requeues: a crashed worker costs one timeout.
func TestLeaseExpiryRequeue(t *testing.T) {
	withHarnessState(t)
	e, _ := newTestExp("expiry")
	var mu sync.Mutex
	now := time.Unix(1000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	c := newTestCoord(t, Config{
		Experiments: []harness.Experiment{e}, Store: openStore(t),
		LeaseTTL: time.Minute, MaxExpiries: 2, Clock: clock,
	})
	lr := c.lease("w1")
	if lr.Status != StatusLease {
		t.Fatalf("first lease status = %q, want lease", lr.Status)
	}
	first := lr.Lease.Fingerprint

	// Within the TTL the cell stays leased; the grid has other cells,
	// so the next lease grants a different one.
	if lr2 := c.lease("w2"); lr2.Status != StatusLease || lr2.Lease.Fingerprint == first {
		t.Fatalf("second lease = %+v, want a different cell", lr2)
	}
	advance(2 * time.Minute)
	// Both leases have expired; the pool is fully pending again and the
	// first cell is grantable.
	seen := map[string]bool{}
	for i := 0; i < 6; i++ {
		lr := c.lease("w3")
		if lr.Status != StatusLease {
			t.Fatalf("post-expiry lease %d status = %q, want lease", i, lr.Status)
		}
		seen[lr.Lease.Fingerprint] = true
	}
	if !seen[first] {
		t.Fatal("expired cell was not requeued")
	}
	if lr := c.lease("w3"); lr.Status != StatusWait {
		t.Fatalf("lease with everything out = %q, want wait", lr.Status)
	}

	// A cell that keeps expiring is eventually declared failed, not
	// requeued forever: keep leasing everything out and expiring it
	// until every cell has exceeded MaxExpiries.
	advance(2 * time.Minute)
	for round := 0; round < 4; round++ {
		for {
			lr := c.lease("w4")
			if lr.Status != StatusLease {
				break
			}
		}
		advance(2 * time.Minute)
	}
	if lr := c.lease("w5"); lr.Status != StatusDone {
		t.Fatalf("lease after max expiries = %q, want done (all cells failed)", lr.Status)
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("coordinator not complete after every cell failed out")
	}
	if failed := c.FailedCells(); len(failed) != 6 || !strings.Contains(failed[0], "lease expired") {
		t.Fatalf("FailedCells = %v, want 6 lease-expiry entries", failed)
	}
}

// TestKilledWorkerRecovery is the crash story end to end over HTTP: a
// worker leases a cell and dies silently; with a short real TTL the
// cell requeues and live workers finish the grid.
func TestKilledWorkerRecovery(t *testing.T) {
	withHarnessState(t)
	e, _ := newTestExp("killed")
	c := newTestCoord(t, Config{
		Experiments: []harness.Experiment{e}, Store: openStore(t),
		LeaseTTL: 150 * time.Millisecond,
	})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	// The doomed worker: lease over the wire, then vanish.
	body, _ := json.Marshal(LeaseRequest{Worker: "doomed"})
	resp, err := http.Post(srv.URL+"/v1/lease", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var lr LeaseResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if lr.Status != StatusLease {
		t.Fatalf("doomed worker lease = %q, want lease", lr.Status)
	}

	// Reaper stand-in for fp8coord's ticker.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				c.Reap()
			case <-stop:
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := &Worker{
				URL: srv.URL, Name: fmt.Sprintf("live%d", i),
				Resolve: resolveOnly(e), MaxRetries: 3,
				BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond,
			}
			if _, err := w.Run(context.Background()); err != nil {
				t.Errorf("live worker %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	snap := c.Snapshot()
	if !snap.Complete || snap.Experiments[0].Done != 6 {
		t.Fatalf("snapshot after killed worker = %+v, want complete with 6 done", snap.Experiments[0])
	}
}

// TestPushRejections covers the push protocol edges: duplicates are
// idempotent, conflicting valid payloads are a hard 409 naming the
// cell, unknown cells 404, and Err pushes mark the cell failed.
func TestPushRejections(t *testing.T) {
	withHarnessState(t)
	e, _ := newTestExp("push")
	store := openStore(t)
	c := newTestCoord(t, Config{Experiments: []harness.Experiment{e}, Store: store})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	doPush := func(req PushRequest) (PushResponse, int, string) {
		t.Helper()
		b, _ := json.Marshal(req)
		resp, err := http.Post(srv.URL+"/v1/push", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			var er errorResponse
			_ = json.NewDecoder(resp.Body).Decode(&er)
			return PushResponse{}, resp.StatusCode, er.Error
		}
		var pr PushResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		return pr, resp.StatusCode, ""
	}

	fp, payload := payloadFor(t, e, 0)
	if pr, code, _ := doPush(PushRequest{Fingerprint: fp, Payload: payload, Computed: true, DurationMs: 5}); code != 200 || pr.Status != PushStored {
		t.Fatalf("first push = %v/%d, want stored/200", pr, code)
	}
	// Identical duplicate: idempotent (an expired lease whose work was
	// redone elsewhere).
	if pr, code, _ := doPush(PushRequest{Fingerprint: fp, Payload: payload}); code != 200 || pr.Status != PushIdentical {
		t.Fatalf("duplicate push = %v/%d, want identical/200", pr, code)
	}
	// Conflicting valid payload: same key, different result bytes.
	k := e.spec.CellKey(e.spec.CellAt(0))
	conflicting, err := resultstore.EncodeCell(k, evalx.Result{Model: "ma", Recipe: "r1", QAcc: 0.123})
	if err != nil {
		t.Fatal(err)
	}
	if _, code, msg := doPush(PushRequest{Fingerprint: fp, Payload: conflicting}); code != http.StatusConflict || !strings.Contains(msg, fp) {
		t.Fatalf("conflicting push = %d %q, want 409 naming the fingerprint", code, msg)
	}
	// The store must still hold the original bytes.
	if got, _ := store.CellBytesByFingerprint(fp); !bytes.Equal(got, payload) {
		t.Fatal("conflicting push mutated the stored payload")
	}
	// Unknown cell: 404.
	if _, code, _ := doPush(PushRequest{Fingerprint: strings.Repeat("0", 32), Payload: payload}); code != http.StatusNotFound {
		t.Fatalf("unknown-cell push = %d, want 404", code)
	}
	// Garbage payload for a known cell: rejected, cell stays pending.
	fp1, _ := payloadFor(t, e, 1)
	if _, code, _ := doPush(PushRequest{Fingerprint: fp1, Payload: []byte(`{"nope":1}`)}); code != http.StatusConflict {
		t.Fatalf("invalid payload push = %d, want 409", code)
	}
	// Err push: recorded as a permanent cell failure.
	fp2, _ := payloadFor(t, e, 2)
	if pr, code, _ := doPush(PushRequest{Fingerprint: fp2, Err: "panic in cell: boom"}); code != 200 || pr.Status != PushFailedRecorded {
		t.Fatalf("err push = %v/%d, want failed-recorded/200", pr, code)
	}
	snap := c.Snapshot()
	if p := snap.Experiments[0]; p.Done != 1 || p.Failed != 1 {
		t.Fatalf("progress after pushes = %+v, want 1 done / 1 failed", p)
	}
	if failed := c.FailedCells(); len(failed) != 1 || !strings.Contains(failed[0], "boom") {
		t.Fatalf("FailedCells = %v", failed)
	}
}

// TestPushVariantProvenance pins the coordinator's side of kernel-tier
// provenance: freshly computed pushes stamp the grid manifest with the
// worker's variant, a second distinct tier is refused before its bytes
// land, and variant-less pushes (older workers, cache hits) stamp
// nothing.
func TestPushVariantProvenance(t *testing.T) {
	withHarnessState(t)
	e, _ := newTestExp("prov")
	store := openStore(t)
	c := newTestCoord(t, Config{Experiments: []harness.Experiment{e}, Store: store})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	doPush := func(req PushRequest) (int, string) {
		t.Helper()
		b, _ := json.Marshal(req)
		resp, err := http.Post(srv.URL+"/v1/push", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var er errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&er)
		return resp.StatusCode, er.Error
	}
	variants := func() []string {
		t.Helper()
		m, ok := store.LoadManifest(e.spec.ID, e.spec.Seed)
		if !ok {
			t.Fatal("grid manifest missing")
		}
		return m.KernelVariants
	}

	// A variant-less push (older worker) stamps nothing.
	fp0, payload0 := payloadFor(t, e, 0)
	if code, _ := doPush(PushRequest{Fingerprint: fp0, Payload: payload0, Computed: true}); code != 200 {
		t.Fatalf("variant-less push = %d, want 200", code)
	}
	if v := variants(); len(v) != 0 {
		t.Fatalf("variants after variant-less push = %v, want none", v)
	}

	// A fresh compute stamps its tier; a second same-tier push is a no-op.
	fp1, payload1 := payloadFor(t, e, 1)
	if code, _ := doPush(PushRequest{Fingerprint: fp1, Payload: payload1, Computed: true, KernelVariant: "sse"}); code != 200 {
		t.Fatalf("sse push = %d, want 200", code)
	}
	fp2, payload2 := payloadFor(t, e, 2)
	if code, _ := doPush(PushRequest{Fingerprint: fp2, Payload: payload2, Computed: true, KernelVariant: "sse"}); code != 200 {
		t.Fatalf("second sse push = %d, want 200", code)
	}
	if v := variants(); len(v) != 1 || v[0] != "sse" {
		t.Fatalf("variants after sse pushes = %v, want [sse]", v)
	}

	// A different tier is refused before its bytes land.
	fp3, payload3 := payloadFor(t, e, 3)
	code, msg := doPush(PushRequest{Fingerprint: fp3, Payload: payload3, Computed: true, KernelVariant: "avx2"})
	if code != http.StatusConflict || !strings.Contains(msg, "kernel variant") {
		t.Fatalf("avx2 push = %d %q, want 409 naming the variant conflict", code, msg)
	}
	if got, ok := store.CellBytesByFingerprint(fp3); ok {
		t.Fatalf("refused push still stored %d bytes", len(got))
	}
	if v := variants(); len(v) != 1 || v[0] != "sse" {
		t.Fatalf("variants after refused push = %v, want [sse]", v)
	}

	// A cache-hit push from the other tier (Computed=false) carries no
	// provenance claim and is accepted — the bytes were produced
	// elsewhere under the recorded tier.
	if code, _ := doPush(PushRequest{Fingerprint: fp3, Payload: payload3}); code != 200 {
		t.Fatalf("cache-hit push = %d, want 200", code)
	}
}

// TestCostModelRoundTrip checks persistence through the store sidecar
// and the estimate fallback chain.
func TestCostModelRoundTrip(t *testing.T) {
	store := openStore(t)
	m := NewCostModel()
	axes := []resultstore.AxisValue{{Axis: "model", Value: "bloom_176b"}, {Axis: "recipe", Value: "E4M3"}}
	m.Observe("f1", axes, 800*time.Millisecond)
	m.Observe("f1", axes, 400*time.Millisecond)
	if err := m.Persist(store, CostSidecarName); err != nil {
		t.Fatal(err)
	}
	got := LoadCostModel(store, CostSidecarName)
	if got.Observations() != 2 {
		t.Fatalf("loaded observations = %d, want 2", got.Observations())
	}
	if a, b := m.EstimateMs("f1", axes), got.EstimateMs("f1", axes); a != b {
		t.Fatalf("estimate changed across persist round trip: %v vs %v", a, b)
	}
	// EMA: 0.3*400 + 0.7*800 = 680.
	if e := got.EstimateMs("f1", axes); e != 680 {
		t.Fatalf("exact estimate = %v, want 680", e)
	}
	// Unknown cell sharing the model axis: axis aggregate.
	other := []resultstore.AxisValue{{Axis: "model", Value: "bloom_176b"}, {Axis: "recipe", Value: "INT8"}}
	if e := got.EstimateMs("f2", other); e != 680 {
		t.Fatalf("axis-aggregate estimate = %v, want 680", e)
	}
	// No matching axis: global mean (same observations here).
	if e := got.EstimateMs("f3", []resultstore.AxisValue{{Axis: "model", Value: "squeezenet"}}); e != 680 {
		t.Fatalf("global-mean estimate = %v, want 680", e)
	}
	// Empty model: default.
	if e := NewCostModel().EstimateMs("fx", nil); e != defaultCostMs {
		t.Fatalf("default estimate = %v, want %v", e, float64(defaultCostMs))
	}
	// Corrupt sidecar: loads as empty, never fails.
	if err := store.SaveSidecar(CostSidecarName, []byte("not json")); err != nil {
		t.Fatal(err)
	}
	if m := LoadCostModel(store, CostSidecarName); m.Observations() != 0 {
		t.Fatal("corrupt sidecar should load as an empty model")
	}
}

// TestExpensiveCellsLeaseFirst seeds the cost model and checks the
// scheduler grants cells in descending estimated cost.
func TestExpensiveCellsLeaseFirst(t *testing.T) {
	withHarnessState(t)
	e, _ := newTestExp("lpt")
	c := newTestCoord(t, Config{Experiments: []harness.Experiment{e}, Store: openStore(t)})
	spec := e.Spec()
	fpAt := func(i int) string { return spec.CellKey(spec.CellAt(i)).Fingerprint() }
	// Cell 4 is the known-expensive one; cell 2 mid; others default.
	c.cost.Observe(fpAt(4), nil, 5*time.Second)
	c.cost.Observe(fpAt(2), nil, 2*time.Second)
	var order []string
	for i := 0; i < 6; i++ {
		lr := c.lease("w")
		if lr.Status != StatusLease {
			t.Fatalf("lease %d = %q", i, lr.Status)
		}
		order = append(order, lr.Lease.Fingerprint)
	}
	// Descending estimated cost: cell 4 (5000ms exact) first; the four
	// unobserved cells estimate the global mean (0.3*2000 + 0.7*5000 =
	// 4100ms), tie-broken by index; cell 2 (2000ms exact) last.
	want := []string{fpAt(4), fpAt(0), fpAt(1), fpAt(3), fpAt(5), fpAt(2)}
	for i, fp := range order {
		if fp != want[i] {
			t.Fatalf("lease order[%d] = %s, want %s (full order %v)", i, fp, want[i], order)
		}
	}
}

// TestSeedFromStore checks a coordinator over a half-full store
// schedules only the missing cells.
func TestSeedFromStore(t *testing.T) {
	withHarnessState(t)
	e, _ := newTestExp("seed")
	store := openStore(t)
	spec := e.Spec()
	for _, i := range []int{1, 4} {
		cell := spec.CellAt(i)
		if err := store.SaveCell(spec.CellKey(cell), e.run(cell)); err != nil {
			t.Fatal(err)
		}
	}
	c := newTestCoord(t, Config{Experiments: []harness.Experiment{e}, Store: store})
	snap := c.Snapshot()
	if p := snap.Experiments[0]; p.Done != 2 || p.Pending != 4 {
		t.Fatalf("seeded progress = %+v, want 2 done / 4 pending", p)
	}
	granted := map[string]bool{}
	for i := 0; i < 4; i++ {
		lr := c.lease("w")
		if lr.Status != StatusLease {
			t.Fatalf("lease %d = %q", i, lr.Status)
		}
		granted[lr.Lease.Fingerprint] = true
	}
	for _, i := range []int{1, 4} {
		if granted[spec.CellKey(spec.CellAt(i)).Fingerprint()] {
			t.Fatalf("cell %d was leased despite being in the store", i)
		}
	}
}

// TestGracefulDrain: draining refuses new leases, still accepts the
// in-flight push, and a worker mid-cell finishes and exits cleanly.
func TestGracefulDrain(t *testing.T) {
	withHarnessState(t)
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	e, _ := newTestExp("drain")
	inner := e.run
	e.run = func(c harness.Cell) evalx.Result {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
		return inner(c)
	}
	store := openStore(t)
	c := newTestCoord(t, Config{Experiments: []harness.Experiment{e}, Store: store})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	w := &Worker{
		URL: srv.URL, Name: "drainee", Resolve: resolveOnly(e),
		MaxRetries: 3, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond,
	}
	done := make(chan WorkerStats, 1)
	go func() {
		stats, err := w.Run(context.Background())
		if err != nil {
			t.Errorf("worker: %v", err)
		}
		done <- stats
	}()
	<-started
	c.Drain()
	if lr := c.lease("other"); lr.Status != StatusDraining {
		t.Fatalf("lease while draining = %q, want draining", lr.Status)
	}
	close(release)
	stats := <-done
	if stats.Computed != 1 {
		t.Fatalf("drained worker computed %d cells, want exactly the in-flight one", stats.Computed)
	}
	snap := c.Snapshot()
	if !snap.Draining || snap.Experiments[0].Done != 1 {
		t.Fatalf("post-drain snapshot = %+v, want draining with the in-flight cell done", snap)
	}
	// The cost model persisted through the push: a fresh load sees the
	// observation.
	if m := LoadCostModel(store, CostSidecarName); m.Observations() != 1 {
		t.Fatalf("persisted cost observations = %d, want 1", m.Observations())
	}
}

// TestProgressLongPoll: an up-to-date poller blocks until a state
// change; a stale gen returns immediately.
func TestProgressLongPoll(t *testing.T) {
	withHarnessState(t)
	e, _ := newTestExp("poll")
	c := newTestCoord(t, Config{Experiments: []harness.Experiment{e}, Store: openStore(t)})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	getProgress := func(query string) ProgressSnapshot {
		t.Helper()
		resp, err := http.Get(srv.URL + "/v1/progress" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var snap ProgressSnapshot
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
		return snap
	}
	snap := getProgress("")
	if snap.Experiments[0].Pending != 6 {
		t.Fatalf("initial snapshot = %+v", snap.Experiments[0])
	}
	// Stale gen: immediate.
	if s := getProgress("?gen=-1&timeout_ms=60000"); s.Gen != snap.Gen {
		t.Fatalf("stale-gen poll returned gen %d, want %d", s.Gen, snap.Gen)
	}
	// Current gen with a short timeout: returns unchanged after timeout.
	if s := getProgress(fmt.Sprintf("?gen=%d&timeout_ms=50", snap.Gen)); s.Gen != snap.Gen {
		t.Fatalf("timeout poll returned gen %d, want unchanged %d", s.Gen, snap.Gen)
	}
	// Current gen, state changes mid-poll: unblocks with the new gen.
	type res struct{ snap ProgressSnapshot }
	ch := make(chan res, 1)
	go func() {
		ch <- res{getProgress(fmt.Sprintf("?gen=%d&timeout_ms=10000", snap.Gen))}
	}()
	time.Sleep(30 * time.Millisecond) // let the poll park
	if lr := c.lease("w"); lr.Status != StatusLease {
		t.Fatalf("lease = %q", lr.Status)
	}
	select {
	case r := <-ch:
		if r.snap.Gen <= snap.Gen || r.snap.Experiments[0].Leased != 1 {
			t.Fatalf("unblocked poll = %+v, want newer gen with 1 leased", r.snap)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll did not unblock on state change")
	}
	// Coverage endpoint serves the text table.
	resp, err := http.Get(srv.URL + "/v1/coverage")
	if err != nil {
		t.Fatal(err)
	}
	b := new(bytes.Buffer)
	_, _ = b.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(b.String(), "poll") || !strings.Contains(b.String(), "experiment") {
		t.Fatalf("coverage text = %q", b.String())
	}
}

// TestSharedGridDeduplication: two experiments over the same grid share
// cells — the coordinator schedules each cell once, and both schedules
// complete together.
func TestSharedGridDeduplication(t *testing.T) {
	withHarnessState(t)
	ea, _ := newTestExp("shared")
	eb := testExp{id: "shared-b", spec: ea.spec, run: ea.run}
	c := newTestCoord(t, Config{Experiments: []harness.Experiment{ea, eb}, Store: openStore(t)})
	n := 0
	for {
		lr := c.lease("w")
		if lr.Status != StatusLease {
			break
		}
		n++
		if n > 12 {
			t.Fatal("more leases than distinct cells")
		}
	}
	if n != 6 {
		t.Fatalf("granted %d leases, want 6 (shared grid deduplicated)", n)
	}
	snap := c.Snapshot()
	if len(snap.Experiments) != 2 || snap.Experiments[0].Leased != 6 || snap.Experiments[1].Leased != 6 {
		t.Fatalf("shared-grid progress = %+v, want both experiments tracking the same 6 leased cells", snap.Experiments)
	}
}
