package kernels

// Portable inner kernels (the "generic" variant): the same 4×8
// accumulator tile as the amd64 SSE path, expressed as 32 scalar chains
// the compiler keeps independent. Bit-identical to the SSE assembly by
// construction — each chain is `acc += float32(v*b)` in ascending k
// order. The explicit float32 conversion forces the product to round
// before the add: the Go spec otherwise permits fusing `a + v*b` into
// an FMA (arm64 and ppc64 do), which rounds once and would break
// bit-identity with the two-rounding SSE path. It is a no-op on targets
// that never fuse. On amd64 this tier stays registered behind the
// assembly tiers so the differential tests can force it.

func generic4x8(x, p []float32, in int, acc []float32) {
	x0 := x[:in:in]
	x1 := x[in : 2*in : 2*in]
	x2 := x[2*in : 3*in : 3*in]
	x3 := x[3*in : 4*in : 4*in]
	p = p[: in*nr : in*nr]
	acc = acc[: 4*nr : 4*nr]
	for h := 0; h < nr; h += 4 {
		a00, a01, a02, a03 := acc[h], acc[h+1], acc[h+2], acc[h+3]
		a10, a11, a12, a13 := acc[nr+h], acc[nr+h+1], acc[nr+h+2], acc[nr+h+3]
		a20, a21, a22, a23 := acc[2*nr+h], acc[2*nr+h+1], acc[2*nr+h+2], acc[2*nr+h+3]
		a30, a31, a32, a33 := acc[3*nr+h], acc[3*nr+h+1], acc[3*nr+h+2], acc[3*nr+h+3]
		for k := 0; k < in; k++ {
			pk := p[k*nr+h : k*nr+h+4 : k*nr+h+4]
			b0, b1, b2, b3 := pk[0], pk[1], pk[2], pk[3]
			v := x0[k]
			a00 += float32(v * b0)
			a01 += float32(v * b1)
			a02 += float32(v * b2)
			a03 += float32(v * b3)
			v = x1[k]
			a10 += float32(v * b0)
			a11 += float32(v * b1)
			a12 += float32(v * b2)
			a13 += float32(v * b3)
			v = x2[k]
			a20 += float32(v * b0)
			a21 += float32(v * b1)
			a22 += float32(v * b2)
			a23 += float32(v * b3)
			v = x3[k]
			a30 += float32(v * b0)
			a31 += float32(v * b1)
			a32 += float32(v * b2)
			a33 += float32(v * b3)
		}
		acc[h], acc[h+1], acc[h+2], acc[h+3] = a00, a01, a02, a03
		acc[nr+h], acc[nr+h+1], acc[nr+h+2], acc[nr+h+3] = a10, a11, a12, a13
		acc[2*nr+h], acc[2*nr+h+1], acc[2*nr+h+2], acc[2*nr+h+3] = a20, a21, a22, a23
		acc[3*nr+h], acc[3*nr+h+1], acc[3*nr+h+2], acc[3*nr+h+3] = a30, a31, a32, a33
	}
}

func generic1x8(x, p []float32, in int, acc []float32) {
	xr := x[:in:in]
	p = p[: in*nr : in*nr]
	acc = acc[:nr:nr]
	for h := 0; h < nr; h += 4 {
		a0, a1, a2, a3 := acc[h], acc[h+1], acc[h+2], acc[h+3]
		for k := 0; k < in; k++ {
			pk := p[k*nr+h : k*nr+h+4 : k*nr+h+4]
			v := xr[k]
			a0 += float32(v * pk[0])
			a1 += float32(v * pk[1])
			a2 += float32(v * pk[2])
			a3 += float32(v * pk[3])
		}
		acc[h], acc[h+1], acc[h+2], acc[h+3] = a0, a1, a2, a3
	}
}
