package nn

import (
	"math"
	"testing"
	"testing/quick"

	"fp8quant/internal/tensor"
)

// Property: Linear is linear — f(a*x) == a*f(x) when bias is zero.
func TestLinearHomogeneity(t *testing.T) {
	l := NewLinear(4, 3)
	l.W.FillNormal(tensor.NewRNG(1), 0, 1)
	l.B = nil
	prop := func(a float32, v0, v1, v2, v3 float32) bool {
		if bad(a) || bad(v0) || bad(v1) || bad(v2) || bad(v3) || math.Abs(float64(a)) > 1e3 {
			return true
		}
		x := tensor.FromSlice([]float32{v0, v1, v2, v3}, 1, 4)
		y1 := l.Forward(x)
		xs := x.Clone()
		xs.Scale(a)
		y2 := l.Forward(xs)
		for i := range y1.Data {
			want := float64(y1.Data[i]) * float64(a)
			if math.Abs(float64(y2.Data[i])-want) > 1e-2*(math.Abs(want)+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Linear is additive — f(x+y) == f(x)+f(y) with zero bias.
func TestLinearAdditivity(t *testing.T) {
	l := NewLinear(3, 2)
	l.W.FillNormal(tensor.NewRNG(2), 0, 1)
	l.B = nil
	prop := func(a0, a1, a2, b0, b1, b2 float32) bool {
		for _, v := range []float32{a0, a1, a2, b0, b1, b2} {
			if bad(v) || math.Abs(float64(v)) > 1e3 {
				return true
			}
		}
		xa := tensor.FromSlice([]float32{a0, a1, a2}, 1, 3)
		xb := tensor.FromSlice([]float32{b0, b1, b2}, 1, 3)
		xs := tensor.FromSlice([]float32{a0 + b0, a1 + b1, a2 + b2}, 1, 3)
		ya, yb, ys := l.Forward(xa), l.Forward(xb), l.Forward(xs)
		for i := range ys.Data {
			want := float64(ya.Data[i]) + float64(yb.Data[i])
			if math.Abs(float64(ys.Data[i])-want) > 1e-2*(math.Abs(want)+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: LayerNorm output is invariant to input shift and scale.
func TestLayerNormInvariance(t *testing.T) {
	ln := NewLayerNorm(6)
	r := tensor.NewRNG(3)
	prop := func(shift float32, scaleSeed uint8) bool {
		if bad(shift) || math.Abs(float64(shift)) > 1e3 {
			return true
		}
		scale := float32(1 + int(scaleSeed%50))
		x := tensor.New(1, 6)
		x.FillNormal(r, 0, 1)
		y1 := ln.Forward(x)
		x2 := x.Clone()
		for i := range x2.Data {
			x2.Data[i] = x2.Data[i]*scale + shift
		}
		y2 := ln.Forward(x2)
		for i := range y1.Data {
			if math.Abs(float64(y1.Data[i]-y2.Data[i])) > 1e-2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: softmax rows are probability vectors for any logits.
func TestSoftmaxSimplex(t *testing.T) {
	prop := func(a, b, c, d float32) bool {
		for _, v := range []float32{a, b, c, d} {
			if bad(v) {
				return true
			}
		}
		x := tensor.FromSlice([]float32{a, b, c, d}, 1, 4)
		y := (Softmax{}).Forward(x)
		sum := 0.0
		for _, v := range y.Data {
			if v < 0 || bad(v) {
				return false
			}
			sum += float64(v)
		}
		return math.Abs(sum-1) < 1e-5
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: ReLU is idempotent and monotone.
func TestReLUProperties(t *testing.T) {
	var relu ReLU
	prop := func(a, b float32) bool {
		if bad(a) || bad(b) {
			return true
		}
		x := tensor.FromSlice([]float32{a, b}, 2)
		y := relu.Forward(x)
		yy := relu.Forward(y)
		if yy.Data[0] != y.Data[0] || yy.Data[1] != y.Data[1] {
			return false
		}
		if a <= b && y.Data[0] > y.Data[1] {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: BatchNorm with identity affine params and matching stats is
// a whitening map: output mean ~0, var ~1 per channel when stats are
// estimated from the same data.
func TestBatchNormWhitens(t *testing.T) {
	bn := NewBatchNorm2d(2)
	r := tensor.NewRNG(4)
	x := tensor.New(4, 2, 6, 6)
	x.FillNormal(r, 3, 2)
	bn.StartCalibration()
	bn.Forward(x)
	bn.FinishCalibration()
	y := bn.Forward(x)
	for c := 0; c < 2; c++ {
		var s, s2 float64
		n := 0
		for ni := 0; ni < 4; ni++ {
			for i := 0; i < 36; i++ {
				v := float64(y.Data[(ni*2+c)*36+i])
				s += v
				s2 += v * v
				n++
			}
		}
		mean := s / float64(n)
		va := s2/float64(n) - mean*mean
		if math.Abs(mean) > 1e-3 || math.Abs(va-1) > 1e-2 {
			t.Errorf("channel %d: mean %v var %v after self-calibration", c, mean, va)
		}
	}
}

// Property: conv with a delta kernel shifts but preserves values.
func TestConvDeltaKernel(t *testing.T) {
	c := NewConv2d(1, 1, 3, 1, 1, 1)
	c.W.Set(1, 0, 0, 0, 0) // top-left tap: shifts image down-right
	x := tensor.New(1, 1, 5, 5)
	x.FillNormal(tensor.NewRNG(5), 0, 1)
	y := c.Forward(x)
	for yy := 1; yy < 5; yy++ {
		for xx := 1; xx < 5; xx++ {
			if y.At(0, 0, yy, xx) != x.At(0, 0, yy-1, xx-1) {
				t.Fatalf("delta conv mismatch at %d,%d", yy, xx)
			}
		}
	}
}

func bad(v float32) bool {
	f := float64(v)
	return math.IsNaN(f) || math.IsInf(f, 0)
}
