package harness

import (
	"fmt"

	"fp8quant/internal/diffusion"
	"fp8quant/internal/models"
	"fp8quant/internal/quant"
	"fp8quant/internal/textgen"
)

func init() {
	registerExp(Experiment{ID: "fig6", Title: "Figure 6 / A.2: Stable Diffusion FID across formats", Run: runFig6})
	registerExp(Experiment{ID: "table4", Title: "Table 4 / A.3: Bloom text generation quality", Run: runTable4})
}

func runFig6() *Report {
	// Three prompts stand in for the three prompt studies (Figures 6,
	// 11, 12). FP32 generations are the FID reference.
	refPipe := diffusion.NewPipeline(0xF166, 3)
	const imagesPerPrompt = 24
	ref := refPipe.Generate(imagesPerPrompt)

	type cfg struct {
		label  string
		recipe quant.Recipe
	}
	cfgs := []cfg{
		{"FP8-E5M2 Direct", quant.StandardFP8(quant.E5M2)},
		{"FP8-E4M3 Dynamic", quant.DynamicFP8(quant.E4M3)},
		{"FP8-E4M3 Static", quant.StandardFP8(quant.E4M3)},
		{"FP8-E4M3 Static +LayerNorm", quant.StandardFP8(quant.E4M3).WithExtendedOps()},
		{"FP8-E3M4 Dynamic", quant.DynamicFP8(quant.E3M4)},
		{"FP8-E3M4 Static", quant.StandardFP8(quant.E3M4)},
		{"INT8-Dynamic", quant.StandardINT8(true)},
		{"INT8-Static", quant.StandardINT8(false)},
	}
	// One grid cell per config: each quantizes its own clone of the
	// pipeline (identical weights by deterministic rebuild), so cells
	// run concurrently on the sweep pool with no shared mutable state
	// and the FIDs land in fixed slots regardless of worker count.
	fids := collectCells(len(cfgs), func(i int) float64 {
		pipe := refPipe.Clone()
		r := cfgs[i].recipe
		r.CalibBatches = 8
		h := quant.Quantize(pipe, pipe.CalibData(), r)
		gen := pipe.Generate(imagesPerPrompt)
		h.Release()
		return diffusion.FIDAgainst(ref, gen)
	})
	tb := newTable("config", "FID (vs FP32 generations)")
	vals := map[string]float64{}
	for i, c := range cfgs {
		tb.add(c.label, fmt.Sprintf("%.2f", fids[i]*100))
		vals["fid_"+c.label] = fids[i] * 100
	}
	return &Report{
		Text: "Figure 6 / Appendix A.2 reproduction: FID of generated latent features vs the\n" +
			"FP32 pipeline (lower is better; paper finds FP8 formats below INT8, E4M3/E3M4\n" +
			"best). FID scaled x100 for readability.\n\n" + tb.String(),
		Values: vals,
	}
}

func runTable4() *Report {
	// The Bloom 32-token prompt, beam width 4, 100 new tokens.
	const beamWidth, maxNew, promptLen = 4, 100, 32

	lm := models.NewGenLM(0x7AB4)
	prompt := make([]int, promptLen)
	// A fixed synthetic prompt (deterministic mixed-frequency tokens).
	for i := range prompt {
		prompt[i] = (i*7 + 3) % lm.Vocab()
	}
	refGen := textgen.BeamSearch(lm, prompt, beamWidth, maxNew)
	refRep := textgen.RepetitionRate(refGen, 3)

	type cfg struct {
		label  string
		recipe quant.Recipe
	}
	cfgs := []cfg{
		{"INT8 Dynamic", quant.StandardINT8(true)},
		{"E5M2 Direct", quant.StandardFP8(quant.E5M2)},
		{"E4M3 Dynamic", quant.DynamicFP8(quant.E4M3)},
		{"E4M3 Static", quant.StandardFP8(quant.E4M3)},
		{"E3M4 Dynamic", quant.DynamicFP8(quant.E3M4)},
		{"E3M4 Static", quant.StandardFP8(quant.E3M4)},
		{"FP8 Mixed", quant.MixedFP8()},
	}
	// One grid cell per config: each quantizes its own clone of the
	// generator, so the beam searches run concurrently on the sweep
	// pool against the read-only FP32 reference sequence.
	metrics := collectCells(len(cfgs), func(i int) textgen.Metrics {
		cell := lm.Clone()
		r := cfgs[i].recipe
		r.CalibBatches = 4
		h := quant.Quantize(cell, cell.DataSet, r)
		gen := textgen.BeamSearch(cell, prompt, beamWidth, maxNew)
		h.Release()
		return textgen.Compare(refGen, gen)
	})
	tb := newTable("config", "first divergence", "match rate", "repetition (3-gram)", "distinct-2")
	tb.add("FP32 (reference)", fmt.Sprintf("%d", len(refGen)), "1.000",
		fmt.Sprintf("%.3f", refRep), fmt.Sprintf("%.3f", textgen.DistinctN(refGen, 2)))
	vals := map[string]float64{"ref_repetition": refRep}
	for i, c := range cfgs {
		m := metrics[i]
		tb.add(c.label, fmt.Sprintf("%d", m.FirstDivergence),
			fmt.Sprintf("%.3f", m.MatchRate),
			fmt.Sprintf("%.3f", m.RepetitionRate),
			fmt.Sprintf("%.3f", m.DistinctN))
		vals["repetition_"+c.label] = m.RepetitionRate
		vals["match_"+c.label] = m.MatchRate
		vals["distinct_"+c.label] = m.DistinctN
	}
	return &Report{
		Text: "Table 4 / Appendix A.3 reproduction: beam-search generation (beam 4, 100 new\n" +
			"tokens from a 32-token prompt). The paper's qualitative finding — INT8 output\n" +
			"degenerates into repetition while E3M4/Mixed stay close to FP32 — is\n" +
			"quantified via divergence and repetition metrics.\n\n" + tb.String(),
		Values: vals,
	}
}
