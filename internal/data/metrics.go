package data

import (
	"math"

	"fp8quant/internal/tensor"
)

// Argmax returns the index of the largest value in v.
func Argmax(v []float32) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	_ = v[best]
	return best
}

// ArgmaxRows returns the per-row argmax of a [rows, cols] tensor.
func ArgmaxRows(t *tensor.Tensor) []int {
	cols := t.Shape[t.Rank()-1]
	rows := t.Len() / cols
	out := make([]int, rows)
	for r := 0; r < rows; r++ {
		out[r] = Argmax(t.Data[r*cols : (r+1)*cols])
	}
	return out
}

// Accuracy returns the fraction of matching predictions.
func Accuracy(pred, label []int) float64 {
	if len(pred) == 0 {
		return 0
	}
	hit := 0
	for i := range pred {
		if pred[i] == label[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(pred))
}

// TopKAccuracy returns the fraction of rows whose label appears in the
// k largest logits.
func TopKAccuracy(logits *tensor.Tensor, label []int, k int) float64 {
	cols := logits.Shape[logits.Rank()-1]
	rows := logits.Len() / cols
	hit := 0
	for r := 0; r < rows; r++ {
		row := logits.Data[r*cols : (r+1)*cols]
		lv := row[label[r]]
		greater := 0
		for _, v := range row {
			if v > lv {
				greater++
			}
		}
		if greater < k {
			hit++
		}
	}
	return float64(hit) / float64(rows)
}

// F1Binary returns the binary F1 score treating class 1 as positive.
func F1Binary(pred, label []int) float64 {
	var tp, fp, fn float64
	for i := range pred {
		switch {
		case pred[i] == 1 && label[i] == 1:
			tp++
		case pred[i] == 1 && label[i] == 0:
			fp++
		case pred[i] == 0 && label[i] == 1:
			fn++
		}
	}
	if 2*tp+fp+fn == 0 {
		return 0
	}
	return 2 * tp / (2*tp + fp + fn)
}

// MatthewsCorr returns the Matthews correlation coefficient (the CoLA
// metric).
func MatthewsCorr(pred, label []int) float64 {
	var tp, tn, fp, fn float64
	for i := range pred {
		switch {
		case pred[i] == 1 && label[i] == 1:
			tp++
		case pred[i] == 0 && label[i] == 0:
			tn++
		case pred[i] == 1 && label[i] == 0:
			fp++
		default:
			fn++
		}
	}
	den := math.Sqrt((tp + fp) * (tp + fn) * (tn + fp) * (tn + fn))
	if den == 0 {
		return 0
	}
	return (tp*tn - fp*fn) / den
}

// Pearson returns the Pearson correlation between two score vectors
// (the STS-B metric).
func Pearson(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	n := float64(len(a))
	var sa, sb float64
	for i := range a {
		sa += a[i]
		sb += b[i]
	}
	ma, mb := sa/n, sb/n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// FIDStats holds the Gaussian statistics of a feature set under the
// diagonal-covariance approximation: with diagonal covariances the
// matrix square root in the Fréchet distance factorizes exactly, giving
//
//	FID = ||μ1-μ2||² + Σ_d (√v1_d - √v2_d)²
//
// This is the exact Fréchet distance between axis-aligned Gaussians and
// preserves the ordering behaviour of full FID for quantization noise.
type FIDStats struct {
	Mean, Var []float64
	N         int
}

// ComputeFIDStats reduces a [n, d] feature tensor to its statistics.
func ComputeFIDStats(features *tensor.Tensor) FIDStats {
	d := features.Shape[features.Rank()-1]
	n := features.Len() / d
	st := FIDStats{Mean: make([]float64, d), Var: make([]float64, d), N: n}
	for r := 0; r < n; r++ {
		row := features.Data[r*d : (r+1)*d]
		for j, v := range row {
			st.Mean[j] += float64(v)
		}
	}
	for j := range st.Mean {
		st.Mean[j] /= float64(n)
	}
	for r := 0; r < n; r++ {
		row := features.Data[r*d : (r+1)*d]
		for j, v := range row {
			dv := float64(v) - st.Mean[j]
			st.Var[j] += dv * dv
		}
	}
	for j := range st.Var {
		st.Var[j] /= float64(n)
	}
	return st
}

// FID returns the Fréchet distance between two feature distributions
// (diagonal-Gaussian form). Lower is better; FID(X, X) == 0.
func FID(a, b FIDStats) float64 {
	d := 0.0
	for j := range a.Mean {
		dm := a.Mean[j] - b.Mean[j]
		ds := math.Sqrt(a.Var[j]) - math.Sqrt(b.Var[j])
		d += dm*dm + ds*ds
	}
	return d
}

// RelativeLoss returns the relative accuracy degradation of quantized
// vs baseline: (base - q) / base. The paper's pass criterion is
// RelativeLoss <= 1%.
func RelativeLoss(base, quantized float64) float64 {
	if base == 0 {
		return 0
	}
	return (base - quantized) / base
}

// Passes reports whether a quantized accuracy meets the paper's 1%
// relative-loss criterion against the FP32 baseline.
func Passes(base, quantized float64) bool {
	return RelativeLoss(base, quantized) <= 0.01+1e-12
}
