package kernels

import "fmt"

// Variant names one microkernel implementation tier. The dispatcher
// picks the best tier the host supports at process start; tests force
// specific tiers to pin every variant against its scalar oracle on one
// machine.
//
// Bit-identity is *per-variant*: "generic" and "sse" perform the
// two-rounding `acc += float32(v*b)` sequence of the naive loops, while
// "avx2" uses fused multiply-adds that round once per update — its
// results legitimately differ from the SSE tier in the last bits. Any
// artifact derived from kernel output (store cells, reports) therefore
// records the producing variant, and store merges refuse to mix
// variants silently.
type Variant string

const (
	// VariantGeneric is the portable pure-Go 4×8 tile (every GOARCH).
	VariantGeneric Variant = "generic"
	// VariantSSE is the amd64 SSE 4×8 assembly tile (no FMA; exactly
	// the generic operation sequence).
	VariantSSE Variant = "sse"
	// VariantAVX2 is the amd64 AVX2+FMA 8×8 assembly tile (one rounding
	// per multiply-add; pinned to the fused scalar oracle).
	VariantAVX2 Variant = "avx2"
)

// kernel is one variant's dispatch metadata: the tile height mr and
// whether its multiply-adds round once (fused). The block loops
// themselves are selected by variant in blockRowsOf — a direct switch,
// not function-pointer fields, so the stack accumulator tiles never
// escape through an indirect call (planned forwards stay zero-alloc).
type kernel struct {
	variant Variant
	mr      int
	fused   bool
}

// genericKernel is the portable tier, available on every GOARCH.
var genericKernel = &kernel{variant: VariantGeneric, mr: 4}

// available lists the host's kernels best-first; active is the one the
// GEMM entry points use; twoRounding is the best non-fused tier, the
// fallback for Opt.NoFused callers (convolution). All are fixed at init
// and only active changes, through ForceVariant (which must not race
// with running GEMMs).
var (
	available   []*kernel
	active      *kernel
	twoRounding *kernel
)

func init() {
	available = append(archKernels(), genericKernel)
	active = available[0]
	for _, k := range available {
		if !k.fused {
			twoRounding = k
			break
		}
	}
}

// Active returns the variant the GEMM entry points currently use.
func Active() Variant { return active.variant }

// RefMadd returns the scalar multiply-accumulate step a variant's
// outputs are pinned to: the exactly-rounded fused multiply-add for the
// avx2 tier, the two-rounding product-then-add for every other tier.
// Differential tests outside this package build their naive oracle
// loops on RefMadd(Active()) so they pin to whichever variant the host
// dispatched.
func RefMadd(v Variant) func(acc, x, b float32) float32 {
	if v == VariantAVX2 {
		return func(acc, x, b float32) float32 { return fmaRef(x, b, acc) }
	}
	return func(acc, x, b float32) float32 { return acc + float32(x*b) }
}

// Available returns the variants the host supports, best-first. The
// generic tier is always present and always last.
func Available() []Variant {
	out := make([]Variant, len(available))
	for i, k := range available {
		out[i] = k.variant
	}
	return out
}

// ForceVariant pins the GEMM entry points to one variant, overriding
// the dispatcher's choice; it errors if the host does not support v.
// It is meant for process start (test mains, the FP8_KERNEL escape
// hatch in cmd wiring) — calling it concurrently with running GEMMs is
// a data race.
func ForceVariant(v Variant) error {
	for _, k := range available {
		if k.variant == v {
			active = k
			return nil
		}
	}
	return fmt.Errorf("kernels: variant %q not available on this host (have %v)", v, Available())
}
