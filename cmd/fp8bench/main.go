// Command fp8bench regenerates the paper's tables and figures.
//
// Usage:
//
//	fp8bench -list                       list available experiment ids
//	fp8bench -exp table2                 run one experiment
//	fp8bench -exp table2,fig4,fig5       run several (they share the sweep grid)
//	fp8bench -exp all                    run every experiment (slow)
//	fp8bench -exp table2 -workers 4      bound the sweep worker pool
//	fp8bench -exp table2 -filter "model=resnet50;densenet121"   run a sub-grid
//	fp8bench -exp table2 -json           machine-readable report on stdout
//	fp8bench -cache-clear                prune stale/old-schema store entries
//	fp8bench -models                     list the 75-model zoo with metadata
//
// Experiments are declarative cell grids (harness.GridSpec); the
// executor fans their cells out over a bounded worker pool (-workers,
// default GOMAXPROCS) and persists every completed cell to a
// content-addressed result store (-cache-dir, default
// ~/.cache/fp8bench). An interrupted run therefore resumes from its
// completed cells, and a repeated invocation prints an identical
// report without recomputing. -no-cache disables the store; each
// experiment footer reports its cell cache traffic, and a progress
// line on stderr shows cells done/total while a grid executes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"fp8quant/internal/evalx"
	"fp8quant/internal/harness"
	"fp8quant/internal/models"
	"fp8quant/internal/resultstore"
)

func main() {
	exp := flag.String("exp", "", "comma-separated experiment ids to run (or 'all')")
	list := flag.Bool("list", false, "list experiment ids")
	listModels := flag.Bool("models", false, "list the model zoo")
	workers := flag.Int("workers", 0, "max concurrent grid cells (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache-dir", defaultCacheDir(), "persistent result-store directory ('' = disabled)")
	noCache := flag.Bool("no-cache", false, "disable the persistent result store")
	cacheClear := flag.Bool("cache-clear", false, "prune stale/old-schema entries from the result store")
	cacheMaxAge := flag.Duration("cache-max-age", 0, "with -cache-clear, also remove entries older than this age (0 = schema-stale only)")
	filterFlag := flag.String("filter", "", `run only matching cells, e.g. "model=resnet50;densenet121,recipe=E4M3 Static"`)
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON report on stdout")
	flag.Parse()
	harness.SetWorkers(*workers)
	if !*noCache && *cacheDir != "" {
		s, err := resultstore.Open(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "warning: result store disabled: %v\n", err)
		} else {
			harness.SetStore(s)
		}
	}
	if *cacheClear {
		s := harness.Store()
		if s == nil {
			fmt.Fprintln(os.Stderr, "-cache-clear: no result store configured")
			os.Exit(1)
		}
		n, err := s.Prune(*cacheMaxAge)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-cache-clear: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pruned %d stale entries from %s\n", n, s.Dir())
		if *exp == "" && !*list && !*listModels {
			return
		}
	}
	filter, err := harness.ParseFilter(*filterFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "-filter: %v\n", err)
		os.Exit(1)
	}

	switch {
	case *list:
		for _, id := range harness.IDs() {
			e, _ := harness.Get(id)
			fmt.Printf("%-14s %s\n", id, e.Title())
		}
	case *listModels:
		fmt.Printf("%-24s %-7s %-14s %9s %6s %6s %8s\n",
			"name", "domain", "task", "size(MB)", "BN", "LN", "outlier")
		for _, name := range models.Names() {
			info, _ := models.InfoFor(name)
			fmt.Printf("%-24s %-7s %-14s %9.1f %6v %6v %8.0f\n",
				info.Name, info.Domain, info.Task, info.SizeMB,
				info.HasBN, info.HasLN, info.OutlierRatio)
		}
	case *exp != "":
		ids, err := resolveIDs(*exp)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v; use -list\n", err)
			os.Exit(1)
		}
		if stderrIsTerminal() {
			harness.SetProgress(progressLine)
		}
		var outs []expReport
		failed, skipped := 0, 0
		for _, id := range ids {
			// In a batch, an experiment without the filtered axes (fig6
			// has no "model" axis, scalar fig1 has no cells at all) is
			// skipped with a note, not failed — otherwise -filter could
			// never be combined with -exp all.
			if e, _ := harness.Get(id); len(filter) > 0 {
				if spec := e.Spec(); len(spec.Select(filter)) == 0 {
					if !*jsonOut {
						fmt.Fprintf(os.Stderr, "skipping %s: filter matches none of its cells\n", id)
					}
					outs = append(outs, expReport{ID: id, Title: e.Title(), Skipped: true})
					skipped++
					continue
				}
			}
			o := runOne(id, filter, *jsonOut)
			if o.Error != "" {
				failed++
			}
			outs = append(outs, o)
		}
		if skipped == len(ids) {
			fmt.Fprintf(os.Stderr, "-filter %q matches no cells in any requested experiment\n", *filterFlag)
			failed++
		}
		if *jsonOut {
			// An unencodable report (a NaN that slipped into a value)
			// must not discard the whole batch: degrade just that
			// experiment to an error stub.
			for i := range outs {
				if _, err := json.Marshal(outs[i]); err != nil {
					outs[i] = expReport{
						ID: outs[i].ID, Title: outs[i].Title,
						Error:      "json encode: " + err.Error(),
						ElapsedSec: outs[i].ElapsedSec,
						Cache:      outs[i].Cache,
					}
				}
			}
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(struct {
				Experiments []expReport `json:"experiments"`
			}{outs}); err != nil {
				fmt.Fprintf(os.Stderr, "json encode: %v\n", err)
				os.Exit(1)
			}
		}
		if failed > 0 {
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// resolveIDs expands and validates the -exp argument.
func resolveIDs(arg string) ([]string, error) {
	if arg == "all" {
		return harness.IDs(), nil
	}
	var ids []string
	for _, id := range strings.Split(arg, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		if _, ok := harness.Get(id); !ok {
			return nil, fmt.Errorf("unknown experiment %q", id)
		}
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("no experiment ids in %q", arg)
	}
	return ids, nil
}

// defaultCacheDir resolves ~/.cache/fp8bench (per XDG on Linux); an
// unresolvable home directory falls back to a local cache dir.
func defaultCacheDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		return ".fp8bench-cache"
	}
	return filepath.Join(base, "fp8bench")
}

// expReport is the per-experiment unit of the -json output.
type expReport struct {
	ID         string             `json:"id"`
	Title      string             `json:"title"`
	Error      string             `json:"error,omitempty"`
	Skipped    bool               `json:"skipped,omitempty"`
	ElapsedSec float64            `json:"elapsed_sec"`
	Cells      []cellReport       `json:"cells,omitempty"`
	Values     map[string]float64 `json:"values,omitempty"`
	Cache      *cacheReport       `json:"cache,omitempty"`
}

// cellReport is one executed grid cell in the -json output.
type cellReport struct {
	Key string `json:"key"`
	evalx.Result
}

// cacheReport is the experiment's result-store traffic delta.
type cacheReport struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Writes int64 `json:"writes"`
}

// runOne executes one experiment, printing its report (text mode) and
// returning the structured form (JSON mode). Panics are recovered and
// reported per experiment, so one failing experiment cannot abort an
// -exp all batch, and the elapsed-time and cache footers are printed
// either way.
func runOne(id string, f harness.Filter, jsonMode bool) (out expReport) {
	e, ok := harness.Get(id)
	if !ok {
		return expReport{ID: id, Error: "unknown experiment"}
	}
	out = expReport{ID: id, Title: e.Title()}
	s := harness.Store()
	before := s.Stats()
	t0 := time.Now()
	if !jsonMode {
		fmt.Printf("=== %s — %s ===\n", id, e.Title())
	}
	defer func() {
		if r := recover(); r != nil {
			out.Error = fmt.Sprintf("panic: %v", r)
		}
		out.ElapsedSec = time.Since(t0).Seconds()
		if s != nil {
			d := s.Stats()
			out.Cache = &cacheReport{
				Hits:   d.Hits - before.Hits,
				Misses: d.Misses - before.Misses,
				Writes: d.Writes - before.Writes,
			}
		}
		if !jsonMode {
			if out.Error != "" {
				fmt.Fprintf(os.Stderr, "error: %s: %s\n", id, out.Error)
			}
			fmt.Printf("(%s finished in %.1fs)\n", id, out.ElapsedSec)
			if c := out.Cache; c != nil {
				fmt.Printf("(result store %s: %d hits, %d misses, %d writes)\n",
					s.Dir(), c.Hits, c.Misses, c.Writes)
			}
			fmt.Println()
		}
	}()
	grid, sel, err := harness.RunGrid(e, f)
	if err != nil {
		out.Error = err.Error()
		return out
	}
	var rep *harness.Report
	if len(f) == 0 {
		rep = e.Render(grid)
	} else {
		rep = harness.SubGridReport(e, grid, sel)
	}
	out.Values = rep.Values
	if jsonMode {
		for _, i := range sel {
			c := grid.Spec.CellAt(i)
			out.Cells = append(out.Cells, cellReport{
				Key:    grid.Spec.KeyString(c),
				Result: grid.Results[i],
			})
		}
	} else {
		fmt.Println(rep.Text)
	}
	return out
}

// progressMu serializes the progress line across cell workers.
var progressMu sync.Mutex

// progressLine rewrites the cells done/total line on stderr while a
// grid executes (installed only when stderr is a terminal).
func progressLine(id string, done, total int) {
	progressMu.Lock()
	defer progressMu.Unlock()
	fmt.Fprintf(os.Stderr, "\r%s: cells %d/%d", id, done, total)
	if done >= total {
		fmt.Fprint(os.Stderr, "\r\033[K")
	}
}

// stderrIsTerminal reports whether stderr is an interactive terminal.
func stderrIsTerminal() bool {
	fi, err := os.Stderr.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}
