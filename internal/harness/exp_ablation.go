package harness

import (
	"fmt"

	"fp8quant/internal/fp8"
	"fp8quant/internal/quant"
	"fp8quant/internal/tensor"
)

func init() {
	registerExp(Experiment{
		ID:    "ablation-wgt",
		Title: "Ablation: per-channel vs per-tensor weight scaling (Section 3.1 recommendation)",
		Run:   runWeightScalingAblation,
	})
	registerExp(Experiment{
		ID:    "ablation-calib",
		Title: "Ablation: range-calibration algorithms (max vs KL vs MSE vs percentile)",
		Run:   runCalibAblation,
	})
}

// runWeightScalingAblation quantifies Section 3.1's recommendation:
// per-channel weight scaling reduces rounding error by using the full
// encoding space per channel, especially under realistic per-channel
// std spread.
func runWeightScalingAblation() *Report {
	r := tensor.NewRNG(0xAB1A)
	const out, in = 64, 64
	// Weight with 8x per-channel std spread (trained-net realism).
	w := tensor.New(out, in)
	for o := 0; o < out; o++ {
		std := 0.02 * float64(uint(1)<<(uint(o)%4)) // 0.02..0.16
		for i := 0; i < in; i++ {
			w.Data[o*in+i] = float32(std * r.Norm())
		}
	}
	tb := newTable("format", "per-tensor MSE", "per-channel MSE", "improvement")
	vals := map[string]float64{}
	dtypes := []quant.DType{quant.E5M2, quant.E4M3, quant.E3M4, quant.INT8}
	// One cell per format; w is read-only, each cell quantizes clones.
	type cell struct{ mseT, mseC float64 }
	cells := collectCells(len(dtypes), func(i int) cell {
		wt := w.Clone()
		quant.QuantizeWeightPerTensor(wt, dtypes[i])
		wc := w.Clone()
		quant.QuantizeWeightPerChannel(wc, 0, dtypes[i])
		return cell{mseT: tensor.MSE(w.Data, wt.Data), mseC: tensor.MSE(w.Data, wc.Data)}
	})
	for i, d := range dtypes {
		imp := cells[i].mseT / cells[i].mseC
		tb.add(d.String(), fmt.Sprintf("%.3e", cells[i].mseT), fmt.Sprintf("%.3e", cells[i].mseC),
			fmt.Sprintf("%.1fx", imp))
		vals["ratio_"+d.String()] = imp
	}
	return &Report{
		Text: "Weight-scaling granularity ablation: per-channel scales recover the encoding\n" +
			"range lost to per-channel std spread. (FP8's log grid is partially immune;\n" +
			"INT8's uniform grid benefits most — both still improve.)\n\n" + tb.String(),
		Values: vals,
	}
}

// runCalibAblation compares range-calibration algorithms on the two
// canonical tensor classes, reproducing the paper's conclusion that
// simple max scaling is sufficient for FP8 (Section 3 / Appendix A.1).
func runCalibAblation() *Report {
	r := tensor.NewRNG(0xAB1B)
	mkOutlier := func() []float32 {
		x := make([]float32, 65536)
		for i := range x {
			x[i] = float32(r.Norm())
		}
		for i := 0; i < len(x)/200; i++ {
			x[r.Intn(len(x))] = float32(r.Uniform(30, 40))
		}
		return x
	}
	tb := newTable("tensor", "method", "threshold", "E4M3 MSE")
	vals := map[string]float64{}
	x := mkOutlier()
	methods := []quant.CalibMethod{quant.CalibMax, quant.CalibKL, quant.CalibMSE, quant.CalibPercentile}
	// One cell per calibration method; x is read-only and each cell
	// owns its observer, so the methods calibrate concurrently.
	type cell struct{ th, mse float64 }
	cells := collectCells(len(methods), func(i int) cell {
		obs := quant.NewObserver(methods[i])
		obs.Observe(x)
		th := quant.CalibratedThreshold(obs, methods[i], func(t float64) quant.Quantizer {
			return quant.NewScaledFP8(fp8.E4M3, t)
		})
		mse := quantMSE(x, clipThen(th, func(v float64) float64 {
			scale := fp8.E4M3.MaxValue() / th
			return fp8.E4M3.Quantize(v*scale) / scale
		}))
		return cell{th: th, mse: mse}
	})
	for i, m := range methods {
		tb.add("nlp-outliers", m.String(), fmt.Sprintf("%.2f", cells[i].th), fmt.Sprintf("%.3e", cells[i].mse))
		vals["mse_"+m.String()] = cells[i].mse
	}
	return &Report{
		Text: "Range-calibration ablation on an outlier-rich tensor: for E4M3, max scaling\n" +
			"is within noise of (or better than) KL/MSE/percentile clipping — the paper's\n" +
			"finding that sophisticated calibration brings no benefit for FP8.\n\n" + tb.String(),
		Values: vals,
	}
}
