// nondeterm: no environment reads on cell or kernel paths.
//
// Every RunCell result is persisted under a content address and later
// byte-compared across shards by Store.Merge; a wall-clock read, an
// environment variable, a CPU count or a global-RNG draw anywhere on
// that path turns "merge conflict means fingerprint collision" into
// "merge conflict means Tuesday". The check walks the statically
// resolvable call graph from every RunCell implementation (and every
// function in the fp8/kernels packages, which are under the same
// contract) and reports calls to the banned set.

package analyzers

import (
	"fmt"
	"go/ast"
	"go/types"
)

// nondetermBanned maps "pkgpath.Name" of banned calls to why they are
// banned.
var nondetermBanned = map[string]string{
	"time.Now":           "wall clock",
	"time.Since":         "wall clock",
	"time.Until":         "wall clock",
	"os.Getenv":          "environment read",
	"os.LookupEnv":       "environment read",
	"os.Environ":         "environment read",
	"os.Hostname":        "host identity",
	"os.Getpid":          "process identity",
	"runtime.NumCPU":     "machine-dependent CPU count",
	"runtime.GOMAXPROCS": "machine-dependent CPU count",
}

// nondetermBannedRandFuncs are the unseeded global-RNG entry points of
// math/rand; explicitly seeded sources (rand.New(rand.NewSource(n)))
// stay legal.
func isBannedRand(f *types.Func) bool {
	if f.Pkg() == nil || f.Pkg().Path() != "math/rand" {
		return false
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false // *rand.Rand methods: deterministic when seeded
	}
	switch f.Name() {
	case "New", "NewSource", "NewZipf":
		return false
	}
	return true
}

func nondetermAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "nondeterm",
		Doc:  "no clock/env/CPU-count/global-RNG reads reachable from RunCell or kernel/codec code",
		Run:  runNondeterm,
	}
}

func runNondeterm(pkgs []*Package) []Finding {
	g := buildGraph(pkgs)
	roots := cellRoots(pkgs)
	for key, fn := range g {
		if kernelOrCodecPackage(fn.pkg) {
			roots[key] = fn
		}
	}
	chains := reachableFrom(g, roots)

	var out []Finding
	for _, key := range sortedKeys(chains) {
		chain := chains[key]
		fn := g[key]
		if fn == nil {
			continue
		}
		ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := calleeFunc(fn.pkg.Info, call)
			if f == nil || f.Pkg() == nil {
				return true
			}
			qname := f.Pkg().Path() + "." + f.Name()
			why, banned := nondetermBanned[qname]
			if !banned && isBannedRand(f) {
				banned, why = true, "unseeded global RNG"
			}
			if !banned {
				return true
			}
			msg := fmt.Sprintf("%s (%s) called on a determinism-contract path", qname, why)
			if len(chain) > 1 || chain[0] != key {
				msg += fmt.Sprintf("; reachable via %s", chainString(chain))
			}
			out = append(out, Finding{Check: "nondeterm", Pos: position(fn.pkg, call), Message: msg})
			return true
		})
	}
	return out
}
