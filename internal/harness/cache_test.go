package harness

import (
	"testing"

	"fp8quant/internal/evalx"
	"fp8quant/internal/models"
	"fp8quant/internal/resultstore"
)

// withCleanCache isolates a test from the package-level cache state.
func withCleanCache(t *testing.T) {
	t.Helper()
	ClearMemo()
	t.Cleanup(func() {
		SetStore(nil)
		ClearMemo()
	})
}

func cacheTestKey() resultstore.Key {
	return resultstore.Key{
		Experiment: "cache-test",
		Models:     []string{"m1", "m2"},
		Recipes:    []string{"r1"},
		Schema:     resultstore.SchemaVersion,
	}
}

func cacheTestGrid() [][]evalx.Result {
	return [][]evalx.Result{
		{{Model: "m1", Domain: models.CV, Recipe: "r1", BaseAcc: 1, QAcc: 0.993, RelLoss: 0.007, Pass: true}},
		{{Model: "m2", Domain: models.NLP, Recipe: "r1", BaseAcc: 1, QAcc: 0.9, RelLoss: 0.1}},
	}
}

// TestCachedGridMemoizes checks the in-process layer: the second call
// with the same key must not recompute, with or without a disk store.
func TestCachedGridMemoizes(t *testing.T) {
	withCleanCache(t)
	SetStore(nil)
	computes := 0
	compute := func() [][]evalx.Result { computes++; return cacheTestGrid() }
	k := cacheTestKey()
	g1 := cachedGrid(k, compute)
	g2 := cachedGrid(k, compute)
	if computes != 1 {
		t.Fatalf("computed %d times, want 1", computes)
	}
	if &g1[0][0] != &g2[0][0] {
		t.Error("second call should return the memoized grid")
	}
}

// TestCachedGridPersistsAcrossProcesses simulates two fp8bench
// invocations sharing a cache dir: the memo is cleared (process
// boundary) and the second "process" must load from disk, not compute.
func TestCachedGridPersistsAcrossProcesses(t *testing.T) {
	withCleanCache(t)
	s, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	SetStore(s)
	computes := 0
	compute := func() [][]evalx.Result { computes++; return cacheTestGrid() }
	k := cacheTestKey()
	first := cachedGrid(k, compute)

	ClearMemo() // process boundary
	second := cachedGrid(k, compute)
	if computes != 1 {
		t.Fatalf("computed %d times, want 1 (second run must hit the store)", computes)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Writes != 1 {
		t.Errorf("store stats = %+v, want 1 hit / 1 write", st)
	}
	if len(second) != len(first) {
		t.Fatalf("store round trip changed grid shape: %d vs %d", len(second), len(first))
	}
	for i := range first {
		for j := range first[i] {
			if second[i][j] != first[i][j] {
				t.Errorf("cell [%d][%d] = %+v, want exact %+v", i, j, second[i][j], first[i][j])
			}
		}
	}
}

// TestCachedGridDistinctKeys checks two keys never share a grid.
func TestCachedGridDistinctKeys(t *testing.T) {
	withCleanCache(t)
	SetStore(nil)
	computes := 0
	compute := func() [][]evalx.Result { computes++; return cacheTestGrid() }
	k2 := cacheTestKey()
	k2.Seed = 7
	cachedGrid(cacheTestKey(), compute)
	cachedGrid(k2, compute)
	if computes != 2 {
		t.Fatalf("distinct keys computed %d times, want 2", computes)
	}
}
