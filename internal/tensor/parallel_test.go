package tensor

import (
	"sync/atomic"
	"testing"
)

func TestParallelForCoversRangeOnce(t *testing.T) {
	for _, n := range []int{0, 1, 100, 1 << 14, 1<<17 + 13} {
		hits := make([]int32, n)
		ParallelFor(n, 64, func(lo, hi int) {
			if lo < 0 || hi > n || lo > hi {
				t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

func TestParallelForInlineBelowGrain(t *testing.T) {
	calls := 0
	ParallelFor(100, 1000, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 100 {
			t.Errorf("expected one inline chunk, got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Errorf("small n should run as a single inline chunk, got %d calls", calls)
	}
}

func TestParallelForNested(t *testing.T) {
	// Nested ParallelFor must not deadlock (inner calls may run on pool
	// workers; saturated submissions fall back to inline execution).
	n := 1 << 16
	sum := make([]int64, 8)
	ParallelFor(8, 1, func(lo, hi int) {
		for w := lo; w < hi; w++ {
			var local int64
			var mu atomic.Int64
			ParallelFor(n, 1<<12, func(l, h int) {
				var s int64
				for i := l; i < h; i++ {
					s += int64(i)
				}
				mu.Add(s)
			})
			local = mu.Load()
			sum[w] = local
		}
	})
	want := int64(n) * int64(n-1) / 2
	for w, s := range sum {
		if s != want {
			t.Fatalf("nested worker %d: sum %d want %d", w, s, want)
		}
	}
}
