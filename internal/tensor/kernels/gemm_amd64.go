//go:build amd64

package kernels

// The SSE inner kernels broadcast one x value per row and run
// MULPS+ADDPS over the 8 packed columns (two SSE lanes of 4). SSE1
// mul-then-add per lane is exactly the scalar float32 `acc += v*b`
// operation sequence — no FMA, no reassociation — so every lane stays
// bit-identical to the generic Go loop while 32 accumulator chains run
// concurrently.

// gemm4x8SSE accumulates acc[r*8+j] += Σ_k xr[k]·p[k*8+j] for four
// rows (x0..x3, each n floats) against one packed panel p (n×8).
//
//go:noescape
func gemm4x8SSE(x0, x1, x2, x3, p *float32, n int, acc *[4 * nr]float32)

// gemm1x8SSE is the single-row variant used for the rows%4 remainder.
//
//go:noescape
func gemm1x8SSE(x, p *float32, n int, acc *[nr]float32)

// sse4x8 runs the 4-row × 8-column SSE microkernel over one packed
// panel. x holds the four rows back to back at stride in.
func sse4x8(x, p []float32, in int, acc []float32) {
	gemm4x8SSE(&x[0], &x[in], &x[2*in], &x[3*in], &p[0], in, (*[4 * nr]float32)(acc[:4*nr]))
}

// sse1x8 runs the 1-row remainder SSE microkernel over one packed
// panel.
func sse1x8(x, p []float32, in int, acc []float32) {
	gemm1x8SSE(&x[0], &p[0], in, (*[nr]float32)(acc[:nr]))
}

// blockRowsSSE computes rb (≤ 4) consecutive output rows against every
// packed panel with the SSE tier. Direct calls into the //go:noescape
// assembly wrappers keep the accumulator tile on the stack (see
// blockRowsGeneric).
func blockRowsSSE(y, x, panel []float32, r, rb, in, out int, opt Opt) {
	npan := (out + nr - 1) / nr
	for pj := 0; pj < npan; pj++ {
		o0 := pj * nr
		cols := out - o0
		if cols > nr {
			cols = nr
		}
		p := panel[pj*in*nr : (pj+1)*in*nr]
		if rb == 4 {
			var acc [4 * nr]float32
			initAcc(acc[:], o0, cols, opt)
			sse4x8(x[r*in:], p, in, acc[:])
			storeAcc(y, acc[:], r, 4, o0, cols, out, opt)
		} else {
			for i := 0; i < rb; i++ {
				var acc [nr]float32
				initAcc(acc[:nr], o0, cols, opt)
				sse1x8(x[(r+i)*in:], p, in, acc[:nr])
				storeAcc(y, acc[:nr], r+i, 1, o0, cols, out, opt)
			}
		}
	}
}
