// Package resultstore persists experiment results to disk as
// content-addressed JSON files, so repeated fp8bench invocations reuse
// completed work instead of recomputing it. The unit of storage is one
// grid *cell* — a single (axis values) evaluation — keyed by a
// fingerprint of (grid id, ordered axis name/value pairs, seed, schema
// version), so an interrupted sweep resumes from its completed cells.
// A per-grid manifest records the full cell schedule for tooling.
// Writes are atomic (temp file + rename) and reads tolerate corrupt or
// stale files by treating them as misses, so a damaged cache can never
// poison a report — at worst it costs a recompute.
package resultstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync/atomic"
	"time"

	"fp8quant/internal/evalx"
	"fp8quant/internal/faultline"
)

// SchemaVersion identifies the evaluation-code generation a stored cell
// was produced by. Bump it whenever evalx.Result's layout, the batch
// protocol, or anything else that changes cell numbers changes; stored
// entries from other versions are treated as misses (and removed by
// Prune). Version 1 was the pre-cell whole-grid blob format.
const SchemaVersion = 2

// AxisValue is one (axis name, value) coordinate of a cell.
type AxisValue struct {
	Axis  string `json:"axis"`
	Value string `json:"value"`
}

// CellKey identifies one stored cell. Cell coordinates are ordered —
// axis order is part of the identity.
type CellKey struct {
	// Grid is the grid id (e.g. "table2-sweep"). Experiments sharing a
	// grid (table2/fig4/fig5) use the same id and so share cells.
	Grid string `json:"grid"`
	// Cell are the cell's axis coordinates, in axis order.
	Cell []AxisValue `json:"cell"`
	// Seed is the experiment-level seed.
	Seed uint64 `json:"seed"`
	// Schema is the evaluation-code schema version (SchemaVersion).
	Schema int `json:"schema"`
}

// Fingerprint returns the content address of the key: a 128-bit hex
// digest of its canonical JSON encoding.
func (k CellKey) Fingerprint() string {
	b, err := json.Marshal(k)
	if err != nil {
		panic("resultstore: unmarshalable key: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16])
}

// Manifest records a grid's full cell schedule: the axes and the
// row-major cell fingerprints. It lets tooling reason about coverage
// (which cells of a sweep exist) without re-deriving the spec.
type Manifest struct {
	Grid   string         `json:"grid"`
	Seed   uint64         `json:"seed"`
	Schema int            `json:"schema"`
	Axes   []ManifestAxis `json:"axes"`
	// Cells are the row-major cell fingerprints of the full grid.
	Cells []string `json:"cells"`
	// Shards records which shard plans have contributed cells to this
	// store — provenance for distributed sweeps. It is not part of the
	// schedule: Merge unions it across stores whose schedules agree.
	Shards []ShardRecord `json:"shards,omitempty"`
	// KernelVariants records which GEMM kernel variants produced cells
	// in this store (empty for pre-variant stores and runs that served
	// everything from cache). Like Shards it is provenance, not
	// schedule — but Merge refuses a union of more than one distinct
	// variant, because the avx2 tier's fused rounding makes its cells
	// bit-incompatible with two-rounding tiers' and a mixed store would
	// poison warm-run byte-identity silently.
	KernelVariants []string `json:"kernel_variants,omitempty"`
}

// ShardRecord identifies one slice of a sharded grid run: the 0-based
// shard index out of a count of disjoint shards.
type ShardRecord struct {
	Index int `json:"index"`
	Count int `json:"count"`
}

// SameSchedule reports whether two manifests declare the identical cell
// schedule (everything except the Shards and KernelVariants provenance).
func (m Manifest) SameSchedule(o Manifest) bool {
	a, b := m, o
	a.Shards, b.Shards = nil, nil
	a.KernelVariants, b.KernelVariants = nil, nil
	ab, _ := json.Marshal(a)
	bb, _ := json.Marshal(b)
	return string(ab) == string(bb)
}

// ManifestAxis is one declared grid dimension.
type ManifestAxis struct {
	Name   string   `json:"name"`
	Values []string `json:"values"`
}

// Stats counts cell traffic since Open. Manifest reads/writes are
// bookkeeping, not results, and are deliberately not counted — the
// counters answer "how many cells were reused vs recomputed".
type Stats struct {
	Hits, Misses, Writes int64
}

// String formats the stats as the fp8bench cache-stats line body.
func (s Stats) String() string {
	return fmt.Sprintf("%d hits, %d misses, %d writes", s.Hits, s.Misses, s.Writes)
}

// Store is a directory of content-addressed cell and manifest files. A
// nil *Store is valid and behaves as an always-miss, never-write store.
type Store struct {
	dir                  string
	hits, misses, writes atomic.Int64
}

// Open creates (if needed) and opens the store directory.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// Stats returns a snapshot of the traffic counters.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	return Stats{Hits: s.hits.Load(), Misses: s.misses.Load(), Writes: s.writes.Load()}
}

// CellPath returns the file a key's cell is stored at.
func (s *Store) CellPath(k CellKey) string {
	return filepath.Join(s.dir, "c-"+k.Fingerprint()+".json")
}

// cellEnvelope is the on-disk cell format: the schema version and full
// key ride along with the result so reads can reject stale or
// colliding entries.
type cellEnvelope struct {
	Schema int          `json:"schema"`
	Key    CellKey      `json:"key"`
	Result evalx.Result `json:"result"`
}

// LoadCell returns the stored result for the key, or (zero, false) on
// any miss: absent file, unreadable JSON, schema or key mismatch.
func (s *Store) LoadCell(k CellKey) (evalx.Result, bool) {
	if s == nil {
		return evalx.Result{}, false
	}
	if err := faultline.Hit("resultstore.load.read"); err != nil {
		// An injected read fault behaves exactly like a real one: a miss.
		s.misses.Add(1)
		return evalx.Result{}, false
	}
	b, err := os.ReadFile(s.CellPath(k))
	if err != nil {
		s.misses.Add(1)
		return evalx.Result{}, false
	}
	var env cellEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		// Corrupt entry (torn write from a crashed process, disk
		// damage): treat as a miss. Deliberately not deleted — the
		// recompute's SaveCell rename replaces it atomically, and a
		// delete here could race a concurrent process's just-renamed
		// valid cell.
		s.misses.Add(1)
		return evalx.Result{}, false
	}
	if env.Schema != k.Schema || !keysEqual(env.Key, k) {
		s.misses.Add(1)
		return evalx.Result{}, false
	}
	s.hits.Add(1)
	return env.Result, true
}

// EncodeCell returns the exact bytes SaveCell would write for the
// (key, result) pair — the canonical on-disk cell envelope. Remote
// workers encode their payloads through it so a pushed cell is
// byte-identical to the file a local run would have produced, which is
// what lets IngestCell apply Merge's byte-equality conflict rules to
// pushed payloads.
func EncodeCell(k CellKey, r evalx.Result) ([]byte, error) {
	b, err := json.Marshal(cellEnvelope{Schema: k.Schema, Key: k, Result: r})
	if err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	return b, nil
}

// SaveCell atomically persists the result under the key.
func (s *Store) SaveCell(k CellKey, r evalx.Result) error {
	if s == nil {
		return nil
	}
	b, err := EncodeCell(k, r)
	if err != nil {
		return err
	}
	if err := s.writeAtomic(s.CellPath(k), b); err != nil {
		return err
	}
	s.writes.Add(1)
	return nil
}

// ManifestPath returns the file a grid's manifest is stored at.
func (s *Store) ManifestPath(grid string, seed uint64) string {
	key := struct {
		Grid   string `json:"grid"`
		Seed   uint64 `json:"seed"`
		Schema int    `json:"schema"`
	}{grid, seed, SchemaVersion}
	b, _ := json.Marshal(key)
	sum := sha256.Sum256(b)
	return filepath.Join(s.dir, "m-"+hex.EncodeToString(sum[:16])+".json")
}

// manifestEnvelope wraps a manifest with its schema version.
type manifestEnvelope struct {
	Schema   int      `json:"schema"`
	Manifest Manifest `json:"manifest"`
}

// LoadManifest returns the stored manifest for a grid, or false on any
// miss. Manifest traffic is not counted in Stats.
func (s *Store) LoadManifest(grid string, seed uint64) (Manifest, bool) {
	if s == nil {
		return Manifest{}, false
	}
	b, err := os.ReadFile(s.ManifestPath(grid, seed))
	if err != nil {
		return Manifest{}, false
	}
	var env manifestEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		return Manifest{}, false
	}
	if env.Schema != SchemaVersion || env.Manifest.Grid != grid || env.Manifest.Seed != seed {
		return Manifest{}, false
	}
	return env.Manifest, true
}

// SaveManifest atomically persists a grid manifest.
func (s *Store) SaveManifest(m Manifest) error {
	if s == nil {
		return nil
	}
	m.Schema = SchemaVersion
	b, err := json.Marshal(manifestEnvelope{Schema: SchemaVersion, Manifest: m})
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	return s.writeAtomic(s.ManifestPath(m.Grid, m.Seed), b)
}

// tmpGrace is how old a temp file must be before Prune treats it as
// a leftover from a crashed process rather than a write in flight: an
// atomic write holds its temp file for milliseconds, so an hour-old
// one is certainly abandoned, while deleting a fresh one could race a
// concurrent process between CreateTemp and Rename.
const tmpGrace = time.Hour

// storeFilePattern matches the files this (or the schema-1) store
// writes: "c-<hex32>.json" cells, "m-<hex32>.json" manifests, and the
// legacy bare "<hex32>.json" whole-grid blobs. Prune only ever touches
// these (plus "*.tmp"), so foreign files sharing the directory are
// safe.
var storeFilePattern = regexp.MustCompile(`^(c-|m-)?[0-9a-f]{32}\.json$`)

// Prune removes stale store entries: abandoned temp files (older than
// tmpGrace), store-named files that fail to parse, and entries from
// other schema versions (including the pre-cell whole-grid blobs of
// schema 1). With maxAge > 0 it also removes current-schema cells
// whose file is older than maxAge — except cells referenced by a live
// (current-schema) manifest, which a merged store may have received
// with an arbitrary mtime and which a resume or coverage check still
// expects to find. Manifests themselves never age out: they are tiny
// and carry the schedule that gives the cells meaning. Returns the
// number of files removed. Files the store did not name are left
// alone.
func (s *Store) Prune(maxAge time.Duration) (int, error) {
	if s == nil {
		return 0, nil
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("resultstore: %w", err)
	}
	var cutoff time.Time
	var referenced map[string]bool
	if maxAge > 0 {
		cutoff = time.Now().Add(-maxAge)
		referenced = s.manifestRefs(entries)
	}
	removed := 0
	var firstErr error
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		name := ent.Name()
		path := filepath.Join(s.dir, name)
		switch {
		case strings.HasSuffix(name, ".tmp"):
			info, err := ent.Info()
			if err != nil || info.ModTime().After(time.Now().Add(-tmpGrace)) {
				continue // possibly a write in flight
			}
		case storeFilePattern.MatchString(name):
			current, readErr := hasCurrentSchema(path)
			if readErr != nil {
				// A transient read failure (EMFILE, permissions) must
				// not condemn a possibly valid entry — skip it.
				continue
			}
			if current {
				if cutoff.IsZero() || strings.HasPrefix(name, "m-") {
					continue
				}
				if fp, ok := cellFingerprint(name); ok && referenced[fp] {
					continue
				}
				info, err := ent.Info()
				if err != nil || !info.ModTime().Before(cutoff) {
					continue
				}
			}
		default:
			continue
		}
		if err := os.Remove(path); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("resultstore: %w", err)
			}
			continue
		}
		removed++
	}
	return removed, firstErr
}

// cellFingerprint extracts the content address from a "c-<hex32>.json"
// cell file name.
func cellFingerprint(name string) (string, bool) {
	if !strings.HasPrefix(name, "c-") || !strings.HasSuffix(name, ".json") {
		return "", false
	}
	return strings.TrimSuffix(strings.TrimPrefix(name, "c-"), ".json"), true
}

// manifestRefs returns the set of cell fingerprints referenced by the
// store's live (current-schema) manifests.
func (s *Store) manifestRefs(entries []os.DirEntry) map[string]bool {
	refs := map[string]bool{}
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasPrefix(name, "m-") || !storeFilePattern.MatchString(name) {
			continue
		}
		b, err := os.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			continue
		}
		var env manifestEnvelope
		if json.Unmarshal(b, &env) != nil || env.Schema != SchemaVersion {
			continue
		}
		for _, fp := range env.Manifest.Cells {
			refs[fp] = true
		}
	}
	return refs
}

// hasCurrentSchema reports whether the file parses as a JSON envelope
// of the current schema version. A read failure is returned as an
// error so the caller can distinguish "unreadable right now" from
// "readable but stale/corrupt".
func hasCurrentSchema(path string) (bool, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	var probe struct {
		Schema int `json:"schema"`
	}
	if json.Unmarshal(b, &probe) != nil {
		return false, nil
	}
	return probe.Schema == SchemaVersion, nil
}

// writeAtomic writes b to path via a temp file + rename, so concurrent
// readers only ever see complete entries. Three faultline points cover
// the write's crash windows — "resultstore.<class>.create" (before the
// temp file exists), ".temp" (a WriteBytes point, so torn/corrupt rules
// can truncate the payload), and ".rename" (after a complete temp
// write, before it becomes visible) — where <class> is save, manifest
// or sidecar by the destination file's name. Injected temp/rename
// faults deliberately leave the temp file behind, because that is what
// the crash they simulate would do; real write errors still clean up.
func (s *Store) writeAtomic(path string, b []byte) error {
	point := "resultstore." + writeClass(path)
	if err := faultline.Hit(point + ".create"); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, ".cell-*.tmp")
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	wb, injerr := faultline.WriteBytes(point+".temp", b)
	if _, err := tmp.Write(wb); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: %w", err)
	}
	if injerr != nil {
		tmp.Close()
		return fmt.Errorf("resultstore: %w", injerr)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: %w", err)
	}
	if err := faultline.Hit(point + ".rename"); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: %w", err)
	}
	return nil
}

// writeClass names the kind of store file a path holds, for failpoint
// naming: "save" (cells), "manifest", or "sidecar" (everything else).
func writeClass(path string) string {
	switch name := filepath.Base(path); {
	case strings.HasPrefix(name, "c-"):
		return "save"
	case strings.HasPrefix(name, "m-"):
		return "manifest"
	default:
		return "sidecar"
	}
}

// keysEqual compares keys by canonical encoding (guards fingerprint
// collisions and hand-edited files).
func keysEqual(a, b CellKey) bool {
	ab, _ := json.Marshal(a)
	bb, _ := json.Marshal(b)
	return string(ab) == string(bb)
}
